// Hashed on-disk directory format + epoch-keyed parsed-directory index.
//
// The first half pins the hashed format introduced for O(1) component
// lookup: round trips, one-bucket cold lookups, transparent upgrade from
// the legacy linear format, and fsck (Ufs::Check) catching structural
// tampering. The second half is the regression suite for the index
// validation change: the index is keyed on the buffer cache's
// invalidation epoch, not a per-entry (mtime, size) stamp, because a
// same-tick same-size rewrite under the simulated clock leaves both
// unchanged.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/serialize.h"
#include "src/ufs/ufs.h"

namespace ficus::ufs {
namespace {

class DirFormatTest : public ::testing::Test {
 protected:
  DirFormatTest() : device_(8192), cache_(&device_, 512), ufs_(&cache_, &clock_) {
    EXPECT_TRUE(ufs_.Format(4096).ok());
  }

  void ExpectClean() {
    auto problems = ufs_.Check();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << "fsck: " << problems->front();
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BufferCache cache_;
  Ufs ufs_;
};

TEST_F(DirFormatTest, HashedFormatRoundTripsManyEntries) {
  auto dir = ufs_.CreateFile(kRootInode, "big", FileType::kDirectory, 0755, 0, 0);
  ASSERT_TRUE(dir.ok());
  std::vector<InodeNum> inos;
  for (int i = 0; i < 600; ++i) {
    clock_.Advance(1);
    auto ino = ufs_.CreateFile(*dir, "f" + std::to_string(i), FileType::kRegular, 0644, 0, 0);
    ASSERT_TRUE(ino.ok()) << i;
    inos.push_back(*ino);
  }
  // The on-disk image leads with the hashed magic and spreads entries
  // over more than one bucket at this size.
  auto raw = ufs_.ReadAll(*dir);
  ASSERT_TRUE(raw.ok());
  ASSERT_GE(raw->size(), kUfsDirHeaderBytes);
  uint32_t first = 0;
  for (int i = 3; i >= 0; --i) {
    first = (first << 8) | (*raw)[static_cast<size_t>(i)];
  }
  EXPECT_EQ(first, kUfsDirMagic);
  EXPECT_GT(UfsDirBucketCount(600), 1u);

  auto listed = ufs_.DirList(*dir);
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 600u);
  for (int i = 0; i < 600; ++i) {
    auto found = ufs_.DirLookup(*dir, "f" + std::to_string(i));
    ASSERT_TRUE(found.ok()) << i;
    EXPECT_EQ(*found, inos[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(ufs_.DirLookup(*dir, "missing").status().code(), ErrorCode::kNotFound);
  ExpectClean();
}

TEST_F(DirFormatTest, ColdHashedLookupReadsOneBucketNotTheWholeDirectory) {
  auto dir = ufs_.CreateFile(kRootInode, "wide", FileType::kDirectory, 0755, 0, 0);
  ASSERT_TRUE(dir.ok());
  InodeNum wanted = kInvalidInode;
  for (int i = 0; i < 2000; ++i) {
    auto ino = ufs_.CreateFile(*dir, "n" + std::to_string(i), FileType::kRegular, 0644, 0, 0);
    ASSERT_TRUE(ino.ok()) << i;
    if (i == 1234) {
      wanted = *ino;
    }
  }
  // Force a cold start: a fresh Ufs view has an empty index, and the
  // invalidated cache makes block traffic observable at the device.
  Ufs cold(&cache_, &clock_);
  ASSERT_TRUE(cold.Mount().ok());
  cache_.Invalidate();
  device_.ResetStats();
  auto found = cold.DirLookup(*dir, "n1234");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, wanted);
  // Directory image is dozens of blocks; a one-bucket lookup touches the
  // inode, the header, the bucket slot, and the bucket's record run.
  EXPECT_LE(device_.stats().reads, 8u);
}

TEST_F(DirFormatTest, LegacyLinearImageParsesAndUpgradesOnMutation) {
  auto dir = ufs_.CreateFile(kRootInode, "old", FileType::kDirectory, 0755, 0, 0);
  ASSERT_TRUE(dir.ok());
  auto a = ufs_.CreateFile(*dir, "a", FileType::kRegular, 0644, 0, 0);
  auto b = ufs_.CreateFile(*dir, "b", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Rewrite the directory in the pre-hash linear format, as a disk image
  // written by an older build would be.
  std::vector<uint8_t> legacy;
  ByteWriter w(legacy);
  w.PutU32(*a);
  w.PutU8(static_cast<uint8_t>(FileType::kRegular));
  w.PutString("a");
  w.PutU32(*b);
  w.PutU8(static_cast<uint8_t>(FileType::kRegular));
  w.PutString("b");
  ASSERT_TRUE(ufs_.WriteAll(*dir, legacy).ok());
  ExpectClean();

  auto found = ufs_.DirLookup(*dir, "b");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *b);

  // Any mutation rewrites the image hashed.
  auto c = ufs_.CreateFile(*dir, "c", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(c.ok());
  auto raw = ufs_.ReadAll(*dir);
  ASSERT_TRUE(raw.ok());
  uint32_t first = 0;
  for (int i = 3; i >= 0; --i) {
    first = (first << 8) | (*raw)[static_cast<size_t>(i)];
  }
  EXPECT_EQ(first, kUfsDirMagic);
  for (const char* name : {"a", "b", "c"}) {
    EXPECT_TRUE(ufs_.DirLookup(*dir, name).ok()) << name;
  }
  ExpectClean();
}

TEST_F(DirFormatTest, CheckFlagsTamperedHeaderCount) {
  auto dir = ufs_.CreateFile(kRootInode, "tampered", FileType::kDirectory, 0755, 0, 0);
  ASSERT_TRUE(dir.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        ufs_.CreateFile(*dir, "t" + std::to_string(i), FileType::kRegular, 0644, 0, 0).ok());
  }
  auto raw = ufs_.ReadAll(*dir);
  ASSERT_TRUE(raw.ok());
  // Bump the header's entry_count: the image still "parses" per bucket
  // but the header lies, which fsck must notice.
  (*raw)[8] = static_cast<uint8_t>((*raw)[8] + 1);
  ASSERT_TRUE(ufs_.WriteAll(*dir, *raw).ok());
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  bool flagged = false;
  for (const auto& p : *problems) {
    if (p.find("entry count") != std::string::npos ||
        p.find("unparsable") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << "fsck missed a lying hashed-directory header";
}

TEST_F(DirFormatTest, CheckFlagsEntryInWrongBucket) {
  auto dir = ufs_.CreateFile(kRootInode, "misplaced", FileType::kDirectory, 0755, 0, 0);
  ASSERT_TRUE(dir.ok());
  auto file = ufs_.CreateFile(*dir, "x", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(file.ok());
  // Handcraft a two-bucket image that stores the record in the bucket its
  // name does NOT hash to.
  uint32_t right_bucket = UfsNameHash("x") & 1u;
  std::vector<uint8_t> record;
  {
    ByteWriter w(record);
    w.PutU32(*file);
    w.PutU8(static_cast<uint8_t>(FileType::kRegular));
    w.PutString("x");
  }
  std::vector<uint8_t> image;
  ByteWriter w(image);
  w.PutU32(kUfsDirMagic);
  w.PutU32(2);  // bucket_count
  w.PutU32(1);  // entry_count
  w.PutU32(0);
  uint32_t len = static_cast<uint32_t>(record.size());
  if (right_bucket == 0) {
    // Record goes into bucket 1 instead of 0.
    w.PutU32(0);
    w.PutU32(0);
    w.PutU32(0);
    w.PutU32(len);
  } else {
    // Record goes into bucket 0 instead of 1.
    w.PutU32(0);
    w.PutU32(len);
    w.PutU32(len);
    w.PutU32(0);
  }
  image.insert(image.end(), record.begin(), record.end());
  ASSERT_TRUE(ufs_.WriteAll(*dir, image).ok());
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  bool flagged = false;
  for (const auto& p : *problems) {
    if (p.find("hashes to bucket") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << "fsck missed a record stored in the wrong bucket";
}

// --- index validation regressions ---

TEST_F(DirFormatTest, SameTickSameSizeRewriteIsVisibleThroughTheIndex) {
  // Everything below happens at one simulated instant: mtime never moves
  // and DirRepoint keeps the serialized size identical, so a (mtime, size)
  // stamp cannot tell the rewrite from the cached state.
  auto dir = ufs_.CreateFile(kRootInode, "d", FileType::kDirectory, 0755, 0, 0);
  ASSERT_TRUE(dir.ok());
  auto keep = ufs_.CreateFile(*dir, "keep", FileType::kRegular, 0644, 0, 0);
  auto target = ufs_.CreateFile(kRootInode, "elsewhere", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(target.ok());

  // Warm the index.
  auto before = ufs_.DirLookup(*dir, "keep");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, *keep);

  // Same tick, same size: swing the entry at a different inode.
  ASSERT_TRUE(ufs_.DirRepoint(*dir, "keep", *target).ok());
  auto inode = ufs_.ReadInode(*dir);
  ASSERT_TRUE(inode.ok());

  auto after = ufs_.DirLookup(*dir, "keep");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *target) << "index served stale entries across a same-tick rewrite";
}

TEST_F(DirFormatTest, UnrelatedBlockFreeKeepsIndexWarm) {
  auto dir = ufs_.CreateFile(kRootInode, "warm", FileType::kDirectory, 0755, 0, 0);
  ASSERT_TRUE(dir.ok());
  auto child = ufs_.CreateFile(*dir, "child", FileType::kRegular, 0644, 0, 0);
  auto other = ufs_.CreateFile(kRootInode, "other", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(child.ok());
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(ufs_.WriteAll(*other, std::vector<uint8_t>(9000, 0xAB)).ok());

  // Warm the directory index, then free blocks of an unrelated file.
  ASSERT_TRUE(ufs_.DirLookup(*dir, "child").ok());
  ASSERT_TRUE(ufs_.Truncate(*other, 0).ok());

  // The lookup stays warm: no device traffic, correct result. (Block
  // frees used to bump the cache epoch and flush every parsed directory.)
  device_.ResetStats();
  auto found = ufs_.DirLookup(*dir, "child");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *child);
  EXPECT_EQ(device_.stats().reads, 0u);
}

TEST_F(DirFormatTest, FullCacheInvalidateDropsIndexAfterExternalRewrite) {
  auto dir = ufs_.CreateFile(kRootInode, "shared", FileType::kDirectory, 0755, 0, 0);
  ASSERT_TRUE(dir.ok());
  auto orig = ufs_.CreateFile(*dir, "name", FileType::kRegular, 0644, 0, 0);
  auto repl = ufs_.CreateFile(kRootInode, "replacement", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(repl.ok());
  ASSERT_TRUE(ufs_.DirLookup(*dir, "name").ok());  // warm

  // An external writer (recovery tool) rewrites the directory through its
  // own cache — same tick, same size — then our cache is invalidated, the
  // "device may have diverged" signal.
  storage::BufferCache other_cache(&device_, 64);
  Ufs external(&other_cache, &clock_);
  ASSERT_TRUE(external.Mount().ok());
  ASSERT_TRUE(external.DirRepoint(*dir, "name", *repl).ok());
  cache_.Invalidate();

  auto found = ufs_.DirLookup(*dir, "name");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *repl) << "epoch bump failed to drop the stale index";
}

}  // namespace
}  // namespace ficus::ufs
