#include "src/ufs/ufs_vfs.h"

#include <gtest/gtest.h>

#include "src/vfs/path_ops.h"

namespace ficus::ufs {
namespace {

using vfs::Credentials;
using vfs::VAttr;
using vfs::VnodePtr;
using vfs::VnodeType;

class UfsVfsTest : public ::testing::Test {
 protected:
  UfsVfsTest() : device_(4096), cache_(&device_, 256), ufs_(&cache_, &clock_), vfs_(&ufs_) {
    EXPECT_TRUE(ufs_.Format(512).ok());
  }

  VnodePtr Root() {
    auto root = vfs_.Root();
    EXPECT_TRUE(root.ok());
    return root.value();
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BufferCache cache_;
  Ufs ufs_;
  UfsVfs vfs_;
  Credentials cred_;
};

TEST_F(UfsVfsTest, RootIsDirectory) {
  auto attr = Root()->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, VnodeType::kDirectory);
  EXPECT_EQ(attr->fileid, kRootInode);
}

TEST_F(UfsVfsTest, CreateWriteReadThroughVnodes) {
  auto file = Root()->Create("f.txt", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> payload = {'h', 'i'};
  ASSERT_TRUE((*file)->Write(0, payload, cred_).ok());
  std::vector<uint8_t> read_back;
  auto n = (*file)->Read(0, 10, read_back, cred_);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(read_back, payload);
}

TEST_F(UfsVfsTest, MkdirAndNestedCreate) {
  auto dir = Root()->Mkdir("sub", VAttr{}, cred_);
  ASSERT_TRUE(dir.ok());
  auto file = (*dir)->Create("inner", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  auto walked = vfs::WalkPath(Root(), "sub/inner", cred_);
  ASSERT_TRUE(walked.ok());
  auto attr = (*walked)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, VnodeType::kRegular);
}

TEST_F(UfsVfsTest, RemoveAndRmdirEnforceTypes) {
  ASSERT_TRUE(Root()->Create("file", VAttr{}, cred_).ok());
  ASSERT_TRUE(Root()->Mkdir("dir", VAttr{}, cred_).ok());
  EXPECT_EQ(Root()->Remove("dir", cred_).code(), ErrorCode::kIsDir);
  EXPECT_EQ(Root()->Rmdir("file", cred_).code(), ErrorCode::kNotDir);
  EXPECT_TRUE(Root()->Remove("file", cred_).ok());
  EXPECT_TRUE(Root()->Rmdir("dir", cred_).ok());
}

TEST_F(UfsVfsTest, HardLinkSharesInode) {
  auto file = Root()->Create("orig", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(Root()->Link("alias", *file, cred_).ok());
  std::vector<uint8_t> payload = {9, 9};
  ASSERT_TRUE((*file)->Write(0, payload, cred_).ok());
  auto alias = Root()->Lookup("alias", cred_);
  ASSERT_TRUE(alias.ok());
  std::vector<uint8_t> read_back;
  ASSERT_TRUE((*alias)->Read(0, 10, read_back, cred_).ok());
  EXPECT_EQ(read_back, payload);
  auto attr = (*alias)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->nlink, 2u);
  // Removing one name keeps the data.
  ASSERT_TRUE(Root()->Remove("orig", cred_).ok());
  EXPECT_TRUE(vfs::Exists(&vfs_, "alias"));
}

TEST_F(UfsVfsTest, RenameMovesAcrossDirectories) {
  ASSERT_TRUE(vfs::MkdirAll(&vfs_, "a").ok());
  ASSERT_TRUE(vfs::MkdirAll(&vfs_, "b").ok());
  ASSERT_TRUE(vfs::WriteFileAt(&vfs_, "a/f", "data").ok());
  ASSERT_TRUE(vfs::RenamePath(&vfs_, "a/f", "b/g").ok());
  EXPECT_FALSE(vfs::Exists(&vfs_, "a/f"));
  auto contents = vfs::ReadFileAt(&vfs_, "b/g");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "data");
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(UfsVfsTest, RenameDisplacesTarget) {
  ASSERT_TRUE(vfs::WriteFileAt(&vfs_, "src", "new").ok());
  ASSERT_TRUE(vfs::WriteFileAt(&vfs_, "dst", "old").ok());
  ASSERT_TRUE(vfs::RenamePath(&vfs_, "src", "dst").ok());
  auto contents = vfs::ReadFileAt(&vfs_, "dst");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "new");
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(UfsVfsTest, SymlinkRoundTrip) {
  auto link = Root()->Symlink("ln", "target/path", cred_);
  ASSERT_TRUE(link.ok());
  auto target = (*link)->Readlink(cred_);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), "target/path");
  auto attr = (*link)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, VnodeType::kSymlink);
}

TEST_F(UfsVfsTest, ReaddirListsEverything) {
  ASSERT_TRUE(Root()->Create("f1", VAttr{}, cred_).ok());
  ASSERT_TRUE(Root()->Mkdir("d1", VAttr{}, cred_).ok());
  ASSERT_TRUE(Root()->Symlink("l1", "x", cred_).ok());
  auto entries = Root()->Readdir(cred_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
}

TEST_F(UfsVfsTest, SetAttrTruncates) {
  ASSERT_TRUE(vfs::WriteFileAt(&vfs_, "f", "hello world").ok());
  auto file = vfs::WalkPath(Root(), "f", cred_);
  ASSERT_TRUE(file.ok());
  vfs::SetAttrRequest request;
  request.set_size = true;
  request.size = 5;
  ASSERT_TRUE((*file)->SetAttr(request, cred_).ok());
  auto contents = vfs::ReadFileAt(&vfs_, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "hello");
}

TEST_F(UfsVfsTest, RenameIntoOwnSubtreeRejected) {
  ASSERT_TRUE(vfs::MkdirAll(&vfs_, "a/b/c").ok());
  auto root = Root();
  auto c = vfs::WalkPath(root, "a/b/c", cred_);
  ASSERT_TRUE(c.ok());
  // Moving "a" into a/b/c would orphan the whole subtree in a cycle.
  EXPECT_EQ(root->Rename("a", *c, "a-again", cred_).code(), ErrorCode::kInvalidArgument);
  // Moving a directory into itself is equally forbidden.
  auto a = vfs::WalkPath(root, "a", cred_);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(root->Rename("a", *a, "self", cred_).code(), ErrorCode::kInvalidArgument);
  // The tree is untouched and clean.
  EXPECT_TRUE(vfs::Exists(&vfs_, "a/b/c"));
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(UfsVfsTest, StatfsReflectsUsage) {
  auto before = vfs_.Statfs();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(vfs::WriteFileAt(&vfs_, "f", std::string(100000, 'x')).ok());
  auto after = vfs_.Statfs();
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->free_blocks, before->free_blocks);
  EXPECT_EQ(after->free_inodes + 1, before->free_inodes);
}

}  // namespace
}  // namespace ficus::ufs
