// Property-style sweeps over the UFS: random operation sequences must
// leave the filesystem fsck-clean and agree with an in-memory model.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/ufs/ufs.h"

namespace ficus::ufs {
namespace {

struct ModelFile {
  std::vector<uint8_t> contents;
  InodeNum ino = kInvalidInode;
};

class UfsRandomOpsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UfsRandomOpsTest, RandomOpsStayConsistentWithModel) {
  SimClock clock;
  storage::BlockDevice device(8192);
  storage::BufferCache cache(&device, 128);
  Ufs ufs(&cache, &clock);
  ASSERT_TRUE(ufs.Format(1024).ok());

  Rng rng(SeedFromEnvOr(GetParam(), "ufs_property"));
  std::map<std::string, ModelFile> model;
  int next_name = 0;

  for (int op = 0; op < 300; ++op) {
    int action = static_cast<int>(rng.NextBelow(10));
    if (action < 3) {
      // create
      std::string name = "f" + std::to_string(next_name++);
      auto ino = ufs.CreateFile(kRootInode, name, FileType::kRegular, 0644, 0, 0);
      ASSERT_TRUE(ino.ok());
      model[name] = ModelFile{{}, ino.value()};
    } else if (action < 6 && !model.empty()) {
      // write at random offset
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      uint64_t offset = rng.NextBelow(64 * 1024);
      size_t length = static_cast<size_t>(rng.NextBelow(8 * 1024) + 1);
      std::vector<uint8_t> data(length);
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      ASSERT_TRUE(ufs.WriteAt(it->second.ino, offset, data).ok());
      auto& contents = it->second.contents;
      if (offset + length > contents.size()) {
        contents.resize(static_cast<size_t>(offset + length), 0);
      }
      std::copy(data.begin(), data.end(),
                contents.begin() + static_cast<ptrdiff_t>(offset));
    } else if (action < 7 && !model.empty()) {
      // truncate
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      uint64_t new_size = rng.NextBelow(32 * 1024);
      ASSERT_TRUE(ufs.Truncate(it->second.ino, new_size).ok());
      it->second.contents.resize(static_cast<size_t>(new_size), 0);
    } else if (action < 8 && !model.empty()) {
      // unlink
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      ASSERT_TRUE(ufs.Unlink(kRootInode, it->first).ok());
      model.erase(it);
    } else if (!model.empty()) {
      // verify a random file in full
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      auto contents = ufs.ReadAll(it->second.ino);
      ASSERT_TRUE(contents.ok());
      ASSERT_EQ(contents.value(), it->second.contents);
    }
  }

  // Final: every file matches the model and fsck is clean.
  for (const auto& [name, file] : model) {
    auto found = ufs.DirLookup(kRootInode, name);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), file.ino);
    auto contents = ufs.ReadAll(file.ino);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents.value(), file.contents) << name;
  }
  auto problems = ufs.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UfsRandomOpsTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class UfsFileSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(UfsFileSizeTest, WholeFileRoundTripAtManySizes) {
  SimClock clock;
  storage::BlockDevice device(8192);
  storage::BufferCache cache(&device, 64);
  Ufs ufs(&cache, &clock);
  ASSERT_TRUE(ufs.Format(64).ok());
  auto ino = ufs.CreateFile(kRootInode, "f", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());

  size_t size = GetParam();
  std::vector<uint8_t> payload(size);
  for (size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  ASSERT_TRUE(ufs.WriteAll(*ino, payload).ok());
  cache.Invalidate();
  auto contents = ufs.ReadAll(*ino);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), payload);
  auto problems = ufs.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

INSTANTIATE_TEST_SUITE_P(Sizes, UfsFileSizeTest,
                         ::testing::Values(0, 1, 100, 4095, 4096, 4097, 12 * 4096,
                                           12 * 4096 + 1, 50 * 4096, 200 * 4096 + 123));

}  // namespace
}  // namespace ficus::ufs
