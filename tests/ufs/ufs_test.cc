#include "src/ufs/ufs.h"

#include <gtest/gtest.h>

namespace ficus::ufs {
namespace {

class UfsTest : public ::testing::Test {
 protected:
  UfsTest() : device_(4096), cache_(&device_, 256), ufs_(&cache_, &clock_) {
    EXPECT_TRUE(ufs_.Format(512).ok());
  }

  void ExpectClean() {
    auto problems = ufs_.Check();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << "fsck: " << problems->front();
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BufferCache cache_;
  Ufs ufs_;
};

TEST_F(UfsTest, FormatCreatesRootDirectory) {
  auto root = ufs_.ReadInode(kRootInode);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->type, FileType::kDirectory);
  EXPECT_EQ(root->nlink, 2u);
  ExpectClean();
}

TEST_F(UfsTest, MountRereadsSuperblock) {
  Ufs second(&cache_, &clock_);
  ASSERT_TRUE(second.Mount().ok());
  EXPECT_EQ(second.superblock().inode_count, 512u);
  EXPECT_EQ(second.superblock().block_count, 4096u);
}

TEST_F(UfsTest, MountRejectsUnformattedDevice) {
  storage::BlockDevice blank(64);
  storage::BufferCache blank_cache(&blank, 8);
  Ufs fs(&blank_cache, &clock_);
  EXPECT_EQ(fs.Mount().code(), ErrorCode::kCorrupt);
}

TEST_F(UfsTest, CreateLookupRoundTrip) {
  auto ino = ufs_.CreateFile(kRootInode, "hello.txt", FileType::kRegular, 0644, 10, 20);
  ASSERT_TRUE(ino.ok());
  auto found = ufs_.DirLookup(kRootInode, "hello.txt");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), ino.value());
  auto inode = ufs_.ReadInode(ino.value());
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode->uid, 10u);
  EXPECT_EQ(inode->gid, 20u);
  ExpectClean();
}

TEST_F(UfsTest, DuplicateCreateFails) {
  ASSERT_TRUE(ufs_.CreateFile(kRootInode, "x", FileType::kRegular, 0644, 0, 0).ok());
  EXPECT_EQ(ufs_.CreateFile(kRootInode, "x", FileType::kRegular, 0644, 0, 0).status().code(),
            ErrorCode::kExists);
  ExpectClean();
}

TEST_F(UfsTest, LookupMissingFails) {
  EXPECT_EQ(ufs_.DirLookup(kRootInode, "ghost").status().code(), ErrorCode::kNotFound);
}

TEST_F(UfsTest, WriteReadSmallFile) {
  auto ino = ufs_.CreateFile(kRootInode, "f", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  std::vector<uint8_t> payload = {'a', 'b', 'c'};
  ASSERT_TRUE(ufs_.WriteAt(*ino, 0, payload).ok());
  auto contents = ufs_.ReadAll(*ino);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), payload);
  ExpectClean();
}

TEST_F(UfsTest, WriteAtOffsetExtendsWithZeros) {
  auto ino = ufs_.CreateFile(kRootInode, "f", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  std::vector<uint8_t> payload = {0xFF};
  ASSERT_TRUE(ufs_.WriteAt(*ino, 10000, payload).ok());
  auto contents = ufs_.ReadAll(*ino);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->size(), 10001u);
  EXPECT_EQ((*contents)[0], 0);
  EXPECT_EQ((*contents)[9999], 0);
  EXPECT_EQ((*contents)[10000], 0xFF);
  ExpectClean();
}

TEST_F(UfsTest, LargeFileUsesIndirectBlocks) {
  auto ino = ufs_.CreateFile(kRootInode, "big", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  // 64 blocks: well past the 12 direct pointers.
  std::vector<uint8_t> payload(64 * storage::kBlockSize);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(ufs_.WriteAt(*ino, 0, payload).ok());
  auto inode = ufs_.ReadInode(*ino);
  ASSERT_TRUE(inode.ok());
  EXPECT_NE(inode->indirect, 0u);
  auto contents = ufs_.ReadAll(*ino);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), payload);
  ExpectClean();
}

TEST_F(UfsTest, DoubleIndirectRoundTrip) {
  auto ino = ufs_.CreateFile(kRootInode, "big", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  // Sparse write straddling the single-indirect boundary: the last
  // single-indirect block and the first few double-indirect ones.
  const uint64_t boundary =
      static_cast<uint64_t>(kDirectBlocks + kPointersPerBlock) * storage::kBlockSize;
  std::vector<uint8_t> payload(4 * storage::kBlockSize);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  ASSERT_TRUE(ufs_.WriteAt(*ino, boundary - storage::kBlockSize, payload).ok());
  auto inode = ufs_.ReadInode(*ino);
  ASSERT_TRUE(inode.ok());
  EXPECT_NE(inode->double_indirect, 0u);
  std::vector<uint8_t> got;
  ASSERT_TRUE(ufs_.ReadAt(*ino, boundary - storage::kBlockSize, payload.size(), got).ok());
  EXPECT_EQ(got, payload);
  ExpectClean();
}

TEST_F(UfsTest, TruncateFreesDoubleIndirectTree) {
  auto ino = ufs_.CreateFile(kRootInode, "big", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  auto free_before = ufs_.FreeBlockCount();
  ASSERT_TRUE(free_before.ok());
  const uint64_t boundary =
      static_cast<uint64_t>(kDirectBlocks + kPointersPerBlock) * storage::kBlockSize;
  std::vector<uint8_t> payload(8 * storage::kBlockSize, 0x5A);
  ASSERT_TRUE(ufs_.WriteAt(*ino, boundary, payload).ok());
  ASSERT_TRUE(ufs_.Truncate(*ino, 0).ok());
  auto inode = ufs_.ReadInode(*ino);
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode->double_indirect, 0u);
  auto free_after = ufs_.FreeBlockCount();
  ASSERT_TRUE(free_after.ok());
  EXPECT_EQ(free_after.value(), free_before.value());
  ExpectClean();
}

TEST_F(UfsTest, CreateFilesBatchesOneDirectoryWrite) {
  std::vector<std::string> names = {"a", "b", "c", "d"};
  auto created = ufs_.CreateFiles(kRootInode, names, FileType::kRegular, 0644, 3, 0);
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    auto found = ufs_.DirLookup(kRootInode, names[i]);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), (*created)[i]);
    auto inode = ufs_.ReadInode((*created)[i]);
    ASSERT_TRUE(inode.ok());
    EXPECT_EQ(inode->uid, 3u);
  }
  ExpectClean();
}

TEST_F(UfsTest, CreateFilesRejectsWholeBatchOnDuplicate) {
  ASSERT_TRUE(ufs_.CreateFile(kRootInode, "taken", FileType::kRegular, 0644, 0, 0).ok());
  auto free_before = ufs_.FreeInodeCount();
  ASSERT_TRUE(free_before.ok());
  std::vector<std::string> names = {"fresh", "taken"};
  EXPECT_EQ(ufs_.CreateFiles(kRootInode, names, FileType::kRegular, 0644, 0, 0)
                .status()
                .code(),
            ErrorCode::kExists);
  EXPECT_EQ(ufs_.DirLookup(kRootInode, "fresh").status().code(), ErrorCode::kNotFound);
  auto free_after = ufs_.FreeInodeCount();
  ASSERT_TRUE(free_after.ok());
  EXPECT_EQ(free_after.value(), free_before.value());
  ExpectClean();
}

TEST_F(UfsTest, MaxFileSizeEnforced) {
  auto ino = ufs_.CreateFile(kRootInode, "huge", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  std::vector<uint8_t> one = {1};
  EXPECT_EQ(ufs_.WriteAt(*ino, kMaxFileSize, one).status().code(), ErrorCode::kNoSpace);
}

TEST_F(UfsTest, TruncateShrinksAndFreesBlocks) {
  auto ino = ufs_.CreateFile(kRootInode, "f", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  std::vector<uint8_t> payload(20 * storage::kBlockSize, 7);
  ASSERT_TRUE(ufs_.WriteAt(*ino, 0, payload).ok());
  auto free_before = ufs_.FreeBlockCount();
  ASSERT_TRUE(free_before.ok());
  ASSERT_TRUE(ufs_.Truncate(*ino, 100).ok());
  auto free_after = ufs_.FreeBlockCount();
  ASSERT_TRUE(free_after.ok());
  EXPECT_GT(free_after.value(), free_before.value());
  auto contents = ufs_.ReadAll(*ino);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 100u);
  EXPECT_EQ((*contents)[0], 7);
  ExpectClean();
}

TEST_F(UfsTest, TruncateToZeroFreesEverything) {
  auto ino = ufs_.CreateFile(kRootInode, "f", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  std::vector<uint8_t> payload(30 * storage::kBlockSize, 9);
  ASSERT_TRUE(ufs_.WriteAt(*ino, 0, payload).ok());
  ASSERT_TRUE(ufs_.Truncate(*ino, 0).ok());
  auto inode = ufs_.ReadInode(*ino);
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode->size, 0u);
  EXPECT_EQ(inode->indirect, 0u);
  ExpectClean();
}

TEST_F(UfsTest, UnlinkFreesInode) {
  auto ino = ufs_.CreateFile(kRootInode, "f", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  auto free_before = ufs_.FreeInodeCount();
  ASSERT_TRUE(ufs_.Unlink(kRootInode, "f").ok());
  auto free_after = ufs_.FreeInodeCount();
  EXPECT_EQ(free_after.value(), free_before.value() + 1);
  EXPECT_EQ(ufs_.DirLookup(kRootInode, "f").status().code(), ErrorCode::kNotFound);
  ExpectClean();
}

TEST_F(UfsTest, UnlinkNonEmptyDirectoryFails) {
  auto dir = ufs_.CreateFile(kRootInode, "d", FileType::kDirectory, 0755, 0, 0);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(ufs_.CreateFile(*dir, "child", FileType::kRegular, 0644, 0, 0).ok());
  EXPECT_EQ(ufs_.Unlink(kRootInode, "d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(ufs_.Unlink(*dir, "child").ok());
  EXPECT_TRUE(ufs_.Unlink(kRootInode, "d").ok());
  ExpectClean();
}

TEST_F(UfsTest, DirRepointSwingsEntryAtomically) {
  auto a = ufs_.CreateFile(kRootInode, "a", FileType::kRegular, 0644, 0, 0);
  auto b = ufs_.CreateFile(kRootInode, "b", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(ufs_.DirRepoint(kRootInode, "a", *b).ok());
  auto found = ufs_.DirLookup(kRootInode, "a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), *b);
}

TEST_F(UfsTest, DirListReturnsAllEntries) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        ufs_.CreateFile(kRootInode, "f" + std::to_string(i), FileType::kRegular, 0644, 0, 0)
            .ok());
  }
  auto entries = ufs_.DirList(kRootInode);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 10u);
}

TEST_F(UfsTest, InodeExhaustionReported) {
  // 512 inodes were formatted; exhaust them.
  Status last = OkStatus();
  for (int i = 0; i < 600; ++i) {
    auto ino =
        ufs_.CreateFile(kRootInode, "f" + std::to_string(i), FileType::kRegular, 0644, 0, 0);
    if (!ino.ok()) {
      last = ino.status();
      break;
    }
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
}

TEST_F(UfsTest, RejectsBadNames) {
  EXPECT_EQ(ufs_.DirAdd(kRootInode, "", 5, FileType::kRegular).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ufs_.DirAdd(kRootInode, "a/b", 5, FileType::kRegular).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ufs_.DirAdd(kRootInode, std::string(300, 'n'), 5, FileType::kRegular).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(UfsTest, CheckDetectsNlinkMismatch) {
  auto ino = ufs_.CreateFile(kRootInode, "f", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  auto inode = ufs_.ReadInode(*ino);
  ASSERT_TRUE(inode.ok());
  inode->nlink = 5;  // corrupt it
  ASSERT_TRUE(ufs_.WriteInode(*ino, *inode).ok());
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_FALSE(problems->empty());
}

TEST_F(UfsTest, SurvivesCacheInvalidation) {
  auto ino = ufs_.CreateFile(kRootInode, "persist", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(ino.ok());
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  ASSERT_TRUE(ufs_.WriteAt(*ino, 0, payload).ok());
  cache_.Invalidate();  // everything must come back from the device
  auto contents = ufs_.ReadAll(*ino);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), payload);
}

TEST_F(UfsTest, DirIndexServesRepeatedLookupsWithoutRereads) {
  // After one parse, repeated lookups in an unchanged directory are served
  // from the in-memory index — no buffer-cache traffic for the dir data.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        ufs_.CreateFile(kRootInode, "f" + std::to_string(i), FileType::kRegular, 0644, 0, 0)
            .ok());
  }
  ASSERT_TRUE(ufs_.DirLookup(kRootInode, "f0").ok());  // warm the index
  uint64_t hits_before = cache_.stats().hits;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ufs_.DirLookup(kRootInode, "f" + std::to_string(i)).ok());
  }
  // Each indexed lookup still reads the inode (1 cache hit) but not the
  // directory's data blocks; an unindexed parse would add data reads too.
  EXPECT_EQ(cache_.stats().hits - hits_before, 50u);
}

TEST_F(UfsTest, DirIndexInvalidatedByDirectDataWrite) {
  // A raw WriteAt to the directory inode (bypassing DirAdd/DirRemove) must
  // not leave the index serving the old parsed entries.
  auto a = ufs_.CreateFile(kRootInode, "a", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ufs_.DirLookup(kRootInode, "a").ok());  // index the root

  // Rewrite the root directory's bytes to an empty record list.
  ASSERT_TRUE(ufs_.WriteAll(kRootInode, std::vector<uint8_t>{}).ok());
  EXPECT_EQ(ufs_.DirLookup(kRootInode, "a").status().code(), ErrorCode::kNotFound);
  auto entries = ufs_.DirList(kRootInode);
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST_F(UfsTest, DirIndexDroppedOnCacheInvalidation) {
  // DirRepoint keeps the directory's size (and, with a frozen clock, its
  // mtime) unchanged, so only the cache-epoch check can notice that the
  // device diverged — the crash-simulation pattern.
  auto a = ufs_.CreateFile(kRootInode, "a", FileType::kRegular, 0644, 0, 0);
  auto b = ufs_.CreateFile(kRootInode, "b", FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(ufs_.DirRepoint(kRootInode, "a", *b).ok());
  cache_.Invalidate();
  auto found = ufs_.DirLookup(kRootInode, "a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), *b);  // re-parsed from the device, not the index
}

TEST_F(UfsTest, DirIndexSurvivesMutationsThroughDirOps) {
  // Add/remove/repoint keep the index coherent: every op re-stamps or
  // erases, and lookups always agree with a from-scratch parse.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        ufs_.CreateFile(kRootInode, "f" + std::to_string(i), FileType::kRegular, 0644, 0, 0)
            .ok());
  }
  ASSERT_TRUE(ufs_.Unlink(kRootInode, "f3").ok());
  ASSERT_TRUE(ufs_.Unlink(kRootInode, "f17").ok());
  EXPECT_EQ(ufs_.DirLookup(kRootInode, "f3").status().code(), ErrorCode::kNotFound);
  auto entries = ufs_.DirList(kRootInode);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 18u);
  ASSERT_TRUE(ufs_.DirLookup(kRootInode, "f0").ok());
  ExpectClean();
}

}  // namespace
}  // namespace ficus::ufs
