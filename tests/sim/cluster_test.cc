#include "src/sim/cluster.h"

#include <gtest/gtest.h>

#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() {
    a_ = cluster_.AddHost("a");
    b_ = cluster_.AddHost("b");
    c_ = cluster_.AddHost("c");
    auto volume = cluster_.CreateVolume({a_, b_});
    EXPECT_TRUE(volume.ok());
    volume_ = volume.value();
  }

  repl::LogicalLayer* Mount(FicusHost* host) {
    auto logical = cluster_.MountEverywhere(host, volume_);
    EXPECT_TRUE(logical.ok());
    return logical.value();
  }

  Cluster cluster_;
  FicusHost* a_;
  FicusHost* b_;
  FicusHost* c_;
  repl::VolumeId volume_;
};

TEST_F(ClusterTest, VolumeVisibleFromBothStoringHosts) {
  auto la = Mount(a_);
  ASSERT_TRUE(vfs::WriteFileAt(la, "f", "from a").ok());
  // Reconcile so host b's replica catches up, then read from b.
  auto rounds = cluster_.ReconcileUntilQuiescent();
  ASSERT_TRUE(rounds.ok());
  auto lb = Mount(b_);
  auto contents = vfs::ReadFileAt(lb, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "from a");
}

TEST_F(ClusterTest, NonStoringHostMountsRemotely) {
  auto la = Mount(a_);
  ASSERT_TRUE(vfs::WriteFileAt(la, "f", "payload").ok());
  // Host c stores nothing; every operation crosses NFS to a or b.
  auto lc = Mount(c_);
  auto contents = vfs::ReadFileAt(lc, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "payload");
  // And c can update through the same path (one-copy availability).
  ASSERT_TRUE(vfs::WriteFileAt(lc, "g", "written remotely").ok());
  auto local = vfs::ReadFileAt(la, "g");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local.value(), "written remotely");
}

TEST_F(ClusterTest, UpdateNotificationFlowsOverTheNetwork) {
  auto la = Mount(a_);
  ASSERT_TRUE(vfs::WriteFileAt(la, "f", "v1").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  // A second write: b's physical layer hears about it via multicast.
  ASSERT_TRUE(vfs::WriteFileAt(la, "f", "v2").ok());
  repl::PhysicalLayer* b_phys = b_->registry().LocalReplica(volume_);
  ASSERT_NE(b_phys, nullptr);
  EXPECT_GT(b_phys->PendingVersionCount(), 0u);

  // The propagation daemon pulls the new version across NFS.
  ASSERT_TRUE(cluster_.RunPropagationEverywhere().ok());
  auto lb = Mount(b_);
  cluster_.Partition({{b_}});  // prove b serves it from its own replica
  auto contents = vfs::ReadFileAt(lb, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "v2");
  cluster_.Heal();
}

TEST_F(ClusterTest, PartitionedUpdateBothSidesThenConverge) {
  auto la = Mount(a_);
  ASSERT_TRUE(vfs::WriteFileAt(la, "shared", "base").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  cluster_.Partition({{a_}, {b_, c_}});
  auto lb = Mount(b_);
  // Both sides create different files during the partition.
  ASSERT_TRUE(vfs::WriteFileAt(la, "from-a", "1").ok());
  ASSERT_TRUE(vfs::WriteFileAt(lb, "from-b", "2").ok());

  cluster_.Heal();
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  for (FicusHost* host : {a_, b_}) {
    auto logical = Mount(host);
    EXPECT_TRUE(vfs::Exists(logical, "from-a")) << host->name();
    EXPECT_TRUE(vfs::Exists(logical, "from-b")) << host->name();
    EXPECT_TRUE(vfs::Exists(logical, "shared")) << host->name();
  }
}

TEST_F(ClusterTest, ConflictingFileUpdateReportedAfterHeal) {
  auto la = Mount(a_);
  ASSERT_TRUE(vfs::WriteFileAt(la, "doc", "base").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  cluster_.Partition({{a_}, {b_}});
  auto lb = Mount(b_);
  ASSERT_TRUE(vfs::WriteFileAt(la, "doc", "a's edit").ok());
  ASSERT_TRUE(vfs::WriteFileAt(lb, "doc", "b's edit").ok());

  cluster_.Heal();
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  EXPECT_EQ(vfs::ReadFileAt(la, "doc").status().code(), ErrorCode::kConflict);
  EXPECT_GE(a_->conflict_log().CountOf(repl::ConflictKind::kFileUpdate) +
                b_->conflict_log().CountOf(repl::ConflictKind::kFileUpdate),
            1u);
}

TEST_F(ClusterTest, ReconcileUntilQuiescentTerminates) {
  auto la = Mount(a_);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(vfs::WriteFileAt(la, "f" + std::to_string(i), "x").ok());
  }
  auto rounds = cluster_.ReconcileUntilQuiescent(8);
  ASSERT_TRUE(rounds.ok());
  EXPECT_LE(rounds.value(), 8);
  // A second call converges immediately.
  auto again = cluster_.ReconcileUntilQuiescent(8);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 1);
}

TEST_F(ClusterTest, UpdateDuringPartitionServedByReachableReplica) {
  auto la = Mount(a_);
  ASSERT_TRUE(vfs::WriteFileAt(la, "f", "base").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
  // Host c (non-storing) is cut off from a but can still reach b.
  auto lc = Mount(c_);
  cluster_.network().DisconnectPair(c_->id(), a_->id());
  auto contents = vfs::ReadFileAt(lc, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "base");
}

}  // namespace
}  // namespace ficus::sim
