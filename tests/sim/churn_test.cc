// The churn tier (ctest -L churn): cluster-scale membership under host
// flaps, partitions, crashes, and reboots. Fifty-host clusters run with
// heartbeat monitors on every host while a scripted fault schedule takes
// hosts up and down; after the schedule heals, every replica must
// converge and no live reachable peer may still be condemned. The
// smaller scenarios pin down the membership->daemon couplings one at a
// time: dead-peer propagation skips, and recovery resync after reboot.
//
// Parameterized over both runtimes (deterministic and threaded) so the
// TSan leg exercises the monitor's locking against real service pools.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/fault.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

constexpr uint64_t kSeed = 20260808;

HostConfig ChurnHost() {
  HostConfig config;
  // Small disks: 50 hosts fit comfortably, and the workload is files in
  // the hundreds of bytes, not megabytes.
  config.disk_blocks = 2048;
  config.cache_blocks = 256;
  config.inode_count = 512;
  // Full membership participant.
  config.heartbeat = cluster::HeartbeatConfig{};
  // Modest per-attempt patience so a down peer costs sim-milliseconds.
  config.transport_retry.rpc_timeout = 20 * kMillisecond;
  config.transport_retry.backoff_base = 10 * kMillisecond;
  config.transport_retry.retry_unreachable = true;
  config.transport_retry.rng_seed = kSeed;
  config.propagation.retry_backoff_base = 250 * kMillisecond;
  return config;
}

RuntimeOptions OptionsFor(RuntimeMode mode) {
  RuntimeOptions options;
  options.mode = mode;
  // One nfsd per host keeps the threaded 50-host cluster at a sane
  // thread count while still exercising real cross-thread interleavings.
  options.nfs_service_threads = 1;
  return options;
}

// Condemning a peer takes dead_threshold consecutive missed probes; give
// the monitors that many probe intervals plus slack, polling as we go.
void PollUntilSettled(Cluster& cluster) {
  const cluster::HeartbeatConfig config;  // stock participant settings
  for (uint32_t i = 0; i < config.dead_threshold + 2; ++i) {
    cluster.Sleep(config.interval);
    ASSERT_TRUE(cluster.PollHeartbeatsEverywhere().ok());
  }
}

uint64_t CounterOf(FicusHost* host, const std::string& name) {
  return host->metrics().counter(name)->value();
}

// Root rollup digest of every locally stored replica of `volume` across
// the cluster; converged means all equal.
void RootDigests(Cluster& cluster, const repl::VolumeId& volume,
                 std::vector<uint64_t>* out) {
  for (size_t i = 0; i < cluster.host_count(); ++i) {
    repl::PhysicalLayer* layer = cluster.host(i)->registry().LocalReplica(volume);
    if (layer == nullptr) {
      continue;
    }
    auto rows = layer->GetSubtreeDigests({repl::kRootFileId});
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->size(), 1u);
    ASSERT_TRUE(rows->front().status.ok());
    out->push_back(rows->front().subtree_digest);
  }
}

class ChurnTest : public ::testing::TestWithParam<RuntimeMode> {};

// The headline scenario: 50 hosts, a 5-replica volume, writers spread
// across the cluster, and a fault schedule that flaps replica hosts on
// staggered phases and cuts the cluster in half mid-run. After the
// schedule ends every replica converges to one digest and no monitor
// still condemns a live reachable peer.
TEST_P(ChurnTest, FiftyHostFlapAndPartitionScheduleConvergesAfterHeal) {
  Cluster cluster(OptionsFor(GetParam()));
  std::vector<FicusHost*> hosts = cluster.AddHosts(50, ChurnHost());
  auto volume = cluster.CreateVolume(
      {hosts[0], hosts[10], hosts[20], hosts[30], hosts[40]});
  ASSERT_TRUE(volume.ok()) << volume.status().ToString();

  std::vector<repl::LogicalLayer*> mounts;
  for (FicusHost* writer : {hosts[0], hosts[10], hosts[20], hosts[30], hosts[40]}) {
    auto logical = cluster.MountEverywhere(writer, *volume);
    ASSERT_TRUE(logical.ok()) << logical.status().ToString();
    mounts.push_back(logical.value());
  }

  // Staggered flaps on three of the five replica hosts: each goes fully
  // dark for 400ms out of every 2s, phases offset so at least two
  // replicas are always up. Plus a mid-run partition splitting the
  // replica set 2/3 for two seconds.
  net::FaultPlan plan(kSeed);
  plan.AddFlap(hosts[10]->id(), 0, /*first_down=*/500 * kMillisecond,
               /*down_for=*/400 * kMillisecond, /*period=*/2 * kSecond);
  plan.AddFlap(hosts[20]->id(), 0, 1200 * kMillisecond, 400 * kMillisecond,
               2 * kSecond);
  plan.AddFlap(hosts[30]->id(), 0, 1900 * kMillisecond, 400 * kMillisecond,
               2 * kSecond);
  std::vector<net::HostId> left, right;
  for (size_t i = 0; i < hosts.size(); ++i) {
    (i < 25 ? left : right).push_back(hosts[i]->id());
  }
  plan.SchedulePartition(4 * kSecond, {left, right});
  plan.ScheduleHeal(6 * kSecond);
  cluster.InstallFaultPlan(std::move(plan));

  // Ten rounds of cross-cluster writes while the schedule chews on the
  // links; daemons and monitors run on their wall-clock periods.
  for (int round = 0; round < 10; ++round) {
    std::string n = std::to_string(round);
    for (size_t w = 0; w < mounts.size(); ++w) {
      ASSERT_TRUE(
          vfs::WriteFileAt(mounts[w], "w" + std::to_string(w) + "-" + n, "v" + n)
              .ok());
    }
    ASSERT_TRUE(cluster
                    .RunFor(kSecond, /*propagation_period=*/250 * kMillisecond,
                            /*reconcile_period=*/0,
                            /*heartbeat_period=*/100 * kMillisecond)
                    .ok());
  }

  // Heal, let the monitors re-admit everyone, then converge.
  cluster.ClearFaults();
  PollUntilSettled(cluster);
  ASSERT_TRUE(cluster
                  .RunFor(2 * kSecond, 250 * kMillisecond, 0, 100 * kMillisecond)
                  .ok());
  auto rounds = cluster.ReconcileUntilQuiescent(/*max_rounds=*/32);
  ASSERT_TRUE(rounds.ok());

  std::vector<uint64_t> digests;
  RootDigests(cluster, *volume, &digests);
  ASSERT_EQ(digests.size(), 5u);
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[0], digests[i]) << "replica " << i << " did not converge";
  }

  // Availability oracle, test-tier edition: after the heal settled, no
  // monitor may still condemn a peer that is up and reachable.
  for (FicusHost* host : {hosts[0], hosts[10], hosts[20], hosts[30], hosts[40]}) {
    cluster::HeartbeatMonitor* monitor = host->heartbeat();
    ASSERT_NE(monitor, nullptr);
    for (net::HostId peer : monitor->Watched()) {
      if (!cluster.network().HostUp(peer) ||
          !cluster.network().Reachable(host->id(), peer)) {
        continue;
      }
      EXPECT_FALSE(monitor->IsDead(peer))
          << host->name() << " still condemns live peer " << peer
          << " after heal";
    }
  }
}

// Crash a replica host, let the detectors condemn it, reboot it: the
// dead->alive transitions must trigger recovery resyncs that pull the
// writes it missed, and the cluster must converge.
TEST_P(ChurnTest, RebootedHostIsResyncedByRecoveryCallbacks) {
  Cluster cluster(OptionsFor(GetParam()));
  std::vector<FicusHost*> hosts = cluster.AddHosts(10, ChurnHost());
  auto volume = cluster.CreateVolume({hosts[0], hosts[1], hosts[2]});
  ASSERT_TRUE(volume.ok());
  auto mount0 = cluster.MountEverywhere(hosts[0], *volume);
  ASSERT_TRUE(mount0.ok());
  PollUntilSettled(cluster);  // everyone alive and measured

  hosts[1]->Crash();
  PollUntilSettled(cluster);
  EXPECT_TRUE(hosts[0]->heartbeat()->IsDead(hosts[1]->id()));

  // Writes the crashed host misses entirely.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        vfs::WriteFileAt(mount0.value(), "missed" + std::to_string(i), "m").ok());
  }
  ASSERT_TRUE(cluster.RunFor(kSecond, 250 * kMillisecond, 0, 100 * kMillisecond).ok());

  uint64_t resyncs_before = 0;
  for (FicusHost* host : hosts) {
    resyncs_before += CounterOf(host, "cluster.hb.resyncs");
  }
  ASSERT_TRUE(hosts[1]->Reboot().ok());
  PollUntilSettled(cluster);
  uint64_t resyncs_after = 0;
  for (FicusHost* host : hosts) {
    resyncs_after += CounterOf(host, "cluster.hb.resyncs");
  }
  EXPECT_GT(resyncs_after, resyncs_before)
      << "no recovery resync fired on the dead->alive transitions";

  ASSERT_TRUE(cluster.ReconcileUntilQuiescent(16).ok());
  auto logical1 = cluster.MountEverywhere(hosts[1], *volume);
  ASSERT_TRUE(logical1.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(vfs::Exists(logical1.value(), "missed" + std::to_string(i)))
        << "rebooted host missing missed" << i;
  }
  std::vector<uint64_t> digests;
  RootDigests(cluster, *volume, &digests);
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

INSTANTIATE_TEST_SUITE_P(Runtimes, ChurnTest,
                         ::testing::Values(RuntimeMode::kDeterministic,
                                           RuntimeMode::kThreaded),
                         [](const ::testing::TestParamInfo<RuntimeMode>& info) {
                           return std::string(RuntimeModeName(info.param));
                         });

// Deterministic-only (the assertion counts exact daemon passes): once
// the detector condemns a crashed source, the propagation daemon spends
// zero RPCs and zero retry budget on it — the pass bumps
// repl.prop.skipped_dead and keeps the entry queued.
TEST(ChurnDeadSkipTest, CondemnedSourceCostsNoPropagationRpcs) {
  Cluster cluster;
  std::vector<FicusHost*> hosts = cluster.AddHosts(5, ChurnHost());
  auto volume = cluster.CreateVolume({hosts[0], hosts[1], hosts[2]});
  ASSERT_TRUE(volume.ok());
  auto mount1 = cluster.MountEverywhere(hosts[1], *volume);
  ASSERT_TRUE(mount1.ok());
  PollUntilSettled(cluster);

  // Seed the file everywhere first: the dead-skip guards *stored* files;
  // a never-seen file would take the optional-storage path instead.
  ASSERT_TRUE(vfs::WriteFileAt(mount1.value(), "doomed-source", "v1").ok());
  ASSERT_TRUE(cluster.ReconcileUntilQuiescent(8).ok());

  // An update on host 1 notifies the peers (entry source = replica 2),
  // then host 1 crashes before anyone pulls.
  ASSERT_TRUE(vfs::WriteFileAt(mount1.value(), "doomed-source", "v2").ok());
  hosts[1]->Crash();
  PollUntilSettled(cluster);
  ASSERT_TRUE(hosts[0]->heartbeat()->IsDead(hosts[1]->id()));

  uint64_t skipped_before = hosts[0]->propagation_stats(*volume)->skipped_dead;
  uint64_t rpcs_before = cluster.network().stats().rpcs_sent;
  ASSERT_TRUE(hosts[0]->RunPropagation().ok());
  EXPECT_GT(hosts[0]->propagation_stats(*volume)->skipped_dead, skipped_before)
      << "the queued entry was not skipped-dead";
  EXPECT_EQ(cluster.network().stats().rpcs_sent, rpcs_before)
      << "propagation still sent RPCs towards a condemned source";

  // Recovery: after reboot and re-admission the entry still converges.
  ASSERT_TRUE(hosts[1]->Reboot().ok());
  PollUntilSettled(cluster);
  ASSERT_TRUE(hosts[0]->RunPropagation().ok());
  ASSERT_TRUE(cluster.ReconcileUntilQuiescent(16).ok());
  auto mount0 = cluster.MountEverywhere(hosts[0], *volume);
  ASSERT_TRUE(mount0.ok());
  auto contents = vfs::ReadFileAt(mount0.value(), "doomed-source");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "v2");
}

}  // namespace
}  // namespace ficus::sim
