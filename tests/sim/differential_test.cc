// Differential runtime check: the same generated schedule is executed
// under the deterministic runtime and under the threaded runtime (real
// NFS service pools + propagation worker threads), and both must be
// oracle-clean AND converge to the identical replica state digest.
// A handful of seeds run here under the `thread` label; the CI sim-check
// tier runs 50 via `sim_checker --differential`.
#include <gtest/gtest.h>

#include "src/sim/checker/checker.h"
#include "src/sim/checker/schedule.h"

namespace ficus::sim::checker {
namespace {

void ExpectDifferentialClean(const Schedule& schedule) {
  DifferentialResult result = RunDifferential(schedule);
  EXPECT_TRUE(result.deterministic.harness_errors.empty())
      << result.deterministic.Summary();
  EXPECT_TRUE(result.threaded.harness_errors.empty()) << result.threaded.Summary();
  EXPECT_FALSE(result.deterministic.failed())
      << "deterministic run violated the oracle (seed " << schedule.seed
      << "): " << result.deterministic.Summary();
  EXPECT_FALSE(result.threaded.failed())
      << "threaded run violated the oracle (seed " << schedule.seed
      << "): " << result.threaded.Summary();
  EXPECT_TRUE(result.digests_match)
      << "runtimes converged to different states (seed " << schedule.seed
      << ")\n--- deterministic ---\n"
      << result.deterministic.converged_digest << "\n--- threaded ---\n"
      << result.threaded.converged_digest;
}

TEST(DifferentialRuntimeTest, GeneratedSchedulesConvergeIdentically) {
  CheckerConfig config;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    ExpectDifferentialClean(GenerateSchedule(config, seed));
  }
}

TEST(DifferentialRuntimeTest, CrashHeavyScheduleConvergesIdentically) {
  CheckerConfig config;
  config.hosts = 4;
  config.ops = 64;
  ExpectDifferentialClean(GenerateSchedule(config, 99));
}

TEST(DifferentialRuntimeTest, DigestIsPopulatedAndDeterministic) {
  CheckerConfig config;
  Schedule schedule = GenerateSchedule(config, 7);
  ModelChecker checker;
  RunResult first = checker.Run(schedule);
  RunResult second = checker.Run(schedule);
  ASSERT_TRUE(first.harness_errors.empty()) << first.Summary();
  EXPECT_FALSE(first.converged_digest.empty());
  EXPECT_EQ(first.converged_digest, second.converged_digest)
      << "deterministic runtime replayed the same schedule to a different state";
}

}  // namespace
}  // namespace ficus::sim::checker
