#include "src/sim/workload.h"

#include <gtest/gtest.h>

#include "src/vfs/mem_vfs.h"
#include "src/vfs/pass_through.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

// Vnode layer that serves `budget` Opens and then fails every further one
// with an I/O error — the shape of a host dying mid-run.
class DyingVnode : public vfs::PassThroughVnode {
 public:
  DyingVnode(vfs::VnodePtr lower, int* budget)
      : PassThroughVnode(std::move(lower)), budget_(budget) {}

  Status Open(uint32_t flags, const vfs::OpContext& ctx) override {
    if (*budget_ <= 0) {
      return IoError("device lost");
    }
    --*budget_;
    return PassThroughVnode::Open(flags, ctx);
  }

 protected:
  vfs::VnodePtr WrapLower(vfs::VnodePtr lower) override {
    return std::make_shared<DyingVnode>(std::move(lower), budget_);
  }

 private:
  int* budget_;
};

class DyingVfs : public vfs::Vfs {
 public:
  DyingVfs(vfs::Vfs* lower, int* budget) : lower_(lower), budget_(budget) {}

  StatusOr<vfs::VnodePtr> Root() override {
    FICUS_ASSIGN_OR_RETURN(vfs::VnodePtr root, lower_->Root());
    return vfs::VnodePtr(std::make_shared<DyingVnode>(std::move(root), budget_));
  }

 private:
  vfs::Vfs* lower_;
  int* budget_;
};

TEST(WorkloadTest, PopulateCreatesAllFiles) {
  WorkloadConfig config;
  config.directories = 4;
  config.files_per_directory = 3;
  config.file_size_bytes = 64;
  Workload workload(config, 1);
  vfs::MemVfs fs;
  ASSERT_TRUE(workload.Populate(&fs).ok());
  for (int rank = 0; rank < workload.file_count(); ++rank) {
    EXPECT_TRUE(vfs::Exists(&fs, workload.PathOf(rank))) << rank;
  }
}

TEST(WorkloadTest, RunExecutesRequestedOps) {
  WorkloadConfig config;
  config.directories = 2;
  config.files_per_directory = 4;
  config.write_fraction = 0.5;
  Workload workload(config, 2);
  vfs::MemVfs fs;
  ASSERT_TRUE(workload.Populate(&fs).ok());
  ASSERT_TRUE(workload.Run(&fs, 200).ok());
  EXPECT_EQ(workload.stats().operations, 200u);
  EXPECT_EQ(workload.stats().reads + workload.stats().writes, 200u);
  EXPECT_EQ(workload.stats().failures, 0u);
  EXPECT_GT(workload.stats().writes, 50u);  // roughly half
  EXPECT_GT(workload.stats().reads, 50u);
}

TEST(WorkloadTest, SkewConcentratesAccesses) {
  // With heavy skew, the most popular file is hit far more often than a
  // mid-ranked one. Measure via read contents change: instead, rely on
  // the deterministic Zipf draw by running two workloads and comparing
  // failure-free op counts — covered; here verify determinism.
  WorkloadConfig config;
  config.zipf_skew = 1.2;
  Workload w1(config, 99);
  Workload w2(config, 99);
  vfs::MemVfs fs1, fs2;
  ASSERT_TRUE(w1.Populate(&fs1).ok());
  ASSERT_TRUE(w2.Populate(&fs2).ok());
  ASSERT_TRUE(w1.Run(&fs1, 100).ok());
  ASSERT_TRUE(w2.Run(&fs2, 100).ok());
  EXPECT_EQ(w1.stats().writes, w2.stats().writes);  // same seed, same draws
}

TEST(WorkloadTest, StatsCommittedWhenRunAbortsMidStream) {
  WorkloadConfig config;
  config.directories = 2;
  config.files_per_directory = 4;
  config.write_fraction = 0.0;  // every op is one Open; the budget is exact
  Workload workload(config, 5);
  vfs::MemVfs fs;
  ASSERT_TRUE(workload.Populate(&fs).ok());

  int budget = 7;
  DyingVfs dying(&fs, &budget);
  Status status = workload.Run(&dying, 20);
  EXPECT_EQ(status.code(), ErrorCode::kIo) << status.ToString();
  // The 7 completed ops AND the fatal attempt are committed, even though
  // the run aborted mid-stream — nothing from the last tick is dropped.
  EXPECT_EQ(workload.stats().operations, 8u);
  EXPECT_EQ(workload.stats().reads, 8u);
  EXPECT_EQ(workload.stats().failures, 1u);
}

TEST(WorkloadTest, PathOfIsStable) {
  WorkloadConfig config;
  config.directories = 3;
  config.files_per_directory = 5;
  Workload workload(config, 1);
  EXPECT_EQ(workload.PathOf(0), "d0/f0");
  EXPECT_EQ(workload.PathOf(4), "d0/f4");
  EXPECT_EQ(workload.PathOf(5), "d1/f0");
  EXPECT_EQ(workload.PathOf(14), "d2/f4");
}

}  // namespace
}  // namespace ficus::sim
