// FicusHost-level behaviours: export naming, resolver routing, datagram
// handling, selective replication, runtime replica addition, and the
// time-driven daemon scheduler.
#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

TEST(HostTest, ExportNamesAreUniquePerReplica) {
  repl::VolumeId v1{1, 1};
  repl::VolumeId v2{1, 2};
  EXPECT_NE(FicusHost::ExportName(v1, 1), FicusHost::ExportName(v1, 2));
  EXPECT_NE(FicusHost::ExportName(v1, 1), FicusHost::ExportName(v2, 1));
}

TEST(HostTest, AccessRoutesLocalWithoutNetwork) {
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a");
  auto volume = cluster.CreateVolume({a});
  ASSERT_TRUE(volume.ok());
  cluster.network().ResetStats();
  auto api = a->Access(*volume, 1);
  ASSERT_TRUE(api.ok());
  EXPECT_TRUE((*api)->GetAttributes(repl::kRootFileId).ok());
  EXPECT_EQ(cluster.network().stats().rpcs_sent, 0u);
}

TEST(HostTest, AccessRoutesRemoteOverNfs) {
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a");
  FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({b});
  ASSERT_TRUE(volume.ok());
  a->LearnReplicaLocation(*volume, 1, b->id());
  cluster.network().ResetStats();
  auto api = a->Access(*volume, 1);
  ASSERT_TRUE(api.ok());
  EXPECT_TRUE((*api)->GetAttributes(repl::kRootFileId).ok());
  EXPECT_GT(cluster.network().stats().rpcs_sent, 0u);
}

TEST(HostTest, AccessUnknownReplicaFails) {
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a");
  auto volume = cluster.CreateVolume({a});
  ASSERT_TRUE(volume.ok());
  EXPECT_EQ(a->Access(*volume, 42).status().code(), ErrorCode::kNotFound);
}

TEST(HostTest, MalformedDatagramIgnored) {
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a");
  FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  ASSERT_TRUE(volume.ok());
  // Garbage payload on the update channel must not crash or enqueue.
  cluster.network().Multicast(a->id(), {b->id()}, kUpdateChannel, {1, 2, 3});
  repl::PhysicalLayer* phys = b->registry().LocalReplica(*volume);
  ASSERT_NE(phys, nullptr);
  EXPECT_EQ(phys->PendingVersionCount(), 0u);
}

TEST(HostTest, SelectiveReplicationSkipsFilteredFiles) {
  Cluster cluster;
  FicusHost* full = cluster.AddHost("full");
  // Host "cache" only stores files whose names end in ".txt".
  HostConfig config;
  config.physical.storage_policy = [](const repl::FicusDirEntry& entry) {
    return entry.name.size() >= 4 && entry.name.substr(entry.name.size() - 4) == ".txt";
  };
  FicusHost* partial = cluster.AddHost("cache", config);
  auto volume = cluster.CreateVolume({full, partial});
  ASSERT_TRUE(volume.ok());

  auto fs = cluster.MountEverywhere(full, *volume);
  ASSERT_TRUE(vfs::WriteFileAt(*fs, "notes.txt", "wanted").ok());
  ASSERT_TRUE(vfs::WriteFileAt(*fs, "core.bin", "unwanted").ok());
  ASSERT_TRUE(cluster.ReconcileUntilQuiescent().ok());

  repl::PhysicalLayer* partial_phys = partial->registry().LocalReplica(*volume);
  ASSERT_NE(partial_phys, nullptr);
  auto entries = partial_phys->ReadDirectory(repl::kRootFileId);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);  // namespace fully replicated...
  int stored = 0;
  for (const auto& e : *entries) {
    if (partial_phys->Stores(e.file)) {
      ++stored;
      EXPECT_EQ(e.name, "notes.txt");
    }
  }
  EXPECT_EQ(stored, 1);  // ...contents selectively

  // The partial host still *reads* the unstored file — served remotely.
  auto fs_partial = cluster.MountEverywhere(partial, *volume);
  auto contents = vfs::ReadFileAt(*fs_partial, "core.bin");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "unwanted");
}

TEST(HostTest, AddReplicaAtRuntimeFillsFromPeers) {
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a");
  FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a});
  ASSERT_TRUE(volume.ok());
  auto fs = cluster.MountEverywhere(a, *volume);
  ASSERT_TRUE(vfs::MkdirAll(*fs, "docs").ok());
  ASSERT_TRUE(vfs::WriteFileAt(*fs, "docs/readme", "replicate me").ok());

  auto replica = cluster.AddReplica(*volume, b);
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(replica.value(), 2u);

  // b can now serve the data entirely from its own replica.
  cluster.Partition({{b}});
  auto fs_b = cluster.MountEverywhere(b, *volume);
  auto contents = vfs::ReadFileAt(*fs_b, "docs/readme");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "replicate me");
  cluster.Heal();
}

TEST(HostTest, RunForSchedulesDaemonsByPeriod) {
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a");
  FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  ASSERT_TRUE(volume.ok());
  auto fs = cluster.MountEverywhere(a, *volume);
  ASSERT_TRUE(vfs::WriteFileAt(*fs, "f", "timed").ok());

  // A minute of simulated time with 10s propagation, 30s reconciliation.
  ASSERT_TRUE(cluster.RunFor(60 * kSecond, 10 * kSecond, 30 * kSecond).ok());

  std::optional<repl::PropagationStats> stats = b->propagation_stats(*volume);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->runs, 5u);  // ~6 propagation ticks

  cluster.Partition({{b}});
  auto fs_b = cluster.MountEverywhere(b, *volume);
  auto contents = vfs::ReadFileAt(*fs_b, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "timed");
  cluster.Heal();
}

TEST(HostTest, RunForZeroPeriodsJustAdvancesTime) {
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a");
  auto volume = cluster.CreateVolume({a});
  ASSERT_TRUE(volume.ok());
  SimTime before = cluster.clock().Now();
  ASSERT_TRUE(cluster.RunFor(5 * kSecond, 0, 0).ok());
  EXPECT_EQ(cluster.clock().Now(), before + 5 * kSecond);
}

}  // namespace
}  // namespace ficus::sim
