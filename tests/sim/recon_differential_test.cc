// Digest-vs-full-walk reconciliation differential tier (ctest -L recon):
// every committed trace and a wide sweep of fresh seeded schedules run
// twice through the deterministic model checker — once with digest-guided
// subtree reconciliation, once with the exhaustive full walk — and must
//   1. converge to byte-identical replica state (equal converged digests),
//   2. agree on the oracle verdict, and
//   3. issue strictly fewer reconciliation RPCs on the digest path.
// This is the safety argument for digest pruning in executable form: if a
// digest ever wrongly judges two subtrees equal, the converged states (or
// the oracle verdicts) diverge and this tier fails.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/checker/checker.h"
#include "src/sim/checker/schedule.h"

#ifndef FICUS_SIM_TRACE_DIR
#error "FICUS_SIM_TRACE_DIR must point at the committed trace directory"
#endif

namespace ficus::sim::checker {
namespace {

struct ModeResults {
  RunResult digest;
  RunResult full;
};

ModeResults RunBothModes(Schedule schedule) {
  ModelChecker checker;  // deterministic runtime: bit-for-bit replays
  ModeResults out;
  schedule.config.reconcile_digest_guided = true;
  out.digest = checker.Run(schedule);
  schedule.config.reconcile_digest_guided = false;
  out.full = checker.Run(schedule);
  return out;
}

void ExpectModesAgree(const ModeResults& r) {
  ASSERT_TRUE(r.digest.harness_errors.empty()) << r.digest.Summary();
  ASSERT_TRUE(r.full.harness_errors.empty()) << r.full.Summary();
  EXPECT_EQ(r.digest.failed(), r.full.failed())
      << "oracle verdict diverged\n digest: " << r.digest.Summary()
      << "\n full walk: " << r.full.Summary();
  EXPECT_FALSE(r.digest.converged_digest.empty());
  EXPECT_EQ(r.digest.converged_digest, r.full.converged_digest)
      << "digest-guided reconciliation converged to a different state than "
         "the full walk — a subtree was wrongly pruned";
  ASSERT_GT(r.full.reconcile_remote_calls, 0u);
  EXPECT_LT(r.digest.reconcile_remote_calls, r.full.reconcile_remote_calls)
      << "digest guidance issued " << r.digest.reconcile_remote_calls
      << " RPCs, full walk " << r.full.reconcile_remote_calls;
}

TEST(ReconDifferentialTest, EveryCommittedTraceAgreesAcrossModes) {
  std::vector<std::filesystem::path> traces;
  for (const auto& entry : std::filesystem::directory_iterator(FICUS_SIM_TRACE_DIR)) {
    if (entry.path().extension() == ".json") traces.push_back(entry.path());
  }
  std::sort(traces.begin(), traces.end());
  ASSERT_FALSE(traces.empty());
  for (const std::filesystem::path& path : traces) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in) << "unreadable trace " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    StatusOr<Schedule> schedule = FromJson(buffer.str());
    ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
    ModeResults r = RunBothModes(schedule.value());
    EXPECT_EQ(r.digest.failed(), schedule->expect_violation) << r.digest.Summary();
    EXPECT_EQ(r.full.failed(), schedule->expect_violation) << r.full.Summary();
    ExpectModesAgree(r);
  }
}

// 100 fresh schedules, sharded so ctest -j runs the shards concurrently.
// Seeds are drawn from one fixed stream (shard s takes seeds [20s, 20s+20))
// so the union over shards is the same 100-seed corpus every run.
class ReconDifferentialSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReconDifferentialSweep, FreshSchedulesAgreeAcrossModes) {
  constexpr int kPerShard = 20;
  Rng seeds(0xd1665742026ULL);
  for (int i = 0; i < GetParam() * kPerShard; ++i) seeds.Next();  // skip to shard
  CheckerConfig config;
  for (int i = 0; i < kPerShard; ++i) {
    uint64_t seed = seeds.Next();
    SCOPED_TRACE("seed " + std::to_string(seed));
    Schedule schedule = GenerateSchedule(config, seed);
    ModeResults r = RunBothModes(schedule);
    EXPECT_FALSE(r.digest.failed()) << r.digest.Summary();
    EXPECT_FALSE(r.full.failed()) << r.full.Summary();
    ExpectModesAgree(r);
  }
}

INSTANTIATE_TEST_SUITE_P(AllShards, ReconDifferentialSweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace ficus::sim::checker
