// Tests for the model-checking harness itself: schedule determinism, the
// JSON trace format, clean-schedule exploration, and the guarded proof
// that a deliberately injected lost-update bug is caught and shrunk.
#include "src/sim/checker/checker.h"

#include <gtest/gtest.h>

#include "src/sim/checker/schedule.h"

namespace ficus::sim::checker {
namespace {

TEST(ScheduleTest, GenerationIsDeterministic) {
  CheckerConfig config;
  Schedule a = GenerateSchedule(config, 0xfeedface);
  Schedule b = GenerateSchedule(config, 0xfeedface);
  EXPECT_EQ(ToJson(a), ToJson(b));
  EXPECT_EQ(a.ops, b.ops);
  Schedule c = GenerateSchedule(config, 0xfeedfacf);
  EXPECT_NE(ToJson(a), ToJson(c)) << "different seeds must give different schedules";
}

TEST(ScheduleTest, JsonRoundTrip) {
  CheckerConfig config;
  config.hosts = 4;
  config.files = 5;
  config.dirs = 1;
  config.ops = 32;
  config.fault_plan = "Lossy";
  config.inject_lost_update = true;
  config.inject_stale_digest = true;
  config.heartbeat = true;
  config.inject_false_death = true;
  config.reconcile_digest_guided = false;
  Schedule schedule = GenerateSchedule(config, 77);
  schedule.expect_violation = true;
  StatusOr<Schedule> parsed = FromJson(ToJson(schedule));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, schedule.seed);
  EXPECT_EQ(parsed->config.hosts, schedule.config.hosts);
  EXPECT_EQ(parsed->config.files, schedule.config.files);
  EXPECT_EQ(parsed->config.dirs, schedule.config.dirs);
  EXPECT_EQ(parsed->config.fault_plan, schedule.config.fault_plan);
  EXPECT_EQ(parsed->config.inject_lost_update, schedule.config.inject_lost_update);
  EXPECT_EQ(parsed->config.inject_stale_digest, schedule.config.inject_stale_digest);
  EXPECT_EQ(parsed->config.heartbeat, schedule.config.heartbeat);
  EXPECT_EQ(parsed->config.inject_false_death, schedule.config.inject_false_death);
  EXPECT_EQ(parsed->config.reconcile_digest_guided, schedule.config.reconcile_digest_guided);
  EXPECT_EQ(parsed->expect_violation, schedule.expect_violation);
  EXPECT_EQ(parsed->ops, schedule.ops);
  // The round-tripped schedule serializes byte-identically: the format is
  // canonical, so committed traces never churn.
  EXPECT_EQ(ToJson(parsed.value()), ToJson(schedule));
}

TEST(ScheduleTest, SlotPathsSpreadAcrossDirectories) {
  CheckerConfig config;
  config.dirs = 2;
  EXPECT_EQ(SlotPath(config, 0), "f0");
  EXPECT_EQ(SlotPath(config, 1), "d1/f1");
  EXPECT_EQ(SlotPath(config, 2), "d0/f2");
  EXPECT_EQ(SlotPath(config, 3), "f3");
  config.dirs = 0;
  EXPECT_EQ(SlotPath(config, 5), "f5");
}

TEST(ScheduleTest, GenerationMixesNamespaceReadsIntoTheWorkload) {
  CheckerConfig config;
  config.ops = 200;
  Schedule schedule = GenerateSchedule(config, 31337);
  int lookups = 0;
  int readdirs = 0;
  for (const Op& op : schedule.ops) {
    if (op.kind == OpKind::kLookup) ++lookups;
    if (op.kind == OpKind::kReaddir) ++readdirs;
  }
  EXPECT_GT(lookups, 0) << "generator never emits lookup ops";
  EXPECT_GT(readdirs, 0) << "generator never emits readdir ops";
}

TEST(ScheduleTest, GenerationMixesReplicaChurnIntoTheWorkload) {
  CheckerConfig config;
  config.ops = 400;
  Schedule schedule = GenerateSchedule(config, 90210);
  int drops = 0;
  int adds = 0;
  for (const Op& op : schedule.ops) {
    if (op.kind == OpKind::kDropReplica) {
      EXPECT_NE(op.host, 0u) << "host 0 anchors ground truth and must never drop";
      ++drops;
    }
    if (op.kind == OpKind::kAddReplica) ++adds;
  }
  EXPECT_GT(drops, 0) << "generator never emits drop_replica ops";
  EXPECT_GT(adds, 0) << "generator never emits add_replica ops";
}

TEST(ModelCheckerTest, RunIsDeterministic) {
  CheckerConfig config;
  config.ops = 24;
  Schedule schedule = GenerateSchedule(config, 424242);
  ModelChecker checker;
  RunResult a = checker.Run(schedule);
  RunResult b = checker.Run(schedule);
  EXPECT_EQ(a.ops_applied, b.ops_applied);
  EXPECT_EQ(a.ops_skipped, b.ops_skipped);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.harness_errors, b.harness_errors);
}

TEST(ModelCheckerTest, CleanSchedulesSatisfyTheOracle) {
  CheckerConfig config;
  ModelChecker checker;
  ModelChecker::ExploreResult result = checker.Explore(config, 2026, 10, {});
  EXPECT_EQ(result.schedules, 10);
  EXPECT_TRUE(result.failing_seeds.empty())
      << "seed " << result.failing_seeds[0] << " violated the one-copy oracle";
}

TEST(ModelCheckerTest, FaultPlanSchedulesSatisfyTheOracle) {
  CheckerConfig config;
  config.fault_plan = "Lossy";
  ModelChecker checker;
  ModelChecker::ExploreResult result = checker.Explore(config, 9, 5, {});
  EXPECT_TRUE(result.failing_seeds.empty())
      << "seed " << result.failing_seeds[0] << " violated the oracle under a lossy network";
}

// Full membership runs: monitors on every host, schedules with crashes,
// partitions, and replica churn — the availability oracle (no live
// reachable peer still condemned after heal-and-quiesce) must stay clean.
TEST(ModelCheckerTest, MembershipSchedulesSatisfyTheOracle) {
  CheckerConfig config;
  config.heartbeat = true;
  ModelChecker checker;
  ModelChecker::ExploreResult result = checker.Explore(config, 4077, 5, {});
  EXPECT_TRUE(result.failing_seeds.empty())
      << "seed " << result.failing_seeds[0] << " violated the oracle with membership on";
}

// Testing the tester, membership edition: a verdict forced to dead with
// no probe behind it must be flagged by the checkpoint membership oracle
// — proof the oracle would catch a detector that condemns healthy peers.
TEST(ModelCheckerTest, InjectedFalseDeathIsCaught) {
  CheckerConfig config;
  config.heartbeat = true;
  config.inject_false_death = true;
  config.ops = 12;
  ModelChecker checker;
  RunResult result = checker.Run(GenerateSchedule(config, 11));
  ASSERT_TRUE(result.failed()) << "the forced false death went undetected";
  bool mentions_membership = false;
  for (const std::string& violation : result.violations) {
    if (violation.find("membership:") != std::string::npos) mentions_membership = true;
  }
  EXPECT_TRUE(mentions_membership) << result.Summary();
}

// The guarded bug hunt: with the lost-update injection armed (a write's
// version vector is rolled back so peers never pull the new bytes), the
// oracle must flag the schedule and shrinking must produce a tiny repro.
TEST(ModelCheckerTest, InjectedLostUpdateIsCaughtAndShrunk) {
  CheckerConfig config;
  config.inject_lost_update = true;
  ModelChecker checker;
  ModelChecker::ExploreResult result = checker.Explore(config, 3, 3, {});
  ASSERT_FALSE(result.failing_seeds.empty())
      << "the injected lost-update bug went undetected across 3 schedules";
  Schedule failing = GenerateSchedule(config, result.failing_seeds[0]);
  Schedule minimal = checker.Shrink(failing);
  EXPECT_LE(minimal.ops.size(), 10u) << "shrinking stalled at " << minimal.ops.size() << " ops";
  EXPECT_LT(minimal.ops.size(), failing.ops.size());
  RunResult replay = checker.Run(minimal);
  EXPECT_TRUE(replay.failed()) << "minimal repro no longer reproduces the violation";
}

// Testing the tester, name-cache edition: a binding planted in host 0's
// cache that contradicts the converged directory — stamped with the
// converged vector, so it is exactly a missed invalidation — must be
// flagged by the post-heal lookup sweep as a stale name-cache hit.
TEST(ModelCheckerTest, InjectedStaleNameCacheHitIsCaught) {
  CheckerConfig config;
  config.inject_stale_name_cache = true;
  config.ops = 12;
  ModelChecker checker;
  RunResult result = checker.Run(GenerateSchedule(config, 5));
  ASSERT_TRUE(result.failed()) << "the planted stale binding went undetected";
  bool mentions_cache = false;
  for (const std::string& violation : result.violations) {
    if (violation.find("stale name-cache hit after heal") != std::string::npos) {
      mentions_cache = true;
    }
  }
  EXPECT_TRUE(mentions_cache) << result.Summary();
}

// Testing the tester, digest edition: corrupting host 0's cached root
// subtree digest at every checkpoint must be flagged by the digest
// oracle's cached-vs-recomputed comparison — proof the oracle would catch
// a missed invalidation hook in the physical layer.
TEST(ModelCheckerTest, InjectedStaleDigestIsCaught) {
  CheckerConfig config;
  config.inject_stale_digest = true;
  config.ops = 12;
  ModelChecker checker;
  RunResult result = checker.Run(GenerateSchedule(config, 7));
  ASSERT_TRUE(result.failed()) << "the corrupted cached digest went undetected";
  bool mentions_digest = false;
  for (const std::string& violation : result.violations) {
    if (violation.find("digest disagreement") != std::string::npos) {
      mentions_digest = true;
    }
  }
  EXPECT_TRUE(mentions_digest) << result.Summary();
}

}  // namespace
}  // namespace ficus::sim::checker
