// Replays every committed trace under tests/sim/traces/ through the model
// checker. Traces are the regression corpus: shrunk repros of past
// violations (expect_violation = true, e.g. the guarded lost-update
// injection) and hand-written edge-case schedules that must stay clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/checker/checker.h"
#include "src/sim/checker/schedule.h"

#ifndef FICUS_SIM_TRACE_DIR
#error "FICUS_SIM_TRACE_DIR must point at the committed trace directory"
#endif

namespace ficus::sim::checker {
namespace {

std::vector<std::filesystem::path> TraceFiles() {
  std::vector<std::filesystem::path> traces;
  for (const auto& entry : std::filesystem::directory_iterator(FICUS_SIM_TRACE_DIR)) {
    if (entry.path().extension() == ".json") traces.push_back(entry.path());
  }
  std::sort(traces.begin(), traces.end());
  return traces;
}

TEST(TraceReplayTest, CorpusIsNotEmpty) { EXPECT_GE(TraceFiles().size(), 4u); }

TEST(TraceReplayTest, EveryCommittedTraceReplaysAsRecorded) {
  ModelChecker checker;
  for (const std::filesystem::path& path : TraceFiles()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in) << "unreadable trace " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    StatusOr<Schedule> schedule = FromJson(buffer.str());
    ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
    RunResult result = checker.Run(schedule.value());
    EXPECT_TRUE(result.harness_errors.empty()) << result.Summary();
    EXPECT_EQ(result.failed(), schedule->expect_violation) << result.Summary();
  }
}

// A trace is only useful as a regression anchor if the serialized form is
// stable: parse + re-serialize must reproduce the committed bytes.
TEST(TraceReplayTest, CommittedTracesAreCanonical) {
  for (const std::filesystem::path& path : TraceFiles()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    StatusOr<Schedule> schedule = FromJson(buffer.str());
    ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
    EXPECT_EQ(ToJson(schedule.value()), buffer.str());
  }
}

}  // namespace
}  // namespace ficus::sim::checker
