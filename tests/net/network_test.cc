#include "src/net/network.h"

#include <gtest/gtest.h>

namespace ficus::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&clock_) {
    a_ = network_.AddHost("a");
    b_ = network_.AddHost("b");
    c_ = network_.AddHost("c");
  }

  // Registers an echo RPC service on `host`.
  void RegisterEcho(HostId host) {
    network_.port(host)->RegisterRpcService(
        "echo", [](HostId, const Payload& request) -> StatusOr<Payload> {
          return request;
        });
  }

  SimClock clock_;
  Network network_;
  HostId a_, b_, c_;
};

TEST_F(NetworkTest, HostsStartFullyConnected) {
  EXPECT_TRUE(network_.Reachable(a_, b_));
  EXPECT_TRUE(network_.Reachable(b_, c_));
  EXPECT_TRUE(network_.Reachable(a_, a_));
}

TEST_F(NetworkTest, RpcRoundTrips) {
  RegisterEcho(b_);
  Payload request = {1, 2, 3};
  auto response = network_.Rpc(a_, b_, "echo", request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value(), request);
  EXPECT_EQ(network_.stats().rpcs_sent, 1u);
}

TEST_F(NetworkTest, RpcToUnknownServiceFails) {
  auto response = network_.Rpc(a_, b_, "ghost", {});
  EXPECT_EQ(response.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(network_.stats().rpcs_failed, 1u);
}

TEST_F(NetworkTest, DisconnectPairBlocksBothDirections) {
  RegisterEcho(a_);
  RegisterEcho(b_);
  network_.DisconnectPair(a_, b_);
  EXPECT_EQ(network_.Rpc(a_, b_, "echo", {}).status().code(), ErrorCode::kUnreachable);
  EXPECT_EQ(network_.Rpc(b_, a_, "echo", {}).status().code(), ErrorCode::kUnreachable);
  // Third parties unaffected.
  RegisterEcho(c_);
  EXPECT_TRUE(network_.Rpc(a_, c_, "echo", {}).ok());
  network_.ConnectPair(a_, b_);
  EXPECT_TRUE(network_.Rpc(a_, b_, "echo", {}).ok());
}

TEST_F(NetworkTest, PartitionSeparatesGroups) {
  network_.Partition({{a_, b_}, {c_}});
  EXPECT_TRUE(network_.Reachable(a_, b_));
  EXPECT_FALSE(network_.Reachable(a_, c_));
  EXPECT_FALSE(network_.Reachable(b_, c_));
  network_.Heal();
  EXPECT_TRUE(network_.Reachable(a_, c_));
}

TEST_F(NetworkTest, HostsAbsentFromPartitionAreIsolated) {
  network_.Partition({{a_}});
  EXPECT_FALSE(network_.Reachable(b_, c_));
  EXPECT_FALSE(network_.Reachable(a_, b_));
}

TEST_F(NetworkTest, DownHostUnreachable) {
  RegisterEcho(b_);
  network_.SetHostUp(b_, false);
  EXPECT_FALSE(network_.Reachable(a_, b_));
  EXPECT_EQ(network_.Rpc(a_, b_, "echo", {}).status().code(), ErrorCode::kUnreachable);
  network_.SetHostUp(b_, true);
  EXPECT_TRUE(network_.Rpc(a_, b_, "echo", {}).ok());
}

TEST_F(NetworkTest, MulticastBestEffort) {
  int b_got = 0;
  int c_got = 0;
  network_.port(b_)->RegisterDatagramChannel(
      "chan", [&](HostId, const Payload&) { ++b_got; });
  network_.port(c_)->RegisterDatagramChannel(
      "chan", [&](HostId, const Payload&) { ++c_got; });
  network_.DisconnectPair(a_, c_);
  size_t delivered = network_.Multicast(a_, {b_, c_}, "chan", {7});
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
  EXPECT_EQ(network_.stats().datagrams_dropped, 1u);
}

TEST_F(NetworkTest, MulticastSkipsSelf) {
  int a_got = 0;
  network_.port(a_)->RegisterDatagramChannel(
      "chan", [&](HostId, const Payload&) { ++a_got; });
  network_.Multicast(a_, {a_}, "chan", {});
  EXPECT_EQ(a_got, 0);
}

TEST_F(NetworkTest, RpcAdvancesClock) {
  RegisterEcho(b_);
  network_.set_rpc_latency(2 * kMillisecond);
  SimTime before = clock_.Now();
  ASSERT_TRUE(network_.Rpc(a_, b_, "echo", {}).ok());
  EXPECT_EQ(clock_.Now(), before + 2 * kMillisecond);
  // Local calls are free.
  RegisterEcho(a_);
  before = clock_.Now();
  ASSERT_TRUE(network_.Rpc(a_, a_, "echo", {}).ok());
  EXPECT_EQ(clock_.Now(), before);
}

TEST_F(NetworkTest, TrafficCountersAccumulate) {
  RegisterEcho(b_);
  ASSERT_TRUE(network_.Rpc(a_, b_, "echo", {1, 2, 3, 4}).ok());
  EXPECT_EQ(network_.stats().rpc_bytes, 8u);  // 4 out + 4 back
}

}  // namespace
}  // namespace ficus::net
