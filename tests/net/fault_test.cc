// Fault-injection layer: seeded drops, latency jitter, duplication,
// reordering, and scripted flap/partition schedules — all deterministic
// functions of (plan seed, SimClock time).
#include "src/net/fault.h"

#include <gtest/gtest.h>

#include "src/net/network.h"

namespace ficus::net {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : network_(&clock_) {
    a_ = network_.AddHost("a");
    b_ = network_.AddHost("b");
    c_ = network_.AddHost("c");
    network_.port(b_)->RegisterRpcService(
        "echo", [this](HostId, const Payload& request) -> StatusOr<Payload> {
          ++handled_;
          return request;
        });
  }

  SimClock clock_;
  Network network_;
  HostId a_, b_, c_;
  int handled_ = 0;
};

TEST_F(FaultTest, NoPlanMeansPerfectDelivery) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(network_.Rpc(a_, b_, "echo", {1}).ok());
  }
  EXPECT_EQ(network_.stats().fault_rpc_request_drops, 0u);
  EXPECT_EQ(network_.stats().fault_rpc_response_drops, 0u);
}

TEST_F(FaultTest, CertainDropTimesOutWithoutRunningHandler) {
  FaultPlan plan(7);
  plan.default_link().drop = 1.0;
  network_.InstallFaultPlan(std::move(plan));

  SimTime before = clock_.Now();
  auto response = network_.Rpc(a_, b_, "echo", {1}, /*timeout=*/50 * kMillisecond);
  EXPECT_EQ(response.status().code(), ErrorCode::kTimedOut);
  EXPECT_EQ(handled_, 0);  // the request never arrived
  // The caller waited out its full patience.
  EXPECT_EQ(clock_.Now(), before + 50 * kMillisecond);
  EXPECT_EQ(network_.stats().fault_rpc_request_drops, 1u);
}

TEST_F(FaultTest, LostResponseStillRanTheHandler) {
  // Drop ~half the messages; with both directions rolled, some calls must
  // lose only the response — handler ran, caller timed out.
  FaultPlan plan(21);
  plan.default_link().drop = 0.5;
  network_.InstallFaultPlan(std::move(plan));

  for (int i = 0; i < 200; ++i) {
    (void)network_.Rpc(a_, b_, "echo", {1}, kMillisecond);
  }
  NetworkStats stats = network_.stats();
  EXPECT_GT(stats.fault_rpc_request_drops, 0u);
  EXPECT_GT(stats.fault_rpc_response_drops, 0u);
  EXPECT_EQ(static_cast<uint64_t>(handled_),
            stats.rpcs_sent);  // every undropped request executed
}

TEST_F(FaultTest, SameSeedSameOutcome) {
  auto run = [](uint64_t seed) {
    SimClock clock;
    Network network(&clock);
    HostId a = network.AddHost("a");
    HostId b = network.AddHost("b");
    network.port(b)->RegisterRpcService(
        "echo", [](HostId, const Payload& request) -> StatusOr<Payload> { return request; });
    FaultPlan plan(seed);
    plan.default_link().drop = 0.3;
    plan.default_link().latency = LatencyModel{kMillisecond, 5 * kMillisecond};
    network.InstallFaultPlan(std::move(plan));
    uint64_t ok = 0;
    for (int i = 0; i < 100; ++i) {
      if (network.Rpc(a, b, "echo", {1}, kMillisecond).ok()) {
        ++ok;
      }
    }
    return std::make_pair(ok, clock.Now());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and the seed actually matters
}

TEST_F(FaultTest, LatencyJitterStaysInBounds) {
  FaultPlan plan(5);
  plan.default_link().latency = LatencyModel{10 * kMillisecond, 4 * kMillisecond};
  network_.InstallFaultPlan(std::move(plan));
  for (int i = 0; i < 50; ++i) {
    SimTime before = clock_.Now();
    ASSERT_TRUE(network_.Rpc(a_, b_, "echo", {1}).ok());
    SimTime elapsed = clock_.Now() - before;
    EXPECT_GE(elapsed, 10 * kMillisecond);
    EXPECT_LE(elapsed, 14 * kMillisecond);
  }
}

TEST_F(FaultTest, PerLinkOverridesBeatTheDefault) {
  network_.port(c_)->RegisterRpcService(
      "echo", [](HostId, const Payload& request) -> StatusOr<Payload> { return request; });
  FaultPlan plan(9);
  plan.default_link().drop = 0.0;
  LinkFaults broken;
  broken.drop = 1.0;
  plan.SetLinkFaults(a_, b_, broken);
  network_.InstallFaultPlan(std::move(plan));

  EXPECT_EQ(network_.Rpc(a_, b_, "echo", {1}).status().code(), ErrorCode::kTimedOut);
  EXPECT_TRUE(network_.Rpc(a_, c_, "echo", {1}).ok());
}

TEST_F(FaultTest, DatagramDuplication) {
  int got = 0;
  network_.port(b_)->RegisterDatagramChannel("chan",
                                             [&](HostId, const Payload&) { ++got; });
  FaultPlan plan(3);
  plan.default_link().duplicate = 1.0;
  network_.InstallFaultPlan(std::move(plan));
  network_.Multicast(a_, {b_}, "chan", {1});
  EXPECT_EQ(got, 2);
  EXPECT_EQ(network_.stats().fault_datagram_dups, 1u);
}

TEST_F(FaultTest, ReorderedDatagramArrivesAfterLaterTraffic) {
  std::vector<uint8_t> order;
  network_.port(b_)->RegisterDatagramChannel(
      "chan", [&](HostId, const Payload& p) { order.push_back(p[0]); });
  FaultPlan& plan = network_.InstallFaultPlan(FaultPlan(11));
  plan.default_link().reorder = 1.0;
  network_.Multicast(a_, {b_}, "chan", {1});  // held back
  EXPECT_TRUE(order.empty());
  plan.default_link().reorder = 0.0;
  network_.Multicast(a_, {b_}, "chan", {2});  // arrives first, then flushes {1}
  EXPECT_EQ(order, (std::vector<uint8_t>{2, 1}));
  EXPECT_EQ(network_.stats().fault_datagram_reorders, 1u);
}

TEST_F(FaultTest, FlushDeliversDeferredDatagrams) {
  int got = 0;
  network_.port(b_)->RegisterDatagramChannel("chan",
                                             [&](HostId, const Payload&) { ++got; });
  FaultPlan plan(13);
  plan.default_link().reorder = 1.0;
  network_.InstallFaultPlan(std::move(plan));
  network_.Multicast(a_, {b_}, "chan", {1});
  network_.Multicast(a_, {b_}, "chan", {2});
  EXPECT_EQ(got, 0);
  EXPECT_EQ(network_.FlushDeferredDatagrams(), 2u);
  EXPECT_EQ(got, 2);
}

TEST_F(FaultTest, FlapScheduleTogglesReachability) {
  FaultPlan plan(1);
  // Down during [100ms, 150ms) of every 200ms period.
  plan.AddFlap(a_, b_, 100 * kMillisecond, 50 * kMillisecond, 200 * kMillisecond);
  network_.InstallFaultPlan(std::move(plan));

  EXPECT_TRUE(network_.Reachable(a_, b_));
  clock_.AdvanceTo(120 * kMillisecond);
  EXPECT_FALSE(network_.Reachable(a_, b_));
  EXPECT_TRUE(network_.Reachable(a_, c_));  // other links unaffected
  clock_.AdvanceTo(160 * kMillisecond);
  EXPECT_TRUE(network_.Reachable(a_, b_));
  clock_.AdvanceTo(320 * kMillisecond);  // next period's outage
  EXPECT_FALSE(network_.Reachable(a_, b_));
  // A blocked send is attributed to the schedule.
  EXPECT_EQ(network_.Rpc(a_, b_, "echo", {1}).status().code(), ErrorCode::kUnreachable);
  EXPECT_EQ(network_.stats().fault_scheduled_blocks, 1u);
}

TEST_F(FaultTest, HalfWildcardFlapSeversEveryLinkOfOneHost) {
  // AddFlap(host, 0) takes one host fully dark. Regression: the wildcard
  // used to land on the low side of the ordered pair, so only links to
  // smaller-id peers went down.
  FaultPlan plan(1);
  plan.AddFlap(b_, 0, kSecond, kSecond);
  network_.InstallFaultPlan(std::move(plan));
  clock_.AdvanceTo(1500 * kMillisecond);
  EXPECT_FALSE(network_.Reachable(a_, b_));  // smaller id <-> flapped
  EXPECT_FALSE(network_.Reachable(b_, c_));  // flapped <-> larger id
  EXPECT_TRUE(network_.Reachable(a_, c_));   // bystander link unaffected
  clock_.AdvanceTo(2500 * kMillisecond);
  EXPECT_TRUE(network_.Reachable(a_, b_));
  EXPECT_TRUE(network_.Reachable(b_, c_));
}

TEST_F(FaultTest, WildcardFlapCoversEveryLink) {
  FaultPlan plan(1);
  plan.AddFlap(0, 0, kSecond, kSecond);  // one-shot whole-network outage
  network_.InstallFaultPlan(std::move(plan));
  clock_.AdvanceTo(1500 * kMillisecond);
  EXPECT_FALSE(network_.Reachable(a_, b_));
  EXPECT_FALSE(network_.Reachable(b_, c_));
  clock_.AdvanceTo(2500 * kMillisecond);
  EXPECT_TRUE(network_.Reachable(a_, b_));
}

TEST_F(FaultTest, ScheduledPartitionAndHeal) {
  FaultPlan plan(1);
  plan.SchedulePartition(kSecond, {{a_, c_}, {b_}});
  plan.ScheduleHeal(3 * kSecond);
  network_.InstallFaultPlan(std::move(plan));

  EXPECT_TRUE(network_.Reachable(a_, b_));
  clock_.AdvanceTo(2 * kSecond);
  EXPECT_FALSE(network_.Reachable(a_, b_));
  EXPECT_TRUE(network_.Reachable(a_, c_));
  clock_.AdvanceTo(4 * kSecond);
  EXPECT_TRUE(network_.Reachable(a_, b_));
}

TEST_F(FaultTest, CannedPlansHaveTheirSignatureFaults) {
  EXPECT_DOUBLE_EQ(FaultPlan::Lossy(1).default_link().drop, 0.2);
  EXPECT_EQ(FaultPlan::HighLatency(1).default_link().latency.base, 25 * kMillisecond);
  EXPECT_TRUE(FaultPlan::Flapping(1).ScheduledDown(1, 2, 300 * kMillisecond));
  EXPECT_FALSE(FaultPlan::Flapping(1).ScheduledDown(1, 2, 400 * kMillisecond));
  EXPECT_DOUBLE_EQ(FaultPlan::Named("lossy", 1).default_link().drop, 0.2);
  EXPECT_DOUBLE_EQ(FaultPlan::Named("unknown", 1).default_link().drop, 0.0);
}

}  // namespace
}  // namespace ficus::net
