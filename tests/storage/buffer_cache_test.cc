#include "src/storage/buffer_cache.h"

#include <gtest/gtest.h>

namespace ficus::storage {
namespace {

std::vector<uint8_t> Block(uint8_t fill) { return std::vector<uint8_t>(kBlockSize, fill); }

TEST(BufferCacheTest, SecondReadHitsCache) {
  BlockDevice device(8);
  BufferCache cache(&device, 4);
  std::vector<uint8_t> data;
  ASSERT_TRUE(cache.Read(0, data).ok());
  ASSERT_TRUE(cache.Read(0, data).ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(device.stats().reads, 1u);
}

TEST(BufferCacheTest, WriteThroughReachesDevice) {
  BlockDevice device(8);
  BufferCache cache(&device, 4);
  ASSERT_TRUE(cache.Write(1, Block(0x42)).ok());
  EXPECT_EQ(device.stats().writes, 1u);
  // Read served from cache afterwards.
  std::vector<uint8_t> data;
  ASSERT_TRUE(cache.Read(1, data).ok());
  EXPECT_EQ(data, Block(0x42));
  EXPECT_EQ(device.stats().reads, 0u);
}

TEST(BufferCacheTest, EvictsLeastRecentlyUsed) {
  BlockDevice device(8);
  BufferCache cache(&device, 2);
  std::vector<uint8_t> data;
  ASSERT_TRUE(cache.Read(0, data).ok());
  ASSERT_TRUE(cache.Read(1, data).ok());
  ASSERT_TRUE(cache.Read(0, data).ok());  // touch 0 so 1 is LRU
  ASSERT_TRUE(cache.Read(2, data).ok());  // evicts 1
  EXPECT_EQ(cache.stats().evictions, 1u);
  device.ResetStats();
  ASSERT_TRUE(cache.Read(0, data).ok());  // still cached
  EXPECT_EQ(device.stats().reads, 0u);
  ASSERT_TRUE(cache.Read(1, data).ok());  // evicted -> device read
  EXPECT_EQ(device.stats().reads, 1u);
}

TEST(BufferCacheTest, InvalidateForcesDeviceRead) {
  BlockDevice device(8);
  BufferCache cache(&device, 4);
  std::vector<uint8_t> data;
  ASSERT_TRUE(cache.Read(0, data).ok());
  cache.Invalidate();
  EXPECT_EQ(cache.cached_blocks(), 0u);
  device.ResetStats();
  ASSERT_TRUE(cache.Read(0, data).ok());
  EXPECT_EQ(device.stats().reads, 1u);
}

TEST(BufferCacheTest, InvalidateSingleBlock) {
  BlockDevice device(8);
  BufferCache cache(&device, 4);
  std::vector<uint8_t> data;
  ASSERT_TRUE(cache.Read(0, data).ok());
  ASSERT_TRUE(cache.Read(1, data).ok());
  cache.InvalidateBlock(0);
  device.ResetStats();
  ASSERT_TRUE(cache.Read(1, data).ok());
  EXPECT_EQ(device.stats().reads, 0u);
  ASSERT_TRUE(cache.Read(0, data).ok());
  EXPECT_EQ(device.stats().reads, 1u);
}

TEST(BufferCacheTest, ZeroCapacityDisablesCaching) {
  BlockDevice device(8);
  BufferCache cache(&device, 0);
  std::vector<uint8_t> data;
  ASSERT_TRUE(cache.Read(0, data).ok());
  ASSERT_TRUE(cache.Read(0, data).ok());
  EXPECT_EQ(device.stats().reads, 2u);
  EXPECT_EQ(cache.cached_blocks(), 0u);
}

TEST(BufferCacheTest, WriteUpdatesCachedCopy) {
  BlockDevice device(8);
  BufferCache cache(&device, 4);
  std::vector<uint8_t> data;
  ASSERT_TRUE(cache.Read(0, data).ok());
  ASSERT_TRUE(cache.Write(0, Block(0x99)).ok());
  device.ResetStats();
  ASSERT_TRUE(cache.Read(0, data).ok());
  EXPECT_EQ(data, Block(0x99));
  EXPECT_EQ(device.stats().reads, 0u);  // served from the updated cache copy
}

}  // namespace
}  // namespace ficus::storage
