#include "src/storage/block_device.h"

#include <gtest/gtest.h>

namespace ficus::storage {
namespace {

std::vector<uint8_t> Block(uint8_t fill) { return std::vector<uint8_t>(kBlockSize, fill); }

TEST(BlockDeviceTest, FreshDeviceReadsZeros) {
  BlockDevice device(8);
  std::vector<uint8_t> data;
  ASSERT_TRUE(device.Read(0, data).ok());
  EXPECT_EQ(data, Block(0));
}

TEST(BlockDeviceTest, WriteThenReadRoundTrips) {
  BlockDevice device(8);
  ASSERT_TRUE(device.Write(3, Block(0xAB)).ok());
  std::vector<uint8_t> data;
  ASSERT_TRUE(device.Read(3, data).ok());
  EXPECT_EQ(data, Block(0xAB));
}

TEST(BlockDeviceTest, OutOfRangeAccessFails) {
  BlockDevice device(4);
  std::vector<uint8_t> data;
  EXPECT_EQ(device.Read(4, data).code(), ErrorCode::kIo);
  EXPECT_EQ(device.Write(4, Block(1)).code(), ErrorCode::kIo);
}

TEST(BlockDeviceTest, ShortWriteRejected) {
  BlockDevice device(4);
  EXPECT_EQ(device.Write(0, std::vector<uint8_t>(10, 1)).code(),
            ErrorCode::kInvalidArgument);
}

TEST(BlockDeviceTest, CountsReadsAndWrites) {
  BlockDevice device(8);
  std::vector<uint8_t> data;
  ASSERT_TRUE(device.Write(0, Block(1)).ok());
  ASSERT_TRUE(device.Write(1, Block(2)).ok());
  ASSERT_TRUE(device.Read(0, data).ok());
  EXPECT_EQ(device.stats().writes, 2u);
  EXPECT_EQ(device.stats().reads, 1u);
  device.ResetStats();
  EXPECT_EQ(device.stats().writes, 0u);
  EXPECT_EQ(device.stats().reads, 0u);
}

TEST(BlockDeviceTest, CrashDropsWritesButKeepsOldContents) {
  BlockDevice device(8);
  ASSERT_TRUE(device.Write(2, Block(0x11)).ok());
  device.InjectCrash();
  // The write "succeeds" from the caller's view but never lands.
  ASSERT_TRUE(device.Write(2, Block(0x22)).ok());
  EXPECT_EQ(device.stats().dropped_writes, 1u);
  std::vector<uint8_t> data;
  ASSERT_TRUE(device.Read(2, data).ok());
  EXPECT_EQ(data, Block(0x11));
  device.ClearCrash();
  ASSERT_TRUE(device.Write(2, Block(0x33)).ok());
  ASSERT_TRUE(device.Read(2, data).ok());
  EXPECT_EQ(data, Block(0x33));
}

}  // namespace
}  // namespace ficus::storage
