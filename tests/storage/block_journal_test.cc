// Journal-recovery unit suite: the stage/seal/apply/clear cycle, the
// replay-or-discard recovery decision at every interruption point, and
// idempotence of double replay. "Reboot" here is BufferCache::Invalidate —
// the cache is write-through, so dropping it is exactly what survives a
// power cut under the whole-block-atomic crash model.
#include "src/storage/block_journal.h"

#include <gtest/gtest.h>

namespace ficus::storage {
namespace {

constexpr BlockNum kStart = 2;
constexpr uint32_t kBlocks = 5;  // 1 intent + 4 image slots

std::vector<uint8_t> Block(uint8_t fill) { return std::vector<uint8_t>(kBlockSize, fill); }

std::vector<JournalRecord> TwoRecords() {
  return {{8, Block(0xAA)}, {9, Block(0xBB)}};
}

class BlockJournalTest : public ::testing::Test {
 protected:
  BlockJournalTest() : device_(16), cache_(&device_, 8), journal_(&cache_, kStart, kBlocks) {}

  std::vector<uint8_t> ReadBlock(BlockNum b) {
    std::vector<uint8_t> data;
    EXPECT_TRUE(cache_.Read(b, data).ok());
    return data;
  }

  void Reboot() { cache_.Invalidate(); }

  BlockDevice device_;
  BufferCache cache_;
  BlockJournal journal_;
};

TEST_F(BlockJournalTest, FullCycleAppliesImagesToHomeBlocks) {
  ASSERT_TRUE(journal_.Stage(TwoRecords()).ok());
  ASSERT_TRUE(journal_.Seal().ok());
  ASSERT_TRUE(journal_.Apply().ok());
  ASSERT_TRUE(journal_.Clear().ok());
  EXPECT_EQ(ReadBlock(8), Block(0xAA));
  EXPECT_EQ(ReadBlock(9), Block(0xBB));
  auto sealed = journal_.SealedOnDisk();
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(sealed.value());
}

TEST_F(BlockJournalTest, RecoverReplaysSealedIntent) {
  ASSERT_TRUE(journal_.Stage(TwoRecords()).ok());
  ASSERT_TRUE(journal_.Seal().ok());
  Reboot();  // crash after the commit point, before Apply
  auto result = journal_.Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->replayed);
  EXPECT_EQ(result->records, 2u);
  EXPECT_EQ(ReadBlock(8), Block(0xAA));
  EXPECT_EQ(ReadBlock(9), Block(0xBB));
}

TEST_F(BlockJournalTest, RecoverDiscardsUnsealedIntent) {
  ASSERT_TRUE(cache_.Write(8, Block(0x11)).ok());
  ASSERT_TRUE(journal_.Stage({{8, Block(0xAA)}}).ok());
  Reboot();  // crash before the seal: the commit never happened
  auto result = journal_.Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->replayed);
  EXPECT_EQ(ReadBlock(8), Block(0x11)) << "home block must be untouched";
  // The debris is gone: a fresh commit can stage immediately.
  ASSERT_TRUE(journal_.Stage(TwoRecords()).ok());
}

TEST_F(BlockJournalTest, DoubleReplayIsIdempotent) {
  ASSERT_TRUE(journal_.Stage(TwoRecords()).ok());
  ASSERT_TRUE(journal_.Seal().ok());
  ASSERT_TRUE(journal_.Apply().ok());
  Reboot();  // crash after Apply but before Clear: intent still sealed
  auto first = journal_.Recover();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->replayed);  // applied a second time — same images, same result
  EXPECT_EQ(ReadBlock(8), Block(0xAA));
  EXPECT_EQ(ReadBlock(9), Block(0xBB));
  auto second = journal_.Recover();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->replayed) << "a cleared journal recovers as a no-op";
}

TEST_F(BlockJournalTest, RecoverOnFreshRegionIsNoOp) {
  auto result = journal_.Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->replayed);
  EXPECT_EQ(device_.stats().writes, 0u) << "nothing to clear on a zeroed region";
}

TEST_F(BlockJournalTest, StageValidatesRecords) {
  EXPECT_FALSE(journal_.Stage({}).ok());
  // Too many records for 4 image slots.
  std::vector<JournalRecord> five;
  for (uint32_t i = 0; i < 5; ++i) {
    five.push_back({8u + i, Block(0x01)});
  }
  EXPECT_FALSE(journal_.Stage(five).ok());
  // Partial image.
  EXPECT_FALSE(journal_.Stage({{8, std::vector<uint8_t>(10, 0)}}).ok());
  // Target inside the journal region.
  EXPECT_FALSE(journal_.Stage({{kStart + 1, Block(0x01)}}).ok());
  // A journal-less region supports nothing.
  BlockJournal none(&cache_, 0, 0);
  EXPECT_FALSE(none.Stage(TwoRecords()).ok());
}

TEST_F(BlockJournalTest, StageRefusesToOverwriteSealedIntent) {
  ASSERT_TRUE(journal_.Stage(TwoRecords()).ok());
  ASSERT_TRUE(journal_.Seal().ok());
  // A sealed intent is a committed update; staging over it would lose it.
  EXPECT_FALSE(journal_.Stage({{10, Block(0xCC)}}).ok());
  ASSERT_TRUE(journal_.Recover().status().ok());
  EXPECT_TRUE(journal_.Stage({{10, Block(0xCC)}}).ok());
}

TEST_F(BlockJournalTest, GarbageIntentBlockReadsAsEmpty) {
  // Foreign bytes where the intent record lives (e.g. a pre-journal image
  // reused as a journal region) parse as "no commit", not an error.
  ASSERT_TRUE(cache_.Write(kStart, Block(0x5A)).ok());
  auto sealed = journal_.SealedOnDisk();
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(sealed.value());
  auto result = journal_.Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->replayed);
}

TEST_F(BlockJournalTest, TornImageUnderSealedIntentIsCorruption) {
  ASSERT_TRUE(journal_.Stage(TwoRecords()).ok());
  ASSERT_TRUE(journal_.Seal().ok());
  // Simulate media corruption of a staged image (the crash model itself
  // never tears a sealed journal — images land before the seal).
  ASSERT_TRUE(cache_.Write(kStart + 1, Block(0xEE)).ok());
  auto result = journal_.Recover();
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace ficus::storage
