#include "src/baseline/availability.h"

#include <gtest/gtest.h>

namespace ficus::baseline {
namespace {

TEST(ExactTest, SingleReplicaAvailabilityIsP) {
  OneCopyPolicy policy;
  auto result = ComputeExact(policy, 1, 0.9);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->read, 0.9, 1e-12);
  EXPECT_NEAR(result->update, 0.9, 1e-12);
}

TEST(ExactTest, OneCopyIsOneMinusAllDown) {
  OneCopyPolicy policy;
  auto result = ComputeExact(policy, 3, 0.9);
  ASSERT_TRUE(result.ok());
  double expected = 1.0 - 0.1 * 0.1 * 0.1;
  EXPECT_NEAR(result->read, expected, 1e-12);
  EXPECT_NEAR(result->update, expected, 1e-12);
}

TEST(ExactTest, PrimaryCopyUpdateIsP) {
  PrimaryCopyPolicy policy(0);
  auto result = ComputeExact(policy, 5, 0.8);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->update, 0.8, 1e-12);  // update hinges on one host
  EXPECT_GT(result->read, 0.99);            // read-any is nearly sure
}

TEST(ExactTest, MajorityOfThreeMatchesClosedForm) {
  MajorityVotingPolicy policy;
  double p = 0.9;
  auto result = ComputeExact(policy, 3, p);
  ASSERT_TRUE(result.ok());
  // P(at least 2 of 3 up) = 3 p^2 (1-p) + p^3
  double expected = 3 * p * p * (1 - p) + p * p * p;
  EXPECT_NEAR(result->update, expected, 1e-12);
}

TEST(ExactTest, RejectsSillyN) {
  OneCopyPolicy policy;
  EXPECT_FALSE(ComputeExact(policy, 0, 0.5).ok());
  EXPECT_FALSE(ComputeExact(policy, 21, 0.5).ok());
}

TEST(MonteCarloTest, AgreesWithExact) {
  MajorityVotingPolicy policy;
  Rng rng(SeedFromEnvOr(42, "availability.monte_carlo"));
  auto exact = ComputeExact(policy, 5, 0.85);
  ASSERT_TRUE(exact.ok());
  auto simulated = SimulateIndependent(policy, 5, 0.85, 200000, rng);
  EXPECT_NEAR(simulated.read, exact->read, 0.01);
  EXPECT_NEAR(simulated.update, exact->update, 0.01);
}

// The paper's headline claim (A1): one-copy availability strictly exceeds
// every serializable policy's update availability for any 0 < p < 1 and
// n > 1 — checked exactly across a parameter sweep.
struct SweepParam {
  int n;
  double p;
};

class DominanceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DominanceSweep, OneCopyStrictlyDominatesUpdateAvailability) {
  int n = GetParam().n;
  double p = GetParam().p;
  OneCopyPolicy one_copy;
  PrimaryCopyPolicy primary(0);
  MajorityVotingPolicy majority;
  QuorumConsensusPolicy quorum(static_cast<size_t>(n / 2),
                               static_cast<size_t>(n / 2 + 1));

  auto ficus = ComputeExact(one_copy, n, p);
  ASSERT_TRUE(ficus.ok());
  for (const ReplicationPolicy* policy :
       {static_cast<const ReplicationPolicy*>(&primary),
        static_cast<const ReplicationPolicy*>(&majority),
        static_cast<const ReplicationPolicy*>(&quorum)}) {
    auto other = ComputeExact(*policy, n, p);
    ASSERT_TRUE(other.ok());
    EXPECT_GT(ficus->update, other->update)
        << policy->Name() << " n=" << n << " p=" << p;
    EXPECT_GE(ficus->read + 1e-12, other->read)
        << policy->Name() << " n=" << n << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DominanceSweep,
    ::testing::Values(SweepParam{2, 0.5}, SweepParam{2, 0.9}, SweepParam{3, 0.5},
                      SweepParam{3, 0.9}, SweepParam{3, 0.99}, SweepParam{5, 0.7},
                      SweepParam{5, 0.95}, SweepParam{7, 0.9}, SweepParam{9, 0.8}));

TEST(PartitionModelTest, PartitionsHurtQuorumMoreThanOneCopy) {
  Rng rng(SeedFromEnvOr(7, "availability.partition_model"));
  OneCopyPolicy one_copy;
  MajorityVotingPolicy majority;
  // Reliable hosts, but the network splits half the time.
  auto ficus = SimulatePartitioned(one_copy, 5, 0.99, 0.5, 100000, rng);
  auto voted = SimulatePartitioned(majority, 5, 0.99, 0.5, 100000, rng);
  EXPECT_GT(ficus.update, voted.update + 0.05);
}

TEST(PartitionModelTest, NoPartitionMatchesIndependentModel) {
  Rng rng_a(11);
  Rng rng_b(11);
  MajorityVotingPolicy majority;
  auto with = SimulatePartitioned(majority, 5, 0.9, 0.0, 50000, rng_a);
  auto without = SimulateIndependent(majority, 5, 0.9, 50000, rng_b);
  EXPECT_NEAR(with.update, without.update, 0.02);
}

TEST(MonteCarloTest, AvailabilityMonotoneInP) {
  Rng rng(SeedFromEnvOr(3, "availability.monotone"));
  OneCopyPolicy policy;
  double prev = -1.0;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto result = SimulateIndependent(policy, 3, p, 50000, rng);
    EXPECT_GT(result.update, prev);
    prev = result.update;
  }
}

}  // namespace
}  // namespace ficus::baseline
