#include "src/baseline/policies.h"

#include <gtest/gtest.h>

namespace ficus::baseline {
namespace {

std::vector<bool> Mask(std::initializer_list<int> up, size_t n) {
  std::vector<bool> mask(n, false);
  for (int i : up) {
    mask[static_cast<size_t>(i)] = true;
  }
  return mask;
}

TEST(OneCopyTest, AnySingleReplicaSuffices) {
  OneCopyPolicy policy;
  EXPECT_TRUE(policy.CanRead(Mask({2}, 5)));
  EXPECT_TRUE(policy.CanUpdate(Mask({4}, 5)));
  EXPECT_FALSE(policy.CanRead(Mask({}, 5)));
  EXPECT_FALSE(policy.CanUpdate(Mask({}, 5)));
}

TEST(PrimaryCopyTest, UpdateNeedsThePrimary) {
  PrimaryCopyPolicy policy(0);
  EXPECT_TRUE(policy.CanUpdate(Mask({0}, 3)));
  EXPECT_FALSE(policy.CanUpdate(Mask({1, 2}, 3)));
  // Reads go anywhere.
  EXPECT_TRUE(policy.CanRead(Mask({2}, 3)));
}

TEST(MajorityVotingTest, NeedsStrictMajority) {
  MajorityVotingPolicy policy;
  EXPECT_TRUE(policy.CanRead(Mask({0, 1}, 3)));
  EXPECT_FALSE(policy.CanRead(Mask({0}, 3)));
  // Even split of 4 is NOT a majority.
  EXPECT_FALSE(policy.CanUpdate(Mask({0, 1}, 4)));
  EXPECT_TRUE(policy.CanUpdate(Mask({0, 1, 2}, 4)));
}

TEST(WeightedVotingTest, VotesNotHeadsCount) {
  // Replica 0 carries 3 votes, the others 1 each (total 5); r=2, w=4.
  auto policy = WeightedVotingPolicy::Make({3, 1, 1}, 2, 4);
  ASSERT_TRUE(policy.ok());
  // Replica 0 alone: 3 votes — read yes, write no.
  EXPECT_TRUE(policy->CanRead(Mask({0}, 3)));
  EXPECT_FALSE(policy->CanUpdate(Mask({0}, 3)));
  // Replica 0 + 1: 4 votes — write yes.
  EXPECT_TRUE(policy->CanUpdate(Mask({0, 1}, 3)));
  // Replicas 1 + 2: 2 votes — read yes, write no.
  EXPECT_TRUE(policy->CanRead(Mask({1, 2}, 3)));
  EXPECT_FALSE(policy->CanUpdate(Mask({1, 2}, 3)));
}

TEST(WeightedVotingTest, RejectsNonIntersectingQuorums) {
  EXPECT_FALSE(WeightedVotingPolicy::Make({1, 1, 1}, 1, 2).ok());  // r+w == total
  EXPECT_FALSE(WeightedVotingPolicy::Make({1, 1, 1, 1}, 3, 2).ok());  // w <= total/2
}

TEST(QuorumConsensusTest, ReadWriteQuorums) {
  QuorumConsensusPolicy policy(2, 4);  // n = 5
  EXPECT_TRUE(policy.CanRead(Mask({0, 1}, 5)));
  EXPECT_FALSE(policy.CanRead(Mask({0}, 5)));
  EXPECT_TRUE(policy.CanUpdate(Mask({0, 1, 2, 3}, 5)));
  EXPECT_FALSE(policy.CanUpdate(Mask({0, 1, 2}, 5)));
}

// The paper's claim at the level of individual accessibility vectors:
// whenever ANY serializable policy allows an operation, one-copy allows it
// too (one-copy availability is an upper bound).
TEST(DominanceTest, OneCopyAllowsWheneverAnyPolicyDoes) {
  OneCopyPolicy one_copy;
  PrimaryCopyPolicy primary(0);
  MajorityVotingPolicy majority;
  QuorumConsensusPolicy quorum(2, 4);
  auto weighted = WeightedVotingPolicy::Make({2, 1, 1, 1}, 2, 4);
  ASSERT_TRUE(weighted.ok());

  const int n = 5;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<bool> accessible(n);
    for (int i = 0; i < n; ++i) {
      accessible[static_cast<size_t>(i)] = (mask >> i & 1) != 0;
    }
    for (const ReplicationPolicy* policy :
         {static_cast<const ReplicationPolicy*>(&primary),
          static_cast<const ReplicationPolicy*>(&majority),
          static_cast<const ReplicationPolicy*>(&quorum),
          static_cast<const ReplicationPolicy*>(&weighted.value())}) {
      if (policy->CanRead(accessible)) {
        EXPECT_TRUE(one_copy.CanRead(accessible)) << policy->Name();
      }
      if (policy->CanUpdate(accessible)) {
        EXPECT_TRUE(one_copy.CanUpdate(accessible)) << policy->Name();
      }
    }
  }
}

// Serializable policies must have intersecting read/write quorums: two
// disjoint accessibility sets can never both be granted a write (majority
// and quorum policies).
TEST(SerializabilityTest, DisjointPartitionsNeverBothWrite) {
  MajorityVotingPolicy majority;
  QuorumConsensusPolicy quorum(2, 4);
  const int n = 5;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<bool> side_a(n);
    std::vector<bool> side_b(n);
    for (int i = 0; i < n; ++i) {
      side_a[static_cast<size_t>(i)] = (mask >> i & 1) != 0;
      side_b[static_cast<size_t>(i)] = !side_a[static_cast<size_t>(i)];
    }
    EXPECT_FALSE(majority.CanUpdate(side_a) && majority.CanUpdate(side_b));
    EXPECT_FALSE(quorum.CanUpdate(side_a) && quorum.CanUpdate(side_b));
  }
}

// ...whereas one-copy availability happily grants both sides an update —
// that is exactly the non-serializable trade Ficus makes, and why it needs
// version vectors + reconciliation.
TEST(SerializabilityTest, OneCopyAllowsBothSidesToUpdate) {
  OneCopyPolicy one_copy;
  std::vector<bool> side_a = {true, true, false, false, false};
  std::vector<bool> side_b = {false, false, true, true, true};
  EXPECT_TRUE(one_copy.CanUpdate(side_a));
  EXPECT_TRUE(one_copy.CanUpdate(side_b));
}

}  // namespace
}  // namespace ficus::baseline
