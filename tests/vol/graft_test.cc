#include "src/vol/graft.h"

#include <gtest/gtest.h>

#include "src/repl/physical.h"

namespace ficus::vol {
namespace {

class GraftTest : public ::testing::Test {
 protected:
  GraftTest() : device_(8192), cache_(&device_, 128), ufs_(&cache_, &clock_) {
    EXPECT_TRUE(ufs_.Format(512).ok());
    phys_ = std::make_unique<repl::PhysicalLayer>(&ufs_, &clock_);
    EXPECT_TRUE(phys_->CreateVolume(repl::VolumeId{1, 1}, 1, "parent", true).ok());
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BufferCache cache_;
  ufs::Ufs ufs_;
  std::unique_ptr<repl::PhysicalLayer> phys_;
};

TEST_F(GraftTest, WriteAndReadGraftPoint) {
  GraftPointInfo info;
  info.volume = repl::VolumeId{2, 5};
  info.replicas = {{1, 10}, {2, 20}, {3, 30}};
  auto graft = WriteGraftPoint(phys_.get(), repl::kRootFileId, "sub", info);
  ASSERT_TRUE(graft.ok());

  auto attrs = phys_->GetAttributes(*graft);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->type, repl::FicusFileType::kGraftPoint);

  auto decoded = ReadGraftPoint(phys_.get(), *graft);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->volume, info.volume);
  EXPECT_EQ(decoded->replicas, info.replicas);
}

TEST_F(GraftTest, GraftPointRecordsAreOrdinaryDirectoryEntries) {
  // The paper's implementation economy: the records are plain Ficus
  // directory entries (symlinks), visible through ReadDirectory.
  GraftPointInfo info;
  info.volume = repl::VolumeId{2, 5};
  info.replicas = {{1, 10}};
  auto graft = WriteGraftPoint(phys_.get(), repl::kRootFileId, "sub", info);
  ASSERT_TRUE(graft.ok());
  auto entries = phys_->ReadDirectory(*graft);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);  // @volume + r1
}

TEST_F(GraftTest, AddReplicaDynamically) {
  GraftPointInfo info;
  info.volume = repl::VolumeId{2, 5};
  info.replicas = {{1, 10}};
  auto graft = WriteGraftPoint(phys_.get(), repl::kRootFileId, "sub", info);
  ASSERT_TRUE(graft.ok());
  ASSERT_TRUE(AddGraftReplica(phys_.get(), *graft, 2, 20).ok());
  auto decoded = ReadGraftPoint(phys_.get(), *graft);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->replicas.size(), 2u);
}

TEST_F(GraftTest, GraftPointWithoutVolumeRecordIsCorrupt) {
  auto dir = phys_->CreateChild(repl::kRootFileId, "broken",
                                repl::FicusFileType::kGraftPoint, 0);
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(ReadGraftPoint(phys_.get(), *dir).status().code(), ErrorCode::kCorrupt);
}

TEST_F(GraftTest, GraftTableTracksUseAndPrunes) {
  SimClock clock;
  GraftTable table(&clock);
  EXPECT_EQ(table.Find(repl::VolumeId{9, 9}), nullptr);

  auto logical = std::make_unique<repl::LogicalLayer>(repl::VolumeId{9, 9}, nullptr, nullptr,
                                                      nullptr, &clock);
  repl::LogicalLayer* raw = logical.get();
  EXPECT_EQ(table.Insert(repl::VolumeId{9, 9}, std::move(logical)), raw);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.grafts_performed(), 1u);

  clock.Advance(5 * kSecond);
  EXPECT_EQ(table.Find(repl::VolumeId{9, 9}), raw);  // touch
  EXPECT_EQ(table.graft_hits(), 1u);

  clock.Advance(9 * kSecond);
  EXPECT_EQ(table.Prune(10 * kSecond), 0);  // used 9s ago: kept
  clock.Advance(2 * kSecond);
  EXPECT_EQ(table.Prune(10 * kSecond), 1);  // idle 11s: pruned
  EXPECT_EQ(table.Find(repl::VolumeId{9, 9}), nullptr);
}

}  // namespace
}  // namespace ficus::vol
