#include "src/vol/registry.h"

#include <gtest/gtest.h>

namespace ficus::vol {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : device_(4096), cache_(&device_, 64), ufs_(&cache_, nullptr) {
    EXPECT_TRUE(ufs_.Format(256).ok());
    local_ = std::make_unique<repl::PhysicalLayer>(&ufs_, nullptr);
    EXPECT_TRUE(local_->CreateVolume(repl::VolumeId{1, 1}, 1, "v", true).ok());
  }

  storage::BlockDevice device_;
  storage::BufferCache cache_;
  ufs::Ufs ufs_;
  std::unique_ptr<repl::PhysicalLayer> local_;
  VolumeRegistry registry_;
};

TEST_F(RegistryTest, EmptyRegistryKnowsNothing) {
  EXPECT_TRUE(registry_.ReplicasOf(repl::VolumeId{1, 1}).empty());
  EXPECT_EQ(registry_.LocalReplica(repl::VolumeId{1, 1}), nullptr);
  EXPECT_FALSE(registry_.HostOf(repl::VolumeId{1, 1}, 1).has_value());
}

TEST_F(RegistryTest, LocalRegistrationVisible) {
  registry_.RegisterLocal(local_.get(), 7);
  auto replicas = registry_.ReplicasOf(repl::VolumeId{1, 1});
  ASSERT_EQ(replicas.size(), 1u);
  EXPECT_EQ(replicas[0], 1u);
  EXPECT_EQ(registry_.LocalReplica(repl::VolumeId{1, 1}), local_.get());
  auto host = registry_.HostOf(repl::VolumeId{1, 1}, 1);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(*host, 7u);
}

TEST_F(RegistryTest, RemoteRegistrationAndOrdering) {
  registry_.RegisterRemote(repl::VolumeId{1, 1}, 3, 30);
  registry_.RegisterRemote(repl::VolumeId{1, 1}, 2, 20);
  auto replicas = registry_.ReplicasOf(repl::VolumeId{1, 1});
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas[0], 2u);  // id order
  EXPECT_EQ(replicas[1], 3u);
}

TEST_F(RegistryTest, LocalBeatsRemoteForSameReplica) {
  registry_.RegisterLocal(local_.get(), 7);
  registry_.RegisterRemote(repl::VolumeId{1, 1}, 1, 99);  // stale gossip
  auto host = registry_.HostOf(repl::VolumeId{1, 1}, 1);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(*host, 7u);  // local knowledge is authoritative
}

TEST_F(RegistryTest, AllLocalAndKnownVolumes) {
  registry_.RegisterLocal(local_.get(), 7);
  registry_.RegisterRemote(repl::VolumeId{2, 2}, 1, 9);
  EXPECT_EQ(registry_.AllLocal().size(), 1u);
  EXPECT_EQ(registry_.KnownVolumes().size(), 2u);
}

}  // namespace
}  // namespace ficus::vol
