// End-to-end NFS client/server over the simulated network, exporting a
// MemVfs — the basic transport of Figure 2.
#include <gtest/gtest.h>

#include <set>

#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"

namespace ficus::nfs {
namespace {

using vfs::Credentials;
using vfs::VAttr;
using vfs::VnodePtr;
using vfs::VnodeType;

class NfsTest : public ::testing::Test {
 protected:
  NfsTest() : network_(&clock_), exported_(&clock_) {
    server_host_ = network_.AddHost("server");
    client_host_ = network_.AddHost("client");
    server_ = std::make_unique<NfsServer>(&network_, server_host_, &exported_);
    client_ = std::make_unique<NfsClient>(&network_, client_host_, server_host_, &clock_);
  }

  SimClock clock_;
  net::Network network_;
  vfs::MemVfs exported_;
  net::HostId server_host_, client_host_;
  std::unique_ptr<NfsServer> server_;
  std::unique_ptr<NfsClient> client_;
  Credentials cred_;
};

TEST_F(NfsTest, RootFetch) {
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto attr = (*root)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, VnodeType::kDirectory);
}

TEST_F(NfsTest, CreateWriteReadAcrossTheWire) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "hello.txt", "remote data").ok());
  // Visible on the server's local view.
  auto local = vfs::ReadFileAt(&exported_, "hello.txt");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local.value(), "remote data");
  // And back through the client.
  auto remote = vfs::ReadFileAt(client_.get(), "hello.txt");
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote.value(), "remote data");
}

TEST_F(NfsTest, MkdirReaddir) {
  ASSERT_TRUE(vfs::MkdirAll(client_.get(), "a/b").ok());
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "a/f", "x").ok());
  auto entries = vfs::ListDir(client_.get(), "a");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(NfsTest, RemoveAndRmdir) {
  ASSERT_TRUE(vfs::MkdirAll(client_.get(), "d").ok());
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "d/f", "x").ok());
  ASSERT_TRUE(vfs::RemovePath(client_.get(), "d/f").ok());
  ASSERT_TRUE(vfs::RemovePath(client_.get(), "d").ok());
  EXPECT_FALSE(vfs::Exists(client_.get(), "d"));
}

TEST_F(NfsTest, RenameAcrossDirectories) {
  ASSERT_TRUE(vfs::MkdirAll(client_.get(), "a").ok());
  ASSERT_TRUE(vfs::MkdirAll(client_.get(), "b").ok());
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "a/f", "move me").ok());
  ASSERT_TRUE(vfs::RenamePath(client_.get(), "a/f", "b/g").ok());
  auto contents = vfs::ReadFileAt(client_.get(), "b/g");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "move me");
}

TEST_F(NfsTest, LinkThroughClient) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "shared").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*root)->Link("g", *file, cred_).ok());
  auto contents = vfs::ReadFileAt(client_.get(), "g");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "shared");
}

TEST_F(NfsTest, SymlinkThroughClient) {
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE((*root)->Symlink("l", "over/there", cred_).ok());
  auto link = (*root)->Lookup("l", cred_);
  ASSERT_TRUE(link.ok());
  auto target = (*link)->Readlink(cred_);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), "over/there");
}

TEST_F(NfsTest, ErrorsCrossTheWire) {
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->Lookup("missing", cred_).status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE((*root)->Mkdir("d", VAttr{}, cred_).ok());
  EXPECT_EQ((*root)->Mkdir("d", VAttr{}, cred_).status().code(), ErrorCode::kExists);
}

TEST_F(NfsTest, PartitionSurfacesAsUnreachable) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "x").ok());
  network_.DisconnectPair(client_host_, server_host_);
  client_->InvalidateCaches();
  auto contents = vfs::ReadFileAt(client_.get(), "f");
  EXPECT_EQ(contents.status().code(), ErrorCode::kUnreachable);
  network_.ConnectPair(client_host_, server_host_);
  contents = vfs::ReadFileAt(client_.get(), "f");
  EXPECT_TRUE(contents.ok());
}

TEST_F(NfsTest, StatfsForwards) {
  auto stats = client_->Statfs();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->total_inodes, 0u);
}

TEST_F(NfsTest, ReaddirPagesThroughLargeDirectories) {
  // 300 entries > 2 pages of kReaddirPageSize: the client must loop with
  // cookies and reassemble the complete listing.
  ASSERT_TRUE(vfs::MkdirAll(client_.get(), "big").ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(vfs::WriteFileAt(&exported_, "big/f" + std::to_string(i), "x").ok());
  }
  uint64_t rpcs_before = client_->stats().rpcs;
  auto entries = vfs::ListDir(client_.get(), "big");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 300u);
  // ceil(300 / 128) = 3 READDIR RPCs (plus the lookup of "big").
  uint64_t rpcs = client_->stats().rpcs - rpcs_before;
  EXPECT_GE(rpcs, 3u);
  // Every name is present exactly once.
  std::set<std::string> names;
  for (const auto& e : *entries) {
    EXPECT_TRUE(names.insert(e.name).second) << e.name;
  }
}

TEST_F(NfsTest, LargeFileTransfers) {
  std::string big(300 * 1024, 'z');
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "big", big).ok());
  auto contents = vfs::ReadFileAt(client_.get(), "big");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), big.size());
  EXPECT_EQ(contents.value(), big);
}

}  // namespace
}  // namespace ficus::nfs
