// NFS client caching: the attribute cache and directory-name-lookup cache
// cut RPC traffic, and — exactly as the paper grumbles (section 2.2) —
// produce stale views when another client changes the server behind this
// client's back.
#include <gtest/gtest.h>

#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"

namespace ficus::nfs {
namespace {

using vfs::Credentials;

class NfsCacheTest : public ::testing::Test {
 protected:
  NfsCacheTest() : network_(&clock_), exported_(&clock_) {
    server_host_ = network_.AddHost("server");
    client_host_ = network_.AddHost("client");
    other_host_ = network_.AddHost("other");
    server_ = std::make_unique<NfsServer>(&network_, server_host_, &exported_);
    ClientConfig config;
    config.attr_cache_ttl = 3 * kSecond;
    config.dnlc_ttl = 3 * kSecond;
    client_ =
        std::make_unique<NfsClient>(&network_, client_host_, server_host_, &clock_, config);
    other_ =
        std::make_unique<NfsClient>(&network_, other_host_, server_host_, &clock_,
                                    ClientConfig{.attr_cache_ttl = 0, .dnlc_ttl = 0, .retry = {}});
  }

  SimClock clock_;
  net::Network network_;
  vfs::MemVfs exported_;
  net::HostId server_host_, client_host_, other_host_;
  std::unique_ptr<NfsServer> server_;
  std::unique_ptr<NfsClient> client_;
  std::unique_ptr<NfsClient> other_;
  Credentials cred_;
};

TEST_F(NfsCacheTest, AttrCacheAbsorbsRepeatGetAttr) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "x").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  uint64_t rpcs_before = client_->stats().rpcs;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*file)->GetAttr().ok());
  }
  EXPECT_EQ(client_->stats().rpcs, rpcs_before);  // all served from cache
  EXPECT_GE(client_->stats().attr_cache_hits, 5u);
}

TEST_F(NfsCacheTest, AttrCacheExpiresWithSimTime) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "x").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->GetAttr().ok());
  clock_.Advance(5 * kSecond);  // past the 3s TTL
  uint64_t rpcs_before = client_->stats().rpcs;
  ASSERT_TRUE((*file)->GetAttr().ok());
  EXPECT_EQ(client_->stats().rpcs, rpcs_before + 1);
}

TEST_F(NfsCacheTest, DnlcAbsorbsRepeatLookups) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "x").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE((*root)->Lookup("f", cred_).ok());
  uint64_t rpcs_before = client_->stats().rpcs;
  ASSERT_TRUE((*root)->Lookup("f", cred_).ok());
  EXPECT_EQ(client_->stats().rpcs, rpcs_before);
  EXPECT_GE(client_->stats().dnlc_hits, 1u);
}

TEST_F(NfsCacheTest, StaleAttributesVisibleWithinTtl) {
  // The cache anomaly the paper complains about: a second client's write
  // is invisible to this client's GetAttr until the TTL lapses.
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "aa").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  auto attr = (*file)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 2u);

  // Another client grows the file to 6 bytes.
  ASSERT_TRUE(vfs::WriteFileAt(other_.get(), "f", "aaaaaa").ok());

  auto stale = (*file)->GetAttr();
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->size, 2u);  // still the cached lie

  clock_.Advance(5 * kSecond);
  auto fresh = (*file)->GetAttr();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->size, 6u);
}

TEST_F(NfsCacheTest, DnlcServesDeletedNameWithinTtl) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "x").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE((*root)->Lookup("f", cred_).ok());  // primes the DNLC

  ASSERT_TRUE(vfs::RemovePath(other_.get(), "f").ok());

  // The cached name still resolves (to a handle that now fails on use) —
  // the "unexpected behavior for layers" of section 2.2.
  auto ghost = (*root)->Lookup("f", cred_);
  EXPECT_TRUE(ghost.ok());
  clock_.Advance(5 * kSecond);
  EXPECT_EQ((*root)->Lookup("f", cred_).status().code(), ErrorCode::kNotFound);
}

TEST_F(NfsCacheTest, ZeroTtlDisablesCachingEntirely) {
  ASSERT_TRUE(vfs::WriteFileAt(other_.get(), "f", "x").ok());
  auto root = other_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  uint64_t rpcs_before = other_->stats().rpcs;
  ASSERT_TRUE((*file)->GetAttr().ok());
  ASSERT_TRUE((*file)->GetAttr().ok());
  EXPECT_EQ(other_->stats().rpcs, rpcs_before + 2);  // every call hits the wire
}

TEST_F(NfsCacheTest, InvalidateCachesForcesRefresh) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "aa").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->GetAttr().ok());
  ASSERT_TRUE(vfs::WriteFileAt(other_.get(), "f", "aaaaaa").ok());
  client_->InvalidateCaches();
  auto fresh = (*file)->GetAttr();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->size, 6u);  // the knob real NFS lacked
}

}  // namespace
}  // namespace ficus::nfs
