// The statelessness properties the paper leans on (section 2.2): NFS
// ignores open/close, does not forward layer-private extensions, and
// invalidates handles on server restart.
#include <gtest/gtest.h>

#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"

namespace ficus::nfs {
namespace {

using vfs::Credentials;
using vfs::VnodePtr;

class NfsStatelessTest : public ::testing::Test {
 protected:
  NfsStatelessTest() : network_(&clock_), exported_(&clock_) {
    server_host_ = network_.AddHost("server");
    client_host_ = network_.AddHost("client");
    server_ = std::make_unique<NfsServer>(&network_, server_host_, &exported_);
    client_ = std::make_unique<NfsClient>(&network_, client_host_, server_host_, &clock_);
  }

  SimClock clock_;
  net::Network network_;
  vfs::MemVfs exported_;
  net::HostId server_host_, client_host_;
  std::unique_ptr<NfsServer> server_;
  std::unique_ptr<NfsClient> client_;
  Credentials cred_;
};

TEST_F(NfsStatelessTest, OpenAndCloseNeverCrossTheWire) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "x").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());

  uint64_t rpcs_before = client_->stats().rpcs;
  uint64_t opens_before = client_->stats().opens_dropped;
  uint64_t closes_before = client_->stats().closes_dropped;
  // "a layer intending to receive an open will never get it if NFS is in
  // between" — the client absorbs both calls without any RPC.
  EXPECT_TRUE((*file)->Open(vfs::kOpenRead, cred_).ok());
  EXPECT_TRUE((*file)->Close(vfs::kOpenRead, cred_).ok());
  EXPECT_EQ(client_->stats().rpcs, rpcs_before);
  EXPECT_EQ(client_->stats().opens_dropped, opens_before + 1);
  EXPECT_EQ(client_->stats().closes_dropped, closes_before + 1);
}

TEST_F(NfsStatelessTest, IoctlDoesNotCrossTheWire) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "x").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> response;
  // The protocol has no such procedure; this is why Ficus overloads
  // lookup names instead.
  EXPECT_EQ((*file)->Ioctl("ficus-op", {}, response, cred_).code(),
            ErrorCode::kNotSupported);
}

TEST_F(NfsStatelessTest, ServerRestartStalesOldHandles) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "x").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  client_->InvalidateCaches();

  server_->FlushHandles();  // reboot

  std::vector<uint8_t> out;
  EXPECT_EQ((*file)->Read(0, 1, out, cred_).status().code(), ErrorCode::kStale);
}

TEST_F(NfsStatelessTest, WritesAreSynchronousOnTheServer) {
  // After a client write returns, the data is on the exported filesystem —
  // no server-side dirty state to lose.
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "durable").ok());
  auto local = vfs::ReadFileAt(&exported_, "f");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local.value(), "durable");
}

TEST_F(NfsStatelessTest, HandlesAreDurableNamesForFiles) {
  ASSERT_TRUE(vfs::WriteFileAt(client_.get(), "f", "v1").ok());
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto first = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(first.ok());
  client_->InvalidateCaches();
  auto second = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(second.ok());
  // Two separate lookups yield the same durable handle.
  EXPECT_EQ(dynamic_cast<NfsVnode*>(first->get())->handle(),
            dynamic_cast<NfsVnode*>(second->get())->handle());
}

TEST_F(NfsStatelessTest, HandleTableEvictionKeepsServingNewLookups) {
  // Push far past the handle cap; old handles may go stale but fresh
  // lookups must keep working (NFS semantics allow ESTALE + re-lookup).
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        vfs::WriteFileAt(client_.get(), "file" + std::to_string(i), "x").ok());
  }
  EXPECT_TRUE(vfs::ReadFileAt(client_.get(), "file0").ok());
  EXPECT_TRUE(vfs::ReadFileAt(client_.get(), "file299").ok());
}

}  // namespace
}  // namespace ficus::nfs
