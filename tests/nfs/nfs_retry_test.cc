// NFS client retry/backoff under an installed FaultPlan: lost messages
// are resent with capped exponential backoff, deadlines cut retries
// short, and a dead link eventually exhausts the budget.
#include <gtest/gtest.h>

#include "src/net/fault.h"
#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"

namespace ficus::nfs {
namespace {

using vfs::Credentials;

class NfsRetryTest : public ::testing::Test {
 protected:
  NfsRetryTest() : network_(&clock_), exported_(&clock_) {
    server_host_ = network_.AddHost("server");
    client_host_ = network_.AddHost("client");
    server_ = std::make_unique<NfsServer>(&network_, server_host_, &exported_);
  }

  NfsClient* MakeClient(RetryPolicy retry) {
    ClientConfig config;
    config.attr_cache_ttl = 0;  // every op hits the wire
    config.dnlc_ttl = 0;
    config.retry = retry;
    client_ = std::make_unique<NfsClient>(&network_, client_host_, server_host_, &clock_,
                                          config);
    return client_.get();
  }

  SimClock clock_;
  net::Network network_;
  vfs::MemVfs exported_;
  net::HostId server_host_, client_host_;
  std::unique_ptr<NfsServer> server_;
  std::unique_ptr<NfsClient> client_;
  Credentials cred_;
};

TEST_F(NfsRetryTest, RecoversFromLossyLink) {
  // 40% loss per message; with 8 retries per call the workload must
  // complete, and the retry counters must show the recovery work.
  net::FaultPlan plan(77);
  plan.default_link().drop = 0.4;
  network_.InstallFaultPlan(std::move(plan));
  RetryPolicy retry;
  retry.rng_seed = 77;
  NfsClient* client = MakeClient(retry);

  ASSERT_TRUE(vfs::WriteFileAt(client, "f", "survived").ok());
  auto read_back = vfs::ReadFileAt(client, "f");
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), "survived");

  ClientStats stats = client->stats();
  EXPECT_GT(stats.retry_attempts, 0u);
  EXPECT_GT(stats.retry_recovered, 0u);
  EXPECT_GT(stats.retry_backoff_us, 0u);
  EXPECT_EQ(stats.retry_exhausted, 0u);
}

TEST_F(NfsRetryTest, ExhaustsRetriesOnDeadLink) {
  net::FaultPlan plan(5);
  plan.default_link().drop = 1.0;  // nothing ever gets through
  network_.InstallFaultPlan(std::move(plan));
  RetryPolicy retry;
  retry.max_retries = 3;
  NfsClient* client = MakeClient(retry);

  auto root = client->Root();
  EXPECT_EQ(root.status().code(), ErrorCode::kTimedOut);
  ClientStats stats = client->stats();
  EXPECT_EQ(stats.retry_exhausted, 1u);
  EXPECT_EQ(stats.retry_attempts, 3u);
  EXPECT_EQ(stats.rpcs, 4u);  // first attempt + 3 retries
}

TEST_F(NfsRetryTest, BackoffIsCappedExponentialWithJitter) {
  net::FaultPlan plan(5);
  plan.default_link().drop = 1.0;
  network_.InstallFaultPlan(std::move(plan));
  RetryPolicy retry;
  retry.rpc_timeout = kMillisecond;
  retry.max_retries = 6;
  retry.backoff_base = 8 * kMillisecond;
  retry.backoff_cap = 20 * kMillisecond;
  NfsClient* client = MakeClient(retry);
  SimTime before = clock_.Now();
  ASSERT_FALSE(client->Root().ok());
  // 7 attempts waited out 1ms each; the 6 backoff delays are drawn from
  // [b/2, b] for b = 8, 16, 20, 20, 20, 20 ms (doubling, then capped).
  SimTime waiting = 7 * kMillisecond;
  SimTime min_backoff = (4 + 8 + 10 + 10 + 10 + 10) * kMillisecond;
  SimTime max_backoff = (8 + 16 + 20 + 20 + 20 + 20) * kMillisecond;
  SimTime elapsed = clock_.Now() - before;
  EXPECT_GE(elapsed, waiting + min_backoff);
  EXPECT_LE(elapsed, waiting + max_backoff);
  EXPECT_EQ(client->stats().retry_backoff_us, elapsed - waiting);
}

TEST_F(NfsRetryTest, DeadlineStopsBackoffEarly) {
  // Fetch the root handle on a healthy network, then make the link drop
  // everything. The retry budget is generous, but the operation's deadline
  // only has room for the first attempt — the client must refuse to start
  // the backoff sleep rather than overrun it.
  RetryPolicy retry;
  retry.rpc_timeout = 10 * kMillisecond;
  retry.max_retries = 100;
  retry.backoff_base = 50 * kMillisecond;
  NfsClient* client = MakeClient(retry);
  auto root = client->Root();
  ASSERT_TRUE(root.ok());
  net::FaultPlan plan(5);
  plan.default_link().drop = 1.0;
  network_.InstallFaultPlan(std::move(plan));

  vfs::OpContext ctx(cred_);
  ctx.clock = &clock_;
  ctx.deadline = clock_.Now() + 30 * kMillisecond;  // one 10ms attempt + <50ms backoff
  uint64_t aborts_before = client->stats().retry_deadline_aborts;
  auto attr = (*root)->GetAttr(ctx);
  EXPECT_EQ(attr.status().code(), ErrorCode::kTimedOut);
  EXPECT_EQ(client->stats().retry_deadline_aborts, aborts_before + 1);
  // The deadline itself was honored: we gave up before sleeping past it.
  EXPECT_LE(clock_.Now(), ctx.deadline);
}

TEST_F(NfsRetryTest, WireStatusErrorsAreNotRetried) {
  // A clean kNotFound from the server must come back after exactly one
  // RPC — only transport losses are retried, not application errors.
  NfsClient* client = MakeClient(RetryPolicy{});
  auto root = client->Root();
  ASSERT_TRUE(root.ok());
  uint64_t rpcs_before = client->stats().rpcs;
  EXPECT_EQ((*root)->Lookup("missing", cred_).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(client->stats().rpcs, rpcs_before + 1);
  EXPECT_EQ(client->stats().retry_attempts, 0u);
}

TEST_F(NfsRetryTest, UnreachableRetriedOnlyWhenAsked) {
  network_.Partition({{client_host_}, {server_host_}});
  NfsClient* fail_fast = MakeClient(RetryPolicy{});
  EXPECT_EQ(fail_fast->Root().status().code(), ErrorCode::kUnreachable);
  EXPECT_EQ(fail_fast->stats().retry_attempts, 0u);
  network_.Heal();

  // With retry_unreachable the client keeps trying through a flap window:
  // the link heals while it backs off, and the call lands.
  net::FaultPlan plan(3);
  plan.AddFlap(client_host_, server_host_, 0, 40 * kMillisecond);  // one-shot outage
  network_.InstallFaultPlan(std::move(plan));
  RetryPolicy patient_retry;
  patient_retry.backoff_base = 20 * kMillisecond;
  patient_retry.retry_unreachable = true;
  patient_retry.rng_seed = 3;
  NfsClient* patient = MakeClient(patient_retry);
  auto root = patient->Root();
  ASSERT_TRUE(root.ok());
  EXPECT_GT(patient->stats().retry_recovered, 0u);
}

TEST_F(NfsRetryTest, PerfectNetworkNeverRetries) {
  NfsClient* client = MakeClient(RetryPolicy{});
  ASSERT_TRUE(vfs::WriteFileAt(client, "f", "x").ok());
  ClientStats stats = client->stats();
  EXPECT_EQ(stats.retry_attempts, 0u);
  EXPECT_EQ(stats.retry_backoff_us, 0u);
}

}  // namespace
}  // namespace ficus::nfs
