// Adversarial inputs to the NFS server: truncated requests, unknown
// procedures, bogus handles, and random garbage must produce error
// responses — never crashes or silent corruption.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"

namespace ficus::nfs {
namespace {

class ProtocolRobustnessTest : public ::testing::Test {
 protected:
  ProtocolRobustnessTest() : network_(&clock_), exported_(&clock_) {
    server_host_ = network_.AddHost("server");
    client_host_ = network_.AddHost("client");
    server_ = std::make_unique<NfsServer>(&network_, server_host_, &exported_);
    EXPECT_TRUE(vfs::WriteFileAt(&exported_, "canary", "alive").ok());
  }

  // Sends raw bytes as an RPC and returns the decoded leading status.
  Status SendRaw(const net::Payload& request) {
    auto response = network_.Rpc(client_host_, server_host_, kNfsService, request);
    if (!response.ok()) {
      return response.status();
    }
    ByteReader r(response.value());
    return ReadWireStatus(r);
  }

  // The exported filesystem must be untouched by hostile traffic.
  void ExpectCanaryIntact() {
    auto canary = vfs::ReadFileAt(&exported_, "canary");
    ASSERT_TRUE(canary.ok());
    EXPECT_EQ(canary.value(), "alive");
  }

  SimClock clock_;
  net::Network network_;
  vfs::MemVfs exported_;
  net::HostId server_host_, client_host_;
  std::unique_ptr<NfsServer> server_;
};

TEST_F(ProtocolRobustnessTest, EmptyRequestRejected) {
  EXPECT_FALSE(SendRaw({}).ok());
  ExpectCanaryIntact();
}

TEST_F(ProtocolRobustnessTest, UnknownProcedureRejected) {
  net::Payload request;
  ByteWriter w(request);
  w.PutU8(250);  // no such procedure
  PutContext(w, vfs::OpContext{});
  Status status = SendRaw(request);
  EXPECT_FALSE(status.ok());
  ExpectCanaryIntact();
}

TEST_F(ProtocolRobustnessTest, BogusHandleIsStale) {
  net::Payload request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(NfsProc::kGetAttr));
  PutContext(w, vfs::OpContext{});
  w.PutU64(0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(SendRaw(request).code(), ErrorCode::kStale);
}

TEST_F(ProtocolRobustnessTest, TruncatedArgumentsRejected) {
  // A lookup with the name chopped off mid-length-prefix.
  net::Payload request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(NfsProc::kLookup));
  PutContext(w, vfs::OpContext{});
  w.PutU64(1);
  request.push_back(0x05);  // half of a u16 length
  EXPECT_FALSE(SendRaw(request).ok());
  ExpectCanaryIntact();
}

TEST_F(ProtocolRobustnessTest, RandomGarbageNeverCrashes) {
  Rng rng(SeedFromEnvOr(20260705, "nfs_robustness.random_garbage"));
  for (int trial = 0; trial < 500; ++trial) {
    size_t length = rng.NextBelow(64);
    net::Payload request(length);
    for (auto& b : request) {
      b = static_cast<uint8_t>(rng.Next());
    }
    (void)SendRaw(request);  // must not crash; status may be anything
  }
  ExpectCanaryIntact();
  // The server keeps working for honest clients afterwards.
  NfsClient client(&network_, client_host_, server_host_, &clock_);
  auto contents = vfs::ReadFileAt(&client, "canary");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "alive");
}

TEST_F(ProtocolRobustnessTest, MutationWithBogusHandleChangesNothing) {
  net::Payload request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(NfsProc::kRemove));
  PutContext(w, vfs::OpContext{});
  w.PutU64(424242);
  w.PutString("canary");
  EXPECT_FALSE(SendRaw(request).ok());
  ExpectCanaryIntact();
}

TEST_F(ProtocolRobustnessTest, OversizedWritePayloadHandled) {
  // Get a real handle first.
  NfsClient client(&network_, client_host_, server_host_, &clock_);
  auto root = client.Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("canary", {});
  ASSERT_TRUE(file.ok());
  // Claim a byte-array length far beyond the actual payload.
  net::Payload request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(NfsProc::kWrite));
  PutContext(w, vfs::OpContext{});
  w.PutU64(dynamic_cast<NfsVnode*>(file->get())->handle());
  w.PutU64(0);
  w.PutU32(0x7FFFFFFF);  // lies: "2 GiB follow"
  request.push_back('x');
  EXPECT_FALSE(SendRaw(request).ok());
  ExpectCanaryIntact();
}

}  // namespace
}  // namespace ficus::nfs
