#include "src/repl/reconcile.h"

#include <gtest/gtest.h>

#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

class ReconcileTest : public ReplicaFixture {
 protected:
  ReconcileTest() : ReplicaFixture(2) {}
};

TEST_F(ReconcileTest, FreshReplicasShareRootHistory) {
  auto a = layer(0)->GetAttributes(kRootFileId);
  auto b = layer(1)->GetAttributes(kRootFileId);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->vv == b->vv);
}

TEST_F(ReconcileTest, RemoteCreateAppearsLocally) {
  auto file = layer(0)->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer(0)->WriteData(*file, 0, {1, 2, 3}).ok());

  ReconcileAll();

  ASSERT_TRUE(layer(1)->Stores(*file));
  auto data = layer(1)->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{1, 2, 3}));
  auto a = layer(0)->GetAttributes(*file);
  auto b = layer(1)->GetAttributes(*file);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->vv == b->vv);
}

TEST_F(ReconcileTest, RemoteDeletePropagates) {
  auto file = layer(0)->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ReconcileAll();
  ASSERT_TRUE(layer(1)->Stores(*file));

  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "f").ok());
  ReconcileAll();

  auto entries = layer(1)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  for (const auto& e : *entries) {
    EXPECT_FALSE(e.alive);
  }
}

TEST_F(ReconcileTest, ConcurrentFileUpdatesDetectedNotMerged) {
  auto file = layer(0)->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ReconcileAll();

  // Partition: both replicas update independently.
  ASSERT_TRUE(layer(0)->WriteData(*file, 0, {'A'}).ok());
  ASSERT_TRUE(layer(1)->WriteData(*file, 0, {'B'}).ok());

  ReconcileAll();

  auto a = layer(0)->GetAttributes(*file);
  auto b = layer(1)->GetAttributes(*file);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->conflict);
  EXPECT_TRUE(b->conflict);
  // Contents NOT clobbered: each side keeps its own version for the owner.
  auto data_a = layer(0)->ReadAllData(*file);
  auto data_b = layer(1)->ReadAllData(*file);
  EXPECT_EQ(data_a.value(), (std::vector<uint8_t>{'A'}));
  EXPECT_EQ(data_b.value(), (std::vector<uint8_t>{'B'}));
  EXPECT_GE(log_.CountOf(ConflictKind::kFileUpdate), 1u);
}

TEST_F(ReconcileTest, SequentialUpdatesWinWithoutConflict) {
  auto file = layer(0)->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ReconcileAll();
  ASSERT_TRUE(layer(0)->WriteData(*file, 0, {'A'}).ok());
  ReconcileAll();
  // Replica 1 saw A; now it updates on top — no conflict.
  ASSERT_TRUE(layer(1)->WriteData(*file, 0, {'B'}).ok());
  ReconcileAll();
  auto data_a = layer(0)->ReadAllData(*file);
  ASSERT_TRUE(data_a.ok());
  EXPECT_EQ(data_a.value(), (std::vector<uint8_t>{'B'}));
  auto a = layer(0)->GetAttributes(*file);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->conflict);
  EXPECT_EQ(log_.CountOf(ConflictKind::kFileUpdate), 0u);
}

TEST_F(ReconcileTest, ConcurrentDirectoryUpdatesMergeAutomatically) {
  // Replica 0 creates x, replica 1 creates y, concurrently.
  ASSERT_TRUE(layer(0)->CreateChild(kRootFileId, "x", FicusFileType::kRegular, 0).ok());
  ASSERT_TRUE(layer(1)->CreateChild(kRootFileId, "y", FicusFileType::kRegular, 0).ok());

  ReconcileAll();

  for (int i = 0; i < 2; ++i) {
    auto entries = layer(i)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    std::set<std::string> names;
    for (const auto& e : *entries) {
      if (e.alive) {
        names.insert(e.name);
      }
    }
    EXPECT_EQ(names, (std::set<std::string>{"x", "y"})) << "replica " << i;
  }
}

TEST_F(ReconcileTest, ConcurrentSameNameCreatesKeepBoth) {
  ASSERT_TRUE(layer(0)->CreateChild(kRootFileId, "same", FicusFileType::kRegular, 0).ok());
  ASSERT_TRUE(layer(1)->CreateChild(kRootFileId, "same", FicusFileType::kRegular, 0).ok());

  ReconcileAll();

  // Both replicas converge to the same two presented names.
  auto entries_a = layer(0)->ReadDirectory(kRootFileId);
  auto entries_b = layer(1)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries_a.ok());
  ASSERT_TRUE(entries_b.ok());
  std::set<std::string> names_a, names_b;
  for (const auto& e : PresentEntries(*entries_a)) {
    if (e.alive) {
      names_a.insert(e.name);
    }
  }
  for (const auto& e : PresentEntries(*entries_b)) {
    if (e.alive) {
      names_b.insert(e.name);
    }
  }
  EXPECT_EQ(names_a.size(), 2u);
  EXPECT_EQ(names_a, names_b);
  EXPECT_EQ(names_a.count("same"), 1u);  // one keeps the plain name
  EXPECT_GE(log_.CountOf(ConflictKind::kNameCollision), 1u);
}

TEST_F(ReconcileTest, DeleteVersusConcurrentRecreateFavoursLiveness) {
  auto file = layer(0)->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ReconcileAll();

  // Partitioned: replica 0 deletes; replica 1 deletes AND recreates the
  // same name for the same file (its entry history grows further).
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "f").ok());
  ASSERT_TRUE(layer(1)->RemoveEntry(kRootFileId, "f").ok());
  ASSERT_TRUE(layer(1)->AddEntry(kRootFileId, "f", *file, FicusFileType::kRegular).ok());

  ReconcileAll();

  for (int i = 0; i < 2; ++i) {
    auto entries = layer(i)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    int alive = 0;
    for (const auto& e : *entries) {
      if (e.alive) {
        ++alive;
      }
    }
    EXPECT_EQ(alive, 1) << "replica " << i;
  }
}

TEST_F(ReconcileTest, SubtreeReconcilesNestedDirectories) {
  auto dir = layer(0)->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  auto sub = layer(0)->CreateChild(*dir, "sub", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(sub.ok());
  auto file = layer(0)->CreateChild(*sub, "deep", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer(0)->WriteData(*file, 0, {0xEE}).ok());

  ReconcileAll();

  ASSERT_TRUE(layer(1)->Stores(*file));
  auto data = layer(1)->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{0xEE}));
}

TEST_F(ReconcileTest, UnreachableReplicaSkippedGracefully) {
  ASSERT_TRUE(layer(0)->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0).ok());
  resolver_.SetReachable(1, false);
  Reconciler reconciler(layer(1), &resolver_, &log_, &clock_);
  // Replica 1 cannot reach replica... wait: make replica 2's view: it
  // cannot reach replica 1, so reconciliation is a no-op, not an error.
  EXPECT_TRUE(reconciler.ReconcileWithAllReplicas().ok());
  auto entries = layer(1)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
  resolver_.SetReachable(1, true);
  ReconcileAll();
  entries = layer(1)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
}

TEST_F(ReconcileTest, ReconcileIsIdempotent) {
  auto file = layer(0)->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ReconcileAll();
  auto before_a = layer(0)->GetAttributes(*file);
  auto before_b = layer(1)->GetAttributes(*file);
  ReconcileAll();
  ReconcileAll();
  auto after_a = layer(0)->GetAttributes(*file);
  auto after_b = layer(1)->GetAttributes(*file);
  EXPECT_TRUE(before_a->vv == after_a->vv);
  EXPECT_TRUE(before_b->vv == after_b->vv);
}

TEST_F(ReconcileTest, RenamePropagates) {
  auto file = layer(0)->CreateChild(kRootFileId, "old", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ReconcileAll();
  ASSERT_TRUE(layer(0)->RenameEntry(kRootFileId, "old", kRootFileId, "new").ok());
  ReconcileAll();
  auto entries = layer(1)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  std::set<std::string> alive_names;
  for (const auto& e : *entries) {
    if (e.alive) {
      alive_names.insert(e.name);
    }
  }
  EXPECT_EQ(alive_names, (std::set<std::string>{"new"}));
}

// A directory renamed concurrently to two different names keeps both —
// "it is often later necessary to retain multiple names" (section 2.5).
TEST_F(ReconcileTest, ConcurrentDirectoryRenameRetainsBothNames) {
  auto dir = layer(0)->CreateChild(kRootFileId, "proj", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  ReconcileAll();

  ASSERT_TRUE(layer(0)->RenameEntry(kRootFileId, "proj", kRootFileId, "proj-alpha").ok());
  ASSERT_TRUE(layer(1)->RenameEntry(kRootFileId, "proj", kRootFileId, "proj-beta").ok());

  ReconcileAll();

  for (int i = 0; i < 2; ++i) {
    auto entries = layer(i)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    std::set<std::string> alive_names;
    for (const auto& e : *entries) {
      if (e.alive) {
        EXPECT_EQ(e.file, *dir);
        alive_names.insert(e.name);
      }
    }
    EXPECT_EQ(alive_names, (std::set<std::string>{"proj-alpha", "proj-beta"}))
        << "replica " << i;
  }
}

}  // namespace
}  // namespace ficus::repl
