// Directory-merge edge cases for the reconciler: concurrent rename vs.
// remove, remove/recreate under the same name, tombstone metadata
// propagation, cross-directory rename displacement, and orphan adoption
// via the remove/update repair. The same scenarios are committed as model
// checker traces under tests/sim/traces/.
#include <gtest/gtest.h>

#include <algorithm>

#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

class ReconcileDirEdgeTest : public ReplicaFixture {
 protected:
  ReconcileDirEdgeTest() : ReplicaFixture(2) {}

  FileId MustCreate(int replica, FileId dir, const std::string& name,
                    const std::vector<uint8_t>& contents) {
    auto file = layer(replica)->CreateChild(dir, name, FicusFileType::kRegular, 0);
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    EXPECT_TRUE(layer(replica)->WriteData(*file, 0, contents).ok());
    return *file;
  }

  // The raw entry for (name, file) in `dir`, or nullptr.
  static const FicusDirEntry* FindEntry(const std::vector<FicusDirEntry>& entries,
                                        const std::string& name, FileId file) {
    for (const FicusDirEntry& entry : entries) {
      if (entry.name == name && entry.file == file) return &entry;
    }
    return nullptr;
  }

  // Asserts both replicas hold the identical raw entry set for `dir`.
  void ExpectConverged(FileId dir) {
    auto a = layer(0)->ReadDirectory(dir);
    auto b = layer(1)->ReadDirectory(dir);
    ASSERT_TRUE(a.ok() && b.ok());
    auto canonical = [](std::vector<FicusDirEntry> entries) {
      std::vector<std::string> out;
      for (const FicusDirEntry& e : entries) {
        out.push_back(e.name + "/" + e.file.ToHex() + (e.alive ? "/alive/" : "/dead/") +
                      e.vv.ToString() + "/dfv=" + e.deleted_file_vv.ToString());
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(canonical(a.value()), canonical(b.value()));
  }
};

TEST_F(ReconcileDirEdgeTest, ConcurrentRenameVsRemoveKeepsTheNewName) {
  FileId doc = MustCreate(0, kRootFileId, "doc", {'v', '1'});
  ReconcileAll();

  // Partitioned in spirit: the two ops happen with no reconciliation
  // between them. Replica 1 renames while replica 2 removes.
  ASSERT_TRUE(layer(0)->RenameEntry(kRootFileId, "doc", kRootFileId, "doc2").ok());
  ASSERT_TRUE(layer(1)->RemoveEntry(kRootFileId, "doc").ok());
  ReconcileAll(3);

  ExpectConverged(kRootFileId);
  auto entries = layer(1)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  const FicusDirEntry* old_name = FindEntry(entries.value(), "doc", doc);
  const FicusDirEntry* new_name = FindEntry(entries.value(), "doc2", doc);
  ASSERT_NE(old_name, nullptr);
  ASSERT_NE(new_name, nullptr);
  EXPECT_FALSE(old_name->alive) << "the old name must stay dead";
  EXPECT_TRUE(new_name->alive) << "the remove raced a rename, not an update: "
                                  "the file lives on under its new name";
  auto contents = layer(1)->ReadAllData(doc);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), (std::vector<uint8_t>{'v', '1'}));
}

TEST_F(ReconcileDirEdgeTest, RemoveThenRecreateSameNameConverges) {
  FileId first = MustCreate(0, kRootFileId, "f", {'a'});
  ReconcileAll();
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "f").ok());
  ReconcileAll();

  // Recreated at the *other* replica: a brand-new file under the old name.
  FileId second = MustCreate(1, kRootFileId, "f", {'b'});
  ASSERT_NE(first, second);
  ReconcileAll(3);

  ExpectConverged(kRootFileId);
  auto entries = layer(0)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  const FicusDirEntry* old_entry = FindEntry(entries.value(), "f", first);
  const FicusDirEntry* new_entry = FindEntry(entries.value(), "f", second);
  ASSERT_NE(old_entry, nullptr);
  ASSERT_NE(new_entry, nullptr);
  EXPECT_FALSE(old_entry->alive);
  EXPECT_TRUE(new_entry->alive);
  auto contents = layer(0)->ReadAllData(second);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), (std::vector<uint8_t>{'b'}));
}

TEST_F(ReconcileDirEdgeTest, RecreateAtSameReplicaReusesTombstoneAndClearsDfv) {
  FileId file = MustCreate(0, kRootFileId, "f", {'a'});
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "f").ok());
  // Re-link the same file id under the same name: the tombstone is reused
  // (monotone entry vector) and its deleted_file_vv judgement is dropped.
  ASSERT_TRUE(layer(0)->AddEntry(kRootFileId, "f", file, FicusFileType::kRegular).ok());
  auto entries = layer(0)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  const FicusDirEntry* entry = FindEntry(entries.value(), "f", file);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->alive);
  EXPECT_TRUE(entry->deleted_file_vv.Empty())
      << "a live entry must not carry a stale delete judgement";
  ReconcileAll(3);
  ExpectConverged(kRootFileId);
}

TEST_F(ReconcileDirEdgeTest, TombstoneContentJudgementTravelsToPeers) {
  FileId file = MustCreate(0, kRootFileId, "f", {'x', 'y'});
  ReconcileAll();
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "f").ok());
  ReconcileAll(3);

  // Both tombstones — the deleter's and the one applied at the peer — must
  // carry the same non-empty deleted_file_vv, or the two replicas would
  // make different remove/update resurrection decisions later.
  for (int r = 0; r < 2; ++r) {
    auto entries = layer(r)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    const FicusDirEntry* entry = FindEntry(entries.value(), "f", file);
    ASSERT_NE(entry, nullptr) << "replica " << r;
    EXPECT_FALSE(entry->alive) << "replica " << r;
    EXPECT_FALSE(entry->deleted_file_vv.Empty())
        << "replica " << r << " lost the deleter's content judgement";
  }
  ExpectConverged(kRootFileId);
}

TEST_F(ReconcileDirEdgeTest, CrossDirectoryRenameDisplacesExistingTarget) {
  auto dir = layer(0)->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  FileId mover = MustCreate(0, kRootFileId, "a", {'A'});
  FileId target = MustCreate(0, *dir, "g", {'G'});

  // Used to fail half-way: the source was tombstoned, then AddEntry
  // refused the existing target name — orphaning the file.
  ASSERT_TRUE(layer(0)->RenameEntry(kRootFileId, "a", *dir, "g").ok());

  auto root_entries = layer(0)->ReadDirectory(kRootFileId);
  auto dir_entries = layer(0)->ReadDirectory(*dir);
  ASSERT_TRUE(root_entries.ok() && dir_entries.ok());
  const FicusDirEntry* source = FindEntry(root_entries.value(), "a", mover);
  ASSERT_NE(source, nullptr);
  EXPECT_FALSE(source->alive);
  const FicusDirEntry* moved = FindEntry(dir_entries.value(), "g", mover);
  ASSERT_NE(moved, nullptr);
  EXPECT_TRUE(moved->alive);
  const FicusDirEntry* displaced = FindEntry(dir_entries.value(), "g", target);
  ASSERT_NE(displaced, nullptr);
  EXPECT_FALSE(displaced->alive);
  EXPECT_FALSE(displaced->deleted_file_vv.Empty())
      << "displacement deletes the target's contents and must say what it knew";

  auto contents = layer(0)->ReadAllData(mover);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), (std::vector<uint8_t>{'A'}));
  auto problems = layer(0)->CheckConsistency();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();

  ReconcileAll(3);
  ExpectConverged(kRootFileId);
  ExpectConverged(*dir);
}

TEST_F(ReconcileDirEdgeTest, RemoveUpdateRepairAdoptsTheOrphanedFile) {
  FileId file = MustCreate(0, kRootFileId, "f", {'o', 'l', 'd'});
  ReconcileAll();

  // Concurrently: replica 1 removes while replica 2 writes new contents
  // the remover never saw. The no-lost-update rule resurrects the entry
  // — the orphaned file is adopted back into the namespace everywhere,
  // carrying the surviving update.
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "f").ok());
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'n', 'e', 'w'}).ok());
  ReconcileAll(3);

  for (int r = 0; r < 2; ++r) {
    auto entries = layer(r)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    const FicusDirEntry* entry = FindEntry(entries.value(), "f", file);
    ASSERT_NE(entry, nullptr) << "replica " << r;
    EXPECT_TRUE(entry->alive) << "replica " << r << ": the unseen update must win";
    EXPECT_TRUE(entry->deleted_file_vv.Empty()) << "replica " << r;
    auto contents = layer(r)->ReadAllData(file);
    ASSERT_TRUE(contents.ok()) << "replica " << r;
    EXPECT_EQ(contents.value(), (std::vector<uint8_t>{'n', 'e', 'w'})) << "replica " << r;
  }
  ExpectConverged(kRootFileId);
}

}  // namespace
}  // namespace ficus::repl
