// Crash injection around the shadow-file atomic commit (paper section
// 3.2): "If a crash occurs before the shadow substitution, the original
// replica is retained during recovery and the shadow discarded."
#include <gtest/gtest.h>

#include "src/repl/physical.h"

namespace ficus::repl {
namespace {

class CrashTest : public ::testing::Test {
 protected:
  CrashTest() : device_(8192), cache_(&device_, 256), ufs_(&cache_, &clock_) {
    EXPECT_TRUE(ufs_.Format(1024).ok());
    layer_ = std::make_unique<PhysicalLayer>(&ufs_, &clock_);
    EXPECT_TRUE(layer_->CreateVolume(VolumeId{1, 1}, 1, "vol1", true).ok());
    auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
    EXPECT_TRUE(file.ok());
    file_ = file.value();
    EXPECT_TRUE(layer_->WriteData(file_, 0, {'o', 'l', 'd'}).ok());
  }

  // Simulates the machine rebooting: drop the page cache, clear the crash
  // flag, and re-attach a fresh physical layer to the surviving image.
  std::unique_ptr<PhysicalLayer> Reboot() {
    device_.ClearCrash();
    cache_.Invalidate();
    auto fresh = std::make_unique<PhysicalLayer>(&ufs_, &clock_);
    EXPECT_TRUE(fresh->Attach("vol1").ok());
    return fresh;
  }

  VersionVector NewerVv() {
    auto attrs = layer_->GetAttributes(file_);
    EXPECT_TRUE(attrs.ok());
    VersionVector vv = attrs->vv;
    vv.Increment(2);
    return vv;
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BufferCache cache_;
  ufs::Ufs ufs_;
  std::unique_ptr<PhysicalLayer> layer_;
  FileId file_;
};

TEST_F(CrashTest, CrashBeforeInstallKeepsOriginal) {
  device_.InjectCrash();  // every write from here on is lost
  // The install appears to succeed (writes are silently dropped).
  (void)layer_->InstallVersion(file_, {'n', 'e', 'w', '!'}, NewerVv());

  auto recovered = Reboot();
  auto data = recovered->ReadAllData(file_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{'o', 'l', 'd'}));
  // Recovery found nothing to clean (nothing was persisted).
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(CrashTest, CompletedInstallSurvivesReboot) {
  VersionVector vv = NewerVv();
  ASSERT_TRUE(layer_->InstallVersion(file_, {'n', 'e', 'w'}, vv).ok());
  auto recovered = Reboot();
  auto data = recovered->ReadAllData(file_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{'n', 'e', 'w'}));
  auto attrs = recovered->GetAttributes(file_);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->vv == vv);
}

TEST_F(CrashTest, StrandedShadowFileCleanedAtAttach) {
  // Hand-craft the mid-install state: a shadow file exists beside the
  // original (as if the crash hit after the shadow write, before the
  // repoint).
  auto container = ufs_.DirLookup(ufs::kRootInode, "vol1");
  ASSERT_TRUE(container.ok());
  auto root_dir = ufs_.DirLookup(*container, kRootFileId.ToHex());
  ASSERT_TRUE(root_dir.ok());
  std::string shadow_name = file_.ToHex() + ".shadow";
  auto shadow = ufs_.CreateFile(*root_dir, shadow_name, ufs::FileType::kRegular, 0644, 0, 0);
  ASSERT_TRUE(shadow.ok());
  ASSERT_TRUE(ufs_.WriteAll(*shadow, {'h', 'a', 'l', 'f'}).ok());

  auto recovered = Reboot();
  EXPECT_EQ(recovered->stats().shadows_recovered, 1u);
  // Original intact, shadow gone, filesystem clean.
  auto data = recovered->ReadAllData(file_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{'o', 'l', 'd'}));
  EXPECT_EQ(ufs_.DirLookup(*root_dir, shadow_name).status().code(), ErrorCode::kNotFound);
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(CrashTest, RepeatedInstallsAfterRecoveryConverge) {
  // Crash-drop one install, reboot, then redo it: the outcome must match
  // a never-crashed install (idempotent recovery).
  VersionVector vv = NewerVv();
  device_.InjectCrash();
  (void)layer_->InstallVersion(file_, {'x'}, vv);
  auto recovered = Reboot();
  ASSERT_TRUE(recovered->InstallVersion(file_, {'x'}, vv).ok());
  auto data = recovered->ReadAllData(file_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{'x'}));
  auto attrs = recovered->GetAttributes(file_);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->vv == vv);
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

}  // namespace
}  // namespace ficus::repl
