#include "src/repl/types.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace ficus::repl {
namespace {

TEST(TypesTest, AttributesRoundTrip) {
  ReplicaAttributes attrs;
  attrs.id = GlobalFileId{{1, 2}, {3, 4}};
  attrs.type = FicusFileType::kDirectory;
  attrs.vv.Increment(1);
  attrs.vv.Increment(2);
  attrs.conflict = true;
  attrs.owner_uid = 500;
  attrs.mtime = 12345;

  auto decoded = ReplicaAttributes::FromBytes(attrs.ToBytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, attrs.id);
  EXPECT_EQ(decoded->type, FicusFileType::kDirectory);
  EXPECT_TRUE(decoded->vv == attrs.vv);
  EXPECT_TRUE(decoded->conflict);
  EXPECT_EQ(decoded->owner_uid, 500u);
  EXPECT_EQ(decoded->mtime, 12345u);
}

TEST(TypesTest, AttributesRejectCorruptType) {
  ReplicaAttributes attrs;
  attrs.id = GlobalFileId{{1, 1}, {1, 1}};
  std::vector<uint8_t> bytes = attrs.ToBytes();
  bytes[16] = 99;  // type byte follows volume (8) + file (8)
  EXPECT_EQ(ReplicaAttributes::FromBytes(bytes).status().code(), ErrorCode::kCorrupt);
}

TEST(TypesTest, DirEntriesRoundTripIncludingTombstones) {
  std::vector<FicusDirEntry> entries;
  FicusDirEntry alive;
  alive.name = "file.txt";
  alive.file = FileId{1, 10};
  alive.type = FicusFileType::kRegular;
  alive.alive = true;
  alive.vv.Increment(1);
  entries.push_back(alive);

  FicusDirEntry tombstone;
  tombstone.name = "deleted";
  tombstone.file = FileId{2, 20};
  tombstone.type = FicusFileType::kDirectory;
  tombstone.alive = false;
  tombstone.vv.Increment(1);
  tombstone.vv.Increment(2);
  entries.push_back(tombstone);

  auto decoded = DeserializeDirEntries(SerializeDirEntries(entries));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].name, "file.txt");
  EXPECT_TRUE((*decoded)[0].alive);
  EXPECT_EQ((*decoded)[1].name, "deleted");
  EXPECT_FALSE((*decoded)[1].alive);
  EXPECT_TRUE((*decoded)[1].vv == tombstone.vv);
}

TEST(TypesTest, EmptyDirectorySerializes) {
  auto decoded = DeserializeDirEntries(SerializeDirEntries({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(TypesTest, TruncatedDirectoryFails) {
  std::vector<FicusDirEntry> entries(1);
  entries[0].name = "x";
  entries[0].file = FileId{1, 1};
  std::vector<uint8_t> bytes = SerializeDirEntries(entries);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(DeserializeDirEntries(bytes).ok());
}

// Deserializers face bytes from the network and from disk; arbitrary
// garbage must produce an error, never a crash or runaway allocation.
class TypesFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TypesFuzzTest, RandomBytesNeverCrashDeserializers) {
  Rng rng(SeedFromEnvOr(GetParam(), "types_fuzz.random_bytes"));
  for (int trial = 0; trial < 2000; ++trial) {
    size_t length = rng.NextBelow(200);
    std::vector<uint8_t> bytes(length);
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.Next());
    }
    (void)ReplicaAttributes::FromBytes(bytes);
    (void)DeserializeDirEntries(bytes);
    ByteReader r(bytes);
    (void)VersionVector::Deserialize(r);
  }
}

TEST_P(TypesFuzzTest, TruncationsOfValidDataNeverCrash) {
  Rng rng(SeedFromEnvOr(GetParam() + 99, "types_fuzz.truncations"));
  // Build a realistic directory image, then chop it everywhere.
  std::vector<FicusDirEntry> entries;
  for (int i = 0; i < 5; ++i) {
    FicusDirEntry e;
    e.name = "entry-" + std::to_string(i);
    e.file = FileId{static_cast<ReplicaId>(i + 1), static_cast<uint32_t>(rng.Next())};
    e.alive = (i % 2) == 0;
    e.vv.Increment(static_cast<ReplicaId>(i + 1));
    e.deleted_file_vv.Increment(1);
    entries.push_back(std::move(e));
  }
  std::vector<uint8_t> valid = SerializeDirEntries(entries);
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    std::vector<uint8_t> chopped(valid.begin(), valid.begin() + static_cast<ptrdiff_t>(cut));
    auto result = DeserializeDirEntries(chopped);
    EXPECT_FALSE(result.ok()) << "cut at " << cut << " parsed successfully";
  }
  // And bit flips.
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> flipped = valid;
    flipped[rng.NextBelow(flipped.size())] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    (void)DeserializeDirEntries(flipped);  // may succeed or fail; no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypesFuzzTest, ::testing::Values(1, 7, 42));

TEST(TypesTest, DirectoryLikePredicate) {
  EXPECT_TRUE(IsDirectoryLike(FicusFileType::kDirectory));
  EXPECT_TRUE(IsDirectoryLike(FicusFileType::kGraftPoint));
  EXPECT_FALSE(IsDirectoryLike(FicusFileType::kRegular));
  EXPECT_FALSE(IsDirectoryLike(FicusFileType::kSymlink));
}

}  // namespace
}  // namespace ficus::repl
