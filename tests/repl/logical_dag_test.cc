// The DAG-of-directories semantics (paper section 2.5): "unlike Unix,
// Ficus directories may have more than one name", a consequence of
// concurrent renames during partition — plus multi-name regular files.
#include <gtest/gtest.h>

#include "src/vfs/path_ops.h"
#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

using vfs::Credentials;

class LogicalDagTest : public ReplicaFixture {
 protected:
  LogicalDagTest() : ReplicaFixture(2) {
    logical_ = std::make_unique<LogicalLayer>(VolumeId{1, 1}, &resolver_, &notifier_, &log_,
                                              &clock_);
    resolver_.SetPreferred(1);
  }

  std::unique_ptr<LogicalLayer> logical_;
  Credentials cred_;
};

TEST_F(LogicalDagTest, DirectoryReachableThroughTwoNames) {
  ASSERT_TRUE(vfs::MkdirAll(logical_.get(), "proj").ok());
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "proj/file", "shared content").ok());
  ReconcileAll();

  // Concurrent renames during partition give the directory two names.
  ASSERT_TRUE(layer(0)->RenameEntry(kRootFileId, "proj", kRootFileId, "alpha").ok());
  ASSERT_TRUE(layer(1)->RenameEntry(kRootFileId, "proj", kRootFileId, "beta").ok());
  ReconcileAll();

  // Both paths resolve to the same directory and the same file.
  auto via_alpha = vfs::ReadFileAt(logical_.get(), "alpha/file");
  auto via_beta = vfs::ReadFileAt(logical_.get(), "beta/file");
  ASSERT_TRUE(via_alpha.ok());
  ASSERT_TRUE(via_beta.ok());
  EXPECT_EQ(via_alpha.value(), via_beta.value());

  // A write through one name is visible through the other (same file-id).
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "alpha/file", "updated").ok());
  via_beta = vfs::ReadFileAt(logical_.get(), "beta/file");
  ASSERT_TRUE(via_beta.ok());
  EXPECT_EQ(via_beta.value(), "updated");
}

TEST_F(LogicalDagTest, NewChildVisibleThroughBothNames) {
  ASSERT_TRUE(vfs::MkdirAll(logical_.get(), "d").ok());
  ReconcileAll();
  ASSERT_TRUE(layer(0)->RenameEntry(kRootFileId, "d", kRootFileId, "d-one").ok());
  ASSERT_TRUE(layer(1)->RenameEntry(kRootFileId, "d", kRootFileId, "d-two").ok());
  ReconcileAll();

  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "d-one/newfile", "x").ok());
  EXPECT_TRUE(vfs::Exists(logical_.get(), "d-two/newfile"));
}

TEST_F(LogicalDagTest, HardLinkAcrossDirectories) {
  ASSERT_TRUE(vfs::MkdirAll(logical_.get(), "a").ok());
  ASSERT_TRUE(vfs::MkdirAll(logical_.get(), "b").ok());
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "a/orig", "linked data").ok());

  auto root = logical_->Root();
  ASSERT_TRUE(root.ok());
  auto a = (*root)->Lookup("a", cred_);
  auto b = (*root)->Lookup("b", cred_);
  auto file = (*a)->Lookup("orig", cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*b)->Link("alias", *file, cred_).ok());

  auto via_alias = vfs::ReadFileAt(logical_.get(), "b/alias");
  ASSERT_TRUE(via_alias.ok());
  EXPECT_EQ(via_alias.value(), "linked data");

  // The link survives replication.
  ReconcileAll();
  LogicalLayer other(VolumeId{1, 1}, &resolver_, &notifier_, &log_, &clock_);
  resolver_.SetReachable(1, false);  // force service from replica 2
  auto replicated = vfs::ReadFileAt(&other, "b/alias");
  ASSERT_TRUE(replicated.ok());
  EXPECT_EQ(replicated.value(), "linked data");
  resolver_.SetReachable(1, true);
}

TEST_F(LogicalDagTest, RemovingOneNameKeepsTheOther) {
  ASSERT_TRUE(vfs::MkdirAll(logical_.get(), "a").ok());
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "a/f", "data").ok());
  auto root = logical_->Root();
  auto a = (*root.value()).Lookup("a", cred_);
  auto file = (*a)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*a)->Link("g", *file, cred_).ok());

  ASSERT_TRUE(vfs::RemovePath(logical_.get(), "a/f").ok());
  EXPECT_FALSE(vfs::Exists(logical_.get(), "a/f"));
  auto contents = vfs::ReadFileAt(logical_.get(), "a/g");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "data");
}

TEST_F(LogicalDagTest, SameNameConflictPresentedDistinctly) {
  // Concurrent creation of the same name (different files) at the two
  // replicas: the logical layer must expose both with distinct names and
  // both contents must be readable.
  ASSERT_TRUE(layer(0)->CreateChild(kRootFileId, "report", FicusFileType::kRegular, 0).ok());
  ASSERT_TRUE(layer(1)->CreateChild(kRootFileId, "report", FicusFileType::kRegular, 0).ok());
  auto e0 = layer(0)->ReadDirectory(kRootFileId);
  auto e1 = layer(1)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(layer(0)->WriteData((*e0)[0].file, 0, {'A'}).ok());
  ASSERT_TRUE(layer(1)->WriteData((*e1)[0].file, 0, {'B'}).ok());
  ReconcileAll();

  auto listing = vfs::ListDir(logical_.get(), "");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 2u);
  std::set<std::string> contents;
  for (const auto& entry : *listing) {
    auto data = vfs::ReadFileAt(logical_.get(), entry.name);
    ASSERT_TRUE(data.ok()) << entry.name;
    contents.insert(data.value());
  }
  EXPECT_EQ(contents, (std::set<std::string>{"A", "B"}));
}

}  // namespace
}  // namespace ficus::repl
