// Property sweep at the physical level: N replicas receive random
// interleaved operations while "partitioned" (no reconciliation), then
// reconcile pairwise until quiescent. Invariants:
//   * every replica's raw entry set (name, file, alive) converges;
//   * every replica's file contents either converge or are flagged
//     conflicted on every replica that stores them;
//   * no replica violates its own consistency invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "src/common/rng.h"
#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

struct Scenario {
  uint64_t seed;
  int replicas;
  int rounds;
  int ops_per_round;
};

class ReconcilePropertyTest : public ::testing::TestWithParam<Scenario> {};

using EntryKey = std::tuple<std::string, FileId, bool>;

std::set<EntryKey> EntrySetOf(PhysicalLayer* layer, FileId dir) {
  std::set<EntryKey> out;
  auto entries = layer->ReadDirectory(dir);
  EXPECT_TRUE(entries.ok());
  for (const auto& e : *entries) {
    out.insert({e.name, e.file, e.alive});
  }
  return out;
}

TEST_P(ReconcilePropertyTest, RandomOpsConvergeAfterReconciliation) {
  const Scenario scenario = GetParam();
  Rng rng(SeedFromEnvOr(scenario.seed, "reconcile_property"));

  SimClock clock;
  TestResolver resolver;
  ConflictLog log;
  std::vector<std::unique_ptr<ReplicaStack>> stacks;
  for (int i = 0; i < scenario.replicas; ++i) {
    auto stack = std::make_unique<ReplicaStack>(&clock, VolumeId{1, 1},
                                                static_cast<ReplicaId>(i + 1), i == 0);
    resolver.Add(stack->layer.get());
    stacks.push_back(std::move(stack));
  }
  auto reconcile_all = [&]() {
    for (int pass = 0; pass < scenario.replicas + 1; ++pass) {
      for (auto& stack : stacks) {
        Reconciler reconciler(stack->layer.get(), &resolver, &log, &clock);
        ASSERT_TRUE(reconciler.ReconcileWithAllReplicas().ok());
      }
    }
  };
  reconcile_all();

  for (int round = 0; round < scenario.rounds; ++round) {
    // "Partition": each replica mutates its own copy blindly.
    for (auto& stack : stacks) {
      PhysicalLayer* layer = stack->layer.get();
      for (int op = 0; op < scenario.ops_per_round; ++op) {
        int action = static_cast<int>(rng.NextBelow(10));
        auto entries = layer->ReadDirectory(kRootFileId);
        ASSERT_TRUE(entries.ok());
        // Operate on presented names, as a client would.
        std::vector<FicusDirEntry> alive;
        for (const auto& e : PresentEntries(*entries)) {
          if (e.alive) {
            alive.push_back(e);
          }
        }
        if (action < 4 || alive.empty()) {
          std::string name = "r" + std::to_string(layer->replica_id()) + "_" +
                             std::to_string(round) + "_" + std::to_string(op);
          (void)layer->CreateChild(kRootFileId, name, FicusFileType::kRegular, 0);
        } else if (action < 6) {
          const FicusDirEntry& victim = alive[rng.NextBelow(alive.size())];
          if (victim.type == FicusFileType::kRegular) {
            (void)layer->WriteData(victim.file, 0,
                                   {static_cast<uint8_t>(rng.Next() & 0xFF)});
          }
        } else if (action < 8) {
          const FicusDirEntry& victim = alive[rng.NextBelow(alive.size())];
          (void)layer->RemoveEntry(kRootFileId, victim.name);
        } else {
          const FicusDirEntry& victim = alive[rng.NextBelow(alive.size())];
          (void)layer->RenameEntry(kRootFileId, victim.name, kRootFileId,
                                   victim.name + "x");
        }
      }
    }
    reconcile_all();
  }

  // Entry sets identical everywhere.
  std::set<EntryKey> reference = EntrySetOf(stacks[0]->layer.get(), kRootFileId);
  for (size_t i = 1; i < stacks.size(); ++i) {
    EXPECT_EQ(EntrySetOf(stacks[i]->layer.get(), kRootFileId), reference)
        << "replica " << i + 1 << " diverged (seed " << scenario.seed << ")";
  }

  // Per-file: contents identical or conflict flag everywhere.
  for (const auto& [name, file, alive] : reference) {
    if (!alive) {
      continue;
    }
    std::set<std::vector<uint8_t>> contents;
    std::set<bool> conflict_flags;
    for (auto& stack : stacks) {
      if (!stack->layer->Stores(file)) {
        continue;
      }
      auto attrs = stack->layer->GetAttributes(file);
      ASSERT_TRUE(attrs.ok());
      if (attrs->type != FicusFileType::kRegular) {
        continue;
      }
      conflict_flags.insert(attrs->conflict);
      auto data = stack->layer->ReadAllData(file);
      ASSERT_TRUE(data.ok());
      contents.insert(data.value());
    }
    if (contents.size() > 1) {
      EXPECT_EQ(conflict_flags, (std::set<bool>{true}))
          << "file " << file.ToString() << " diverged without a conflict flag (seed "
          << scenario.seed << ")";
    }
  }

  // Invariants hold everywhere.
  for (auto& stack : stacks) {
    auto problems = stack->layer->CheckConsistency();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << problems->front();
    auto ufs_problems = stack->ufs.Check();
    ASSERT_TRUE(ufs_problems.ok());
    EXPECT_TRUE(ufs_problems->empty()) << ufs_problems->front();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconcilePropertyTest,
                         ::testing::Values(Scenario{11, 2, 4, 4}, Scenario{22, 2, 6, 3},
                                           Scenario{33, 3, 4, 3}, Scenario{44, 3, 5, 4},
                                           Scenario{55, 4, 3, 3}, Scenario{66, 4, 4, 2},
                                           Scenario{77, 5, 3, 2}));

}  // namespace
}  // namespace ficus::repl
