// The no-lost-update rule: a delete only applies when the deleter had
// seen every update the applying replica holds; otherwise the entry is
// resurrected and the remove/update conflict reported. (The general
// reconciliation literature's "remove/update conflict"; the paper's
// abstract promises no conflicting update is silently lost.)
#include <gtest/gtest.h>

#include "src/vfs/path_ops.h"
#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

class RemoveUpdateTest : public ReplicaFixture {
 protected:
  RemoveUpdateTest() : ReplicaFixture(2) {}

  FileId SharedFile() {
    auto file = layer(0)->CreateChild(kRootFileId, "doc", FicusFileType::kRegular, 0);
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE(layer(0)->WriteData(*file, 0, {'v', '1'}).ok());
    ReconcileAll();
    EXPECT_TRUE(layer(1)->Stores(*file));
    return file.value();
  }
};

TEST_F(RemoveUpdateTest, InformedDeleteApplies) {
  SharedFile();
  // Replica 1 deletes with full knowledge; nothing raced it.
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "doc").ok());
  ReconcileAll();
  for (int i = 0; i < 2; ++i) {
    auto entries = layer(i)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    for (const auto& e : *entries) {
      EXPECT_FALSE(e.alive) << "replica " << i;
    }
  }
  EXPECT_EQ(log_.CountOf(ConflictKind::kRemoveUpdate), 0u);
}

TEST_F(RemoveUpdateTest, DeleteRacingUnseenUpdateResurrects) {
  FileId file = SharedFile();
  // Partitioned: replica 1 deletes, replica 2 updates.
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "doc").ok());
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'v', '2'}).ok());

  ReconcileAll();

  // Liveness wins: the entry survives everywhere, with the updated bytes.
  for (int i = 0; i < 2; ++i) {
    auto entries = layer(i)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    int alive = 0;
    for (const auto& e : *entries) {
      if (e.alive) {
        ++alive;
        EXPECT_EQ(e.file, file);
      }
    }
    EXPECT_EQ(alive, 1) << "replica " << i;
    auto data = layer(i)->ReadAllData(file);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), (std::vector<uint8_t>{'v', '2'})) << "replica " << i;
  }
  EXPECT_GE(log_.CountOf(ConflictKind::kRemoveUpdate), 1u);
}

TEST_F(RemoveUpdateTest, DeleteAfterSeeingUpdateApplies) {
  FileId file = SharedFile();
  // Replica 2 updates; reconcile so replica 1 SEES the update; then
  // replica 1 deletes — an informed delete that must stick.
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'v', '2'}).ok());
  ReconcileAll();
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "doc").ok());
  ReconcileAll();
  for (int i = 0; i < 2; ++i) {
    auto entries = layer(i)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    for (const auto& e : *entries) {
      EXPECT_FALSE(e.alive) << "replica " << i;
    }
  }
  EXPECT_EQ(log_.CountOf(ConflictKind::kRemoveUpdate), 0u);
}

TEST_F(RemoveUpdateTest, RenameRacingUpdateDoesNotResurrectOldName) {
  FileId file = SharedFile();
  // Replica 1 renames doc -> report; replica 2 concurrently updates the
  // contents. A rename is not a content judgement: after reconciliation
  // exactly one name ("report") must survive, holding the update.
  ASSERT_TRUE(layer(0)->RenameEntry(kRootFileId, "doc", kRootFileId, "report").ok());
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'v', '2'}).ok());

  ReconcileAll();

  for (int i = 0; i < 2; ++i) {
    auto entries = layer(i)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    std::set<std::string> alive_names;
    for (const auto& e : *entries) {
      if (e.alive) {
        alive_names.insert(e.name);
      }
    }
    EXPECT_EQ(alive_names, (std::set<std::string>{"report"})) << "replica " << i;
    auto data = layer(i)->ReadAllData(file);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), (std::vector<uint8_t>{'v', '2'}));
  }
}

// CRDT rename/link merge rule (arXiv 1207.5990): when the file is still
// alive under ANOTHER local name, removing one name loses no update — any
// concurrent write stays reachable through the surviving name — so the
// tombstone applies plainly instead of resurrecting the entry and logging
// a remove/update conflict. Before this rule the scenario below logged a
// kRemoveUpdate record and resurrected "doc"; the conflict log must now
// stay empty (it shrinks on the PR 5 edge-case suite).
TEST_F(RemoveUpdateTest, RemoveOfLinkedNameRacingUpdateMergesWithoutConflict) {
  FileId file = SharedFile();
  // Second name for the same file, known everywhere before the race.
  ASSERT_TRUE(layer(0)->AddEntry(kRootFileId, "doc2", file, FicusFileType::kRegular).ok());
  ReconcileAll();

  // Partitioned race: replica 1 removes "doc" (an informed content
  // judgement), replica 2 concurrently updates the bytes.
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "doc").ok());
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'v', '2'}).ok());

  ReconcileAll();

  for (int i = 0; i < 2; ++i) {
    auto entries = layer(i)->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    std::set<std::string> alive_names;
    for (const auto& e : *entries) {
      if (e.alive) {
        alive_names.insert(e.name);
      }
    }
    // The removed name stays dead; the update survives through the link.
    EXPECT_EQ(alive_names, (std::set<std::string>{"doc2"})) << "replica " << i;
    auto data = layer(i)->ReadAllData(file);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), (std::vector<uint8_t>{'v', '2'})) << "replica " << i;
  }
  EXPECT_EQ(log_.CountOf(ConflictKind::kRemoveUpdate), 0u)
      << "linked-name remove was escalated to a remove/update conflict";
  EXPECT_GE(layer(1)->stats().crdt_rename_merges, 1u)
      << "the merge rule never fired — the tombstone applied by luck";
}

// Control for the rule's guard: with only ONE name the same race must
// still resurrect and report — the merge rule may only fire when another
// live name keeps the update reachable.
TEST_F(RemoveUpdateTest, SingleNameRemoveRacingUpdateStillConflicts) {
  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->RemoveEntry(kRootFileId, "doc").ok());
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'v', '2'}).ok());
  ReconcileAll();
  EXPECT_GE(log_.CountOf(ConflictKind::kRemoveUpdate), 1u);
  EXPECT_EQ(layer(0)->stats().crdt_rename_merges, 0u);
  EXPECT_EQ(layer(1)->stats().crdt_rename_merges, 0u);
}

TEST_F(RemoveUpdateTest, ResurrectionConvergesAcrossThreeReplicas) {
  // Three replicas; deleter and updater are different from the observer.
  // Everyone must converge to the same resurrected state.
  SimClock clock;
  TestResolver resolver;
  TestNotifier notifier;
  ConflictLog log;
  std::vector<std::unique_ptr<ReplicaStack>> stacks;
  for (int i = 0; i < 3; ++i) {
    auto stack = std::make_unique<ReplicaStack>(&clock, VolumeId{1, 1},
                                                static_cast<ReplicaId>(i + 1), i == 0);
    resolver.Add(stack->layer.get());
    stacks.push_back(std::move(stack));
  }
  auto reconcile = [&]() {
    for (int round = 0; round < 4; ++round) {
      for (auto& stack : stacks) {
        Reconciler reconciler(stack->layer.get(), &resolver, &log, &clock);
        ASSERT_TRUE(reconciler.ReconcileWithAllReplicas().ok());
      }
    }
  };
  auto file = stacks[0]->layer->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  reconcile();

  ASSERT_TRUE(stacks[0]->layer->RemoveEntry(kRootFileId, "f").ok());
  ASSERT_TRUE(stacks[1]->layer->WriteData(*file, 0, {'u'}).ok());
  reconcile();

  int alive_total = 0;
  for (auto& stack : stacks) {
    auto entries = stack->layer->ReadDirectory(kRootFileId);
    ASSERT_TRUE(entries.ok());
    for (const auto& e : *entries) {
      if (e.alive) {
        ++alive_total;
      }
    }
  }
  EXPECT_EQ(alive_total, 3);  // one alive entry per replica
}

}  // namespace
}  // namespace ficus::repl
