#include "src/repl/physical.h"

#include <gtest/gtest.h>

namespace ficus::repl {
namespace {

class PhysicalTest : public ::testing::Test {
 protected:
  PhysicalTest() : device_(8192), cache_(&device_, 256), ufs_(&cache_, &clock_) {
    EXPECT_TRUE(ufs_.Format(1024).ok());
    layer_ = std::make_unique<PhysicalLayer>(&ufs_, &clock_);
    EXPECT_TRUE(
        layer_->CreateVolume(VolumeId{1, 1}, /*replica=*/1, "vol1", /*first_replica=*/true)
            .ok());
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BufferCache cache_;
  ufs::Ufs ufs_;
  std::unique_ptr<PhysicalLayer> layer_;
};

TEST_F(PhysicalTest, VolumeIdentity) {
  EXPECT_EQ(layer_->volume_id(), (VolumeId{1, 1}));
  EXPECT_EQ(layer_->replica_id(), 1u);
  EXPECT_TRUE(layer_->Stores(kRootFileId));
}

TEST_F(PhysicalTest, RootHasSeededVersionVector) {
  auto attrs = layer_->GetAttributes(kRootFileId);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->type, FicusFileType::kDirectory);
  EXPECT_EQ(attrs->vv.Count(1), 1u);
}

TEST_F(PhysicalTest, SecondReplicaRootStartsEmpty) {
  PhysicalLayer second(&ufs_, &clock_);
  ASSERT_TRUE(second.CreateVolume(VolumeId{1, 1}, 2, "vol1r2", false).ok());
  auto attrs = second.GetAttributes(kRootFileId);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->vv.Empty());
}

TEST_F(PhysicalTest, CreateChildAddsEntryAndStorage) {
  auto file = layer_->CreateChild(kRootFileId, "hello", FicusFileType::kRegular, 42);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(layer_->Stores(*file));
  auto entries = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "hello");
  EXPECT_TRUE((*entries)[0].alive);
  EXPECT_EQ((*entries)[0].file, *file);
  auto attrs = layer_->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->owner_uid, 42u);
  EXPECT_EQ(attrs->vv.Count(1), 1u);
}

TEST_F(PhysicalTest, CreateDuplicateNameFails) {
  ASSERT_TRUE(layer_->CreateChild(kRootFileId, "x", FicusFileType::kRegular, 0).ok());
  EXPECT_EQ(layer_->CreateChild(kRootFileId, "x", FicusFileType::kRegular, 0).status().code(),
            ErrorCode::kExists);
}

TEST_F(PhysicalTest, WriteDataBumpsVersionVector) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, {1, 2, 3}).ok());
  auto attrs = layer_->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->vv.Count(1), 2u);  // create + write
  auto data = layer_->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{1, 2, 3}));
  auto size = layer_->DataSize(*file);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 3u);
}

TEST_F(PhysicalTest, ReadDataAtOffset) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, {10, 20, 30, 40}).ok());
  auto data = layer_->ReadData(*file, 1, 2);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{20, 30}));
}

TEST_F(PhysicalTest, RemoveEntryLeavesTombstone) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->RemoveEntry(kRootFileId, "f").ok());
  auto entries = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);  // the tombstone survives
  EXPECT_FALSE((*entries)[0].alive);
  EXPECT_EQ((*entries)[0].vv.Count(1), 2u);  // insert + delete
  // Storage still present until GC.
  EXPECT_TRUE(layer_->Stores(*file));
  auto collected = layer_->GarbageCollect();
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected.value(), 1);
  EXPECT_FALSE(layer_->Stores(*file));
}

TEST_F(PhysicalTest, RemoveNonEmptyDirectoryFails) {
  auto dir = layer_->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(layer_->CreateChild(*dir, "child", FicusFileType::kRegular, 0).ok());
  EXPECT_EQ(layer_->RemoveEntry(kRootFileId, "d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(layer_->RemoveEntry(*dir, "child").ok());
  EXPECT_TRUE(layer_->RemoveEntry(kRootFileId, "d").ok());
}

TEST_F(PhysicalTest, RenameWithinDirectory) {
  auto file = layer_->CreateChild(kRootFileId, "old", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->RenameEntry(kRootFileId, "old", kRootFileId, "new").ok());
  auto entries = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  int alive = 0;
  for (const auto& e : *entries) {
    if (e.alive) {
      ++alive;
      EXPECT_EQ(e.name, "new");
      EXPECT_EQ(e.file, *file);
    }
  }
  EXPECT_EQ(alive, 1);
}

TEST_F(PhysicalTest, RenameAcrossDirectoriesKeepsStorage) {
  auto dir = layer_->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, {5}).ok());
  ASSERT_TRUE(layer_->RenameEntry(kRootFileId, "f", *dir, "g").ok());
  auto entries = layer_->ReadDirectory(*dir);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "g");
  EXPECT_EQ((*entries)[0].file, *file);
  auto data = layer_->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{5}));
}

TEST_F(PhysicalTest, RenameIntoOwnSubtreeRejected) {
  auto a = layer_->CreateChild(kRootFileId, "a", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(a.ok());
  auto b = layer_->CreateChild(*a, "b", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(layer_->RenameEntry(kRootFileId, "a", *b, "a-again").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(layer_->RenameEntry(kRootFileId, "a", *a, "self").code(),
            ErrorCode::kInvalidArgument);
  // Legitimate sideways moves still work.
  auto c = layer_->CreateChild(kRootFileId, "c", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(layer_->RenameEntry(kRootFileId, "a", *c, "a-moved").ok());
}

TEST_F(PhysicalTest, AddEntryCreatesHardLink) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->AddEntry(kRootFileId, "g", *file, FicusFileType::kRegular).ok());
  auto entries = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  // Removing one name keeps the storage (second ref alive).
  ASSERT_TRUE(layer_->RemoveEntry(kRootFileId, "f").ok());
  auto collected = layer_->GarbageCollect();
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected.value(), 0);
  EXPECT_TRUE(layer_->Stores(*file));
}

TEST_F(PhysicalTest, DeleteThenRecreateGrowsEntryVector) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->RemoveEntry(kRootFileId, "f").ok());
  ASSERT_TRUE(layer_->AddEntry(kRootFileId, "f", *file, FicusFileType::kRegular).ok());
  auto entries = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);  // tombstone was reused, not duplicated
  EXPECT_TRUE((*entries)[0].alive);
  EXPECT_EQ((*entries)[0].vv.Count(1), 3u);  // insert, delete, insert
}

TEST_F(PhysicalTest, InstallVersionReplacesContentsAtomically) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, {1, 1, 1}).ok());
  VersionVector incoming;
  incoming.Increment(2);
  incoming.Increment(2);
  incoming.Increment(1);
  incoming.Increment(1);
  ASSERT_TRUE(layer_->InstallVersion(*file, {9, 9}, incoming).ok());
  auto data = layer_->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{9, 9}));
  auto attrs = layer_->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->vv == incoming);
  EXPECT_EQ(layer_->stats().installs, 1u);
  // The underlying UFS stayed structurally sound through the shadow swap.
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(PhysicalTest, ApplyEntryInsertsRemoteEntryAndPlaceholder) {
  FicusDirEntry remote;
  remote.name = "from-afar";
  remote.file = FileId{2, 1};  // minted at replica 2
  remote.type = FicusFileType::kRegular;
  remote.alive = true;
  remote.vv.Increment(2);
  ASSERT_TRUE(layer_->ApplyEntry(kRootFileId, remote).ok());
  EXPECT_TRUE(layer_->Stores(remote.file));
  auto attrs = layer_->GetAttributes(remote.file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->vv.Empty());  // placeholder: propagation will fill it
  auto entries = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "from-afar");
}

TEST_F(PhysicalTest, ApplyEntryDominatingTombstoneDeletes) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  auto entries = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  FicusDirEntry remote = (*entries)[0];
  remote.alive = false;
  remote.vv.Increment(2);  // the remote saw our insert, then deleted
  ASSERT_TRUE(layer_->ApplyEntry(kRootFileId, remote).ok());
  auto after = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_FALSE((*after)[0].alive);
}

TEST_F(PhysicalTest, ApplyEntryConcurrentInsertDeleteFavoursLiveness) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  auto entries = layer_->ReadDirectory(kRootFileId);
  FicusDirEntry base = (*entries.value().begin());

  // Locally: delete then recreate (vv gains two local increments).
  ASSERT_TRUE(layer_->RemoveEntry(kRootFileId, "f").ok());
  ASSERT_TRUE(layer_->AddEntry(kRootFileId, "f", *file, FicusFileType::kRegular).ok());

  // Remotely: a concurrent delete (vv gains a remote increment from base).
  FicusDirEntry remote = base;
  remote.alive = false;
  remote.vv.Increment(2);

  ASSERT_TRUE(layer_->ApplyEntry(kRootFileId, remote).ok());
  auto after = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_TRUE((*after)[0].alive);  // liveness wins the automatic repair
  EXPECT_EQ(layer_->stats().insert_delete_conflicts, 1u);
}

TEST_F(PhysicalTest, ApplyEntryIdempotent) {
  FicusDirEntry remote;
  remote.name = "x";
  remote.file = FileId{2, 5};
  remote.type = FicusFileType::kRegular;
  remote.alive = true;
  remote.vv.Increment(2);
  ASSERT_TRUE(layer_->ApplyEntry(kRootFileId, remote).ok());
  ASSERT_TRUE(layer_->ApplyEntry(kRootFileId, remote).ok());
  auto entries = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
}

TEST_F(PhysicalTest, NameCollisionPresentedWithSuffix) {
  // Local and remote both created "same" for different files.
  auto local = layer_->CreateChild(kRootFileId, "same", FicusFileType::kRegular, 0);
  ASSERT_TRUE(local.ok());
  FicusDirEntry remote;
  remote.name = "same";
  remote.file = FileId{2, 1};
  remote.type = FicusFileType::kRegular;
  remote.alive = true;
  remote.vv.Increment(2);
  ASSERT_TRUE(layer_->ApplyEntry(kRootFileId, remote).ok());

  auto entries = layer_->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  // Raw entries keep both colliding spellings (what replicas exchange)...
  EXPECT_EQ((*entries)[0].name, "same");
  EXPECT_EQ((*entries)[1].name, "same");
  // ...and presentation disambiguates deterministically: the entry with
  // the smaller file-id keeps the plain name.
  std::vector<FicusDirEntry> presented = PresentEntries(*entries);
  int plain = 0;
  int suffixed = 0;
  for (const auto& e : presented) {
    if (e.name == "same") {
      ++plain;
    } else if (e.name.rfind("same#", 0) == 0) {
      ++suffixed;
    }
  }
  EXPECT_EQ(plain, 1);
  EXPECT_EQ(suffixed, 1);
  EXPECT_EQ(layer_->stats().name_conflicts_resolved, 1u);
}

TEST_F(PhysicalTest, EntryNamesValidated) {
  EXPECT_EQ(layer_->CreateChild(kRootFileId, "", FicusFileType::kRegular, 0).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(layer_->CreateChild(kRootFileId, ".", FicusFileType::kRegular, 0).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(
      layer_->CreateChild(kRootFileId, "..", FicusFileType::kRegular, 0).status().code(),
      ErrorCode::kInvalidArgument);
  EXPECT_EQ(
      layer_->CreateChild(kRootFileId, "a/b", FicusFileType::kRegular, 0).status().code(),
      ErrorCode::kInvalidArgument);
  EXPECT_EQ(layer_->CreateChild(kRootFileId, std::string(300, 'n'), FicusFileType::kRegular, 0)
                .status()
                .code(),
            ErrorCode::kNameTooLong);
  auto file = layer_->CreateChild(kRootFileId, "ok", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(layer_->RenameEntry(kRootFileId, "ok", kRootFileId, "bad/name").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(layer_->AddEntry(kRootFileId, "", *file, FicusFileType::kRegular).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(PhysicalTest, SymlinkStorage) {
  auto link = layer_->CreateChild(kRootFileId, "l", FicusFileType::kSymlink, 0);
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(layer_->WriteLink(*link, "a/b/c").ok());
  auto target = layer_->ReadLink(*link);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), "a/b/c");
}

TEST_F(PhysicalTest, ConflictFlagRoundTrip) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->SetConflict(*file, true).ok());
  auto attrs = layer_->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->conflict);
  ASSERT_TRUE(layer_->SetConflict(*file, false).ok());
  attrs = layer_->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_FALSE(attrs->conflict);
}

TEST_F(PhysicalTest, NewVersionCacheCoalescesBursts) {
  GlobalFileId id{VolumeId{1, 1}, FileId{2, 7}};
  VersionVector v1;
  v1.Increment(2);
  layer_->NoteNewVersion(id, v1, 2);
  VersionVector v2 = v1;
  v2.Increment(2);
  layer_->NoteNewVersion(id, v2, 2);
  EXPECT_EQ(layer_->PendingVersionCount(), 1u);  // one entry per file
  auto pending = layer_->TakePendingVersions();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_TRUE(pending[0].vv == v2);  // the freshest version won
  EXPECT_EQ(layer_->PendingVersionCount(), 0u);
}

TEST_F(PhysicalTest, AttachRebuildsState) {
  auto dir = layer_->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  auto file = layer_->CreateChild(*dir, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, {42}).ok());

  // A second PhysicalLayer attaches to the same on-disk state (remount).
  PhysicalLayer reattached(&ufs_, &clock_);
  ASSERT_TRUE(reattached.Attach("vol1").ok());
  EXPECT_EQ(reattached.volume_id(), (VolumeId{1, 1}));
  EXPECT_EQ(reattached.replica_id(), 1u);
  EXPECT_TRUE(reattached.Stores(*file));
  auto data = reattached.ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{42}));
  // File-id minting continues without collision.
  auto fresh = reattached.CreateChild(kRootFileId, "g", FicusFileType::kRegular, 0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, *file);
}

TEST_F(PhysicalTest, OpsOnUnstoredFileFail) {
  FileId ghost{9, 9};
  EXPECT_EQ(layer_->GetAttributes(ghost).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(layer_->ReadAllData(ghost).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(layer_->WriteData(ghost, 0, {1}).code(), ErrorCode::kNotFound);
}

TEST_F(PhysicalTest, DirectoryOpsRejectRegularFiles) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(layer_->ReadDirectory(*file).status().code(), ErrorCode::kNotDir);
  EXPECT_EQ(layer_->CreateChild(*file, "x", FicusFileType::kRegular, 0).status().code(),
            ErrorCode::kNotDir);
  EXPECT_EQ(layer_->ReadAllData(kRootFileId).status().code(), ErrorCode::kIsDir);
}

}  // namespace
}  // namespace ficus::repl
