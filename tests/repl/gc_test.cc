// Garbage collection, the orphanage option, and the Ficus-level
// consistency checker.
#include <gtest/gtest.h>

#include "src/repl/physical.h"

namespace ficus::repl {
namespace {

class GcTest : public ::testing::Test {
 protected:
  void Build(bool orphanage) {
    device_ = std::make_unique<storage::BlockDevice>(8192);
    cache_ = std::make_unique<storage::BufferCache>(device_.get(), 256);
    ufs_ = std::make_unique<ufs::Ufs>(cache_.get(), &clock_);
    ASSERT_TRUE(ufs_->Format(1024).ok());
    PhysicalOptions options;
    options.orphanage = orphanage;
    layer_ = std::make_unique<PhysicalLayer>(ufs_.get(), &clock_, options);
    ASSERT_TRUE(layer_->CreateVolume(VolumeId{1, 1}, 1, "vol", true).ok());
  }

  SimClock clock_;
  std::unique_ptr<storage::BlockDevice> device_;
  std::unique_ptr<storage::BufferCache> cache_;
  std::unique_ptr<ufs::Ufs> ufs_;
  std::unique_ptr<PhysicalLayer> layer_;
};

TEST_F(GcTest, PlainGcFreesStorage) {
  Build(/*orphanage=*/false);
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, std::vector<uint8_t>(50000, 7)).ok());
  auto free_before = ufs_->FreeBlockCount();
  ASSERT_TRUE(layer_->RemoveEntry(kRootFileId, "f").ok());
  ASSERT_TRUE(layer_->GarbageCollect().ok());
  auto free_after = ufs_->FreeBlockCount();
  EXPECT_GT(free_after.value(), free_before.value());
  auto orphans = layer_->OrphanNames();
  ASSERT_TRUE(orphans.ok());
  EXPECT_TRUE(orphans->empty());
}

TEST_F(GcTest, OrphanageParksContents) {
  Build(/*orphanage=*/true);
  auto file = layer_->CreateChild(kRootFileId, "precious", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, {'s', 'a', 'v', 'e'}).ok());
  ASSERT_TRUE(layer_->RemoveEntry(kRootFileId, "precious").ok());
  auto collected = layer_->GarbageCollect();
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected.value(), 1);

  auto orphans = layer_->OrphanNames();
  ASSERT_TRUE(orphans.ok());
  ASSERT_EQ(orphans->size(), 1u);
  EXPECT_EQ((*orphans)[0], file->ToHex());

  // The bytes are recoverable from the orphanage.
  auto container = ufs_->DirLookup(ufs::kRootInode, "vol");
  auto orphan_dir = ufs_->DirLookup(*container, "orphans");
  ASSERT_TRUE(orphan_dir.ok());
  auto ino = ufs_->DirLookup(*orphan_dir, file->ToHex());
  ASSERT_TRUE(ino.ok());
  auto contents = ufs_->ReadAll(*ino);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), (std::vector<uint8_t>{'s', 'a', 'v', 'e'}));

  // The UFS stays structurally clean.
  auto problems = ufs_->Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(GcTest, OrphanageDirectoriesStillFreed) {
  Build(/*orphanage=*/true);
  auto dir = layer_->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(layer_->RemoveEntry(kRootFileId, "d").ok());
  auto collected = layer_->GarbageCollect();
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected.value(), 1);
  auto orphans = layer_->OrphanNames();
  ASSERT_TRUE(orphans.ok());
  EXPECT_TRUE(orphans->empty());  // only regular files are parked
}

TEST_F(GcTest, ConsistencyCheckCleanAfterChurn) {
  Build(/*orphanage=*/false);
  auto dir = layer_->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  for (int i = 0; i < 10; ++i) {
    auto file =
        layer_->CreateChild(*dir, "f" + std::to_string(i), FicusFileType::kRegular, 0);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(layer_->WriteData(*file, 0, {static_cast<uint8_t>(i)}).ok());
  }
  for (int i = 0; i < 10; i += 2) {
    ASSERT_TRUE(layer_->RemoveEntry(*dir, "f" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(layer_->RenameEntry(*dir, "f1", kRootFileId, "promoted").ok());
  ASSERT_TRUE(layer_->GarbageCollect().ok());

  auto problems = layer_->CheckConsistency();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(GcTest, ConsistencyCheckDetectsIdentityCorruption) {
  Build(/*orphanage=*/false);
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  // Corrupt the aux attribute file directly.
  auto container = ufs_->DirLookup(ufs::kRootInode, "vol");
  auto root_dir = ufs_->DirLookup(*container, kRootFileId.ToHex());
  auto attr_ino = ufs_->DirLookup(*root_dir, file->ToHex() + ".attr");
  ASSERT_TRUE(attr_ino.ok());
  ReplicaAttributes bogus;
  bogus.id = GlobalFileId{VolumeId{9, 9}, FileId{9, 9}};  // wrong identity
  bogus.type = FicusFileType::kRegular;
  ASSERT_TRUE(ufs_->WriteAll(*attr_ino, bogus.ToBytes()).ok());

  auto problems = layer_->CheckConsistency();
  ASSERT_TRUE(problems.ok());
  EXPECT_FALSE(problems->empty());
}

}  // namespace
}  // namespace ficus::repl
