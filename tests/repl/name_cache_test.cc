// The dnlc invalidation contract (name_cache.h): positive and negative
// bindings die on the precise shootdowns the mutation paths issue, and —
// the replicated-FS half — on any version-vector advance of the
// directory, however it arrives (direct remote write, propagation,
// reconcile merge).
#include "src/repl/name_cache.h"

#include <gtest/gtest.h>

#include "src/repl/logical.h"
#include "src/vfs/path_ops.h"
#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

using vfs::VnodePtr;

VersionVector Vv(ReplicaId replica, int ticks) {
  VersionVector vv;
  for (int i = 0; i < ticks; ++i) {
    vv.Increment(replica);
  }
  return vv;
}

TEST(NameCacheUnit, PositiveHitReturnsBinding) {
  NameCache cache;
  FileId dir{1, 10};
  FileId child{1, 11};
  cache.EnterPositive(dir, "f", Vv(1, 1), child, FicusFileType::kRegular);
  auto hit = cache.Lookup(dir, "f", Vv(1, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->negative);
  EXPECT_EQ(hit->file, child);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(NameCacheUnit, NegativeHitIsKnownAbsent) {
  NameCache cache;
  FileId dir{1, 10};
  cache.EnterNegative(dir, "missing", Vv(1, 1));
  auto hit = cache.Lookup(dir, "missing", Vv(1, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->negative);
  EXPECT_EQ(cache.stats().neg_hits, 1u);
}

TEST(NameCacheUnit, VectorMismatchDropsEntryAndMisses) {
  NameCache cache;
  FileId dir{1, 10};
  cache.EnterPositive(dir, "f", Vv(1, 1), FileId{1, 11}, FicusFileType::kRegular);
  // The directory moved on (one more update at replica 2): stale binding.
  VersionVector newer = Vv(1, 1);
  newer.Increment(2);
  EXPECT_FALSE(cache.Lookup(dir, "f", newer).has_value());
  EXPECT_EQ(cache.stats().invalidates, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NameCacheUnit, InvalidateTargetsOneBinding) {
  NameCache cache;
  FileId dir{1, 10};
  cache.EnterPositive(dir, "a", Vv(1, 1), FileId{1, 11}, FicusFileType::kRegular);
  cache.EnterPositive(dir, "b", Vv(1, 1), FileId{1, 12}, FicusFileType::kRegular);
  cache.Invalidate(dir, "a");
  EXPECT_FALSE(cache.Lookup(dir, "a", Vv(1, 1)).has_value());
  EXPECT_TRUE(cache.Lookup(dir, "b", Vv(1, 1)).has_value());
  EXPECT_EQ(cache.stats().invalidates, 1u);
  // Invalidating an absent binding is not charged.
  cache.Invalidate(dir, "never-cached");
  EXPECT_EQ(cache.stats().invalidates, 1u);
}

TEST(NameCacheUnit, InvalidateDirSweepsEveryBinding) {
  NameCache cache;
  FileId dir{1, 10};
  FileId other{1, 20};
  for (int i = 0; i < 64; ++i) {
    cache.EnterPositive(dir, "f" + std::to_string(i), Vv(1, 1),
                        FileId{1, static_cast<uint32_t>(100 + i)},
                        FicusFileType::kRegular);
  }
  cache.EnterPositive(other, "kept", Vv(1, 1), FileId{1, 200}, FicusFileType::kRegular);
  cache.InvalidateDir(dir);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup(other, "kept", Vv(1, 1)).has_value());
  EXPECT_EQ(cache.stats().invalidates, 64u);
}

TEST(NameCacheUnit, CapacityEvictionIsNotAnInvalidate) {
  NameCache cache(nullptr, /*capacity=*/16);
  FileId dir{1, 10};
  for (int i = 0; i < 256; ++i) {
    cache.EnterPositive(dir, "f" + std::to_string(i), Vv(1, 1),
                        FileId{1, static_cast<uint32_t>(100 + i)},
                        FicusFileType::kRegular);
  }
  EXPECT_LE(cache.size(), 32u);  // capacity/kShards + 1 per shard
  EXPECT_EQ(cache.stats().invalidates, 0u);
}

TEST(NameCacheUnit, DisabledCacheNeverHitsAndNeverFills) {
  NameCache cache;
  FileId dir{1, 10};
  cache.set_enabled(false);
  cache.EnterPositive(dir, "f", Vv(1, 1), FileId{1, 11}, FicusFileType::kRegular);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(dir, "f", Vv(1, 1)).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(NameCacheUnit, CountersLandInSharedRegistry) {
  MetricRegistry registry;
  NameCache cache(&registry);
  FileId dir{1, 10};
  cache.EnterPositive(dir, "f", Vv(1, 1), FileId{1, 11}, FicusFileType::kRegular);
  (void)cache.Lookup(dir, "f", Vv(1, 1));
  EXPECT_EQ(registry.CounterValue("repl.name_cache.hit"), 1u);
  (void)cache.Lookup(dir, "g", Vv(1, 1));
  EXPECT_EQ(registry.CounterValue("repl.name_cache.miss"), 1u);
}

// --- invalidation through the logical layer (ReplicaFixture: two
// replicas of volume {1,1} behind an in-process resolver) ---

class NameCacheLogicalTest : public ReplicaFixture {
 protected:
  NameCacheLogicalTest() : ReplicaFixture(2) {
    logical_ = std::make_unique<LogicalLayer>(VolumeId{1, 1}, &resolver_, &notifier_, &log_,
                                              &clock_);
    resolver_.SetPreferred(1);
    root_ = *logical_->Root();
  }

  NameCacheStats stats() { return logical_->name_cache()->stats(); }

  std::unique_ptr<LogicalLayer> logical_;
  VnodePtr root_;
};

TEST_F(NameCacheLogicalTest, NegativeEntryShotDownByCreate) {
  // Miss caches "f is absent"...
  EXPECT_EQ(root_->Lookup("f", {}).status().code(), ErrorCode::kNotFound);
  uint64_t neg_before = stats().neg_hits;
  EXPECT_EQ(root_->Lookup("f", {}).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(stats().neg_hits, neg_before + 1);
  // ...create must kill it even before any vector re-probe.
  ASSERT_TRUE(root_->Create("f", {}, {}).ok());
  EXPECT_TRUE(root_->Lookup("f", {}).ok());
}

TEST_F(NameCacheLogicalTest, PositiveEntryShotDownByRemove) {
  ASSERT_TRUE(root_->Create("f", {}, {}).ok());
  ASSERT_TRUE(root_->Lookup("f", {}).ok());  // fills
  ASSERT_TRUE(root_->Remove("f", {}).ok());
  EXPECT_EQ(root_->Lookup("f", {}).status().code(), ErrorCode::kNotFound);
}

TEST_F(NameCacheLogicalTest, RenameShootsDownBothNames) {
  ASSERT_TRUE(root_->Create("old", {}, {}).ok());
  ASSERT_TRUE(root_->Lookup("old", {}).ok());
  // Cache "new is absent" too; rename must kill both bindings.
  EXPECT_EQ(root_->Lookup("new", {}).status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(root_->Rename("old", root_, "new", {}).ok());
  EXPECT_EQ(root_->Lookup("old", {}).status().code(), ErrorCode::kNotFound);
  EXPECT_TRUE(root_->Lookup("new", {}).ok());
}

TEST_F(NameCacheLogicalTest, RemoteVectorAdvanceInvalidatesStaleNegative) {
  // "g is absent" is cached while only replica 1 is consulted.
  EXPECT_EQ(root_->Lookup("g", {}).status().code(), ErrorCode::kNotFound);
  // The name is born at replica 2 — no logical-layer shootdown runs here,
  // exactly like an update arriving from another host.
  ASSERT_TRUE(layer(1)->CreateChild(kRootFileId, "g", FicusFileType::kRegular, 1).ok());
  ReconcileAll();
  // The merge advanced the root's vector on every replica, so the stale
  // negative binding must die on its own.
  uint64_t invalidates_before = stats().invalidates;
  EXPECT_TRUE(root_->Lookup("g", {}).ok());
  EXPECT_GT(stats().invalidates, invalidates_before);
}

TEST_F(NameCacheLogicalTest, ReconcileMergeInvalidatesStalePositive) {
  ASSERT_TRUE(root_->Create("f", {}, {}).ok());
  ReconcileAll();
  ASSERT_TRUE(root_->Lookup("f", {}).ok());  // cached under the merged vector
  // Replica 2 removes the name; reconciliation merges the removal in.
  ASSERT_TRUE(layer(1)->RemoveEntry(kRootFileId, "f").ok());
  ReconcileAll();
  EXPECT_EQ(root_->Lookup("f", {}).status().code(), ErrorCode::kNotFound);
}

TEST_F(NameCacheLogicalTest, LookupSeedsSiblingsFromOneDirectoryRead) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(root_->Create("f" + std::to_string(i), {}, {}).ok());
  }
  logical_->name_cache()->Clear();
  ASSERT_TRUE(root_->Lookup("f0", {}).ok());  // one miss, fills all eight
  uint64_t misses_before = stats().misses;
  for (int i = 1; i < 8; ++i) {
    ASSERT_TRUE(root_->Lookup("f" + std::to_string(i), {}).ok());
  }
  EXPECT_EQ(stats().misses, misses_before);
}

}  // namespace
}  // namespace ficus::repl
