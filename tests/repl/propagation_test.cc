#include "src/repl/propagation.h"

#include <gtest/gtest.h>

#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

class PropagationTest : public ReplicaFixture {
 protected:
  PropagationTest() : ReplicaFixture(2) {
    daemon1_ = std::make_unique<PropagationDaemon>(layer(1), &resolver_, &log_, &clock_);
  }

  // Creates a file known to both replicas and returns its id.
  FileId SharedFile() {
    auto file = layer(0)->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
    EXPECT_TRUE(file.ok());
    ReconcileAll();
    EXPECT_TRUE(layer(1)->Stores(file.value()));
    return file.value();
  }

  // Simulates the notification multicast for an update applied at replica 1.
  void NotifyReplica2(FileId file) {
    auto attrs = layer(0)->GetAttributes(file);
    EXPECT_TRUE(attrs.ok());
    layer(1)->NoteNewVersion(GlobalFileId{VolumeId{1, 1}, file}, attrs->vv, 1);
  }

  std::unique_ptr<PropagationDaemon> daemon1_;
};

TEST_F(PropagationTest, PullsNewerVersionOnNotification) {
  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {9, 8, 7}).ok());
  NotifyReplica2(file);

  ASSERT_TRUE(daemon1_->RunOnce().ok());

  auto data = layer(1)->ReadAllData(file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_EQ(daemon1_->stats().pulled_files, 1u);
  EXPECT_EQ(daemon1_->stats().bytes_pulled, 3u);
}

TEST_F(PropagationTest, SkipsWhenAlreadyCurrent) {
  FileId file = SharedFile();
  // Notification about a version we already hold.
  NotifyReplica2(file);
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().pulled_files, 0u);
  EXPECT_EQ(daemon1_->stats().skipped_current, 1u);
}

TEST_F(PropagationTest, ConcurrentVersionsFlagConflict) {
  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {'A'}).ok());
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'B'}).ok());
  NotifyReplica2(file);

  ASSERT_TRUE(daemon1_->RunOnce().ok());

  EXPECT_EQ(daemon1_->stats().conflicts_flagged, 1u);
  auto attrs = layer(1)->GetAttributes(file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->conflict);
  // Local contents preserved for the owner.
  auto data = layer(1)->ReadAllData(file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{'B'}));
  EXPECT_EQ(log_.CountOf(ConflictKind::kFileUpdate), 1u);
}

TEST_F(PropagationTest, UnreachableSourceRetriedLater) {
  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);
  resolver_.SetReachable(1, false);

  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().deferred_unreachable, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);  // still cached

  resolver_.SetReachable(1, true);
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().pulled_files, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 0u);
}

TEST_F(PropagationTest, MinAgeDelaysPropagation) {
  PropagationConfig config;
  config.min_age = 10 * kSecond;
  PropagationDaemon delayed(layer(1), &resolver_, &log_, &clock_, config);

  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);

  ASSERT_TRUE(delayed.RunOnce().ok());
  EXPECT_EQ(delayed.stats().pulled_files, 0u);  // too young
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);

  clock_.Advance(11 * kSecond);
  ASSERT_TRUE(delayed.RunOnce().ok());
  EXPECT_EQ(delayed.stats().pulled_files, 1u);
}

TEST_F(PropagationTest, BurstCoalescesToOnePull) {
  FileId file = SharedFile();
  // Five updates in a burst; each notifies.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(layer(0)->WriteData(file, 0, {static_cast<uint8_t>(i)}).ok());
    NotifyReplica2(file);
  }
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);  // coalesced
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().pulled_files, 1u);  // one transfer, not five
  auto data = layer(1)->ReadAllData(file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{4}));
}

TEST_F(PropagationTest, DirectoryNotificationTriggersReconcile) {
  // A directory update cannot be byte-copied; the daemon must run the
  // directory reconciliation instead.
  auto dir = layer(0)->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  ReconcileAll();

  ASSERT_TRUE(layer(0)->CreateChild(*dir, "new-child", FicusFileType::kRegular, 0).ok());
  auto attrs = layer(0)->GetAttributes(*dir);
  ASSERT_TRUE(attrs.ok());
  layer(1)->NoteNewVersion(GlobalFileId{VolumeId{1, 1}, *dir}, attrs->vv, 1);

  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().reconciled_dirs, 1u);
  auto entries = layer(1)->ReadDirectory(*dir);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "new-child");
}

TEST_F(PropagationTest, BackoffAgesFailedEntries) {
  // With a retry backoff configured, an entry whose source stays down is
  // not hammered on every pass: it sits out the backoff window.
  PropagationConfig config;
  config.retry_backoff_base = 10 * kSecond;
  PropagationDaemon daemon(layer(1), &resolver_, &log_, &clock_, config);

  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);
  resolver_.SetReachable(1, false);

  ASSERT_TRUE(daemon.RunOnce().ok());
  EXPECT_EQ(daemon.stats().deferred_unreachable, 1u);

  // Within the backoff window the entry is skipped without a probe.
  ASSERT_TRUE(daemon.RunOnce().ok());
  EXPECT_EQ(daemon.stats().deferred_unreachable, 1u);  // no new probe
  EXPECT_GE(daemon.stats().deferred_backoff, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);  // still cached

  // Past the window it is retried; the source is back, so it lands.
  resolver_.SetReachable(1, true);
  clock_.Advance(21 * kSecond);  // first delay is in [base, 2*base)
  ASSERT_TRUE(daemon.RunOnce().ok());
  EXPECT_EQ(daemon.stats().pulled_files, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 0u);
}

TEST_F(PropagationTest, RetryBudgetDropsHopelessEntries) {
  // A bounded retry budget: after `retry_budget` failed probes the entry
  // is dropped from the pending cache — reconciliation remains the safety
  // net for whatever propagation gives up on.
  PropagationConfig config;
  config.retry_budget = 2;
  PropagationDaemon daemon(layer(1), &resolver_, &log_, &clock_, config);

  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);
  resolver_.SetReachable(1, false);

  ASSERT_TRUE(daemon.RunOnce().ok());  // attempt 1
  ASSERT_TRUE(daemon.RunOnce().ok());  // attempt 2 — budget exhausted
  EXPECT_EQ(daemon.stats().retry_dropped, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 0u);  // no longer pending

  // Nothing left to retry even after the source returns...
  resolver_.SetReachable(1, true);
  ASSERT_TRUE(daemon.RunOnce().ok());
  EXPECT_EQ(daemon.stats().pulled_files, 0u);
  // ...but reconciliation still converges the replica.
  ReconcileAll();
  auto data = layer(1)->ReadAllData(file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{1}));
}

TEST_F(PropagationTest, UnstoredFileIgnored) {
  // Notification about a file this volume replica chose not to store.
  GlobalFileId ghost{VolumeId{1, 1}, FileId{1, 999}};
  VersionVector vv;
  vv.Increment(1);
  layer(1)->NoteNewVersion(ghost, vv, 1);
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().skipped_current, 1u);
}

}  // namespace
}  // namespace ficus::repl
