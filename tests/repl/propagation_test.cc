#include "src/repl/propagation.h"

#include <gtest/gtest.h>

#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

class PropagationTest : public ReplicaFixture {
 protected:
  PropagationTest() : ReplicaFixture(2) {
    daemon1_ = std::make_unique<PropagationDaemon>(layer(1), &resolver_, &log_, &clock_);
  }

  // Creates a file known to both replicas and returns its id.
  FileId SharedFile() {
    auto file = layer(0)->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
    EXPECT_TRUE(file.ok());
    ReconcileAll();
    EXPECT_TRUE(layer(1)->Stores(file.value()));
    return file.value();
  }

  // Simulates the notification multicast for an update applied at replica 1.
  void NotifyReplica2(FileId file) {
    auto attrs = layer(0)->GetAttributes(file);
    EXPECT_TRUE(attrs.ok());
    layer(1)->NoteNewVersion(GlobalFileId{VolumeId{1, 1}, file}, attrs->vv, 1);
  }

  std::unique_ptr<PropagationDaemon> daemon1_;
};

TEST_F(PropagationTest, PullsNewerVersionOnNotification) {
  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {9, 8, 7}).ok());
  NotifyReplica2(file);

  ASSERT_TRUE(daemon1_->RunOnce().ok());

  auto data = layer(1)->ReadAllData(file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_EQ(daemon1_->stats().pulled_files, 1u);
  EXPECT_EQ(daemon1_->stats().bytes_pulled, 3u);
}

TEST_F(PropagationTest, SkipsWhenAlreadyCurrent) {
  FileId file = SharedFile();
  // Notification about a version we already hold.
  NotifyReplica2(file);
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().pulled_files, 0u);
  EXPECT_EQ(daemon1_->stats().skipped_current, 1u);
}

TEST_F(PropagationTest, ConcurrentVersionsFlagConflict) {
  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {'A'}).ok());
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'B'}).ok());
  NotifyReplica2(file);

  ASSERT_TRUE(daemon1_->RunOnce().ok());

  EXPECT_EQ(daemon1_->stats().conflicts_flagged, 1u);
  auto attrs = layer(1)->GetAttributes(file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->conflict);
  // Local contents preserved for the owner.
  auto data = layer(1)->ReadAllData(file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{'B'}));
  EXPECT_EQ(log_.CountOf(ConflictKind::kFileUpdate), 1u);
}

TEST_F(PropagationTest, UnreachableSourceRetriedLater) {
  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);
  resolver_.SetReachable(1, false);

  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().deferred_unreachable, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);  // still cached

  resolver_.SetReachable(1, true);
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().pulled_files, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 0u);
}

TEST_F(PropagationTest, MinAgeDelaysPropagation) {
  PropagationConfig config;
  config.min_age = 10 * kSecond;
  PropagationDaemon delayed(layer(1), &resolver_, &log_, &clock_, config);

  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);

  ASSERT_TRUE(delayed.RunOnce().ok());
  EXPECT_EQ(delayed.stats().pulled_files, 0u);  // too young
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);

  clock_.Advance(11 * kSecond);
  ASSERT_TRUE(delayed.RunOnce().ok());
  EXPECT_EQ(delayed.stats().pulled_files, 1u);
}

TEST_F(PropagationTest, BurstCoalescesToOnePull) {
  FileId file = SharedFile();
  // Five updates in a burst; each notifies.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(layer(0)->WriteData(file, 0, {static_cast<uint8_t>(i)}).ok());
    NotifyReplica2(file);
  }
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);  // coalesced
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().pulled_files, 1u);  // one transfer, not five
  auto data = layer(1)->ReadAllData(file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{4}));
}

TEST_F(PropagationTest, DirectoryNotificationTriggersReconcile) {
  // A directory update cannot be byte-copied; the daemon must run the
  // directory reconciliation instead.
  auto dir = layer(0)->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  ReconcileAll();

  ASSERT_TRUE(layer(0)->CreateChild(*dir, "new-child", FicusFileType::kRegular, 0).ok());
  auto attrs = layer(0)->GetAttributes(*dir);
  ASSERT_TRUE(attrs.ok());
  layer(1)->NoteNewVersion(GlobalFileId{VolumeId{1, 1}, *dir}, attrs->vv, 1);

  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().reconciled_dirs, 1u);
  auto entries = layer(1)->ReadDirectory(*dir);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "new-child");
}

TEST_F(PropagationTest, BackoffAgesFailedEntries) {
  // With a retry backoff configured, an entry whose source stays down is
  // not hammered on every pass: it sits out the backoff window.
  PropagationConfig config;
  config.retry_backoff_base = 10 * kSecond;
  PropagationDaemon daemon(layer(1), &resolver_, &log_, &clock_, config);

  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);
  resolver_.SetReachable(1, false);

  ASSERT_TRUE(daemon.RunOnce().ok());
  EXPECT_EQ(daemon.stats().deferred_unreachable, 1u);

  // Within the backoff window the entry is skipped without a probe.
  ASSERT_TRUE(daemon.RunOnce().ok());
  EXPECT_EQ(daemon.stats().deferred_unreachable, 1u);  // no new probe
  EXPECT_GE(daemon.stats().deferred_backoff, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);  // still cached

  // Past the window it is retried; the source is back, so it lands.
  resolver_.SetReachable(1, true);
  clock_.Advance(21 * kSecond);  // first delay is in [base, 2*base)
  ASSERT_TRUE(daemon.RunOnce().ok());
  EXPECT_EQ(daemon.stats().pulled_files, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 0u);
}

TEST_F(PropagationTest, RetryBudgetDropsHopelessEntries) {
  // A bounded retry budget: after `retry_budget` failed probes the entry
  // is dropped from the pending cache — reconciliation remains the safety
  // net for whatever propagation gives up on.
  PropagationConfig config;
  config.retry_budget = 2;
  PropagationDaemon daemon(layer(1), &resolver_, &log_, &clock_, config);

  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);
  resolver_.SetReachable(1, false);

  ASSERT_TRUE(daemon.RunOnce().ok());  // attempt 1
  ASSERT_TRUE(daemon.RunOnce().ok());  // attempt 2 — budget exhausted
  EXPECT_EQ(daemon.stats().retry_dropped, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 0u);  // no longer pending

  // Nothing left to retry even after the source returns...
  resolver_.SetReachable(1, true);
  ASSERT_TRUE(daemon.RunOnce().ok());
  EXPECT_EQ(daemon.stats().pulled_files, 0u);
  // ...but reconciliation still converges the replica.
  ReconcileAll();
  auto data = layer(1)->ReadAllData(file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{1}));
}

TEST_F(PropagationTest, DeltaPullFetchesOnlyDifferingBlocks) {
  FileId file = SharedFile();
  std::vector<uint8_t> contents(128 * 1024, 'x');
  ASSERT_TRUE(layer(0)->WriteData(file, 0, contents).ok());
  ReconcileAll();  // both replicas now hold the 128 KiB version

  std::vector<uint8_t> edit(kDeltaBlockSize, 'y');
  ASSERT_TRUE(layer(0)->WriteData(file, 17 * kDeltaBlockSize, edit).ok());
  NotifyReplica2(file);
  ASSERT_TRUE(daemon1_->RunOnce().ok());

  auto got = layer(1)->ReadAllData(file);
  auto want = layer(0)->ReadAllData(file);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got.value(), want.value());
  PropagationStats stats = daemon1_->stats();
  EXPECT_EQ(stats.pulled_files, 1u);
  EXPECT_EQ(stats.bytes_pulled, kDeltaBlockSize);  // one block, not 128 KiB
  EXPECT_EQ(stats.delta_blocks_fetched, 1u);
  EXPECT_EQ(stats.delta_bytes_saved, contents.size() - kDeltaBlockSize);
  EXPECT_EQ(stats.whole_file_fallbacks, 0u);
}

TEST_F(PropagationTest, SmallFilePullSkipsDeltaMachinery) {
  // Below delta_min_bytes the daemon must not even ask for digests — it
  // goes straight to the whole-file read and counts the fallback.
  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {9, 8, 7}).ok());
  NotifyReplica2(file);
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  PropagationStats stats = daemon1_->stats();
  EXPECT_EQ(stats.bytes_pulled, 3u);
  EXPECT_EQ(stats.delta_blocks_fetched, 0u);
  EXPECT_EQ(stats.whole_file_fallbacks, 1u);
}

TEST_F(PropagationTest, DeltaDisabledPullsWholeFile) {
  PropagationConfig config;
  config.delta_enabled = false;
  PropagationDaemon daemon(layer(1), &resolver_, &log_, &clock_, config);
  FileId file = SharedFile();
  std::vector<uint8_t> contents(64 * 1024, 'x');
  ASSERT_TRUE(layer(0)->WriteData(file, 0, contents).ok());
  ReconcileAll();
  contents[0] = 'y';
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {'y'}).ok());
  NotifyReplica2(file);
  ASSERT_TRUE(daemon.RunOnce().ok());
  PropagationStats stats = daemon.stats();
  EXPECT_EQ(stats.bytes_pulled, contents.size());
  EXPECT_EQ(stats.delta_blocks_fetched, 0u);
}

TEST_F(PropagationTest, ProbePhaseBatchesPerPeer) {
  // Two pending entries from the same source peer are probed with ONE
  // BatchGetAttributes round instead of a GetAttributes call each.
  auto f1 = layer(0)->CreateChild(kRootFileId, "f1", FicusFileType::kRegular, 0);
  auto f2 = layer(0)->CreateChild(kRootFileId, "f2", FicusFileType::kRegular, 0);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  ReconcileAll();
  ASSERT_TRUE(layer(0)->WriteData(*f1, 0, {1}).ok());
  ASSERT_TRUE(layer(0)->WriteData(*f2, 0, {2}).ok());
  NotifyReplica2(*f1);
  NotifyReplica2(*f2);

  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().batched_probes, 1u);
  EXPECT_EQ(daemon1_->stats().pulled_files, 2u);
}

TEST_F(PropagationTest, StaleRestoreKeepsNewerNotification) {
  // Regression: an entry taken by the daemon and re-noted after a deferral
  // used to clobber any newer notification that arrived in between. The
  // restore must merge keep-dominant.
  FileId file = SharedFile();
  GlobalFileId gid{VolumeId{1, 1}, file};
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  auto old_attrs = layer(0)->GetAttributes(file);
  ASSERT_TRUE(old_attrs.ok());
  layer(1)->NoteNewVersion(gid, old_attrs->vv, 1);
  std::vector<NewVersionEntry> taken = layer(1)->TakePendingVersions();
  ASSERT_EQ(taken.size(), 1u);

  // While the daemon held the entry, a strictly newer version shows up
  // advertised by replica 3.
  clock_.Advance(5 * kSecond);
  VersionVector newer = old_attrs->vv;
  newer.Increment(3);
  layer(1)->NoteNewVersion(gid, newer, 3);

  layer(1)->RestoreNewVersion(taken[0]);
  std::vector<NewVersionEntry> merged = layer(1)->TakePendingVersions();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].source, 3);  // dominant notification wins the source
  EXPECT_TRUE(merged[0].vv == newer);
  EXPECT_EQ(merged[0].noted_at, taken[0].noted_at);  // oldest age preserved
}

TEST_F(PropagationTest, RepeatedDeferralDoesNotStarveMinAge) {
  // Regression: a min_age deferral used to re-note the entry with a fresh
  // timestamp, so an entry checked more often than min_age never ripened.
  PropagationConfig config;
  config.min_age = 10 * kSecond;
  PropagationDaemon delayed(layer(1), &resolver_, &log_, &clock_, config);

  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);

  ASSERT_TRUE(delayed.RunOnce().ok());  // t0: too young
  clock_.Advance(6 * kSecond);
  ASSERT_TRUE(delayed.RunOnce().ok());  // t0+6s: still too young
  EXPECT_EQ(delayed.stats().pulled_files, 0u);
  clock_.Advance(6 * kSecond);
  ASSERT_TRUE(delayed.RunOnce().ok());  // t0+12s: ripe from ORIGINAL arrival
  EXPECT_EQ(delayed.stats().pulled_files, 1u);
}

TEST_F(PropagationTest, SuspectSourceFailuresDoNotChargeRetryBudget) {
  // Regression: failures against a source the failure detector already
  // flags as suspect are the detector's problem, not the entry's. Before
  // the membership wiring, every timeout charged the per-entry retry
  // budget, so a flapping peer shed entries it would have served seconds
  // later.
  PropagationConfig config;
  config.retry_budget = 2;
  PropagationDaemon daemon(layer(1), &resolver_, &log_, &clock_, config);

  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {1}).ok());
  NotifyReplica2(file);
  resolver_.SetReachable(1, false);
  resolver_.SetHealth(1, PeerHealth::kSuspect);

  // Far more failed passes than the budget allows: every one defers, none
  // charges, the entry survives.
  for (int pass = 0; pass < 5; ++pass) {
    ASSERT_TRUE(daemon.RunOnce().ok());
  }
  EXPECT_EQ(daemon.stats().deferred_unreachable, 5u);
  EXPECT_EQ(daemon.stats().retry_dropped, 0u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);

  // The flap ends: the very entry a budget would have shed still lands.
  resolver_.SetReachable(1, true);
  resolver_.SetHealth(1, PeerHealth::kAlive);
  ASSERT_TRUE(daemon.RunOnce().ok());
  EXPECT_EQ(daemon.stats().pulled_files, 1u);
  EXPECT_EQ(layer(1)->PendingVersionCount(), 0u);
}

TEST_F(PropagationTest, DeadSourceIsSkippedWithoutAnyProbe) {
  // A condemned source costs no RPC at all — the entry waits, flagged by
  // the skipped_dead counter, until recovery resync or reconciliation.
  FileId file = SharedFile();
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {2}).ok());
  NotifyReplica2(file);
  resolver_.SetReachable(1, false);
  resolver_.SetHealth(1, PeerHealth::kDead);

  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().skipped_dead, 1u);
  EXPECT_EQ(daemon1_->stats().deferred_unreachable, 0u) << "a probe was issued";
  EXPECT_EQ(layer(1)->PendingVersionCount(), 1u);

  resolver_.SetReachable(1, true);
  resolver_.SetHealth(1, PeerHealth::kAlive);
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().pulled_files, 1u);
}

TEST_F(PropagationTest, UnstoredFileIgnored) {
  // Notification about a file this volume replica chose not to store.
  GlobalFileId ghost{VolumeId{1, 1}, FileId{1, 999}};
  VersionVector vv;
  vv.Increment(1);
  layer(1)->NoteNewVersion(ghost, vv, 1);
  ASSERT_TRUE(daemon1_->RunOnce().ok());
  EXPECT_EQ(daemon1_->stats().skipped_current, 1u);
}

}  // namespace
}  // namespace ficus::repl
