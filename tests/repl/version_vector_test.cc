#include "src/repl/version_vector.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace ficus::repl {
namespace {

TEST(VersionVectorTest, FreshVectorsAreEqual) {
  VersionVector a, b;
  EXPECT_EQ(a.Compare(b), VectorOrder::kEqual);
  EXPECT_TRUE(a == b);
}

TEST(VersionVectorTest, IncrementDominates) {
  VersionVector a, b;
  a.Increment(1);
  EXPECT_EQ(a.Compare(b), VectorOrder::kDominates);
  EXPECT_EQ(b.Compare(a), VectorOrder::kDominatedBy);
  EXPECT_TRUE(a.StrictlyDominates(b));
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
}

TEST(VersionVectorTest, DisjointIncrementsAreConcurrent) {
  VersionVector a, b;
  a.Increment(1);
  b.Increment(2);
  EXPECT_EQ(a.Compare(b), VectorOrder::kConcurrent);
  EXPECT_TRUE(a.ConcurrentWith(b));
  EXPECT_TRUE(b.ConcurrentWith(a));
}

TEST(VersionVectorTest, MixedComponentsConcurrent) {
  VersionVector a, b;
  a.Increment(1);
  a.Increment(1);
  a.Increment(2);
  b.Increment(1);
  b.Increment(2);
  b.Increment(2);
  // a = {1:2, 2:1}, b = {1:1, 2:2}
  EXPECT_EQ(a.Compare(b), VectorOrder::kConcurrent);
}

TEST(VersionVectorTest, MergeIsLeastUpperBound) {
  VersionVector a, b;
  a.Increment(1);
  a.Increment(1);
  b.Increment(2);
  VersionVector merged = VersionVector::Merge(a, b);
  EXPECT_TRUE(merged.Dominates(a));
  EXPECT_TRUE(merged.Dominates(b));
  EXPECT_EQ(merged.Count(1), 2u);
  EXPECT_EQ(merged.Count(2), 1u);
}

TEST(VersionVectorTest, MergeIdempotentCommutative) {
  VersionVector a, b;
  a.Increment(1);
  b.Increment(2);
  b.Increment(3);
  EXPECT_TRUE(VersionVector::Merge(a, b) == VersionVector::Merge(b, a));
  EXPECT_TRUE(VersionVector::Merge(a, a) == a);
}

TEST(VersionVectorTest, CountOfAbsentReplicaIsZero) {
  VersionVector a;
  EXPECT_EQ(a.Count(99), 0u);
  a.Increment(1);
  EXPECT_EQ(a.Count(99), 0u);
}

TEST(VersionVectorTest, TotalUpdatesSumsComponents) {
  VersionVector a;
  a.Increment(1);
  a.Increment(1);
  a.Increment(5);
  EXPECT_EQ(a.TotalUpdates(), 3u);
}

TEST(VersionVectorTest, SerializationRoundTrip) {
  VersionVector a;
  a.Increment(1);
  a.Increment(1);
  a.Increment(7);
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  a.Serialize(w);
  ByteReader r(buf);
  auto decoded = VersionVector::Deserialize(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value() == a);
}

TEST(VersionVectorTest, ToStringReadable) {
  VersionVector a;
  a.Increment(3);
  a.Increment(3);
  EXPECT_EQ(a.ToString(), "{r3:2}");
  EXPECT_EQ(VersionVector().ToString(), "{}");
}

// --- property sweeps ---

class VersionVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

VersionVector RandomVector(Rng& rng, int replicas, int max_count) {
  VersionVector v;
  for (int r = 1; r <= replicas; ++r) {
    uint64_t count = rng.NextBelow(static_cast<uint64_t>(max_count + 1));
    for (uint64_t i = 0; i < count; ++i) {
      v.Increment(static_cast<ReplicaId>(r));
    }
  }
  return v;
}

TEST_P(VersionVectorPropertyTest, CompareIsAntisymmetricAndMergeUpperBounds) {
  Rng rng(SeedFromEnvOr(GetParam(), "version_vector.antisymmetry"));
  for (int trial = 0; trial < 200; ++trial) {
    VersionVector a = RandomVector(rng, 4, 3);
    VersionVector b = RandomVector(rng, 4, 3);
    VectorOrder ab = a.Compare(b);
    VectorOrder ba = b.Compare(a);
    switch (ab) {
      case VectorOrder::kEqual:
        EXPECT_EQ(ba, VectorOrder::kEqual);
        break;
      case VectorOrder::kDominates:
        EXPECT_EQ(ba, VectorOrder::kDominatedBy);
        break;
      case VectorOrder::kDominatedBy:
        EXPECT_EQ(ba, VectorOrder::kDominates);
        break;
      case VectorOrder::kConcurrent:
        EXPECT_EQ(ba, VectorOrder::kConcurrent);
        break;
    }
    VersionVector m = VersionVector::Merge(a, b);
    EXPECT_TRUE(m.Dominates(a));
    EXPECT_TRUE(m.Dominates(b));
    // Minimality: every component of the merge comes from a or b.
    for (const auto& [replica, count] : m.counters()) {
      EXPECT_EQ(count, std::max(a.Count(replica), b.Count(replica)));
    }
    // Serialization is faithful.
    std::vector<uint8_t> buf;
    ByteWriter w(buf);
    a.Serialize(w);
    ByteReader r(buf);
    auto decoded = VersionVector::Deserialize(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value() == a);
  }
}

TEST_P(VersionVectorPropertyTest, DominanceIsTransitive) {
  Rng rng(SeedFromEnvOr(GetParam() + 1000, "version_vector.transitivity"));
  for (int trial = 0; trial < 200; ++trial) {
    VersionVector a = RandomVector(rng, 3, 3);
    VersionVector b = a;
    VersionVector c;
    // b >= a by construction; c >= b by construction.
    for (int i = 0; i < 3; ++i) {
      if (rng.NextBool(0.5)) {
        b.Increment(static_cast<ReplicaId>(rng.NextBelow(3) + 1));
      }
    }
    c = b;
    for (int i = 0; i < 3; ++i) {
      if (rng.NextBool(0.5)) {
        c.Increment(static_cast<ReplicaId>(rng.NextBelow(3) + 1));
      }
    }
    EXPECT_TRUE(b.Dominates(a));
    EXPECT_TRUE(c.Dominates(b));
    EXPECT_TRUE(c.Dominates(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionVectorPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ficus::repl
