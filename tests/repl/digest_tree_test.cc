// Incremental maintenance of the Merkle subtree digest tree: every local
// mutation and every reconciliation apply must invalidate exactly the
// affected directory chain, so a lazily recomputed digest always equals a
// from-scratch recomputation (ValidateDigestTree) and changes whenever
// digest-relevant state changes. Also covers the persisted v2 directory
// header (entry digest validated on every full parse, v1 files migrate on
// first store), crash-reboot rebuild, and the facade transport.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/serialize.h"
#include "src/repl/facade.h"
#include "src/repl/physical.h"
#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

uint64_t RootDigest(PhysicalLayer* layer) {
  StatusOr<std::vector<SubtreeDigest>> rows = layer->GetSubtreeDigests({kRootFileId});
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_TRUE(rows->front().status.ok()) << rows->front().status.ToString();
  return rows->front().subtree_digest;
}

void ExpectDigestsValid(PhysicalLayer* layer) {
  StatusOr<std::vector<std::string>> problems = layer->ValidateDigestTree();
  ASSERT_TRUE(problems.ok()) << problems.status().ToString();
  EXPECT_TRUE(problems->empty()) << problems->front();
}

class DigestTreeTest : public ::testing::Test {
 protected:
  DigestTreeTest() : stack_(&clock_, VolumeId{1, 1}, 1, true) {}

  PhysicalLayer* layer() { return stack_.layer.get(); }

  SimClock clock_;
  ReplicaStack stack_;
};

TEST_F(DigestTreeTest, CreateChangesRootDigest) {
  uint64_t before = RootDigest(layer());
  auto file = layer()->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  uint64_t after = RootDigest(layer());
  EXPECT_NE(before, after);
  ExpectDigestsValid(layer());
  // Stable: re-reading without mutation returns the same digest.
  EXPECT_EQ(after, RootDigest(layer()));
}

TEST_F(DigestTreeTest, WriteChangesRootDigestThroughNestedDirs) {
  auto dir = layer()->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  auto sub = layer()->CreateChild(*dir, "sub", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(sub.ok());
  auto file = layer()->CreateChild(*sub, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  uint64_t before = RootDigest(layer());
  // A deep write bumps the file's version vector; the invalidation must
  // climb sub -> d -> root even though only the leaf's attributes moved.
  ASSERT_TRUE(layer()->WriteData(*file, 0, {1, 2, 3}).ok());
  EXPECT_NE(before, RootDigest(layer()));
  ExpectDigestsValid(layer());
}

TEST_F(DigestTreeTest, RemoveLeavesTombstoneInDigest) {
  uint64_t empty = RootDigest(layer());
  auto file = layer()->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  uint64_t with_file = RootDigest(layer());
  ASSERT_TRUE(layer()->RemoveEntry(kRootFileId, "f").ok());
  uint64_t after_remove = RootDigest(layer());
  // The tombstone is digest-relevant state: neither the pre-create nor the
  // alive digest may reappear, or reconciliation would prune a directory
  // whose delete still needs to propagate.
  EXPECT_NE(after_remove, empty);
  EXPECT_NE(after_remove, with_file);
  ExpectDigestsValid(layer());
}

TEST_F(DigestTreeTest, RemoveThenRecreateYieldsDistinctDigest) {
  auto first = layer()->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(first.ok());
  uint64_t original = RootDigest(layer());
  ASSERT_TRUE(layer()->RemoveEntry(kRootFileId, "f").ok());
  auto second = layer()->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value(), second.value());
  // Same name, different file-id, plus the old tombstone: the digest must
  // distinguish the recreated state from the original (PR 5's
  // remove-vs-recreate edge case).
  EXPECT_NE(original, RootDigest(layer()));
  ExpectDigestsValid(layer());
}

TEST_F(DigestTreeTest, CrossDirectoryRenameChangesBothSubtrees) {
  auto a = layer()->CreateChild(kRootFileId, "a", FicusFileType::kDirectory, 0);
  auto b = layer()->CreateChild(kRootFileId, "b", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(a.ok() && b.ok());
  auto file = layer()->CreateChild(*a, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  auto before = layer()->GetSubtreeDigests({*a, *b});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(layer()->RenameEntry(*a, "f", *b, "g").ok());
  auto after = layer()->GetSubtreeDigests({*a, *b});
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->at(0).subtree_digest, after->at(0).subtree_digest)
      << "source directory digest unchanged by rename-out";
  EXPECT_NE(before->at(1).subtree_digest, after->at(1).subtree_digest)
      << "target directory digest unchanged by rename-in";
  ExpectDigestsValid(layer());
}

TEST_F(DigestTreeTest, HardLinkChangesTargetDirectoryDigest) {
  auto d = layer()->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(d.ok());
  auto file = layer()->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  auto before = layer()->GetSubtreeDigests({*d});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(layer()->AddEntry(*d, "link", *file, FicusFileType::kRegular).ok());
  auto after = layer()->GetSubtreeDigests({*d});
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->front().subtree_digest, after->front().subtree_digest);
  ExpectDigestsValid(layer());
}

TEST_F(DigestTreeTest, InstallVersionChangesDigest) {
  auto file = layer()->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  uint64_t before = RootDigest(layer());
  auto attrs = layer()->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  VersionVector vv = attrs->vv;
  vv.Increment(9);  // an update from a fictional peer replica
  ASSERT_TRUE(layer()->InstallVersion(*file, {9, 9, 9}, vv).ok());
  EXPECT_NE(before, RootDigest(layer()));
  ExpectDigestsValid(layer());
}

TEST_F(DigestTreeTest, GarbageCollectKeepsDigestsValid) {
  auto file = layer()->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer()->RemoveEntry(kRootFileId, "f").ok());
  uint64_t before_gc = RootDigest(layer());
  auto collected = layer()->GarbageCollect();
  ASSERT_TRUE(collected.ok());
  EXPECT_GE(collected.value(), 1);
  // GC frees storage only of files no live entry references, and the
  // files digest stamps only alive entries — so collecting must not move
  // the digest (the tombstone itself is untouched), and the cache must
  // survive the eviction intact.
  EXPECT_EQ(before_gc, RootDigest(layer()));
  ExpectDigestsValid(layer());
}

TEST_F(DigestTreeTest, RebootRebuildsIdenticalDigests) {
  auto dir = layer()->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  auto file = layer()->CreateChild(*dir, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer()->WriteData(*file, 0, {42}).ok());
  uint64_t before = RootDigest(layer());
  // "Reboot": a fresh layer attaches to the same disk image and must
  // lazily rebuild the identical tree from persisted state.
  PhysicalLayer rebooted(&stack_.ufs, &clock_);
  ASSERT_TRUE(rebooted.Attach("vol_r1").ok());
  EXPECT_EQ(before, RootDigest(&rebooted));
  ExpectDigestsValid(&rebooted);
}

TEST_F(DigestTreeTest, V1DirectoryHeaderMigratesToV2OnStore) {
  auto file = layer()->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  uint64_t before = RootDigest(layer());
  // Rewrite the root .dir with a v1 (pre-digest) header around the same
  // entry body, as an upgrade from an older volume image would find it.
  auto entries = layer()->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  auto container = stack_.ufs.DirLookup(ufs::kRootInode, "vol_r1");
  ASSERT_TRUE(container.ok());
  auto root_dir = stack_.ufs.DirLookup(*container, kRootFileId.ToHex());
  ASSERT_TRUE(root_dir.ok());
  auto dir_file = stack_.ufs.DirLookup(*root_dir, ".dir");
  ASSERT_TRUE(dir_file.ok());
  std::vector<uint8_t> v1;
  ByteWriter w(v1);
  w.PutU32(0xF1C0D1D0);  // kDirMagic (v1): u32 magic + u64 generation, no digest
  w.PutU64(1000);
  std::vector<uint8_t> body = SerializeDirEntries(entries.value());
  v1.insert(v1.end(), body.begin(), body.end());
  ASSERT_TRUE(stack_.ufs.WriteAll(*dir_file, v1).ok());

  // A fresh layer must parse the v1 file (no digest to validate)...
  PhysicalLayer upgraded(&stack_.ufs, &clock_);
  ASSERT_TRUE(upgraded.Attach("vol_r1").ok());
  EXPECT_EQ(before, RootDigest(&upgraded));
  // ... and the first store rewrites it with the v2 digest header.
  ASSERT_TRUE(upgraded.CreateChild(kRootFileId, "g", FicusFileType::kRegular, 0).ok());
  auto raw = stack_.ufs.ReadAll(*dir_file);
  ASSERT_TRUE(raw.ok());
  ASSERT_GE(raw->size(), 4u);
  uint32_t magic = static_cast<uint32_t>((*raw)[0]) | static_cast<uint32_t>((*raw)[1]) << 8 |
                   static_cast<uint32_t>((*raw)[2]) << 16 |
                   static_cast<uint32_t>((*raw)[3]) << 24;
  EXPECT_EQ(magic, 0xF1C0D1D2u) << "store did not upgrade the header to v2";
  ExpectDigestsValid(&upgraded);
}

TEST_F(DigestTreeTest, CorruptedCacheIsFlaggedAndHealsOnInvalidation) {
  ASSERT_TRUE(layer()->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0).ok());
  ASSERT_TRUE(layer()->CorruptDigestForTest(kRootFileId).ok());
  auto problems = layer()->ValidateDigestTree();
  ASSERT_TRUE(problems.ok());
  EXPECT_FALSE(problems->empty()) << "corrupted cached digest went undetected";
  // Any mutation of the directory invalidates the poisoned node; the next
  // computation is honest again.
  ASSERT_TRUE(layer()->CreateChild(kRootFileId, "g", FicusFileType::kRegular, 0).ok());
  ExpectDigestsValid(layer());
}

TEST_F(DigestTreeTest, DigestsFlowThroughTheFacade) {
  auto dir = layer()->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(layer()->CreateChild(*dir, "f", FicusFileType::kRegular, 0).ok());
  PhysicalFacadeVfs facade(layer());
  auto root = facade.Root();
  ASSERT_TRUE(root.ok());
  RemotePhysical proxy(root.value());
  ASSERT_TRUE(proxy.Connect().ok());
  auto remote = proxy.GetSubtreeDigests({kRootFileId, *dir, FileId{1, 424242}});
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto local = layer()->GetSubtreeDigests({kRootFileId, *dir, FileId{1, 424242}});
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(remote->size(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(remote->at(i).status.ok());
    EXPECT_EQ(remote->at(i).subtree_digest, local->at(i).subtree_digest);
    EXPECT_EQ(remote->at(i).entry_digest, local->at(i).entry_digest);
    EXPECT_EQ(remote->at(i).files_digest, local->at(i).files_digest);
    EXPECT_EQ(remote->at(i).vv, local->at(i).vv);
    EXPECT_EQ(remote->at(i).children, local->at(i).children);
  }
  // The per-row status survives the wire: an unknown file-id is a
  // kNotFound row, not a transport failure.
  EXPECT_EQ(remote->at(2).status.code(), ErrorCode::kNotFound);
}

// Converged replicas with identical state must compute identical digests,
// and a tombstone applied through reconciliation (not a local remove)
// must flow into the receiver's digest like any other entry change.
class DigestConvergenceTest : public ReplicaFixture {};

TEST_F(DigestConvergenceTest, ConvergedReplicasAgreeAndTombstonesApply) {
  auto dir = layer(0)->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  auto file = layer(0)->CreateChild(*dir, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer(0)->WriteData(*file, 0, {1, 2, 3}).ok());
  ReconcileAll();
  EXPECT_EQ(RootDigest(layer(0)), RootDigest(layer(1)));
  ExpectDigestsValid(layer(0));
  ExpectDigestsValid(layer(1));

  uint64_t replica1_before = RootDigest(layer(1));
  ASSERT_TRUE(layer(0)->RemoveEntry(*dir, "f").ok());
  ReconcileAll();
  // Replica 1 never saw a local remove; the tombstone arrived through
  // ApplyEntry and must still have invalidated its digest chain.
  EXPECT_NE(replica1_before, RootDigest(layer(1)));
  EXPECT_EQ(RootDigest(layer(0)), RootDigest(layer(1)));
  ExpectDigestsValid(layer(0));
  ExpectDigestsValid(layer(1));
}

}  // namespace
}  // namespace ficus::repl
