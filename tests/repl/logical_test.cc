#include "src/repl/logical.h"

#include <gtest/gtest.h>

#include "src/vfs/path_ops.h"
#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

using vfs::Credentials;
using vfs::VnodePtr;

class LogicalTest : public ReplicaFixture {
 protected:
  LogicalTest() : ReplicaFixture(2) {
    logical_ = std::make_unique<LogicalLayer>(VolumeId{1, 1}, &resolver_, &notifier_, &log_,
                                              &clock_);
    resolver_.SetPreferred(1);
  }

  std::unique_ptr<LogicalLayer> logical_;
  Credentials cred_;
};

TEST_F(LogicalTest, RootPresentsSingleCopyView) {
  auto root = logical_->Root();
  ASSERT_TRUE(root.ok());
  auto attr = (*root)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, vfs::VnodeType::kDirectory);
}

TEST_F(LogicalTest, WriteAppliesToOneReplicaAndNotifies) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "hello").ok());
  // The update landed on the preferred replica only...
  auto entries0 = layer(0)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries0.ok());
  EXPECT_EQ(entries0->size(), 1u);
  // ...but the notification reached replica 2's new-version cache.
  EXPECT_GT(notifier_.sent(), 0u);
  EXPECT_GT(layer(1)->PendingVersionCount(), 0u);
}

TEST_F(LogicalTest, ReadsPreferLocalReplica) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "data").ok());
  ReconcileAll();
  uint64_t switches_before = logical_->stats().replica_switches;
  auto contents = vfs::ReadFileAt(logical_.get(), "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "data");
  EXPECT_EQ(logical_->stats().replica_switches, switches_before);
}

TEST_F(LogicalTest, FailoverToSurvivingReplica) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "precious").ok());
  ReconcileAll();
  // The preferred replica vanishes; one-copy availability keeps going.
  resolver_.SetReachable(1, false);
  auto contents = vfs::ReadFileAt(logical_.get(), "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "precious");
  EXPECT_GT(logical_->stats().replica_switches, 0u);
  // Updates keep working too.
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "g", "written during outage").ok());
}

TEST_F(LogicalTest, AllReplicasGoneMeansUnreachable) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "x").ok());
  resolver_.SetReachable(1, false);
  resolver_.SetReachable(2, false);
  EXPECT_EQ(vfs::ReadFileAt(logical_.get(), "f").status().code(), ErrorCode::kUnreachable);
}

TEST_F(LogicalTest, ReadSelectsMostRecentAvailableCopy) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "v1").ok());
  ReconcileAll();
  // Replica 2 receives a newer version (simulating propagation there).
  auto entries = layer(1)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  FileId file = (*entries)[0].file;
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'v', '2'}).ok());
  // Preferred replica 1 still holds v1, but replica 2's copy dominates:
  // the logical layer must pick it ("select the most recent copy
  // available").
  auto contents = vfs::ReadFileAt(logical_.get(), "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "v2");
}

TEST_F(LogicalTest, ConcurrentVersionsReadDeterministically) {
  // When reachable replicas hold concurrent versions, the logical layer
  // must pick deterministically (lowest replica id wins the tie), so
  // repeated reads through one mount never flap between versions.
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "base").ok());
  ReconcileAll();
  auto entries = layer(0)->ReadDirectory(kRootFileId);
  FileId file = (*entries)[0].file;
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {'A'}).ok());
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'B'}).ok());
  // No reconcile: conflict not yet flagged; reads must be stable anyway.
  std::set<std::string> seen;
  for (int i = 0; i < 5; ++i) {
    auto contents = vfs::ReadFileAt(logical_.get(), "f");
    ASSERT_TRUE(contents.ok());
    seen.insert(contents.value());
  }
  EXPECT_EQ(seen.size(), 1u);
}

TEST_F(LogicalTest, DirectoryListingHidesTombstones) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "keep", "1").ok());
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "gone", "2").ok());
  ASSERT_TRUE(vfs::RemovePath(logical_.get(), "gone").ok());
  auto listing = vfs::ListDir(logical_.get(), "");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, "keep");
}

TEST_F(LogicalTest, MkdirRmdirThroughLogical) {
  ASSERT_TRUE(vfs::MkdirAll(logical_.get(), "a/b").ok());
  EXPECT_TRUE(vfs::Exists(logical_.get(), "a/b"));
  ASSERT_TRUE(vfs::RemovePath(logical_.get(), "a/b").ok());
  EXPECT_FALSE(vfs::Exists(logical_.get(), "a/b"));
}

TEST_F(LogicalTest, RenameThroughLogical) {
  ASSERT_TRUE(vfs::MkdirAll(logical_.get(), "dir").ok());
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "move").ok());
  ASSERT_TRUE(vfs::RenamePath(logical_.get(), "f", "dir/g").ok());
  EXPECT_FALSE(vfs::Exists(logical_.get(), "f"));
  auto contents = vfs::ReadFileAt(logical_.get(), "dir/g");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "move");
}

TEST_F(LogicalTest, LinkGivesFileTwoNames) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "orig", "shared").ok());
  auto root = logical_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("orig", cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*root)->Link("alias", *file, cred_).ok());
  auto contents = vfs::ReadFileAt(logical_.get(), "alias");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "shared");
}

TEST_F(LogicalTest, SymlinkThroughLogical) {
  auto root = logical_->Root();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE((*root)->Symlink("l", "else/where", cred_).ok());
  auto link = (*root)->Lookup("l", cred_);
  ASSERT_TRUE(link.ok());
  auto target = (*link)->Readlink(cred_);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), "else/where");
}

TEST_F(LogicalTest, ConflictedFileFailsReadsUntilResolved) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "base").ok());
  ReconcileAll();
  auto entries = layer(0)->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  FileId file = (*entries)[0].file;
  // Concurrent updates at both replicas, then reconcile -> conflict.
  ASSERT_TRUE(layer(0)->WriteData(file, 0, {'A'}).ok());
  ASSERT_TRUE(layer(1)->WriteData(file, 0, {'B'}).ok());
  ReconcileAll();

  EXPECT_EQ(vfs::ReadFileAt(logical_.get(), "f").status().code(), ErrorCode::kConflict);
  EXPECT_GT(logical_->stats().conflicts_surfaced, 0u);

  // The owner resolves: new version dominates both, flags clear.
  ASSERT_TRUE(logical_->ResolveFileConflict(file, {'A', 'B'}).ok());
  ReconcileAll();
  auto contents = vfs::ReadFileAt(logical_.get(), "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "AB");
  // Both replicas converge on the resolution.
  auto a = layer(0)->GetAttributes(file);
  auto b = layer(1)->GetAttributes(file);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->conflict);
  EXPECT_FALSE(b->conflict);
  EXPECT_TRUE(a->vv == b->vv);
}

TEST_F(LogicalTest, OpenTunnelsThroughToPhysical) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "x").ok());
  auto root = logical_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  uint64_t opens_before = layer(0)->stats().opens_noted;
  ASSERT_TRUE((*file)->Open(vfs::kOpenRead, cred_).ok());
  ASSERT_TRUE((*file)->Close(vfs::kOpenRead, cred_).ok());
  EXPECT_GT(layer(0)->stats().opens_noted, opens_before);
  EXPECT_GT(layer(0)->stats().closes_noted, 0u);
}

TEST_F(LogicalTest, GetAttrReportsSizeAndType) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "12345").ok());
  auto root = logical_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  auto attr = (*file)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, vfs::VnodeType::kRegular);
  EXPECT_EQ(attr->size, 5u);
}

TEST_F(LogicalTest, TruncateViaSetAttr) {
  ASSERT_TRUE(vfs::WriteFileAt(logical_.get(), "f", "1234567890").ok());
  auto root = logical_->Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  vfs::SetAttrRequest request;
  request.set_size = true;
  request.size = 3;
  ASSERT_TRUE((*file)->SetAttr(request, cred_).ok());
  auto contents = vfs::ReadFileAt(logical_.get(), "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "123");
}

}  // namespace
}  // namespace ficus::repl
