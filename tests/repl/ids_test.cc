#include "src/repl/ids.h"

#include <gtest/gtest.h>

namespace ficus::repl {
namespace {

TEST(IdsTest, FileIdPackUnpackRoundTrip) {
  FileId id{0xABCD1234, 0x00000042};
  EXPECT_EQ(FileId::Unpack(id.Pack()), id);
}

TEST(IdsTest, FileIdHexRoundTrip) {
  FileId id{7, 99};
  auto decoded = FileId::FromHex(id.ToHex());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), id);
  EXPECT_EQ(id.ToHex().size(), 16u);
}

TEST(IdsTest, FromHexRejectsInvalidIssuer) {
  // issuer 0 is the reserved invalid replica.
  EXPECT_FALSE(FileId::FromHex("0000000000000001").ok());
}

TEST(IdsTest, RootFileIdIsWellKnown) {
  EXPECT_TRUE(kRootFileId.valid());
  EXPECT_EQ(kRootFileId.issuer, 0xFFFFFFFFu);
  EXPECT_EQ(kRootFileId.unique, 1u);
}

TEST(IdsTest, OrderingIsTotal) {
  FileId a{1, 5};
  FileId b{1, 6};
  FileId c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
}

TEST(IdsTest, VolumeIdComparesByBothFields) {
  VolumeId a{1, 1};
  VolumeId b{1, 2};
  VolumeId c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (VolumeId{1, 1}));
}

TEST(IdsTest, HandleSerializationRoundTrip) {
  FicusHandle handle{VolumeId{3, 4}, FileId{5, 6}, 7};
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  PutHandle(w, handle);
  ByteReader r(buf);
  FicusHandle decoded;
  ASSERT_TRUE(GetHandle(r, decoded).ok());
  EXPECT_EQ(decoded, handle);
}

TEST(IdsTest, ToStringsAreInformative) {
  EXPECT_EQ((VolumeId{1, 2}).ToString(), "1.2");
  EXPECT_EQ((FileId{3, 4}).ToString(), "3:4");
  EXPECT_EQ((GlobalFileId{{1, 2}, {3, 4}}).ToString(), "1.2/3:4");
}

}  // namespace
}  // namespace ficus::repl
