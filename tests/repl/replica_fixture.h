// Shared fixture: N physical layers of one volume, each on its own UFS,
// wired through an in-process resolver with per-replica reachability
// toggles — the minimal harness for reconciliation/propagation/logical
// tests without bringing up the whole simulated network.
#ifndef FICUS_TESTS_REPL_REPLICA_FIXTURE_H_
#define FICUS_TESTS_REPL_REPLICA_FIXTURE_H_

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/repl/conflict_log.h"
#include "src/repl/logical.h"
#include "src/repl/physical.h"
#include "src/repl/propagation.h"
#include "src/repl/reconcile.h"
#include "src/repl/resolver.h"
#include "src/storage/block_device.h"
#include "src/storage/buffer_cache.h"
#include "src/ufs/ufs.h"

namespace ficus::repl {

class TestResolver : public ReplicaResolver {
 public:
  void Add(PhysicalLayer* layer) { replicas_[layer->replica_id()] = layer; }

  void SetReachable(ReplicaId replica, bool reachable) {
    if (reachable) {
      unreachable_.erase(replica);
    } else {
      unreachable_.insert(replica);
    }
  }

  void SetPreferred(ReplicaId replica) { preferred_ = replica; }

  // Scripted failure-detector verdicts, standing in for a heartbeat
  // monitor (the daemons only consume HealthOf, never the monitor).
  void SetHealth(ReplicaId replica, PeerHealth health) { health_[replica] = health; }

  std::vector<ReplicaId> ReplicasOf(const VolumeId&) override {
    std::vector<ReplicaId> out;
    for (const auto& [id, layer] : replicas_) {
      out.push_back(id);
    }
    return out;
  }

  StatusOr<PhysicalApi*> Access(const VolumeId&, ReplicaId replica) override {
    if (unreachable_.count(replica) != 0) {
      return UnreachableError("replica " + std::to_string(replica) + " partitioned away");
    }
    auto it = replicas_.find(replica);
    if (it == replicas_.end()) {
      return NotFoundError("no such replica");
    }
    return static_cast<PhysicalApi*>(it->second);
  }

  ReplicaId PreferredReplica(const VolumeId&) override { return preferred_; }

  PeerHealth HealthOf(const VolumeId&, ReplicaId replica) override {
    auto it = health_.find(replica);
    return it != health_.end() ? it->second : PeerHealth::kAlive;
  }

 private:
  std::map<ReplicaId, PhysicalLayer*> replicas_;
  std::set<ReplicaId> unreachable_;
  std::map<ReplicaId, PeerHealth> health_;
  ReplicaId preferred_ = kInvalidReplica;
};

// Captures notifications and forwards them to every other replica's
// new-version cache — an in-process stand-in for the multicast datagram.
class TestNotifier : public UpdateNotifier {
 public:
  void Add(PhysicalLayer* layer) { layers_.push_back(layer); }
  void SetDropAll(bool drop) { drop_all_ = drop; }

  void NotifyUpdate(const GlobalFileId& id, const VersionVector& vv,
                    ReplicaId source) override {
    ++sent_;
    if (drop_all_) {
      return;  // datagrams are best-effort
    }
    for (PhysicalLayer* layer : layers_) {
      if (layer->replica_id() != source) {
        layer->NoteNewVersion(id, vv, source);
      }
    }
  }

  uint64_t sent() const { return sent_; }

 private:
  std::vector<PhysicalLayer*> layers_;
  bool drop_all_ = false;
  uint64_t sent_ = 0;
};

// One replica's private storage stack + physical layer.
struct ReplicaStack {
  explicit ReplicaStack(const SimClock* clock, VolumeId volume, ReplicaId replica,
                        bool first)
      : device(8192), cache(&device, 256), ufs(&cache, clock) {
    EXPECT_TRUE(ufs.Format(1024).ok());
    layer = std::make_unique<PhysicalLayer>(&ufs, clock);
    EXPECT_TRUE(layer
                    ->CreateVolume(volume, replica, "vol_r" + std::to_string(replica), first)
                    .ok());
  }

  storage::BlockDevice device;
  storage::BufferCache cache;
  ufs::Ufs ufs;
  std::unique_ptr<PhysicalLayer> layer;
};

// Fixture with `replica_count` replicas of volume {1,1}.
class ReplicaFixture : public ::testing::Test {
 protected:
  explicit ReplicaFixture(int replica_count = 2) {
    for (int i = 0; i < replica_count; ++i) {
      auto stack = std::make_unique<ReplicaStack>(&clock_, VolumeId{1, 1},
                                                  static_cast<ReplicaId>(i + 1), i == 0);
      resolver_.Add(stack->layer.get());
      notifier_.Add(stack->layer.get());
      stacks_.push_back(std::move(stack));
    }
    // Bring later replicas' roots level with the seed.
    for (auto& stack : stacks_) {
      Reconciler reconciler(stack->layer.get(), &resolver_, &log_, &clock_);
      EXPECT_TRUE(reconciler.ReconcileWithAllReplicas().ok());
    }
  }

  PhysicalLayer* layer(int index) { return stacks_[static_cast<size_t>(index)]->layer.get(); }

  // Runs full reconciliation on every replica, `rounds` times.
  void ReconcileAll(int rounds = 2) {
    for (int r = 0; r < rounds; ++r) {
      for (auto& stack : stacks_) {
        Reconciler reconciler(stack->layer.get(), &resolver_, &log_, &clock_);
        ASSERT_TRUE(reconciler.ReconcileWithAllReplicas().ok());
      }
    }
  }

  SimClock clock_;
  TestResolver resolver_;
  TestNotifier notifier_;
  ConflictLog log_;
  std::vector<std::unique_ptr<ReplicaStack>> stacks_;
};

}  // namespace ficus::repl

#endif  // FICUS_TESTS_REPL_REPLICA_FIXTURE_H_
