// The section-7 extension: replication attributes stored in the UFS
// inode's extension area instead of an auxiliary file ("extensible inodes
// would allow us to dispense with auxiliary files to store replication
// data"). The physical layer must behave identically in both placements,
// spill oversized attribute records gracefully, and actually save the
// aux-file I/Os on a cold open.
#include <gtest/gtest.h>

#include "src/repl/physical.h"

namespace ficus::repl {
namespace {

class InodeAttrsTest : public ::testing::Test {
 protected:
  InodeAttrsTest() : device_(8192), cache_(&device_, 256), ufs_(&cache_, &clock_) {
    EXPECT_TRUE(ufs_.Format(1024).ok());
    PhysicalOptions options;
    options.attr_placement = AttrPlacement::kInode;
    layer_ = std::make_unique<PhysicalLayer>(&ufs_, &clock_, options);
    EXPECT_TRUE(layer_->CreateVolume(VolumeId{1, 1}, 1, "vol", true).ok());
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BufferCache cache_;
  ufs::Ufs ufs_;
  std::unique_ptr<PhysicalLayer> layer_;
};

TEST_F(InodeAttrsTest, BasicLifecycleWorks) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 7);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, {1, 2, 3}).ok());
  auto attrs = layer_->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->owner_uid, 7u);
  EXPECT_EQ(attrs->vv.Count(1), 2u);
  auto data = layer_->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{1, 2, 3}));
}

TEST_F(InodeAttrsTest, NoAuxiliaryFilesCreated) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  auto dir = layer_->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  // Inspect the root Ficus directory's UFS dir: no "<hex>.attr", and the
  // subdirectory contains no ".attr".
  auto container = ufs_.DirLookup(ufs::kRootInode, "vol");
  ASSERT_TRUE(container.ok());
  auto root_dir = ufs_.DirLookup(*container, kRootFileId.ToHex());
  ASSERT_TRUE(root_dir.ok());
  auto entries = ufs_.DirList(*root_dir);
  ASSERT_TRUE(entries.ok());
  for (const auto& e : *entries) {
    EXPECT_EQ(e.name.find(".attr"), std::string::npos) << e.name;
  }
}

TEST_F(InodeAttrsTest, InstallVersionAtomicWithAttributes) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, {1}).ok());
  VersionVector vv;
  vv.Increment(1);
  vv.Increment(1);
  vv.Increment(2);
  ASSERT_TRUE(layer_->InstallVersion(*file, {9, 9}, vv).ok());
  auto attrs = layer_->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->vv == vv);
  auto data = layer_->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{9, 9}));
}

TEST_F(InodeAttrsTest, CrashDuringInstallKeepsOldContentsAndAttributes) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->WriteData(*file, 0, {'o'}).ok());
  auto old_attrs = layer_->GetAttributes(*file);
  ASSERT_TRUE(old_attrs.ok());

  device_.InjectCrash();
  VersionVector vv = old_attrs->vv;
  vv.Increment(2);
  (void)layer_->InstallVersion(*file, {'n'}, vv);
  device_.ClearCrash();
  cache_.Invalidate();

  PhysicalOptions options;
  options.attr_placement = AttrPlacement::kInode;
  PhysicalLayer recovered(&ufs_, &clock_, options);
  ASSERT_TRUE(recovered.Attach("vol").ok());
  auto data = recovered.ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{'o'}));
  auto attrs = recovered.GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->vv == old_attrs->vv);  // contents AND attributes atomic
}

TEST_F(InodeAttrsTest, AttachRestoresPlacementFromMeta) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  // Attach with DEFAULT options: the placement must come from volume.meta.
  PhysicalLayer reattached(&ufs_, &clock_);
  ASSERT_TRUE(reattached.Attach("vol").ok());
  auto attrs = reattached.GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->vv.Count(1), 1u);
}

TEST_F(InodeAttrsTest, OversizedVectorSpillsToAuxFile) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  // ~14 bytes per distinct replica component: 40 replicas (~560 bytes)
  // cannot fit in the ~160-byte extension area.
  for (ReplicaId r = 1; r <= 40; ++r) {
    VersionVector vv;
    // Build a wide vector through InstallVersion so it lands in attrs.
    for (ReplicaId q = 1; q <= r; ++q) {
      vv.Increment(q);
    }
    ASSERT_TRUE(layer_->InstallVersion(*file, {1}, vv).ok()) << r;
  }
  auto attrs = layer_->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->vv.Size(), 40u);  // survived the spill round trip
  // And the spill really created an aux file.
  auto container = ufs_.DirLookup(ufs::kRootInode, "vol");
  auto root_dir = ufs_.DirLookup(*container, kRootFileId.ToHex());
  auto aux = ufs_.DirLookup(*root_dir, file->ToHex() + ".attr");
  EXPECT_TRUE(aux.ok());
}

TEST_F(InodeAttrsTest, GarbageCollectionWorksWithoutAuxFiles) {
  auto file = layer_->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(layer_->RemoveEntry(kRootFileId, "f").ok());
  auto collected = layer_->GarbageCollect();
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected.value(), 1);
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(InodeAttrsTest, ColdOpenCheaperThanAuxFilePlacement) {
  // The ablation in miniature (bench_open_io sweeps it): same namespace,
  // both placements, count cold-open reads.
  auto MeasureColdReads = [](AttrPlacement placement) -> uint64_t {
    SimClock clock;
    storage::BlockDevice device(8192);
    storage::BufferCache cache(&device, 256);
    ufs::Ufs ufs(&cache, &clock);
    (void)ufs.Format(1024);
    PhysicalOptions options;
    options.attr_placement = placement;
    PhysicalLayer layer(&ufs, &clock, options);
    (void)layer.CreateVolume(VolumeId{1, 1}, 1, "vol", true);
    auto dir = layer.CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
    auto file = layer.CreateChild(*dir, "f", FicusFileType::kRegular, 0);
    (void)layer.WriteData(*file, 0, {1, 2, 3});

    cache.Invalidate();
    device.ResetStats();
    // The open path: read the directory, note the open (attr load), read.
    (void)layer.ReadDirectory(*dir);
    (void)layer.NoteOpen(*file);
    (void)layer.ReadAllData(*file);
    return device.stats().reads;
  };

  uint64_t aux_reads = MeasureColdReads(AttrPlacement::kAuxFile);
  uint64_t inode_reads = MeasureColdReads(AttrPlacement::kInode);
  EXPECT_LT(inode_reads, aux_reads);
}

}  // namespace
}  // namespace ficus::repl
