// The lookup-encoded layer transport: RemotePhysical must behave exactly
// like the local PhysicalLayer it proxies, both directly against the
// facade and across a real NFS hop (which drops open/close and has no
// ioctl — the very reason this encoding exists, paper section 2.3).
#include "src/repl/facade.h"

#include <gtest/gtest.h>

#include "src/nfs/client.h"
#include "src/nfs/server.h"

namespace ficus::repl {
namespace {

class FacadeTest : public ::testing::Test {
 protected:
  FacadeTest() : device_(8192), cache_(&device_, 256), ufs_(&cache_, &clock_) {
    EXPECT_TRUE(ufs_.Format(1024).ok());
    layer_ = std::make_unique<PhysicalLayer>(&ufs_, &clock_);
    EXPECT_TRUE(layer_->CreateVolume(VolumeId{1, 1}, 1, "vol1", true).ok());
    facade_ = std::make_unique<PhysicalFacadeVfs>(layer_.get());
  }

  // A proxy wired straight to the facade (no NFS in between).
  std::unique_ptr<RemotePhysical> DirectProxy() {
    auto root = facade_->Root();
    EXPECT_TRUE(root.ok());
    auto proxy = std::make_unique<RemotePhysical>(root.value());
    EXPECT_TRUE(proxy->Connect().ok());
    return proxy;
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BufferCache cache_;
  ufs::Ufs ufs_;
  std::unique_ptr<PhysicalLayer> layer_;
  std::unique_ptr<PhysicalFacadeVfs> facade_;
};

TEST_F(FacadeTest, ConnectFetchesIdentity) {
  auto proxy = DirectProxy();
  EXPECT_EQ(proxy->volume_id(), (VolumeId{1, 1}));
  EXPECT_EQ(proxy->replica_id(), 1u);
}

TEST_F(FacadeTest, AttributesThroughProxy) {
  auto proxy = DirectProxy();
  auto attrs = proxy->GetAttributes(kRootFileId);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->type, FicusFileType::kDirectory);
  EXPECT_EQ(attrs->vv.Count(1), 1u);
}

TEST_F(FacadeTest, CreateWriteReadThroughProxy) {
  auto proxy = DirectProxy();
  auto file = proxy->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 7);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(proxy->WriteData(*file, 0, {1, 2, 3, 4}).ok());
  auto data = proxy->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), (std::vector<uint8_t>{1, 2, 3, 4}));
  auto piece = proxy->ReadData(*file, 1, 2);
  ASSERT_TRUE(piece.ok());
  EXPECT_EQ(piece.value(), (std::vector<uint8_t>{2, 3}));
  auto size = proxy->DataSize(*file);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 4u);
  // The write really landed in the local layer.
  auto local_data = layer_->ReadAllData(*file);
  ASSERT_TRUE(local_data.ok());
  EXPECT_EQ(local_data->size(), 4u);
}

TEST_F(FacadeTest, SmallRequestsRideInLookupNames) {
  auto proxy = DirectProxy();
  ASSERT_TRUE(proxy->GetAttributes(kRootFileId).ok());
  EXPECT_GT(proxy->inline_calls(), 0u);
  EXPECT_EQ(proxy->session_calls(), 0u);
}

TEST_F(FacadeTest, LargePayloadsUseSessions) {
  auto proxy = DirectProxy();
  auto file = proxy->CreateChild(kRootFileId, "big", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> payload(64 * 1024, 0xAA);
  ASSERT_TRUE(proxy->WriteData(*file, 0, payload).ok());
  EXPECT_GT(proxy->session_calls(), 0u);
  auto data = proxy->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), payload);
}

TEST_F(FacadeTest, ErrorsPropagateThroughEncoding) {
  auto proxy = DirectProxy();
  EXPECT_EQ(proxy->GetAttributes(FileId{9, 9}).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(proxy->ReadDirectory(FileId{9, 9}).status().code(), ErrorCode::kNotFound);
}

TEST_F(FacadeTest, DirectoryOpsThroughProxy) {
  auto proxy = DirectProxy();
  auto dir = proxy->CreateChild(kRootFileId, "d", FicusFileType::kDirectory, 0);
  ASSERT_TRUE(dir.ok());
  auto file = proxy->CreateChild(*dir, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(proxy->RenameEntry(*dir, "f", kRootFileId, "g").ok());
  ASSERT_TRUE(proxy->AddEntry(*dir, "link", *file, FicusFileType::kRegular).ok());
  ASSERT_TRUE(proxy->RemoveEntry(*dir, "link").ok());
  auto entries = proxy->ReadDirectory(kRootFileId);
  ASSERT_TRUE(entries.ok());
  int alive = 0;
  for (const auto& e : *entries) {
    if (e.alive) {
      ++alive;
    }
  }
  EXPECT_EQ(alive, 2);  // "d" and "g"
}

TEST_F(FacadeTest, InstallVersionAndConflictThroughProxy) {
  auto proxy = DirectProxy();
  auto file = proxy->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  VersionVector vv;
  vv.Increment(1);
  vv.Increment(2);
  ASSERT_TRUE(proxy->InstallVersion(*file, {7, 7}, vv).ok());
  ASSERT_TRUE(proxy->SetConflict(*file, true).ok());
  auto attrs = proxy->GetAttributes(*file);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs->conflict);
  EXPECT_TRUE(attrs->vv == vv);
}

TEST_F(FacadeTest, ApplyEntryAndMergeThroughProxy) {
  auto proxy = DirectProxy();
  FicusDirEntry entry;
  entry.name = "remote";
  entry.file = FileId{2, 1};
  entry.type = FicusFileType::kRegular;
  entry.alive = true;
  entry.vv.Increment(2);
  ASSERT_TRUE(proxy->ApplyEntry(kRootFileId, entry).ok());
  VersionVector dir_vv;
  dir_vv.Increment(2);
  ASSERT_TRUE(proxy->MergeDirVersion(kRootFileId, dir_vv).ok());
  auto attrs = proxy->GetAttributes(kRootFileId);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->vv.Count(2), 1u);
}

TEST_F(FacadeTest, SymlinksAndOpenCloseThroughProxy) {
  auto proxy = DirectProxy();
  auto link = proxy->CreateChild(kRootFileId, "l", FicusFileType::kSymlink, 0);
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(proxy->WriteLink(*link, "t/arget").ok());
  auto target = proxy->ReadLink(*link);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), "t/arget");
  ASSERT_TRUE(proxy->NoteOpen(*link).ok());
  ASSERT_TRUE(proxy->NoteClose(*link).ok());
  EXPECT_EQ(layer_->stats().opens_noted, 1u);
  EXPECT_EQ(layer_->stats().closes_noted, 1u);
}

TEST_F(FacadeTest, BlockDigestsThroughProxy) {
  auto proxy = DirectProxy();
  auto file = proxy->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> payload(kDeltaBlockSize + 100, 0x3C);
  ASSERT_TRUE(proxy->WriteData(*file, 0, payload).ok());

  auto info = proxy->ReadBlockDigests(*file);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->file_size, payload.size());
  ASSERT_EQ(info->digests.size(), 2u);
  EXPECT_EQ(info->digests[0], BlockDigest(payload.data(), kDeltaBlockSize));
  EXPECT_EQ(info->digests[1], BlockDigest(payload.data() + kDeltaBlockSize, 100));
  // Digests of a directory are refused through the same encoding.
  EXPECT_EQ(proxy->ReadBlockDigests(kRootFileId).status().code(), ErrorCode::kIsDir);
}

TEST_F(FacadeTest, BatchGetAttributesThroughProxy) {
  auto proxy = DirectProxy();
  auto f1 = proxy->CreateChild(kRootFileId, "f1", FicusFileType::kRegular, 0);
  auto f2 = proxy->CreateChild(kRootFileId, "f2", FicusFileType::kRegular, 0);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(proxy->WriteData(*f2, 0, {1}).ok());

  auto rows = proxy->BatchGetAttributes({*f1, *f2, FileId{9, 9}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0].file, *f1);
  ASSERT_TRUE((*rows)[0].status.ok());
  EXPECT_EQ((*rows)[0].attrs.type, FicusFileType::kRegular);
  ASSERT_TRUE((*rows)[1].status.ok());
  EXPECT_EQ((*rows)[1].attrs.vv.Count(1), 2u);  // create + write
  // Per-file errors ride inside the batch instead of failing it.
  EXPECT_EQ((*rows)[2].status.code(), ErrorCode::kNotFound);
}

// The real deployment: proxy -> NFS client -> network -> NFS server ->
// facade -> physical layer. Open/close information survives because it is
// encoded in lookup names, which NFS forwards verbatim.
class FacadeOverNfsTest : public FacadeTest {
 protected:
  FacadeOverNfsTest() : network_(&clock_) {
    server_host_ = network_.AddHost("server");
    client_host_ = network_.AddHost("client");
    server_ = std::make_unique<nfs::NfsServer>(&network_, server_host_, facade_.get());
    // Transport caches off, as the Ficus layers require (section 2.2).
    nfs::ClientConfig config;
    config.attr_cache_ttl = 0;
    config.dnlc_ttl = 0;
    client_ = std::make_unique<nfs::NfsClient>(&network_, client_host_, server_host_,
                                               &clock_, config);
  }

  std::unique_ptr<RemotePhysical> NfsProxy() {
    auto root = client_->Root();
    EXPECT_TRUE(root.ok());
    auto proxy = std::make_unique<RemotePhysical>(root.value());
    EXPECT_TRUE(proxy->Connect().ok());
    return proxy;
  }

  net::Network network_;
  net::HostId server_host_, client_host_;
  std::unique_ptr<nfs::NfsServer> server_;
  std::unique_ptr<nfs::NfsClient> client_;
};

TEST_F(FacadeOverNfsTest, FullApiAcrossTheWire) {
  auto proxy = NfsProxy();
  EXPECT_EQ(proxy->volume_id(), (VolumeId{1, 1}));
  auto file = proxy->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> payload(10000, 0x5A);
  ASSERT_TRUE(proxy->WriteData(*file, 0, payload).ok());
  auto data = proxy->ReadAllData(*file);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), payload);
}

TEST_F(FacadeOverNfsTest, BlockDigestsAndBatchedAttributesAcrossTheWire) {
  auto proxy = NfsProxy();
  auto file = proxy->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> payload(3 * kDeltaBlockSize, 0x7E);
  ASSERT_TRUE(proxy->WriteData(*file, 0, payload).ok());

  auto info = proxy->ReadBlockDigests(*file);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->file_size, payload.size());
  ASSERT_EQ(info->digests.size(), 3u);
  for (uint64_t d : info->digests) {
    EXPECT_EQ(d, BlockDigest(payload.data(), kDeltaBlockSize));
  }

  auto rows = proxy->BatchGetAttributes({*file, FileId{9, 9}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_TRUE((*rows)[0].status.ok());
  EXPECT_EQ((*rows)[1].status.code(), ErrorCode::kNotFound);

  // A ranged read works across the hop too (the delta path's fetch RPC).
  auto piece = proxy->ReadData(*file, kDeltaBlockSize, kDeltaBlockSize);
  ASSERT_TRUE(piece.ok());
  EXPECT_EQ(piece->size(), kDeltaBlockSize);
  EXPECT_EQ((*piece)[0], 0x7E);
}

TEST_F(FacadeOverNfsTest, OpenCloseInformationSurvivesNfs) {
  auto proxy = NfsProxy();
  auto file = proxy->CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  // NoteOpen is carried inside a lookup name; a vnode-level Open would
  // have been silently absorbed by the NFS client.
  ASSERT_TRUE(proxy->NoteOpen(*file).ok());
  EXPECT_EQ(layer_->stats().opens_noted, 1u);
}

TEST_F(FacadeOverNfsTest, CachingTransportReplaysStaleResponses) {
  // The paper's section-2.2 warning, demonstrated: if the NFS hop between
  // Ficus layers runs with its name cache enabled, an identical encoded
  // request within the TTL is answered from the cache — the layer above
  // sees yesterday's attributes. This is exactly why the simulation (and
  // the real system's operators) run the inter-layer transport uncached.
  nfs::ClientConfig caching;
  caching.attr_cache_ttl = 30 * kSecond;
  caching.dnlc_ttl = 30 * kSecond;
  nfs::NfsClient cached_client(&network_, client_host_, server_host_, &clock_, caching);
  auto root = cached_client.Root();
  ASSERT_TRUE(root.ok());
  RemotePhysical proxy(root.value());
  ASSERT_TRUE(proxy.Connect().ok());

  auto file = proxy.CreateChild(kRootFileId, "f", FicusFileType::kRegular, 0);
  ASSERT_TRUE(file.ok());
  auto before = proxy.GetAttributes(*file);
  ASSERT_TRUE(before.ok());

  // A co-resident writer updates the file (vv advances).
  ASSERT_TRUE(layer_->WriteData(*file, 0, {1, 2, 3}).ok());

  auto after = proxy.GetAttributes(*file);
  ASSERT_TRUE(after.ok());
  // The cached transport replays the stale answer...
  EXPECT_TRUE(after->vv == before->vv);
  // ...until the TTL lapses.
  clock_.Advance(31 * kSecond);
  auto fresh = proxy.GetAttributes(*file);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->vv.StrictlyDominates(before->vv));
}

TEST_F(FacadeOverNfsTest, StaleRootRecoveredThroughRefresher) {
  // Build a proxy with a refresher, then restart the NFS server so every
  // handle (including the cached facade root) goes stale. The next call
  // must transparently re-acquire the root and succeed — standard NFS
  // ESTALE recovery.
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  auto refresher = [this]() -> StatusOr<vfs::VnodePtr> {
    client_->ForgetRoot();
    return client_->Root();
  };
  RemotePhysical proxy(root.value(), refresher);
  ASSERT_TRUE(proxy.Connect().ok());
  ASSERT_TRUE(proxy.GetAttributes(kRootFileId).ok());

  server_->FlushHandles();
  client_->InvalidateCaches();

  EXPECT_TRUE(proxy.GetAttributes(kRootFileId).ok());
}

TEST_F(FacadeOverNfsTest, StaleRootWithoutRefresherStaysStale) {
  auto root = client_->Root();
  ASSERT_TRUE(root.ok());
  RemotePhysical proxy(root.value());  // no refresher
  ASSERT_TRUE(proxy.Connect().ok());
  server_->FlushHandles();
  client_->InvalidateCaches();
  EXPECT_EQ(proxy.GetAttributes(kRootFileId).status().code(), ErrorCode::kStale);
}

TEST_F(FacadeOverNfsTest, PartitionSurfacesAsUnreachable) {
  auto proxy = NfsProxy();
  network_.DisconnectPair(client_host_, server_host_);
  EXPECT_EQ(proxy->GetAttributes(kRootFileId).status().code(), ErrorCode::kUnreachable);
  network_.ConnectPair(client_host_, server_host_);
  EXPECT_TRUE(proxy->GetAttributes(kRootFileId).ok());
}

}  // namespace
}  // namespace ficus::repl
