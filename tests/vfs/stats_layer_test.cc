#include "src/vfs/stats_layer.h"

#include <gtest/gtest.h>

#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"

namespace ficus::vfs {
namespace {

class StatsLayerTest : public ::testing::Test {
 protected:
  StatsLayerTest() : stats_(&base_) {}

  MemVfs base_;
  StatsVfs stats_;
  Credentials cred_;
};

TEST_F(StatsLayerTest, CountsEveryOperationKind) {
  ASSERT_TRUE(MkdirAll(&stats_, "d").ok());
  ASSERT_TRUE(WriteFileAt(&stats_, "d/f", "hello").ok());
  ASSERT_TRUE(ReadFileAt(&stats_, "d/f").ok());
  ASSERT_TRUE(RenamePath(&stats_, "d/f", "d/g").ok());
  ASSERT_TRUE(RemovePath(&stats_, "d/g").ok());
  ASSERT_TRUE(RemovePath(&stats_, "d").ok());

  const OpCounters& counters = stats_.counters();
  EXPECT_GT(counters.Calls(VnodeOp::kMkdir), 0u);
  EXPECT_GT(counters.Calls(VnodeOp::kCreate), 0u);
  EXPECT_GT(counters.Calls(VnodeOp::kLookup), 0u);
  EXPECT_GT(counters.Calls(VnodeOp::kWrite), 0u);
  EXPECT_GT(counters.Calls(VnodeOp::kRead), 0u);
  EXPECT_GT(counters.Calls(VnodeOp::kRename), 0u);
  EXPECT_GT(counters.Calls(VnodeOp::kRemove), 0u);
  EXPECT_GT(counters.Calls(VnodeOp::kRmdir), 0u);
  EXPECT_EQ(counters.bytes_written, 5u);
  EXPECT_EQ(counters.bytes_read, 5u);
}

TEST_F(StatsLayerTest, CountsErrorsSeparately) {
  auto root = stats_.Root();
  ASSERT_TRUE(root.ok());
  EXPECT_FALSE((*root)->Lookup("ghost", cred_).ok());
  EXPECT_EQ(stats_.counters().Calls(VnodeOp::kLookup), 1u);
  EXPECT_EQ(stats_.counters().Errors(VnodeOp::kLookup), 1u);
}

TEST_F(StatsLayerTest, ChildVnodesShareCounters) {
  ASSERT_TRUE(MkdirAll(&stats_, "a/b/c").ok());
  uint64_t lookups_before = stats_.counters().Calls(VnodeOp::kLookup);
  ASSERT_TRUE(Exists(&stats_, "a/b/c"));
  // The walk did three lookups through wrapped children.
  EXPECT_EQ(stats_.counters().Calls(VnodeOp::kLookup), lookups_before + 3);
}

TEST_F(StatsLayerTest, ResetClearsCounters) {
  ASSERT_TRUE(WriteFileAt(&stats_, "f", "x").ok());
  EXPECT_GT(stats_.counters().TotalCalls(), 0u);
  stats_.ResetCounters();
  EXPECT_EQ(stats_.counters().TotalCalls(), 0u);
}

TEST_F(StatsLayerTest, ToStringListsNonZeroOps) {
  ASSERT_TRUE(WriteFileAt(&stats_, "f", "abc").ok());
  std::string report = stats_.counters().ToString();
  EXPECT_NE(report.find("write:"), std::string::npos);
  EXPECT_NE(report.find("bytes"), std::string::npos);
  EXPECT_EQ(report.find("rmdir:"), std::string::npos);  // never called
}

TEST_F(StatsLayerTest, TransparentToTheStack) {
  // The layer must not perturb behaviour: same results with and without.
  ASSERT_TRUE(WriteFileAt(&stats_, "f", "payload").ok());
  auto through_stats = ReadFileAt(&stats_, "f");
  auto through_base = ReadFileAt(&base_, "f");
  ASSERT_TRUE(through_stats.ok());
  ASSERT_TRUE(through_base.ok());
  EXPECT_EQ(through_stats.value(), through_base.value());
}

}  // namespace
}  // namespace ficus::vfs
