// OpContext end-to-end: one context minted at the syscall layer rides
// through pass-through layers and across the NFS wire, carrying the
// caller's deadline and trace id. The deadline is honored at any depth —
// a server on the far side of a slow RPC hop refuses expired work — and
// the trace id lets a TraceVfs below the server attribute its spans to
// the client's operation.
#include <gtest/gtest.h>

#include <memory>

#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/pass_through.h"
#include "src/vfs/path_ops.h"
#include "src/vfs/syscalls.h"
#include "src/vfs/trace_layer.h"

namespace ficus::vfs {
namespace {

TEST(OpContextTest, DefaultHasNoDeadline) {
  OpContext ctx;
  EXPECT_FALSE(ctx.HasDeadline());
  EXPECT_FALSE(ctx.DeadlineExpired());
  EXPECT_TRUE(ctx.CheckDeadline("here").ok());
}

TEST(OpContextTest, CheckDeadlineFailsOncePassed) {
  SimClock clock;
  OpContext ctx;
  ctx.clock = &clock;
  ctx.deadline = clock.Now() + 10;
  EXPECT_TRUE(ctx.CheckDeadline("before").ok());
  clock.Advance(11);
  EXPECT_TRUE(ctx.DeadlineExpired());
  Status status = ctx.CheckDeadline("after");
  EXPECT_EQ(status.code(), ErrorCode::kTimedOut);
}

TEST(OpContextTest, ImplicitFromCredentials) {
  Credentials cred{42, 7};
  OpContext ctx = cred;  // every pre-refactor call site relies on this
  EXPECT_EQ(ctx.cred.uid, 42u);
  EXPECT_EQ(ctx.trace, 0u);
}

// Client syscalls -> pass-through layer -> NFS client -> (wire) -> NFS
// server -> exported filesystem.
class OpContextStackTest : public ::testing::Test {
 protected:
  OpContextStackTest() : network_(&clock_), exported_(&clock_) {
    server_host_ = network_.AddHost("server");
    client_host_ = network_.AddHost("client");
    traced_ = std::make_unique<TraceVfs>(&exported_, "server", &registry_);
    server_ = std::make_unique<nfs::NfsServer>(&network_, server_host_, traced_.get(),
                                               nfs::kNfsService, &clock_);
    client_ = std::make_unique<nfs::NfsClient>(&network_, client_host_, server_host_,
                                               &clock_);
    top_ = std::make_unique<PassThroughVfs>(client_.get());
    sys_ = std::make_unique<SyscallInterface>(top_.get(), Credentials{}, &clock_,
                                              &registry_);
  }

  SimClock clock_;
  net::Network network_;
  MemVfs exported_;
  MetricRegistry registry_;
  net::HostId server_host_, client_host_;
  std::unique_ptr<TraceVfs> traced_;
  std::unique_ptr<nfs::NfsServer> server_;
  std::unique_ptr<nfs::NfsClient> client_;
  std::unique_ptr<PassThroughVfs> top_;
  std::unique_ptr<SyscallInterface> sys_;
};

TEST_F(OpContextStackTest, DeadlineHonoredBelowNfsHop) {
  ASSERT_TRUE(WriteFileAt(&exported_, "f", "data").ok());
  // Warm the root handle so the timing below starts at the Lookup RPC.
  ASSERT_TRUE(client_->Root().ok());

  // Each RPC hop costs 1ms of simulated time; a 200µs budget therefore
  // expires in flight, and the *server* must refuse the work.
  network_.set_rpc_latency(kMillisecond);
  sys_->set_op_timeout(200);  // µs
  uint64_t server_errors_before = server_->stats().errors;

  auto attr = sys_->Stat("f");
  ASSERT_FALSE(attr.ok());
  EXPECT_EQ(attr.status().code(), ErrorCode::kTimedOut);
  // The refusal came from the remote side, not a local short-circuit.
  EXPECT_EQ(server_->stats().errors, server_errors_before + 1);
}

TEST_F(OpContextStackTest, GenerousDeadlineSucceeds) {
  ASSERT_TRUE(WriteFileAt(&exported_, "f", "data").ok());
  ASSERT_TRUE(client_->Root().ok());
  sys_->set_op_timeout(10 * kSecond);
  auto attr = sys_->Stat("f");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 4u);
}

TEST_F(OpContextStackTest, NoTimeoutConfiguredNeverExpires) {
  ASSERT_TRUE(WriteFileAt(&exported_, "f", "data").ok());
  // rpc_latency default (1ms) with no timeout: everything succeeds.
  EXPECT_TRUE(sys_->Stat("f").ok());
}

TEST_F(OpContextStackTest, ResolveStopsEarlyWhenBudgetBurns) {
  // Deep path: each component costs one Lookup RPC (1ms). A 1.5ms budget
  // survives the first hop and dies before or at the second — wherever it
  // dies, the caller sees kTimedOut, never a partial success.
  ASSERT_TRUE(MkdirAll(&exported_, "a/b/c").ok());
  ASSERT_TRUE(WriteFileAt(&exported_, "a/b/c/f", "x").ok());
  ASSERT_TRUE(client_->Root().ok());
  sys_->set_op_timeout(kMillisecond + kMillisecond / 2);
  auto attr = sys_->Stat("a/b/c/f");
  ASSERT_FALSE(attr.ok());
  EXPECT_EQ(attr.status().code(), ErrorCode::kTimedOut);
}

TEST_F(OpContextStackTest, TraceIdRidesTheWire) {
  ASSERT_TRUE(WriteFileAt(&exported_, "f", "data").ok());
  ASSERT_TRUE(client_->Root().ok());

  traced_->sink().ClearSpans();
  ASSERT_TRUE(sys_->Stat("f").ok());
  TraceId trace = sys_->last_trace();
  ASSERT_NE(trace, 0u);

  // The server-side trace layer attributed spans to the client's trace id
  // — continuity across the NFS hop.
  std::vector<TraceSpan> spans = traced_->sink().SpansFor(trace);
  ASSERT_FALSE(spans.empty());
  bool saw_lookup = false;
  for (const TraceSpan& span : spans) {
    saw_lookup = saw_lookup || span.op == VnodeOp::kLookup;
  }
  EXPECT_TRUE(saw_lookup);
}

TEST_F(OpContextStackTest, DistinctOpsGetDistinctTraces) {
  ASSERT_TRUE(WriteFileAt(&exported_, "f", "data").ok());
  ASSERT_TRUE(sys_->Stat("f").ok());
  TraceId first = sys_->last_trace();
  client_->InvalidateCaches();
  ASSERT_TRUE(sys_->Stat("f").ok());
  TraceId second = sys_->last_trace();
  EXPECT_NE(first, second);
}

TEST_F(OpContextStackTest, SyscallCountersLandInSharedRegistry) {
  ASSERT_TRUE(WriteFileAt(&exported_, "f", "data").ok());
  uint64_t stats_before = registry_.CounterValue("syscall.stat");
  ASSERT_TRUE(sys_->Stat("f").ok());
  EXPECT_EQ(registry_.CounterValue("syscall.stat"), stats_before + 1);
}

// Purely local trace-layer attribution: two boundaries, one registry.
TEST(TraceLayerTest, PerLayerAttribution) {
  MetricRegistry registry;
  MemVfs mem;
  TraceVfs lower(&mem, "below", &registry);
  TraceVfs upper(&lower, "above", &registry);

  ASSERT_TRUE(WriteFileAt(&upper, "f", "hello").ok());
  ASSERT_TRUE(ReadFileAt(&upper, "f").ok());

  // Every op that crossed the upper boundary also crossed the lower one.
  EXPECT_GT(upper.sink().Calls(VnodeOp::kLookup), 0u);
  EXPECT_EQ(upper.sink().Calls(VnodeOp::kLookup), lower.sink().Calls(VnodeOp::kLookup));
  EXPECT_EQ(upper.sink().Calls(VnodeOp::kWrite), lower.sink().Calls(VnodeOp::kWrite));
  // Time attributed below the upper boundary includes the lower layer's.
  EXPECT_GE(upper.sink().TotalNs(VnodeOp::kWrite), lower.sink().TotalNs(VnodeOp::kWrite));
  // Both boundaries published histograms under their own names.
  EXPECT_NE(registry.FindHistogram("trace.above.write.ns"), nullptr);
  EXPECT_NE(registry.FindHistogram("trace.below.write.ns"), nullptr);
}

}  // namespace
}  // namespace ficus::vfs
