#include "src/vfs/path_ops.h"

#include <gtest/gtest.h>

#include "src/vfs/mem_vfs.h"

namespace ficus::vfs {
namespace {

class PathOpsTest : public ::testing::Test {
 protected:
  MemVfs fs_;
};

TEST_F(PathOpsTest, MkdirAllCreatesChain) {
  ASSERT_TRUE(MkdirAll(&fs_, "a/b/c/d").ok());
  EXPECT_TRUE(Exists(&fs_, "a/b/c/d"));
}

TEST_F(PathOpsTest, MkdirAllIdempotent) {
  ASSERT_TRUE(MkdirAll(&fs_, "a/b").ok());
  ASSERT_TRUE(MkdirAll(&fs_, "a/b/c").ok());
  EXPECT_TRUE(Exists(&fs_, "a/b/c"));
}

TEST_F(PathOpsTest, WriteThenReadFile) {
  ASSERT_TRUE(MkdirAll(&fs_, "dir").ok());
  ASSERT_TRUE(WriteFileAt(&fs_, "dir/file", "payload").ok());
  auto contents = ReadFileAt(&fs_, "dir/file");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "payload");
}

TEST_F(PathOpsTest, WriteTruncatesExisting) {
  ASSERT_TRUE(WriteFileAt(&fs_, "f", "long contents here").ok());
  ASSERT_TRUE(WriteFileAt(&fs_, "f", "short").ok());
  auto contents = ReadFileAt(&fs_, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "short");
}

TEST_F(PathOpsTest, OpenReadCloseMatchesRead) {
  ASSERT_TRUE(WriteFileAt(&fs_, "f", "hello").ok());
  auto contents = OpenReadClose(&fs_, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "hello");
}

TEST_F(PathOpsTest, RemovePathFilesAndDirs) {
  ASSERT_TRUE(MkdirAll(&fs_, "d").ok());
  ASSERT_TRUE(WriteFileAt(&fs_, "d/f", "x").ok());
  ASSERT_TRUE(RemovePath(&fs_, "d/f").ok());
  EXPECT_FALSE(Exists(&fs_, "d/f"));
  ASSERT_TRUE(RemovePath(&fs_, "d").ok());
  EXPECT_FALSE(Exists(&fs_, "d"));
}

TEST_F(PathOpsTest, ListDirShowsEntries) {
  ASSERT_TRUE(MkdirAll(&fs_, "d").ok());
  ASSERT_TRUE(WriteFileAt(&fs_, "d/a", "1").ok());
  ASSERT_TRUE(WriteFileAt(&fs_, "d/b", "2").ok());
  auto entries = ListDir(&fs_, "d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(PathOpsTest, ExistsFalseForMissing) {
  EXPECT_FALSE(Exists(&fs_, "nope"));
  EXPECT_FALSE(Exists(&fs_, "no/pe"));
}

TEST_F(PathOpsTest, RenamePathMoves) {
  ASSERT_TRUE(MkdirAll(&fs_, "a").ok());
  ASSERT_TRUE(MkdirAll(&fs_, "b").ok());
  ASSERT_TRUE(WriteFileAt(&fs_, "a/f", "data").ok());
  ASSERT_TRUE(RenamePath(&fs_, "a/f", "b/g").ok());
  EXPECT_FALSE(Exists(&fs_, "a/f"));
  auto contents = ReadFileAt(&fs_, "b/g");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "data");
}

TEST_F(PathOpsTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadFileAt(&fs_, "ghost").status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace ficus::vfs
