#include "src/vfs/vnode.h"

#include <gtest/gtest.h>

#include "src/vfs/mem_vfs.h"

namespace ficus::vfs {
namespace {

TEST(SplitPathTest, SplitsParentAndLeaf) {
  auto split = SplitPath("a/b/c");
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->first, "a/b");
  EXPECT_EQ(split->second, "c");
}

TEST(SplitPathTest, BareNameHasEmptyParent) {
  auto split = SplitPath("file");
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->first, "");
  EXPECT_EQ(split->second, "file");
}

TEST(SplitPathTest, TrailingSlashesIgnored) {
  auto split = SplitPath("a/b///");
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->first, "a");
  EXPECT_EQ(split->second, "b");
}

TEST(SplitPathTest, EmptyPathFails) {
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("///").ok());
}

class WalkPathTest : public ::testing::Test {
 protected:
  WalkPathTest() {
    auto root = fs_.Root();
    EXPECT_TRUE(root.ok());
    root_ = root.value();
    auto a = root_->Mkdir("a", VAttr{}, cred_);
    EXPECT_TRUE(a.ok());
    auto b = (*a)->Mkdir("b", VAttr{}, cred_);
    EXPECT_TRUE(b.ok());
    EXPECT_TRUE((*b)->Create("c", VAttr{}, cred_).ok());
  }

  MemVfs fs_;
  VnodePtr root_;
  Credentials cred_;
};

TEST_F(WalkPathTest, WalksNestedPath) {
  auto c = WalkPath(root_, "a/b/c", cred_);
  ASSERT_TRUE(c.ok());
  auto attr = (*c)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, VnodeType::kRegular);
}

TEST_F(WalkPathTest, LeadingAndDoubledSlashesOk) {
  EXPECT_TRUE(WalkPath(root_, "/a/b/c", cred_).ok());
  EXPECT_TRUE(WalkPath(root_, "a//b///c", cred_).ok());
}

TEST_F(WalkPathTest, EmptyPathReturnsRoot) {
  auto walked = WalkPath(root_, "", cred_);
  ASSERT_TRUE(walked.ok());
  EXPECT_EQ(walked.value().get(), root_.get());
}

TEST_F(WalkPathTest, DotComponentIsSkipped) {
  EXPECT_TRUE(WalkPath(root_, "a/./b", cred_).ok());
}

TEST_F(WalkPathTest, MissingComponentFails) {
  EXPECT_EQ(WalkPath(root_, "a/zzz/c", cred_).status().code(), ErrorCode::kNotFound);
}

TEST_F(WalkPathTest, OverlongComponentFails) {
  std::string long_name(kMaxComponentLength + 1, 'x');
  EXPECT_EQ(WalkPath(root_, long_name, cred_).status().code(), ErrorCode::kNameTooLong);
}

TEST_F(WalkPathTest, NullRootFails) {
  EXPECT_EQ(WalkPath(nullptr, "a", cred_).status().code(), ErrorCode::kInvalidArgument);
}

// A bare Vnode rejects everything with kNotSupported — layers implement
// only what they serve (streams pass unknown messages on; vnodes must be
// explicit).
TEST(VnodeDefaultsTest, AllDefaultOperationsUnsupported) {
  class Bare : public Vnode {};
  Bare bare;
  Credentials cred;
  std::vector<uint8_t> buf;
  std::string target;
  EXPECT_EQ(bare.GetAttr().status().code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Lookup("x", cred).status().code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Create("x", VAttr{}, cred).status().code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Remove("x", cred).code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Mkdir("x", VAttr{}, cred).status().code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Rmdir("x", cred).code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Readdir(cred).status().code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Read(0, 1, buf, cred).status().code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Write(0, buf, cred).status().code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Open(0, cred).code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Close(0, cred).code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Readlink(cred).status().code(), ErrorCode::kNotSupported);
  EXPECT_EQ(bare.Fsync(cred).code(), ErrorCode::kNotSupported);
}

}  // namespace
}  // namespace ficus::vfs
