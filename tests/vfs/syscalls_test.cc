// The system-call veneer: fd semantics, offsets, symlink resolution, and
// the same veneer working over an in-memory FS, a raw UFS, and a Ficus
// logical layer (the symmetric-interface payoff).
#include "src/vfs/syscalls.h"

#include <gtest/gtest.h>

#include "src/vfs/mem_vfs.h"

namespace ficus::vfs {
namespace {

class SyscallsTest : public ::testing::Test {
 protected:
  SyscallsTest() : sys_(&fs_) {}

  std::vector<uint8_t> Bytes(const std::string& s) {
    return std::vector<uint8_t>(s.begin(), s.end());
  }
  std::string Str(const std::vector<uint8_t>& b) { return std::string(b.begin(), b.end()); }

  MemVfs fs_;
  SyscallInterface sys_;
};

TEST_F(SyscallsTest, OpenCreatWriteReadClose) {
  auto fd = sys_.Open("hello.txt", kWrOnly | kCreat);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.Write(*fd, Bytes("hello ")).ok());
  ASSERT_TRUE(sys_.Write(*fd, Bytes("world")).ok());  // offset advanced
  ASSERT_TRUE(sys_.Close(*fd).ok());

  auto rd = sys_.Open("hello.txt", kRdOnly);
  ASSERT_TRUE(rd.ok());
  std::vector<uint8_t> out;
  auto n = sys_.Read(*rd, out, 100);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(Str(out), "hello world");
  // Second read hits EOF.
  n = sys_.Read(*rd, out, 100);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
  ASSERT_TRUE(sys_.Close(*rd).ok());
  EXPECT_EQ(sys_.open_files(), 0u);
}

TEST_F(SyscallsTest, ExclRefusesExisting) {
  ASSERT_TRUE(sys_.Open("f", kWrOnly | kCreat).ok());
  EXPECT_EQ(sys_.Open("f", kWrOnly | kCreat | kExcl).status().code(), ErrorCode::kExists);
}

TEST_F(SyscallsTest, TruncEmptiesFile) {
  auto fd = sys_.Open("f", kWrOnly | kCreat);
  ASSERT_TRUE(sys_.Write(*fd, Bytes("0123456789")).ok());
  ASSERT_TRUE(sys_.Close(*fd).ok());
  auto fd2 = sys_.Open("f", kWrOnly | kTrunc);
  ASSERT_TRUE(fd2.ok());
  auto attr = sys_.Fstat(*fd2);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 0u);
}

TEST_F(SyscallsTest, AppendAlwaysWritesAtEnd) {
  auto fd = sys_.Open("log", kWrOnly | kCreat);
  ASSERT_TRUE(sys_.Write(*fd, Bytes("line1\n")).ok());
  ASSERT_TRUE(sys_.Close(*fd).ok());
  auto ap = sys_.Open("log", kAppend);
  ASSERT_TRUE(ap.ok());
  ASSERT_TRUE(sys_.Lseek(*ap, 0, Whence::kSet).ok());  // try to rewind...
  ASSERT_TRUE(sys_.Write(*ap, Bytes("line2\n")).ok()); // ...append ignores it
  auto attr = sys_.Fstat(*ap);
  EXPECT_EQ(attr->size, 12u);
}

TEST_F(SyscallsTest, LseekWhenceVariants) {
  auto fd = sys_.Open("f", kRdWr | kCreat);
  ASSERT_TRUE(sys_.Write(*fd, Bytes("0123456789")).ok());
  auto pos = sys_.Lseek(*fd, 2, Whence::kSet);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos.value(), 2u);
  pos = sys_.Lseek(*fd, 3, Whence::kCur);
  EXPECT_EQ(pos.value(), 5u);
  pos = sys_.Lseek(*fd, -4, Whence::kEnd);
  EXPECT_EQ(pos.value(), 6u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(sys_.Read(*fd, out, 2).ok());
  EXPECT_EQ(Str(out), "67");
  EXPECT_FALSE(sys_.Lseek(*fd, -100, Whence::kSet).ok());
}

TEST_F(SyscallsTest, PreadPwriteDontMoveOffset) {
  auto fd = sys_.Open("f", kRdWr | kCreat);
  ASSERT_TRUE(sys_.Write(*fd, Bytes("aaaaaaaa")).ok());
  ASSERT_TRUE(sys_.Pwrite(*fd, 2, Bytes("XX")).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(sys_.Pread(*fd, 0, out, 8).ok());
  EXPECT_EQ(Str(out), "aaXXaaaa");
  // The descriptor offset is still at 8 (after the first Write).
  auto pos = sys_.Lseek(*fd, 0, Whence::kCur);
  EXPECT_EQ(pos.value(), 8u);
}

TEST_F(SyscallsTest, ReadOnWriteOnlyAllowedWriteOnReadOnlyRefused) {
  auto fd = sys_.Open("f", kRdOnly | kCreat);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(sys_.Write(*fd, Bytes("x")).status().code(), ErrorCode::kPermission);
}

TEST_F(SyscallsTest, BadFdRejected) {
  EXPECT_FALSE(sys_.Close(99).ok());
  std::vector<uint8_t> out;
  EXPECT_FALSE(sys_.Read(42, out, 1).ok());
}

TEST_F(SyscallsTest, PathOpsMirrorPosix) {
  ASSERT_TRUE(sys_.Mkdir("dir").ok());
  ASSERT_TRUE(sys_.Open("dir/f", kWrOnly | kCreat).ok());
  ASSERT_TRUE(sys_.Link("dir/f", "dir/g").ok());
  auto attr = sys_.Stat("dir/g");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->nlink, 2u);
  ASSERT_TRUE(sys_.Rename("dir/g", "dir/h").ok());
  ASSERT_TRUE(sys_.Unlink("dir/f").ok());
  ASSERT_TRUE(sys_.Unlink("dir/h").ok());
  ASSERT_TRUE(sys_.Rmdir("dir").ok());
  EXPECT_EQ(sys_.Stat("dir").status().code(), ErrorCode::kNotFound);
}

TEST_F(SyscallsTest, SymlinksFollowedInPaths) {
  ASSERT_TRUE(sys_.Mkdir("real").ok());
  ASSERT_TRUE(sys_.Open("real/data", kWrOnly | kCreat).ok());
  ASSERT_TRUE(sys_.Symlink("real", "alias").ok());
  // Intermediate symlink: alias/data -> real/data.
  auto attr = sys_.Stat("alias/data");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, VnodeType::kRegular);
  // Final-component symlink followed by Stat, not by Lstat.
  ASSERT_TRUE(sys_.Symlink("real/data", "direct").ok());
  EXPECT_EQ(sys_.Stat("direct")->type, VnodeType::kRegular);
  EXPECT_EQ(sys_.Lstat("direct")->type, VnodeType::kSymlink);
  EXPECT_EQ(sys_.Readlink("direct").value(), "real/data");
}

TEST_F(SyscallsTest, SymlinkLoopsDetected) {
  ASSERT_TRUE(sys_.Symlink("b", "a").ok());
  ASSERT_TRUE(sys_.Symlink("a", "b").ok());
  EXPECT_EQ(sys_.Stat("a").status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(SyscallsTest, OpenThroughSymlinkWritesRealFile) {
  ASSERT_TRUE(sys_.Open("real.txt", kWrOnly | kCreat).ok());
  ASSERT_TRUE(sys_.Symlink("real.txt", "ln.txt").ok());
  auto fd = sys_.Open("ln.txt", kWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.Write(*fd, Bytes("via link")).ok());
  auto rd = sys_.Open("real.txt", kRdOnly);
  std::vector<uint8_t> out;
  ASSERT_TRUE(sys_.Read(*rd, out, 100).ok());
  EXPECT_EQ(Str(out), "via link");
}

TEST_F(SyscallsTest, OpenDirectoryForWriteRefused) {
  ASSERT_TRUE(sys_.Mkdir("d").ok());
  EXPECT_EQ(sys_.Open("d", kWrOnly).status().code(), ErrorCode::kIsDir);
  // Read-only opens of directories are fine (for Readdir-style use).
  EXPECT_TRUE(sys_.Open("d", kRdOnly).ok());
}

}  // namespace
}  // namespace ficus::vfs
