#include "src/vfs/pass_through.h"

#include <gtest/gtest.h>

#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"

namespace ficus::vfs {
namespace {

class PassThroughTest : public ::testing::Test {
 protected:
  PassThroughTest() : layered_(&base_) {}

  MemVfs base_;
  PassThroughVfs layered_;
  Credentials cred_;
};

TEST_F(PassThroughTest, OperationsReachTheBase) {
  auto root = layered_.Root();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE((*root)->Create("f", VAttr{}, cred_).ok());
  // Visible through the base directly.
  auto base_root = base_.Root();
  ASSERT_TRUE(base_root.ok());
  EXPECT_TRUE((*base_root)->Lookup("f", cred_).ok());
}

TEST_F(PassThroughTest, LookupWrapsChildren) {
  auto root = layered_.Root();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE((*root)->Mkdir("d", VAttr{}, cred_).ok());
  auto child = (*root)->Lookup("d", cred_);
  ASSERT_TRUE(child.ok());
  EXPECT_NE(dynamic_cast<PassThroughVnode*>(child->get()), nullptr);
}

TEST_F(PassThroughTest, LinkAndRenameUnwrapArguments) {
  auto root = layered_.Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Create("f", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  // Both the target and new-parent vnodes are pass-through wrappers; the
  // layer must hand the base's vnodes to the base.
  ASSERT_TRUE((*root)->Link("g", *file, cred_).ok());
  ASSERT_TRUE((*root)->Mkdir("d", VAttr{}, cred_).ok());
  auto dir = (*root)->Lookup("d", cred_);
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE((*root)->Rename("g", *dir, "h", cred_).ok());
  EXPECT_TRUE(Exists(&layered_, "d/h"));
}

TEST_F(PassThroughTest, DeepStackStillCorrect) {
  // Stack 8 null layers; the filesystem must behave identically.
  auto top = StackNullLayers(&base_, 8);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE((*top)->Mkdir("a", VAttr{}, cred_).ok());
  auto a = (*top)->Lookup("a", cred_);
  ASSERT_TRUE(a.ok());
  auto f = (*a)->Create("f", VAttr{}, cred_);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Write(0, {42}, cred_).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE((*f)->Read(0, 1, out, cred_).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42);
  // And the data is visible at the bottom.
  auto contents = ReadFileAt(&base_, "a/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), std::string(1, '\x2a'));
}

TEST_F(PassThroughTest, GetAttrForwards) {
  auto root = layered_.Root();
  ASSERT_TRUE(root.ok());
  auto attr = (*root)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, VnodeType::kDirectory);
}

TEST_F(PassThroughTest, StatfsForwards) {
  auto stats = layered_.Statfs();
  ASSERT_TRUE(stats.ok());
}

TEST_F(PassThroughTest, StackZeroReturnsBaseRoot) {
  auto top = StackNullLayers(&base_, 0);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(dynamic_cast<PassThroughVnode*>(top->get()), nullptr);
}

}  // namespace
}  // namespace ficus::vfs
