#include "src/vfs/mem_vfs.h"

#include <gtest/gtest.h>

namespace ficus::vfs {
namespace {

class MemVfsTest : public ::testing::Test {
 protected:
  MemVfsTest() : fs_(&clock_) {
    auto root = fs_.Root();
    EXPECT_TRUE(root.ok());
    root_ = root.value();
  }

  SimClock clock_;
  MemVfs fs_;
  VnodePtr root_;
  Credentials cred_;
};

TEST_F(MemVfsTest, CreateAndLookup) {
  auto file = root_->Create("f", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  auto found = root_->Lookup("f", cred_);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().get(), file.value().get());
}

TEST_F(MemVfsTest, WriteExtendsAndReadsBack) {
  auto file = root_->Create("f", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> data = {1, 2, 3};
  ASSERT_TRUE((*file)->Write(5, data, cred_).ok());
  std::vector<uint8_t> out;
  auto n = (*file)->Read(0, 100, out, cred_);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[5], 1);
  EXPECT_EQ(out[7], 3);
}

TEST_F(MemVfsTest, ReadPastEndIsShort) {
  auto file = root_->Create("f", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> out;
  auto n = (*file)->Read(100, 10, out, cred_);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST_F(MemVfsTest, MkdirRmdirLifecycle) {
  ASSERT_TRUE(root_->Mkdir("d", VAttr{}, cred_).ok());
  EXPECT_EQ(root_->Mkdir("d", VAttr{}, cred_).status().code(), ErrorCode::kExists);
  ASSERT_TRUE(root_->Rmdir("d", cred_).ok());
  EXPECT_EQ(root_->Rmdir("d", cred_).code(), ErrorCode::kNotFound);
}

TEST_F(MemVfsTest, RmdirNonEmptyFails) {
  auto dir = root_->Mkdir("d", VAttr{}, cred_);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE((*dir)->Create("child", VAttr{}, cred_).ok());
  EXPECT_EQ(root_->Rmdir("d", cred_).code(), ErrorCode::kNotEmpty);
}

TEST_F(MemVfsTest, InvalidNamesRejected) {
  EXPECT_FALSE(root_->Create("", VAttr{}, cred_).ok());
  EXPECT_FALSE(root_->Create(".", VAttr{}, cred_).ok());
  EXPECT_FALSE(root_->Create("..", VAttr{}, cred_).ok());
  EXPECT_FALSE(root_->Create("a/b", VAttr{}, cred_).ok());
}

TEST_F(MemVfsTest, LinkCountTracksNames) {
  auto file = root_->Create("f", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(root_->Link("g", *file, cred_).ok());
  auto attr = (*file)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->nlink, 2u);
  ASSERT_TRUE(root_->Remove("f", cred_).ok());
  attr = (*file)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->nlink, 1u);
}

TEST_F(MemVfsTest, RenameWithinDirectory) {
  ASSERT_TRUE(root_->Create("old", VAttr{}, cred_).ok());
  ASSERT_TRUE(root_->Rename("old", root_, "new", cred_).ok());
  EXPECT_FALSE(root_->Lookup("old", cred_).ok());
  EXPECT_TRUE(root_->Lookup("new", cred_).ok());
}

TEST_F(MemVfsTest, ReaddirSortedAndComplete) {
  ASSERT_TRUE(root_->Create("b", VAttr{}, cred_).ok());
  ASSERT_TRUE(root_->Create("a", VAttr{}, cred_).ok());
  ASSERT_TRUE(root_->Mkdir("c", VAttr{}, cred_).ok());
  auto entries = root_->Readdir(cred_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "a");
  EXPECT_EQ((*entries)[1].name, "b");
  EXPECT_EQ((*entries)[2].name, "c");
  EXPECT_EQ((*entries)[2].type, VnodeType::kDirectory);
}

TEST_F(MemVfsTest, SymlinkReadlink) {
  ASSERT_TRUE(root_->Symlink("l", "some/where", cred_).ok());
  auto link = root_->Lookup("l", cred_);
  ASSERT_TRUE(link.ok());
  auto target = (*link)->Readlink(cred_);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), "some/where");
}

TEST_F(MemVfsTest, OpenTruncateClearsData) {
  auto file = root_->Create("f", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, {1, 2, 3}, cred_).ok());
  ASSERT_TRUE((*file)->Open(kOpenWrite | kOpenTruncate, cred_).ok());
  auto attr = (*file)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 0u);
}

TEST_F(MemVfsTest, MtimeAdvancesWithClock) {
  auto file = root_->Create("f", VAttr{}, cred_);
  ASSERT_TRUE(file.ok());
  clock_.Advance(5 * kSecond);
  ASSERT_TRUE((*file)->Write(0, {1}, cred_).ok());
  auto attr = (*file)->GetAttr();
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->mtime, 5 * kSecond);
}

TEST_F(MemVfsTest, FileIdsAreUnique) {
  auto a = root_->Create("a", VAttr{}, cred_);
  auto b = root_->Create("b", VAttr{}, cred_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto attr_a = (*a)->GetAttr();
  auto attr_b = (*b)->GetAttr();
  EXPECT_NE(attr_a->fileid, attr_b->fileid);
}

}  // namespace
}  // namespace ficus::vfs
