#include "src/vfs/cipher_layer.h"

#include <gtest/gtest.h>

#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"

namespace ficus::vfs {
namespace {

class CipherLayerTest : public ::testing::Test {
 protected:
  CipherLayerTest() : cipher_(&base_, 0xFEEDFACE) {}

  MemVfs base_;
  CipherVfs cipher_;
  Credentials cred_;
};

TEST_F(CipherLayerTest, RoundTripsThroughTheLayer) {
  ASSERT_TRUE(WriteFileAt(&cipher_, "secret.txt", "attack at dawn").ok());
  auto contents = ReadFileAt(&cipher_, "secret.txt");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "attack at dawn");
}

TEST_F(CipherLayerTest, StorageBelowIsEnciphered) {
  ASSERT_TRUE(WriteFileAt(&cipher_, "secret.txt", "attack at dawn").ok());
  auto raw = ReadFileAt(&base_, "secret.txt");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw.value(), "attack at dawn");
  EXPECT_EQ(raw->size(), 14u);  // same length, different bytes
}

TEST_F(CipherLayerTest, WrongKeyReadsGarbage) {
  ASSERT_TRUE(WriteFileAt(&cipher_, "secret.txt", "attack at dawn").ok());
  CipherVfs wrong(&base_, 0xDEADBEEF);
  auto garbled = ReadFileAt(&wrong, "secret.txt");
  ASSERT_TRUE(garbled.ok());
  EXPECT_NE(garbled.value(), "attack at dawn");
}

TEST_F(CipherLayerTest, RandomOffsetAccessWorks) {
  // Position-independence: write a middle slice, read arbitrary ranges.
  ASSERT_TRUE(WriteFileAt(&cipher_, "f", "0123456789").ok());
  auto root = cipher_.Root();
  ASSERT_TRUE(root.ok());
  auto file = (*root)->Lookup("f", cred_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(3, {'X', 'Y'}, cred_).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE((*file)->Read(2, 4, out, cred_).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "2XY5");
}

TEST_F(CipherLayerTest, IdenticalPlaintextDiffersByOffset) {
  ASSERT_TRUE(WriteFileAt(&cipher_, "f", "aaaaaaaaaaaaaaaa").ok());
  auto raw = ReadFileAt(&base_, "f");
  ASSERT_TRUE(raw.ok());
  // A real keystream: repeated plaintext must not produce repeated
  // ciphertext bytes everywhere.
  bool all_same = true;
  for (char c : raw.value()) {
    if (c != raw.value()[0]) {
      all_same = false;
    }
  }
  EXPECT_FALSE(all_same);
}

TEST_F(CipherLayerTest, ApplyIsAnInvolution) {
  std::vector<uint8_t> data = {1, 2, 3, 200, 250};
  std::vector<uint8_t> original = data;
  CipherApply(7, 100, data);
  EXPECT_NE(data, original);
  CipherApply(7, 100, data);
  EXPECT_EQ(data, original);
}

TEST_F(CipherLayerTest, DirectoryOpsPassThrough) {
  ASSERT_TRUE(MkdirAll(&cipher_, "plain/dir").ok());
  // Names are not enciphered; the base sees them as-is.
  EXPECT_TRUE(Exists(&base_, "plain/dir"));
}

TEST_F(CipherLayerTest, ComposesWithItself) {
  // Two cipher layers with different keys: both must be present (in any
  // consistent configuration) to read the data.
  CipherVfs inner(&base_, 111);
  CipherVfs outer(&inner, 222);
  ASSERT_TRUE(WriteFileAt(&outer, "f", "double wrapped").ok());
  auto through_both = ReadFileAt(&outer, "f");
  ASSERT_TRUE(through_both.ok());
  EXPECT_EQ(through_both.value(), "double wrapped");
  auto through_one = ReadFileAt(&inner, "f");
  ASSERT_TRUE(through_one.ok());
  EXPECT_NE(through_one.value(), "double wrapped");
}

}  // namespace
}  // namespace ficus::vfs
