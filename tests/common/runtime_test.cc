#include "src/common/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace ficus {
namespace {

TEST(InlineExecutorTest, SubmitRunsInlineOnCallingThread) {
  InlineExecutor executor;
  std::thread::id ran_on;
  int order = 0;
  executor.Submit([&] {
    ran_on = std::this_thread::get_id();
    order = 1;
  });
  // The job completed before Submit returned: deterministic mode.
  EXPECT_EQ(order, 1);
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  EXPECT_EQ(executor.concurrency(), 1);
  executor.Drain();  // no-op, must not hang
}

TEST(ThreadPoolExecutorTest, RunsEveryJob) {
  ThreadPoolExecutor pool(4, 16);
  EXPECT_EQ(pool.concurrency(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolExecutorTest, JobsRunOffTheSubmittingThread) {
  ThreadPoolExecutor pool(2, 8);
  std::mutex mu;
  std::set<std::thread::id> seen;
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Drain();
  EXPECT_EQ(seen.count(std::this_thread::get_id()), 0u);
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), 2u);
}

TEST(ThreadPoolExecutorTest, DrainWaitsForInFlightJobs) {
  ThreadPoolExecutor pool(2, 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolExecutorTest, BoundedQueueAppliesBackpressureWithoutDeadlock) {
  // More jobs than queue slots: Submit must block-and-recover, not drop.
  ThreadPoolExecutor pool(1, 2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 50);
}

TEST(RuntimeTest, DeterministicRuntimeHandsOutInlineExecutors) {
  Runtime runtime;  // default: deterministic
  EXPECT_FALSE(runtime.threaded());
  auto executor = runtime.NewExecutor(8);
  EXPECT_EQ(executor->concurrency(), 1);
}

TEST(RuntimeTest, ThreadedRuntimeHandsOutPools) {
  RuntimeOptions options;
  options.mode = RuntimeMode::kThreaded;
  Runtime runtime(options);
  EXPECT_TRUE(runtime.threaded());
  auto executor = runtime.NewExecutor(3);
  EXPECT_EQ(executor->concurrency(), 3);
  std::atomic<int> count{0};
  executor->Submit([&count] { count.fetch_add(1); });
  executor->Drain();
  EXPECT_EQ(count.load(), 1);
}

TEST(RuntimeTest, ModeNames) {
  EXPECT_STREQ(RuntimeModeName(RuntimeMode::kDeterministic), "deterministic");
  EXPECT_STREQ(RuntimeModeName(RuntimeMode::kThreaded), "threaded");
}

}  // namespace
}  // namespace ficus
