#include "src/common/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ficus {
namespace {

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.Advance(5);
  clock.Advance(7);
  EXPECT_EQ(clock.Now(), 12u);
}

TEST(SimClockTest, AdvanceToIsMonotonic) {
  SimClock clock;
  clock.AdvanceTo(100);
  EXPECT_EQ(clock.Now(), 100u);
  clock.AdvanceTo(50);  // going backwards is ignored
  EXPECT_EQ(clock.Now(), 100u);
}

TEST(SimClockTest, AdvanceSaturatesInsteadOfWrapping) {
  SimClock clock;
  clock.AdvanceTo(SimClock::kMaxSimTime - 10);
  clock.Advance(100);  // would wrap around without the saturation guard
  EXPECT_EQ(clock.Now(), SimClock::kMaxSimTime);
  clock.Advance(1);  // already pinned at the end of time
  EXPECT_EQ(clock.Now(), SimClock::kMaxSimTime);
}

TEST(SimClockTest, ConcurrentAdvancesLoseNothing) {
  SimClock clock;
  constexpr int kThreads = 8;
  constexpr int kSteps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < kSteps; ++i) {
        clock.Advance(1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(clock.Now(), static_cast<SimTime>(kThreads) * kSteps);
}

}  // namespace
}  // namespace ficus
