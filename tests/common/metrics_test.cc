// MetricRegistry: the unified home for every subsystem's counters. The
// legacy stats structs (OpCounters, NetworkStats, ClientStats, ...) are
// snapshots of registry cells now; the tests at the bottom pin the two
// views together so neither can drift.
#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"
#include "src/vfs/stats_layer.h"

namespace ficus {
namespace {

TEST(CounterTest, IncrementAddReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, RecordsMoments) {
  Histogram h;
  h.Record(1);
  h.Record(3);
  h.Record(8);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(HistogramTest, Log2Buckets) {
  Histogram h;
  h.Record(0);  // bucket 0
  h.Record(1);  // bucket 0
  h.Record(2);  // bucket 1
  h.Record(3);  // bucket 1
  h.Record(1024);  // bucket 10
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[10], 1u);
}

TEST(MetricRegistryTest, StablePointersAndLookup) {
  MetricRegistry registry;
  Counter* a = registry.counter("x.calls");
  a->Add(7);
  // Second lookup returns the same cell.
  EXPECT_EQ(registry.counter("x.calls"), a);
  EXPECT_EQ(registry.CounterValue("x.calls"), 7u);
  EXPECT_EQ(registry.CounterValue("never.registered"), 0u);
  EXPECT_EQ(registry.FindCounter("never.registered"), nullptr);
}

TEST(MetricRegistryTest, ResetKeepsRegistrations) {
  MetricRegistry registry;
  Counter* c = registry.counter("a");
  Histogram* h = registry.histogram("b");
  c->Add(5);
  h->Record(9);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  // Same cells, still registered.
  EXPECT_EQ(registry.counter("a"), c);
  EXPECT_EQ(registry.histogram("b"), h);
}

TEST(MetricRegistryTest, ToJsonContainsCells) {
  MetricRegistry registry;
  registry.counter("n.c")->Add(3);
  registry.histogram("n.h")->Record(4);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"n.c\":3"), std::string::npos);
  EXPECT_NE(json.find("\"n.h\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricScopeTest, NullScopeIsNoOp) {
  MetricScope scope;
  EXPECT_EQ(scope.registry(), nullptr);
  EXPECT_EQ(scope.counter("x"), nullptr);
  scope.IncrementCounter("x");  // must not crash
  scope.RecordLatency("y", 5);
}

TEST(MetricScopeTest, PrefixesNames) {
  MetricRegistry registry;
  MetricScope scope(&registry, "sub.");
  scope.IncrementCounter("op");
  scope.AddToCounter("op", 2);
  EXPECT_EQ(registry.CounterValue("sub.op"), 3u);
}

TEST(NextTraceIdTest, MonotonicAndNonZero) {
  TraceId a = NextTraceId();
  TraceId b = NextTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_GT(b, a);
}

// --- legacy accessors vs registry cells ---

TEST(LegacyStatsTest, StatsVfsSnapshotMatchesRegistry) {
  MetricRegistry registry;
  vfs::MemVfs mem;
  vfs::StatsVfs stats(&mem, &registry);
  ASSERT_TRUE(vfs::WriteFileAt(&stats, "f", "data").ok());
  ASSERT_TRUE(vfs::ReadFileAt(&stats, "f").ok());

  vfs::OpCounters snapshot = stats.counters();
  EXPECT_GT(snapshot.Calls(vfs::VnodeOp::kLookup), 0u);
  EXPECT_EQ(snapshot.Calls(vfs::VnodeOp::kLookup),
            registry.CounterValue("vfs.stats.lookup.calls"));
  EXPECT_EQ(snapshot.Calls(vfs::VnodeOp::kWrite),
            registry.CounterValue("vfs.stats.write.calls"));
  EXPECT_EQ(snapshot.bytes_written, registry.CounterValue("vfs.stats.bytes_written"));
  EXPECT_EQ(snapshot.bytes_written, 4u);
}

TEST(LegacyStatsTest, NetworkSnapshotMatchesRegistry) {
  MetricRegistry registry;
  net::Network network(nullptr, &registry);
  net::HostId a = network.AddHost("a");
  net::HostId b = network.AddHost("b");
  network.port(b)->RegisterRpcService(
      "echo", [](net::HostId, const net::Payload& request) -> StatusOr<net::Payload> {
        return request;
      });
  ASSERT_TRUE(network.Rpc(a, b, "echo", {1, 2, 3}).ok());
  ASSERT_FALSE(network.Rpc(a, b, "no-such-service", {}).ok());

  net::NetworkStats snapshot = network.stats();
  EXPECT_EQ(snapshot.rpcs_sent, 1u);
  EXPECT_EQ(snapshot.rpcs_failed, 1u);
  EXPECT_EQ(snapshot.rpcs_sent, registry.CounterValue("net.rpcs_sent"));
  EXPECT_EQ(snapshot.rpcs_failed, registry.CounterValue("net.rpcs_failed"));
  EXPECT_EQ(snapshot.rpc_bytes, registry.CounterValue("net.rpc_bytes"));
  EXPECT_EQ(snapshot.rpc_bytes, 6u);  // 3 out + 3 back

  network.ResetStats();
  EXPECT_EQ(network.stats().rpcs_sent, 0u);
  EXPECT_EQ(registry.CounterValue("net.rpcs_sent"), 0u);
}

TEST(LegacyStatsTest, SharedRegistryUnifiesLayers) {
  // One registry can back several subsystems at once; their names are
  // disjoint by the `<subsystem>.` prefix convention.
  MetricRegistry registry;
  vfs::MemVfs mem;
  vfs::StatsVfs stats(&mem, &registry);
  net::Network network(nullptr, &registry);
  (void)vfs::WriteFileAt(&stats, "f", "x");

  std::vector<std::string> names = registry.CounterNames();
  bool has_vfs = false;
  bool has_net = false;
  for (const std::string& name : names) {
    has_vfs = has_vfs || name.rfind("vfs.stats.", 0) == 0;
    has_net = has_net || name.rfind("net.", 0) == 0;
  }
  EXPECT_TRUE(has_vfs);
  EXPECT_TRUE(has_net);
}

}  // namespace
}  // namespace ficus
