#include "src/common/backoff.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace ficus {
namespace {

TEST(BackoffTest, DoublesUpToCap) {
  EXPECT_EQ(BackoffDelay(100, 1000, 0), 100u);
  EXPECT_EQ(BackoffDelay(100, 1000, 1), 200u);
  EXPECT_EQ(BackoffDelay(100, 1000, 2), 400u);
  EXPECT_EQ(BackoffDelay(100, 1000, 3), 800u);
  EXPECT_EQ(BackoffDelay(100, 1000, 4), 1000u);
  EXPECT_EQ(BackoffDelay(100, 1000, 40), 1000u);
}

TEST(BackoffTest, CapIsLiteralSoZeroCapMeansNoDelay) {
  // The propagation daemon's legacy arithmetic: cap == 0 clamps to 0.
  EXPECT_EQ(BackoffDelay(250, 0, 0), 0u);
  EXPECT_EQ(BackoffDelay(250, 0, 7), 0u);
}

TEST(BackoffTest, CapEqualToBaseIsConstantBackoff) {
  // The NFS transport maps an unset cap to cap = base before calling.
  for (uint32_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(BackoffDelay(50, 50, attempt), 50u);
  }
}

TEST(BackoffTest, SaturatesInsteadOfOverflowing) {
  SimTime huge = SimClock::kMaxSimTime - 3;
  EXPECT_EQ(BackoffDelay(huge, SimClock::kMaxSimTime, 1), SimClock::kMaxSimTime);
  EXPECT_EQ(BackoffDelay(1, SimClock::kMaxSimTime, 200), SimClock::kMaxSimTime);
}

TEST(BackoffTest, JitterStaysInEqualJitterWindow) {
  Rng rng(42);
  for (uint32_t attempt = 0; attempt < 8; ++attempt) {
    SimTime b = BackoffDelay(100, 1600, attempt);
    for (int i = 0; i < 50; ++i) {
      SimTime delay = JitteredBackoffDelay(100, 1600, attempt, rng);
      EXPECT_GE(delay, b / 2);
      EXPECT_LE(delay, b);
    }
  }
}

TEST(BackoffTest, JitterDrawsExactlyOneValuePerCall) {
  // Seeded retry sequences must replay exactly, so the draw count is part
  // of the contract: one draw per nonzero delay, none for a zero delay.
  Rng a(7);
  Rng b(7);
  (void)JitteredBackoffDelay(100, 400, 2, a);
  (void)b.NextBelow(1000);
  EXPECT_EQ(a.Next(), b.Next());

  Rng c(9);
  Rng d(9);
  (void)JitteredBackoffDelay(100, 0, 2, c);  // b == 0: no draw
  EXPECT_EQ(c.Next(), d.Next());
}

TEST(BackoffTest, JitterMatchesLegacyNfsFormula) {
  // b/2 + uniform-below(b - b/2 + 1), byte-for-byte what the NFS client
  // used to compute inline.
  Rng ours(1234);
  Rng legacy(1234);
  for (uint32_t attempt = 0; attempt < 6; ++attempt) {
    SimTime got = JitteredBackoffDelay(30, 480, attempt, ours);
    SimTime b = BackoffDelay(30, 480, attempt);
    SimTime want = b / 2 + legacy.NextBelow(b - b / 2 + 1);
    EXPECT_EQ(got, want) << "attempt " << attempt;
  }
}

}  // namespace
}  // namespace ficus
