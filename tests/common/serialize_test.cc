#include "src/common/serialize.h"

#include <gtest/gtest.h>

namespace ficus {
namespace {

TEST(SerializeTest, IntegersRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);

  ByteReader r(buf);
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU16().value(), 0x1234);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, LittleEndianLayout) {
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  w.PutU32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(SerializeTest, StringsRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string(300, 'x'));

  ByteReader r(buf);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_EQ(r.GetString().value(), std::string(300, 'x'));
}

TEST(SerializeTest, BytesRoundTrip) {
  std::vector<uint8_t> payload = {1, 2, 3, 255, 0};
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  w.PutBytes(payload);
  ByteReader r(buf);
  EXPECT_EQ(r.GetBytes().value(), payload);
}

TEST(SerializeTest, TruncatedReadsFailWithCorrupt) {
  std::vector<uint8_t> buf = {0x01};
  ByteReader r16(buf);
  EXPECT_EQ(r16.GetU16().status().code(), ErrorCode::kCorrupt);
  ByteReader r32(buf);
  EXPECT_EQ(r32.GetU32().status().code(), ErrorCode::kCorrupt);
  ByteReader r64(buf);
  EXPECT_EQ(r64.GetU64().status().code(), ErrorCode::kCorrupt);
}

TEST(SerializeTest, TruncatedStringFails) {
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  w.PutString("hello");
  buf.resize(buf.size() - 2);  // chop off part of the body
  ByteReader r(buf);
  EXPECT_EQ(r.GetString().status().code(), ErrorCode::kCorrupt);
}

TEST(SerializeTest, TruncatedByteArrayFails) {
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  w.PutBytes({1, 2, 3, 4});
  buf.resize(buf.size() - 1);
  ByteReader r(buf);
  EXPECT_EQ(r.GetBytes().status().code(), ErrorCode::kCorrupt);
}

TEST(SerializeTest, RemainingTracksCursor) {
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  w.PutU32(1);
  w.PutU32(2);
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  ASSERT_TRUE(r.GetU32().ok());
  EXPECT_EQ(r.remaining(), 4u);
  ASSERT_TRUE(r.GetU32().ok());
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace ficus
