// Concurrency tests for the metric registry: counters, histograms, and
// cell resolution hammered from many threads. Run under the `thread`
// label (and the TSan CI tier, where a data race fails the build).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"

namespace ficus {
namespace {

TEST(MetricsConcurrentTest, CountersLoseNoIncrements) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* cell = registry.counter("stress.count");
      for (int i = 0; i < kIncrements; ++i) {
        cell->Increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.CounterValue("stress.count"),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsConcurrentTest, CellResolutionRacesAreSafe) {
  // Many threads resolving many names at once: the registry must hand
  // back one stable cell per name (pointers stay valid across rehash).
  MetricRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.counter("name." + std::to_string(i % 50))->Increment();
        registry.histogram("hist." + std::to_string(i % 20))->Record(i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(registry.CounterValue("name." + std::to_string(i)),
              static_cast<uint64_t>(kThreads) * 4);
  }
}

TEST(MetricsConcurrentTest, HistogramRecordsLoseNothing) {
  MetricRegistry registry;
  Histogram* hist = registry.histogram("stress.latency");
  constexpr int kThreads = 6;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (int i = 0; i < kRecords; ++i) {
        hist->Record(static_cast<uint64_t>(t) * 1000 + i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kThreads) * kRecords);
}

TEST(MetricsConcurrentTest, TraceIdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kIds = 2000;
  std::vector<std::vector<TraceId>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&per_thread, t] {
      for (int i = 0; i < kIds; ++i) {
        per_thread[static_cast<size_t>(t)].push_back(NextTraceId());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  std::vector<TraceId> all;
  for (const auto& ids : per_thread) {
    all.insert(all.end(), ids.begin(), ids.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate trace id handed out";
}

}  // namespace
}  // namespace ficus
