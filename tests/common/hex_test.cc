#include "src/common/hex.h"

#include <gtest/gtest.h>

namespace ficus {
namespace {

TEST(HexTest, Encode64ZeroPads) {
  EXPECT_EQ(HexEncode64(0), "0000000000000000");
  EXPECT_EQ(HexEncode64(0xDEADBEEFULL), "00000000deadbeef");
  EXPECT_EQ(HexEncode64(UINT64_MAX), "ffffffffffffffff");
}

TEST(HexTest, Encode32ZeroPads) {
  EXPECT_EQ(HexEncode32(0), "00000000");
  EXPECT_EQ(HexEncode32(0xABC), "00000abc");
}

TEST(HexTest, Decode64RoundTrips) {
  for (uint64_t v : std::initializer_list<uint64_t>{0, 1, 0xDEADBEEF, UINT64_MAX,
                                                    0x123456789ABCDEFULL}) {
    auto decoded = HexDecode64(HexEncode64(v));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), v);
  }
}

TEST(HexTest, Decode64AcceptsUpperCase) {
  auto decoded = HexDecode64("DEADBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), 0xDEADBEEFULL);
}

TEST(HexTest, Decode64RejectsGarbage) {
  EXPECT_FALSE(HexDecode64("").ok());
  EXPECT_FALSE(HexDecode64("xyz").ok());
  EXPECT_FALSE(HexDecode64("0123456789abcdef0").ok());  // 17 digits
  EXPECT_FALSE(HexDecode64("12 34").ok());
}

TEST(HexTest, BytesRoundTrip) {
  std::vector<uint8_t> bytes = {0x00, 0xFF, 0x12, 0xAB, 0x7F};
  std::string encoded = HexEncodeBytes(bytes);
  EXPECT_EQ(encoded, "00ff12ab7f");
  auto decoded = HexDecodeBytes(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), bytes);
}

TEST(HexTest, EmptyBytesRoundTrip) {
  auto decoded = HexDecodeBytes(HexEncodeBytes({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(HexTest, BytesRejectsOddLength) { EXPECT_FALSE(HexDecodeBytes("abc").ok()); }

TEST(HexTest, BytesRejectsNonHex) { EXPECT_FALSE(HexDecodeBytes("zz").ok()); }

}  // namespace
}  // namespace ficus
