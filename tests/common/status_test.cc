#include "src/common/status.h"

#include <gtest/gtest.h>

namespace ficus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing.txt");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "missing.txt");
  EXPECT_EQ(status.ToString(), "not found: missing.txt");
}

TEST(StatusTest, EveryConstructorProducesItsCode) {
  EXPECT_EQ(ExistsError("").code(), ErrorCode::kExists);
  EXPECT_EQ(NotDirError("").code(), ErrorCode::kNotDir);
  EXPECT_EQ(IsDirError("").code(), ErrorCode::kIsDir);
  EXPECT_EQ(NotEmptyError("").code(), ErrorCode::kNotEmpty);
  EXPECT_EQ(NoSpaceError("").code(), ErrorCode::kNoSpace);
  EXPECT_EQ(InvalidArgumentError("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(PermissionError("").code(), ErrorCode::kPermission);
  EXPECT_EQ(StaleError("").code(), ErrorCode::kStale);
  EXPECT_EQ(IoError("").code(), ErrorCode::kIo);
  EXPECT_EQ(BusyError("").code(), ErrorCode::kBusy);
  EXPECT_EQ(NameTooLongError("").code(), ErrorCode::kNameTooLong);
  EXPECT_EQ(NotSupportedError("").code(), ErrorCode::kNotSupported);
  EXPECT_EQ(CrossDeviceError("").code(), ErrorCode::kCrossDevice);
  EXPECT_EQ(UnreachableError("").code(), ErrorCode::kUnreachable);
  EXPECT_EQ(TimedOutError("").code(), ErrorCode::kTimedOut);
  EXPECT_EQ(ConflictError("").code(), ErrorCode::kConflict);
  EXPECT_EQ(CorruptError("").code(), ErrorCode::kCorrupt);
  EXPECT_EQ(QuorumDeniedError("").code(), ErrorCode::kQuorumDenied);
  EXPECT_EQ(InternalError("").code(), ErrorCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == ExistsError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  FICUS_ASSIGN_OR_RETURN(int half, Half(x));
  FICUS_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_EQ(Quarter(6).status().code(), ErrorCode::kInvalidArgument);  // 3 is odd
  EXPECT_EQ(Quarter(7).status().code(), ErrorCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status CheckBoth(int a, int b) {
  FICUS_RETURN_IF_ERROR(FailIfNegative(a));
  FICUS_RETURN_IF_ERROR(FailIfNegative(b));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
}

}  // namespace
}  // namespace ficus
