#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace ficus {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBool(0.3)) {
      ++hits;
    }
  }
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewZeroIsUniformish) {
  Rng rng(13);
  std::map<uint64_t, int> counts;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.NextZipf(10, 0.0)];
  }
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.1, 0.02);
  }
}

TEST(RngTest, ZipfSkewConcentratesOnLowRanks) {
  Rng rng(17);
  std::map<uint64_t, int> counts;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.NextZipf(100, 1.2)];
  }
  // Rank 0 must dominate rank 50 heavily.
  EXPECT_GT(counts[0], 20 * (counts.count(50) ? counts[50] : 1));
  // And results must stay in range.
  for (const auto& [rank, count] : counts) {
    EXPECT_LT(rank, 100u);
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

}  // namespace
}  // namespace ficus
