// End-to-end convergence under injected network faults. A two-replica
// volume takes writes on both sides while the network loses, delays, or
// flaps messages; once the faults clear, reconciliation must bring both
// replicas to identical version vectors and contents — and under loss the
// NFS transports must show actual retry work.
//
// Parameterized over the canned FaultPlans so CI can run one scenario per
// matrix leg (ctest -L fault -R Lossy, etc.).
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "src/net/fault.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

constexpr uint64_t kSeed = 20250805;

class FaultInjectionTest : public ::testing::TestWithParam<const char*> {
 protected:
  FaultInjectionTest() {
    HostConfig config;
    // Patience per attempt is small so lost messages cost little sim time;
    // under flapping links kUnreachable is worth retrying too.
    config.transport_retry.rpc_timeout = 20 * kMillisecond;
    config.transport_retry.backoff_base = 10 * kMillisecond;
    config.transport_retry.retry_unreachable = true;
    config.transport_retry.rng_seed = kSeed;
    // Failed propagation pulls age instead of hammering a down peer.
    config.propagation.retry_backoff_base = 250 * kMillisecond;
    a_ = cluster_.AddHost("a", config);
    b_ = cluster_.AddHost("b", config);
    auto volume = cluster_.CreateVolume({a_, b_});
    EXPECT_TRUE(volume.ok());
    volume_ = volume.value();
    auto la = cluster_.MountEverywhere(a_, volume_);
    auto lb = cluster_.MountEverywhere(b_, volume_);
    EXPECT_TRUE(la.ok());
    EXPECT_TRUE(lb.ok());
    la_ = la.value();
    lb_ = lb.value();
  }

  // Collects path -> (version vector, contents) for every live file under
  // `dir`, recursing into directories.
  void CollectState(repl::PhysicalLayer* layer, repl::FileId dir, const std::string& prefix,
                    std::map<std::string, std::string>* out) {
    auto entries = layer->ReadDirectory(dir);
    ASSERT_TRUE(entries.ok());
    for (const auto& entry : *entries) {
      if (!entry.alive) {
        continue;
      }
      auto attrs = layer->GetAttributes(entry.file);
      ASSERT_TRUE(attrs.ok());
      std::string path = prefix + "/" + entry.name;
      std::string state = attrs->vv.ToString();
      if (entry.type == repl::FicusFileType::kDirectory) {
        CollectState(layer, entry.file, path, out);
      } else {
        auto data = layer->ReadAllData(entry.file);
        ASSERT_TRUE(data.ok());
        state += " " + std::string(data->begin(), data->end());
      }
      (*out)[path] = state;
    }
  }

  Cluster cluster_;
  FicusHost* a_ = nullptr;
  FicusHost* b_ = nullptr;
  repl::VolumeId volume_;
  repl::LogicalLayer* la_ = nullptr;
  repl::LogicalLayer* lb_ = nullptr;
};

TEST_P(FaultInjectionTest, ConvergesAfterFaultsClear) {
  cluster_.InstallFaultPlan(net::FaultPlan::Named(GetParam(), kSeed));

  // Ten rounds of two-sided writes while the network misbehaves. Writes
  // are served by each host's local replica, so they always succeed; the
  // cross-host propagation behind them is what the faults chew on.
  // Reconciliation is off during the fault phase — the propagation daemon
  // defers what it cannot pull (and that deferral is under test).
  for (int round = 0; round < 10; ++round) {
    std::string n = std::to_string(round);
    ASSERT_TRUE(vfs::WriteFileAt(la_, "from-a-" + n, "a" + n).ok());
    ASSERT_TRUE(vfs::WriteFileAt(lb_, "from-b-" + n, "b" + n).ok());
    if (round == 4) {
      ASSERT_TRUE(vfs::MkdirAll(la_, "shared").ok());
    }
    if (round > 4) {
      ASSERT_TRUE(vfs::WriteFileAt(la_, "shared/deep-" + n, "d" + n).ok());
    }
    ASSERT_TRUE(
        cluster_.RunFor(kSecond, /*propagation_period=*/250 * kMillisecond,
                        /*reconcile_period=*/0)
            .ok());
  }

  // Heal and converge.
  cluster_.ClearFaults();
  ASSERT_TRUE(cluster_.RunFor(2 * kSecond, 250 * kMillisecond, 0).ok());
  auto rounds = cluster_.ReconcileUntilQuiescent(/*max_rounds=*/16);
  ASSERT_TRUE(rounds.ok());

  repl::PhysicalLayer* pa = a_->registry().LocalReplica(volume_);
  repl::PhysicalLayer* pb = b_->registry().LocalReplica(volume_);
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);

  // Identical version vectors and contents on every file, both replicas.
  std::map<std::string, std::string> state_a, state_b;
  CollectState(pa, repl::kRootFileId, "", &state_a);
  CollectState(pb, repl::kRootFileId, "", &state_b);
  EXPECT_EQ(state_a.size(), 26u);  // 20 round files + shared dir + 5 deep
  EXPECT_EQ(state_a, state_b);

  // The roots themselves agree too.
  auto root_a = pa->GetAttributes(repl::kRootFileId);
  auto root_b = pb->GetAttributes(repl::kRootFileId);
  ASSERT_TRUE(root_a.ok());
  ASSERT_TRUE(root_b.ok());
  EXPECT_EQ(root_a->vv.ToString(), root_b->vv.ToString());

  // The lossy plan must have made the transports actually retry; the
  // other plans may or may not, depending on timing.
  if (std::string(GetParam()) == "Lossy") {
    uint64_t attempts = a_->metrics().CounterValue("nfs.retries.attempts") +
                        b_->metrics().CounterValue("nfs.retries.attempts");
    EXPECT_GT(attempts, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Plans, FaultInjectionTest,
                         ::testing::Values("Lossy", "HighLatency", "Flapping"),
                         [](const ::testing::TestParamInfo<const char*>& param) {
                           return std::string(param.param);
                         });

}  // namespace
}  // namespace ficus::sim
