// Figure 1 top to bottom: the same POSIX-ish program runs unchanged over
// (a) a raw UFS, (b) a replicated Ficus volume, and (c) a Ficus volume
// wrapped in monitoring + encryption layers — the symmetric vnode
// interface is what makes a system-call veneer portable across stacks.
#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/ufs/ufs_vfs.h"
#include "src/vfs/cipher_layer.h"
#include "src/vfs/stats_layer.h"
#include "src/vfs/syscalls.h"

namespace ficus {
namespace {

using vfs::Fd;
using vfs::SyscallInterface;
using vfs::Whence;

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}
std::string Str(const std::vector<uint8_t>& b) { return std::string(b.begin(), b.end()); }

// The "program": builds a small project tree, edits a file through links
// and seeks, and returns the final contents of the main file.
StatusOr<std::string> RunProgram(SyscallInterface& sys) {
  FICUS_RETURN_IF_ERROR(sys.Mkdir("proj"));
  FICUS_RETURN_IF_ERROR(sys.Mkdir("proj/src"));
  FICUS_ASSIGN_OR_RETURN(Fd fd, sys.Open("proj/src/main.c", vfs::kWrOnly | vfs::kCreat));
  FICUS_RETURN_IF_ERROR(sys.Write(fd, Bytes("int main() { return 1; }")).status());
  FICUS_RETURN_IF_ERROR(sys.Close(fd));

  FICUS_RETURN_IF_ERROR(sys.Symlink("proj/src/main.c", "main-link"));
  FICUS_ASSIGN_OR_RETURN(Fd edit, sys.Open("main-link", vfs::kRdWr));
  // Patch the return value in place: seek to the digit and overwrite.
  FICUS_RETURN_IF_ERROR(sys.Lseek(edit, 20, Whence::kSet).status());
  FICUS_RETURN_IF_ERROR(sys.Write(edit, Bytes("0")).status());
  FICUS_RETURN_IF_ERROR(sys.Close(edit));

  FICUS_RETURN_IF_ERROR(sys.Rename("proj/src/main.c", "proj/src/main_v2.c"));
  FICUS_ASSIGN_OR_RETURN(Fd rd, sys.Open("proj/src/main_v2.c", vfs::kRdOnly));
  std::vector<uint8_t> out;
  FICUS_RETURN_IF_ERROR(sys.Read(rd, out, 1024).status());
  FICUS_RETURN_IF_ERROR(sys.Close(rd));
  return Str(out);
}

constexpr char kExpected[] = "int main() { return 0; }";

TEST(SyscallStackTest, OverRawUfs) {
  SimClock clock;
  storage::BlockDevice device(8192);
  storage::BufferCache cache(&device, 256);
  ufs::Ufs ufs(&cache, &clock);
  ASSERT_TRUE(ufs.Format(1024).ok());
  ufs::UfsVfs raw(&ufs);
  SyscallInterface sys(&raw);
  auto result = RunProgram(sys);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value(), kExpected);
  auto problems = ufs.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST(SyscallStackTest, OverReplicatedFicusVolume) {
  sim::Cluster cluster;
  sim::FicusHost* a = cluster.AddHost("a");
  sim::FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  ASSERT_TRUE(volume.ok());
  auto logical = cluster.MountEverywhere(a, *volume);
  ASSERT_TRUE(logical.ok());

  SyscallInterface sys(*logical);
  auto result = RunProgram(sys);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value(), kExpected);

  // And the program's output replicated: host b serves it alone.
  ASSERT_TRUE(cluster.ReconcileUntilQuiescent().ok());
  cluster.Partition({{b}});
  auto logical_b = cluster.MountEverywhere(b, *volume);
  SyscallInterface sys_b(*logical_b);
  auto fd = sys_b.Open("proj/src/main_v2.c", vfs::kRdOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(sys_b.Read(*fd, out, 1024).ok());
  EXPECT_EQ(Str(out), kExpected);
  cluster.Heal();
}

TEST(SyscallStackTest, OverMonitoredEncryptedFicus) {
  sim::Cluster cluster;
  sim::FicusHost* a = cluster.AddHost("a");
  auto volume = cluster.CreateVolume({a});
  ASSERT_TRUE(volume.ok());
  auto logical = cluster.MountEverywhere(a, *volume);
  ASSERT_TRUE(logical.ok());

  // syscalls -> stats -> cipher -> Ficus logical -> physical -> UFS.
  vfs::CipherVfs cipher(*logical, 0xC0FFEE);
  vfs::StatsVfs stats(&cipher);
  SyscallInterface sys(&stats);
  auto result = RunProgram(sys);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value(), kExpected);

  // The measurement layer saw the traffic...
  EXPECT_GT(stats.counters().Calls(vfs::VnodeOp::kWrite), 0u);
  EXPECT_GT(stats.counters().Calls(vfs::VnodeOp::kLookup), 0u);
  // ...and the bytes on the replicated store are enciphered.
  SyscallInterface plain(*logical);
  auto fd = plain.Open("proj/src/main_v2.c", vfs::kRdOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> raw_bytes;
  ASSERT_TRUE(plain.Read(*fd, raw_bytes, 1024).ok());
  EXPECT_NE(Str(raw_bytes), kExpected);
}

}  // namespace
}  // namespace ficus
