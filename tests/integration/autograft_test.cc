// Volumes, graft points, and autografting across the cluster (paper
// section 4): a volume grafted into another volume's name space is
// located and mounted on demand during path translation, pruned when
// idle, and its graft point reconciles like any directory.
#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"
#include "src/vol/graft.h"

namespace ficus::sim {
namespace {

class AutograftTest : public ::testing::Test {
 protected:
  AutograftTest() {
    a_ = cluster_.AddHost("a");
    b_ = cluster_.AddHost("b");
    c_ = cluster_.AddHost("c");
    auto root_volume = cluster_.CreateVolume({a_, b_});
    EXPECT_TRUE(root_volume.ok());
    root_volume_ = root_volume.value();
    auto sub_volume = cluster_.CreateVolume({b_, c_});
    EXPECT_TRUE(sub_volume.ok());
    sub_volume_ = sub_volume.value();
  }

  // Creates /mnt/<name> graft point in the root volume pointing at the
  // sub volume's replicas.
  void CreateGraft(const std::string& name) {
    repl::PhysicalLayer* phys = a_->registry().LocalReplica(root_volume_);
    ASSERT_NE(phys, nullptr);
    vol::GraftPointInfo info;
    info.volume = sub_volume_;
    info.replicas = {{1, b_->id()}, {2, c_->id()}};
    auto graft = vol::WriteGraftPoint(phys, repl::kRootFileId, name, info);
    ASSERT_TRUE(graft.ok());
    ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
  }

  repl::LogicalLayer* Mount(FicusHost* host, const repl::VolumeId& volume) {
    auto logical = cluster_.MountEverywhere(host, volume);
    EXPECT_TRUE(logical.ok());
    return logical.value();
  }

  Cluster cluster_;
  FicusHost* a_;
  FicusHost* b_;
  FicusHost* c_;
  repl::VolumeId root_volume_;
  repl::VolumeId sub_volume_;
};

TEST_F(AutograftTest, PathWalkCrossesGraftPointTransparently) {
  CreateGraft("projects");
  // Populate the sub volume directly.
  auto sub = Mount(b_, sub_volume_);
  ASSERT_TRUE(vfs::WriteFileAt(sub, "hello.txt", "inside the grafted volume").ok());

  // Walk from the ROOT volume through the graft point on host a — host a
  // stores no replica of the sub volume and must autograft via NFS.
  auto root = Mount(a_, root_volume_);
  auto contents = vfs::ReadFileAt(root, "projects/hello.txt");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "inside the grafted volume");
  EXPECT_GE(a_->grafts().grafts_performed(), 1u);
}

TEST_F(AutograftTest, SecondWalkHitsTheGraftTable) {
  CreateGraft("projects");
  auto sub = Mount(b_, sub_volume_);
  ASSERT_TRUE(vfs::WriteFileAt(sub, "f", "x").ok());
  auto root = Mount(a_, root_volume_);
  ASSERT_TRUE(vfs::ReadFileAt(root, "projects/f").ok());
  uint64_t grafted_before = a_->grafts().grafts_performed();
  ASSERT_TRUE(vfs::ReadFileAt(root, "projects/f").ok());
  EXPECT_EQ(a_->grafts().grafts_performed(), grafted_before);  // reused
  EXPECT_GT(a_->grafts().graft_hits(), 0u);
}

TEST_F(AutograftTest, WritesThroughGraftLandInSubVolume) {
  CreateGraft("projects");
  auto root = Mount(a_, root_volume_);
  ASSERT_TRUE(vfs::WriteFileAt(root, "projects/report.txt", "written via graft").ok());
  auto sub = Mount(c_, sub_volume_);
  auto contents = vfs::ReadFileAt(sub, "report.txt");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "written via graft");
}

TEST_F(AutograftTest, GraftSurvivesUnavailableFirstReplica) {
  CreateGraft("projects");
  auto sub = Mount(b_, sub_volume_);
  ASSERT_TRUE(vfs::WriteFileAt(sub, "f", "resilient").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  // Host b (the graft point's first listed site) drops off; autograft on
  // host a must fall through to host c's replica.
  cluster_.network().SetHostUp(b_->id(), false);
  auto root = Mount(a_, root_volume_);
  auto contents = vfs::ReadFileAt(root, "projects/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "resilient");
  cluster_.network().SetHostUp(b_->id(), true);
}

TEST_F(AutograftTest, IdleGraftsPruned) {
  CreateGraft("projects");
  auto sub = Mount(b_, sub_volume_);
  ASSERT_TRUE(vfs::WriteFileAt(sub, "f", "x").ok());
  auto root = Mount(a_, root_volume_);
  ASSERT_TRUE(vfs::ReadFileAt(root, "projects/f").ok());
  size_t grafted = a_->grafts().size();
  EXPECT_GE(grafted, 1u);

  cluster_.Sleep(120 * kSecond);
  int pruned = a_->PruneGrafts(60 * kSecond);
  EXPECT_GT(pruned, 0);
  // The graft quietly comes back on next use.
  ASSERT_TRUE(vfs::ReadFileAt(root, "projects/f").ok());
}

TEST_F(AutograftTest, GraftPointReconcilesLikeADirectory) {
  CreateGraft("projects");
  // Add a replica record on host a's replica of the ROOT volume, while
  // host b is partitioned away; after healing, b sees the new record via
  // plain directory reconciliation (section 4.3 / section 7).
  cluster_.Partition({{a_}, {b_, c_}});
  repl::PhysicalLayer* a_phys = a_->registry().LocalReplica(root_volume_);
  ASSERT_NE(a_phys, nullptr);
  auto entries = a_phys->ReadDirectory(repl::kRootFileId);
  ASSERT_TRUE(entries.ok());
  repl::FileId graft_file;
  for (const auto& e : *entries) {
    if (e.alive && e.name == "projects") {
      graft_file = e.file;
    }
  }
  ASSERT_TRUE(graft_file.valid());
  ASSERT_TRUE(vol::AddGraftReplica(a_phys, graft_file, 3, 99).ok());

  cluster_.Heal();
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  repl::PhysicalLayer* b_phys = b_->registry().LocalReplica(root_volume_);
  ASSERT_NE(b_phys, nullptr);
  auto info = vol::ReadGraftPoint(b_phys, graft_file);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->replicas.size(), 3u);
}

TEST_F(AutograftTest, GraftPointsVisibleAsDirectoriesInListings) {
  CreateGraft("projects");
  auto root = Mount(a_, root_volume_);
  auto listing = vfs::ListDir(root, "");
  ASSERT_TRUE(listing.ok());
  bool found = false;
  for (const auto& e : *listing) {
    if (e.name == "projects") {
      found = true;
      EXPECT_EQ(e.type, vfs::VnodeType::kGraftPoint);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ficus::sim
