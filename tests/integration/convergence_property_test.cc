// The central correctness property of optimistic replication: after any
// sequence of partitioned updates, once the network heals and
// reconciliation runs to quiescence, every replica presents the same
// namespace and the same non-conflicted file contents, and conflicted
// files are flagged identically everywhere.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

struct Scenario {
  uint64_t seed;
  int hosts;
  int rounds;
};

class ConvergenceTest : public ::testing::TestWithParam<Scenario> {};

// Recursively snapshots the namespace: path -> (type, contents or
// "<conflict>" marker for conflicted files).
void Snapshot(vfs::Vfs* fs, const std::string& path,
              std::map<std::string, std::string>& out) {
  auto entries = vfs::ListDir(fs, path);
  ASSERT_TRUE(entries.ok()) << path;
  for (const auto& entry : *entries) {
    std::string child = path.empty() ? entry.name : path + "/" + entry.name;
    if (entry.type == vfs::VnodeType::kDirectory ||
        entry.type == vfs::VnodeType::kGraftPoint) {
      out[child] = "<dir>";
      Snapshot(fs, child, out);
    } else if (entry.type == vfs::VnodeType::kSymlink) {
      out[child] = "<symlink>";
    } else {
      auto contents = vfs::ReadFileAt(fs, child);
      if (contents.ok()) {
        out[child] = contents.value();
      } else if (contents.status().code() == ErrorCode::kConflict) {
        out[child] = "<conflict>";
      } else {
        FAIL() << child << ": " << contents.status().ToString();
      }
    }
  }
}

TEST_P(ConvergenceTest, PartitionedChaosConvergesEverywhere) {
  const Scenario scenario = GetParam();
  Rng rng(SeedFromEnvOr(scenario.seed, "convergence_property"));

  Cluster cluster;
  std::vector<FicusHost*> hosts;
  for (int i = 0; i < scenario.hosts; ++i) {
    hosts.push_back(cluster.AddHost("h" + std::to_string(i)));
  }
  auto volume = cluster.CreateVolume(hosts);
  ASSERT_TRUE(volume.ok());
  std::vector<repl::LogicalLayer*> logicals;
  for (FicusHost* host : hosts) {
    auto logical = cluster.MountEverywhere(host, *volume);
    ASSERT_TRUE(logical.ok());
    logicals.push_back(logical.value());
  }

  // Seed a few shared directories.
  for (int d = 0; d < 3; ++d) {
    ASSERT_TRUE(vfs::MkdirAll(logicals[0], "dir" + std::to_string(d)).ok());
  }
  ASSERT_TRUE(cluster.ReconcileUntilQuiescent(16).ok());

  int file_counter = 0;
  for (int round = 0; round < scenario.rounds; ++round) {
    // Random partition: each host joins group 0 or 1.
    std::vector<FicusHost*> group_a;
    std::vector<FicusHost*> group_b;
    for (FicusHost* host : hosts) {
      (rng.NextBool(0.5) ? group_a : group_b).push_back(host);
    }
    cluster.Partition({group_a, group_b});

    // Each host performs a few random operations against its own mount;
    // failures from unreachability are fine (that host's side may have
    // no replica it can reach is impossible here — every host stores one —
    // but name collisions etc. may refuse).
    for (size_t h = 0; h < hosts.size(); ++h) {
      for (int op = 0; op < 3; ++op) {
        int action = static_cast<int>(rng.NextBelow(10));
        std::string dir = "dir" + std::to_string(rng.NextBelow(3));
        if (action < 5) {
          std::string path =
              dir + "/h" + std::to_string(h) + "_" + std::to_string(file_counter++);
          (void)vfs::WriteFileAt(logicals[h], path,
                                 "host " + std::to_string(h) + " round " +
                                     std::to_string(round));
        } else if (action < 7) {
          // Overwrite a shared name — the conflict generator.
          (void)vfs::WriteFileAt(logicals[h], dir + "/shared",
                                 "host " + std::to_string(h) + " round " +
                                     std::to_string(round));
        } else if (action < 9) {
          auto listing = vfs::ListDir(logicals[h], dir);
          if (listing.ok() && !listing->empty()) {
            size_t victim = rng.NextBelow(listing->size());
            (void)vfs::RemovePath(logicals[h],
                                  dir + "/" + (*listing)[victim].name);
          }
        } else {
          (void)vfs::MkdirAll(
              logicals[h], dir + "/sub" + std::to_string(rng.NextBelow(4)));
        }
      }
    }

    cluster.Heal();
    // Occasionally a host crashes and reboots mid-round: shadow recovery
    // and the fresh NFS handle table must not perturb convergence.
    if (rng.NextBool(0.3)) {
      FicusHost* victim = hosts[rng.NextBelow(hosts.size())];
      victim->Crash();
      ASSERT_TRUE(victim->Reboot().ok());
    }
    ASSERT_TRUE(cluster.ReconcileUntilQuiescent(16).ok());
  }

  // All replicas must present identical namespaces and contents.
  std::map<std::string, std::string> reference;
  Snapshot(logicals[0], "", reference);
  for (size_t h = 1; h < hosts.size(); ++h) {
    std::map<std::string, std::string> view;
    Snapshot(logicals[static_cast<size_t>(h)], "", view);
    EXPECT_EQ(view, reference) << "host " << h << " diverged (seed " << scenario.seed << ")";
  }

  // And every underlying UFS is structurally sound, with every physical
  // layer's Ficus-level invariants intact.
  for (FicusHost* host : hosts) {
    auto problems = host->ufs().Check();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << host->name() << ": " << problems->front();
    for (repl::PhysicalLayer* layer : host->registry().AllLocal()) {
      auto ficus_problems = layer->CheckConsistency();
      ASSERT_TRUE(ficus_problems.ok());
      EXPECT_TRUE(ficus_problems->empty())
          << host->name() << ": " << ficus_problems->front();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Chaos, ConvergenceTest,
                         ::testing::Values(Scenario{101, 2, 3}, Scenario{202, 2, 5},
                                           Scenario{303, 3, 3}, Scenario{404, 3, 5},
                                           Scenario{505, 4, 3}, Scenario{606, 4, 4}));

}  // namespace
}  // namespace ficus::sim
