// Real-concurrency stress: a threaded-runtime cluster with N client
// threads hammering one replicated volume through the syscall veneer
// while eager update notifications kick the propagation workers. The
// assertions are about safety and convergence, not any particular
// interleaving. Runs under the `thread` label and the TSan CI tier.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/cluster.h"
#include "src/vfs/syscalls.h"

namespace ficus {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// Name -> contents of every alive regular file in a replica's root.
StatusOr<std::map<std::string, std::string>> Snapshot(repl::PhysicalLayer* layer) {
  std::map<std::string, std::string> out;
  FICUS_ASSIGN_OR_RETURN(std::vector<repl::FicusDirEntry> entries,
                         layer->ReadDirectory(repl::kRootFileId));
  for (const repl::FicusDirEntry& entry : entries) {
    if (!entry.alive || entry.type != repl::FicusFileType::kRegular) {
      continue;
    }
    FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> data, layer->ReadAllData(entry.file));
    out[entry.name] = std::string(data.begin(), data.end());
  }
  return out;
}

TEST(ThreadStressTest, ConcurrentClientsConvergeToOneCopy) {
  RuntimeOptions options;
  options.mode = RuntimeMode::kThreaded;
  options.nfs_service_threads = 4;
  options.kick_propagation_on_notify = true;

  sim::Cluster cluster(options);
  sim::FicusHost* a = cluster.AddHost("a");
  sim::FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  ASSERT_TRUE(volume.ok()) << volume.status().ToString();
  auto logical_a = cluster.MountEverywhere(a, *volume);
  auto logical_b = cluster.MountEverywhere(b, *volume);
  ASSERT_TRUE(logical_a.ok());
  ASSERT_TRUE(logical_b.ok());

  constexpr int kThreads = 6;
  constexpr int kRounds = 25;
  std::vector<Status> failures(kThreads, OkStatus());
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    vfs::Vfs* fs = (t % 2 == 0) ? *logical_a : *logical_b;
    clients.emplace_back([t, fs, &failures] {
      // Each client gets its own process-like view of the stack.
      vfs::SyscallInterface sys(fs);
      std::string mine = "f" + std::to_string(t);
      for (int round = 0; round < kRounds; ++round) {
        std::string payload = mine + "-round" + std::to_string(round);
        auto fd = sys.Open(mine, vfs::kWrOnly | vfs::kCreat | vfs::kTrunc);
        if (!fd.ok()) {
          failures[static_cast<size_t>(t)] = fd.status();
          return;
        }
        auto wrote = sys.Write(*fd, Bytes(payload));
        if (!wrote.ok()) {
          failures[static_cast<size_t>(t)] = wrote.status();
          return;
        }
        Status closed = sys.Close(*fd);
        if (!closed.ok()) {
          failures[static_cast<size_t>(t)] = closed;
          return;
        }
        // Read-your-writes through the same replica.
        auto rd = sys.Open(mine, vfs::kRdOnly);
        if (!rd.ok()) {
          failures[static_cast<size_t>(t)] = rd.status();
          return;
        }
        std::vector<uint8_t> back;
        auto got = sys.Read(*rd, back, 256);
        (void)sys.Close(*rd);
        if (!got.ok()) {
          failures[static_cast<size_t>(t)] = got.status();
          return;
        }
        if (std::string(back.begin(), back.end()) != payload) {
          failures[static_cast<size_t>(t)] =
              InternalError("read-your-writes violated for " + mine);
          return;
        }
        // And one contended write: every thread updates the shared file,
        // racing replicas on both hosts (conflicts allowed, crashes not).
        (void)sys.Open("shared", vfs::kWrOnly | vfs::kCreat);
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[static_cast<size_t>(t)].ok())
        << "client " << t << ": " << failures[static_cast<size_t>(t)].ToString();
  }

  // Quiesce: scheduled pumps plus reconciliation until no replica changes.
  cluster.Sleep(60 * kSecond);
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(cluster.RunPropagationEverywhere().ok());
    cluster.Sleep(kSecond);
  }
  auto rounds = cluster.ReconcileUntilQuiescent(32);
  ASSERT_TRUE(rounds.ok()) << rounds.status().ToString();

  repl::PhysicalLayer* replica_a = a->registry().LocalReplica(*volume);
  repl::PhysicalLayer* replica_b = b->registry().LocalReplica(*volume);
  ASSERT_NE(replica_a, nullptr);
  ASSERT_NE(replica_b, nullptr);
  auto snap_a = Snapshot(replica_a);
  auto snap_b = Snapshot(replica_b);
  ASSERT_TRUE(snap_a.ok()) << snap_a.status().ToString();
  ASSERT_TRUE(snap_b.ok()) << snap_b.status().ToString();

  // One-copy: both replicas bind the same names to the same bytes.
  EXPECT_EQ(*snap_a, *snap_b);
  // And every client's file survived with its final payload.
  for (int t = 0; t < kThreads; ++t) {
    std::string mine = "f" + std::to_string(t);
    ASSERT_TRUE(snap_a->count(mine) != 0) << mine << " missing after convergence";
    EXPECT_EQ((*snap_a)[mine], mine + "-round" + std::to_string(kRounds - 1));
  }

  // Storage-level invariants held under fire.
  for (sim::FicusHost* host : {a, b}) {
    auto fsck = host->ufs().Check();
    ASSERT_TRUE(fsck.ok());
    EXPECT_TRUE(fsck->empty()) << "ufs inconsistency on " << host->name() << ": "
                               << fsck->front();
  }
}

TEST(ThreadStressTest, ServicePoolHandlesConcurrentRemoteClients) {
  // Clients on host b reach host a's replica across the NFS transport;
  // the server's bounded pool serves them concurrently.
  RuntimeOptions options;
  options.mode = RuntimeMode::kThreaded;
  options.nfs_service_threads = 3;

  sim::Cluster cluster(options);
  sim::FicusHost* a = cluster.AddHost("a");
  sim::FicusHost* b = cluster.AddHost("b");
  // Single replica on a; b mounts it purely remotely.
  auto volume = cluster.CreateVolume({a});
  ASSERT_TRUE(volume.ok());
  auto remote = cluster.MountEverywhere(b, *volume);
  ASSERT_TRUE(remote.ok());

  constexpr int kThreads = 5;
  std::vector<Status> failures(kThreads, OkStatus());
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([t, fs = *remote, &failures] {
      vfs::SyscallInterface sys(fs);
      for (int round = 0; round < 10; ++round) {
        std::string name = "remote-" + std::to_string(t) + "-" + std::to_string(round);
        auto fd = sys.Open(name, vfs::kWrOnly | vfs::kCreat);
        if (!fd.ok()) {
          failures[static_cast<size_t>(t)] = fd.status();
          return;
        }
        auto wrote = sys.Write(*fd, Bytes(name));
        (void)sys.Close(*fd);
        if (!wrote.ok()) {
          failures[static_cast<size_t>(t)] = wrote.status();
          return;
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[static_cast<size_t>(t)].ok())
        << "client " << t << ": " << failures[static_cast<size_t>(t)].ToString();
  }

  // All 50 files landed on a's replica.
  repl::PhysicalLayer* replica = a->registry().LocalReplica(*volume);
  ASSERT_NE(replica, nullptr);
  auto snap = Snapshot(replica);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  int found = 0;
  for (const auto& [name, contents] : *snap) {
    if (name.rfind("remote-", 0) == 0) {
      EXPECT_EQ(contents, name);
      ++found;
    }
  }
  EXPECT_EQ(found, kThreads * 10);
}

}  // namespace
}  // namespace ficus
