// Attribute placement is a per-replica *local* storage decision: one
// volume can mix replicas using auxiliary files (the paper's 1990
// reality) and replicas using extensible inodes (its section-7 future) —
// they must replicate, reconcile, and conflict-detect together.
#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

class MixedPlacementTest : public ::testing::Test {
 protected:
  MixedPlacementTest() {
    HostConfig aux_config;
    aux_config.physical.attr_placement = repl::AttrPlacement::kAuxFile;
    HostConfig inode_config;
    inode_config.physical.attr_placement = repl::AttrPlacement::kInode;
    legacy_ = cluster_.AddHost("legacy-1990", aux_config);
    future_ = cluster_.AddHost("future-s7", inode_config);
    auto volume = cluster_.CreateVolume({legacy_, future_});
    EXPECT_TRUE(volume.ok());
    volume_ = volume.value();
  }

  Cluster cluster_;
  FicusHost* legacy_;
  FicusHost* future_;
  repl::VolumeId volume_;
};

TEST_F(MixedPlacementTest, ReplicationAcrossPlacements) {
  auto fs = cluster_.MountEverywhere(legacy_, volume_);
  ASSERT_TRUE(vfs::MkdirAll(*fs, "shared").ok());
  ASSERT_TRUE(vfs::WriteFileAt(*fs, "shared/doc", "crosses placements").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  cluster_.Partition({{future_}});
  auto fs_future = cluster_.MountEverywhere(future_, volume_);
  auto contents = vfs::ReadFileAt(*fs_future, "shared/doc");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "crosses placements");
  cluster_.Heal();
}

TEST_F(MixedPlacementTest, ReverseDirectionToo) {
  auto fs_future = cluster_.MountEverywhere(future_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_future, "from-future", "inode attrs here").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
  cluster_.Partition({{legacy_}});
  auto fs_legacy = cluster_.MountEverywhere(legacy_, volume_);
  auto contents = vfs::ReadFileAt(*fs_legacy, "from-future");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "inode attrs here");
  cluster_.Heal();
}

TEST_F(MixedPlacementTest, ConflictDetectionAcrossPlacements) {
  auto fs_legacy = cluster_.MountEverywhere(legacy_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_legacy, "doc", "base").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  cluster_.Partition({{legacy_}, {future_}});
  auto fs_future = cluster_.MountEverywhere(future_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_legacy, "doc", "legacy edit").ok());
  ASSERT_TRUE(vfs::WriteFileAt(*fs_future, "doc", "future edit").ok());
  cluster_.Heal();
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  EXPECT_EQ(vfs::ReadFileAt(*fs_legacy, "doc").status().code(), ErrorCode::kConflict);
  EXPECT_EQ(vfs::ReadFileAt(*fs_future, "doc").status().code(), ErrorCode::kConflict);
}

TEST_F(MixedPlacementTest, BothSidesStayConsistent) {
  auto fs = cluster_.MountEverywhere(legacy_, volume_);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(vfs::WriteFileAt(*fs, "f" + std::to_string(i), std::string(i * 50, 'y')).ok());
  }
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
  for (FicusHost* host : {legacy_, future_}) {
    auto ufs_problems = host->ufs().Check();
    ASSERT_TRUE(ufs_problems.ok());
    EXPECT_TRUE(ufs_problems->empty()) << host->name() << ": " << ufs_problems->front();
    for (repl::PhysicalLayer* layer : host->registry().AllLocal()) {
      auto problems = layer->CheckConsistency();
      ASSERT_TRUE(problems.ok());
      EXPECT_TRUE(problems->empty()) << host->name() << ": " << problems->front();
    }
  }
}

}  // namespace
}  // namespace ficus::sim
