// Whole-host crash/reboot cycles across the cluster: the shadow-commit
// recovery sweep, NFS handle-table restart, and reconciliation must
// together bring a crashed host back to full participation with no lost
// or corrupted state.
#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

class CrashRecoveryTest : public ::testing::Test {
 protected:
  CrashRecoveryTest() {
    a_ = cluster_.AddHost("a");
    b_ = cluster_.AddHost("b");
    auto volume = cluster_.CreateVolume({a_, b_});
    EXPECT_TRUE(volume.ok());
    volume_ = volume.value();
  }

  Cluster cluster_;
  FicusHost* a_;
  FicusHost* b_;
  repl::VolumeId volume_;
};

TEST_F(CrashRecoveryTest, CommittedDataSurvivesCrash) {
  auto fs = cluster_.MountEverywhere(a_, volume_);
  ASSERT_TRUE(vfs::MkdirAll(*fs, "dir").ok());
  ASSERT_TRUE(vfs::WriteFileAt(*fs, "dir/f", "durable bytes").ok());

  a_->Crash();
  ASSERT_TRUE(a_->Reboot().ok());

  auto contents = vfs::ReadFileAt(*fs, "dir/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "durable bytes");
  auto problems = a_->ufs().Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(CrashRecoveryTest, WritesAfterCrashPointAreLostButStateIsSane) {
  auto fs = cluster_.MountEverywhere(a_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs, "before", "persisted").ok());

  a_->Crash();
  // These writes appear to succeed locally but never reach the platter —
  // and the network is down, so no notification escapes either.
  (void)vfs::WriteFileAt(*fs, "during", "lost");

  ASSERT_TRUE(a_->Reboot().ok());
  EXPECT_TRUE(vfs::Exists(*fs, "before"));
  EXPECT_FALSE(vfs::Exists(*fs, "during"));
  for (repl::PhysicalLayer* layer : a_->registry().AllLocal()) {
    auto problems = layer->CheckConsistency();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << problems->front();
  }
}

TEST_F(CrashRecoveryTest, PeerUpdatesFlowAfterReboot) {
  auto fs_a = cluster_.MountEverywhere(a_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_a, "f", "v1").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  // a crashes; b keeps working (one-copy availability).
  a_->Crash();
  auto fs_b = cluster_.MountEverywhere(b_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_b, "f", "v2-during-outage").ok());
  ASSERT_TRUE(vfs::WriteFileAt(*fs_b, "new-file", "made while a slept").ok());

  ASSERT_TRUE(a_->Reboot().ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  // a serves the outage-time updates from its own replica.
  cluster_.Partition({{a_}});
  auto contents = vfs::ReadFileAt(*fs_a, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "v2-during-outage");
  EXPECT_TRUE(vfs::Exists(*fs_a, "new-file"));
  cluster_.Heal();
}

TEST_F(CrashRecoveryTest, RemoteProxiesRecoverFromServerReboot) {
  // Host c stores nothing and reaches the volume purely over NFS; after
  // the serving host reboots (fresh handle table), c's cached proxies
  // must recover via ESTALE refresh.
  FicusHost* c = cluster_.AddHost("c");
  auto fs_a = cluster_.MountEverywhere(a_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_a, "f", "served remotely").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  auto fs_c = cluster_.MountEverywhere(c, volume_);
  ASSERT_TRUE(vfs::ReadFileAt(*fs_c, "f").ok());  // proxies now cached

  a_->Crash();
  ASSERT_TRUE(a_->Reboot().ok());
  b_->Crash();
  ASSERT_TRUE(b_->Reboot().ok());

  auto contents = vfs::ReadFileAt(*fs_c, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "served remotely");
}

TEST_F(CrashRecoveryTest, RepeatedCrashCyclesStayConsistent) {
  auto fs_a = cluster_.MountEverywhere(a_, volume_);
  auto fs_b = cluster_.MountEverywhere(b_, volume_);
  for (int cycle = 0; cycle < 4; ++cycle) {
    ASSERT_TRUE(
        vfs::WriteFileAt(*fs_a, "a" + std::to_string(cycle), "from a").ok());
    ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
    a_->Crash();
    ASSERT_TRUE(
        vfs::WriteFileAt(*fs_b, "b" + std::to_string(cycle), "while a down").ok());
    ASSERT_TRUE(a_->Reboot().ok());
    ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
  }
  // Everything written before any crash or by the survivor exists on both.
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (auto* fs : {*fs_a, *fs_b}) {
      EXPECT_TRUE(vfs::Exists(fs, "a" + std::to_string(cycle))) << cycle;
      EXPECT_TRUE(vfs::Exists(fs, "b" + std::to_string(cycle))) << cycle;
    }
  }
  for (FicusHost* host : {a_, b_}) {
    auto problems = host->ufs().Check();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << host->name() << ": " << problems->front();
  }
}

}  // namespace
}  // namespace ficus::sim
