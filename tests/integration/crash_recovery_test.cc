// Whole-host crash/reboot cycles across the cluster: the shadow-commit
// recovery sweep, NFS handle-table restart, and reconciliation must
// together bring a crashed host back to full participation with no lost
// or corrupted state.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/repl/physical.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

class CrashRecoveryTest : public ::testing::Test {
 protected:
  CrashRecoveryTest() {
    a_ = cluster_.AddHost("a");
    b_ = cluster_.AddHost("b");
    auto volume = cluster_.CreateVolume({a_, b_});
    EXPECT_TRUE(volume.ok());
    volume_ = volume.value();
  }

  Cluster cluster_;
  FicusHost* a_;
  FicusHost* b_;
  repl::VolumeId volume_;
};

TEST_F(CrashRecoveryTest, CommittedDataSurvivesCrash) {
  auto fs = cluster_.MountEverywhere(a_, volume_);
  ASSERT_TRUE(vfs::MkdirAll(*fs, "dir").ok());
  ASSERT_TRUE(vfs::WriteFileAt(*fs, "dir/f", "durable bytes").ok());

  a_->Crash();
  ASSERT_TRUE(a_->Reboot().ok());

  auto contents = vfs::ReadFileAt(*fs, "dir/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "durable bytes");
  auto problems = a_->ufs().Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(CrashRecoveryTest, WritesAfterCrashPointAreLostButStateIsSane) {
  auto fs = cluster_.MountEverywhere(a_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs, "before", "persisted").ok());

  a_->Crash();
  // These writes appear to succeed locally but never reach the platter —
  // and the network is down, so no notification escapes either.
  (void)vfs::WriteFileAt(*fs, "during", "lost");

  ASSERT_TRUE(a_->Reboot().ok());
  EXPECT_TRUE(vfs::Exists(*fs, "before"));
  EXPECT_FALSE(vfs::Exists(*fs, "during"));
  for (repl::PhysicalLayer* layer : a_->registry().AllLocal()) {
    auto problems = layer->CheckConsistency();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << problems->front();
  }
}

TEST_F(CrashRecoveryTest, PeerUpdatesFlowAfterReboot) {
  auto fs_a = cluster_.MountEverywhere(a_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_a, "f", "v1").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  // a crashes; b keeps working (one-copy availability).
  a_->Crash();
  auto fs_b = cluster_.MountEverywhere(b_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_b, "f", "v2-during-outage").ok());
  ASSERT_TRUE(vfs::WriteFileAt(*fs_b, "new-file", "made while a slept").ok());

  ASSERT_TRUE(a_->Reboot().ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  // a serves the outage-time updates from its own replica.
  cluster_.Partition({{a_}});
  auto contents = vfs::ReadFileAt(*fs_a, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "v2-during-outage");
  EXPECT_TRUE(vfs::Exists(*fs_a, "new-file"));
  cluster_.Heal();
}

TEST_F(CrashRecoveryTest, RemoteProxiesRecoverFromServerReboot) {
  // Host c stores nothing and reaches the volume purely over NFS; after
  // the serving host reboots (fresh handle table), c's cached proxies
  // must recover via ESTALE refresh.
  FicusHost* c = cluster_.AddHost("c");
  auto fs_a = cluster_.MountEverywhere(a_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_a, "f", "served remotely").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  auto fs_c = cluster_.MountEverywhere(c, volume_);
  ASSERT_TRUE(vfs::ReadFileAt(*fs_c, "f").ok());  // proxies now cached

  a_->Crash();
  ASSERT_TRUE(a_->Reboot().ok());
  b_->Crash();
  ASSERT_TRUE(b_->Reboot().ok());

  auto contents = vfs::ReadFileAt(*fs_c, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "served remotely");
}

TEST_F(CrashRecoveryTest, RepeatedCrashCyclesStayConsistent) {
  auto fs_a = cluster_.MountEverywhere(a_, volume_);
  auto fs_b = cluster_.MountEverywhere(b_, volume_);
  for (int cycle = 0; cycle < 4; ++cycle) {
    ASSERT_TRUE(
        vfs::WriteFileAt(*fs_a, "a" + std::to_string(cycle), "from a").ok());
    ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
    a_->Crash();
    ASSERT_TRUE(
        vfs::WriteFileAt(*fs_b, "b" + std::to_string(cycle), "while a down").ok());
    ASSERT_TRUE(a_->Reboot().ok());
    ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
  }
  // Everything written before any crash or by the survivor exists on both.
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (auto* fs : {*fs_a, *fs_b}) {
      EXPECT_TRUE(vfs::Exists(fs, "a" + std::to_string(cycle))) << cycle;
      EXPECT_TRUE(vfs::Exists(fs, "b" + std::to_string(cycle))) << cycle;
    }
  }
  for (FicusHost* host : {a_, b_}) {
    auto problems = host->ufs().Check();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << host->name() << ": " << problems->front();
  }
}

const char* CrashPointName(repl::CommitCrashPoint point) {
  switch (point) {
    case repl::CommitCrashPoint::kAfterShadowCreate: return "AfterShadowCreate";
    case repl::CommitCrashPoint::kAfterShadowWrite: return "AfterShadowWrite";
    case repl::CommitCrashPoint::kAfterAttrStage: return "AfterAttrStage";
    case repl::CommitCrashPoint::kAfterRepoint: return "AfterRepoint";
    case repl::CommitCrashPoint::kAfterShadowUnlink: return "AfterShadowUnlink";
    case repl::CommitCrashPoint::kAfterFreeInode: return "AfterFreeInode";
    case repl::CommitCrashPoint::kAfterDeltaDataWrite: return "AfterDeltaDataWrite";
    case repl::CommitCrashPoint::kAfterJournalStage: return "AfterJournalStage";
    case repl::CommitCrashPoint::kAfterJournalSeal: return "AfterJournalSeal";
    case repl::CommitCrashPoint::kAfterJournalApply: return "AfterJournalApply";
    case repl::CommitCrashPoint::kAfterJournalClear: return "AfterJournalClear";
  }
  return "Unknown";
}

// Crash-point matrix over both commit paths: host b's install of a peer
// update is cut at every write point of InstallVersion (via the
// PhysicalOptions::crash_point hook), b then crashes and reboots, and
// recovery must leave no shadow residue, a quiescent journal, a clean
// UFS, consistent replica metadata, and exactly the pre- or post-commit
// contents — never a torn file. The shadow instantiation leaves the
// delta gates at their defaults (tiny payloads stay on the shadow path);
// the delta instantiation drops the gates to zero so the same install
// takes the journal-backed block-remap path.
class ShadowCommitCrashTest
    : public ::testing::TestWithParam<repl::CommitCrashPoint> {
 protected:
  static constexpr int kDisarmed = -1;

  explicit ShadowCommitCrashTest(bool delta_commit = false) {
    a_ = cluster_.AddHost("a");
    HostConfig config;
    // Fires once at the parameterized point, then disarms so reboot
    // recovery and later reinstalls run unimpeded. The armed state lives
    // behind a shared_ptr because Reboot() rebuilds the physical layer
    // from a copy of this config.
    config.physical.crash_point = [armed = armed_](repl::CommitCrashPoint p) {
      if (*armed != static_cast<int>(p)) return false;
      *armed = kDisarmed;
      return true;
    };
    if (delta_commit) {
      config.physical.commit_min_bytes = 0;
      config.physical.commit_max_dirty_frac = 1.0;
    }
    b_ = cluster_.AddHost("b", config);
    auto volume = cluster_.CreateVolume({a_, b_});
    EXPECT_TRUE(volume.ok());
    volume_ = volume.value();
  }

  // b's local copy of root entry `name`, read with no network involved.
  std::string LocalContentsAtB(const std::string& name) {
    repl::PhysicalLayer* physical = b_->registry().LocalReplica(volume_);
    if (physical == nullptr) {
      ADD_FAILURE() << "b stores no replica of the volume";
      return "";
    }
    auto entries = physical->ReadDirectory(repl::kRootFileId);
    if (!entries.ok()) {
      ADD_FAILURE() << entries.status().ToString();
      return "";
    }
    for (const repl::FicusDirEntry& entry : entries.value()) {
      if (entry.name != name || !entry.alive) continue;
      auto contents = physical->ReadAllData(entry.file);
      if (!contents.ok()) {
        ADD_FAILURE() << contents.status().ToString();
        return "";
      }
      return std::string(contents->begin(), contents->end());
    }
    ADD_FAILURE() << "no live entry '" << name << "' in b's root";
    return "";
  }

  void ExpectNoShadowResidue(ufs::InodeNum dir, const std::string& prefix) {
    auto entries = b_->ufs().DirList(dir);
    ASSERT_TRUE(entries.ok()) << entries.status().ToString();
    for (const ufs::UfsDirEntry& entry : entries.value()) {
      std::string path = prefix + "/" + entry.name;
      EXPECT_FALSE(entry.name.size() > 7 &&
                   entry.name.substr(entry.name.size() - 7) == ".shadow")
          << "shadow residue survived recovery: " << path;
      if (entry.type == ufs::FileType::kDirectory) {
        ExpectNoShadowResidue(entry.ino, path);
      }
    }
  }

  // The shared crash-reboot-verify cycle. `commit_point` is the first
  // crash point (in enum order within the exercised path) at or after
  // which the new version must survive the reboot.
  void RunMatrix(repl::CommitCrashPoint commit_point) {
    auto fs_a = cluster_.MountEverywhere(a_, volume_);
    ASSERT_TRUE(vfs::WriteFileAt(*fs_a, "f", "v1").ok());
    ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

    // v2 must land on a's replica only: partition a alone so update
    // selection cannot route the write to b.
    cluster_.Partition({{a_}});
    ASSERT_TRUE(vfs::WriteFileAt(*fs_a, "f", "v2").ok());
    cluster_.Heal();

    *armed_ = static_cast<int>(GetParam());
    // b pulls v2 from a and the install dies at the armed point; the error
    // aborts the pull, leaving exactly the crash-point disk image.
    Status pull = b_->RunReconciliation();
    EXPECT_FALSE(pull.ok()) << "the interrupted install must surface an error";
    ASSERT_EQ(*armed_, kDisarmed)
        << "the crash point never fired (wrong commit path taken?)";

    b_->Crash();
    ASSERT_TRUE(b_->Reboot().ok());

    ExpectNoShadowResidue(ufs::kRootInode, "");
    auto fsck = b_->ufs().Check();
    ASSERT_TRUE(fsck.ok());
    EXPECT_TRUE(fsck->empty()) << fsck->front();
    for (repl::PhysicalLayer* layer : b_->registry().AllLocal()) {
      auto problems = layer->CheckConsistency();
      ASSERT_TRUE(problems.ok());
      EXPECT_TRUE(problems->empty()) << problems->front();
    }

    // Atomicity: before the commit point b still serves v1 intact, from
    // the commit point onward it serves v2 — never a torn or empty file.
    std::string contents = LocalContentsAtB("f");
    if (GetParam() < commit_point) {
      EXPECT_EQ(contents, "v1");
    } else {
      EXPECT_EQ(contents, "v2");
    }

    // With the hook disarmed, reconciliation finishes the interrupted (or
    // unacknowledged) install and the cluster converges on v2.
    ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
    EXPECT_EQ(LocalContentsAtB("f"), "v2");
  }

  std::shared_ptr<int> armed_ = std::make_shared<int>(kDisarmed);
  Cluster cluster_;
  FicusHost* a_;
  FicusHost* b_;
  repl::VolumeId volume_;
};

TEST_P(ShadowCommitCrashTest, RecoveryIsCleanAtEveryWritePoint) {
  RunMatrix(repl::CommitCrashPoint::kAfterRepoint);
}

INSTANTIATE_TEST_SUITE_P(
    AllWritePoints, ShadowCommitCrashTest,
    ::testing::Values(repl::CommitCrashPoint::kAfterShadowCreate,
                      repl::CommitCrashPoint::kAfterShadowWrite,
                      repl::CommitCrashPoint::kAfterAttrStage,
                      repl::CommitCrashPoint::kAfterRepoint,
                      repl::CommitCrashPoint::kAfterShadowUnlink,
                      repl::CommitCrashPoint::kAfterFreeInode),
    [](const ::testing::TestParamInfo<repl::CommitCrashPoint>& point) {
      return CrashPointName(point.param);
    });

// Same matrix through the journal-backed block-remap commit: with the
// delta gates dropped to zero, b's install of v2 swings only the dirty
// block, and a crash at every journal write point must resolve to the
// complete old or complete new file after reboot (sealing is the commit
// point; recovery replays sealed intents and discards unsealed ones).
class DeltaCommitCrashTest : public ShadowCommitCrashTest {
 protected:
  DeltaCommitCrashTest() : ShadowCommitCrashTest(/*delta_commit=*/true) {}
};

TEST_P(DeltaCommitCrashTest, RecoveryIsCleanAtEveryJournalPoint) {
  RunMatrix(repl::CommitCrashPoint::kAfterJournalSeal);

  // A crash between seal and clear leaves a sealed intent on disk; the
  // reboot's Attach must have replayed it (counted once per replay).
  if (GetParam() == repl::CommitCrashPoint::kAfterJournalSeal ||
      GetParam() == repl::CommitCrashPoint::kAfterJournalApply) {
    repl::PhysicalLayer* physical = b_->registry().LocalReplica(volume_);
    ASSERT_NE(physical, nullptr);
    EXPECT_GE(physical->stats().journal_replays, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllJournalPoints, DeltaCommitCrashTest,
    ::testing::Values(repl::CommitCrashPoint::kAfterDeltaDataWrite,
                      repl::CommitCrashPoint::kAfterJournalStage,
                      repl::CommitCrashPoint::kAfterJournalSeal,
                      repl::CommitCrashPoint::kAfterJournalApply,
                      repl::CommitCrashPoint::kAfterJournalClear),
    [](const ::testing::TestParamInfo<repl::CommitCrashPoint>& point) {
      return CrashPointName(point.param);
    });

}  // namespace
}  // namespace ficus::sim
