// Delta update propagation, end to end: a one-block edit to a large file
// must converge byte-identically across hosts while moving a small
// fraction of the whole-file transfer's payload — including when the
// network between the hosts is losing or delaying messages.
//
// Parameterized over the same canned FaultPlans as fault_injection_test
// so the fault CI legs (ctest -L fault -R Lossy / HighLatency) pick up
// one scenario each.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/fault.h"
#include "src/repl/physical_api.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

constexpr uint64_t kSeed = 20250805;
constexpr size_t kBigFileSize = 256 * 1024;

HostConfig FaultTolerantConfig(bool delta_enabled) {
  HostConfig config;
  config.transport_retry.rpc_timeout = 20 * kMillisecond;
  config.transport_retry.backoff_base = 10 * kMillisecond;
  config.transport_retry.retry_unreachable = true;
  config.transport_retry.rng_seed = kSeed;
  config.propagation.retry_backoff_base = 250 * kMillisecond;
  config.propagation.delta_enabled = delta_enabled;
  if (!delta_enabled) {
    // The legacy leg measures the pre-delta world end to end: whole-file
    // fetch AND whole-file shadow commit (the delta *commit* would
    // otherwise kick in locally even for a whole-file pull, since the
    // dirty set is diffed locally).
    config.physical.commit_min_bytes = ~0ull;
  }
  return config;
}

struct EditRun {
  uint64_t bytes_pulled = 0;          // payload the edit's propagation moved
  uint64_t apply_bytes = 0;           // local device bytes the install wrote
  std::vector<uint8_t> converged;     // host b's copy after convergence
  std::vector<uint8_t> expected;      // host a's authoritative contents
};

// Seeds a kBigFileSize file on host a, converges host b over a perfect
// network, edits ONE 4 KiB block, then makes b pull the edit while `plan`
// mistreats the wire.
EditRun RunFaultedEdit(const char* plan, bool delta_enabled) {
  EditRun run;
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a", FaultTolerantConfig(delta_enabled));
  FicusHost* b = cluster.AddHost("b", FaultTolerantConfig(delta_enabled));
  auto volume = cluster.CreateVolume({a, b});
  EXPECT_TRUE(volume.ok());
  auto la = cluster.MountEverywhere(a, *volume);
  EXPECT_TRUE(la.ok());

  std::string contents(kBigFileSize, 'x');
  EXPECT_TRUE(vfs::WriteFileAt(*la, "big", contents).ok());
  EXPECT_TRUE(b->RunPropagation().ok());

  uint64_t bytes_before = 0;
  uint64_t apply_before = 0;
  if (auto stats = b->propagation_stats(*volume); stats.has_value()) {
    bytes_before = stats->bytes_pulled;
    apply_before = stats->apply_bytes_written;
  }
  EXPECT_EQ(bytes_before, kBigFileSize);  // seeding really went whole-file

  // The edit's update notification rides the still-perfect network so both
  // modes start from identical pending state; the faults are installed
  // before any pull RPC happens.
  const size_t edit_at = (kBigFileSize / repl::kDeltaBlockSize / 2) * repl::kDeltaBlockSize;
  for (size_t i = 0; i < repl::kDeltaBlockSize; ++i) {
    contents[edit_at + i] = 'y';
  }
  EXPECT_TRUE(vfs::WriteFileAt(*la, "big", contents).ok());
  cluster.InstallFaultPlan(net::FaultPlan::Named(plan, kSeed));

  repl::PhysicalLayer* pb = b->registry().LocalReplica(*volume);
  EXPECT_NE(pb, nullptr);
  for (int i = 0; i < 40 && pb->PendingVersionCount() != 0; ++i) {
    (void)b->RunPropagation();
    cluster.Sleep(250 * kMillisecond);
  }
  cluster.ClearFaults();
  (void)b->RunPropagation();
  EXPECT_EQ(pb->PendingVersionCount(), 0u);

  if (auto stats = b->propagation_stats(*volume); stats.has_value()) {
    run.bytes_pulled = stats->bytes_pulled - bytes_before;
    run.apply_bytes = stats->apply_bytes_written - apply_before;
  }
  repl::PhysicalLayer* pa = a->registry().LocalReplica(*volume);
  EXPECT_NE(pa, nullptr);
  repl::FileId file;
  auto entries = pa->ReadDirectory(repl::kRootFileId);
  EXPECT_TRUE(entries.ok());
  for (const auto& entry : *entries) {
    if (entry.name == "big") {
      file = entry.file;
    }
  }
  auto got = pb->ReadAllData(file);
  auto want = pa->ReadAllData(file);
  EXPECT_TRUE(got.ok());
  EXPECT_TRUE(want.ok());
  if (got.ok()) {
    run.converged = std::move(got).value();
  }
  if (want.ok()) {
    run.expected = std::move(want).value();
  }
  return run;
}

class DeltaPropagationFaultTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeltaPropagationFaultTest, DeltaConvergesAndMovesFewerBytesUnderFaults) {
  EditRun whole = RunFaultedEdit(GetParam(), /*delta_enabled=*/false);
  EditRun delta = RunFaultedEdit(GetParam(), /*delta_enabled=*/true);

  // Both modes converge byte-identically despite the faults...
  EXPECT_EQ(whole.converged, whole.expected);
  EXPECT_EQ(delta.converged, delta.expected);
  EXPECT_EQ(delta.converged, whole.converged);
  ASSERT_EQ(delta.converged.size(), kBigFileSize);

  // ...but the delta pull moves strictly fewer payload bytes...
  EXPECT_GT(whole.bytes_pulled, 0u);
  EXPECT_GT(delta.bytes_pulled, 0u);
  EXPECT_LT(delta.bytes_pulled, whole.bytes_pulled);

  // ...and the delta *commit* writes strictly fewer local device bytes:
  // the shadow leg clones the whole 256 KiB file, the journal leg swings
  // one dirty block plus a handful of metadata and journal blocks.
  EXPECT_GT(whole.apply_bytes, 0u);
  EXPECT_GT(delta.apply_bytes, 0u);
  EXPECT_LT(delta.apply_bytes, whole.apply_bytes / 2)
      << "delta=" << delta.apply_bytes << " whole=" << whole.apply_bytes;
}

INSTANTIATE_TEST_SUITE_P(Plans, DeltaPropagationFaultTest,
                         ::testing::Values("Lossy", "HighLatency"),
                         [](const ::testing::TestParamInfo<const char*>& param) {
                           return std::string(param.param);
                         });

TEST(BatchedProbeTest, RunOncePaysOneProbeRpcPerPeer) {
  // N pending entries from one source peer must cost O(peers) probe RPCs,
  // not O(N): one batched probe plus the N pulls themselves.
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a");
  FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  ASSERT_TRUE(volume.ok());
  auto la = cluster.MountEverywhere(a, *volume);
  ASSERT_TRUE(la.ok());

  constexpr int kFiles = 6;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(vfs::WriteFileAt(*la, "f" + std::to_string(i), "seed").ok());
  }
  ASSERT_TRUE(b->RunPropagation().ok());

  // Edit every file; each write multicasts a notification to b.
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(vfs::WriteFileAt(*la, "f" + std::to_string(i), "new!").ok());
  }
  repl::PhysicalLayer* pb = b->registry().LocalReplica(*volume);
  ASSERT_NE(pb, nullptr);
  ASSERT_EQ(pb->PendingVersionCount(), static_cast<size_t>(kFiles));

  uint64_t lookups_before = b->metrics().CounterValue("nfs.client.proc.lookup");
  ASSERT_TRUE(b->RunPropagation().ok());
  uint64_t lookups = b->metrics().CounterValue("nfs.client.proc.lookup") - lookups_before;

  auto stats = b->propagation_stats(*volume);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->batched_probes, 1u);
  EXPECT_EQ(stats->pulled_files, 2 * static_cast<uint64_t>(kFiles));  // seeding + edits
  // One batched probe + one whole-file read per file (the files are tiny,
  // so the delta path correctly stands aside). A per-entry GetAttributes
  // probe would have made this 2N.
  EXPECT_EQ(lookups, static_cast<uint64_t>(kFiles) + 1);
}

}  // namespace
}  // namespace ficus::sim
