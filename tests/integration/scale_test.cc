// Larger-scale exercise: five hosts, several hundred files, staged
// partitions, runtime replica addition, and time-driven daemons —
// approximating the paper's "in use at UCLA for normal operation" with
// everything checked at the end.
#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/sim/workload.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

HostConfig BigHost() {
  HostConfig config;
  config.disk_blocks = 1 << 16;   // 256 MiB
  config.inode_count = 1 << 15;
  config.cache_blocks = 1 << 12;
  return config;
}

TEST(ScaleTest, FiveHostWorkloadWithPartitionsConverges) {
  Cluster cluster;
  std::vector<FicusHost*> hosts;
  for (int i = 0; i < 5; ++i) {
    hosts.push_back(cluster.AddHost("h" + std::to_string(i), BigHost()));
  }
  // Volume replicated on three of five hosts; the other two mount remotely.
  auto volume = cluster.CreateVolume({hosts[0], hosts[1], hosts[2]});
  ASSERT_TRUE(volume.ok());
  std::vector<repl::LogicalLayer*> mounts;
  for (FicusHost* host : hosts) {
    auto logical = cluster.MountEverywhere(host, *volume);
    ASSERT_TRUE(logical.ok());
    mounts.push_back(logical.value());
  }

  // Populate 200 files through host 0.
  WorkloadConfig workload_config;
  workload_config.directories = 20;
  workload_config.files_per_directory = 10;
  workload_config.file_size_bytes = 600;
  Workload workload(workload_config, 77);
  ASSERT_TRUE(workload.Populate(mounts[0]).ok());
  ASSERT_TRUE(cluster.ReconcileUntilQuiescent(16).ok());

  // Three staged partition epochs with disjoint writers.
  for (int epoch = 0; epoch < 3; ++epoch) {
    cluster.Partition({{hosts[0], hosts[3]}, {hosts[1], hosts[2], hosts[4]}});
    for (int i = 0; i < 10; ++i) {
      std::string left = "d" + std::to_string(epoch) + "/left" + std::to_string(i);
      std::string right = "d" + std::to_string(epoch) + "/right" + std::to_string(i);
      ASSERT_TRUE(vfs::WriteFileAt(mounts[0], left, "left epoch").ok());
      ASSERT_TRUE(vfs::WriteFileAt(mounts[1], right, "right epoch").ok());
    }
    cluster.Heal();
    ASSERT_TRUE(cluster.ReconcileUntilQuiescent(16).ok());
  }

  // Add a fourth replica mid-life on host 3 and let it fill.
  ASSERT_TRUE(cluster.AddReplica(*volume, hosts[3]).ok());
  ASSERT_TRUE(cluster.ReconcileUntilQuiescent(16).ok());

  // Host 3 serves everything from its own new replica.
  cluster.Partition({{hosts[3]}});
  for (int epoch = 0; epoch < 3; ++epoch) {
    EXPECT_TRUE(vfs::Exists(mounts[3], "d" + std::to_string(epoch) + "/left3"));
    EXPECT_TRUE(vfs::Exists(mounts[3], "d" + std::to_string(epoch) + "/right3"));
  }
  EXPECT_TRUE(vfs::Exists(mounts[3], workload.PathOf(0)));
  EXPECT_TRUE(vfs::Exists(mounts[3], workload.PathOf(workload.file_count() - 1)));
  cluster.Heal();

  // Structural sanity everywhere.
  for (FicusHost* host : hosts) {
    auto problems = host->ufs().Check();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << host->name() << ": " << problems->front();
    for (repl::PhysicalLayer* layer : host->registry().AllLocal()) {
      auto ficus_problems = layer->CheckConsistency();
      ASSERT_TRUE(ficus_problems.ok());
      EXPECT_TRUE(ficus_problems->empty()) << host->name();
    }
  }
}

TEST(ScaleTest, TimeDrivenWeekOfOperation) {
  // A simulated "day" with daemons on timers: updates land every few
  // minutes, propagation every 30 s, reconciliation every 10 min.
  Cluster cluster;
  FicusHost* a = cluster.AddHost("a", BigHost());
  FicusHost* b = cluster.AddHost("b", BigHost());
  auto volume = cluster.CreateVolume({a, b});
  ASSERT_TRUE(volume.ok());
  auto fs_a = cluster.MountEverywhere(a, *volume);
  ASSERT_TRUE(fs_a.ok());
  ASSERT_TRUE(vfs::MkdirAll(*fs_a, "log").ok());

  for (int hour = 0; hour < 8; ++hour) {
    ASSERT_TRUE(vfs::WriteFileAt(*fs_a, "log/hour" + std::to_string(hour),
                                 "entries for hour " + std::to_string(hour))
                    .ok());
    ASSERT_TRUE(cluster.RunFor(60 * 60 * kSecond, 30 * kSecond, 600 * kSecond).ok());
  }

  // b holds the whole log locally.
  cluster.Partition({{b}});
  auto fs_b = cluster.MountEverywhere(b, *volume);
  for (int hour = 0; hour < 8; ++hour) {
    EXPECT_TRUE(vfs::Exists(*fs_b, "log/hour" + std::to_string(hour))) << hour;
  }
  cluster.Heal();
}

}  // namespace
}  // namespace ficus::sim
