// Partition scenarios across a 4-host cluster: the "update during network
// partition if any copy is accessible" story, end to end.
#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() {
    for (int i = 0; i < 4; ++i) {
      hosts_.push_back(cluster_.AddHost("h" + std::to_string(i)));
    }
    auto volume = cluster_.CreateVolume({hosts_[0], hosts_[1], hosts_[2]});
    EXPECT_TRUE(volume.ok());
    volume_ = volume.value();
  }

  repl::LogicalLayer* Mount(int i) {
    auto logical = cluster_.MountEverywhere(hosts_[static_cast<size_t>(i)], volume_);
    EXPECT_TRUE(logical.ok());
    return logical.value();
  }

  Cluster cluster_;
  std::vector<FicusHost*> hosts_;
  repl::VolumeId volume_;
};

TEST_F(PartitionTest, MinoritySideStillUpdates) {
  auto l0 = Mount(0);
  ASSERT_TRUE(vfs::WriteFileAt(l0, "f", "base").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  // Host 0 alone on one side — a one-replica minority. Quorum systems
  // would freeze it; Ficus keeps writing.
  cluster_.Partition({{hosts_[0]}, {hosts_[1], hosts_[2], hosts_[3]}});
  ASSERT_TRUE(vfs::WriteFileAt(l0, "minority", "written alone").ok());

  // The majority side writes too.
  auto l1 = Mount(1);
  ASSERT_TRUE(vfs::WriteFileAt(l1, "majority", "written together").ok());

  cluster_.Heal();
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  for (int i : {0, 1, 2}) {
    auto logical = Mount(i);
    EXPECT_TRUE(vfs::Exists(logical, "minority")) << i;
    EXPECT_TRUE(vfs::Exists(logical, "majority")) << i;
  }
}

TEST_F(PartitionTest, ThreeWaySplitConvergesAfterHeal) {
  auto l0 = Mount(0);
  ASSERT_TRUE(vfs::MkdirAll(l0, "proj").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  cluster_.Partition({{hosts_[0]}, {hosts_[1]}, {hosts_[2]}});
  auto l1 = Mount(1);
  auto l2 = Mount(2);
  ASSERT_TRUE(vfs::WriteFileAt(l0, "proj/zero", "0").ok());
  ASSERT_TRUE(vfs::WriteFileAt(l1, "proj/one", "1").ok());
  ASSERT_TRUE(vfs::WriteFileAt(l2, "proj/two", "2").ok());

  cluster_.Heal();
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  for (int i : {0, 1, 2}) {
    auto logical = Mount(i);
    auto listing = vfs::ListDir(logical, "proj");
    ASSERT_TRUE(listing.ok());
    EXPECT_EQ(listing->size(), 3u) << "host " << i;
  }
}

TEST_F(PartitionTest, DeleteOnOneSideCreateInsideOnOther) {
  // Host 0 deletes a directory's file and the directory; host 1
  // concurrently creates a new file inside that directory. Liveness must
  // win: the directory survives with the new file.
  auto l0 = Mount(0);
  ASSERT_TRUE(vfs::MkdirAll(l0, "d").ok());
  ASSERT_TRUE(vfs::WriteFileAt(l0, "d/old", "x").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  cluster_.Partition({{hosts_[0]}, {hosts_[1], hosts_[2]}});
  auto l1 = Mount(1);
  ASSERT_TRUE(vfs::RemovePath(l0, "d/old").ok());
  ASSERT_TRUE(vfs::RemovePath(l0, "d").ok());
  ASSERT_TRUE(vfs::WriteFileAt(l1, "d/new", "fresh").ok());

  cluster_.Heal();
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  for (int i : {0, 1, 2}) {
    auto logical = Mount(i);
    EXPECT_TRUE(vfs::Exists(logical, "d")) << "host " << i;
    EXPECT_TRUE(vfs::Exists(logical, "d/new")) << "host " << i;
    EXPECT_FALSE(vfs::Exists(logical, "d/old")) << "host " << i;
  }
}

TEST_F(PartitionTest, RepeatedPartitionHealCycles) {
  auto l0 = Mount(0);
  auto l1 = Mount(1);
  ASSERT_TRUE(vfs::MkdirAll(l0, "log").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  for (int cycle = 0; cycle < 5; ++cycle) {
    cluster_.Partition({{hosts_[0]}, {hosts_[1], hosts_[2]}});
    ASSERT_TRUE(
        vfs::WriteFileAt(l0, "log/a" + std::to_string(cycle), "from a").ok());
    ASSERT_TRUE(
        vfs::WriteFileAt(l1, "log/b" + std::to_string(cycle), "from b").ok());
    cluster_.Heal();
    ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
  }

  auto listing = vfs::ListDir(Mount(2), "log");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 10u);  // 5 cycles x 2 writers, zero losses
}

TEST_F(PartitionTest, WriteDuringPartitionNotifiesAfterHealViaReconcile) {
  // Notifications multicast during the partition are lost (best-effort
  // datagrams). The periodic reconciliation protocol is the safety net.
  auto l0 = Mount(0);
  ASSERT_TRUE(vfs::WriteFileAt(l0, "f", "v1").ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  cluster_.Partition({{hosts_[0]}, {hosts_[1], hosts_[2]}});
  ASSERT_TRUE(vfs::WriteFileAt(l0, "f", "v2").ok());
  // Propagation on the other side has nothing to chew on (datagram lost).
  ASSERT_TRUE(cluster_.RunPropagationEverywhere().ok());
  cluster_.Heal();
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  cluster_.Partition({{hosts_[1]}});  // host 1 must serve from its own copy
  auto l1 = Mount(1);
  auto contents = vfs::ReadFileAt(l1, "f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "v2");
  cluster_.Heal();
}

}  // namespace
}  // namespace ficus::sim
