// Builds the paper's Figure 1 / Figure 2 stacks end to end:
//   co-resident:   system calls -> logical -> physical -> UFS
//   cross-host:    system calls -> logical -> NFS client -> network ->
//                  NFS server -> physical facade -> physical -> UFS
// and verifies the same client-visible behaviour through both.
#include <gtest/gtest.h>

#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/repl/facade.h"
#include "src/repl/logical.h"
#include "src/repl/physical.h"
#include "src/vfs/pass_through.h"
#include "src/vfs/path_ops.h"
#include "tests/repl/replica_fixture.h"

namespace ficus::repl {
namespace {

// Resolver that serves one replica through an arbitrary PhysicalApi
// (lets us splice a RemotePhysical into the logical layer's path).
class SpliceResolver : public ReplicaResolver {
 public:
  void Add(ReplicaId replica, PhysicalApi* api) { replicas_[replica] = api; }

  std::vector<ReplicaId> ReplicasOf(const VolumeId&) override {
    std::vector<ReplicaId> out;
    for (const auto& [id, api] : replicas_) {
      out.push_back(id);
    }
    return out;
  }

  StatusOr<PhysicalApi*> Access(const VolumeId&, ReplicaId replica) override {
    auto it = replicas_.find(replica);
    if (it == replicas_.end()) {
      return NotFoundError("no replica");
    }
    return it->second;
  }

 private:
  std::map<ReplicaId, PhysicalApi*> replicas_;
};

class FullStackTest : public ::testing::Test {
 protected:
  FullStackTest()
      : network_(&clock_), device_(8192), cache_(&device_, 256), ufs_(&cache_, &clock_) {
    EXPECT_TRUE(ufs_.Format(1024).ok());
    physical_ = std::make_unique<PhysicalLayer>(&ufs_, &clock_);
    EXPECT_TRUE(physical_->CreateVolume(VolumeId{1, 1}, 1, "vol", true).ok());
    facade_ = std::make_unique<PhysicalFacadeVfs>(physical_.get());

    server_host_ = network_.AddHost("server");
    client_host_ = network_.AddHost("client");
    server_ = std::make_unique<nfs::NfsServer>(&network_, server_host_, facade_.get());
    nfs::ClientConfig config;
    config.attr_cache_ttl = 0;
    config.dnlc_ttl = 0;
    nfs_client_ = std::make_unique<nfs::NfsClient>(&network_, client_host_, server_host_,
                                                   &clock_, config);
  }

  SimClock clock_;
  net::Network network_;
  storage::BlockDevice device_;
  storage::BufferCache cache_;
  ufs::Ufs ufs_;
  std::unique_ptr<PhysicalLayer> physical_;
  std::unique_ptr<PhysicalFacadeVfs> facade_;
  net::HostId server_host_, client_host_;
  std::unique_ptr<nfs::NfsServer> server_;
  std::unique_ptr<nfs::NfsClient> nfs_client_;
};

TEST_F(FullStackTest, CoResidentStack) {
  // Figure 1 without the NFS layer: logical directly over physical.
  SpliceResolver resolver;
  resolver.Add(1, physical_.get());
  LogicalLayer logical(VolumeId{1, 1}, &resolver, nullptr, nullptr, &clock_);

  ASSERT_TRUE(vfs::MkdirAll(&logical, "home/user").ok());
  ASSERT_TRUE(vfs::WriteFileAt(&logical, "home/user/notes.txt", "co-resident").ok());
  auto contents = vfs::ReadFileAt(&logical, "home/user/notes.txt");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "co-resident");
}

TEST_F(FullStackTest, CrossHostStackThroughNfs) {
  // Figure 2: the logical layer's physical replica lives across an NFS
  // transport, reached via the lookup-encoded facade protocol.
  auto export_root = nfs_client_->Root();
  ASSERT_TRUE(export_root.ok());
  auto proxy = std::make_unique<RemotePhysical>(export_root.value());
  ASSERT_TRUE(proxy->Connect().ok());

  SpliceResolver resolver;
  resolver.Add(1, proxy.get());
  LogicalLayer logical(VolumeId{1, 1}, &resolver, nullptr, nullptr, &clock_);

  ASSERT_TRUE(vfs::MkdirAll(&logical, "home/user").ok());
  ASSERT_TRUE(vfs::WriteFileAt(&logical, "home/user/notes.txt", "over the wire").ok());
  auto contents = vfs::ReadFileAt(&logical, "home/user/notes.txt");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "over the wire");

  // The bytes genuinely live in the server-side UFS.
  SpliceResolver local_resolver;
  local_resolver.Add(1, physical_.get());
  LogicalLayer local_view(VolumeId{1, 1}, &local_resolver, nullptr, nullptr, &clock_);
  auto local_contents = vfs::ReadFileAt(&local_view, "home/user/notes.txt");
  ASSERT_TRUE(local_contents.ok());
  EXPECT_EQ(local_contents.value(), "over the wire");
}

TEST_F(FullStackTest, NullLayersSliceInTransparently) {
  // "layers can indeed be transparently inserted between other layers"
  // (section 7): wrap the logical layer in pass-through layers and run
  // the same workload.
  SpliceResolver resolver;
  resolver.Add(1, physical_.get());
  LogicalLayer logical(VolumeId{1, 1}, &resolver, nullptr, nullptr, &clock_);
  vfs::PassThroughVfs wrapped(&logical);
  vfs::PassThroughVfs doubly_wrapped(&wrapped);

  ASSERT_TRUE(vfs::WriteFileAt(&doubly_wrapped, "f", "through 2 null layers").ok());
  auto through_bottom = vfs::ReadFileAt(&logical, "f");
  ASSERT_TRUE(through_bottom.ok());
  EXPECT_EQ(through_bottom.value(), "through 2 null layers");
}

TEST_F(FullStackTest, ColdOpenCostsFourExtraReads) {
  // Experiment P2 in miniature (the bench sweeps this properly): opening
  // a file in a non-recently-accessed directory costs 4 device reads
  // beyond the normal Unix overhead — the underlying Unix directory
  // (inode + data) and the auxiliary attribute file (inode + data).
  SpliceResolver resolver;
  resolver.Add(1, physical_.get());
  LogicalLayer logical(VolumeId{1, 1}, &resolver, nullptr, nullptr, &clock_);
  ASSERT_TRUE(vfs::MkdirAll(&logical, "dir").ok());
  ASSERT_TRUE(vfs::WriteFileAt(&logical, "dir/file", "payload").ok());

  // Cold: drop the buffer cache entirely.
  cache_.Invalidate();
  device_.ResetStats();
  ASSERT_TRUE(vfs::OpenReadClose(&logical, "dir/file").ok());
  uint64_t cold_reads = device_.stats().reads;

  // Warm: repeat immediately; the paper says no overhead beyond normal
  // Unix — with everything cached that means zero device reads.
  device_.ResetStats();
  ASSERT_TRUE(vfs::OpenReadClose(&logical, "dir/file").ok());
  uint64_t warm_reads = device_.stats().reads;

  EXPECT_GT(cold_reads, 4u);  // includes the normal Unix reads too
  EXPECT_EQ(warm_reads, 0u);
}

TEST_F(FullStackTest, UfsStaysCleanUnderFicusTraffic) {
  SpliceResolver resolver;
  resolver.Add(1, physical_.get());
  LogicalLayer logical(VolumeId{1, 1}, &resolver, nullptr, nullptr, &clock_);
  for (int i = 0; i < 20; ++i) {
    std::string dir = "d" + std::to_string(i % 4);
    ASSERT_TRUE(vfs::MkdirAll(&logical, dir).ok());
    ASSERT_TRUE(
        vfs::WriteFileAt(&logical, dir + "/f" + std::to_string(i), std::string(i * 100, 'x'))
            .ok());
  }
  for (int i = 0; i < 20; i += 3) {
    std::string path = "d" + std::to_string(i % 4) + "/f" + std::to_string(i);
    ASSERT_TRUE(vfs::RemovePath(&logical, path).ok());
  }
  ASSERT_TRUE(physical_->GarbageCollect().ok());
  auto problems = ufs_.Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

}  // namespace
}  // namespace ficus::repl
