// Name-cache coherence end to end: negative and positive bindings cached
// on one host must die when the directory's version vector advances from
// the other side — via propagation, partition-heal reconciliation, or a
// lossy network — so after convergence every host's cached lookups agree
// with the converged directory. Runs under both runtimes (the cache is
// sharded and locked for the threaded one) and under a Lossy fault plan.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/net/fault.h"
#include "src/repl/logical.h"
#include "src/repl/name_cache.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim {
namespace {

constexpr uint64_t kSeed = 20260808;

void RunCoherenceScenario(RuntimeMode mode, bool lossy) {
  RuntimeOptions options;
  options.mode = mode;
  Cluster cluster(options);
  HostConfig config;
  if (lossy) {
    // Same patience the fault tier uses: cheap per-attempt timeouts and
    // retries, so dropped messages cost simulated time rather than truth.
    config.transport_retry.rpc_timeout = 20 * kMillisecond;
    config.transport_retry.backoff_base = 10 * kMillisecond;
    config.transport_retry.retry_unreachable = true;
    config.transport_retry.rng_seed = kSeed;
    config.propagation.retry_backoff_base = 250 * kMillisecond;
  }
  FicusHost* a = cluster.AddHost("a", config);
  FicusHost* b = cluster.AddHost("b", config);
  FicusHost* c = cluster.AddHost("c", config);
  auto volume = cluster.CreateVolume({a, b, c});
  ASSERT_TRUE(volume.ok()) << volume.status().ToString();
  auto la = cluster.MountEverywhere(a, volume.value());
  auto lb = cluster.MountEverywhere(b, volume.value());
  auto lc = cluster.MountEverywhere(c, volume.value());
  ASSERT_TRUE(la.ok() && lb.ok() && lc.ok());
  if (lossy) {
    cluster.InstallFaultPlan(net::FaultPlan::Lossy(kSeed));
  }

  // Cache "fN is absent" on b before the names exist anywhere.
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(vfs::Exists(lb.value(), "f" + std::to_string(i)));
  }
  // Birth on a: the creations advance the root vector at a's replica, so
  // b's negatives must die by vector mismatch once the update arrives —
  // no logical-layer shootdown ever runs on b.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        vfs::WriteFileAt(la.value(), "f" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  for (int pass = 0; pass < 3; ++pass) {
    cluster.network().FlushDeferredDatagrams();
    (void)cluster.RunPropagationEverywhere();  // lossy failures retry later
    cluster.Sleep(kSecond);
  }
  // Warm positive bindings everywhere (whatever each replica knows so far).
  for (int i = 0; i < 6; ++i) {
    (void)vfs::Exists(lb.value(), "f" + std::to_string(i));
    (void)vfs::Exists(lc.value(), "f" + std::to_string(i));
  }

  // Cross-directional churn: a removes and renames while c is partitioned
  // away caching stale bindings of both polarities.
  cluster.Partition({{a, b}, {c}});
  ASSERT_TRUE(vfs::RemovePath(la.value(), "f0").ok());
  ASSERT_TRUE(vfs::RenamePath(la.value(), "f1", "g1").ok());
  ASSERT_TRUE(vfs::WriteFileAt(la.value(), "f6", "late").ok());
  (void)vfs::Exists(lc.value(), "f6");  // caches "f6 is absent" on c
  (void)vfs::Exists(lc.value(), "f0");  // caches the doomed positive on c
  cluster.Heal();
  cluster.ClearFaults();

  // Drain retry backoff, then propagate and reconcile to quiescence.
  cluster.Sleep(60 * kSecond);
  for (int pass = 0; pass < 4; ++pass) {
    cluster.network().FlushDeferredDatagrams();
    (void)cluster.RunPropagationEverywhere();
    cluster.Sleep(kSecond);
  }
  auto rounds = cluster.ReconcileUntilQuiescent(32);
  ASSERT_TRUE(rounds.ok()) << rounds.status().ToString();

  // Converged truth straight from a's raw replica, bypassing every cache.
  repl::PhysicalLayer* raw = a->registry().LocalReplica(volume.value());
  ASSERT_NE(raw, nullptr);
  auto entries = raw->ReadDirectory(repl::kRootFileId);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  std::set<std::string> alive;
  for (const repl::FicusDirEntry& entry : entries.value()) {
    if (entry.alive) alive.insert(entry.name);
  }

  // Every host's cached name resolution must now match that truth; a
  // disagreement is a stale binding that survived the merge.
  const std::string names[] = {"f0", "f1", "f2", "f3", "f4", "f5", "f6", "g1"};
  struct Mount {
    const char* host;
    repl::LogicalLayer* logical;
  } mounts[] = {{"a", la.value()}, {"b", lb.value()}, {"c", lc.value()}};
  for (const Mount& mount : mounts) {
    for (const std::string& name : names) {
      EXPECT_EQ(vfs::Exists(mount.logical, name), alive.count(name) != 0)
          << "host " << mount.host << " disagrees with the converged directory about '"
          << name << "'";
    }
  }
  // The assertions above must have gone through the cache, not around it.
  repl::NameCacheStats stats = lb.value()->name_cache()->stats();
  EXPECT_GT(stats.hits + stats.neg_hits, 0u) << "name cache never produced a hit on b";
  EXPECT_GT(stats.invalidates, 0u) << "no binding on b was ever invalidated";
}

TEST(NameCacheCoherenceTest, DeterministicRuntime) {
  RunCoherenceScenario(RuntimeMode::kDeterministic, /*lossy=*/false);
}

TEST(NameCacheCoherenceTest, ThreadedRuntime) {
  RunCoherenceScenario(RuntimeMode::kThreaded, /*lossy=*/false);
}

TEST(NameCacheCoherenceTest, DeterministicRuntimeLossyNetwork) {
  RunCoherenceScenario(RuntimeMode::kDeterministic, /*lossy=*/true);
}

TEST(NameCacheCoherenceTest, ThreadedRuntimeLossyNetwork) {
  RunCoherenceScenario(RuntimeMode::kThreaded, /*lossy=*/true);
}

}  // namespace
}  // namespace ficus::sim
