// Replica lifecycle management (paper section 3.1: "A client may change
// the location and quantity of file replicas whenever a file replica is
// available"; section 4.3: graft point records change dynamically).
#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"
#include "src/vol/graft.h"

namespace ficus::sim {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    a_ = cluster_.AddHost("a");
    b_ = cluster_.AddHost("b");
    c_ = cluster_.AddHost("c");
    auto volume = cluster_.CreateVolume({a_, b_});
    EXPECT_TRUE(volume.ok());
    volume_ = volume.value();
    auto fs = cluster_.MountEverywhere(a_, volume_);
    EXPECT_TRUE(vfs::MkdirAll(*fs, "data").ok());
    EXPECT_TRUE(vfs::WriteFileAt(*fs, "data/payload", "migrate me").ok());
    EXPECT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
  }

  Cluster cluster_;
  FicusHost* a_;
  FicusHost* b_;
  FicusHost* c_;
  repl::VolumeId volume_;
};

TEST_F(MigrationTest, RemoveReplicaDrainsStateFirst) {
  // b holds a partition-era update only it has seen; removing b's replica
  // must first drain that state to a.
  cluster_.Partition({{b_}});
  auto fs_b = cluster_.MountEverywhere(b_, volume_);
  ASSERT_TRUE(vfs::WriteFileAt(*fs_b, "data/only-on-b", "precious").ok());
  cluster_.Heal();

  ASSERT_TRUE(cluster_.RemoveReplica(volume_, b_).ok());

  EXPECT_EQ(b_->registry().LocalReplica(volume_), nullptr);
  auto fs_a = cluster_.MountEverywhere(a_, volume_);
  auto contents = vfs::ReadFileAt(*fs_a, "data/only-on-b");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "precious");
  // b's disk no longer carries the container and is structurally clean.
  auto problems = b_->ufs().Check();
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << problems->front();
}

TEST_F(MigrationTest, RefusesToRemoveLastReplica) {
  ASSERT_TRUE(cluster_.RemoveReplica(volume_, b_).ok());
  EXPECT_EQ(cluster_.RemoveReplica(volume_, a_).code(), ErrorCode::kInvalidArgument);
}

TEST_F(MigrationTest, MoveReplicaPreservesServiceability) {
  ASSERT_TRUE(cluster_.MoveReplica(volume_, b_, c_).ok());
  // c now serves the data entirely locally.
  cluster_.Partition({{c_}});
  auto fs_c = cluster_.MountEverywhere(c_, volume_);
  auto contents = vfs::ReadFileAt(*fs_c, "data/payload");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "migrate me");
  cluster_.Heal();
  // b is out of the placement everywhere.
  EXPECT_EQ(b_->registry().LocalReplica(volume_), nullptr);
  for (FicusHost* host : {a_, c_}) {
    for (repl::ReplicaId replica : host->registry().ReplicasOf(volume_)) {
      auto at = host->registry().HostOf(volume_, replica);
      ASSERT_TRUE(at.has_value());
      EXPECT_NE(*at, b_->id());
    }
  }
}

TEST_F(MigrationTest, GraftPointFollowsMigration) {
  // A sub volume grafted into the root volume migrates from b to c; the
  // graft point records are updated (tombstone + insert, replicated by
  // ordinary directory reconciliation) and autograft keeps working even
  // with the old host gone.
  auto sub = cluster_.CreateVolume({b_});
  ASSERT_TRUE(sub.ok());
  auto sub_fs = cluster_.MountEverywhere(b_, *sub);
  ASSERT_TRUE(vfs::WriteFileAt(*sub_fs, "f", "inside sub").ok());

  repl::PhysicalLayer* root_phys = a_->registry().LocalReplica(volume_);
  vol::GraftPointInfo info;
  info.volume = *sub;
  info.replicas = {{1, b_->id()}};
  auto graft = vol::WriteGraftPoint(root_phys, repl::kRootFileId, "mnt", info);
  ASSERT_TRUE(graft.ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  // Migrate the sub volume to c and update the graft point records.
  ASSERT_TRUE(cluster_.MoveReplica(*sub, b_, c_).ok());
  ASSERT_TRUE(vol::RemoveGraftReplica(root_phys, *graft, 1).ok());
  ASSERT_TRUE(vol::AddGraftReplica(root_phys, *graft, 2, c_->id()).ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());

  // Old host off the network entirely: the walk must succeed via c.
  cluster_.network().SetHostUp(b_->id(), false);
  auto fs_a = cluster_.MountEverywhere(a_, volume_);
  auto contents = vfs::ReadFileAt(*fs_a, "mnt/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "inside sub");
  cluster_.network().SetHostUp(b_->id(), true);
}

TEST_F(MigrationTest, AddThenRemoveRoundTrip) {
  // Grow to three replicas, shrink back to two, everything consistent.
  ASSERT_TRUE(cluster_.AddReplica(volume_, c_).ok());
  ASSERT_TRUE(cluster_.ReconcileUntilQuiescent().ok());
  ASSERT_TRUE(cluster_.RemoveReplica(volume_, c_).ok());
  auto fs = cluster_.MountEverywhere(a_, volume_);
  EXPECT_TRUE(vfs::Exists(*fs, "data/payload"));
  for (FicusHost* host : {a_, b_, c_}) {
    auto problems = host->ufs().Check();
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << host->name() << ": " << problems->front();
  }
}

}  // namespace
}  // namespace ficus::sim
