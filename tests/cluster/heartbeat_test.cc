// Unit suite for the heartbeat failure detector: threshold edges of the
// alive/suspect/dead machine, hysteresis under a flapping link, callback
// ordering, dead-probe backoff, and the SimClock-only timing contract
// (no test here ever sleeps — every probe is decided by Poll() against
// an explicitly advanced clock).
#include "src/cluster/heartbeat.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/net/fault.h"
#include "src/net/network.h"

namespace ficus::cluster {
namespace {

class HeartbeatTest : public ::testing::Test {
 protected:
  HeartbeatTest() : network_(&clock_) {
    self_ = network_.AddHost("self");
    peer_ = network_.AddHost("peer");
    other_ = network_.AddHost("other");
    HeartbeatMonitor::RegisterResponder(&network_, peer_);
    HeartbeatMonitor::RegisterResponder(&network_, other_);
  }

  // One probe cycle: advance past the probe interval, then poll.
  std::vector<PeerTransition> Cycle(HeartbeatMonitor& monitor) {
    clock_.Advance(monitor.config().interval);
    return monitor.Poll();
  }

  SimClock clock_;
  net::Network network_;
  net::HostId self_, peer_, other_;
};

TEST_F(HeartbeatTest, HealthyPeerStaysAliveAndProbesAtInterval) {
  HeartbeatMonitor monitor(&network_, self_, &clock_);
  monitor.Watch(peer_);
  EXPECT_TRUE(monitor.Poll().empty());  // first probe due immediately
  EXPECT_EQ(monitor.stats().probes_sent, 1u);
  // Same instant again: nothing is due, no probe burns.
  EXPECT_TRUE(monitor.Poll().empty());
  EXPECT_EQ(monitor.stats().probes_sent, 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(Cycle(monitor).empty());
  }
  EXPECT_EQ(monitor.stats().probes_sent, 6u);
  EXPECT_EQ(monitor.stats().probes_missed, 0u);
  EXPECT_EQ(monitor.StateOf(peer_), PeerState::kAlive);
}

TEST_F(HeartbeatTest, ThresholdEdgesAreExact) {
  HeartbeatMonitor monitor(&network_, self_, &clock_);
  const HeartbeatConfig& config = monitor.config();
  ASSERT_EQ(config.suspect_threshold, 2u);
  ASSERT_EQ(config.dead_threshold, 5u);
  monitor.Watch(peer_);
  network_.SetHostUp(peer_, false);

  // Miss 1: one short of suspect — still alive.
  EXPECT_TRUE(monitor.Poll().empty());
  EXPECT_EQ(monitor.StateOf(peer_), PeerState::kAlive);

  // Miss 2: exactly suspect_threshold — alive -> suspect.
  std::vector<PeerTransition> t = Cycle(monitor);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].from, PeerState::kAlive);
  EXPECT_EQ(t[0].to, PeerState::kSuspect);
  EXPECT_EQ(t[0].peer, peer_);
  EXPECT_EQ(t[0].at, clock_.Now());

  // Misses 3 and 4: suspect holds, no transition chatter.
  EXPECT_TRUE(Cycle(monitor).empty());
  EXPECT_TRUE(Cycle(monitor).empty());
  EXPECT_EQ(monitor.StateOf(peer_), PeerState::kSuspect);

  // Miss 5: exactly dead_threshold — suspect -> dead.
  t = Cycle(monitor);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].from, PeerState::kSuspect);
  EXPECT_EQ(t[0].to, PeerState::kDead);
  EXPECT_TRUE(monitor.IsDead(peer_));
  EXPECT_EQ(monitor.stats().deaths, 1u);
  EXPECT_EQ(monitor.stats().probes_missed, 5u);
}

TEST_F(HeartbeatTest, OneSuccessfulProbeRecoversFromAnyState) {
  HeartbeatMonitor monitor(&network_, self_, &clock_);
  monitor.Watch(peer_);
  network_.SetHostUp(peer_, false);
  for (int i = 0; i < 8; ++i) {
    Cycle(monitor);
  }
  ASSERT_TRUE(monitor.IsDead(peer_));

  network_.SetHostUp(peer_, true);
  std::vector<PeerTransition> t = Cycle(monitor);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].from, PeerState::kDead);
  EXPECT_EQ(t[0].to, PeerState::kAlive);
  EXPECT_EQ(monitor.stats().recoveries, 1u);
  // Recovery resets the miss counter: condemning again takes the full
  // threshold run, not one miss.
  network_.SetHostUp(peer_, false);
  Cycle(monitor);
  EXPECT_EQ(monitor.StateOf(peer_), PeerState::kAlive);
}

// The hysteresis contract: a link that flaps faster than the suspect->
// dead gap bounces alive<->suspect but never reaches dead. Three misses
// then a success, repeated — misses never accumulate to dead_threshold.
TEST_F(HeartbeatTest, FlappingLinkNeverReachesDead) {
  HeartbeatMonitor monitor(&network_, self_, &clock_);
  monitor.Watch(peer_);
  for (int round = 0; round < 6; ++round) {
    network_.SetHostUp(peer_, false);
    for (int miss = 0; miss < 3; ++miss) {
      Cycle(monitor);
      EXPECT_NE(monitor.StateOf(peer_), PeerState::kDead);
    }
    EXPECT_EQ(monitor.StateOf(peer_), PeerState::kSuspect);
    network_.SetHostUp(peer_, true);
    Cycle(monitor);
    EXPECT_EQ(monitor.StateOf(peer_), PeerState::kAlive);
  }
  EXPECT_EQ(monitor.stats().deaths, 0u);
  EXPECT_EQ(monitor.stats().recoveries, 6u);
}

// Same contract driven end-to-end through the canned Flapping fault plan
// instead of hand-toggled host state: outages shorter than the
// suspect->dead hysteresis band must never produce a death verdict.
TEST_F(HeartbeatTest, CannedFlappingPlanStaysWithinHysteresisBand) {
  HeartbeatConfig config;
  // 100ms probe interval against a 500ms period / 100ms outage flap: at
  // most ~2 consecutive probes land in an outage window, far under the
  // dead threshold of 5.
  HeartbeatMonitor monitor(&network_, self_, &clock_, config);
  monitor.Watch(peer_);
  network_.InstallFaultPlan(net::FaultPlan::Flapping(/*seed=*/7));
  for (int i = 0; i < 100; ++i) {
    Cycle(monitor);
    EXPECT_NE(monitor.StateOf(peer_), PeerState::kDead)
        << "flap declared a live peer dead at cycle " << i;
  }
  EXPECT_GT(monitor.stats().probes_missed, 0u) << "the flap never bit a probe";
  EXPECT_EQ(monitor.stats().deaths, 0u);
}

TEST_F(HeartbeatTest, TransitionsSortByPeerAndCallbacksRunInRegistrationOrder) {
  HeartbeatMonitor monitor(&network_, self_, &clock_);
  // Watch in reverse id order to prove the sort is by id, not insertion.
  monitor.Watch(other_);
  monitor.Watch(peer_);
  ASSERT_LT(peer_, other_);
  std::vector<std::string> events;
  monitor.AddCallback([&](const PeerTransition& t) {
    events.push_back("first:" + std::to_string(t.peer) + ":" +
                     PeerStateName(t.to));
  });
  monitor.AddCallback([&](const PeerTransition& t) {
    events.push_back("second:" + std::to_string(t.peer) + ":" +
                     PeerStateName(t.to));
  });
  network_.SetHostUp(peer_, false);
  network_.SetHostUp(other_, false);
  monitor.Poll();           // miss 1 for both
  std::vector<PeerTransition> t = Cycle(monitor);  // both go suspect
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].peer, peer_);
  EXPECT_EQ(t[1].peer, other_);
  std::vector<std::string> expected = {
      "first:" + std::to_string(peer_) + ":suspect",
      "second:" + std::to_string(peer_) + ":suspect",
      "first:" + std::to_string(other_) + ":suspect",
      "second:" + std::to_string(other_) + ":suspect",
  };
  EXPECT_EQ(events, expected);
}

// Dead peers are probed on capped exponential backoff, not every
// interval: a long-dead host costs O(log t) probes.
TEST_F(HeartbeatTest, DeadPeerProbesBackOffExponentially) {
  HeartbeatConfig config;
  config.dead_backoff_base = config.interval;
  config.dead_backoff_cap = 8 * config.interval;
  HeartbeatMonitor with_backoff(&network_, self_, &clock_, config);
  HeartbeatConfig no_backoff;  // base 0: keeps probing every interval
  HeartbeatMonitor control(&network_, self_, &clock_, no_backoff);
  with_backoff.Watch(peer_);
  control.Watch(peer_);
  network_.SetHostUp(peer_, false);

  auto poll_both = [&] {
    with_backoff.Poll();
    control.Poll();
  };
  poll_both();
  for (int i = 0; i < 40; ++i) {
    clock_.Advance(config.interval);
    poll_both();
  }
  ASSERT_TRUE(with_backoff.IsDead(peer_));
  ASSERT_TRUE(control.IsDead(peer_));
  // Both burned the same probes reaching the verdict; afterwards the
  // backoff monitor probes at spacing 1,2,4,8,8,... intervals while the
  // control probes all 36 remaining slots.
  EXPECT_EQ(control.stats().probes_sent, 41u);
  EXPECT_LT(with_backoff.stats().probes_sent, 20u);
  EXPECT_GT(with_backoff.stats().probes_sent, 5u);
}

TEST_F(HeartbeatTest, UnwatchedPeersReadAliveAndSelfWatchIsNoop) {
  HeartbeatMonitor monitor(&network_, self_, &clock_);
  EXPECT_EQ(monitor.StateOf(other_), PeerState::kAlive);
  monitor.Watch(self_);
  monitor.Watch(net::kInvalidHost);
  EXPECT_TRUE(monitor.Watched().empty());
  monitor.Watch(peer_);
  monitor.Forget(peer_);
  EXPECT_TRUE(monitor.Watched().empty());
  // Forgotten peers stop costing probes entirely.
  EXPECT_TRUE(monitor.Poll().empty());
  EXPECT_EQ(monitor.stats().probes_sent, 0u);
}

TEST_F(HeartbeatTest, ForcedVerdictYieldsToTheNextHonestProbe) {
  HeartbeatMonitor monitor(&network_, self_, &clock_);
  monitor.Watch(peer_);
  monitor.Poll();  // establish alive
  monitor.ForceState(peer_, PeerState::kDead);
  ASSERT_TRUE(monitor.IsDead(peer_));
  // The peer is up and answering: the next due probe re-evaluates
  // honestly and publishes the recovery.
  std::vector<PeerTransition> t = Cycle(monitor);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].from, PeerState::kDead);
  EXPECT_EQ(t[0].to, PeerState::kAlive);
}

TEST_F(HeartbeatTest, ZeroIntervalDisablesTheMonitor) {
  HeartbeatConfig config;
  config.interval = 0;
  HeartbeatMonitor monitor(&network_, self_, &clock_, config);
  monitor.Watch(peer_);
  network_.SetHostUp(peer_, false);
  for (int i = 0; i < 10; ++i) {
    clock_.Advance(kSecond);
    EXPECT_TRUE(monitor.Poll().empty());
  }
  EXPECT_EQ(monitor.stats().probes_sent, 0u);
  EXPECT_EQ(monitor.StateOf(peer_), PeerState::kAlive);
}

}  // namespace
}  // namespace ficus::cluster
