// Unit tests for the replica placement policies: pure index math, no
// cluster required.
#include "src/cluster/placement.h"

#include <gtest/gtest.h>

namespace ficus::cluster {
namespace {

TEST(PlacementTest, FirstFitTakesHostsInIndexOrder) {
  std::vector<size_t> load = {5, 0, 3, 1};
  EXPECT_EQ(PickReplicaHosts(load, 2, PlacementPolicy::kFirstFit),
            (std::vector<size_t>{0, 1}));
  EXPECT_EQ(PickReplicaHosts(load, 4, PlacementPolicy::kFirstFit),
            (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(PlacementTest, SpreadPicksTheLeastLoadedHosts) {
  std::vector<size_t> load = {5, 0, 3, 1};
  EXPECT_EQ(PickReplicaHosts(load, 2, PlacementPolicy::kSpread),
            (std::vector<size_t>{1, 3}));
  EXPECT_EQ(PickReplicaHosts(load, 3, PlacementPolicy::kSpread),
            (std::vector<size_t>{1, 2, 3}));
}

TEST(PlacementTest, SpreadBreaksTiesByIndexDeterministically) {
  std::vector<size_t> load = {2, 2, 2, 2, 2};
  EXPECT_EQ(PickReplicaHosts(load, 3, PlacementPolicy::kSpread),
            (std::vector<size_t>{0, 1, 2}));
}

TEST(PlacementTest, ResultIsAlwaysAscendingAndClamped) {
  std::vector<size_t> load = {9, 1, 8, 0};
  std::vector<size_t> pick = PickReplicaHosts(load, 99, PlacementPolicy::kSpread);
  EXPECT_EQ(pick.size(), load.size()) << "rf clamps to the host count";
  for (size_t i = 1; i < pick.size(); ++i) {
    EXPECT_LT(pick[i - 1], pick[i]);
  }
  EXPECT_TRUE(PickReplicaHosts(load, 0, PlacementPolicy::kSpread).empty());
  EXPECT_TRUE(PickReplicaHosts({}, 3, PlacementPolicy::kFirstFit).empty());
}

}  // namespace
}  // namespace ficus::cluster
