#include "src/repl/name_cache.h"

namespace ficus::repl {

NameCache::NameCache(MetricRegistry* metrics, size_t capacity)
    : registry_(metrics != nullptr ? metrics : &owned_registry_),
      hits_(registry_->counter("repl.name_cache.hit")),
      misses_(registry_->counter("repl.name_cache.miss")),
      neg_hits_(registry_->counter("repl.name_cache.neg_hit")),
      invalidates_(registry_->counter("repl.name_cache.invalidate")),
      capacity_(capacity),
      shard_capacity_(capacity / kShards + 1) {}

std::optional<NameCache::Hit> NameCache::Lookup(FileId dir, std::string_view name,
                                                const VersionVector& dir_vv) {
  if (!enabled_) {
    misses_->Increment();
    return std::nullopt;
  }
  Key key{dir.Pack(), std::string(name)};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) {
    misses_->Increment();
    return std::nullopt;
  }
  if (it->second.dir_vv.Compare(dir_vv) != VectorOrder::kEqual) {
    // The directory moved on since the fill — locally or at a remote
    // replica whose update has since propagated. Stale binding dies here.
    shard.table.erase(it);
    invalidates_->Increment();
    misses_->Increment();
    return std::nullopt;
  }
  const Entry& entry = it->second;
  if (entry.negative) {
    neg_hits_->Increment();
    return Hit{true, FileId{}, FicusFileType::kRegular};
  }
  hits_->Increment();
  return Hit{false, entry.child, entry.type};
}

void NameCache::Enter(FileId dir, std::string_view name, Entry entry) {
  if (!enabled_) {
    return;
  }
  Key key{dir.Pack(), std::string(name)};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.table.size() >= shard_capacity_ && shard.table.count(key) == 0) {
    // Capacity replacement, not coherence: evict an arbitrary entry
    // (hash order ~ random) without charging the invalidate counter.
    shard.table.erase(shard.table.begin());
  }
  shard.table[std::move(key)] = std::move(entry);
}

void NameCache::EnterPositive(FileId dir, std::string_view name,
                              const VersionVector& dir_vv, FileId child,
                              FicusFileType type) {
  Entry entry;
  entry.negative = false;
  entry.child = child;
  entry.type = type;
  entry.dir_vv = dir_vv;
  Enter(dir, name, std::move(entry));
}

void NameCache::EnterNegative(FileId dir, std::string_view name,
                              const VersionVector& dir_vv) {
  Entry entry;
  entry.negative = true;
  entry.dir_vv = dir_vv;
  Enter(dir, name, std::move(entry));
}

void NameCache::Invalidate(FileId dir, std::string_view name) {
  Key key{dir.Pack(), std::string(name)};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.table.erase(key) != 0) {
    invalidates_->Increment();
  }
}

void NameCache::InvalidateDir(FileId dir) {
  const uint64_t packed = dir.Pack();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.table.begin(); it != shard.table.end();) {
      if (it->first.dir == packed) {
        it = shard.table.erase(it);
        invalidates_->Increment();
      } else {
        ++it;
      }
    }
  }
}

void NameCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.table.clear();
  }
}

NameCacheStats NameCache::stats() const {
  NameCacheStats out;
  out.hits = hits_->value();
  out.misses = misses_->value();
  out.neg_hits = neg_hits_->value();
  out.invalidates = invalidates_->value();
  return out;
}

size_t NameCache::size() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.table.size();
  }
  return total;
}

}  // namespace ficus::repl
