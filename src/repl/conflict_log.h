// Record of detected conflicts. Conflicting updates to ordinary files are
// "detected and reported to the owner" (paper abstract); conflicting
// directory updates are automatically repaired but still worth auditing.
// The log is the simulation's stand-in for the owner-notification channel.
#ifndef FICUS_SRC_REPL_CONFLICT_LOG_H_
#define FICUS_SRC_REPL_CONFLICT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/repl/ids.h"
#include "src/repl/version_vector.h"

namespace ficus::repl {

enum class ConflictKind : uint8_t {
  kFileUpdate,       // concurrent writes to a regular file — needs the owner
  kDirectoryRepair,  // concurrent directory ops — repaired automatically
  kNameCollision,    // same name created concurrently for different files
  kRemoveUpdate,     // delete raced an unseen update — entry resurrected
};

struct ConflictRecord {
  ConflictKind kind = ConflictKind::kFileUpdate;
  GlobalFileId id;
  ReplicaId local_replica = kInvalidReplica;
  ReplicaId remote_replica = kInvalidReplica;
  VersionVector local_vv;
  VersionVector remote_vv;
  uint64_t detected_at = 0;  // simulated time
  std::string detail;
};

// Thread-safe: reporters (logical layer, propagation workers) and
// readers (oracle, tests) may interleave; records() hands back a
// snapshot copy.
class ConflictLog {
 public:
  void Report(ConflictRecord record) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(record));
  }

  std::vector<ConflictRecord> records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  size_t CountOf(ConflictKind kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& r : records_) {
      if (r.kind == kind) {
        ++n;
      }
    }
    return n;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<ConflictRecord> records_;
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_CONFLICT_LOG_H_
