// A dnlc-style name cache for the Ficus logical layer, modelled on the
// BSD vfs name cache: pathname translation is the hottest operation a
// file system serves, and most translations repeat, so the logical layer
// remembers (directory file-id, component) -> child bindings instead of
// re-reading and re-presenting the whole directory on every Lookup.
//
// Entries come in two flavours:
//   * positive — the component resolved to a child (file-id + type);
//   * negative — the component was absent, so repeated misses (PATH
//     searches, create-probes) fail without touching the directory.
//
// Coherence. Every entry is stamped with the directory's version vector
// as served by the replica that answered the fill. A hit is honoured
// only when the stamped vector equals the directory's current vector —
// any local update, rename, remove, reconcile-merge, or remotely
// propagated change advances the directory's vector and thereby kills
// every stale binding wholesale, including ones made under a replica
// that has since been healed. Local mutation paths additionally shoot
// down the affected names eagerly (the cheap, precise half of the BSD
// cache_purge discipline) so a writer never observes its own stale
// entry even within one version-vector tick.
//
// Concurrency. The table is sharded by key hash; each shard has its own
// mutex, held only for the table operation itself (never across any I/O
// or RPC), so the PR-6 threaded runtime's NFS workers contend only when
// they hash to the same shard. Lock order: a shard mutex is a leaf —
// nothing is acquired under it.
//
// Metrics: repl.name_cache.{hit,miss,neg_hit,invalidate} in the shared
// MetricRegistry.
#ifndef FICUS_SRC_REPL_NAME_CACHE_H_
#define FICUS_SRC_REPL_NAME_CACHE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/metrics.h"
#include "src/repl/types.h"

namespace ficus::repl {

// Snapshot of the cache's registry cells (tests / bench reporting).
struct NameCacheStats {
  uint64_t hits = 0;        // positive hits
  uint64_t misses = 0;      // absent or stale entries
  uint64_t neg_hits = 0;    // negative hits (known-absent names)
  uint64_t invalidates = 0; // entries dropped by shootdown or staleness
};

class NameCache {
 public:
  // `metrics` (borrowed, optional) receives the `repl.name_cache.*`
  // counters; without one the cache keeps them in a private registry.
  // `capacity` bounds the total entry count across all shards.
  explicit NameCache(MetricRegistry* metrics = nullptr, size_t capacity = 16384);

  // A resolved cache entry. `negative` means the name is known absent;
  // file/type are meaningful only when it is false.
  struct Hit {
    bool negative = false;
    FileId file;
    FicusFileType type = FicusFileType::kRegular;
  };

  // Looks up (dir, name) and validates the entry against the directory's
  // current version vector. A stamped vector that no longer equals
  // `dir_vv` means the directory changed since the fill — the entry is
  // dropped (counted as an invalidate) and the lookup misses.
  std::optional<Hit> Lookup(FileId dir, std::string_view name,
                            const VersionVector& dir_vv);

  // Fill paths; `dir_vv` is the directory's version vector as served by
  // the replica the caller just consulted. No-ops while disabled.
  void EnterPositive(FileId dir, std::string_view name, const VersionVector& dir_vv,
                     FileId child, FicusFileType type);
  void EnterNegative(FileId dir, std::string_view name, const VersionVector& dir_vv);

  // Precise shootdown of one binding (create kills the negative entry,
  // remove/rename kill the positive one). Counted when present.
  void Invalidate(FileId dir, std::string_view name);
  // Shoots down every binding under `dir` — the reconcile-merge hammer.
  void InvalidateDir(FileId dir);
  // Drops everything (remount, volume switch, bench cold-start).
  void Clear();

  // Disabling turns Lookup into a guaranteed miss and the fills into
  // no-ops, so benchmarks can measure the uncached path with the same
  // stack. Enabled by default.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  NameCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Key {
    uint64_t dir = 0;  // FileId::Pack() of the directory
    std::string name;
    bool operator==(const Key& o) const { return dir == o.dir && name == o.name; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix-style scramble of the dir id folded into the name hash.
      uint64_t h = k.dir + 0x9e3779b97f4a7c15ULL;
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h ^= std::hash<std::string>{}(k.name);
      return static_cast<size_t>(h ^ (h >> 31));
    }
  };
  struct Entry {
    bool negative = false;
    FileId child;
    FicusFileType type = FicusFileType::kRegular;
    VersionVector dir_vv;
  };

  static constexpr size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> table;
  };

  Shard& ShardFor(const Key& key) const {
    return shards_[KeyHash{}(key) % kShards];
  }
  void Enter(FileId dir, std::string_view name, Entry entry);

  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  Counter* hits_;
  Counter* misses_;
  Counter* neg_hits_;
  Counter* invalidates_;
  size_t capacity_;
  size_t shard_capacity_;
  bool enabled_ = true;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_NAME_CACHE_H_
