// Update-propagation daemon (paper section 3.2).
//
// When a logical layer applies an update at one replica it multicasts an
// update notification; each receiving physical layer files the event in
// its new-version cache. This daemon is the consumer of that cache: when
// it "deems it appropriate to expend the effort" — here, when RunOnce() is
// called, optionally gated by a minimum age so bursty updates coalesce —
// it pulls the newer version from the advertising replica:
//   * regular file, remote strictly newer  -> shadow-commit install;
//   * regular file, concurrent             -> conflict flag + owner report;
//   * directory                            -> directory reconciliation
//                                             (contents cannot be copied,
//                                             operations must be replayed).
#ifndef FICUS_SRC_REPL_PROPAGATION_H_
#define FICUS_SRC_REPL_PROPAGATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/repl/conflict_log.h"
#include "src/repl/physical.h"
#include "src/repl/reconcile.h"
#include "src/repl/resolver.h"

namespace ficus::repl {

// Snapshot of the daemon's `repl.propagation.*` registry cells; existing
// callers keep reading plain fields.
struct PropagationStats {
  uint64_t runs = 0;
  uint64_t pulled_files = 0;
  uint64_t reconciled_dirs = 0;
  uint64_t conflicts_flagged = 0;
  uint64_t skipped_current = 0;      // local already up to date
  uint64_t deferred_unreachable = 0; // source unreachable; retried later
  uint64_t deferred_backoff = 0;     // still inside a retry backoff window
  uint64_t retry_dropped = 0;        // retry budget exhausted; entry dropped
  // Membership-driven suppression (`repl.prop.skipped_dead`): entries
  // whose source the failure detector has condemned — no RPC issued, no
  // retry budget charged; the entry waits for recovery resync.
  uint64_t skipped_dead = 0;
  uint64_t bytes_pulled = 0;         // payload bytes actually transferred
  // Delta path (`repl.prop.delta.*`).
  uint64_t delta_blocks_fetched = 0;   // differing blocks pulled via ranged reads
  uint64_t delta_bytes_saved = 0;      // file bytes NOT transferred thanks to deltas
  uint64_t whole_file_fallbacks = 0;   // delta attempted/eligible but whole file pulled
  uint64_t batched_probes = 0;         // BatchGetAttributes probe RPCs issued
  // Apply side (`repl.prop.apply.*`): local device bytes written while
  // installing pulled versions — the delta *commit* savings, complementing
  // delta_bytes_saved's wire savings.
  uint64_t apply_bytes_written = 0;
};

struct PropagationConfig {
  // Entries younger than this stay cached (0 = propagate immediately).
  // Delaying "may reduce the overall propagation cost when updates are
  // bursty" (section 3.2).
  SimTime min_age = 0;
  // When a pull fails because the source is unreachable or timed out, the
  // entry ages with capped exponential backoff instead of being retried on
  // every run: the k-th retry waits min(retry_backoff_base * 2^k,
  // retry_backoff_cap). 0 keeps the legacy retry-every-run behaviour.
  SimTime retry_backoff_base = 0;
  SimTime retry_backoff_cap = 30 * kSecond;
  // After this many failed pulls the entry is dropped — the periodic
  // reconciliation protocol is the safety net that still converges the
  // replica (section 3.3). 0 = never drop.
  uint32_t retry_budget = 0;
  // Delta pulls: compare per-block digests with the source and fetch only
  // the differing blocks, assembling the rest from the local copy. Falls
  // back to a whole-file transfer for small files, unavailable digests,
  // or when the delta would not pay for itself.
  bool delta_enabled = true;
  // Files smaller than this always go whole-file (the digest round trip
  // would cost more than it saves).
  uint64_t delta_min_bytes = 16 * 1024;
  // Fall back to whole-file when more than this fraction of the remote's
  // blocks differ from the local copy.
  double delta_max_diff = 0.5;
};

class PropagationDaemon {
 public:
  // `metrics` (borrowed, optional) receives the `repl.propagation.*`
  // counters; without one the daemon keeps them in a private registry.
  PropagationDaemon(PhysicalLayer* local, ReplicaResolver* resolver, ConflictLog* log,
                    const Clock* clock, PropagationConfig config = PropagationConfig{},
                    MetricRegistry* metrics = nullptr);

  // Processes the new-version cache once. Unreachable sources and
  // too-young entries are put back for a later run. Each run is a traced
  // operation in its own right (the daemon has no syscall layer above it
  // to mint a context).
  Status RunOnce();

  PropagationStats stats() const;

  // Trace id stamped on the most recent RunOnce (0 before the first).
  TraceId last_trace() const { return last_trace_.load(std::memory_order_relaxed); }

 private:
  // Registry-backed counter cells, resolved once at construction.
  struct StatCells {
    Counter* runs;
    Counter* pulled_files;
    Counter* reconciled_dirs;
    Counter* conflicts_flagged;
    Counter* skipped_current;
    Counter* deferred_unreachable;
    Counter* deferred_backoff;
    Counter* retry_dropped;
    Counter* skipped_dead;
    Counter* bytes_pulled;
    Counter* delta_blocks_fetched;
    Counter* delta_bytes_saved;
    Counter* whole_file_fallbacks;
    Counter* batched_probes;
    Counter* apply_bytes_written;
  };

  // Backoff bookkeeping for an entry whose source keeps failing.
  struct RetryState {
    uint32_t attempts = 0;
    SimTime next_attempt = 0;
  };

  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

  // `probed` holds attributes prefetched by the pass's batched probe
  // phase, keyed by global file id; entries not in it fall back to a
  // per-file GetAttributes round trip.
  Status Propagate(const NewVersionEntry& entry,
                   const std::map<GlobalFileId, ReplicaAttributes>& probed);

  // Pulls the remote version's bytes via block deltas: compares remote
  // digests against the local copy and fetches only differing block runs.
  // Returns the fully assembled contents; `fetched_bytes` reports the
  // payload actually transferred. A non-ok result means "fall back to a
  // whole-file read" unless its code is kUnreachable/kTimedOut, which the
  // caller must surface to the retry machinery.
  StatusOr<std::vector<uint8_t>> TryDeltaFetch(FileId file, PhysicalApi* source,
                                               uint64_t* fetched_bytes);

  PhysicalLayer* local_;
  ReplicaResolver* resolver_;
  ConflictLog* log_;
  const Clock* clock_;
  PropagationConfig config_;
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  StatCells stats_;
  std::atomic<TraceId> last_trace_{0};
  std::map<GlobalFileId, RetryState> retries_;
};

// Threaded-runtime driver for one daemon: a dedicated worker thread
// draining a bounded, coalescing kick queue with condition-variable
// wakeups (SNIPPETS.md snippet 1's shape) instead of polled RunOnce.
//
// Kicks coalesce: a pass started after N kicks serves all N, so the
// queue never holds more than one pending pass — bounded by
// construction, no matter how fast notifications arrive. The daemon
// itself stays single-consumer (only this thread calls RunOnce); cross-
// thread safety below it comes from the physical layer's own locks.
class PropagationWorker {
 public:
  // `daemon` borrowed, must outlive the worker. The thread starts
  // immediately and sleeps until the first Kick.
  explicit PropagationWorker(PropagationDaemon* daemon);
  ~PropagationWorker();

  PropagationWorker(const PropagationWorker&) = delete;
  PropagationWorker& operator=(const PropagationWorker&) = delete;

  // Requests one propagation pass; returns immediately. Safe from any
  // thread, including network-delivery callbacks.
  void Kick();

  // Blocks until every kick issued before the call has been served by a
  // complete pass (a pass that *started* after the kick).
  void Drain();

  // Completed passes (monotonic).
  uint64_t passes() const;

  // First non-ok status any pass returned since construction (passes
  // keep running; errors here are diagnostic).
  Status last_error() const;

 private:
  void Loop();

  PropagationDaemon* daemon_;
  mutable std::mutex mu_;
  std::condition_variable kicked_;  // worker waits for requested_ > served_
  std::condition_variable idle_;    // Drain waits for served_ to catch up
  uint64_t requested_ = 0;  // kicks issued
  uint64_t served_ = 0;     // kicks covered by a completed pass
  uint64_t passes_ = 0;
  bool stop_ = false;
  Status last_error_;
  std::thread thread_;
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_PROPAGATION_H_
