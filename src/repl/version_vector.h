// Version vectors, after Parker et al., "Detection of Mutual Inconsistency
// in Distributed Systems" (IEEE TSE 1983) — reference [14] of the paper.
//
// Each file replica carries a vector mapping replica-id -> number of
// updates that replica has originated. Comparing two vectors classifies
// the replicas' histories: equal, one dominates (strictly newer), or
// concurrent (conflicting unsynchronized updates, section 3.1).
#ifndef FICUS_SRC_REPL_VERSION_VECTOR_H_
#define FICUS_SRC_REPL_VERSION_VECTOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/serialize.h"
#include "src/repl/ids.h"

namespace ficus::repl {

enum class VectorOrder {
  kEqual,
  kDominates,    // lhs strictly newer than rhs
  kDominatedBy,  // rhs strictly newer than lhs
  kConcurrent,   // incomparable: conflicting updates
};

class VersionVector {
 public:
  VersionVector() = default;

  // Records one more update originated at `replica`.
  void Increment(ReplicaId replica) { ++counters_[replica]; }

  uint64_t Count(ReplicaId replica) const;

  // Component-wise comparison of this (lhs) against other (rhs).
  VectorOrder Compare(const VersionVector& other) const;

  bool Dominates(const VersionVector& other) const {
    VectorOrder order = Compare(other);
    return order == VectorOrder::kDominates || order == VectorOrder::kEqual;
  }
  bool StrictlyDominates(const VersionVector& other) const {
    return Compare(other) == VectorOrder::kDominates;
  }
  bool ConcurrentWith(const VersionVector& other) const {
    return Compare(other) == VectorOrder::kConcurrent;
  }

  // Component-wise maximum — the history that has seen both.
  void MergeWith(const VersionVector& other);
  static VersionVector Merge(const VersionVector& a, const VersionVector& b);

  bool Empty() const { return counters_.empty(); }
  size_t Size() const { return counters_.size(); }
  uint64_t TotalUpdates() const;

  bool operator==(const VersionVector& other) const {
    return Compare(other) == VectorOrder::kEqual;
  }

  // "{r1:3, r4:1}" for logs and conflict reports.
  std::string ToString() const;

  void Serialize(ByteWriter& w) const;
  static StatusOr<VersionVector> Deserialize(ByteReader& r);

  const std::map<ReplicaId, uint64_t>& counters() const { return counters_; }

 private:
  // Absent component == 0; zero entries are never stored, so equal
  // histories always have identical maps.
  std::map<ReplicaId, uint64_t> counters_;
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_VERSION_VECTOR_H_
