#include "src/repl/physical.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/vfs/vnode.h"

namespace ficus::repl {

namespace {

constexpr char kDirFile[] = ".dir";
constexpr char kAttrFile[] = ".attr";
constexpr char kMetaFile[] = "volume.meta";
constexpr char kOrphanDir[] = "orphans";
constexpr char kAttrSuffix[] = ".attr";
constexpr char kShadowSuffix[] = ".shadow";
constexpr uint32_t kMetaMagic = 0xF1C0501D;
// Header of every on-disk Ficus directory file: magic + generation.
constexpr uint32_t kDirMagic = 0xF1C0D1D0;
constexpr size_t kDirHeaderSize = 12;  // u32 magic + u64 generation
// v2 header appends the order-independent digest of the entry set, so a
// stale or corrupted parsed-directory image is detectable on load the
// same way a stale cached parse is detectable by generation. v1 files
// (pre-digest) still load; the next store rewrites them as v2.
constexpr uint32_t kDirMagicV2 = 0xF1C0D1D2;
constexpr size_t kDirHeaderSizeV2 = 20;
// Folded in place of a child's subtree digest when the descent revisits a
// directory already on the current path (should be impossible in the
// acyclic namespace; the marker keeps the rollup finite regardless).
constexpr uint64_t kDigestCycleMarker = 0xF1C05C1CF1C05C1CULL;  // u32 magic + u64 generation + u64 entry digest

bool HasSuffix(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

bool IsHexName(std::string_view name) {
  if (name.size() != 16) {
    return false;
  }
  for (char c : name) {
    bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) {
      return false;
    }
  }
  return true;
}

// Client-supplied entry names must be valid single path components.
Status ValidateEntryName(std::string_view name) {
  if (name.empty() || name == "." || name == "..") {
    return InvalidArgumentError("invalid entry name");
  }
  if (name.size() > vfs::kMaxComponentLength) {
    return NameTooLongError(std::string(name.substr(0, 32)) + "...");
  }
  if (name.find('/') != std::string_view::npos) {
    return InvalidArgumentError("entry name contains '/'");
  }
  return OkStatus();
}

// Finds the alive entry whose *presented* name matches (clients address
// entries by presented names).
StatusOr<size_t> FindAliveByPresentedName(const std::vector<FicusDirEntry>& entries,
                                          std::string_view name) {
  // Presenting once keeps the scan O(N); a per-entry PresentedEntryName
  // call here would make every directory mutation quadratic.
  std::vector<FicusDirEntry> presented = PresentEntries(entries);
  for (size_t i = 0; i < presented.size(); ++i) {
    if (presented[i].alive && presented[i].name == name) {
      return i;
    }
  }
  return NotFoundError(std::string(name));
}

}  // namespace

namespace {
// Inode-extension markers for AttrPlacement::kInode.
constexpr uint8_t kExtInlineAttrs = 0x01;  // attributes follow inline
constexpr uint8_t kExtSpilled = 0x02;      // attributes live in the aux file
}  // namespace

PhysicalLayer::PhysicalLayer(ufs::Ufs* ufs, const Clock* clock, PhysicalOptions options,
                             MetricRegistry* metrics)
    : ufs_(ufs),
      clock_(clock),
      options_(options),
      registry_(metrics != nullptr ? metrics : &owned_registry_) {
  stats_.opens_noted = registry_->counter("repl.physical.opens_noted");
  stats_.closes_noted = registry_->counter("repl.physical.closes_noted");
  stats_.installs = registry_->counter("repl.physical.installs");
  stats_.entries_applied = registry_->counter("repl.physical.entries_applied");
  stats_.name_conflicts_resolved = registry_->counter("repl.physical.name_conflicts_resolved");
  stats_.insert_delete_conflicts = registry_->counter("repl.physical.insert_delete_conflicts");
  stats_.remove_update_conflicts = registry_->counter("repl.physical.remove_update_conflicts");
  stats_.notifications_noted = registry_->counter("repl.physical.notifications_noted");
  stats_.shadows_recovered = registry_->counter("repl.physical.shadows_recovered");
  stats_.orphans_reclaimed = registry_->counter("repl.physical.orphans_reclaimed");
  stats_.dir_cache_hits = registry_->counter("repl.physical.dir_cache.hits");
  stats_.dir_cache_misses = registry_->counter("repl.physical.dir_cache.misses");
  stats_.crdt_rename_merges = registry_->counter("repl.physical.crdt_rename_merges");
  stats_.commit_delta = registry_->counter("repl.phys.commit.delta");
  stats_.commit_shadow = registry_->counter("repl.phys.commit.shadow");
  stats_.journal_replays = registry_->counter("repl.phys.commit.journal_replays");
  stats_.commit_bytes_written = registry_->counter("repl.phys.commit.bytes_written");
}

PhysicalStats PhysicalLayer::stats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PhysicalStats out;
  out.opens_noted = stats_.opens_noted->value();
  out.closes_noted = stats_.closes_noted->value();
  out.installs = stats_.installs->value();
  out.entries_applied = stats_.entries_applied->value();
  out.name_conflicts_resolved = stats_.name_conflicts_resolved->value();
  out.insert_delete_conflicts = stats_.insert_delete_conflicts->value();
  out.remove_update_conflicts = stats_.remove_update_conflicts->value();
  out.notifications_noted = stats_.notifications_noted->value();
  out.shadows_recovered = stats_.shadows_recovered->value();
  out.orphans_reclaimed = stats_.orphans_reclaimed->value();
  out.dir_cache_hits = stats_.dir_cache_hits->value();
  out.dir_cache_misses = stats_.dir_cache_misses->value();
  out.crdt_rename_merges = stats_.crdt_rename_merges->value();
  out.commit_delta = stats_.commit_delta->value();
  out.commit_shadow = stats_.commit_shadow->value();
  out.journal_replays = stats_.journal_replays->value();
  out.commit_bytes_written = stats_.commit_bytes_written->value();
  return out;
}

Status PhysicalLayer::CheckAttached() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!attached_) {
    return InternalError("physical layer not attached to a volume replica");
  }
  return OkStatus();
}

Status PhysicalLayer::PersistMeta() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum meta, ufs_->DirLookup(container_, kMetaFile));
  std::vector<uint8_t> bytes;
  ByteWriter w(bytes);
  w.PutU32(kMetaMagic);
  PutVolumeId(w, volume_);
  w.PutU32(replica_);
  w.PutU32(next_unique_);
  w.PutU8(static_cast<uint8_t>(options_.attr_placement));
  return ufs_->WriteAll(meta, bytes);
}

Status PhysicalLayer::CreateVolume(const VolumeId& volume, ReplicaId replica,
                                   std::string_view container_name, bool first_replica) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (replica == kInvalidReplica) {
    return InvalidArgumentError("replica id 0 is reserved");
  }
  auto existing = ufs_->DirLookup(ufs::kRootInode, container_name);
  if (existing.ok()) {
    return ExistsError(std::string(container_name));
  }
  FICUS_ASSIGN_OR_RETURN(container_,
                         ufs_->CreateFile(ufs::kRootInode, container_name,
                                          ufs::FileType::kDirectory, 0755, 0, 0));
  volume_ = volume;
  replica_ = replica;
  next_unique_ = 1;
  attached_ = true;
  locations_.clear();
  alive_refs_.clear();
  digest_tree_.clear();
  digest_parents_.clear();

  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum meta,
                         ufs_->CreateFile(container_, kMetaFile, ufs::FileType::kRegular,
                                          0600, 0, 0));
  (void)meta;
  FICUS_RETURN_IF_ERROR(PersistMeta());

  // Ficus root directory storage.
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum root_dir,
                         ufs_->CreateFile(container_, kRootFileId.ToHex(),
                                          ufs::FileType::kDirectory, 0755, 0, 0));
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum dir_file,
                         ufs_->CreateFile(root_dir, kDirFile, ufs::FileType::kRegular, 0600,
                                          0, 0));
  FICUS_RETURN_IF_ERROR(ufs_->WriteAll(dir_file, SerializeDirEntries({})));
  ReplicaAttributes attrs;
  attrs.id = GlobalFileId{volume_, kRootFileId};
  attrs.type = FicusFileType::kDirectory;
  attrs.mtime = Now();
  if (first_replica) {
    attrs.vv.Increment(replica_);
  }
  if (options_.attr_placement == AttrPlacement::kAuxFile) {
    FICUS_RETURN_IF_ERROR(
        ufs_->CreateFile(root_dir, kAttrFile, ufs::FileType::kRegular, 0600, 0, 0).status());
  }
  locations_[kRootFileId] = Location{container_, root_dir, FicusFileType::kDirectory};
  return StoreAttributes(kRootFileId, attrs);
}

Status PhysicalLayer::Attach(std::string_view container_name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(container_, ufs_->DirLookup(ufs::kRootInode, container_name));
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum meta, ufs_->DirLookup(container_, kMetaFile));
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ufs_->ReadAll(meta));
  ByteReader r(bytes);
  FICUS_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kMetaMagic) {
    return CorruptError("bad volume.meta magic");
  }
  FICUS_RETURN_IF_ERROR(GetVolumeId(r, volume_));
  FICUS_ASSIGN_OR_RETURN(replica_, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(next_unique_, r.GetU32());
  if (!r.AtEnd()) {
    FICUS_ASSIGN_OR_RETURN(uint8_t placement, r.GetU8());
    options_.attr_placement = static_cast<AttrPlacement>(placement);
  }
  attached_ = true;
  locations_.clear();
  alive_refs_.clear();
  digest_tree_.clear();
  digest_parents_.clear();

  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum root_dir,
                         ufs_->DirLookup(container_, kRootFileId.ToHex()));
  locations_[kRootFileId] = Location{container_, root_dir, FicusFileType::kDirectory};
  // Journal recovery first: a sealed block-remap commit must be replayed
  // before anything walks the tree it was mid-swing on. (Ufs::Mount also
  // recovers, but simulated reboots re-attach without remounting.)
  FICUS_ASSIGN_OR_RETURN(bool replayed, ufs_->RecoverJournal());
  if (replayed) {
    stats_.journal_replays->Increment();
  }
  FICUS_RETURN_IF_ERROR(RecoverShadows(root_dir));
  // A crash after the repoint but before FreeInode strands the superseded
  // inode with no directory reference; the shadow sweep cannot see it (the
  // shadow name may already be gone), so reclaim at the UFS level.
  FICUS_ASSIGN_OR_RETURN(uint32_t reclaimed, ufs_->ReclaimOrphans());
  stats_.orphans_reclaimed->Add(reclaimed);
  return ScanTree(root_dir, kRootFileId);
}

Status PhysicalLayer::RecoverShadows(ufs::InodeNum ufs_dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(std::vector<ufs::UfsDirEntry> entries, ufs_->DirList(ufs_dir));
  for (const auto& e : entries) {
    if (HasSuffix(e.name, kShadowSuffix)) {
      std::string base = e.name.substr(0, e.name.size() - (sizeof(kShadowSuffix) - 1));
      auto base_ino = ufs_->DirLookup(ufs_dir, base);
      if (base_ino.ok() && base_ino.value() == e.ino) {
        // Crash fell between the repoint and the shadow-entry removal: the
        // swap committed, only the spare name remains.
        FICUS_RETURN_IF_ERROR(ufs_->DirRemove(ufs_dir, e.name));
      } else {
        // Crash fell before the repoint: the original survives and the
        // shadow is discarded (section 3.2).
        FICUS_RETURN_IF_ERROR(ufs_->Unlink(ufs_dir, e.name));
      }
      stats_.shadows_recovered->Increment();
    } else if (e.type == ufs::FileType::kDirectory) {
      FICUS_RETURN_IF_ERROR(RecoverShadows(e.ino));
    }
  }
  return OkStatus();
}

Status PhysicalLayer::ScanTree(ufs::InodeNum ufs_dir, FileId dir_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(std::vector<ufs::UfsDirEntry> entries, ufs_->DirList(ufs_dir));
  for (const auto& e : entries) {
    if (e.name == kDirFile || e.name == kAttrFile || HasSuffix(e.name, kAttrSuffix) ||
        !IsHexName(e.name)) {
      continue;
    }
    FICUS_ASSIGN_OR_RETURN(FileId file, FileId::FromHex(e.name));
    if (e.type == ufs::FileType::kDirectory) {
      locations_[file] = Location{ufs_dir, e.ino, FicusFileType::kDirectory};
      FICUS_RETURN_IF_ERROR(ScanTree(e.ino, file));
    } else {
      locations_[file] = Location{ufs_dir, ufs::kInvalidInode, FicusFileType::kRegular};
    }
  }
  // Refine types and liveness from the Ficus directory file itself.
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> ficus_entries, LoadDirEntries(dir_id));
  for (const auto& fe : ficus_entries) {
    if (fe.alive) {
      ++alive_refs_[fe.file];
    }
    LinkDigestParent(fe.file, dir_id);
    auto it = locations_.find(fe.file);
    if (it != locations_.end()) {
      it->second.type = fe.type;
    }
  }
  return OkStatus();
}

StatusOr<PhysicalLayer::Location> PhysicalLayer::Find(FileId file) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = locations_.find(file);
  if (it == locations_.end()) {
    return NotFoundError("no replica of file " + file.ToString() + " stored here");
  }
  return it->second;
}

StatusOr<ufs::InodeNum> PhysicalLayer::DataInode(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Location loc, Find(file));
  if (IsDirectoryLike(loc.type)) {
    return IsDirError("file " + file.ToString() + " is a directory");
  }
  return ufs_->DirLookup(loc.parent_dir, file.ToHex());
}

StatusOr<ufs::InodeNum> PhysicalLayer::AttrInode(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Location loc, Find(file));
  if (IsDirectoryLike(loc.type)) {
    return ufs_->DirLookup(loc.self_dir, kAttrFile);
  }
  return ufs_->DirLookup(loc.parent_dir, file.ToHex() + kAttrSuffix);
}

StatusOr<ufs::InodeNum> PhysicalLayer::AttrExtInode(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Location loc, Find(file));
  if (IsDirectoryLike(loc.type)) {
    return loc.self_dir;
  }
  return ufs_->DirLookup(loc.parent_dir, file.ToHex());
}

StatusOr<ReplicaAttributes> PhysicalLayer::LoadAttributes(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (options_.attr_placement == AttrPlacement::kInode) {
    FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, AttrExtInode(file));
    FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> ext, ufs_->ReadExt(ino));
    if (!ext.empty() && ext[0] == kExtInlineAttrs) {
      std::vector<uint8_t> bytes(ext.begin() + 1, ext.end());
      return ReplicaAttributes::FromBytes(bytes);
    }
    // Spilled (or legacy) attributes fall through to the aux file.
  }
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, AttrInode(file));
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ufs_->ReadAll(ino));
  return ReplicaAttributes::FromBytes(bytes);
}

Status PhysicalLayer::StoreAttributes(FileId file, const ReplicaAttributes& attrs) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Every version-vector or conflict-flag change funnels through here, so
  // this is the one choke point for content-state digest invalidation.
  // (Mtime-only stores over-invalidate; that is safe, merely lazy work.)
  InvalidateDigestUp(file);
  if (options_.attr_placement == AttrPlacement::kInode) {
    std::vector<uint8_t> bytes = attrs.ToBytes();
    FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, AttrExtInode(file));
    if (bytes.size() + 1 <= ufs::kMaxInodeExt) {
      std::vector<uint8_t> ext;
      ext.reserve(bytes.size() + 1);
      ext.push_back(kExtInlineAttrs);
      ext.insert(ext.end(), bytes.begin(), bytes.end());
      return ufs_->WriteExt(ino, ext);
    }
    // Too large for the inode (a very wide version vector): spill to an
    // aux file and leave a marker so loads know where to look.
    FICUS_RETURN_IF_ERROR(ufs_->WriteExt(ino, {kExtSpilled}));
    FICUS_ASSIGN_OR_RETURN(Location loc, Find(file));
    std::string aux_name =
        IsDirectoryLike(loc.type) ? std::string(kAttrFile) : file.ToHex() + kAttrSuffix;
    ufs::InodeNum parent = IsDirectoryLike(loc.type) ? loc.self_dir : loc.parent_dir;
    auto aux = ufs_->DirLookup(parent, aux_name);
    if (!aux.ok()) {
      FICUS_ASSIGN_OR_RETURN(
          aux, ufs_->CreateFile(parent, aux_name, ufs::FileType::kRegular, 0600, 0, 0));
    }
    return ufs_->WriteAll(aux.value(), bytes);
  }
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, AttrInode(file));
  return ufs_->WriteAll(ino, attrs.ToBytes());
}

StatusOr<std::vector<FicusDirEntry>> PhysicalLayer::LoadDirEntries(FileId dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Location loc, Find(dir));
  if (!IsDirectoryLike(loc.type)) {
    return NotDirError("file " + dir.ToString() + " is not a directory");
  }
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, ufs_->DirLookup(loc.self_dir, kDirFile));

  // Peek at the header: a matching generation validates the cached parse.
  std::vector<uint8_t> header;
  FICUS_RETURN_IF_ERROR(ufs_->ReadAt(ino, 0, kDirHeaderSizeV2, header).status());
  uint64_t generation = 0;
  uint64_t stored_digest = 0;
  size_t header_size = 0;  // 0 = legacy header-less file
  bool has_digest = false;
  if (header.size() >= kDirHeaderSize) {
    ByteReader hr(header);
    FICUS_ASSIGN_OR_RETURN(uint32_t magic, hr.GetU32());
    if (magic == kDirMagicV2 && header.size() >= kDirHeaderSizeV2) {
      FICUS_ASSIGN_OR_RETURN(generation, hr.GetU64());
      FICUS_ASSIGN_OR_RETURN(stored_digest, hr.GetU64());
      header_size = kDirHeaderSizeV2;
      has_digest = true;
    } else if (magic == kDirMagic) {
      FICUS_ASSIGN_OR_RETURN(generation, hr.GetU64());
      header_size = kDirHeaderSize;
    }
  }
  if (header_size != 0) {
    auto it = dir_cache_.find(dir);
    if (it != dir_cache_.end() && it->second.generation == generation) {
      stats_.dir_cache_hits->Increment();
      return it->second.entries;
    }
  }
  stats_.dir_cache_misses->Increment();

  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ufs_->ReadAll(ino));
  std::vector<uint8_t> body;
  if (header_size != 0) {
    body.assign(bytes.begin() + static_cast<std::ptrdiff_t>(header_size), bytes.end());
  } else {
    body = std::move(bytes);  // legacy header-less file (fresh empty dirs)
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, DeserializeDirEntries(body));
  if (has_digest && EntrySetDigest(entries) != stored_digest) {
    return CorruptError("directory " + dir.ToString() +
                        ": entry digest mismatch (stale or damaged directory file)");
  }
  if (dir_cache_.size() >= kMaxCachedDirs) {
    dir_cache_.erase(dir_cache_.begin());
  }
  dir_cache_[dir] = CachedDir{generation, entries};
  return entries;
}

Status PhysicalLayer::StoreDirEntries(FileId dir, const std::vector<FicusDirEntry>& entries) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Location loc, Find(dir));
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, ufs_->DirLookup(loc.self_dir, kDirFile));
  // Next generation: one past whatever is cached or on disk.
  uint64_t generation = 1;
  auto cached = dir_cache_.find(dir);
  if (cached != dir_cache_.end()) {
    generation = cached->second.generation + 1;
  } else {
    std::vector<uint8_t> header;
    FICUS_RETURN_IF_ERROR(ufs_->ReadAt(ino, 0, kDirHeaderSize, header).status());
    if (header.size() == kDirHeaderSize) {
      ByteReader hr(header);
      auto magic = hr.GetU32();
      if (magic.ok() && (magic.value() == kDirMagic || magic.value() == kDirMagicV2)) {
        auto old_gen = hr.GetU64();
        if (old_gen.ok()) {
          generation = old_gen.value() + 1;
        }
      }
    }
  }
  std::vector<uint8_t> bytes;
  ByteWriter w(bytes);
  w.PutU32(kDirMagicV2);
  w.PutU64(generation);
  w.PutU64(EntrySetDigest(entries));
  std::vector<uint8_t> body = SerializeDirEntries(entries);
  bytes.insert(bytes.end(), body.begin(), body.end());
  FICUS_RETURN_IF_ERROR(ufs_->WriteAll(ino, bytes));
  if (dir_cache_.size() >= kMaxCachedDirs) {
    dir_cache_.erase(dir_cache_.begin());
  }
  dir_cache_[dir] = CachedDir{generation, entries};
  // Keep the digest tree honest: every child named here hangs off this
  // directory for rollup purposes, and this directory's summary (plus
  // every ancestor's) is now stale.
  for (const auto& e : entries) {
    LinkDigestParent(e.file, dir);
  }
  InvalidateDigestUp(dir);
  return OkStatus();
}

bool PhysicalLayer::HasLiveEntries(FileId dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto entries = LoadDirEntries(dir);
  if (!entries.ok()) {
    return false;
  }
  for (const auto& e : *entries) {
    if (e.alive) {
      return true;
    }
  }
  return false;
}

StatusOr<bool> PhysicalLayer::SubtreeContains(FileId root, FileId candidate) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (root == candidate) {
    return true;
  }
  if (!Stores(root)) {
    return false;
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, LoadDirEntries(root));
  for (const auto& e : entries) {
    if (!e.alive || !IsDirectoryLike(e.type)) {
      continue;
    }
    FICUS_ASSIGN_OR_RETURN(bool inside, SubtreeContains(e.file, candidate));
    if (inside) {
      return true;
    }
  }
  return false;
}

Status PhysicalLayer::CreateStorage(FileId dir, FileId file, FicusFileType type,
                                    uint32_t owner_uid, const VersionVector& vv) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Location dir_loc, Find(dir));
  if (!IsDirectoryLike(dir_loc.type)) {
    return NotDirError("parent is not a directory");
  }
  ReplicaAttributes attrs;
  attrs.id = GlobalFileId{volume_, file};
  attrs.type = type;
  attrs.vv = vv;
  attrs.owner_uid = owner_uid;
  attrs.mtime = Now();

  bool aux = options_.attr_placement == AttrPlacement::kAuxFile;
  if (IsDirectoryLike(type)) {
    FICUS_ASSIGN_OR_RETURN(ufs::InodeNum self,
                           ufs_->CreateFile(dir_loc.self_dir, file.ToHex(),
                                            ufs::FileType::kDirectory, 0755, owner_uid, 0));
    FICUS_ASSIGN_OR_RETURN(ufs::InodeNum dir_file,
                           ufs_->CreateFile(self, kDirFile, ufs::FileType::kRegular, 0600, 0,
                                            0));
    FICUS_RETURN_IF_ERROR(ufs_->WriteAll(dir_file, SerializeDirEntries({})));
    if (aux) {
      FICUS_RETURN_IF_ERROR(
          ufs_->CreateFile(self, kAttrFile, ufs::FileType::kRegular, 0600, 0, 0).status());
    }
    locations_[file] = Location{dir_loc.self_dir, self, type};
  } else {
    FICUS_RETURN_IF_ERROR(ufs_->CreateFile(dir_loc.self_dir, file.ToHex(),
                                           ufs::FileType::kRegular, 0644, owner_uid, 0)
                              .status());
    if (aux) {
      FICUS_RETURN_IF_ERROR(ufs_->CreateFile(dir_loc.self_dir, file.ToHex() + kAttrSuffix,
                                             ufs::FileType::kRegular, 0600, 0, 0)
                                .status());
    }
    locations_[file] = Location{dir_loc.self_dir, ufs::kInvalidInode, type};
  }
  return StoreAttributes(file, attrs);
}

Status PhysicalLayer::BumpDirVersion(FileId dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(dir));
  attrs.vv.Increment(replica_);
  attrs.mtime = Now();
  return StoreAttributes(dir, attrs);
}

// --- PhysicalApi: attributes ---

StatusOr<ReplicaAttributes> PhysicalLayer::GetAttributes(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  return LoadAttributes(file);
}

Status PhysicalLayer::SetConflict(FileId file, bool conflict) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(file));
  attrs.conflict = conflict;
  return StoreAttributes(file, attrs);
}

StatusOr<std::vector<FileAttrResult>> PhysicalLayer::BatchGetAttributes(
    const std::vector<FileId>& files) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  std::vector<FileAttrResult> out;
  out.reserve(files.size());
  for (FileId file : files) {
    FileAttrResult row;
    row.file = file;
    auto attrs = LoadAttributes(file);
    row.status = attrs.status();
    if (attrs.ok()) {
      row.attrs = std::move(attrs).value();
    }
    out.push_back(std::move(row));
  }
  return out;
}

// --- PhysicalApi: file data ---

StatusOr<std::vector<uint8_t>> PhysicalLayer::ReadData(FileId file, uint64_t offset,
                                                       uint32_t length) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, DataInode(file));
  std::vector<uint8_t> out;
  FICUS_RETURN_IF_ERROR(ufs_->ReadAt(ino, offset, length, out).status());
  return out;
}

StatusOr<std::vector<uint8_t>> PhysicalLayer::ReadAllData(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, DataInode(file));
  return ufs_->ReadAll(ino);
}

StatusOr<uint64_t> PhysicalLayer::DataSize(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, DataInode(file));
  FICUS_ASSIGN_OR_RETURN(ufs::Inode inode, ufs_->ReadInode(ino));
  return inode.size;
}

StatusOr<BlockDigestInfo> PhysicalLayer::ReadBlockDigests(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(Location loc, Find(file));
  if (IsDirectoryLike(loc.type)) {
    return IsDirError("block digests apply to regular files only");
  }
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(file));
  FICUS_ASSIGN_OR_RETURN(uint64_t size, DataSize(file));
  auto it = digest_cache_.find(file);
  if (it != digest_cache_.end() && it->second.vv.Compare(attrs.vv) == VectorOrder::kEqual &&
      it->second.file_size == size) {
    return BlockDigestInfo{it->second.file_size, it->second.digests};
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadAllData(file));
  BlockDigestInfo info;
  info.file_size = data.size();
  info.digests.reserve((data.size() + kDeltaBlockSize - 1) / kDeltaBlockSize);
  for (size_t off = 0; off < data.size(); off += kDeltaBlockSize) {
    size_t len = std::min<size_t>(kDeltaBlockSize, data.size() - off);
    info.digests.push_back(BlockDigest(data.data() + off, len));
  }
  if (digest_cache_.size() >= kMaxCachedDigests) {
    digest_cache_.erase(digest_cache_.begin());
  }
  digest_cache_[file] = CachedDigests{attrs.vv, info.file_size, info.digests};
  return info;
}

Status PhysicalLayer::WriteData(FileId file, uint64_t offset,
                                const std::vector<uint8_t>& data) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, DataInode(file));
  FICUS_RETURN_IF_ERROR(ufs_->WriteAt(ino, offset, data).status());
  digest_cache_.erase(file);
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(file));
  attrs.vv.Increment(replica_);
  attrs.mtime = Now();
  return StoreAttributes(file, attrs);
}

Status PhysicalLayer::TruncateData(FileId file, uint64_t size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, DataInode(file));
  FICUS_RETURN_IF_ERROR(ufs_->Truncate(ino, size));
  digest_cache_.erase(file);
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(file));
  attrs.vv.Increment(replica_);
  attrs.mtime = Now();
  return StoreAttributes(file, attrs);
}

Status PhysicalLayer::MaybeCrash(CommitCrashPoint point) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (options_.crash_point != nullptr && options_.crash_point(point)) {
    return IoError("simulated crash at commit point " +
                   std::to_string(static_cast<int>(point)));
  }
  return OkStatus();
}

StatusOr<bool> PhysicalLayer::TryDeltaCommit(FileId file, const Location& loc,
                                             const std::vector<uint8_t>& contents,
                                             const VersionVector& vv) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!ufs_->journal_enabled() || contents.size() < options_.commit_min_bytes) {
    return false;
  }
  auto ino_or = ufs_->DirLookup(loc.parent_dir, file.ToHex());
  if (!ino_or.ok()) {
    return false;  // no local data file yet: the shadow path creates one
  }
  ufs::InodeNum ino = ino_or.value();
  FICUS_ASSIGN_OR_RETURN(ufs::Inode inode, ufs_->ReadInode(ino));
  const uint64_t total_blocks =
      (contents.size() + kDeltaBlockSize - 1) / kDeltaBlockSize;
  const uint64_t old_blocks = (inode.size + kDeltaBlockSize - 1) / kDeltaBlockSize;
  if (total_blocks == 0 || total_blocks != old_blocks) {
    return false;  // block count changes: whole-file rewrite territory
  }

  // Dirty set by a local digest diff — deliberately never from a
  // caller-supplied hint: a local write racing the propagation fetch
  // would make such a hint stale, and a stale hint silently corrupts.
  FICUS_ASSIGN_OR_RETURN(BlockDigestInfo local, ReadBlockDigests(file));
  if (local.digests.size() != total_blocks) {
    return false;
  }
  std::vector<uint32_t> dirty;
  for (uint64_t b = 0; b < total_blocks; ++b) {
    size_t off = static_cast<size_t>(b) * kDeltaBlockSize;
    size_t len = std::min<size_t>(kDeltaBlockSize, contents.size() - off);
    if (BlockDigest(contents.data() + off, len) != local.digests[b]) {
      dirty.push_back(static_cast<uint32_t>(b));
    }
  }
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(file));
  attrs.vv = vv;
  attrs.mtime = Now();
  if (dirty.empty() && contents.size() == inode.size) {
    // Same bytes, newer version vector (a propagation re-install): only
    // the attributes move, and that single store is already atomic.
    digest_cache_.erase(file);
    FICUS_RETURN_IF_ERROR(StoreAttributes(file, attrs));
    return true;
  }
  if (static_cast<double>(dirty.size()) >
      options_.commit_max_dirty_frac * static_cast<double>(total_blocks)) {
    return false;  // mostly-rewritten file: shadow's sequential clone wins
  }

  std::vector<uint8_t> ext;
  const std::vector<uint8_t>* new_ext = nullptr;
  if (options_.attr_placement == AttrPlacement::kInode) {
    std::vector<uint8_t> bytes = attrs.ToBytes();
    if (bytes.size() + 1 > ufs::kMaxInodeExt) {
      return false;  // spilled attributes: let the shadow path stage them
    }
    ext.reserve(bytes.size() + 1);
    ext.push_back(kExtInlineAttrs);
    ext.insert(ext.end(), bytes.begin(), bytes.end());
    new_ext = &ext;  // rides the journaled inode image: contents+attrs atomic
  }

  std::vector<ufs::RemapBlock> remap;
  remap.reserve(dirty.size());
  for (uint32_t b : dirty) {
    ufs::RemapBlock rb;
    rb.file_block = b;
    size_t off = static_cast<size_t>(b) * kDeltaBlockSize;
    size_t len = std::min<size_t>(kDeltaBlockSize, contents.size() - off);
    rb.image.assign(contents.begin() + static_cast<std::ptrdiff_t>(off),
                    contents.begin() + static_cast<std::ptrdiff_t>(off + len));
    rb.image.resize(kDeltaBlockSize, 0);
    remap.push_back(std::move(rb));
  }
  ufs::RemapCommitHook hook = [this](ufs::RemapCommitPoint point) -> Status {
    switch (point) {
      case ufs::RemapCommitPoint::kAfterDataWrite:
        return MaybeCrash(CommitCrashPoint::kAfterDeltaDataWrite);
      case ufs::RemapCommitPoint::kAfterJournalStage:
        return MaybeCrash(CommitCrashPoint::kAfterJournalStage);
      case ufs::RemapCommitPoint::kAfterJournalSeal:
        return MaybeCrash(CommitCrashPoint::kAfterJournalSeal);
      case ufs::RemapCommitPoint::kAfterJournalApply:
        return MaybeCrash(CommitCrashPoint::kAfterJournalApply);
      case ufs::RemapCommitPoint::kAfterJournalClear:
        return MaybeCrash(CommitCrashPoint::kAfterJournalClear);
    }
    return OkStatus();
  };
  Status st = ufs_->RemapCommit(ino, remap, contents.size(), new_ext, hook);
  if (st.code() == ErrorCode::kNotSupported) {
    return false;  // hole / redo-set overflow: the shadow path always works
  }
  // Anything else — including the simulated crash's I/O error, possibly
  // fired after the commit point — invalidates our derived caches.
  digest_cache_.erase(file);
  InvalidateDigestUp(file);
  FICUS_RETURN_IF_ERROR(st);
  if (options_.attr_placement == AttrPlacement::kAuxFile) {
    // Idempotent tail, same crash window as the shadow path's final store:
    // a crash here leaves the replica claiming an older version than it
    // holds, and the next propagation reinstall converges it.
    FICUS_RETURN_IF_ERROR(StoreAttributes(file, attrs));
  }
  return true;
}

Status PhysicalLayer::InstallVersion(FileId file, const std::vector<uint8_t>& contents,
                                     const VersionVector& vv) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(Location loc, Find(file));
  if (IsDirectoryLike(loc.type)) {
    return IsDirError("InstallVersion applies to regular files only");
  }
  const uint64_t writes_before = ufs_->cache()->device()->stats().writes;
  auto account = [&]() {
    stats_.commit_bytes_written->Add(
        (ufs_->cache()->device()->stats().writes - writes_before) *
        storage::kBlockSize);
  };

  // Prefer the journal-backed block-remap commit: O(dirty blocks) device
  // writes instead of the shadow clone's O(file size) (the paper's
  // footnote-5 amplification, fixed by its section-7 wish of "putting a
  // commit function into the storage layer").
  FICUS_ASSIGN_OR_RETURN(bool delta_done, TryDeltaCommit(file, loc, contents, vv));
  if (delta_done) {
    account();
    stats_.commit_delta->Increment();
    stats_.installs->Increment();
    return OkStatus();
  }

  std::string base = file.ToHex();
  std::string shadow = base + kShadowSuffix;
  digest_cache_.erase(file);

  // Discard any leftover shadow from an interrupted earlier install.
  if (ufs_->DirLookup(loc.parent_dir, shadow).ok()) {
    FICUS_RETURN_IF_ERROR(ufs_->Unlink(loc.parent_dir, shadow));
  }

  // 1. Write the complete new version into a shadow replica. With
  //    inode-resident attributes, the new version vector rides in the
  //    shadow's inode so the repoint installs contents and attributes in
  //    one atomic step.
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum shadow_ino,
                         ufs_->CreateFile(loc.parent_dir, shadow, ufs::FileType::kRegular,
                                          0644, 0, 0));
  FICUS_RETURN_IF_ERROR(MaybeCrash(ShadowCrashPoint::kAfterShadowCreate));
  FICUS_RETURN_IF_ERROR(ufs_->WriteAll(shadow_ino, contents));
  FICUS_RETURN_IF_ERROR(MaybeCrash(ShadowCrashPoint::kAfterShadowWrite));
  if (options_.attr_placement == AttrPlacement::kInode) {
    FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(file));
    attrs.vv = vv;
    attrs.mtime = Now();
    std::vector<uint8_t> bytes = attrs.ToBytes();
    if (bytes.size() + 1 <= ufs::kMaxInodeExt) {
      std::vector<uint8_t> ext;
      ext.push_back(kExtInlineAttrs);
      ext.insert(ext.end(), bytes.begin(), bytes.end());
      FICUS_RETURN_IF_ERROR(ufs_->WriteExt(shadow_ino, ext));
    } else {
      // Attributes no longer fit the inode: spill to the aux file first so
      // the swapped-in inode's marker always points at valid data.
      FICUS_RETURN_IF_ERROR(ufs_->WriteExt(shadow_ino, {kExtSpilled}));
      std::string aux_name = base + kAttrSuffix;
      auto aux = ufs_->DirLookup(loc.parent_dir, aux_name);
      if (!aux.ok()) {
        FICUS_ASSIGN_OR_RETURN(aux, ufs_->CreateFile(loc.parent_dir, aux_name,
                                                     ufs::FileType::kRegular, 0600, 0, 0));
      }
      FICUS_RETURN_IF_ERROR(ufs_->WriteAll(aux.value(), bytes));
    }
  }
  FICUS_RETURN_IF_ERROR(MaybeCrash(ShadowCrashPoint::kAfterAttrStage));

  // 2. The commit point: atomically swing the low-level directory
  //    reference from the original to the shadow (section 3.2). A crash
  //    before this line leaves the original replica intact.
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum old_ino, ufs_->DirLookup(loc.parent_dir, base));
  FICUS_RETURN_IF_ERROR(ufs_->DirRepoint(loc.parent_dir, base, shadow_ino));
  FICUS_RETURN_IF_ERROR(MaybeCrash(ShadowCrashPoint::kAfterRepoint));

  // 3. Tidy: drop the spare shadow name and the superseded inode. Attach()
  //    redoes this if a crash interrupts it.
  FICUS_RETURN_IF_ERROR(ufs_->DirRemove(loc.parent_dir, shadow));
  FICUS_RETURN_IF_ERROR(MaybeCrash(ShadowCrashPoint::kAfterShadowUnlink));
  FICUS_RETURN_IF_ERROR(ufs_->FreeInode(old_ino));
  FICUS_RETURN_IF_ERROR(MaybeCrash(ShadowCrashPoint::kAfterFreeInode));

  // 4. Record the new version vector. A crash between the swap and here
  //    leaves the replica claiming an older version than it holds; the
  //    next propagation reinstalls the same bytes, which is idempotent.
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(file));
  attrs.vv = vv;
  attrs.mtime = Now();
  FICUS_RETURN_IF_ERROR(StoreAttributes(file, attrs));
  account();
  stats_.commit_shadow->Increment();
  stats_.installs->Increment();
  return OkStatus();
}

// --- PhysicalApi: directories ---

StatusOr<std::vector<FicusDirEntry>> PhysicalLayer::ReadDirectory(FileId dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  // Raw entries, colliding spellings and tombstones included: peers need
  // the truth; the logical layer presents disambiguated names to clients.
  return LoadDirEntries(dir);
}

StatusOr<std::vector<DirEntryPlus>> PhysicalLayer::ReadDirPlus(FileId dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> raw, LoadDirEntries(dir));
  std::vector<FicusDirEntry> entries = PresentEntries(raw);
  std::vector<DirEntryPlus> out;
  for (auto& entry : entries) {
    if (!entry.alive) {
      continue;  // tombstones never reach an ls -l scan
    }
    DirEntryPlus row;
    row.entry = std::move(entry);
    auto attrs = LoadAttributes(row.entry.file);
    row.attr_status = attrs.status();
    if (attrs.ok()) {
      row.attrs = std::move(attrs).value();
      if (!IsDirectoryLike(row.attrs.type)) {
        auto size = DataSize(row.entry.file);
        if (size.ok()) {
          row.size = size.value();
        }
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

StatusOr<FileId> PhysicalLayer::CreateChild(FileId dir, std::string_view name,
                                            FicusFileType type, uint32_t owner_uid) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_RETURN_IF_ERROR(ValidateEntryName(name));
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, LoadDirEntries(dir));
  if (FindAliveByPresentedName(entries, name).ok()) {
    return ExistsError(std::string(name));
  }
  FileId file{replica_, next_unique_++};
  FICUS_RETURN_IF_ERROR(PersistMeta());
  VersionVector file_vv;
  file_vv.Increment(replica_);
  FICUS_RETURN_IF_ERROR(CreateStorage(dir, file, type, owner_uid, file_vv));

  FicusDirEntry entry;
  entry.name = std::string(name);
  entry.file = file;
  entry.type = type;
  entry.alive = true;
  entry.vv.Increment(replica_);
  entries.push_back(std::move(entry));
  FICUS_RETURN_IF_ERROR(StoreDirEntries(dir, entries));
  ++alive_refs_[file];
  FICUS_RETURN_IF_ERROR(BumpDirVersion(dir));
  return file;
}

StatusOr<std::vector<FileId>> PhysicalLayer::CreateChildren(
    FileId dir, const std::vector<std::string>& names, FicusFileType type,
    uint32_t owner_uid) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, LoadDirEntries(dir));
  // Validate the whole batch before touching storage so a bad name at
  // position k does not leave k-1 stray files behind.
  std::unordered_set<std::string> taken;
  for (FicusDirEntry& entry : PresentEntries(entries)) {
    if (entry.alive) {
      taken.insert(std::move(entry.name));
    }
  }
  for (const std::string& name : names) {
    FICUS_RETURN_IF_ERROR(ValidateEntryName(name));
    if (!taken.insert(name).second) {
      return ExistsError(name);
    }
  }
  // Reserve the whole id range up front (one meta write) so a crash
  // mid-batch cannot recycle an id a created file already carries.
  const uint32_t first_unique = next_unique_;
  next_unique_ += static_cast<uint32_t>(names.size());
  FICUS_RETURN_IF_ERROR(PersistMeta());
  std::vector<FileId> created;
  created.reserve(names.size());
  entries.reserve(entries.size() + names.size());
  if (!IsDirectoryLike(type)) {
    // Batched storage path: allocate every backing ufs file with one
    // directory rewrite instead of one per child. Per-child CreateStorage
    // calls ufs CreateFile, which rewrites the whole backing directory
    // each time — populating an N-file directory that way is O(N^2).
    FICUS_ASSIGN_OR_RETURN(Location dir_loc, Find(dir));
    if (!IsDirectoryLike(dir_loc.type)) {
      return NotDirError("parent is not a directory");
    }
    const bool aux = options_.attr_placement == AttrPlacement::kAuxFile;
    std::vector<std::string> ufs_names;
    ufs_names.reserve(names.size() * (aux ? 2 : 1));
    for (size_t i = 0; i < names.size(); ++i) {
      FileId file{replica_, first_unique + static_cast<uint32_t>(i)};
      ufs_names.push_back(file.ToHex());
      if (aux) {
        ufs_names.push_back(file.ToHex() + kAttrSuffix);
      }
    }
    FICUS_RETURN_IF_ERROR(ufs_->CreateFiles(dir_loc.self_dir, ufs_names,
                                            ufs::FileType::kRegular, 0644, owner_uid, 0)
                              .status());
    for (size_t i = 0; i < names.size(); ++i) {
      FileId file{replica_, first_unique + static_cast<uint32_t>(i)};
      locations_[file] = Location{dir_loc.self_dir, ufs::kInvalidInode, type};
      ReplicaAttributes attrs;
      attrs.id = GlobalFileId{volume_, file};
      attrs.type = type;
      attrs.vv.Increment(replica_);
      attrs.owner_uid = owner_uid;
      attrs.mtime = Now();
      FICUS_RETURN_IF_ERROR(StoreAttributes(file, attrs));
      FicusDirEntry entry;
      entry.name = names[i];
      entry.file = file;
      entry.type = type;
      entry.alive = true;
      entry.vv.Increment(replica_);
      entries.push_back(std::move(entry));
      ++alive_refs_[file];
      created.push_back(file);
    }
  } else {
    for (size_t i = 0; i < names.size(); ++i) {
      FileId file{replica_, first_unique + static_cast<uint32_t>(i)};
      VersionVector file_vv;
      file_vv.Increment(replica_);
      FICUS_RETURN_IF_ERROR(CreateStorage(dir, file, type, owner_uid, file_vv));
      FicusDirEntry entry;
      entry.name = names[i];
      entry.file = file;
      entry.type = type;
      entry.alive = true;
      entry.vv.Increment(replica_);
      entries.push_back(std::move(entry));
      ++alive_refs_[file];
      created.push_back(file);
    }
  }
  FICUS_RETURN_IF_ERROR(StoreDirEntries(dir, entries));
  FICUS_RETURN_IF_ERROR(BumpDirVersion(dir));
  return created;
}

Status PhysicalLayer::AddEntry(FileId dir, std::string_view name, FileId target,
                               FicusFileType type) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_RETURN_IF_ERROR(ValidateEntryName(name));
  if (locations_.count(target) == 0) {
    return NotFoundError("link target " + target.ToString() + " not stored here");
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, LoadDirEntries(dir));
  if (FindAliveByPresentedName(entries, name).ok()) {
    return ExistsError(std::string(name));
  }
  // Reuse a tombstone for the same (name, file) pair so the entry's
  // version vector grows monotonically across delete/recreate cycles.
  bool reused = false;
  for (auto& e : entries) {
    if (e.name == name && e.file == target) {
      e.alive = true;
      e.type = type;
      e.vv.Increment(replica_);
      // The old deleter's content judgement no longer applies to a live
      // entry; a stale one would diverge from peers that recreate afresh.
      e.deleted_file_vv = VersionVector();
      reused = true;
      break;
    }
  }
  if (!reused) {
    FicusDirEntry entry;
    entry.name = std::string(name);
    entry.file = target;
    entry.type = type;
    entry.alive = true;
    entry.vv.Increment(replica_);
    entries.push_back(std::move(entry));
  }
  FICUS_RETURN_IF_ERROR(StoreDirEntries(dir, entries));
  ++alive_refs_[target];
  return BumpDirVersion(dir);
}

Status PhysicalLayer::RemoveEntry(FileId dir, std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, LoadDirEntries(dir));
  FICUS_ASSIGN_OR_RETURN(size_t index, FindAliveByPresentedName(entries, name));
  FicusDirEntry& entry = entries[index];
  if (IsDirectoryLike(entry.type)) {
    // A directory may only be unlinked when empty of live entries.
    auto child_entries = LoadDirEntries(entry.file);
    if (child_entries.ok()) {
      for (const auto& ce : child_entries.value()) {
        if (ce.alive) {
          return NotEmptyError(std::string(name));
        }
      }
    }
  }
  entry.alive = false;
  entry.vv.Increment(replica_);
  entry.deleted_file_vv = VersionVector();
  if (entry.type == FicusFileType::kRegular || entry.type == FicusFileType::kSymlink) {
    // Record what the deleter knew of the file's contents, so a peer can
    // detect a delete racing an update it has that we never saw.
    auto attrs = LoadAttributes(entry.file);
    if (attrs.ok()) {
      entry.deleted_file_vv = attrs->vv;
    }
  }
  FileId target = entry.file;
  FICUS_RETURN_IF_ERROR(StoreDirEntries(dir, entries));
  auto it = alive_refs_.find(target);
  if (it != alive_refs_.end() && it->second > 0) {
    --it->second;
  }
  return BumpDirVersion(dir);
}

Status PhysicalLayer::RenameEntry(FileId old_dir, std::string_view old_name, FileId new_dir,
                                  std::string_view new_name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_RETURN_IF_ERROR(ValidateEntryName(new_name));
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> old_entries, LoadDirEntries(old_dir));
  FICUS_ASSIGN_OR_RETURN(size_t index, FindAliveByPresentedName(old_entries, old_name));
  FicusDirEntry moving = old_entries[index];
  if (IsDirectoryLike(moving.type) && new_dir != old_dir) {
    FICUS_ASSIGN_OR_RETURN(bool cycle, SubtreeContains(moving.file, new_dir));
    if (cycle) {
      return InvalidArgumentError("rename would move a directory into its own subtree");
    }
  }

  if (old_dir == new_dir) {
    // Displace an existing target entry, then tombstone + re-add in place.
    auto displaced = FindAliveByPresentedName(old_entries, new_name);
    if (displaced.ok()) {
      FicusDirEntry& d = old_entries[displaced.value()];
      d.alive = false;
      d.vv.Increment(replica_);
      // Displacement is a genuine delete of the target's contents: record
      // the deleter's view for the no-lost-update rule.
      if (d.type == FicusFileType::kRegular || d.type == FicusFileType::kSymlink) {
        auto displaced_attrs = LoadAttributes(d.file);
        if (displaced_attrs.ok()) {
          d.deleted_file_vv = displaced_attrs->vv;
        }
      }
      auto it = alive_refs_.find(d.file);
      if (it != alive_refs_.end() && it->second > 0) {
        --it->second;
      }
    }
    old_entries[index].alive = false;
    old_entries[index].vv.Increment(replica_);
    bool reused = false;
    for (auto& e : old_entries) {
      if (e.name == new_name && e.file == moving.file) {
        e.alive = true;
        e.type = moving.type;
        e.vv.Increment(replica_);
        e.deleted_file_vv = VersionVector();
        reused = true;
        break;
      }
    }
    if (!reused) {
      FicusDirEntry fresh = moving;
      fresh.name = std::string(new_name);
      fresh.vv.Increment(replica_);
      old_entries.push_back(std::move(fresh));
    }
    FICUS_RETURN_IF_ERROR(StoreDirEntries(old_dir, old_entries));
    return BumpDirVersion(old_dir);
  }

  // Cross-directory: displace any existing target (same semantics as the
  // in-place branch above), insert at the target directory FIRST, and only
  // then tombstone the source. A failure between the two steps leaves a
  // benign transient double link — never an orphaned file, which is what
  // the old tombstone-then-AddEntry order produced when the target name
  // already existed. The file's *storage* does not move — only the name
  // does, because storage is addressed by hex file-id, not by pathname.
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> new_entries, LoadDirEntries(new_dir));
  auto displaced = FindAliveByPresentedName(new_entries, new_name);
  if (displaced.ok()) {
    FicusDirEntry& d = new_entries[displaced.value()];
    d.alive = false;
    d.vv.Increment(replica_);
    if (d.type == FicusFileType::kRegular || d.type == FicusFileType::kSymlink) {
      auto displaced_attrs = LoadAttributes(d.file);
      if (displaced_attrs.ok()) {
        d.deleted_file_vv = displaced_attrs->vv;
      }
    }
    auto displaced_it = alive_refs_.find(d.file);
    if (displaced_it != alive_refs_.end() && displaced_it->second > 0) {
      --displaced_it->second;
    }
  }
  bool reused = false;
  for (auto& e : new_entries) {
    if (e.name == new_name && e.file == moving.file) {
      e.alive = true;
      e.type = moving.type;
      e.vv.Increment(replica_);
      e.deleted_file_vv = VersionVector();
      reused = true;
      break;
    }
  }
  if (!reused) {
    FicusDirEntry fresh = moving;
    fresh.name = std::string(new_name);
    fresh.vv.Increment(replica_);
    fresh.deleted_file_vv = VersionVector();
    new_entries.push_back(std::move(fresh));
  }
  FICUS_RETURN_IF_ERROR(StoreDirEntries(new_dir, new_entries));
  ++alive_refs_[moving.file];
  FICUS_RETURN_IF_ERROR(BumpDirVersion(new_dir));

  old_entries[index].alive = false;
  old_entries[index].vv.Increment(replica_);
  FICUS_RETURN_IF_ERROR(StoreDirEntries(old_dir, old_entries));
  auto it = alive_refs_.find(moving.file);
  if (it != alive_refs_.end() && it->second > 0) {
    --it->second;
  }
  return BumpDirVersion(old_dir);
}

StatusOr<bool> PhysicalLayer::ApplyEntryToSet(FileId dir,
                                              std::vector<FicusDirEntry>& entries,
                                              const FicusDirEntry& remote) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  stats_.entries_applied->Increment();
  for (auto& local : entries) {
    if (local.name != remote.name || local.file != remote.file) {
      continue;
    }
    switch (remote.vv.Compare(local.vv)) {
      case VectorOrder::kEqual:
      case VectorOrder::kDominatedBy:
        return false;  // we already know everything the remote does
      case VectorOrder::kDominates: {
        // CRDT rename/link merge rule (arXiv 1207.5990): when the file is
        // still alive under another local name — a hard link, or the
        // surviving half of a rename the remover never saw — removing THIS
        // name loses no data, because any concurrent update stays reachable
        // through the other name. Apply the tombstone plainly instead of
        // resurrecting the entry and logging a remove/update conflict.
        bool alive_elsewhere = false;
        if (local.alive && !remote.alive) {
          auto refs = alive_refs_.find(local.file);
          alive_elsewhere = refs != alive_refs_.end() && refs->second >= 2;
          if (alive_elsewhere) {
            stats_.crdt_rename_merges->Increment();
          }
        }
        if (!alive_elsewhere && local.alive && !remote.alive &&
            (local.type == FicusFileType::kRegular ||
             local.type == FicusFileType::kSymlink) &&
            !remote.deleted_file_vv.Empty() && Stores(local.file)) {
          // No-lost-update rule: the delete is only safe if the deleter had
          // seen every update this replica holds. A concurrent unseen
          // update wins — the entry is resurrected as a new event and the
          // remove/update conflict is reported.
          auto attrs = LoadAttributes(local.file);
          if (attrs.ok() && !remote.deleted_file_vv.Dominates(attrs->vv)) {
            local.vv.MergeWith(remote.vv);
            local.vv.Increment(replica_);
            local.deleted_file_vv = VersionVector();
            stats_.remove_update_conflicts->Increment();
            return true;
          }
        }
        if (!alive_elsewhere && local.alive && !remote.alive && IsDirectoryLike(local.type)) {
          // A remote rmdir ordered after our view of the entry — but the
          // local directory may have gained children the remover never
          // saw (created in another partition). Deleting would orphan
          // them, so liveness wins: resurrect the entry as a *new* event
          // (local increment) that dominates the tombstone, and let it
          // propagate back out. This is the delete/update conflict on
          // directories, repaired automatically.
          if (HasLiveEntries(local.file)) {
            local.vv.MergeWith(remote.vv);
            local.vv.Increment(replica_);
            local.deleted_file_vv = VersionVector();
            stats_.insert_delete_conflicts->Increment();
            return true;
          }
        }
        if (local.alive && !remote.alive) {
          auto it = alive_refs_.find(local.file);
          if (it != alive_refs_.end() && it->second > 0) {
            --it->second;
          }
        } else if (!local.alive && remote.alive) {
          ++alive_refs_[local.file];
        }
        local.alive = remote.alive;
        local.type = remote.type;
        local.vv = remote.vv;
        // The tombstone's record of the deleter's content knowledge must
        // travel with it, or replicas that learned of the delete second-hand
        // would make different resurrection decisions later.
        local.deleted_file_vv = remote.deleted_file_vv;
        return true;
      }
      case VectorOrder::kConcurrent: {
        // Concurrent insert/delete of the same entry: automatic repair in
        // favour of liveness (a delete loses to a concurrent recreate).
        bool was_alive = local.alive;
        bool resolved_alive = local.alive || remote.alive;
        if (was_alive != resolved_alive) {
          ++alive_refs_[local.file];
        }
        if (local.alive != remote.alive) {
          stats_.insert_delete_conflicts->Increment();
        }
        local.alive = resolved_alive;
        local.vv.MergeWith(remote.vv);
        if (resolved_alive) {
          local.deleted_file_vv = VersionVector();
        } else {
          // Concurrent tombstones: combine both deleters' knowledge.
          local.deleted_file_vv.MergeWith(remote.deleted_file_vv);
        }
        return true;
      }
    }
  }

  // Previously unseen entry. If it names a file we do not store yet,
  // create placeholder storage with an empty version vector so update
  // propagation later fills in the contents. The storage policy may
  // decline regular files/symlinks (selective replication, section 4.1);
  // directories are always stored because they carry the namespace.
  if (remote.alive && locations_.count(remote.file) == 0) {
    bool store = IsDirectoryLike(remote.type) || options_.storage_policy == nullptr ||
                 options_.storage_policy(remote);
    if (store) {
      FICUS_RETURN_IF_ERROR(
          CreateStorage(dir, remote.file, remote.type, 0, VersionVector()));
    }
  }
  // A raw-name collision with a different file is the paper's concurrent
  // same-name-creation case: both entries are retained and presentation
  // disambiguates (section 2.5 footnote / DESIGN.md).
  for (const auto& e : entries) {
    if (e.alive && remote.alive && e.name == remote.name && e.file != remote.file) {
      stats_.name_conflicts_resolved->Increment();
      break;
    }
  }
  entries.push_back(remote);
  if (remote.alive) {
    ++alive_refs_[remote.file];
  }
  return true;
}

Status PhysicalLayer::ApplyEntry(FileId dir, const FicusDirEntry& remote) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, LoadDirEntries(dir));
  FICUS_ASSIGN_OR_RETURN(bool changed, ApplyEntryToSet(dir, entries, remote));
  if (!changed) {
    return OkStatus();
  }
  // Any actual state change must advance this directory replica's own
  // version vector: otherwise a peer whose directory vector already
  // dominates ours would skip reconciling and never observe the change
  // (the dominance quick-exit in the reconciler relies on this).
  FICUS_RETURN_IF_ERROR(StoreDirEntries(dir, entries));
  return BumpDirVersion(dir);
}

Status PhysicalLayer::ApplyEntries(FileId dir, const std::vector<FicusDirEntry>& remote) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, LoadDirEntries(dir));
  bool any_changed = false;
  for (const FicusDirEntry& r : remote) {
    FICUS_ASSIGN_OR_RETURN(bool changed, ApplyEntryToSet(dir, entries, r));
    any_changed = any_changed || changed;
  }
  if (!any_changed) {
    return OkStatus();
  }
  FICUS_RETURN_IF_ERROR(StoreDirEntries(dir, entries));
  return BumpDirVersion(dir);
}

Status PhysicalLayer::MergeDirVersion(FileId dir, const VersionVector& vv) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(dir));
  attrs.vv.MergeWith(vv);
  return StoreAttributes(dir, attrs);
}

// --- PhysicalApi: symlinks ---

StatusOr<std::string> PhysicalLayer::ReadLink(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadAllData(file));
  return std::string(bytes.begin(), bytes.end());
}

Status PhysicalLayer::WriteLink(FileId file, std::string_view target) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum ino, DataInode(file));
  std::vector<uint8_t> bytes(target.begin(), target.end());
  FICUS_RETURN_IF_ERROR(ufs_->WriteAll(ino, bytes));
  digest_cache_.erase(file);
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(file));
  attrs.vv.Increment(replica_);
  attrs.mtime = Now();
  return StoreAttributes(file, attrs);
}

// --- PhysicalApi: open/close ---

Status PhysicalLayer::NoteOpen(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  stats_.opens_noted->Increment();
  // Warm the caches exactly as a real open would: attributes now, so the
  // following reads find the aux file resident (section 6's warm path).
  return LoadAttributes(file).status();
}

Status PhysicalLayer::NoteClose(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  (void)file;
  stats_.closes_noted->Increment();
  return OkStatus();
}

// --- new-version cache ---

void PhysicalLayer::NoteNewVersion(const GlobalFileId& id, const VersionVector& vv,
                                   ReplicaId source) {
  std::lock_guard<std::mutex> lock(nv_mu_);
  stats_.notifications_noted->Increment();
  auto it = new_version_cache_.find(id);
  if (it == new_version_cache_.end()) {
    new_version_cache_[id] = NewVersionEntry{id, vv, source, Now()};
    return;
  }
  // Coalesce bursts: keep one entry per file, remembering the freshest
  // advertised version (this is what makes delayed propagation cheaper
  // for bursty updates, section 3.2). The source only moves to the new
  // notifier when its version is at least as new as everything seen so
  // far — a stale duplicate must not redirect the pull at a peer that
  // does not hold the freshest version.
  VectorOrder order = vv.Compare(it->second.vv);
  it->second.vv.MergeWith(vv);
  if (order == VectorOrder::kDominates || order == VectorOrder::kEqual) {
    it->second.source = source;
  }
}

void PhysicalLayer::RestoreNewVersion(const NewVersionEntry& entry) {
  std::lock_guard<std::mutex> lock(nv_mu_);
  auto it = new_version_cache_.find(entry.id);
  if (it == new_version_cache_.end()) {
    new_version_cache_[entry.id] = entry;
    return;
  }
  // A newer notification arrived while this entry was out with the
  // propagation daemon: join the vectors but keep the dominant side's
  // source, and keep the oldest noted_at so min_age measures the first
  // sighting, not the latest deferral.
  VectorOrder order = entry.vv.Compare(it->second.vv);
  it->second.vv.MergeWith(entry.vv);
  if (order == VectorOrder::kDominates) {
    it->second.source = entry.source;
  }
  it->second.noted_at = std::min(it->second.noted_at, entry.noted_at);
}

std::vector<NewVersionEntry> PhysicalLayer::TakePendingVersions() {
  std::lock_guard<std::mutex> lock(nv_mu_);
  std::vector<NewVersionEntry> out;
  out.reserve(new_version_cache_.size());
  for (auto& [id, entry] : new_version_cache_) {
    out.push_back(entry);
  }
  new_version_cache_.clear();
  return out;
}

// --- garbage collection ---

StatusOr<int> PhysicalLayer::GarbageCollect() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  int collected = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = locations_.begin(); it != locations_.end();) {
      FileId file = it->first;
      const Location& loc = it->second;
      auto refs = alive_refs_.find(file);
      bool unreferenced = (refs == alive_refs_.end() || refs->second == 0);
      if (file == kRootFileId || !unreferenced) {
        ++it;
        continue;
      }
      // A directory is only collectable once all its children are gone.
      if (IsDirectoryLike(loc.type)) {
        FICUS_ASSIGN_OR_RETURN(std::vector<ufs::UfsDirEntry> inside,
                               ufs_->DirList(loc.self_dir));
        bool has_children = false;
        for (const auto& e : inside) {
          if (e.name != kDirFile && e.name != kAttrFile) {
            has_children = true;
            break;
          }
        }
        if (has_children) {
          ++it;
          continue;
        }
        FICUS_RETURN_IF_ERROR(ufs_->Unlink(loc.self_dir, kDirFile));
        Status attr_gone = ufs_->Unlink(loc.self_dir, kAttrFile);
        if (!attr_gone.ok() && attr_gone.code() != ErrorCode::kNotFound) {
          return attr_gone;
        }
        FICUS_RETURN_IF_ERROR(ufs_->Unlink(loc.parent_dir, file.ToHex()));
      } else if (options_.orphanage && loc.type == FicusFileType::kRegular) {
        // Park the contents in the orphanage rather than freeing them.
        auto orphans = ufs_->DirLookup(container_, kOrphanDir);
        if (!orphans.ok()) {
          FICUS_ASSIGN_OR_RETURN(orphans, ufs_->CreateFile(container_, kOrphanDir,
                                                           ufs::FileType::kDirectory, 0700,
                                                           0, 0));
        }
        FICUS_ASSIGN_OR_RETURN(ufs::InodeNum data_ino,
                               ufs_->DirLookup(loc.parent_dir, file.ToHex()));
        FICUS_RETURN_IF_ERROR(ufs_->DirRemove(loc.parent_dir, file.ToHex()));
        // Displace an older orphan of the same file-id, if any.
        if (ufs_->DirLookup(orphans.value(), file.ToHex()).ok()) {
          FICUS_RETURN_IF_ERROR(ufs_->Unlink(orphans.value(), file.ToHex()));
        }
        FICUS_RETURN_IF_ERROR(ufs_->DirAdd(orphans.value(), file.ToHex(), data_ino,
                                           ufs::FileType::kRegular));
        Status aux_gone = ufs_->Unlink(loc.parent_dir, file.ToHex() + kAttrSuffix);
        if (!aux_gone.ok() && aux_gone.code() != ErrorCode::kNotFound) {
          return aux_gone;
        }
      } else {
        FICUS_RETURN_IF_ERROR(ufs_->Unlink(loc.parent_dir, file.ToHex()));
        Status aux_gone = ufs_->Unlink(loc.parent_dir, file.ToHex() + kAttrSuffix);
        if (!aux_gone.ok() && aux_gone.code() != ErrorCode::kNotFound) {
          return aux_gone;
        }
      }
      it = locations_.erase(it);
      alive_refs_.erase(file);
      InvalidateDigestUp(file);
      digest_tree_.erase(file);
      digest_parents_.erase(file);
      ++collected;
      progress = true;
    }
  }
  return collected;
}

StatusOr<std::vector<std::string>> PhysicalLayer::OrphanNames() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  std::vector<std::string> out;
  auto orphans = ufs_->DirLookup(container_, kOrphanDir);
  if (!orphans.ok()) {
    return out;  // never created: no orphans
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<ufs::UfsDirEntry> entries, ufs_->DirList(*orphans));
  out.reserve(entries.size());
  for (const auto& e : entries) {
    out.push_back(e.name);
  }
  return out;
}

StatusOr<std::vector<std::string>> PhysicalLayer::CheckConsistency() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  std::vector<std::string> problems;
  std::map<FileId, int> observed_refs;
  std::set<FileId> referenced;

  for (const auto& [file, loc] : locations_) {
    // Attributes must parse and carry the right identity.
    auto attrs = LoadAttributes(file);
    if (!attrs.ok()) {
      problems.push_back("replica " + file.ToString() + ": attributes unreadable: " +
                         attrs.status().ToString());
      continue;
    }
    if (attrs->id.file != file || attrs->id.volume != volume_) {
      problems.push_back("replica " + file.ToString() + ": attribute identity mismatch (" +
                         attrs->id.ToString() + ")");
    }
    if (IsDirectoryLike(loc.type) != IsDirectoryLike(attrs->type)) {
      problems.push_back("replica " + file.ToString() + ": storage/attribute type mismatch");
    }
    // Tally references from this directory's entries.
    if (IsDirectoryLike(loc.type)) {
      auto entries = LoadDirEntries(file);
      if (!entries.ok()) {
        problems.push_back("directory " + file.ToString() + ": entries unreadable");
        continue;
      }
      for (const auto& e : *entries) {
        referenced.insert(e.file);
        if (e.alive) {
          ++observed_refs[e.file];
        }
        if (e.alive && locations_.count(e.file) == 0 &&
            options_.orphanage == false) {
          // Alive entry for a file we do not store: legal (optional
          // storage) only for files minted elsewhere; a locally minted
          // file must have storage here.
          if (e.file.issuer == replica_) {
            problems.push_back("directory " + file.ToString() + ": alive entry '" + e.name +
                               "' references locally minted but unstored file " +
                               e.file.ToString());
          }
        }
      }
    }
  }

  // Reference-count bookkeeping must match what the directories say.
  for (const auto& [file, count] : observed_refs) {
    auto it = alive_refs_.find(file);
    int cached = it != alive_refs_.end() ? it->second : 0;
    if (cached != count) {
      problems.push_back("file " + file.ToString() + ": alive_refs " +
                         std::to_string(cached) + " != observed " + std::to_string(count));
    }
  }
  // Every stored non-root replica should be referenced by some entry
  // (alive or tombstone); otherwise it is invisible garbage.
  for (const auto& [file, loc] : locations_) {
    if (file != kRootFileId && referenced.count(file) == 0) {
      problems.push_back("replica " + file.ToString() + " stored but referenced by no entry");
    }
  }
  return problems;
}

// --- Merkle subtree digests (digest-guided reconciliation) ---

uint64_t PhysicalLayer::EntrySetDigest(const std::vector<FicusDirEntry>& entries) {
  uint64_t set = 0;
  std::vector<uint8_t> scratch;
  for (const auto& e : entries) {
    scratch.clear();
    ByteWriter w(scratch);
    e.Serialize(w);
    set = DigestAddElement(set, BlockDigest(scratch.data(), scratch.size()));
  }
  return set;
}

void PhysicalLayer::LinkDigestParent(FileId child, FileId dir) {
  if (child == dir) {
    return;
  }
  digest_parents_[child].insert(dir);
}

void PhysicalLayer::InvalidateDigestUp(FileId file) {
  // Drop the memoized node for `file` and every ancestor reachable
  // through the reverse links. Absence of a cached node is NOT a stop
  // condition: links are built eagerly (scan/store time) while nodes are
  // built lazily (first GetSubtreeDigests), so an un-memoized directory
  // can still have memoized ancestors above it.
  std::set<FileId> visited;
  std::vector<FileId> stack{file};
  while (!stack.empty()) {
    FileId cur = stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) {
      continue;
    }
    digest_tree_.erase(cur);
    auto it = digest_parents_.find(cur);
    if (it != digest_parents_.end()) {
      for (FileId parent : it->second) {
        stack.push_back(parent);
      }
    }
  }
}

StatusOr<PhysicalLayer::DigestNode> PhysicalLayer::ComputeDigestNode(
    FileId dir, std::set<FileId>& visiting, std::map<FileId, DigestNode>& memo) {
  auto cached = memo.find(dir);
  if (cached != memo.end()) {
    return cached->second;
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, LoadDirEntries(dir));
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, LoadAttributes(dir));

  DigestNode node;
  node.vv = attrs.vv;
  node.entry_digest = EntrySetDigest(entries);

  // Content-state stamps for every ALIVE non-directory child: file-id +
  // version vector + conflict flag. Mtime and ownership are deliberately
  // excluded — they do not participate in reconciliation decisions, so
  // including them would cause spurious descents. An alive entry whose
  // storage this replica declined (selective replication) gets a distinct
  // "unstored" stamp: such a directory can never digest-equal a replica
  // that stores the file, which safely forces the per-file sweep there.
  uint64_t files = 0;
  std::vector<uint8_t> scratch;
  for (const auto& e : entries) {
    if (!e.alive || IsDirectoryLike(e.type)) {
      continue;
    }
    scratch.clear();
    ByteWriter sw(scratch);
    sw.PutU64(e.file.Pack());
    auto fa = Stores(e.file) ? LoadAttributes(e.file)
                             : StatusOr<ReplicaAttributes>(
                                   NotFoundError("unstored"));
    if (fa.ok()) {
      sw.PutU8(1);
      fa->vv.Serialize(sw);
      sw.PutU8(fa->conflict ? 1 : 0);
    } else {
      sw.PutU8(0);  // unstored marker
    }
    files = DigestAddElement(files, BlockDigest(scratch.data(), scratch.size()));
  }
  node.files_digest = files;

  // Locally stored directory-like children, dead entries INCLUDED (a
  // tombstoned subdirectory still holds entries and tombstones a remote
  // may be missing), deduplicated and folded in sorted file-id order.
  std::set<FileId> child_dirs;
  for (const auto& e : entries) {
    if (IsDirectoryLike(e.type) && Stores(e.file)) {
      child_dirs.insert(e.file);
    }
  }
  uint64_t subtree = DigestMix(0, node.entry_digest);
  subtree = DigestMix(subtree, node.files_digest);
  scratch.clear();
  {
    ByteWriter vw(scratch);
    node.vv.Serialize(vw);
  }
  subtree = DigestMix(subtree, BlockDigest(scratch.data(), scratch.size()));
  visiting.insert(dir);
  for (FileId child : child_dirs) {
    uint64_t child_digest;
    if (visiting.count(child) != 0) {
      // Revisit along the current descent path (a cycle would violate the
      // acyclic-DAG invariant, but a digest must never loop): fold a fixed
      // marker so both sides at least agree on the shape.
      child_digest = kDigestCycleMarker;
    } else {
      auto child_node = ComputeDigestNode(child, visiting, memo);
      if (!child_node.ok()) {
        visiting.erase(dir);
        return child_node.status();
      }
      child_digest = child_node->subtree_digest;
    }
    node.children.emplace_back(child, child_digest);
    subtree = DigestMix(DigestMix(subtree, child.Pack()), child_digest);
  }
  visiting.erase(dir);
  node.subtree_digest = subtree;
  memo[dir] = node;
  return node;
}

StatusOr<std::vector<SubtreeDigest>> PhysicalLayer::GetSubtreeDigests(
    const std::vector<FileId>& dirs) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  std::vector<SubtreeDigest> out;
  out.reserve(dirs.size());
  for (FileId dir : dirs) {
    SubtreeDigest row;
    row.dir = dir;
    auto loc = Find(dir);
    if (!loc.ok()) {
      row.status = loc.status();
    } else if (!IsDirectoryLike(loc->type)) {
      row.status = NotDirError("file " + dir.ToString() + " is not a directory");
    } else {
      std::set<FileId> visiting;
      auto node = ComputeDigestNode(dir, visiting, digest_tree_);
      if (!node.ok()) {
        row.status = node.status();
      } else {
        row.vv = node->vv;
        row.entry_digest = node->entry_digest;
        row.files_digest = node->files_digest;
        row.subtree_digest = node->subtree_digest;
        row.children = node->children;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

StatusOr<std::vector<std::string>> PhysicalLayer::ValidateDigestTree() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  std::vector<std::string> problems;

  // Every memoized node, recomputed from scratch into a private memo,
  // must agree with its cached value — a disagreement means a mutation
  // path missed its invalidation hook.
  std::map<FileId, DigestNode> snapshot = digest_tree_;
  for (const auto& [dir, cached] : snapshot) {
    std::set<FileId> visiting;
    std::map<FileId, DigestNode> scratch;
    auto fresh = ComputeDigestNode(dir, visiting, scratch);
    if (!fresh.ok()) {
      problems.push_back("digest " + dir.ToString() + ": recompute failed: " +
                         fresh.status().ToString());
      continue;
    }
    if (fresh->subtree_digest != cached.subtree_digest ||
        fresh->entry_digest != cached.entry_digest ||
        fresh->files_digest != cached.files_digest) {
      problems.push_back("digest " + dir.ToString() +
                         ": cached digest disagrees with recomputed contents");
    }
  }

  // Every persisted v2 header must cover exactly the entry set that
  // follows it. LoadDirEntries only validates on a full (cache-missing)
  // parse, so go under the cache and check the raw bytes.
  for (const auto& [file, loc] : locations_) {
    if (!IsDirectoryLike(loc.type)) {
      continue;
    }
    auto ino = ufs_->DirLookup(loc.self_dir, kDirFile);
    if (!ino.ok()) {
      continue;
    }
    auto bytes = ufs_->ReadAll(*ino);
    if (!bytes.ok() || bytes->size() < kDirHeaderSizeV2) {
      continue;
    }
    ByteReader hr(*bytes);
    auto magic = hr.GetU32();
    if (!magic.ok() || magic.value() != kDirMagicV2) {
      continue;
    }
    (void)hr.GetU64();  // generation
    auto stored = hr.GetU64();
    if (!stored.ok()) {
      continue;
    }
    std::vector<uint8_t> body(bytes->begin() + kDirHeaderSizeV2, bytes->end());
    auto entries = DeserializeDirEntries(body);
    if (!entries.ok()) {
      problems.push_back("directory " + file.ToString() + ": entries unreadable: " +
                         entries.status().ToString());
      continue;
    }
    if (EntrySetDigest(*entries) != stored.value()) {
      problems.push_back("directory " + file.ToString() +
                         ": persisted entry digest disagrees with entry set");
    }
  }
  return problems;
}

Status PhysicalLayer::CorruptDigestForTest(FileId dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckAttached());
  std::set<FileId> visiting;
  FICUS_RETURN_IF_ERROR(ComputeDigestNode(dir, visiting, digest_tree_).status());
  auto it = digest_tree_.find(dir);
  if (it == digest_tree_.end()) {
    return InternalError("digest node for " + dir.ToString() + " not cached");
  }
  it->second.subtree_digest ^= 0xDEADBEEFCAFEF00DULL;
  it->second.entry_digest ^= 0xDEADBEEFCAFEF00DULL;
  return OkStatus();
}

std::vector<FileId> PhysicalLayer::StoredFiles() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<FileId> out;
  out.reserve(locations_.size());
  for (const auto& [file, loc] : locations_) {
    out.push_back(file);
  }
  return out;
}

}  // namespace ficus::repl
