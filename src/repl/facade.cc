#include "src/repl/facade.h"

#include <algorithm>

namespace ficus::repl {

using vfs::Credentials;
using vfs::OpContext;
using vfs::VAttr;
using vfs::VnodePtr;
using vfs::VnodeType;

namespace {

constexpr char kReqPrefix[] = "@req:";
constexpr char kSessionName[] = "@session";

void PutStatusBytes(ByteWriter& w, const Status& status) {
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message());
}

Status ReadStatusBytes(ByteReader& r) {
  auto code = r.GetU32();
  if (!code.ok()) {
    return code.status();
  }
  auto message = r.GetString();
  if (!message.ok()) {
    return message.status();
  }
  if (code.value() > static_cast<uint32_t>(ErrorCode::kInternal)) {
    return CorruptError("bad status code in physical-layer response");
  }
  return Status(static_cast<ErrorCode>(code.value()), std::move(message).value());
}

std::vector<uint8_t> ErrorResponse(const Status& status) {
  std::vector<uint8_t> out;
  ByteWriter w(out);
  PutStatusBytes(w, status);
  return out;
}

}  // namespace

std::vector<uint8_t> ExecutePhysRequest(PhysicalLayer* layer,
                                        const std::vector<uint8_t>& request) {
  ByteReader r(request);
  auto op_or = r.GetU8();
  if (!op_or.ok()) {
    return ErrorResponse(op_or.status());
  }
  PhysOp op = static_cast<PhysOp>(op_or.value());

  std::vector<uint8_t> out;
  ByteWriter w(out);

  // Each case decodes arguments, runs the call, and emits status+results.
  switch (op) {
    case PhysOp::kGetVolumeInfo: {
      PutStatusBytes(w, OkStatus());
      PutVolumeId(w, layer->volume_id());
      w.PutU32(layer->replica_id());
      return out;
    }
    case PhysOp::kGetAttributes: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto attrs = layer->GetAttributes(file);
      if (!attrs.ok()) {
        return ErrorResponse(attrs.status());
      }
      PutStatusBytes(w, OkStatus());
      attrs->Serialize(w);
      return out;
    }
    case PhysOp::kSetConflict: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto flag = r.GetU8();
      if (!flag.ok()) {
        return ErrorResponse(flag.status());
      }
      Status s = layer->SetConflict(file, flag.value() != 0);
      PutStatusBytes(w, s);
      return out;
    }
    case PhysOp::kReadData: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto offset = r.GetU64();
      auto length = r.GetU32();
      if (!offset.ok() || !length.ok()) {
        return ErrorResponse(CorruptError("bad ReadData request"));
      }
      auto data = layer->ReadData(file, offset.value(), length.value());
      if (!data.ok()) {
        return ErrorResponse(data.status());
      }
      PutStatusBytes(w, OkStatus());
      w.PutBytes(data.value());
      return out;
    }
    case PhysOp::kReadAllData: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto data = layer->ReadAllData(file);
      if (!data.ok()) {
        return ErrorResponse(data.status());
      }
      PutStatusBytes(w, OkStatus());
      w.PutBytes(data.value());
      return out;
    }
    case PhysOp::kDataSize: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto size = layer->DataSize(file);
      if (!size.ok()) {
        return ErrorResponse(size.status());
      }
      PutStatusBytes(w, OkStatus());
      w.PutU64(size.value());
      return out;
    }
    case PhysOp::kWriteData: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto offset = r.GetU64();
      auto data = r.GetBytes();
      if (!offset.ok() || !data.ok()) {
        return ErrorResponse(CorruptError("bad WriteData request"));
      }
      PutStatusBytes(w, layer->WriteData(file, offset.value(), data.value()));
      return out;
    }
    case PhysOp::kTruncateData: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto size = r.GetU64();
      if (!size.ok()) {
        return ErrorResponse(size.status());
      }
      PutStatusBytes(w, layer->TruncateData(file, size.value()));
      return out;
    }
    case PhysOp::kInstallVersion: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto contents = r.GetBytes();
      if (!contents.ok()) {
        return ErrorResponse(contents.status());
      }
      auto vv = VersionVector::Deserialize(r);
      if (!vv.ok()) {
        return ErrorResponse(vv.status());
      }
      PutStatusBytes(w, layer->InstallVersion(file, contents.value(), vv.value()));
      return out;
    }
    case PhysOp::kReadDirectory: {
      FileId dir;
      if (Status s = GetFileId(r, dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto entries = layer->ReadDirectory(dir);
      if (!entries.ok()) {
        return ErrorResponse(entries.status());
      }
      PutStatusBytes(w, OkStatus());
      w.PutU32(static_cast<uint32_t>(entries->size()));
      for (const auto& e : entries.value()) {
        e.Serialize(w);
      }
      return out;
    }
    case PhysOp::kCreateChild: {
      FileId dir;
      if (Status s = GetFileId(r, dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto name = r.GetString();
      auto type = r.GetU8();
      auto uid = r.GetU32();
      if (!name.ok() || !type.ok() || !uid.ok()) {
        return ErrorResponse(CorruptError("bad CreateChild request"));
      }
      auto file = layer->CreateChild(dir, name.value(),
                                     static_cast<FicusFileType>(type.value()), uid.value());
      if (!file.ok()) {
        return ErrorResponse(file.status());
      }
      PutStatusBytes(w, OkStatus());
      PutFileId(w, file.value());
      return out;
    }
    case PhysOp::kAddEntry: {
      FileId dir;
      FileId target;
      if (Status s = GetFileId(r, dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto name = r.GetString();
      if (!name.ok()) {
        return ErrorResponse(name.status());
      }
      if (Status s = GetFileId(r, target); !s.ok()) {
        return ErrorResponse(s);
      }
      auto type = r.GetU8();
      if (!type.ok()) {
        return ErrorResponse(type.status());
      }
      PutStatusBytes(w, layer->AddEntry(dir, name.value(), target,
                                        static_cast<FicusFileType>(type.value())));
      return out;
    }
    case PhysOp::kRemoveEntry: {
      FileId dir;
      if (Status s = GetFileId(r, dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto name = r.GetString();
      if (!name.ok()) {
        return ErrorResponse(name.status());
      }
      PutStatusBytes(w, layer->RemoveEntry(dir, name.value()));
      return out;
    }
    case PhysOp::kRenameEntry: {
      FileId old_dir;
      FileId new_dir;
      if (Status s = GetFileId(r, old_dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto old_name = r.GetString();
      if (!old_name.ok()) {
        return ErrorResponse(old_name.status());
      }
      if (Status s = GetFileId(r, new_dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto new_name = r.GetString();
      if (!new_name.ok()) {
        return ErrorResponse(new_name.status());
      }
      PutStatusBytes(w,
                     layer->RenameEntry(old_dir, old_name.value(), new_dir, new_name.value()));
      return out;
    }
    case PhysOp::kApplyEntry: {
      FileId dir;
      if (Status s = GetFileId(r, dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto entry = FicusDirEntry::Deserialize(r);
      if (!entry.ok()) {
        return ErrorResponse(entry.status());
      }
      PutStatusBytes(w, layer->ApplyEntry(dir, entry.value()));
      return out;
    }
    case PhysOp::kApplyEntries: {
      FileId dir;
      if (Status s = GetFileId(r, dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto count = r.GetCount(20);  // see FicusDirEntry wire minimum
      if (!count.ok()) {
        return ErrorResponse(count.status());
      }
      std::vector<FicusDirEntry> batch;
      batch.reserve(count.value());
      for (uint32_t i = 0; i < count.value(); ++i) {
        auto entry = FicusDirEntry::Deserialize(r);
        if (!entry.ok()) {
          return ErrorResponse(entry.status());
        }
        batch.push_back(std::move(entry).value());
      }
      PutStatusBytes(w, layer->ApplyEntries(dir, batch));
      return out;
    }
    case PhysOp::kMergeDirVersion: {
      FileId dir;
      if (Status s = GetFileId(r, dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto vv = VersionVector::Deserialize(r);
      if (!vv.ok()) {
        return ErrorResponse(vv.status());
      }
      PutStatusBytes(w, layer->MergeDirVersion(dir, vv.value()));
      return out;
    }
    case PhysOp::kReadLink: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto target = layer->ReadLink(file);
      if (!target.ok()) {
        return ErrorResponse(target.status());
      }
      PutStatusBytes(w, OkStatus());
      w.PutString(target.value());
      return out;
    }
    case PhysOp::kWriteLink: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto target = r.GetString();
      if (!target.ok()) {
        return ErrorResponse(target.status());
      }
      PutStatusBytes(w, layer->WriteLink(file, target.value()));
      return out;
    }
    case PhysOp::kNoteOpen: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      PutStatusBytes(w, layer->NoteOpen(file));
      return out;
    }
    case PhysOp::kNoteClose: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      PutStatusBytes(w, layer->NoteClose(file));
      return out;
    }
    case PhysOp::kReadBlockDigests: {
      FileId file;
      if (Status s = GetFileId(r, file); !s.ok()) {
        return ErrorResponse(s);
      }
      auto info = layer->ReadBlockDigests(file);
      if (!info.ok()) {
        return ErrorResponse(info.status());
      }
      PutStatusBytes(w, OkStatus());
      w.PutU64(info->file_size);
      w.PutU32(static_cast<uint32_t>(info->digests.size()));
      for (uint64_t d : info->digests) {
        w.PutU64(d);
      }
      return out;
    }
    case PhysOp::kReadDirPlus: {
      FileId dir;
      if (Status s = GetFileId(r, dir); !s.ok()) {
        return ErrorResponse(s);
      }
      auto rows = layer->ReadDirPlus(dir);
      if (!rows.ok()) {
        return ErrorResponse(rows.status());
      }
      PutStatusBytes(w, OkStatus());
      w.PutU32(static_cast<uint32_t>(rows->size()));
      for (const auto& row : rows.value()) {
        row.entry.Serialize(w);
        PutStatusBytes(w, row.attr_status);
        if (row.attr_status.ok()) {
          row.attrs.Serialize(w);
          w.PutU64(row.size);
        }
      }
      return out;
    }
    case PhysOp::kBatchGetAttributes: {
      auto count = r.GetCount(8);  // one FileId per row
      if (!count.ok()) {
        return ErrorResponse(count.status());
      }
      std::vector<FileId> files;
      files.reserve(count.value());
      for (uint32_t i = 0; i < count.value(); ++i) {
        FileId file;
        if (Status s = GetFileId(r, file); !s.ok()) {
          return ErrorResponse(s);
        }
        files.push_back(file);
      }
      auto rows = layer->BatchGetAttributes(files);
      if (!rows.ok()) {
        return ErrorResponse(rows.status());
      }
      PutStatusBytes(w, OkStatus());
      w.PutU32(static_cast<uint32_t>(rows->size()));
      for (const auto& row : rows.value()) {
        PutFileId(w, row.file);
        PutStatusBytes(w, row.status);
        if (row.status.ok()) {
          row.attrs.Serialize(w);
        }
      }
      return out;
    }
    case PhysOp::kGetSubtreeDigests: {
      auto count = r.GetCount(8);  // one FileId per row
      if (!count.ok()) {
        return ErrorResponse(count.status());
      }
      std::vector<FileId> dirs;
      dirs.reserve(count.value());
      for (uint32_t i = 0; i < count.value(); ++i) {
        FileId dir;
        if (Status s = GetFileId(r, dir); !s.ok()) {
          return ErrorResponse(s);
        }
        dirs.push_back(dir);
      }
      auto rows = layer->GetSubtreeDigests(dirs);
      if (!rows.ok()) {
        return ErrorResponse(rows.status());
      }
      PutStatusBytes(w, OkStatus());
      w.PutU32(static_cast<uint32_t>(rows->size()));
      for (const auto& row : rows.value()) {
        PutFileId(w, row.dir);
        PutStatusBytes(w, row.status);
        if (row.status.ok()) {
          row.vv.Serialize(w);
          w.PutU64(row.entry_digest);
          w.PutU64(row.files_digest);
          w.PutU64(row.subtree_digest);
          w.PutU32(static_cast<uint32_t>(row.children.size()));
          for (const auto& [child, digest] : row.children) {
            PutFileId(w, child);
            w.PutU64(digest);
          }
        }
      }
      return out;
    }
  }
  return ErrorResponse(InvalidArgumentError("unknown physical-layer opcode"));
}

namespace {

// Read-only vnode holding one marshalled response.
class ResponseVnode : public vfs::Vnode {
 public:
  ResponseVnode(uint64_t fileid, uint64_t fsid, std::vector<uint8_t> response)
      : fileid_(fileid), fsid_(fsid), response_(std::move(response)) {}

  StatusOr<VAttr> GetAttr(const OpContext& = {}) override {
    VAttr attr;
    attr.type = VnodeType::kRegular;
    attr.size = response_.size();
    attr.fileid = fileid_;
    attr.fsid = fsid_;
    return attr;
  }

  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const OpContext&) override {
    out.clear();
    if (offset >= response_.size()) {
      return size_t{0};
    }
    size_t count = std::min(length, response_.size() - static_cast<size_t>(offset));
    out.assign(response_.begin() + static_cast<ptrdiff_t>(offset),
               response_.begin() + static_cast<ptrdiff_t>(offset + count));
    return count;
  }

 private:
  uint64_t fileid_;
  uint64_t fsid_;
  std::vector<uint8_t> response_;
};

// One-shot request/response channel for requests too large for a name.
class SessionVnode : public vfs::Vnode {
 public:
  SessionVnode(PhysicalLayer* layer, uint64_t fileid, uint64_t fsid)
      : layer_(layer), fileid_(fileid), fsid_(fsid) {}

  StatusOr<VAttr> GetAttr(const OpContext& = {}) override {
    VAttr attr;
    attr.type = VnodeType::kRegular;
    attr.size = executed_ ? response_.size() : request_.size();
    attr.fileid = fileid_;
    attr.fsid = fsid_;
    return attr;
  }

  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const OpContext&) override {
    if (executed_) {
      return InvalidArgumentError("session already executed");
    }
    size_t end = static_cast<size_t>(offset) + data.size();
    if (end > request_.size()) {
      request_.resize(end, 0);
    }
    std::copy(data.begin(), data.end(), request_.begin() + static_cast<ptrdiff_t>(offset));
    return data.size();
  }

  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const OpContext&) override {
    if (!executed_) {
      response_ = ExecutePhysRequest(layer_, request_);
      request_.clear();
      executed_ = true;
    }
    out.clear();
    if (offset >= response_.size()) {
      return size_t{0};
    }
    size_t count = std::min(length, response_.size() - static_cast<size_t>(offset));
    out.assign(response_.begin() + static_cast<ptrdiff_t>(offset),
               response_.begin() + static_cast<ptrdiff_t>(offset + count));
    return count;
  }

  // The NFS server fsyncs after every write; a session buffer has nothing
  // to flush.
  Status Fsync(const vfs::OpContext&) override { return OkStatus(); }

 private:
  PhysicalLayer* layer_;
  uint64_t fileid_;
  uint64_t fsid_;
  std::vector<uint8_t> request_;
  std::vector<uint8_t> response_;
  bool executed_ = false;
};

class FacadeRootVnode : public vfs::Vnode {
 public:
  explicit FacadeRootVnode(PhysicalFacadeVfs* fs) : fs_(fs) {}

  StatusOr<VAttr> GetAttr(const OpContext& = {}) override {
    VAttr attr;
    attr.type = VnodeType::kDirectory;
    attr.fileid = 1;
    attr.fsid = fs_->fsid();
    return attr;
  }

  StatusOr<VnodePtr> Lookup(std::string_view name, const OpContext&) override {
    if (name == kSessionName) {
      return VnodePtr(
          std::make_shared<SessionVnode>(fs_->layer(), fs_->NextFileId(), fs_->fsid()));
    }
    constexpr size_t kPrefixLen = sizeof(kReqPrefix) - 1;
    if (name.size() > kPrefixLen && name.substr(0, kPrefixLen) == kReqPrefix) {
      FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> request,
                             HexDecodeBytes(name.substr(kPrefixLen)));
      return VnodePtr(std::make_shared<ResponseVnode>(
          fs_->NextFileId(), fs_->fsid(), ExecutePhysRequest(fs_->layer(), request)));
    }
    return NotFoundError("facade understands only @req:* and @session names");
  }

 private:
  PhysicalFacadeVfs* fs_;
};

}  // namespace

PhysicalFacadeVfs::PhysicalFacadeVfs(PhysicalLayer* layer, uint64_t fsid)
    : layer_(layer), fsid_(fsid) {}

StatusOr<VnodePtr> PhysicalFacadeVfs::Root() {
  return VnodePtr(std::make_shared<FacadeRootVnode>(this));
}

// --- RemotePhysical ---

RemotePhysical::RemotePhysical(VnodePtr root, RootRefresher refresher)
    : root_(std::move(root)), refresher_(std::move(refresher)) {}

StatusOr<std::vector<uint8_t>> RemotePhysical::Transact(const std::vector<uint8_t>& request,
                                                        bool single_trip) {
  Credentials ctx;
  // One retry: a stale facade-root handle (server handle-table eviction
  // or restart) is recovered by re-acquiring the root, as NFS clients do.
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto result = TransactOnce(request, ctx, single_trip);
    if (result.ok() || result.status().code() != ErrorCode::kStale ||
        refresher_ == nullptr || attempt == 1) {
      return result;
    }
    auto fresh = refresher_();
    if (!fresh.ok()) {
      return result;
    }
    std::lock_guard<std::mutex> lock(root_mu_);
    root_ = std::move(fresh).value();
  }
  return InternalError("unreachable");
}

StatusOr<std::vector<uint8_t>> RemotePhysical::TransactOnce(
    const std::vector<uint8_t>& request, const OpContext& ctx, bool single_trip) {
  VnodePtr root;
  {
    std::lock_guard<std::mutex> lock(root_mu_);
    root = root_;
  }
  std::vector<uint8_t> response;
  if (request.size() <= kMaxInlineRequest && single_trip) {
    // Small request whose caller asked for the combined op: the encoded
    // name and the full response ride one LookupRead RPC.
    inline_calls_.fetch_add(1, std::memory_order_relaxed);
    std::string name = std::string(kReqPrefix) + HexEncodeBytes(request);
    FICUS_ASSIGN_OR_RETURN(response, root->LookupRead(name, ctx));
  } else {
    VnodePtr channel;
    if (request.size() <= kMaxInlineRequest) {
      // Small request: encode it into a lookup name that NFS forwards
      // verbatim (the paper's overloaded-lookup technique).
      inline_calls_.fetch_add(1, std::memory_order_relaxed);
      std::string name = std::string(kReqPrefix) + HexEncodeBytes(request);
      FICUS_ASSIGN_OR_RETURN(channel, root->Lookup(name, ctx));
    } else {
      session_calls_.fetch_add(1, std::memory_order_relaxed);
      FICUS_ASSIGN_OR_RETURN(channel, root->Lookup(kSessionName, ctx));
      FICUS_RETURN_IF_ERROR(channel->Write(0, request, ctx).status());
    }
    // Drain the response (it can exceed one NFS read quantum).
    constexpr size_t kChunk = 64 * 1024;
    for (;;) {
      std::vector<uint8_t> piece;
      FICUS_ASSIGN_OR_RETURN(size_t got, channel->Read(response.size(), kChunk, piece, ctx));
      response.insert(response.end(), piece.begin(), piece.end());
      if (got < kChunk) {
        break;
      }
    }
  }
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadStatusBytes(r));
  // Return the tail past the status so callers re-parse from a fresh
  // reader positioned at the results.
  std::vector<uint8_t> results(response.end() - static_cast<ptrdiff_t>(r.remaining()),
                               response.end());
  return results;
}

Status RemotePhysical::Connect() {
  std::vector<uint8_t> request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(PhysOp::kGetVolumeInfo));
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results, Transact(request));
  ByteReader r(results);
  FICUS_RETURN_IF_ERROR(GetVolumeId(r, volume_));
  FICUS_ASSIGN_OR_RETURN(replica_, r.GetU32());
  return OkStatus();
}

namespace {
std::vector<uint8_t> BeginPhysRequest(PhysOp op, FileId file) {
  std::vector<uint8_t> request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(op));
  PutFileId(w, file);
  return request;
}
}  // namespace

StatusOr<ReplicaAttributes> RemotePhysical::GetAttributes(FileId file) {
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results,
                         Transact(BeginPhysRequest(PhysOp::kGetAttributes, file)));
  ByteReader r(results);
  return ReplicaAttributes::Deserialize(r);
}

Status RemotePhysical::SetConflict(FileId file, bool conflict) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kSetConflict, file);
  ByteWriter w(request);
  w.PutU8(conflict ? 1 : 0);
  return Transact(request).status();
}

StatusOr<std::vector<FileAttrResult>> RemotePhysical::BatchGetAttributes(
    const std::vector<FileId>& files) {
  std::vector<uint8_t> request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(PhysOp::kBatchGetAttributes));
  w.PutU32(static_cast<uint32_t>(files.size()));
  for (FileId file : files) {
    PutFileId(w, file);
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results, Transact(request));
  ByteReader r(results);
  FICUS_ASSIGN_OR_RETURN(uint32_t count, r.GetCount(14));  // FileId + min status bytes
  std::vector<FileAttrResult> rows;
  rows.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FileAttrResult row;
    FICUS_RETURN_IF_ERROR(GetFileId(r, row.file));
    row.status = ReadStatusBytes(r);
    if (row.status.ok()) {
      FICUS_ASSIGN_OR_RETURN(row.attrs, ReplicaAttributes::Deserialize(r));
    } else if (row.status.code() == ErrorCode::kCorrupt) {
      // A marshalling error (vs. a per-file failure shipped in the row)
      // poisons the rest of the stream.
      return row.status;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

StatusOr<std::vector<SubtreeDigest>> RemotePhysical::GetSubtreeDigests(
    const std::vector<FileId>& dirs) {
  std::vector<uint8_t> request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(PhysOp::kGetSubtreeDigests));
  w.PutU32(static_cast<uint32_t>(dirs.size()));
  for (FileId dir : dirs) {
    PutFileId(w, dir);
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results,
                         Transact(request, /*single_trip=*/true));
  ByteReader r(results);
  FICUS_ASSIGN_OR_RETURN(uint32_t count, r.GetCount(14));  // FileId + min status bytes
  std::vector<SubtreeDigest> rows;
  rows.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SubtreeDigest row;
    FICUS_RETURN_IF_ERROR(GetFileId(r, row.dir));
    row.status = ReadStatusBytes(r);
    if (row.status.ok()) {
      FICUS_ASSIGN_OR_RETURN(row.vv, VersionVector::Deserialize(r));
      FICUS_ASSIGN_OR_RETURN(row.entry_digest, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(row.files_digest, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(row.subtree_digest, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(uint32_t kids, r.GetCount(16));  // FileId + digest per row
      row.children.reserve(kids);
      for (uint32_t k = 0; k < kids; ++k) {
        FileId child;
        FICUS_RETURN_IF_ERROR(GetFileId(r, child));
        FICUS_ASSIGN_OR_RETURN(uint64_t digest, r.GetU64());
        row.children.emplace_back(child, digest);
      }
    } else if (row.status.code() == ErrorCode::kCorrupt) {
      // A marshalling error (vs. a per-directory failure shipped in the
      // row) poisons the rest of the stream.
      return row.status;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

StatusOr<std::vector<uint8_t>> RemotePhysical::ReadData(FileId file, uint64_t offset,
                                                        uint32_t length) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kReadData, file);
  ByteWriter w(request);
  w.PutU64(offset);
  w.PutU32(length);
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results, Transact(request));
  ByteReader r(results);
  return r.GetBytes();
}

StatusOr<std::vector<uint8_t>> RemotePhysical::ReadAllData(FileId file) {
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results,
                         Transact(BeginPhysRequest(PhysOp::kReadAllData, file)));
  ByteReader r(results);
  return r.GetBytes();
}

StatusOr<uint64_t> RemotePhysical::DataSize(FileId file) {
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results,
                         Transact(BeginPhysRequest(PhysOp::kDataSize, file)));
  ByteReader r(results);
  return r.GetU64();
}

StatusOr<BlockDigestInfo> RemotePhysical::ReadBlockDigests(FileId file) {
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results,
                         Transact(BeginPhysRequest(PhysOp::kReadBlockDigests, file)));
  ByteReader r(results);
  BlockDigestInfo info;
  FICUS_ASSIGN_OR_RETURN(info.file_size, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(uint32_t count, r.GetCount(8));
  info.digests.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FICUS_ASSIGN_OR_RETURN(uint64_t digest, r.GetU64());
    info.digests.push_back(digest);
  }
  return info;
}

Status RemotePhysical::WriteData(FileId file, uint64_t offset,
                                 const std::vector<uint8_t>& data) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kWriteData, file);
  ByteWriter w(request);
  w.PutU64(offset);
  w.PutBytes(data);
  return Transact(request).status();
}

Status RemotePhysical::TruncateData(FileId file, uint64_t size) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kTruncateData, file);
  ByteWriter w(request);
  w.PutU64(size);
  return Transact(request).status();
}

Status RemotePhysical::InstallVersion(FileId file, const std::vector<uint8_t>& contents,
                                      const VersionVector& vv) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kInstallVersion, file);
  ByteWriter w(request);
  w.PutBytes(contents);
  vv.Serialize(w);
  return Transact(request).status();
}

StatusOr<std::vector<FicusDirEntry>> RemotePhysical::ReadDirectory(FileId dir) {
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results,
                         Transact(BeginPhysRequest(PhysOp::kReadDirectory, dir)));
  ByteReader r(results);
  FICUS_ASSIGN_OR_RETURN(uint32_t count, r.GetCount(20));
  std::vector<FicusDirEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FICUS_ASSIGN_OR_RETURN(FicusDirEntry entry, FicusDirEntry::Deserialize(r));
    entries.push_back(std::move(entry));
  }
  return entries;
}

StatusOr<std::vector<DirEntryPlus>> RemotePhysical::ReadDirPlus(FileId dir) {
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results,
                         Transact(BeginPhysRequest(PhysOp::kReadDirPlus, dir)));
  ByteReader r(results);
  FICUS_ASSIGN_OR_RETURN(uint32_t count, r.GetCount(26));  // entry + min status bytes
  std::vector<DirEntryPlus> rows;
  rows.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DirEntryPlus row;
    FICUS_ASSIGN_OR_RETURN(row.entry, FicusDirEntry::Deserialize(r));
    row.attr_status = ReadStatusBytes(r);
    if (row.attr_status.ok()) {
      FICUS_ASSIGN_OR_RETURN(row.attrs, ReplicaAttributes::Deserialize(r));
      FICUS_ASSIGN_OR_RETURN(row.size, r.GetU64());
    } else if (row.attr_status.code() == ErrorCode::kCorrupt) {
      // A marshalling error (vs. a per-row failure shipped in the row)
      // poisons the rest of the stream.
      return row.attr_status;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

StatusOr<FileId> RemotePhysical::CreateChild(FileId dir, std::string_view name,
                                             FicusFileType type, uint32_t owner_uid) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kCreateChild, dir);
  ByteWriter w(request);
  w.PutString(name);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU32(owner_uid);
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results, Transact(request));
  ByteReader r(results);
  FileId file;
  FICUS_RETURN_IF_ERROR(GetFileId(r, file));
  return file;
}

Status RemotePhysical::AddEntry(FileId dir, std::string_view name, FileId target,
                                FicusFileType type) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kAddEntry, dir);
  ByteWriter w(request);
  w.PutString(name);
  PutFileId(w, target);
  w.PutU8(static_cast<uint8_t>(type));
  return Transact(request).status();
}

Status RemotePhysical::RemoveEntry(FileId dir, std::string_view name) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kRemoveEntry, dir);
  ByteWriter w(request);
  w.PutString(name);
  return Transact(request).status();
}

Status RemotePhysical::RenameEntry(FileId old_dir, std::string_view old_name, FileId new_dir,
                                   std::string_view new_name) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kRenameEntry, old_dir);
  ByteWriter w(request);
  w.PutString(old_name);
  PutFileId(w, new_dir);
  w.PutString(new_name);
  return Transact(request).status();
}

Status RemotePhysical::ApplyEntry(FileId dir, const FicusDirEntry& entry) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kApplyEntry, dir);
  ByteWriter w(request);
  entry.Serialize(w);
  return Transact(request).status();
}

Status RemotePhysical::ApplyEntries(FileId dir, const std::vector<FicusDirEntry>& entries) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kApplyEntries, dir);
  ByteWriter w(request);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    entry.Serialize(w);
  }
  return Transact(request).status();
}

Status RemotePhysical::MergeDirVersion(FileId dir, const VersionVector& vv) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kMergeDirVersion, dir);
  ByteWriter w(request);
  vv.Serialize(w);
  return Transact(request).status();
}

StatusOr<std::string> RemotePhysical::ReadLink(FileId file) {
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> results,
                         Transact(BeginPhysRequest(PhysOp::kReadLink, file)));
  ByteReader r(results);
  return r.GetString();
}

Status RemotePhysical::WriteLink(FileId file, std::string_view target) {
  std::vector<uint8_t> request = BeginPhysRequest(PhysOp::kWriteLink, file);
  ByteWriter w(request);
  w.PutString(target);
  return Transact(request).status();
}

Status RemotePhysical::NoteOpen(FileId file) {
  return Transact(BeginPhysRequest(PhysOp::kNoteOpen, file)).status();
}

Status RemotePhysical::NoteClose(FileId file) {
  return Transact(BeginPhysRequest(PhysOp::kNoteClose, file)).status();
}

}  // namespace ficus::repl
