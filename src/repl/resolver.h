// How a layer finds the physical layers managing the replicas of a volume.
// The simulation harness implements this by returning either the local
// PhysicalLayer or a RemotePhysical proxy that crosses an NFS hop; an
// unreachable host surfaces as kUnreachable, which every caller treats as
// "that replica is not available right now" — the normal condition of a
// large-scale system (paper section 1).
#ifndef FICUS_SRC_REPL_RESOLVER_H_
#define FICUS_SRC_REPL_RESOLVER_H_

#include <vector>

#include "src/common/status.h"
#include "src/repl/physical_api.h"

namespace ficus::repl {

// The failure detector's verdict on the host backing a replica, as seen
// by this resolver. Mirrors cluster::PeerState without depending on the
// cluster module — the repl layer only consumes verdicts.
//   kAlive   — no reason to doubt the peer; normal behaviour.
//   kSuspect — probes are missing but the peer is not condemned yet:
//              daemons keep trying, but stop charging per-entry retry
//              budget (a budget burned during a flap drops entries the
//              peer would have served seconds later).
//   kDead    — condemned: daemons skip the peer outright instead of
//              burning an RPC timeout per entry per pass.
enum class PeerHealth : uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
};

class ReplicaResolver {
 public:
  virtual ~ReplicaResolver() = default;

  // Every replica known to exist for the volume (reachable or not).
  virtual std::vector<ReplicaId> ReplicasOf(const VolumeId& volume) = 0;

  // Access to one replica's physical layer. kUnreachable when the managing
  // host cannot be contacted; kNotFound when the replica does not exist.
  virtual StatusOr<PhysicalApi*> Access(const VolumeId& volume, ReplicaId replica) = 0;

  // The replica this resolver considers local/cheapest (used to bias
  // update placement and tie-break read selection). kInvalidReplica when
  // no replica is local to this host.
  virtual ReplicaId PreferredReplica(const VolumeId& volume) {
    (void)volume;
    return kInvalidReplica;
  }

  // Failure-detector verdict for the host backing `replica`. The default
  // (no detector wired in) claims every peer alive, which preserves the
  // pre-membership behaviour exactly: every daemon keeps knocking on
  // every door.
  virtual PeerHealth HealthOf(const VolumeId& volume, ReplicaId replica) {
    (void)volume;
    (void)replica;
    return PeerHealth::kAlive;
  }

  // Relative cost of reading through `replica`, for read-your-nearest
  // selection among equally-fresh candidates: 0 = local, larger = more
  // distant. The default ranks the preferred replica first and everything
  // else equal, which reproduces the old preferred-replica tie-break.
  virtual uint64_t ReadCost(const VolumeId& volume, ReplicaId replica) {
    return replica == PreferredReplica(volume) ? 0 : 1;
  }
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_RESOLVER_H_
