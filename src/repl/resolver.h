// How a layer finds the physical layers managing the replicas of a volume.
// The simulation harness implements this by returning either the local
// PhysicalLayer or a RemotePhysical proxy that crosses an NFS hop; an
// unreachable host surfaces as kUnreachable, which every caller treats as
// "that replica is not available right now" — the normal condition of a
// large-scale system (paper section 1).
#ifndef FICUS_SRC_REPL_RESOLVER_H_
#define FICUS_SRC_REPL_RESOLVER_H_

#include <vector>

#include "src/common/status.h"
#include "src/repl/physical_api.h"

namespace ficus::repl {

class ReplicaResolver {
 public:
  virtual ~ReplicaResolver() = default;

  // Every replica known to exist for the volume (reachable or not).
  virtual std::vector<ReplicaId> ReplicasOf(const VolumeId& volume) = 0;

  // Access to one replica's physical layer. kUnreachable when the managing
  // host cannot be contacted; kNotFound when the replica does not exist.
  virtual StatusOr<PhysicalApi*> Access(const VolumeId& volume, ReplicaId replica) = 0;

  // The replica this resolver considers local/cheapest (used to bias
  // update placement and tie-break read selection). kInvalidReplica when
  // no replica is local to this host.
  virtual ReplicaId PreferredReplica(const VolumeId& volume) {
    (void)volume;
    return kInvalidReplica;
  }
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_RESOLVER_H_
