// The service interface one volume replica's physical layer offers to
// logical layers and to peer physical layers (for propagation and
// reconciliation). Two implementations exist:
//   * PhysicalLayer      — the local store over a UFS (physical.h), and
//   * RemotePhysical     — a client-side proxy that marshals each call
//                          through vnode operations across an NFS hop
//                          (facade.h), reproducing the paper's use of NFS
//                          as the transport between stacked Ficus layers.
// The logical layer is written purely against this interface, so it is
// "generally unaware which replica services a file request" (section 1).
#ifndef FICUS_SRC_REPL_PHYSICAL_API_H_
#define FICUS_SRC_REPL_PHYSICAL_API_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/repl/types.h"

namespace ficus::repl {

// Delta propagation (PR 4) transfers files in fixed-size blocks: the
// puller compares per-block digests and fetches only the blocks that
// differ. 4 KiB matches the UFS/storage block size, so a delta fetch
// never straddles more device blocks than the data it carries.
inline constexpr uint32_t kDeltaBlockSize = 4096;

// Strong 64-bit content digest for one block: FNV-1a over the bytes,
// seeded with the block length (so a short tail block never collides
// with its zero-padded sibling), finished with a splitmix64 avalanche
// to spread FNV's weak low bits. Not cryptographic — the threat model
// is accidental collision between replicas of the same file, where
// 64 bits is ample.
inline uint64_t BlockDigest(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(len));
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

// Result of ReadBlockDigests: the file size at digest time plus one
// digest per kDeltaBlockSize block (the last block may be partial). The
// size rides along so a single RPC tells the puller everything it needs
// to plan the delta fetch.
struct BlockDigestInfo {
  uint64_t file_size = 0;
  std::vector<uint64_t> digests;
};

// One row of a BatchGetAttributes response. `attrs` is meaningful only
// when `status` is ok (a file can be missing at the source while its
// siblings in the same batch exist).
struct FileAttrResult {
  FileId file;
  Status status = OkStatus();
  ReplicaAttributes attrs;
};

// Order-independent combinator for digests of set elements: modular sum,
// not XOR, so duplicate elements (two tombstones serializing identically
// is legal mid-merge) do not cancel out. Replicas converge to equal entry
// SETS but append entries in different orders, so the per-directory entry
// digest must not depend on position.
inline uint64_t DigestAddElement(uint64_t set_digest, uint64_t element_digest) {
  return set_digest + element_digest;  // u64 arithmetic is mod 2^64
}

// Order-dependent mixer for the subtree rollup (children are folded in
// sorted file-id order, so determinism is by construction).
inline uint64_t DigestMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

// One row of a GetSubtreeDigests response: the Merkle-style summary of a
// directory and the subtree hanging off it. `status` is per-directory
// (a replica may not store a directory its sibling in the same batch
// stores); the digest fields are meaningful only when it is ok.
//
//   entry_digest   — order-independent digest of the raw entry set
//                    (names, file-ids, types, liveness, entry version
//                    vectors, deleted_file_vv tombstone payloads);
//   files_digest   — digest of the content state (version vector +
//                    conflict flag) of every ALIVE non-directory child;
//   subtree_digest — entry_digest + files_digest + the directory's own
//                    version vector + the recursive subtree digests of
//                    every locally stored directory-like child.
//
// Equal subtree digests on two replicas prove the subtrees need no
// reconciliation; a mismatch says nothing beyond "descend".
struct SubtreeDigest {
  FileId dir;
  Status status = OkStatus();
  VersionVector vv;             // the directory's own version vector
  uint64_t entry_digest = 0;
  uint64_t files_digest = 0;
  uint64_t subtree_digest = 0;
  // Locally stored directory-like children (dead entries included — a
  // tombstoned subdirectory still holds state the remote may need) with
  // their subtree digests, deduplicated and sorted by file-id.
  std::vector<std::pair<FileId, uint64_t>> children;
};

// One row of a ReadDirPlus scan: a presented, alive directory entry
// together with the child's replication attributes and (for regular
// files and symlinks) its data size. `attrs`/`size` are meaningful only
// when `attr_status` is ok — a replica may list a child whose storage it
// does not hold, in which case the row still names the child and the
// caller falls back to per-file attribute fetches for that row alone.
struct DirEntryPlus {
  FicusDirEntry entry;
  Status attr_status = OkStatus();
  ReplicaAttributes attrs;
  uint64_t size = 0;
};

class PhysicalApi {
 public:
  virtual ~PhysicalApi() = default;

  virtual VolumeId volume_id() const = 0;
  virtual ReplicaId replica_id() const = 0;

  // --- attributes ---
  virtual StatusOr<ReplicaAttributes> GetAttributes(FileId file) = 0;
  // Marks / clears the conflict flag on a replica (file conflicts are
  // reported to the owner, who resolves and clears; section 3.3).
  virtual Status SetConflict(FileId file, bool conflict) = 0;
  // Batched probe for the propagation daemon: attributes for many files
  // of this volume in one round trip. Per-file failures are reported in
  // the row's status; the call itself only fails on transport/marshal
  // errors. Rows come back in request order.
  virtual StatusOr<std::vector<FileAttrResult>> BatchGetAttributes(
      const std::vector<FileId>& files) = 0;
  // Batched probe for digest-guided reconciliation: Merkle-style subtree
  // summaries for many directories of this volume in one round trip.
  // Per-directory failures are reported in the row's status; rows come
  // back in request order.
  virtual StatusOr<std::vector<SubtreeDigest>> GetSubtreeDigests(
      const std::vector<FileId>& dirs) = 0;

  // --- regular file data ---
  virtual StatusOr<std::vector<uint8_t>> ReadData(FileId file, uint64_t offset,
                                                  uint32_t length) = 0;
  virtual StatusOr<std::vector<uint8_t>> ReadAllData(FileId file) = 0;
  virtual StatusOr<uint64_t> DataSize(FileId file) = 0;
  // Per-block digests of the current contents (kDeltaBlockSize blocks),
  // computed lazily and cached against the file's version vector. The
  // delta propagation path compares these against local digests and
  // fetches only differing blocks via ranged ReadData.
  virtual StatusOr<BlockDigestInfo> ReadBlockDigests(FileId file) = 0;
  // Client update path: applies the write and advances this replica's
  // component of the file's version vector by one.
  virtual Status WriteData(FileId file, uint64_t offset,
                           const std::vector<uint8_t>& data) = 0;
  virtual Status TruncateData(FileId file, uint64_t size) = 0;
  // Propagation install path: atomically replaces the whole contents and
  // the version vector using the shadow-file commit (section 3.2). Never
  // advances this replica's own component.
  virtual Status InstallVersion(FileId file, const std::vector<uint8_t>& contents,
                                const VersionVector& vv) = 0;

  // --- directories ---
  virtual StatusOr<std::vector<FicusDirEntry>> ReadDirectory(FileId dir) = 0;
  // The `ls -l` shape in one round trip: presented, alive entries of
  // `dir` with each child's attributes and size riding along, so a scan
  // of an N-entry directory costs one RPC instead of 1 + N GetAttributes
  // calls (the NFS readdirplus idea). Per-child attribute failures are
  // reported in the row, never as a call failure.
  virtual StatusOr<std::vector<DirEntryPlus>> ReadDirPlus(FileId dir) = 0;
  // Client operations; each advances the directory replica's version
  // vector and the touched entry's version vector at this replica.
  virtual StatusOr<FileId> CreateChild(FileId dir, std::string_view name,
                                       FicusFileType type, uint32_t owner_uid) = 0;
  // Adds another name for an existing file (hard link / extra directory
  // name — Ficus directories form a DAG, section 2.5 footnote).
  virtual Status AddEntry(FileId dir, std::string_view name, FileId target,
                          FicusFileType type) = 0;
  virtual Status RemoveEntry(FileId dir, std::string_view name) = 0;
  virtual Status RenameEntry(FileId old_dir, std::string_view old_name, FileId new_dir,
                             std::string_view new_name) = 0;

  // Reconciliation path: replays one remote entry (insert or tombstone)
  // into the local directory replica, creating empty local storage for
  // previously unseen files. Does NOT advance this replica's components
  // for the remote activity itself — only repairs count as new events.
  virtual Status ApplyEntry(FileId dir, const FicusDirEntry& entry) = 0;
  // Batched form: one directory load/store for the whole remote entry
  // list — what the subtree protocol uses (a directory's reconciliation
  // is one logical step, not |entries| rewrites).
  virtual Status ApplyEntries(FileId dir, const std::vector<FicusDirEntry>& entries) = 0;
  // Folds a remote directory replica's version vector into the local one
  // after all its entries have been applied.
  virtual Status MergeDirVersion(FileId dir, const VersionVector& vv) = 0;

  // --- symlinks ---
  virtual StatusOr<std::string> ReadLink(FileId file) = 0;
  virtual Status WriteLink(FileId file, std::string_view target) = 0;

  // --- open/close bookkeeping ---
  // The information NFS would have eaten; Ficus tunnels it via encoded
  // lookups (section 2.3). Used for cache warmth accounting here.
  virtual Status NoteOpen(FileId file) = 0;
  virtual Status NoteClose(FileId file) = 0;
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_PHYSICAL_API_H_
