// The Ficus reconciliation service (paper section 3.3).
//
// A reconciliation run examines the state of two replicas, determines which
// operations have been performed on each, and applies to the local replica
// the operations that reflect previously unseen remote activity:
//   * directory reconciliation replays remote entry inserts/deletes using
//     per-entry version vectors (deletes are tombstones, so a remote
//     delete is an operation we can order against a local recreate);
//   * file reconciliation pulls strictly newer versions via the atomic
//     install path, and flags concurrent versions as conflicts for the
//     owner (regular files) — directories are merged automatically.
// The subtree protocol walks an entire subgraph pairwise against one
// remote replica, interleaving with normal client activity (nothing is
// locked; every step is an ordinary physical-layer operation).
#ifndef FICUS_SRC_REPL_RECONCILE_H_
#define FICUS_SRC_REPL_RECONCILE_H_

#include <cstdint>
#include <set>

#include "src/common/clock.h"
#include "src/repl/conflict_log.h"
#include "src/repl/physical.h"
#include "src/repl/resolver.h"

namespace ficus::repl {

struct ReconcileStats {
  uint64_t directories_reconciled = 0;
  uint64_t files_pulled = 0;           // strictly newer versions installed
  uint64_t files_in_conflict = 0;      // concurrent versions detected
  uint64_t entries_examined = 0;
  uint64_t subtree_runs = 0;
};

class Reconciler {
 public:
  // All pointers borrowed. `local` is the replica being brought up to
  // date; conflicts are recorded in `log`.
  Reconciler(PhysicalLayer* local, ReplicaResolver* resolver, ConflictLog* log,
             const Clock* clock = nullptr);

  // Reconciles one directory (entries + the directory's version vector)
  // against the remote replica. Does not touch file contents. One
  // exception to "does not recurse": before applying a remote tombstone
  // for a subdirectory, that subdirectory's own contents are reconciled
  // first, so a legitimate rmdir (whose child deletions we simply have
  // not seen yet) is distinguishable from a delete/update conflict (the
  // subdirectory gained children the remover never saw — liveness wins).
  Status ReconcileDirectory(FileId dir, PhysicalApi* remote);

  // Brings one regular file / symlink up to date against the remote:
  // pull if remote strictly dominates, conflict-flag if concurrent.
  Status ReconcileFile(FileId file, PhysicalApi* remote);

  // The periodic protocol: traverses the whole subgraph rooted at `root`
  // against one remote replica, reconciling directories first (so newly
  // discovered files gain placeholder storage) and then file contents.
  Status ReconcileSubtree(FileId root, ReplicaId remote_replica);

  // Convenience: reconcile the volume root subtree against every
  // reachable replica of the volume.
  Status ReconcileWithAllReplicas();

  const ReconcileStats& stats() const { return stats_; }

 private:
  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

  // `visiting` guards against cycles in the directory DAG.
  Status ReconcileDirectoryInner(FileId dir, PhysicalApi* remote,
                                 std::set<FileId>& visiting);

  PhysicalLayer* local_;
  ReplicaResolver* resolver_;
  ConflictLog* log_;
  const Clock* clock_;
  ReconcileStats stats_;
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_RECONCILE_H_
