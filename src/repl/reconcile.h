// The Ficus reconciliation service (paper section 3.3).
//
// A reconciliation run examines the state of two replicas, determines which
// operations have been performed on each, and applies to the local replica
// the operations that reflect previously unseen remote activity:
//   * directory reconciliation replays remote entry inserts/deletes using
//     per-entry version vectors (deletes are tombstones, so a remote
//     delete is an operation we can order against a local recreate);
//   * file reconciliation pulls strictly newer versions via the atomic
//     install path, and flags concurrent versions as conflicts for the
//     owner (regular files) — directories are merged automatically.
// The subtree protocol walks an entire subgraph pairwise against one
// remote replica, interleaving with normal client activity (nothing is
// locked; every step is an ordinary physical-layer operation).
#ifndef FICUS_SRC_REPL_RECONCILE_H_
#define FICUS_SRC_REPL_RECONCILE_H_

#include <cstdint>
#include <memory>
#include <set>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/repl/conflict_log.h"
#include "src/repl/physical.h"
#include "src/repl/resolver.h"

namespace ficus::repl {

struct ReconcileStats {
  uint64_t directories_reconciled = 0;
  uint64_t files_pulled = 0;           // strictly newer versions installed
  uint64_t files_in_conflict = 0;      // concurrent versions detected
  uint64_t entries_examined = 0;
  uint64_t subtree_runs = 0;
  // Digest-guided mode bookkeeping.
  uint64_t digest_match = 0;        // subtree digests agreed (subtree pruned)
  uint64_t digest_mismatch = 0;     // subtree digests differed (descended)
  uint64_t digest_pruned_dirs = 0;  // directories never visited thanks to a match
  uint64_t digest_fallback = 0;     // entry-replay fallbacks (per differing dir,
                                    // plus whole-subtree on an old remote)
  uint64_t remote_calls = 0;        // every RPC to the remote replica, both modes
  // Peers skipped by ReconcileWithAllReplicas because the failure
  // detector condemned them (`repl.recon.skipped_dead`).
  uint64_t skipped_dead = 0;
};

// Knobs for the subtree protocol, plumbed from HostConfig so experiments
// can run the same cluster with and without the digest optimisation.
struct ReconcileOptions {
  // Exchange Merkle subtree digests first and descend only into differing
  // subtrees; directories whose digests agree are pruned without a single
  // per-entry RPC. Off = the original full entry-replay walk.
  bool digest_guided = true;
};

class Reconciler {
 public:
  // All pointers borrowed. `local` is the replica being brought up to
  // date; conflicts are recorded in `log`. `metrics` feeds the
  // repl.recon.digest.* counters; a private registry is created when
  // null so counting never needs a null check.
  Reconciler(PhysicalLayer* local, ReplicaResolver* resolver, ConflictLog* log,
             const Clock* clock = nullptr, ReconcileOptions options = {},
             MetricRegistry* metrics = nullptr);

  // Reconciles one directory (entries + the directory's version vector)
  // against the remote replica. Does not touch file contents. One
  // exception to "does not recurse": before applying a remote tombstone
  // for a subdirectory, that subdirectory's own contents are reconciled
  // first, so a legitimate rmdir (whose child deletions we simply have
  // not seen yet) is distinguishable from a delete/update conflict (the
  // subdirectory gained children the remover never saw — liveness wins).
  Status ReconcileDirectory(FileId dir, PhysicalApi* remote);

  // Brings one regular file / symlink up to date against the remote:
  // pull if remote strictly dominates, conflict-flag if concurrent.
  Status ReconcileFile(FileId file, PhysicalApi* remote);

  // The periodic protocol: traverses the whole subgraph rooted at `root`
  // against one remote replica, reconciling directories first (so newly
  // discovered files gain placeholder storage) and then file contents.
  Status ReconcileSubtree(FileId root, ReplicaId remote_replica);

  // Convenience: reconcile the volume root subtree against every
  // reachable replica of the volume.
  Status ReconcileWithAllReplicas();

  const ReconcileStats& stats() const { return stats_; }

 private:
  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

  // `visiting` guards against cycles in the directory DAG.
  Status ReconcileDirectoryInner(FileId dir, PhysicalApi* remote,
                                 std::set<FileId>& visiting);
  // ReconcileFile with the remote attributes already in hand (the digest
  // sweep fetches them batched, one RPC per directory).
  Status ReconcileFileWithAttrs(FileId file, PhysicalApi* remote,
                                const ReplicaAttributes& remote_attrs);
  // The original entry-replay walk over the whole local subtree.
  Status ReconcileSubtreeFullWalk(FileId root, PhysicalApi* remote);
  // Digest-guided walk: level-by-level batched digest exchange, pruning
  // equal subtrees. Returns kNotSupported untouched when the remote
  // predates the digest protocol (caller falls back to the full walk).
  Status ReconcileSubtreeDigest(FileId root, PhysicalApi* remote);
  // Batched per-directory file sweep: one BatchGetAttributes for every
  // alive, locally stored non-directory child, then per-file resolution.
  Status SweepDirectoryFiles(FileId dir, PhysicalApi* remote);
  void CountRemoteCall();

  PhysicalLayer* local_;
  ReplicaResolver* resolver_;
  ConflictLog* log_;
  const Clock* clock_;
  ReconcileOptions options_;
  std::unique_ptr<MetricRegistry> owned_registry_;
  MetricRegistry* registry_;
  struct DigestCells {
    Counter* match = nullptr;
    Counter* mismatch = nullptr;
    Counter* pruned_dirs = nullptr;
    Counter* fallback = nullptr;
    Counter* remote_calls = nullptr;
    Counter* skipped_dead = nullptr;
  } cells_;
  ReconcileStats stats_;
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_RECONCILE_H_
