#include "src/repl/logical.h"

namespace ficus::repl {

using vfs::Credentials;
using vfs::OpContext;
using vfs::DirEntry;
using vfs::SetAttrRequest;
using vfs::VAttr;
using vfs::VnodePtr;
using vfs::VnodeType;

LogicalLayer::LogicalLayer(VolumeId volume, ReplicaResolver* resolver,
                           UpdateNotifier* notifier, ConflictLog* log, const Clock* clock,
                           MetricRegistry* metrics)
    : volume_(volume),
      resolver_(resolver),
      notifier_(notifier),
      log_(log),
      clock_(clock),
      registry_(metrics != nullptr ? metrics : &owned_registry_),
      name_cache_(registry_) {
  stats_.reads = registry_->counter("repl.logical.reads");
  stats_.writes = registry_->counter("repl.logical.writes");
  stats_.lookups = registry_->counter("repl.logical.lookups");
  stats_.notifications_sent = registry_->counter("repl.logical.notifications_sent");
  stats_.replica_switches = registry_->counter("repl.logical.replica_switches");
  stats_.conflicts_surfaced = registry_->counter("repl.logical.conflicts_surfaced");
}

LogicalStats LogicalLayer::stats() const {
  LogicalStats out;
  out.reads = stats_.reads->value();
  out.writes = stats_.writes->value();
  out.lookups = stats_.lookups->value();
  out.notifications_sent = stats_.notifications_sent->value();
  out.replica_switches = stats_.replica_switches->value();
  out.conflicts_surfaced = stats_.conflicts_surfaced->value();
  return out;
}

StatusOr<VnodePtr> LogicalLayer::Root() {
  return VnodePtr(std::make_shared<LogicalVnode>(this, kRootFileId,
                                                 FicusFileType::kDirectory));
}

StatusOr<PhysicalApi*> LogicalLayer::SelectForUpdate(FileId file) {
  // Fast path: with a single replica there is no selection to perform and
  // no reason to probe attributes first (keeps the common one-replica
  // stack at the paper's I/O budget).
  std::vector<ReplicaId> replicas = resolver_->ReplicasOf(volume_);
  if (replicas.size() == 1) {
    return resolver_->Access(volume_, replicas.front());
  }
  ReplicaId preferred = resolver_->PreferredReplica(volume_);
  if (preferred != kInvalidReplica) {
    auto access = resolver_->Access(volume_, preferred);
    if (access.ok() && (*access)->GetAttributes(file).ok()) {
      return access;
    }
  }
  // One-copy availability: fall back to any reachable replica that stores
  // the file. Peers the failure detector has condemned are tried only
  // after every trusted candidate failed — a wrong dead verdict must not
  // cost availability, but a right one saves a timeout per call.
  for (bool include_dead : {false, true}) {
    for (ReplicaId replica : replicas) {
      if (replica == preferred) {
        continue;
      }
      bool dead = resolver_->HealthOf(volume_, replica) == PeerHealth::kDead;
      if (dead != include_dead) {
        continue;
      }
      auto access = resolver_->Access(volume_, replica);
      if (access.ok() && (*access)->GetAttributes(file).ok()) {
        return access;
      }
    }
  }
  return UnreachableError("no replica of " + file.ToString() + " is available for update");
}

StatusOr<PhysicalApi*> LogicalLayer::SelectForRead(FileId file) {
  std::vector<ReplicaId> replicas = resolver_->ReplicasOf(volume_);
  if (replicas.size() == 1) {
    return resolver_->Access(volume_, replicas.front());
  }
  ReplicaId preferred = resolver_->PreferredReplica(volume_);
  // Two passes: candidates the failure detector trusts first; condemned
  // peers only as a last resort (a wrong dead verdict must not cost
  // one-copy availability; a right one saves a timeout per read).
  for (bool include_dead : {false, true}) {
    PhysicalApi* best = nullptr;
    VersionVector best_vv;
    bool best_is_preferred = false;
    uint64_t best_cost = 0;
    for (ReplicaId replica : replicas) {
      bool dead = resolver_->HealthOf(volume_, replica) == PeerHealth::kDead;
      if (dead != include_dead) {
        continue;
      }
      auto access = resolver_->Access(volume_, replica);
      if (!access.ok()) {
        continue;
      }
      auto attrs = (*access)->GetAttributes(file);
      if (!attrs.ok()) {
        continue;  // unreachable mid-call, or does not store the file
      }
      uint64_t cost = resolver_->ReadCost(volume_, replica);
      if (best == nullptr) {
        best = *access;
        best_vv = attrs->vv;
        best_is_preferred = (replica == preferred);
        best_cost = cost;
        continue;
      }
      switch (attrs->vv.Compare(best_vv)) {
        case VectorOrder::kDominates:
          best = *access;
          best_vv = attrs->vv;
          best_is_preferred = (replica == preferred);
          best_cost = cost;
          break;
        case VectorOrder::kEqual:
          // Equally fresh: read your nearest. With the default resolver
          // costs (preferred 0, everything else 1) this is exactly the
          // old preferred-replica tie-break; a membership-aware resolver
          // ranks remote peers by measured heartbeat RTT.
          if (cost < best_cost) {
            best = *access;
            best_is_preferred = (replica == preferred);
            best_cost = cost;
          }
          break;
        case VectorOrder::kConcurrent:
          // Concurrent versions: prefer the site-local replica, so a
          // client keeps reading its own writes while the versions race
          // (the conflict flag set by propagation/reconciliation surfaces
          // the situation to the owner); otherwise keep the earlier pick
          // (deterministic — replicas iterate in id order).
          if (replica == preferred && !best_is_preferred) {
            best = *access;
            best_vv = attrs->vv;
            best_is_preferred = true;
            best_cost = cost;
          }
          break;
        case VectorOrder::kDominatedBy:
          break;
      }
    }
    if (best != nullptr) {
      if (!best_is_preferred) {
        stats_.replica_switches->Increment();
      }
      return best;
    }
  }
  return UnreachableError("no replica of " + file.ToString() + " is available");
}

void LogicalLayer::Notify(FileId file, const VersionVector& vv, ReplicaId source) {
  if (notifier_ == nullptr) {
    return;
  }
  stats_.notifications_sent->Increment();
  notifier_->NotifyUpdate(GlobalFileId{volume_, file}, vv, source);
}

Status LogicalLayer::ResolveFileConflict(FileId file, const std::vector<uint8_t>& resolved) {
  // Collect the version vectors of every reachable replica so the resolved
  // version dominates them all.
  VersionVector merged;
  std::vector<PhysicalApi*> reachable;
  for (ReplicaId replica : resolver_->ReplicasOf(volume_)) {
    auto access = resolver_->Access(volume_, replica);
    if (!access.ok()) {
      continue;
    }
    auto attrs = (*access)->GetAttributes(file);
    if (!attrs.ok()) {
      continue;
    }
    merged.MergeWith(attrs->vv);
    reachable.push_back(*access);
  }
  if (reachable.empty()) {
    return UnreachableError("no replica available to resolve conflict");
  }
  PhysicalApi* target = reachable.front();
  merged.Increment(target->replica_id());
  FICUS_RETURN_IF_ERROR(target->InstallVersion(file, resolved, merged));
  FICUS_RETURN_IF_ERROR(target->SetConflict(file, false));
  // If the resolved file is a directory, every cached binding under it
  // was filled under a pre-merge vector; drop them rather than letting
  // each one age out through a vector-mismatch miss.
  name_cache_.InvalidateDir(file);
  Notify(file, merged, target->replica_id());
  return OkStatus();
}

// --- LogicalVnode ---

namespace {
VnodeType ToVnodeType(FicusFileType type) { return static_cast<VnodeType>(type); }
}  // namespace

Status LogicalVnode::CheckDir() const {
  if (!IsDirectoryLike(type_)) {
    return NotDirError("logical vnode is not a directory");
  }
  return OkStatus();
}

StatusOr<VAttr> LogicalVnode::GetAttr(const OpContext&) {
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForRead(file_));
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, phys->GetAttributes(file_));
  VAttr out;
  out.type = ToVnodeType(attrs.type);
  out.uid = attrs.owner_uid;
  out.mtime = attrs.mtime;
  out.ctime = attrs.mtime;
  out.fileid = file_.Pack();
  out.fsid = (static_cast<uint64_t>(layer_->volume().allocator) << 32) |
             layer_->volume().volume;
  if (attrs.type == FicusFileType::kRegular || attrs.type == FicusFileType::kSymlink) {
    FICUS_ASSIGN_OR_RETURN(out.size, phys->DataSize(file_));
  }
  return out;
}

Status LogicalVnode::SetAttr(const SetAttrRequest& request, const OpContext&) {
  if (request.set_size) {
    if (type_ != FicusFileType::kRegular) {
      return IsDirError("cannot truncate a directory");
    }
    FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForUpdate(file_));
    FICUS_RETURN_IF_ERROR(phys->TruncateData(file_, request.size));
    FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, phys->GetAttributes(file_));
    layer_->Notify(file_, attrs.vv, phys->replica_id());
  }
  // Mode/uid/gid replication is not modelled; Ficus stores owner only.
  return OkStatus();
}

StatusOr<VnodePtr> LogicalVnode::Lookup(std::string_view name, const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  layer_->stat_cells().lookups->Increment();
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForRead(file_));
  // Name-cache fast path. The directory's current version vector (from
  // the replica just selected) is both the coherence check for a hit and
  // the stamp for a fill: any change to the directory — local mutation,
  // propagated remote update, reconcile merge — advances the vector and
  // voids every binding cached under the old one.
  NameCache* cache = layer_->name_cache();
  VersionVector dir_vv;
  bool have_dir_vv = false;
  if (cache->enabled()) {
    auto dir_attrs = phys->GetAttributes(file_);
    if (dir_attrs.ok()) {
      dir_vv = std::move(dir_attrs->vv);
      have_dir_vv = true;
      if (auto hit = cache->Lookup(file_, name, dir_vv)) {
        if (hit->negative) {
          return NotFoundError(std::string(name));
        }
        (void)phys->NoteOpen(hit->file);
        if (hit->type == FicusFileType::kGraftPoint &&
            layer_->graft_resolver() != nullptr) {
          return layer_->graft_resolver()->ResolveGraft(
              GlobalFileId{layer_->volume(), hit->file});
        }
        return VnodePtr(std::make_shared<LogicalVnode>(layer_, hit->file, hit->type));
      }
    }
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> raw, phys->ReadDirectory(file_));
  std::vector<FicusDirEntry> entries = PresentEntries(raw);
  if (have_dir_vv && entries.size() <= cache->capacity() / 2) {
    // The directory read is already paid for; seed the cache with every
    // sibling so an ls -l style scan misses once, not once per name. The
    // requested name is entered last, below, so capacity eviction can
    // never drop the binding the caller is about to use. Directories
    // bigger than half the cache skip the seed: pumping them through
    // would evict every other binding (including previously warmed ones)
    // for siblings that mostly cannot stay resident anyway.
    for (const auto& entry : entries) {
      if (entry.alive && entry.name != name) {
        cache->EnterPositive(file_, entry.name, dir_vv, entry.file, entry.type);
      }
    }
  }
  for (const auto& entry : entries) {
    if (!entry.alive || entry.name != name) {
      continue;
    }
    if (have_dir_vv) {
      cache->EnterPositive(file_, name, dir_vv, entry.file, entry.type);
    }
    // The information NFS eats: tell the physical layer the file is being
    // touched so its caches warm exactly as an open would (section 2.3).
    (void)phys->NoteOpen(entry.file);
    if (entry.type == FicusFileType::kGraftPoint && layer_->graft_resolver() != nullptr) {
      // Transparent autograft: the client sees the grafted volume's root.
      return layer_->graft_resolver()->ResolveGraft(
          GlobalFileId{layer_->volume(), entry.file});
    }
    return VnodePtr(std::make_shared<LogicalVnode>(layer_, entry.file, entry.type));
  }
  if (have_dir_vv) {
    cache->EnterNegative(file_, name, dir_vv);
  }
  return NotFoundError(std::string(name));
}

StatusOr<VnodePtr> LogicalVnode::Create(std::string_view name, const VAttr& attr,
                                        const OpContext& ctx) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForUpdate(file_));
  FICUS_ASSIGN_OR_RETURN(FileId child,
                         phys->CreateChild(file_, name, FicusFileType::kRegular,
                                           ctx.cred.uid != 0 ? ctx.cred.uid : attr.uid));
  // A cached "no such name" must not outlive the file's birth.
  layer_->name_cache()->Invalidate(file_, name);
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes dir_attrs, phys->GetAttributes(file_));
  layer_->Notify(file_, dir_attrs.vv, phys->replica_id());
  return VnodePtr(std::make_shared<LogicalVnode>(layer_, child, FicusFileType::kRegular));
}

Status LogicalVnode::RemoveCommon(std::string_view name, bool expect_dir) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForUpdate(file_));
  // Unix semantics: unlink refuses directories, rmdir refuses files.
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> raw, phys->ReadDirectory(file_));
  for (const auto& entry : PresentEntries(raw)) {
    if (!entry.alive || entry.name != name) {
      continue;
    }
    if (IsDirectoryLike(entry.type) && !expect_dir) {
      return IsDirError(std::string(name));
    }
    if (!IsDirectoryLike(entry.type) && expect_dir) {
      return NotDirError(std::string(name));
    }
    break;
  }
  FICUS_RETURN_IF_ERROR(phys->RemoveEntry(file_, name));
  layer_->name_cache()->Invalidate(file_, name);
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes dir_attrs, phys->GetAttributes(file_));
  layer_->Notify(file_, dir_attrs.vv, phys->replica_id());
  return OkStatus();
}

Status LogicalVnode::Remove(std::string_view name, const OpContext&) {
  return RemoveCommon(name, /*expect_dir=*/false);
}

StatusOr<VnodePtr> LogicalVnode::Mkdir(std::string_view name, const VAttr& attr,
                                       const OpContext& ctx) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForUpdate(file_));
  FICUS_ASSIGN_OR_RETURN(FileId child,
                         phys->CreateChild(file_, name, FicusFileType::kDirectory,
                                           ctx.cred.uid != 0 ? ctx.cred.uid : attr.uid));
  layer_->name_cache()->Invalidate(file_, name);
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes dir_attrs, phys->GetAttributes(file_));
  layer_->Notify(file_, dir_attrs.vv, phys->replica_id());
  return VnodePtr(std::make_shared<LogicalVnode>(layer_, child, FicusFileType::kDirectory));
}

Status LogicalVnode::Rmdir(std::string_view name, const OpContext&) {
  // One entry-removal operation either way; the physical layer enforces
  // emptiness, this wrapper enforces the Unix type distinction.
  return RemoveCommon(name, /*expect_dir=*/true);
}

Status LogicalVnode::Link(std::string_view name, const VnodePtr& target, const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  auto* logical_target = dynamic_cast<LogicalVnode*>(target.get());
  if (logical_target == nullptr || logical_target->layer_ != layer_) {
    return CrossDeviceError("link target is not in this volume");
  }
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForUpdate(file_));
  FICUS_RETURN_IF_ERROR(phys->AddEntry(file_, name, logical_target->file_,
                                       logical_target->type_));
  layer_->name_cache()->Invalidate(file_, name);
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes dir_attrs, phys->GetAttributes(file_));
  layer_->Notify(file_, dir_attrs.vv, phys->replica_id());
  return OkStatus();
}

Status LogicalVnode::Rename(std::string_view old_name, const VnodePtr& new_parent,
                            std::string_view new_name, const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  auto* logical_parent = dynamic_cast<LogicalVnode*>(new_parent.get());
  if (logical_parent == nullptr || logical_parent->layer_ != layer_) {
    return CrossDeviceError("rename target directory is not in this volume");
  }
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForUpdate(file_));
  FICUS_RETURN_IF_ERROR(
      phys->RenameEntry(file_, old_name, logical_parent->file_, new_name));
  // Both ends of the rename: the old binding is dead, and any negative
  // entry for the new name just became a lie.
  layer_->name_cache()->Invalidate(file_, old_name);
  layer_->name_cache()->Invalidate(logical_parent->file_, new_name);
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes dir_attrs, phys->GetAttributes(file_));
  layer_->Notify(file_, dir_attrs.vv, phys->replica_id());
  if (logical_parent->file_ != file_) {
    FICUS_ASSIGN_OR_RETURN(ReplicaAttributes new_dir_attrs,
                           phys->GetAttributes(logical_parent->file_));
    layer_->Notify(logical_parent->file_, new_dir_attrs.vv, phys->replica_id());
  }
  return OkStatus();
}

StatusOr<std::vector<DirEntry>> LogicalVnode::Readdir(const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForRead(file_));
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> raw, phys->ReadDirectory(file_));
  std::vector<DirEntry> out;
  std::vector<FicusDirEntry> entries = PresentEntries(raw);
  for (const auto& entry : entries) {
    if (!entry.alive) {
      continue;  // tombstones are an implementation detail
    }
    out.push_back(DirEntry{entry.name, entry.file.Pack(), ToVnodeType(entry.type)});
  }
  return out;
}

StatusOr<std::vector<vfs::DirEntryPlus>> LogicalVnode::ReaddirPlus(const OpContext& ctx) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForRead(file_));
  FICUS_ASSIGN_OR_RETURN(std::vector<DirEntryPlus> rows, phys->ReadDirPlus(file_));
  const uint64_t fsid = (static_cast<uint64_t>(layer_->volume().allocator) << 32) |
                        layer_->volume().volume;
  std::vector<vfs::DirEntryPlus> out;
  out.reserve(rows.size());
  for (auto& row : rows) {
    vfs::DirEntryPlus v;
    v.entry = DirEntry{row.entry.name, row.entry.file.Pack(), ToVnodeType(row.entry.type)};
    if (row.attr_status.ok()) {
      v.attr.type = ToVnodeType(row.attrs.type);
      v.attr.uid = row.attrs.owner_uid;
      v.attr.mtime = row.attrs.mtime;
      v.attr.ctime = row.attrs.mtime;
      v.attr.size = row.size;
      v.attr.fileid = row.entry.file.Pack();
      v.attr.fsid = fsid;
    } else {
      // The replica that served the listing does not store this child:
      // fall back to the per-file path (replica selection included) for
      // this row alone, keeping the batch savings for the rest.
      LogicalVnode child(layer_, row.entry.file, row.entry.type);
      auto attr = child.GetAttr(ctx);
      v.attr_status = attr.status();
      if (attr.ok()) {
        v.attr = attr.value();
      }
    }
    out.push_back(std::move(v));
  }
  return out;
}

StatusOr<VnodePtr> LogicalVnode::Symlink(std::string_view name, std::string_view target,
                                         const OpContext& ctx) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForUpdate(file_));
  FICUS_ASSIGN_OR_RETURN(FileId child,
                         phys->CreateChild(file_, name, FicusFileType::kSymlink, ctx.cred.uid));
  layer_->name_cache()->Invalidate(file_, name);
  FICUS_RETURN_IF_ERROR(phys->WriteLink(child, target));
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes dir_attrs, phys->GetAttributes(file_));
  layer_->Notify(file_, dir_attrs.vv, phys->replica_id());
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes link_attrs, phys->GetAttributes(child));
  layer_->Notify(child, link_attrs.vv, phys->replica_id());
  return VnodePtr(std::make_shared<LogicalVnode>(layer_, child, FicusFileType::kSymlink));
}

StatusOr<std::string> LogicalVnode::Readlink(const OpContext&) {
  if (type_ != FicusFileType::kSymlink) {
    return InvalidArgumentError("not a symlink");
  }
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForRead(file_));
  return phys->ReadLink(file_);
}

Status LogicalVnode::Open(uint32_t flags, const OpContext&) {
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForRead(file_));
  FICUS_RETURN_IF_ERROR(phys->NoteOpen(file_));
  if ((flags & vfs::kOpenTruncate) != 0 && type_ == FicusFileType::kRegular) {
    FICUS_ASSIGN_OR_RETURN(PhysicalApi * writer, layer_->SelectForUpdate(file_));
    FICUS_RETURN_IF_ERROR(writer->TruncateData(file_, 0));
    FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, writer->GetAttributes(file_));
    layer_->Notify(file_, attrs.vv, writer->replica_id());
  }
  return OkStatus();
}

Status LogicalVnode::Close(uint32_t, const OpContext&) {
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForRead(file_));
  return phys->NoteClose(file_);
}

StatusOr<size_t> LogicalVnode::Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                                    const OpContext&) {
  if (type_ != FicusFileType::kRegular) {
    return IsDirError("read on a non-regular logical file");
  }
  layer_->stat_cells().reads->Increment();
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForRead(file_));
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, phys->GetAttributes(file_));
  if (attrs.conflict) {
    layer_->stat_cells().conflicts_surfaced->Increment();
    return ConflictError("file " + file_.ToString() +
                         " has conflicting updates; owner must resolve");
  }
  FICUS_ASSIGN_OR_RETURN(out, phys->ReadData(file_, offset, static_cast<uint32_t>(length)));
  return out.size();
}

StatusOr<size_t> LogicalVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                     const OpContext&) {
  if (type_ != FicusFileType::kRegular) {
    return IsDirError("write on a non-regular logical file");
  }
  layer_->stat_cells().writes->Increment();
  // Updates are initially applied to a single physical replica (3.2).
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * phys, layer_->SelectForUpdate(file_));
  FICUS_RETURN_IF_ERROR(phys->WriteData(file_, offset, data));
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes attrs, phys->GetAttributes(file_));
  layer_->Notify(file_, attrs.vv, phys->replica_id());
  return data.size();
}

Status LogicalVnode::Fsync(const OpContext&) { return OkStatus(); }

}  // namespace ficus::repl
