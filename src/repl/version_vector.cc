#include "src/repl/version_vector.h"

namespace ficus::repl {

uint64_t VersionVector::Count(ReplicaId replica) const {
  auto it = counters_.find(replica);
  return it != counters_.end() ? it->second : 0;
}

VectorOrder VersionVector::Compare(const VersionVector& other) const {
  bool some_greater = false;
  bool some_less = false;
  // Walk the union of both key sets in one pass (both maps are ordered).
  auto lhs = counters_.begin();
  auto rhs = other.counters_.begin();
  while (lhs != counters_.end() || rhs != other.counters_.end()) {
    uint64_t l = 0;
    uint64_t r = 0;
    if (rhs == other.counters_.end() || (lhs != counters_.end() && lhs->first < rhs->first)) {
      l = lhs->second;
      ++lhs;
    } else if (lhs == counters_.end() || rhs->first < lhs->first) {
      r = rhs->second;
      ++rhs;
    } else {
      l = lhs->second;
      r = rhs->second;
      ++lhs;
      ++rhs;
    }
    if (l > r) {
      some_greater = true;
    } else if (l < r) {
      some_less = true;
    }
    if (some_greater && some_less) {
      return VectorOrder::kConcurrent;
    }
  }
  if (some_greater) {
    return VectorOrder::kDominates;
  }
  if (some_less) {
    return VectorOrder::kDominatedBy;
  }
  return VectorOrder::kEqual;
}

void VersionVector::MergeWith(const VersionVector& other) {
  for (const auto& [replica, count] : other.counters_) {
    uint64_t& mine = counters_[replica];
    if (count > mine) {
      mine = count;
    }
  }
}

VersionVector VersionVector::Merge(const VersionVector& a, const VersionVector& b) {
  VersionVector out = a;
  out.MergeWith(b);
  return out;
}

uint64_t VersionVector::TotalUpdates() const {
  uint64_t total = 0;
  for (const auto& [replica, count] : counters_) {
    total += count;
  }
  return total;
}

std::string VersionVector::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [replica, count] : counters_) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "r" + std::to_string(replica) + ":" + std::to_string(count);
  }
  out += "}";
  return out;
}

void VersionVector::Serialize(ByteWriter& w) const {
  w.PutU32(static_cast<uint32_t>(counters_.size()));
  for (const auto& [replica, count] : counters_) {
    w.PutU32(replica);
    w.PutU64(count);
  }
}

StatusOr<VersionVector> VersionVector::Deserialize(ByteReader& r) {
  // Each counter is u32 replica + u64 count = 12 bytes on the wire; a
  // size that cannot be satisfied is rejected before the loop runs.
  FICUS_ASSIGN_OR_RETURN(uint32_t size, r.GetCount(12));
  VersionVector vv;
  for (uint32_t i = 0; i < size; ++i) {
    FICUS_ASSIGN_OR_RETURN(uint32_t replica, r.GetU32());
    FICUS_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
    if (count != 0) {
      vv.counters_[replica] = count;
    }
  }
  return vv;
}

}  // namespace ficus::repl
