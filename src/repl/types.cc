#include "src/repl/types.h"

#include <string_view>
#include <unordered_map>

namespace ficus::repl {

void ReplicaAttributes::Serialize(ByteWriter& w) const {
  PutVolumeId(w, id.volume);
  PutFileId(w, id.file);
  w.PutU8(static_cast<uint8_t>(type));
  vv.Serialize(w);
  w.PutU8(conflict ? 1 : 0);
  w.PutU32(owner_uid);
  w.PutU64(mtime);
}

StatusOr<ReplicaAttributes> ReplicaAttributes::Deserialize(ByteReader& r) {
  ReplicaAttributes attrs;
  FICUS_RETURN_IF_ERROR(GetVolumeId(r, attrs.id.volume));
  FICUS_RETURN_IF_ERROR(GetFileId(r, attrs.id.file));
  FICUS_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  if (type < 1 || type > 4) {
    return CorruptError("bad file type in attributes");
  }
  attrs.type = static_cast<FicusFileType>(type);
  FICUS_ASSIGN_OR_RETURN(attrs.vv, VersionVector::Deserialize(r));
  FICUS_ASSIGN_OR_RETURN(uint8_t conflict, r.GetU8());
  attrs.conflict = conflict != 0;
  FICUS_ASSIGN_OR_RETURN(attrs.owner_uid, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(attrs.mtime, r.GetU64());
  return attrs;
}

std::vector<uint8_t> ReplicaAttributes::ToBytes() const {
  std::vector<uint8_t> out;
  ByteWriter w(out);
  Serialize(w);
  return out;
}

StatusOr<ReplicaAttributes> ReplicaAttributes::FromBytes(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  return Deserialize(r);
}

void FicusDirEntry::Serialize(ByteWriter& w) const {
  w.PutString(name);
  PutFileId(w, file);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU8(alive ? 1 : 0);
  vv.Serialize(w);
  deleted_file_vv.Serialize(w);
}

StatusOr<FicusDirEntry> FicusDirEntry::Deserialize(ByteReader& r) {
  FicusDirEntry entry;
  FICUS_ASSIGN_OR_RETURN(entry.name, r.GetString());
  FICUS_RETURN_IF_ERROR(GetFileId(r, entry.file));
  FICUS_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  if (type < 1 || type > 4) {
    return CorruptError("bad file type in directory entry");
  }
  entry.type = static_cast<FicusFileType>(type);
  FICUS_ASSIGN_OR_RETURN(uint8_t alive, r.GetU8());
  entry.alive = alive != 0;
  FICUS_ASSIGN_OR_RETURN(entry.vv, VersionVector::Deserialize(r));
  FICUS_ASSIGN_OR_RETURN(entry.deleted_file_vv, VersionVector::Deserialize(r));
  return entry;
}

std::vector<uint8_t> SerializeDirEntries(const std::vector<FicusDirEntry>& entries) {
  std::vector<uint8_t> out;
  ByteWriter w(out);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    e.Serialize(w);
  }
  return out;
}

std::string PresentedEntryName(const std::vector<FicusDirEntry>& entries, size_t index) {
  const FicusDirEntry& e = entries[index];
  if (!e.alive) {
    return e.name;
  }
  for (const auto& other : entries) {
    if (&other != &e && other.alive && other.name == e.name && other.file < e.file) {
      return e.name + "#" + e.file.ToHex();
    }
  }
  return e.name;
}

std::vector<FicusDirEntry> PresentEntries(const std::vector<FicusDirEntry>& entries) {
  // One pass to find the lowest alive file id per spelling, one pass to
  // suffix everyone else. The per-entry PresentedEntryName scan this
  // replaces was O(N) per entry — quadratic presentation dominated every
  // uncached lookup in large directories.
  std::unordered_map<std::string_view, FileId> min_alive;
  for (const FicusDirEntry& e : entries) {
    if (!e.alive) continue;
    auto [it, inserted] = min_alive.try_emplace(std::string_view(e.name), e.file);
    if (!inserted && e.file < it->second) it->second = e.file;
  }
  std::vector<FicusDirEntry> out = entries;
  for (FicusDirEntry& e : out) {
    if (!e.alive) continue;
    auto it = min_alive.find(std::string_view(e.name));
    if (it != min_alive.end() && it->second < e.file) {
      e.name += "#" + e.file.ToHex();
    }
  }
  return out;
}

StatusOr<std::vector<FicusDirEntry>> DeserializeDirEntries(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  // Minimum serialized entry: empty name (2) + file id (8) + type (1) +
  // alive (1) + two empty version vectors (4 + 4) = 20 bytes.
  FICUS_ASSIGN_OR_RETURN(uint32_t count, r.GetCount(20));
  std::vector<FicusDirEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FICUS_ASSIGN_OR_RETURN(FicusDirEntry entry, FicusDirEntry::Deserialize(r));
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace ficus::repl
