// Crossing an NFS hop between Ficus layers (paper sections 2.2-2.3).
//
// The logical and physical Ficus layers talk through the vnode interface;
// when they live on different hosts, an NFS client/server pair carries the
// calls. But NFS forwards only its own procedure vocabulary: open/close
// are silently dropped and there is no ioctl. Ficus therefore encodes its
// layer-to-layer requests as ASCII strings passed through *lookup*, which
// NFS forwards without interpretation — at the cost of part of the name
// length budget ("the reduction ... from 255 to about 200 does not seem to
// be a significant loss").
//
// PhysicalFacadeVfs wraps a PhysicalLayer as a vnode tree an NfsServer can
// export. Its root understands two names:
//   "@req:<hex-encoded request>"  — small requests ride inside the name
//                                   itself; the returned vnode's Read()
//                                   yields the marshalled response.
//   "@session"                    — large requests (file contents) get a
//                                   one-shot session vnode: Write() the
//                                   request bytes, then Read() the
//                                   response.
//
// RemotePhysical is the matching client: a PhysicalApi whose every method
// marshals itself through those two names against any vnode — a facade
// root directly (co-resident testing) or an NfsVnode (the real deployment
// of Figure 2).
#ifndef FICUS_SRC_REPL_FACADE_H_
#define FICUS_SRC_REPL_FACADE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "src/repl/physical.h"
#include "src/vfs/vnode.h"

namespace ficus::repl {

// Requests larger than this are shipped via a session vnode instead of a
// lookup name. 96 bytes hex-encode to 192 characters, which together with
// the "@req:" prefix stays below the ~200-character budget the paper
// accepts for encoded names.
constexpr size_t kMaxInlineRequest = 96;

// Opcodes for marshalled PhysicalApi calls.
enum class PhysOp : uint8_t {
  kGetVolumeInfo = 1,
  kGetAttributes = 2,
  kSetConflict = 3,
  kReadData = 4,
  kReadAllData = 5,
  kDataSize = 6,
  kWriteData = 7,
  kTruncateData = 8,
  kInstallVersion = 9,
  kReadDirectory = 10,
  kCreateChild = 11,
  kAddEntry = 12,
  kRemoveEntry = 13,
  kRenameEntry = 14,
  kApplyEntry = 15,
  kMergeDirVersion = 16,
  kReadLink = 17,
  kWriteLink = 18,
  kNoteOpen = 19,
  kNoteClose = 20,
  kApplyEntries = 21,
  kReadBlockDigests = 22,
  kBatchGetAttributes = 23,
  kReadDirPlus = 24,
  kGetSubtreeDigests = 25,
};

// Executes one marshalled request against a local physical layer and
// returns the marshalled response (leading Status, then results). Shared
// by the facade's request and session vnodes.
std::vector<uint8_t> ExecutePhysRequest(PhysicalLayer* layer,
                                        const std::vector<uint8_t>& request);

class PhysicalFacadeVfs : public vfs::Vfs {
 public:
  // layer borrowed. fsid distinguishes facade vnodes in NFS handle tables.
  explicit PhysicalFacadeVfs(PhysicalLayer* layer, uint64_t fsid = 0xF1C0);

  StatusOr<vfs::VnodePtr> Root() override;

  PhysicalLayer* layer() { return layer_; }
  uint64_t fsid() const { return fsid_; }
  // Concurrent server threads mint session/response vnodes, so ids come
  // from an atomic.
  uint64_t NextFileId() { return next_fileid_.fetch_add(1, std::memory_order_relaxed); }

 private:
  PhysicalLayer* layer_;
  uint64_t fsid_;
  std::atomic<uint64_t> next_fileid_{2};
};

// PhysicalApi proxy over a facade root vnode (local or across NFS).
class RemotePhysical : public PhysicalApi {
 public:
  // Re-acquires the facade root after the NFS server retires its handle
  // (ESTALE — e.g. handle-table eviction or server restart). NFS
  // semantics make this the client's job.
  using RootRefresher = std::function<StatusOr<vfs::VnodePtr>()>;

  // root: the facade's root vnode, typically obtained from an NfsClient
  // mounted on the exporting host. Connect() must succeed before use.
  explicit RemotePhysical(vfs::VnodePtr root, RootRefresher refresher = nullptr);

  // Fetches and caches volume/replica identity from the remote side.
  Status Connect();

  VolumeId volume_id() const override { return volume_; }
  ReplicaId replica_id() const override { return replica_; }
  StatusOr<ReplicaAttributes> GetAttributes(FileId file) override;
  Status SetConflict(FileId file, bool conflict) override;
  StatusOr<std::vector<FileAttrResult>> BatchGetAttributes(
      const std::vector<FileId>& files) override;
  StatusOr<std::vector<SubtreeDigest>> GetSubtreeDigests(
      const std::vector<FileId>& dirs) override;
  StatusOr<std::vector<uint8_t>> ReadData(FileId file, uint64_t offset,
                                          uint32_t length) override;
  StatusOr<std::vector<uint8_t>> ReadAllData(FileId file) override;
  StatusOr<uint64_t> DataSize(FileId file) override;
  StatusOr<BlockDigestInfo> ReadBlockDigests(FileId file) override;
  Status WriteData(FileId file, uint64_t offset, const std::vector<uint8_t>& data) override;
  Status TruncateData(FileId file, uint64_t size) override;
  Status InstallVersion(FileId file, const std::vector<uint8_t>& contents,
                        const VersionVector& vv) override;
  StatusOr<std::vector<FicusDirEntry>> ReadDirectory(FileId dir) override;
  StatusOr<std::vector<DirEntryPlus>> ReadDirPlus(FileId dir) override;
  StatusOr<FileId> CreateChild(FileId dir, std::string_view name, FicusFileType type,
                               uint32_t owner_uid) override;
  Status AddEntry(FileId dir, std::string_view name, FileId target,
                  FicusFileType type) override;
  Status RemoveEntry(FileId dir, std::string_view name) override;
  Status RenameEntry(FileId old_dir, std::string_view old_name, FileId new_dir,
                     std::string_view new_name) override;
  Status ApplyEntry(FileId dir, const FicusDirEntry& entry) override;
  Status ApplyEntries(FileId dir, const std::vector<FicusDirEntry>& entries) override;
  Status MergeDirVersion(FileId dir, const VersionVector& vv) override;
  StatusOr<std::string> ReadLink(FileId file) override;
  Status WriteLink(FileId file, std::string_view target) override;
  Status NoteOpen(FileId file) override;
  Status NoteClose(FileId file) override;

  // How many calls went inline through a lookup name vs. via a session.
  uint64_t inline_calls() const { return inline_calls_.load(std::memory_order_relaxed); }
  uint64_t session_calls() const { return session_calls_.load(std::memory_order_relaxed); }

 private:
  // Ships a marshalled request and returns the response with its leading
  // Status checked and consumed, retrying once through the refresher on a
  // stale root handle. `single_trip` routes a small request through the
  // combined LookupRead vnode op (one NFS RPC instead of lookup + read) —
  // used by the digest exchanges, whose latency bounds every
  // reconciliation descent level.
  StatusOr<std::vector<uint8_t>> Transact(const std::vector<uint8_t>& request,
                                          bool single_trip = false);
  StatusOr<std::vector<uint8_t>> TransactOnce(const std::vector<uint8_t>& request,
                                              const vfs::OpContext& ctx, bool single_trip);

  // Guards root_ against a concurrent stale-handle refresh; snapshotted
  // before each transaction so the lock is never held across the call.
  mutable std::mutex root_mu_;
  vfs::VnodePtr root_;
  RootRefresher refresher_;
  VolumeId volume_;
  ReplicaId replica_ = kInvalidReplica;
  std::atomic<uint64_t> inline_calls_{0};
  std::atomic<uint64_t> session_calls_{0};
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_FACADE_H_
