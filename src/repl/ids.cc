#include "src/repl/ids.h"

namespace ficus::repl {

std::string VolumeId::ToString() const {
  return std::to_string(allocator) + "." + std::to_string(volume);
}

StatusOr<FileId> FileId::FromHex(std::string_view hex) {
  FICUS_ASSIGN_OR_RETURN(uint64_t packed, HexDecode64(hex));
  FileId id = Unpack(packed);
  if (!id.valid()) {
    return InvalidArgumentError("file-id has no issuer");
  }
  return id;
}

std::string FileId::ToString() const {
  return std::to_string(issuer) + ":" + std::to_string(unique);
}

std::string GlobalFileId::ToString() const {
  return volume.ToString() + "/" + file.ToString();
}

std::string FicusHandle::ToString() const {
  return "<" + volume.ToString() + ", " + file.ToString() + ", r" + std::to_string(replica) +
         ">";
}

void PutVolumeId(ByteWriter& w, const VolumeId& id) {
  w.PutU32(id.allocator);
  w.PutU32(id.volume);
}

Status GetVolumeId(ByteReader& r, VolumeId& id) {
  FICUS_ASSIGN_OR_RETURN(id.allocator, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(id.volume, r.GetU32());
  return OkStatus();
}

void PutFileId(ByteWriter& w, const FileId& id) {
  w.PutU64(id.Pack());
}

Status GetFileId(ByteReader& r, FileId& id) {
  FICUS_ASSIGN_OR_RETURN(uint64_t packed, r.GetU64());
  id = FileId::Unpack(packed);
  return OkStatus();
}

void PutHandle(ByteWriter& w, const FicusHandle& handle) {
  PutVolumeId(w, handle.volume);
  PutFileId(w, handle.file);
  w.PutU32(handle.replica);
}

Status GetHandle(ByteReader& r, FicusHandle& handle) {
  FICUS_RETURN_IF_ERROR(GetVolumeId(r, handle.volume));
  FICUS_RETURN_IF_ERROR(GetFileId(r, handle.file));
  FICUS_ASSIGN_OR_RETURN(handle.replica, r.GetU32());
  return OkStatus();
}

}  // namespace ficus::repl
