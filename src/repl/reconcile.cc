#include "src/repl/reconcile.h"

#include <deque>
#include <map>
#include <set>

namespace ficus::repl {

Reconciler::Reconciler(PhysicalLayer* local, ReplicaResolver* resolver, ConflictLog* log,
                       const Clock* clock, ReconcileOptions options, MetricRegistry* metrics)
    : local_(local), resolver_(resolver), log_(log), clock_(clock), options_(options) {
  if (metrics == nullptr) {
    owned_registry_ = std::make_unique<MetricRegistry>();
    metrics = owned_registry_.get();
  }
  registry_ = metrics;
  cells_.match = registry_->counter("repl.recon.digest.match");
  cells_.mismatch = registry_->counter("repl.recon.digest.mismatch");
  cells_.pruned_dirs = registry_->counter("repl.recon.digest.pruned_dirs");
  cells_.fallback = registry_->counter("repl.recon.digest.fallback");
  cells_.remote_calls = registry_->counter("repl.recon.remote_calls");
  cells_.skipped_dead = registry_->counter("repl.recon.skipped_dead");
}

void Reconciler::CountRemoteCall() {
  ++stats_.remote_calls;
  cells_.remote_calls->Increment();
}

Status Reconciler::ReconcileDirectory(FileId dir, PhysicalApi* remote) {
  std::set<FileId> visiting;
  return ReconcileDirectoryInner(dir, remote, visiting);
}

Status Reconciler::ReconcileDirectoryInner(FileId dir, PhysicalApi* remote,
                                           std::set<FileId>& visiting) {
  if (!visiting.insert(dir).second) {
    return OkStatus();  // already being reconciled higher up this chain
  }
  // Fetch raw remote entries (tombstones included) and replay each one.
  CountRemoteCall();
  auto remote_attrs_or = remote->GetAttributes(dir);
  if (!remote_attrs_or.ok()) {
    if (remote_attrs_or.status().code() == ErrorCode::kNotFound) {
      // The remote volume replica does not store this directory — legal
      // (storage of any particular file is optional, section 4.1).
      return OkStatus();
    }
    return remote_attrs_or.status();
  }
  ReplicaAttributes remote_attrs = std::move(remote_attrs_or).value();
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes local_attrs, local_->GetAttributes(dir));
  // Quick exit: if the local directory already dominates the remote, every
  // remote entry is already reflected here.
  if (local_attrs.vv.Dominates(remote_attrs.vv)) {
    return OkStatus();
  }
  CountRemoteCall();
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> remote_entries,
                         remote->ReadDirectory(dir));
  uint64_t repairs_before = local_->stats().insert_delete_conflicts;
  uint64_t collisions_before = local_->stats().name_conflicts_resolved;
  uint64_t removes_before = local_->stats().remove_update_conflicts;
  // Subdirectory tombstones need their target's contents reconciled
  // before application, so emptiness reflects the remote's deletions and
  // ApplyEntries can tell a real rmdir from a delete/update conflict.
  for (const auto& entry : remote_entries) {
    ++stats_.entries_examined;
    if (!entry.alive && IsDirectoryLike(entry.type) && local_->Stores(entry.file)) {
      FICUS_RETURN_IF_ERROR(ReconcileDirectoryInner(entry.file, remote, visiting));
    }
  }
  // One load/store for the whole batch: a directory's reconciliation is
  // one logical step, not |entries| rewrites.
  FICUS_RETURN_IF_ERROR(local_->ApplyEntries(dir, remote_entries));
  FICUS_RETURN_IF_ERROR(local_->MergeDirVersion(dir, remote_attrs.vv));
  ++stats_.directories_reconciled;

  if (log_ != nullptr) {
    uint64_t repairs = local_->stats().insert_delete_conflicts - repairs_before;
    for (uint64_t i = 0; i < repairs; ++i) {
      ConflictRecord record;
      record.kind = ConflictKind::kDirectoryRepair;
      record.id = GlobalFileId{local_->volume_id(), dir};
      record.local_replica = local_->replica_id();
      record.remote_replica = remote->replica_id();
      record.local_vv = local_attrs.vv;
      record.remote_vv = remote_attrs.vv;
      record.detected_at = Now();
      record.detail = "concurrent insert/delete repaired in favour of liveness";
      log_->Report(std::move(record));
    }
    uint64_t remove_updates = local_->stats().remove_update_conflicts - removes_before;
    for (uint64_t i = 0; i < remove_updates; ++i) {
      ConflictRecord record;
      record.kind = ConflictKind::kRemoveUpdate;
      record.id = GlobalFileId{local_->volume_id(), dir};
      record.local_replica = local_->replica_id();
      record.remote_replica = remote->replica_id();
      record.detected_at = Now();
      record.detail = "remote delete raced an unseen local update; entry resurrected";
      log_->Report(std::move(record));
    }
    uint64_t collisions = local_->stats().name_conflicts_resolved - collisions_before;
    for (uint64_t i = 0; i < collisions; ++i) {
      ConflictRecord record;
      record.kind = ConflictKind::kNameCollision;
      record.id = GlobalFileId{local_->volume_id(), dir};
      record.local_replica = local_->replica_id();
      record.remote_replica = remote->replica_id();
      record.detected_at = Now();
      record.detail = "same name created concurrently; both entries retained";
      log_->Report(std::move(record));
    }
  }
  return OkStatus();
}

Status Reconciler::ReconcileFile(FileId file, PhysicalApi* remote) {
  CountRemoteCall();
  auto remote_attrs = remote->GetAttributes(file);
  if (!remote_attrs.ok()) {
    if (remote_attrs.status().code() == ErrorCode::kNotFound) {
      // The remote volume replica does not store this file — legal
      // (storage of any particular file is optional, section 4.1).
      return OkStatus();
    }
    return remote_attrs.status();
  }
  return ReconcileFileWithAttrs(file, remote, remote_attrs.value());
}

Status Reconciler::ReconcileFileWithAttrs(FileId file, PhysicalApi* remote,
                                          const ReplicaAttributes& remote_attrs) {
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes local_attrs, local_->GetAttributes(file));
  switch (remote_attrs.vv.Compare(local_attrs.vv)) {
    case VectorOrder::kEqual:
    case VectorOrder::kDominatedBy:
      return OkStatus();
    case VectorOrder::kDominates: {
      CountRemoteCall();
      FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> contents, remote->ReadAllData(file));
      FICUS_RETURN_IF_ERROR(local_->InstallVersion(file, contents, remote_attrs.vv));
      // A strictly newer version subsumes whatever the conflict flag was
      // complaining about only if the remote resolved it; propagate the
      // remote's flag rather than guessing.
      FICUS_RETURN_IF_ERROR(local_->SetConflict(file, remote_attrs.conflict));
      ++stats_.files_pulled;
      return OkStatus();
    }
    case VectorOrder::kConcurrent: {
      FICUS_RETURN_IF_ERROR(local_->SetConflict(file, true));
      ++stats_.files_in_conflict;
      if (log_ != nullptr) {
        ConflictRecord record;
        record.kind = ConflictKind::kFileUpdate;
        record.id = GlobalFileId{local_->volume_id(), file};
        record.local_replica = local_->replica_id();
        record.remote_replica = remote->replica_id();
        record.local_vv = local_attrs.vv;
        record.remote_vv = remote_attrs.vv;
        record.detected_at = Now();
        record.detail = "concurrent updates to regular file; owner must resolve";
        log_->Report(std::move(record));
      }
      return OkStatus();
    }
  }
  return InternalError("unreachable vector order");
}

Status Reconciler::ReconcileSubtree(FileId root, ReplicaId remote_replica) {
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * remote,
                         resolver_->Access(local_->volume_id(), remote_replica));
  ++stats_.subtree_runs;
  if (options_.digest_guided) {
    Status status = ReconcileSubtreeDigest(root, remote);
    if (status.code() != ErrorCode::kNotSupported &&
        status.code() != ErrorCode::kInvalidArgument) {
      return status;
    }
    // The remote predates the digest protocol (rolling upgrade): the
    // whole subtree falls back to the entry-replay walk.
    ++stats_.digest_fallback;
    cells_.fallback->Increment();
  }
  return ReconcileSubtreeFullWalk(root, remote);
}

Status Reconciler::ReconcileSubtreeFullWalk(FileId root, PhysicalApi* remote) {
  // Breadth-first over the local directory graph. Directories are
  // reconciled as they are dequeued, which can surface new children that
  // are then visited in turn. A visited set guards against the DAG's
  // multiple-name paths.
  std::deque<FileId> queue;
  std::set<FileId> seen;
  queue.push_back(root);
  seen.insert(root);
  std::vector<FileId> files;

  while (!queue.empty()) {
    FileId dir = queue.front();
    queue.pop_front();
    FICUS_RETURN_IF_ERROR(ReconcileDirectory(dir, remote));
    FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, local_->ReadDirectory(dir));
    for (const auto& entry : entries) {
      if (!entry.alive || seen.count(entry.file) != 0) {
        continue;
      }
      seen.insert(entry.file);
      if (IsDirectoryLike(entry.type)) {
        queue.push_back(entry.file);
      } else if ((entry.type == FicusFileType::kRegular ||
                  entry.type == FicusFileType::kSymlink) &&
                 local_->Stores(entry.file)) {
        // Files this replica declined to store (selective replication,
        // section 4.1) have no local copy to bring up to date.
        files.push_back(entry.file);
      }
    }
  }
  for (FileId file : files) {
    FICUS_RETURN_IF_ERROR(ReconcileFile(file, remote));
  }
  return OkStatus();
}

Status Reconciler::SweepDirectoryFiles(FileId dir, PhysicalApi* remote) {
  FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries, local_->ReadDirectory(dir));
  std::set<FileId> unique;
  std::vector<FileId> files;
  for (const auto& entry : entries) {
    if (entry.alive && !IsDirectoryLike(entry.type) &&
        (entry.type == FicusFileType::kRegular ||
         entry.type == FicusFileType::kSymlink) &&
        local_->Stores(entry.file) && unique.insert(entry.file).second) {
      files.push_back(entry.file);
    }
  }
  if (files.empty()) {
    return OkStatus();
  }
  // One RPC covers every file of the directory; per-file divergence is
  // resolved from the returned rows without further attribute fetches.
  CountRemoteCall();
  FICUS_ASSIGN_OR_RETURN(std::vector<FileAttrResult> rows,
                         remote->BatchGetAttributes(files));
  for (const auto& row : rows) {
    if (!row.status.ok()) {
      if (row.status.code() == ErrorCode::kNotFound) {
        continue;  // remote does not store this file — legal
      }
      return row.status;
    }
    FICUS_RETURN_IF_ERROR(ReconcileFileWithAttrs(row.file, remote, row.attrs));
  }
  return OkStatus();
}

Status Reconciler::ReconcileSubtreeDigest(FileId root, PhysicalApi* remote) {
  // Level-by-level frontier walk: one batched GetSubtreeDigests RPC per
  // level covers every directory still in play. Equal subtree digests
  // prune whole subtrees (the vv fold makes MergeDirVersion a no-op and
  // the files digest covers content pulls, so pruning loses nothing);
  // a mismatch is triaged into entry replay, file sweep, and descent.
  std::set<FileId> seen{root};
  std::vector<FileId> frontier{root};
  while (!frontier.empty()) {
    CountRemoteCall();
    auto remote_rows_or = remote->GetSubtreeDigests(frontier);
    if (!remote_rows_or.ok()) {
      return remote_rows_or.status();  // kNotSupported → caller falls back
    }
    const std::vector<SubtreeDigest>& remote_rows = remote_rows_or.value();
    if (remote_rows.size() != frontier.size()) {
      return CorruptError("GetSubtreeDigests row count mismatch");
    }
    FICUS_ASSIGN_OR_RETURN(std::vector<SubtreeDigest> local_rows,
                           local_->GetSubtreeDigests(frontier));
    std::vector<FileId> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      FileId dir = frontier[i];
      const SubtreeDigest& local_row = local_rows[i];
      const SubtreeDigest& remote_row = remote_rows[i];
      if (!remote_row.status.ok()) {
        if (remote_row.status.code() == ErrorCode::kNotFound) {
          // The remote stores nothing of this subtree (directories are
          // stored transitively, so neither does it store anything
          // below): there is nothing to pull.
          continue;
        }
        return remote_row.status;
      }
      if (local_row.status.ok() &&
          local_row.subtree_digest == remote_row.subtree_digest) {
        ++stats_.digest_match;
        cells_.match->Increment();
        stats_.digest_pruned_dirs += 1 + local_row.children.size();
        cells_.pruned_dirs->Add(1 + local_row.children.size());
        continue;
      }
      ++stats_.digest_mismatch;
      cells_.mismatch->Increment();
      // A local row failure (racing removal) is treated like a full
      // mismatch: replay the directory and descend everywhere.
      bool dir_differs = !local_row.status.ok() ||
                         local_row.entry_digest != remote_row.entry_digest ||
                         !(local_row.vv == remote_row.vv);
      bool files_differ =
          !local_row.status.ok() || local_row.files_digest != remote_row.files_digest;
      if (dir_differs) {
        // Per-directory fallback to the existing entry-replay protocol.
        ++stats_.digest_fallback;
        cells_.fallback->Increment();
        FICUS_RETURN_IF_ERROR(ReconcileDirectory(dir, remote));
      }
      if (files_differ || dir_differs) {
        FICUS_RETURN_IF_ERROR(SweepDirectoryFiles(dir, remote));
      }
      // Descend. After an entry replay the local child set may have
      // grown, and anything below may differ — visit every stored
      // directory-like child (equal ones are pruned next level for one
      // digest-row each). On a pure child-rollup mismatch, only the
      // children whose digests disagree need visiting.
      std::map<FileId, uint64_t> remote_children(remote_row.children.begin(),
                                                 remote_row.children.end());
      std::map<FileId, uint64_t> local_children(local_row.children.begin(),
                                                local_row.children.end());
      FICUS_ASSIGN_OR_RETURN(std::vector<FicusDirEntry> entries,
                             local_->ReadDirectory(dir));
      for (const auto& entry : entries) {
        if (!IsDirectoryLike(entry.type) || !local_->Stores(entry.file) ||
            seen.count(entry.file) != 0) {
          continue;
        }
        if (!dir_differs) {
          auto lc = local_children.find(entry.file);
          auto rc = remote_children.find(entry.file);
          if (lc != local_children.end() && rc != remote_children.end() &&
              lc->second == rc->second) {
            ++stats_.digest_match;
            cells_.match->Increment();
            ++stats_.digest_pruned_dirs;
            cells_.pruned_dirs->Increment();
            continue;  // child rollups agree — prune without visiting
          }
        }
        seen.insert(entry.file);
        next.push_back(entry.file);
      }
    }
    frontier = std::move(next);
  }
  return OkStatus();
}

Status Reconciler::ReconcileWithAllReplicas() {
  Status first_error = OkStatus();
  for (ReplicaId replica : resolver_->ReplicasOf(local_->volume_id())) {
    if (replica == local_->replica_id()) {
      continue;
    }
    if (resolver_->HealthOf(local_->volume_id(), replica) == PeerHealth::kDead) {
      // Condemned by the failure detector: a subtree walk against it
      // would only burn timeouts. Recovery resync re-runs this pairing
      // the moment the peer is seen alive again.
      ++stats_.skipped_dead;
      cells_.skipped_dead->Increment();
      continue;
    }
    Status status = ReconcileSubtree(kRootFileId, replica);
    if (!status.ok() && status.code() != ErrorCode::kUnreachable && first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

}  // namespace ficus::repl
