#include "src/repl/propagation.h"

#include <algorithm>

#include "src/common/backoff.h"

namespace ficus::repl {

PropagationDaemon::PropagationDaemon(PhysicalLayer* local, ReplicaResolver* resolver,
                                     ConflictLog* log, const Clock* clock,
                                     PropagationConfig config, MetricRegistry* metrics)
    : local_(local),
      resolver_(resolver),
      log_(log),
      clock_(clock),
      config_(config),
      registry_(metrics != nullptr ? metrics : &owned_registry_) {
  stats_.runs = registry_->counter("repl.propagation.runs");
  stats_.pulled_files = registry_->counter("repl.propagation.pulled_files");
  stats_.reconciled_dirs = registry_->counter("repl.propagation.reconciled_dirs");
  stats_.conflicts_flagged = registry_->counter("repl.propagation.conflicts_flagged");
  stats_.skipped_current = registry_->counter("repl.propagation.skipped_current");
  stats_.deferred_unreachable = registry_->counter("repl.propagation.deferred_unreachable");
  stats_.deferred_backoff = registry_->counter("repl.propagation.deferred_backoff");
  stats_.retry_dropped = registry_->counter("repl.propagation.retry_dropped");
  stats_.skipped_dead = registry_->counter("repl.prop.skipped_dead");
  stats_.bytes_pulled = registry_->counter("repl.propagation.bytes_pulled");
  stats_.delta_blocks_fetched = registry_->counter("repl.prop.delta.blocks_fetched");
  stats_.delta_bytes_saved = registry_->counter("repl.prop.delta.bytes_saved");
  stats_.whole_file_fallbacks = registry_->counter("repl.prop.delta.whole_file_fallbacks");
  stats_.batched_probes = registry_->counter("repl.prop.delta.batched_probes");
  stats_.apply_bytes_written = registry_->counter("repl.prop.apply.bytes_written");
}

PropagationStats PropagationDaemon::stats() const {
  PropagationStats out;
  out.runs = stats_.runs->value();
  out.pulled_files = stats_.pulled_files->value();
  out.reconciled_dirs = stats_.reconciled_dirs->value();
  out.conflicts_flagged = stats_.conflicts_flagged->value();
  out.skipped_current = stats_.skipped_current->value();
  out.deferred_unreachable = stats_.deferred_unreachable->value();
  out.deferred_backoff = stats_.deferred_backoff->value();
  out.retry_dropped = stats_.retry_dropped->value();
  out.skipped_dead = stats_.skipped_dead->value();
  out.bytes_pulled = stats_.bytes_pulled->value();
  out.delta_blocks_fetched = stats_.delta_blocks_fetched->value();
  out.delta_bytes_saved = stats_.delta_bytes_saved->value();
  out.whole_file_fallbacks = stats_.whole_file_fallbacks->value();
  out.batched_probes = stats_.batched_probes->value();
  out.apply_bytes_written = stats_.apply_bytes_written->value();
  return out;
}

Status PropagationDaemon::RunOnce() {
  last_trace_.store(NextTraceId(), std::memory_order_relaxed);
  stats_.runs->Increment();
  std::vector<NewVersionEntry> pending = local_->TakePendingVersions();
  // A notification for a file we do not store yet may become actionable
  // within this very pass: reconciling a notified *directory* creates
  // placeholder storage for its children. Retry such entries as long as a
  // pass makes progress (bounded by the pass count: each retry round
  // requires at least one new placeholder).
  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<NewVersionEntry> unstored;

    // Probe phase: one BatchGetAttributes RPC per (volume, source) pair
    // covering every actionable regular-file entry, so a pass over N
    // pending files costs O(peers) probe round trips instead of O(N).
    // Entries the batch cannot serve (directories, per-file failures,
    // unreachable sources) fall back to the per-entry path below.
    std::map<GlobalFileId, ReplicaAttributes> probed;
    std::map<std::pair<VolumeId, ReplicaId>, std::vector<FileId>> probe_groups;
    for (const auto& entry : pending) {
      if (config_.min_age != 0 && Now() < entry.noted_at + config_.min_age) {
        continue;
      }
      auto retry = retries_.find(entry.id);
      if (retry != retries_.end() && Now() < retry->second.next_attempt) {
        continue;
      }
      if (!local_->Stores(entry.id.file)) {
        continue;
      }
      if (resolver_->HealthOf(entry.id.volume, entry.source) == PeerHealth::kDead) {
        continue;  // no probe RPC towards a condemned source
      }
      auto local_attrs = local_->GetAttributes(entry.id.file);
      if (!local_attrs.ok() || local_attrs->vv.Dominates(entry.vv) ||
          IsDirectoryLike(local_attrs->type)) {
        continue;
      }
      probe_groups[{entry.id.volume, entry.source}].push_back(entry.id.file);
    }
    for (const auto& [peer, files] : probe_groups) {
      if (files.size() < 2) {
        continue;  // a batch of one saves no round trips
      }
      auto source = resolver_->Access(peer.first, peer.second);
      if (!source.ok()) {
        continue;
      }
      auto rows = source.value()->BatchGetAttributes(files);
      if (!rows.ok()) {
        continue;
      }
      stats_.batched_probes->Increment();
      for (auto& row : rows.value()) {
        if (row.status.ok()) {
          probed[GlobalFileId{peer.first, row.file}] = std::move(row.attrs);
        }
      }
    }

    for (const auto& entry : pending) {
      if (config_.min_age != 0 && Now() < entry.noted_at + config_.min_age) {
        // Too young: leave it cached so a burst of updates to the same
        // file costs one propagation, not many.
        local_->RestoreNewVersion(entry);
        continue;
      }
      auto retry = retries_.find(entry.id);
      if (retry != retries_.end() && Now() < retry->second.next_attempt) {
        // Still inside the backoff window from an earlier failed pull:
        // age in the cache instead of hammering an unreachable source.
        stats_.deferred_backoff->Increment();
        local_->RestoreNewVersion(entry);
        continue;
      }
      if (!local_->Stores(entry.id.file)) {
        unstored.push_back(entry);
        continue;
      }
      if (resolver_->HealthOf(entry.id.volume, entry.source) == PeerHealth::kDead) {
        // The failure detector has condemned the source: issue no RPC at
        // all (a timeout per entry per pass adds up fast at 50 hosts) and
        // charge no retry budget — the entry waits for recovery resync or
        // the reconciliation safety net.
        stats_.skipped_dead->Increment();
        local_->RestoreNewVersion(entry);
        continue;
      }
      Status status = Propagate(entry, probed);
      if (status.code() == ErrorCode::kUnreachable ||
          status.code() == ErrorCode::kTimedOut) {
        RetryState& state = retries_[entry.id];
        if (resolver_->HealthOf(entry.id.volume, entry.source) == PeerHealth::kAlive) {
          ++state.attempts;
          if (config_.retry_budget != 0 && state.attempts >= config_.retry_budget) {
            // Budget exhausted: stop carrying the notification. The
            // periodic reconciliation protocol still converges the replica.
            stats_.retry_dropped->Increment();
            retries_.erase(entry.id);
            continue;
          }
        }
        // While the peer is suspect (or condemned mid-call) the failure
        // is the detector's problem, not the entry's: keep the budget
        // intact so a flap does not shed entries the peer would have
        // served seconds later, but still back off.
        if (config_.retry_backoff_base != 0) {
          uint32_t exponent = state.attempts == 0 ? 0 : state.attempts - 1;
          state.next_attempt = Now() + BackoffDelay(config_.retry_backoff_base,
                                                    config_.retry_backoff_cap, exponent);
        }
        stats_.deferred_unreachable->Increment();
        local_->RestoreNewVersion(entry);
        continue;
      }
      FICUS_RETURN_IF_ERROR(status);
      retries_.erase(entry.id);
      progress = true;
    }
    if (!progress) {
      // Not stored and nothing changed: this replica legitimately does not
      // hold these files (optional storage) — drop them.
      stats_.skipped_current->Add(unstored.size());
      unstored.clear();
    }
    pending = std::move(unstored);
  }
  return OkStatus();
}

Status PropagationDaemon::Propagate(const NewVersionEntry& entry,
                                    const std::map<GlobalFileId, ReplicaAttributes>& probed) {
  FileId file = entry.id.file;
  if (!local_->Stores(file)) {
    // This volume replica does not hold the file (optional storage);
    // nothing to bring up to date.
    stats_.skipped_current->Increment();
    return OkStatus();
  }
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes local_attrs, local_->GetAttributes(file));
  // If we already know everything the notification advertises, drop it
  // without a network round trip.
  if (local_attrs.vv.Dominates(entry.vv)) {
    stats_.skipped_current->Increment();
    return OkStatus();
  }
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * source,
                         resolver_->Access(entry.id.volume, entry.source));

  if (IsDirectoryLike(local_attrs.type)) {
    // "Simply copying directory contents is incorrect; in a sense, a
    // directory operation needs to be replayed at each replica."
    Reconciler reconciler(local_, resolver_, log_, clock_);
    FICUS_RETURN_IF_ERROR(reconciler.ReconcileDirectory(file, source));
    stats_.reconciled_dirs->Increment();
    return OkStatus();
  }

  ReplicaAttributes remote_attrs;
  auto prefetched = probed.find(entry.id);
  if (prefetched != probed.end()) {
    remote_attrs = prefetched->second;
  } else {
    FICUS_ASSIGN_OR_RETURN(remote_attrs, source->GetAttributes(file));
  }
  switch (remote_attrs.vv.Compare(local_attrs.vv)) {
    case VectorOrder::kEqual:
    case VectorOrder::kDominatedBy:
      stats_.skipped_current->Increment();
      return OkStatus();
    case VectorOrder::kDominates: {
      std::vector<uint8_t> contents;
      uint64_t fetched_bytes = 0;
      bool delta_done = false;
      if (config_.delta_enabled) {
        auto delta = TryDeltaFetch(file, source, &fetched_bytes);
        if (delta.ok()) {
          contents = std::move(delta).value();
          delta_done = true;
        } else if (delta.status().code() == ErrorCode::kUnreachable ||
                   delta.status().code() == ErrorCode::kTimedOut) {
          return delta.status();
        } else {
          stats_.whole_file_fallbacks->Increment();
        }
      }
      if (!delta_done) {
        FICUS_ASSIGN_OR_RETURN(contents, source->ReadAllData(file));
        fetched_bytes = contents.size();
      }
      // Measure the install's local device writes: with delta fetch AND
      // delta commit this stays O(dirty blocks) while the file grows.
      const uint64_t commit_bytes_before = local_->stats().commit_bytes_written;
      FICUS_RETURN_IF_ERROR(local_->InstallVersion(file, contents, remote_attrs.vv));
      stats_.apply_bytes_written->Add(local_->stats().commit_bytes_written -
                                      commit_bytes_before);
      FICUS_RETURN_IF_ERROR(local_->SetConflict(file, remote_attrs.conflict));
      stats_.pulled_files->Increment();
      stats_.bytes_pulled->Add(fetched_bytes);
      if (delta_done) {
        stats_.delta_bytes_saved->Add(contents.size() - fetched_bytes);
      }
      return OkStatus();
    }
    case VectorOrder::kConcurrent: {
      FICUS_RETURN_IF_ERROR(local_->SetConflict(file, true));
      stats_.conflicts_flagged->Increment();
      if (log_ != nullptr) {
        ConflictRecord record;
        record.kind = ConflictKind::kFileUpdate;
        record.id = entry.id;
        record.local_replica = local_->replica_id();
        record.remote_replica = entry.source;
        record.local_vv = local_attrs.vv;
        record.remote_vv = remote_attrs.vv;
        record.detected_at = Now();
        record.detail = "update notification revealed concurrent versions";
        log_->Report(std::move(record));
      }
      return OkStatus();
    }
  }
  return InternalError("unreachable vector order");
}

StatusOr<std::vector<uint8_t>> PropagationDaemon::TryDeltaFetch(FileId file,
                                                                PhysicalApi* source,
                                                                uint64_t* fetched_bytes) {
  // Local size gate first — it costs no network round trip. A local copy
  // below the threshold shares too little with any remote version for
  // the digest exchange to pay off.
  FICUS_ASSIGN_OR_RETURN(uint64_t local_size, local_->DataSize(file));
  if (local_size < config_.delta_min_bytes) {
    return InvalidArgumentError("local copy below delta threshold");
  }
  FICUS_ASSIGN_OR_RETURN(BlockDigestInfo remote, source->ReadBlockDigests(file));
  if (remote.file_size < config_.delta_min_bytes) {
    return InvalidArgumentError("remote version below delta threshold");
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> local_data, local_->ReadAllData(file));

  // Which remote blocks do we already hold? Digests are length-seeded, so
  // a matching digest implies matching length and (with 64-bit strength)
  // matching bytes.
  size_t blocks = remote.digests.size();
  std::vector<bool> need(blocks, false);
  size_t need_count = 0;
  for (size_t i = 0; i < blocks; ++i) {
    uint64_t off = static_cast<uint64_t>(i) * kDeltaBlockSize;
    uint64_t remote_len = std::min<uint64_t>(kDeltaBlockSize, remote.file_size - off);
    bool same = false;
    if (off < local_data.size()) {
      uint64_t local_len = std::min<uint64_t>(kDeltaBlockSize, local_data.size() - off);
      if (local_len == remote_len &&
          BlockDigest(local_data.data() + off, static_cast<size_t>(local_len)) ==
              remote.digests[i]) {
        same = true;
      }
    }
    if (!same) {
      need[i] = true;
      ++need_count;
    }
  }
  if (blocks != 0 &&
      static_cast<double>(need_count) > config_.delta_max_diff * static_cast<double>(blocks)) {
    return InvalidArgumentError("delta would transfer most of the file");
  }

  // Assemble: local bytes for unchanged blocks, one ranged read per
  // contiguous run of differing blocks.
  std::vector<uint8_t> out(remote.file_size, 0);
  for (size_t i = 0; i < blocks; ++i) {
    if (need[i]) {
      continue;
    }
    uint64_t off = static_cast<uint64_t>(i) * kDeltaBlockSize;
    uint64_t len = std::min<uint64_t>(kDeltaBlockSize, remote.file_size - off);
    std::copy(local_data.begin() + static_cast<ptrdiff_t>(off),
              local_data.begin() + static_cast<ptrdiff_t>(off + len),
              out.begin() + static_cast<ptrdiff_t>(off));
  }
  uint64_t fetched = 0;
  for (size_t i = 0; i < blocks;) {
    if (!need[i]) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < blocks && need[j]) {
      ++j;
    }
    uint64_t off = static_cast<uint64_t>(i) * kDeltaBlockSize;
    uint64_t len =
        std::min<uint64_t>(remote.file_size, static_cast<uint64_t>(j) * kDeltaBlockSize) - off;
    FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> piece,
                           source->ReadData(file, off, static_cast<uint32_t>(len)));
    if (piece.size() != len) {
      // The file changed under us between the digest and data reads; let
      // the whole-file path take over.
      return CorruptError("short ranged read during delta fetch");
    }
    std::copy(piece.begin(), piece.end(), out.begin() + static_cast<ptrdiff_t>(off));
    fetched += len;
    stats_.delta_blocks_fetched->Add(j - i);
    i = j;
  }

  // Paranoia pass: the assembled contents must reproduce the remote
  // digests exactly, or the source raced an update between our reads.
  for (size_t i = 0; i < blocks; ++i) {
    uint64_t off = static_cast<uint64_t>(i) * kDeltaBlockSize;
    uint64_t len = std::min<uint64_t>(kDeltaBlockSize, remote.file_size - off);
    if (BlockDigest(out.data() + off, static_cast<size_t>(len)) != remote.digests[i]) {
      return CorruptError("assembled delta fails digest verification");
    }
  }
  *fetched_bytes = fetched;
  return out;
}

PropagationWorker::PropagationWorker(PropagationDaemon* daemon)
    : daemon_(daemon), thread_([this] { Loop(); }) {}

PropagationWorker::~PropagationWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  kicked_.notify_all();
  thread_.join();
}

void PropagationWorker::Kick() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requested_;
  }
  kicked_.notify_one();
}

void PropagationWorker::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t goal = requested_;
  idle_.wait(lock, [this, goal] { return served_ >= goal; });
}

uint64_t PropagationWorker::passes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return passes_;
}

Status PropagationWorker::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void PropagationWorker::Loop() {
  for (;;) {
    uint64_t goal;
    {
      std::unique_lock<std::mutex> lock(mu_);
      kicked_.wait(lock, [this] { return requested_ > served_ || stop_; });
      if (requested_ <= served_) {
        return;  // stop requested, queue drained
      }
      // One pass serves every kick issued so far (coalescing): a kick
      // that arrives mid-pass leaves requested_ > served_ and triggers
      // another pass, because its notification may have missed the
      // snapshot this pass takes from the new-version cache.
      goal = requested_;
    }
    Status status = daemon_->RunOnce();
    {
      std::lock_guard<std::mutex> lock(mu_);
      served_ = goal;
      ++passes_;
      if (!status.ok() && last_error_.ok()) {
        last_error_ = status;
      }
      idle_.notify_all();
    }
  }
}

}  // namespace ficus::repl
