#include "src/repl/propagation.h"

#include <algorithm>

namespace ficus::repl {

PropagationDaemon::PropagationDaemon(PhysicalLayer* local, ReplicaResolver* resolver,
                                     ConflictLog* log, const SimClock* clock,
                                     PropagationConfig config, MetricRegistry* metrics)
    : local_(local),
      resolver_(resolver),
      log_(log),
      clock_(clock),
      config_(config),
      registry_(metrics != nullptr ? metrics : &owned_registry_) {
  stats_.runs = registry_->counter("repl.propagation.runs");
  stats_.pulled_files = registry_->counter("repl.propagation.pulled_files");
  stats_.reconciled_dirs = registry_->counter("repl.propagation.reconciled_dirs");
  stats_.conflicts_flagged = registry_->counter("repl.propagation.conflicts_flagged");
  stats_.skipped_current = registry_->counter("repl.propagation.skipped_current");
  stats_.deferred_unreachable = registry_->counter("repl.propagation.deferred_unreachable");
  stats_.deferred_backoff = registry_->counter("repl.propagation.deferred_backoff");
  stats_.retry_dropped = registry_->counter("repl.propagation.retry_dropped");
  stats_.bytes_pulled = registry_->counter("repl.propagation.bytes_pulled");
}

PropagationStats PropagationDaemon::stats() const {
  PropagationStats out;
  out.runs = stats_.runs->value();
  out.pulled_files = stats_.pulled_files->value();
  out.reconciled_dirs = stats_.reconciled_dirs->value();
  out.conflicts_flagged = stats_.conflicts_flagged->value();
  out.skipped_current = stats_.skipped_current->value();
  out.deferred_unreachable = stats_.deferred_unreachable->value();
  out.deferred_backoff = stats_.deferred_backoff->value();
  out.retry_dropped = stats_.retry_dropped->value();
  out.bytes_pulled = stats_.bytes_pulled->value();
  return out;
}

Status PropagationDaemon::RunOnce() {
  last_trace_ = NextTraceId();
  stats_.runs->Increment();
  std::vector<NewVersionEntry> pending = local_->TakePendingVersions();
  // A notification for a file we do not store yet may become actionable
  // within this very pass: reconciling a notified *directory* creates
  // placeholder storage for its children. Retry such entries as long as a
  // pass makes progress (bounded by the pass count: each retry round
  // requires at least one new placeholder).
  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<NewVersionEntry> unstored;
    for (const auto& entry : pending) {
      if (config_.min_age != 0 && Now() < entry.noted_at + config_.min_age) {
        // Too young: leave it cached so a burst of updates to the same
        // file costs one propagation, not many.
        local_->NoteNewVersion(entry.id, entry.vv, entry.source);
        continue;
      }
      auto retry = retries_.find(entry.id);
      if (retry != retries_.end() && Now() < retry->second.next_attempt) {
        // Still inside the backoff window from an earlier failed pull:
        // age in the cache instead of hammering an unreachable source.
        stats_.deferred_backoff->Increment();
        local_->NoteNewVersion(entry.id, entry.vv, entry.source);
        continue;
      }
      if (!local_->Stores(entry.id.file)) {
        unstored.push_back(entry);
        continue;
      }
      Status status = Propagate(entry);
      if (status.code() == ErrorCode::kUnreachable ||
          status.code() == ErrorCode::kTimedOut) {
        RetryState& state = retries_[entry.id];
        ++state.attempts;
        if (config_.retry_budget != 0 && state.attempts >= config_.retry_budget) {
          // Budget exhausted: stop carrying the notification. The
          // periodic reconciliation protocol still converges the replica.
          stats_.retry_dropped->Increment();
          retries_.erase(entry.id);
          continue;
        }
        if (config_.retry_backoff_base != 0) {
          SimTime delay = config_.retry_backoff_base;
          for (uint32_t k = 1; k < state.attempts && delay < config_.retry_backoff_cap;
               ++k) {
            delay *= 2;
          }
          state.next_attempt = Now() + std::min(delay, config_.retry_backoff_cap);
        }
        stats_.deferred_unreachable->Increment();
        local_->NoteNewVersion(entry.id, entry.vv, entry.source);
        continue;
      }
      FICUS_RETURN_IF_ERROR(status);
      retries_.erase(entry.id);
      progress = true;
    }
    if (!progress) {
      // Not stored and nothing changed: this replica legitimately does not
      // hold these files (optional storage) — drop them.
      stats_.skipped_current->Add(unstored.size());
      unstored.clear();
    }
    pending = std::move(unstored);
  }
  return OkStatus();
}

Status PropagationDaemon::Propagate(const NewVersionEntry& entry) {
  FileId file = entry.id.file;
  if (!local_->Stores(file)) {
    // This volume replica does not hold the file (optional storage);
    // nothing to bring up to date.
    stats_.skipped_current->Increment();
    return OkStatus();
  }
  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes local_attrs, local_->GetAttributes(file));
  // If we already know everything the notification advertises, drop it
  // without a network round trip.
  if (local_attrs.vv.Dominates(entry.vv)) {
    stats_.skipped_current->Increment();
    return OkStatus();
  }
  FICUS_ASSIGN_OR_RETURN(PhysicalApi * source,
                         resolver_->Access(entry.id.volume, entry.source));

  if (IsDirectoryLike(local_attrs.type)) {
    // "Simply copying directory contents is incorrect; in a sense, a
    // directory operation needs to be replayed at each replica."
    Reconciler reconciler(local_, resolver_, log_, clock_);
    FICUS_RETURN_IF_ERROR(reconciler.ReconcileDirectory(file, source));
    stats_.reconciled_dirs->Increment();
    return OkStatus();
  }

  FICUS_ASSIGN_OR_RETURN(ReplicaAttributes remote_attrs, source->GetAttributes(file));
  switch (remote_attrs.vv.Compare(local_attrs.vv)) {
    case VectorOrder::kEqual:
    case VectorOrder::kDominatedBy:
      stats_.skipped_current->Increment();
      return OkStatus();
    case VectorOrder::kDominates: {
      FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> contents, source->ReadAllData(file));
      FICUS_RETURN_IF_ERROR(local_->InstallVersion(file, contents, remote_attrs.vv));
      FICUS_RETURN_IF_ERROR(local_->SetConflict(file, remote_attrs.conflict));
      stats_.pulled_files->Increment();
      stats_.bytes_pulled->Add(contents.size());
      return OkStatus();
    }
    case VectorOrder::kConcurrent: {
      FICUS_RETURN_IF_ERROR(local_->SetConflict(file, true));
      stats_.conflicts_flagged->Increment();
      if (log_ != nullptr) {
        ConflictRecord record;
        record.kind = ConflictKind::kFileUpdate;
        record.id = entry.id;
        record.local_replica = local_->replica_id();
        record.remote_replica = entry.source;
        record.local_vv = local_attrs.vv;
        record.remote_vv = remote_attrs.vv;
        record.detected_at = Now();
        record.detail = "update notification revealed concurrent versions";
        log_->Report(std::move(record));
      }
      return OkStatus();
    }
  }
  return InternalError("unreachable vector order");
}

}  // namespace ficus::repl
