// Ficus identifiers (paper section 4.2).
//
// A volume is named by <allocator-id, volume-id>; a volume replica adds a
// replica-id. Within a volume, a logical file is named by a file-id that is
// itself <issuing replica-id, unique-id> so replicas can mint file-ids
// without coordination. A fully specified file replica name is
// <allocator-id, volume-id, file-id, replica-id> — unique across all Ficus
// hosts in existence.
#ifndef FICUS_SRC_REPL_IDS_H_
#define FICUS_SRC_REPL_IDS_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "src/common/hex.h"
#include "src/common/serialize.h"

namespace ficus::repl {

// Issued once per Ficus host before installation ("an Internet host
// address would suffice").
using AllocatorId = uint32_t;

// Volume number issued by an allocator.
using VolumeNum = uint32_t;

// Identifies one replica of a volume (and doubles as the issuer field of
// file-ids minted at that replica). The paper allows 2^32 replicas.
using ReplicaId = uint32_t;
constexpr ReplicaId kInvalidReplica = 0;

struct VolumeId {
  AllocatorId allocator = 0;
  VolumeNum volume = 0;

  auto operator<=>(const VolumeId&) const = default;

  // "a.b" for logs.
  std::string ToString() const;
};

// <issuing replica, unique counter at that replica>.
struct FileId {
  ReplicaId issuer = kInvalidReplica;
  uint32_t unique = 0;

  auto operator<=>(const FileId&) const = default;

  bool valid() const { return issuer != kInvalidReplica; }

  // Packs into one u64 (issuer high, unique low) — the value whose hex
  // encoding names the replica's storage in the underlying UFS (the
  // paper's dual mapping, section 2.6).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(issuer) << 32) | unique;
  }
  static FileId Unpack(uint64_t packed) {
    return FileId{static_cast<ReplicaId>(packed >> 32), static_cast<uint32_t>(packed)};
  }

  // 16-char lower-case hex — the UFS pathname component.
  std::string ToHex() const { return HexEncode64(Pack()); }
  static StatusOr<FileId> FromHex(std::string_view hex);

  std::string ToString() const;
};

// The volume root directory always has this well-known file-id, so every
// volume replica can find its root without negotiation.
constexpr FileId kRootFileId{0xFFFFFFFF, 1};

// Fully specified logical file name, global across all Ficus hosts.
struct GlobalFileId {
  VolumeId volume;
  FileId file;

  auto operator<=>(const GlobalFileId&) const = default;

  std::string ToString() const;
};

// One physical replica of a logical file: the handle the logical layer
// uses to talk to physical layers about a file (paper section 3.1).
struct FicusHandle {
  VolumeId volume;
  FileId file;
  ReplicaId replica = kInvalidReplica;

  auto operator<=>(const FicusHandle&) const = default;

  GlobalFileId global() const { return GlobalFileId{volume, file}; }

  std::string ToString() const;
};

void PutVolumeId(ByteWriter& w, const VolumeId& id);
Status GetVolumeId(ByteReader& r, VolumeId& id);
void PutFileId(ByteWriter& w, const FileId& id);
Status GetFileId(ByteReader& r, FileId& id);
void PutHandle(ByteWriter& w, const FicusHandle& handle);
Status GetHandle(ByteReader& r, FicusHandle& handle);

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_IDS_H_
