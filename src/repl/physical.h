// The Ficus physical layer (paper sections 2.6, 3.2): implements the
// concept of a file replica on top of an unmodified UFS.
//
// Storage scheme — the paper's "dual mapping":
//   * Every Ficus file replica is stored as a UFS file whose name is the
//     16-digit hexadecimal encoding of its file-id.
//   * Beside it sits an auxiliary file `<hex>.attr` holding the
//     replication attributes (version vector, conflict flag, ...) that
//     would live in the inode if the UFS could be modified.
//   * A Ficus *directory* is stored as a UFS file (`.dir` inside a UFS
//     directory named by the Ficus directory's hex file-id); its entries
//     map names to Ficus file handles, and the UFS directory around it
//     holds the children's storage — so the on-disk organization closely
//     parallels the logical name space, preserving the reference locality
//     the UFS buffer cache exploits (section 2.6).
//   * Update propagation installs new file contents via a shadow replica
//     plus an atomic low-level directory repoint (section 3.2); crash
//     before the repoint leaves the original intact, and Attach() runs
//     the recovery sweep that discards stranded shadows.
//
// Volume-replica layout under one UFS directory ("the container"):
//   volume.meta                       ids + file-id mint counter
//   ffffffff00000001/                 the Ficus root directory (well-known id)
//     .dir                            Ficus directory file
//     .attr                           root's auxiliary attributes
//     <hex>                           child regular file / symlink contents
//     <hex>.attr                      its auxiliary attributes
//     <hex>/                          child Ficus directory (recursively)
#ifndef FICUS_SRC_REPL_PHYSICAL_H_
#define FICUS_SRC_REPL_PHYSICAL_H_

#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/repl/physical_api.h"
#include "src/ufs/ufs.h"

namespace ficus::repl {

// Snapshot of the layer's `repl.physical.*` registry cells; existing
// callers keep reading plain fields.
struct PhysicalStats {
  uint64_t opens_noted = 0;
  uint64_t closes_noted = 0;
  uint64_t installs = 0;              // shadow commits completed
  uint64_t entries_applied = 0;       // reconciliation entries replayed
  uint64_t name_conflicts_resolved = 0;
  uint64_t insert_delete_conflicts = 0;  // auto-repaired (liveness wins)
  uint64_t remove_update_conflicts = 0;  // delete raced an unseen update
  uint64_t notifications_noted = 0;
  uint64_t shadows_recovered = 0;     // stranded shadows cleaned at Attach
  uint64_t orphans_reclaimed = 0;     // unreferenced inodes freed at Attach
  uint64_t dir_cache_hits = 0;        // parsed-directory cache generation matches
  uint64_t dir_cache_misses = 0;      // full read + reparse was needed
  uint64_t crdt_rename_merges = 0;    // remove-vs-update auto-merged: file alive elsewhere
  uint64_t commit_delta = 0;          // installs that took the block-remap path
  uint64_t commit_shadow = 0;         // installs that took the shadow-file path
  uint64_t journal_replays = 0;       // sealed commits replayed at Attach
  uint64_t commit_bytes_written = 0;  // device bytes written by InstallVersion
};

// Where replication attributes live on disk.
enum class AttrPlacement : uint8_t {
  // An auxiliary "<hex>.attr" file beside each replica — what the paper's
  // Ficus had to do on an unmodifiable UFS (section 2.6), costing two
  // extra I/Os per cold open.
  kAuxFile = 0,
  // Inside the UFS inode's extension area — the paper's section 7 wish
  // ("extensible inodes would allow us to dispense with auxiliary files").
  // Attributes too large for the inode (huge version vectors) spill to an
  // aux file transparently.
  kInode = 1,
};

// Decides whether this volume replica stores a local copy of a file it
// learns about during reconciliation. Locally created files and all
// directories are always stored (directories carry the namespace).
using StoragePolicy = std::function<bool(const FicusDirEntry& entry)>;

// The write points of InstallVersion's two commit sequences, in order.
// Used by the crash_point test hook to simulate a crash after each
// durable step (the buffer cache is write-through, so "everything up to
// the point, nothing after" is exactly what a real crash leaves on disk).
// The first six cover the legacy shadow-file commit; the last five cover
// the journal-backed block-remap (delta) commit.
enum class CommitCrashPoint {
  // Shadow-file path (commit point = kAfterRepoint):
  kAfterShadowCreate,  // shadow inode exists, still empty
  kAfterShadowWrite,   // new contents staged in the shadow
  kAfterAttrStage,     // inode-resident/spilled attributes staged
  kAfterRepoint,       // commit point passed: the name now maps to the shadow inode
  kAfterShadowUnlink,  // spare shadow name removed
  kAfterFreeInode,     // superseded inode freed; version vector not yet updated
  // Block-remap path (commit point = kAfterJournalSeal):
  kAfterDeltaDataWrite,  // new block images written into still-free blocks
  kAfterJournalStage,    // redo records staged, intent record unsealed
  kAfterJournalSeal,     // commit point passed: intent record sealed
  kAfterJournalApply,    // home metadata blocks rewritten
  kAfterJournalClear,    // intent retired; delta commit fully complete
};
// Historic name, kept for the shadow-specific call sites and tests.
using ShadowCrashPoint = CommitCrashPoint;

struct PhysicalOptions {
  AttrPlacement attr_placement = AttrPlacement::kAuxFile;
  // Test-only fault hook: called at each write point of either commit
  // path; returning true aborts the install with an I/O error, leaving
  // the on-disk image exactly as a crash at that point would. Null (the
  // default) never fires.
  std::function<bool(CommitCrashPoint)> crash_point;
  // Delta-commit gates, mirroring the propagation daemon's delta-fetch
  // gates: InstallVersion only attempts the block-remap commit for files
  // at least this large whose dirty fraction is at most this much;
  // everything else (and every device without a journal) takes the
  // shadow-file path.
  uint64_t commit_min_bytes = 16 * 1024;
  double commit_max_dirty_frac = 0.5;
  // Null policy = store everything ("a volume replica ... need not store
  // a replica of any particular file", section 4.1). Reads of unstored
  // files are served by other replicas via the logical layer's selection.
  StoragePolicy storage_policy;
  // When set, GarbageCollect() moves unreferenced regular-file replicas
  // into an "orphans" UFS directory at the volume root instead of freeing
  // them — insurance against an optimistic delete that later turns out to
  // have raced an unseen update ("Reconciliation service cleans up
  // later", section 7).
  bool orphanage = false;
};

class PhysicalLayer : public PhysicalApi {
 public:
  // ufs must be mounted; clock may be null. `metrics` (borrowed,
  // optional) receives the `repl.physical.*` counters; without one the
  // layer keeps them in a private registry.
  PhysicalLayer(ufs::Ufs* ufs, const Clock* clock,
                PhysicalOptions options = PhysicalOptions{},
                MetricRegistry* metrics = nullptr);

  // Creates a brand-new volume replica in `container_name` under the UFS
  // root. When `first_replica` is true the Ficus root directory is born
  // with one update at this replica (so a fresh volume's root dominates
  // the empty roots of replicas created later); otherwise the root starts
  // with an empty version vector and is filled by reconciliation.
  Status CreateVolume(const VolumeId& volume, ReplicaId replica,
                      std::string_view container_name, bool first_replica);

  // Mounts an existing volume replica: reads volume.meta, sweeps stranded
  // shadow files (crash recovery), and builds the in-memory file-id
  // location map.
  Status Attach(std::string_view container_name);

  bool attached() const { return attached_; }

  // --- PhysicalApi ---
  VolumeId volume_id() const override { return volume_; }
  ReplicaId replica_id() const override { return replica_; }
  StatusOr<ReplicaAttributes> GetAttributes(FileId file) override;
  Status SetConflict(FileId file, bool conflict) override;
  StatusOr<std::vector<FileAttrResult>> BatchGetAttributes(
      const std::vector<FileId>& files) override;
  StatusOr<std::vector<SubtreeDigest>> GetSubtreeDigests(
      const std::vector<FileId>& dirs) override;
  StatusOr<std::vector<uint8_t>> ReadData(FileId file, uint64_t offset,
                                          uint32_t length) override;
  StatusOr<std::vector<uint8_t>> ReadAllData(FileId file) override;
  StatusOr<uint64_t> DataSize(FileId file) override;
  StatusOr<BlockDigestInfo> ReadBlockDigests(FileId file) override;
  Status WriteData(FileId file, uint64_t offset, const std::vector<uint8_t>& data) override;
  Status TruncateData(FileId file, uint64_t size) override;
  Status InstallVersion(FileId file, const std::vector<uint8_t>& contents,
                        const VersionVector& vv) override;
  StatusOr<std::vector<FicusDirEntry>> ReadDirectory(FileId dir) override;
  StatusOr<std::vector<DirEntryPlus>> ReadDirPlus(FileId dir) override;
  StatusOr<FileId> CreateChild(FileId dir, std::string_view name, FicusFileType type,
                               uint32_t owner_uid) override;
  // Local-only bulk creation: makes one child per name in a single
  // directory transaction (one parse, one serialize, one version bump),
  // so populating an N-entry directory is O(N) where a CreateChild loop
  // is O(N^2). Restore tooling and benchmark population use this; it is
  // deliberately not part of PhysicalApi. Fails without creating anything
  // if any name is invalid or already present.
  StatusOr<std::vector<FileId>> CreateChildren(FileId dir,
                                               const std::vector<std::string>& names,
                                               FicusFileType type, uint32_t owner_uid);
  Status AddEntry(FileId dir, std::string_view name, FileId target,
                  FicusFileType type) override;
  Status RemoveEntry(FileId dir, std::string_view name) override;
  Status RenameEntry(FileId old_dir, std::string_view old_name, FileId new_dir,
                     std::string_view new_name) override;
  Status ApplyEntry(FileId dir, const FicusDirEntry& entry) override;
  Status ApplyEntries(FileId dir, const std::vector<FicusDirEntry>& entries) override;
  Status MergeDirVersion(FileId dir, const VersionVector& vv) override;
  StatusOr<std::string> ReadLink(FileId file) override;
  Status WriteLink(FileId file, std::string_view target) override;
  Status NoteOpen(FileId file) override;
  Status NoteClose(FileId file) override;

  // --- new-version cache (receiver side of update notification) ---
  void NoteNewVersion(const GlobalFileId& id, const VersionVector& vv, ReplicaId source);
  // Puts a previously taken entry back (propagation deferred it). Unlike
  // NoteNewVersion this merges keep-dominant — a newer notification that
  // arrived meanwhile must not have its vv or source clobbered by the
  // stale re-note — and preserves the oldest noted_at so min_age cannot
  // starve a repeatedly deferred entry.
  void RestoreNewVersion(const NewVersionEntry& entry);
  // Hands the accumulated entries to the propagation daemon and clears
  // the cache.
  std::vector<NewVersionEntry> TakePendingVersions();
  size_t PendingVersionCount() const {
    std::lock_guard<std::mutex> lock(nv_mu_);
    return new_version_cache_.size();
  }

  // Does this replica store the file at all? (Storage of any particular
  // file is optional within a volume replica, section 4.1.)
  bool Stores(FileId file) const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return locations_.count(file) != 0;
  }

  // Removes local storage of files no live directory entry references.
  // Returns the number of replicas collected. With options.orphanage set,
  // regular files are moved to the orphanage instead of freed.
  StatusOr<int> GarbageCollect();

  // Names of files currently parked in the orphanage (hex file-ids).
  StatusOr<std::vector<std::string>> OrphanNames();

  // Ficus-level fsck: every stored replica's attributes parse and carry
  // the right identity, alive-reference counts match the directory
  // contents, and every non-root replica is referenced by some entry.
  // Returns a list of problems (empty = consistent).
  StatusOr<std::vector<std::string>> CheckConsistency();

  // Digest-tree oracle: recomputes every cached subtree digest from
  // scratch (bypassing the incremental cache) and reports any cached node
  // that disagrees, plus any persisted directory header whose entry
  // digest no longer matches the entries it covers. Directories with no
  // cached node are not problems — the tree is lazily built. Returns a
  // list of problems (empty = digests agree with contents).
  StatusOr<std::vector<std::string>> ValidateDigestTree();

  // Testing the tester: flips the cached subtree digest of `dir` (filling
  // the cache first if needed) so the digest-agreement oracle has a known
  // corruption to catch. Never called outside fault-injection self-tests.
  Status CorruptDigestForTest(FileId dir);

  PhysicalStats stats() const;

  // Lists every file-id this replica stores (tests / reconciler sweep).
  std::vector<FileId> StoredFiles() const;

 private:
  struct Location {
    ufs::InodeNum parent_dir = ufs::kInvalidInode;  // UFS dir holding storage
    ufs::InodeNum self_dir = ufs::kInvalidInode;    // for dir-like files only
    FicusFileType type = FicusFileType::kRegular;
  };

  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }
  Status CheckAttached() const;
  // Fires the options_.crash_point hook: an I/O error when the hook elects
  // to crash the commit at `point`, OkStatus otherwise.
  Status MaybeCrash(CommitCrashPoint point) const;

  // Attempts the journal-backed block-remap commit for InstallVersion.
  // Returns true when the install completed on the delta path, false when
  // the caller should fall back to the shadow-file commit (gates unmet,
  // no journal, attribute spill, ...). Errors — including the simulated
  // crash hook's I/O error — propagate without fallback: after a mid-
  // commit crash the image must be left exactly as the crash left it.
  StatusOr<bool> TryDeltaCommit(FileId file, const Location& loc,
                                const std::vector<uint8_t>& contents,
                                const VersionVector& vv);

  StatusOr<Location> Find(FileId file) const;
  // UFS inode of a regular replica's data file.
  StatusOr<ufs::InodeNum> DataInode(FileId file);
  // UFS inode of a replica's auxiliary attribute file.
  StatusOr<ufs::InodeNum> AttrInode(FileId file);

  StatusOr<ReplicaAttributes> LoadAttributes(FileId file);
  Status StoreAttributes(FileId file, const ReplicaAttributes& attrs);

  // kInode placement: the inode whose extension area holds the replica's
  // attributes (the data-file inode for files, the UFS directory inode for
  // directory-likes).
  StatusOr<ufs::InodeNum> AttrExtInode(FileId file);

  // Directory files carry a generation header on disk; Load validates a
  // cached parse against it with a single small read, Store bumps it.
  // Coherent even across several PhysicalLayer objects attached to one
  // image (tests do this), because the generation lives on disk.
  StatusOr<std::vector<FicusDirEntry>> LoadDirEntries(FileId dir);
  Status StoreDirEntries(FileId dir, const std::vector<FicusDirEntry>& entries);

  // True when the locally stored directory has at least one live entry
  // (false also when we do not store it / cannot read it).
  bool HasLiveEntries(FileId dir);

  // True when `candidate` is reachable from `root` through live entries —
  // the cycle guard for directory renames (the Ficus namespace is a
  // rooted *acyclic* graph, section 4.1).
  StatusOr<bool> SubtreeContains(FileId root, FileId candidate);

  // Creates on-disk storage (data + attr) for a new or remotely-discovered
  // file in directory `dir`. The attribute record starts with `vv`.
  Status CreateStorage(FileId dir, FileId file, FicusFileType type, uint32_t owner_uid,
                       const VersionVector& vv);

  // Advances the directory's own version vector by one local update.
  Status BumpDirVersion(FileId dir);

  // Core of ApplyEntry/ApplyEntries: merges one remote entry into the
  // in-memory entry set; returns whether the set changed. Handles
  // refcounts, placeholder storage, and conflict statistics.
  StatusOr<bool> ApplyEntryToSet(FileId dir, std::vector<FicusDirEntry>& entries,
                                 const FicusDirEntry& remote);

  Status PersistMeta();
  Status ScanTree(ufs::InodeNum ufs_dir, FileId dir_id);
  Status RecoverShadows(ufs::InodeNum ufs_dir);

  // Layer-wide lock: serializes every PhysicalApi operation and the
  // caches behind them. Recursive because public operations compose
  // (ApplyEntries -> ApplyEntry -> CreateStorage). Never held across a
  // network call — remote I/O happens in the propagation daemon and the
  // logical layer, both of which call in and return between RPCs.
  mutable std::recursive_mutex mu_;
  // Leaf lock for the new-version cache alone, so an update-notification
  // datagram delivered by another host's writer thread files its entry
  // without waiting on (or deadlocking against) a long-running local
  // operation under mu_. Acquired after mu_ when both are needed; no
  // code path acquires mu_ while holding nv_mu_.
  mutable std::mutex nv_mu_;
  ufs::Ufs* ufs_;
  const Clock* clock_;
  PhysicalOptions options_;
  VolumeId volume_;
  ReplicaId replica_ = kInvalidReplica;
  uint32_t next_unique_ = 1;
  ufs::InodeNum container_ = ufs::kInvalidInode;  // volume replica's UFS dir
  bool attached_ = false;
  std::map<FileId, Location> locations_;
  std::map<FileId, int> alive_refs_;

  // Parsed-directory cache, validated by on-disk generation.
  struct CachedDir {
    uint64_t generation = 0;
    std::vector<FicusDirEntry> entries;
  };
  std::map<FileId, CachedDir> dir_cache_;
  static constexpr size_t kMaxCachedDirs = 64;  // live directory references per file
  // Lazily computed block digests, validated against the attributes'
  // version vector (every content mutation bumps or replaces the vv) and
  // the current data size. Erased eagerly by the mutating paths too.
  struct CachedDigests {
    VersionVector vv;
    uint64_t file_size = 0;
    std::vector<uint64_t> digests;
  };
  std::map<FileId, CachedDigests> digest_cache_;
  static constexpr size_t kMaxCachedDigests = 64;

  // --- Merkle subtree digest tree (digest-guided reconciliation) ---
  // One memoized node per directory. The tree is maintained by
  // invalidation: every attribute store and directory store erases the
  // affected node and walks digest_parents_ to the root erasing ancestors;
  // GetSubtreeDigests recomputes missing nodes lazily (child-first, so an
  // unchanged subtree is one map lookup). In-memory only — rebuilt after
  // Attach — while the per-directory ENTRY digest is also persisted in
  // the .dir header (v2) and validated on every full parse.
  struct DigestNode {
    VersionVector vv;           // dir's own vv at compute time
    uint64_t entry_digest = 0;
    uint64_t files_digest = 0;
    uint64_t subtree_digest = 0;
    std::vector<std::pair<FileId, uint64_t>> children;
  };
  // Computes (or fetches from `memo`) the digest node for `dir`.
  // `visiting` breaks DAG sharing/cycles: a revisit contributes a fixed
  // marker instead of recursing. Pass &digest_tree_ for the incremental
  // path or a scratch map for the from-scratch oracle recompute.
  StatusOr<DigestNode> ComputeDigestNode(FileId dir, std::set<FileId>& visiting,
                                         std::map<FileId, DigestNode>& memo);
  // Digest of one directory's raw entry set (order-independent).
  static uint64_t EntrySetDigest(const std::vector<FicusDirEntry>& entries);
  // Erases the digest nodes of `file` (if a directory) and every ancestor
  // reachable through digest_parents_. Absence of a node is not a stop
  // condition — an ancestor may be cached while the child is not.
  void InvalidateDigestUp(FileId file);
  // Records that `dir` holds an entry for `child` (reverse links for
  // invalidation). Entries are never physically removed, so links only
  // grow until GarbageCollect drops the child.
  void LinkDigestParent(FileId child, FileId dir);

  std::map<FileId, DigestNode> digest_tree_;
  std::map<FileId, std::set<FileId>> digest_parents_;  // child -> dirs naming it
  std::map<GlobalFileId, NewVersionEntry> new_version_cache_;
  // Registry-backed counter cells, resolved once at construction.
  struct StatCells {
    Counter* opens_noted;
    Counter* closes_noted;
    Counter* installs;
    Counter* entries_applied;
    Counter* name_conflicts_resolved;
    Counter* insert_delete_conflicts;
    Counter* remove_update_conflicts;
    Counter* notifications_noted;
    Counter* shadows_recovered;
    Counter* orphans_reclaimed;
    Counter* dir_cache_hits;
    Counter* dir_cache_misses;
    Counter* crdt_rename_merges;
    Counter* commit_delta;
    Counter* commit_shadow;
    Counter* journal_replays;
    Counter* commit_bytes_written;
  };

  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  StatCells stats_;
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_PHYSICAL_H_
