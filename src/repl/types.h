// Replication data structures stored by the Ficus physical layer: the
// auxiliary attribute record kept beside every file replica (the paper's
// "additional replication-related attributes stored in an auxiliary file",
// section 2.6 — they would live in the inode if the UFS were modifiable),
// and Ficus directory entries (a Ficus directory is a UFS *file* holding
// these records, not a UFS directory).
#ifndef FICUS_SRC_REPL_TYPES_H_
#define FICUS_SRC_REPL_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/serialize.h"
#include "src/repl/ids.h"
#include "src/repl/version_vector.h"

namespace ficus::repl {

// Values align with vfs::VnodeType so conversion is a cast.
enum class FicusFileType : uint8_t {
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
  kGraftPoint = 4,  // a special kind of directory (paper section 4.3)
};

inline bool IsDirectoryLike(FicusFileType type) {
  return type == FicusFileType::kDirectory || type == FicusFileType::kGraftPoint;
}

// The auxiliary replication attributes of one file replica.
struct ReplicaAttributes {
  GlobalFileId id;
  FicusFileType type = FicusFileType::kRegular;
  VersionVector vv;      // update history of this replica (section 3.1)
  bool conflict = false; // concurrent file update detected, awaiting owner
  uint32_t owner_uid = 0;
  uint64_t mtime = 0;    // simulated time of last local modification

  void Serialize(ByteWriter& w) const;
  static StatusOr<ReplicaAttributes> Deserialize(ByteReader& r);

  std::vector<uint8_t> ToBytes() const;
  static StatusOr<ReplicaAttributes> FromBytes(const std::vector<uint8_t>& bytes);
};

// One Ficus directory entry: maps a client-supplied name to a file-id.
// Entries are never physically removed — deletion leaves a tombstone
// (alive == false) so the reconciliation algorithm can order a remote
// insert against a local delete using the entry's version vector.
struct FicusDirEntry {
  std::string name;
  FileId file;
  FicusFileType type = FicusFileType::kRegular;
  bool alive = true;
  VersionVector vv;  // history of insert/delete operations on this entry
  // For *delete* tombstones of regular files/symlinks: the file's content
  // version vector as seen by the deleter. The no-lost-update rule uses it
  // to tell an informed delete from one racing an unseen update. Empty for
  // alive entries and for rename-generated tombstones (a rename is not a
  // content judgement — the file lives on under its new name).
  VersionVector deleted_file_vv;

  void Serialize(ByteWriter& w) const;
  static StatusOr<FicusDirEntry> Deserialize(ByteReader& r);
};

// Serialized form of a whole Ficus directory file.
std::vector<uint8_t> SerializeDirEntries(const std::vector<FicusDirEntry>& entries);
StatusOr<std::vector<FicusDirEntry>> DeserializeDirEntries(const std::vector<uint8_t>& bytes);

// Presented name of entry `index`: when several alive entries share a raw
// name (concurrent same-name creations retained per section 2.5), the one
// with the smallest file-id keeps the plain spelling and the others gain a
// deterministic "#<hex file-id>" suffix. Every replica computes the same
// spelling from the same entry set, so disambiguation needs no extra
// replication machinery. Presentation is a *view*: replicas exchange raw
// entries, clients see presented names.
std::string PresentedEntryName(const std::vector<FicusDirEntry>& entries, size_t index);

// Copy of `entries` with presented names substituted.
std::vector<FicusDirEntry> PresentEntries(const std::vector<FicusDirEntry>& entries);

// An entry in the new-version cache (paper section 3.2): a physical layer
// learned, via update-notification datagram, that a newer version of a
// file may be fetched from `source`.
struct NewVersionEntry {
  GlobalFileId id;
  VersionVector vv;        // version advertised by the notification
  ReplicaId source = kInvalidReplica;
  uint64_t noted_at = 0;   // simulated time the notification arrived
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_TYPES_H_
