// The Ficus logical layer (paper section 2.5): presents clients with the
// abstraction that each file has a single copy, although it may have many
// physical replicas.
//
// Responsibilities reproduced here:
//   * replica selection under the one-copy availability policy — any
//     reachable replica suffices for read and update; reads prefer the
//     most recent available copy (dominant version vector), updates
//     prefer the resolver's local replica;
//   * update notification — after applying an update to one physical
//     replica, an asynchronous best-effort multicast tells the replicas'
//     hosts that a newer version can be fetched from the updated one;
//   * conflict surfacing — reading a replica whose concurrent-update flag
//     is set fails with kConflict until the owner resolves it via
//     ResolveFileConflict();
//   * graft-point indirection — path translation hands graft-point vnodes
//     to a pluggable GraftResolver (the volume layer) for autografting.
//
// The layer talks to physical layers only through PhysicalApi, so it never
// knows whether a replica is co-resident or behind an NFS hop (Figure 1).
#ifndef FICUS_SRC_REPL_LOGICAL_H_
#define FICUS_SRC_REPL_LOGICAL_H_

#include <functional>
#include <memory>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/repl/conflict_log.h"
#include "src/repl/name_cache.h"
#include "src/repl/resolver.h"
#include "src/vfs/vnode.h"

namespace ficus::repl {

// Outbound half of update notification; the simulation harness implements
// it with a best-effort multicast datagram (section 3.2).
class UpdateNotifier {
 public:
  virtual ~UpdateNotifier() = default;
  virtual void NotifyUpdate(const GlobalFileId& id, const VersionVector& vv,
                            ReplicaId source) = 0;
};

// Volume-layer hook: resolves a graft-point file into the root vnode of
// the grafted volume (autografting on demand, section 4.4).
class GraftResolver {
 public:
  virtual ~GraftResolver() = default;
  virtual StatusOr<vfs::VnodePtr> ResolveGraft(const GlobalFileId& graft_point) = 0;
};

// Snapshot of the layer's `repl.logical.*` registry cells; existing
// callers keep reading plain fields.
struct LogicalStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t lookups = 0;
  uint64_t notifications_sent = 0;
  uint64_t replica_switches = 0;  // read served by a non-preferred replica
  uint64_t conflicts_surfaced = 0;
};

class LogicalLayer : public vfs::Vfs {
 public:
  // Registry-backed counter cells, resolved once at construction; shared
  // with LogicalVnode, which bumps them directly.
  struct StatCells {
    Counter* reads;
    Counter* writes;
    Counter* lookups;
    Counter* notifications_sent;
    Counter* replica_switches;
    Counter* conflicts_surfaced;
  };

  // All pointers borrowed; notifier, graft resolver, log, clock, metrics
  // optional. `metrics` receives the `repl.logical.*` counters; without
  // one the layer keeps them in a private registry.
  LogicalLayer(VolumeId volume, ReplicaResolver* resolver, UpdateNotifier* notifier,
               ConflictLog* log, const Clock* clock,
               MetricRegistry* metrics = nullptr);

  StatusOr<vfs::VnodePtr> Root() override;

  void set_graft_resolver(GraftResolver* graft_resolver) { graft_resolver_ = graft_resolver; }

  VolumeId volume() const { return volume_; }
  LogicalStats stats() const;

  // Owner's conflict resolution: writes `resolved` as a new version whose
  // vector dominates every reachable replica's, clears conflict flags, and
  // notifies. This is the manual step the paper leaves to the file owner.
  Status ResolveFileConflict(FileId file, const std::vector<uint8_t>& resolved);

  // --- internals shared with LogicalVnode ---

  // Reachable replica preferred for updates (local if possible).
  StatusOr<PhysicalApi*> SelectForUpdate(FileId file);
  // Reachable replica holding the most recent version of `file`
  // ("the default policy ... is to select the most recent copy
  // available"). Ties break toward the preferred replica, then the lowest
  // replica id, for determinism.
  StatusOr<PhysicalApi*> SelectForRead(FileId file);

  void Notify(FileId file, const VersionVector& vv, ReplicaId source);

  ReplicaResolver* resolver() { return resolver_; }
  GraftResolver* graft_resolver() { return graft_resolver_; }
  ConflictLog* conflict_log() { return log_; }
  // The layer's dnlc (see name_cache.h). Lookup consults it before
  // reading the directory; mutation paths shoot down affected names.
  NameCache* name_cache() { return &name_cache_; }
  const StatCells& stat_cells() const { return stats_; }
  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

 private:
  VolumeId volume_;
  ReplicaResolver* resolver_;
  UpdateNotifier* notifier_;
  GraftResolver* graft_resolver_ = nullptr;
  ConflictLog* log_;
  const Clock* clock_;
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  StatCells stats_;
  NameCache name_cache_;
};

// Client-visible vnode for one logical file. Carries no replica binding:
// every operation selects a replica afresh, so a partition between two
// calls silently fails over — the client is "generally unaware which
// replica services a file request".
class LogicalVnode : public vfs::Vnode {
 public:
  LogicalVnode(LogicalLayer* layer, FileId file, FicusFileType type)
      : layer_(layer), file_(file), type_(type) {}

  StatusOr<vfs::VAttr> GetAttr(const vfs::OpContext& ctx = {}) override;
  Status SetAttr(const vfs::SetAttrRequest& request, const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Lookup(std::string_view name, const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Create(std::string_view name, const vfs::VAttr& attr,
                                 const vfs::OpContext& ctx) override;
  Status Remove(std::string_view name, const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Mkdir(std::string_view name, const vfs::VAttr& attr,
                                const vfs::OpContext& ctx) override;
  Status Rmdir(std::string_view name, const vfs::OpContext& ctx) override;
  Status Link(std::string_view name, const vfs::VnodePtr& target,
              const vfs::OpContext& ctx) override;
  Status Rename(std::string_view old_name, const vfs::VnodePtr& new_parent,
                std::string_view new_name, const vfs::OpContext& ctx) override;
  StatusOr<std::vector<vfs::DirEntry>> Readdir(const vfs::OpContext& ctx) override;
  StatusOr<std::vector<vfs::DirEntryPlus>> ReaddirPlus(const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Symlink(std::string_view name, std::string_view target,
                                  const vfs::OpContext& ctx) override;
  StatusOr<std::string> Readlink(const vfs::OpContext& ctx) override;
  Status Open(uint32_t flags, const vfs::OpContext& ctx) override;
  Status Close(uint32_t flags, const vfs::OpContext& ctx) override;
  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const vfs::OpContext& ctx) override;
  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const vfs::OpContext& ctx) override;
  Status Fsync(const vfs::OpContext& ctx) override;

  FileId file() const { return file_; }
  FicusFileType ficus_type() const { return type_; }

 private:
  Status CheckDir() const;
  // Shared unlink/rmdir implementation with the Unix type check.
  Status RemoveCommon(std::string_view name, bool expect_dir);

  LogicalLayer* layer_;
  FileId file_;
  FicusFileType type_;
};

}  // namespace ficus::repl

#endif  // FICUS_SRC_REPL_LOGICAL_H_
