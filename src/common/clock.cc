#include "src/common/clock.h"

#include <cinttypes>
#include <cstdio>

namespace ficus {

void SimClock::LogSaturationOnce(SimTime at, SimTime delta) {
  bool expected = false;
  if (saturation_logged_.compare_exchange_strong(expected, true,
                                                 std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "SimClock: Advance(%" PRIu64 ") at now=%" PRIu64
                 " would overflow; saturating at SimTime max\n",
                 delta, at);
  }
}

}  // namespace ficus
