#include "src/common/clock.h"

// SimClock is header-only; this translation unit anchors the library.
