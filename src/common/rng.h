// Deterministic PRNG used by workload generators and the availability
// Monte-Carlo simulator. All randomness in the repository flows through a
// seeded Rng so every test and benchmark run is reproducible.
#ifndef FICUS_SRC_COMMON_RNG_H_
#define FICUS_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ficus {

// Returns the seed a randomized test/bench should use: the FICUS_SEED
// environment variable when set (so any logged failure reproduces with
// `FICUS_SEED=<n> ctest -R <test>`), otherwise `default_seed`. The chosen
// seed is logged to stderr with `label` either way — a failure report is
// only actionable if the seed that produced it is in the output.
uint64_t SeedFromEnvOr(uint64_t default_seed, const char* label);

// xoshiro256** — small, fast, high-quality; seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p.
  bool NextBool(double p);

  // Zipf-distributed rank in [0, n) with skew parameter s (s = 0 is
  // uniform; larger s concentrates mass on low ranks). Used to model the
  // file-reference locality the paper leans on (section 2.6).
  uint64_t NextZipf(uint64_t n, double skew);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  // Cached Zipf normalization: recomputed when (n, skew) changes.
  uint64_t zipf_n_ = 0;
  double zipf_skew_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_RNG_H_
