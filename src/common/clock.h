// Simulated clock. The whole system runs on logical time so tests of
// propagation delay, graft pruning, and cache expiry are deterministic.
//
// Two layers:
//   - Clock: the read-only interface every layer consumes (Now() only).
//     Layers that merely stamp deadlines, mtimes, or cache expiry take a
//     `const Clock*` and work under any runtime.
//   - SimClock: the writable simulated implementation, advanced explicitly
//     by the simulation loop (or, under the threaded runtime, by whichever
//     thread performs the simulated wait). Reads and writes are atomic so
//     a worker thread observing time while another advances it is a data
//     race only in the benign sense the memory model already permits.
#ifndef FICUS_SRC_COMMON_CLOCK_H_
#define FICUS_SRC_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace ficus {

// Microseconds of simulated time since simulation start.
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

// Read-only clock interface: what every layer above the simulation loop
// actually needs. Monotonic: successive Now() calls never go backwards.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime Now() const = 0;
};

// Monotonic simulated clock, advanced explicitly by the simulation loop.
// Thread-safe: concurrent Advance/AdvanceTo/Now are linearizable, and
// Advance saturates at SimTime's maximum instead of silently wrapping
// (a wrapped clock would un-expire every deadline and cache entry in the
// system; saturation keeps "already past" monotone and logs once).
class SimClock : public Clock {
 public:
  SimClock() = default;

  SimTime Now() const override { return now_.load(std::memory_order_relaxed); }

  // Advances by delta microseconds, saturating at SimTime max.
  void Advance(SimTime delta) {
    SimTime observed = now_.load(std::memory_order_relaxed);
    SimTime next;
    do {
      if (delta > kMaxSimTime - observed) {
        next = kMaxSimTime;
      } else {
        next = observed + delta;
      }
    } while (!now_.compare_exchange_weak(observed, next, std::memory_order_relaxed));
    if (next == kMaxSimTime && delta != 0) {
      LogSaturationOnce(observed, delta);
    }
  }

  // Jumps to an absolute time; must not go backwards (a stale target is
  // ignored, preserving monotonicity under concurrent advancers).
  void AdvanceTo(SimTime t) {
    SimTime observed = now_.load(std::memory_order_relaxed);
    while (t > observed) {
      if (now_.compare_exchange_weak(observed, t, std::memory_order_relaxed)) {
        break;
      }
    }
  }

  static constexpr SimTime kMaxSimTime = UINT64_MAX;

 private:
  // Out-of-line so <cstdio> stays out of this header; logs at most once
  // per clock instance.
  void LogSaturationOnce(SimTime at, SimTime delta);

  std::atomic<SimTime> now_{0};
  std::atomic<bool> saturation_logged_{false};
};

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_CLOCK_H_
