// Simulated clock. The whole system runs on logical time so tests of
// propagation delay, graft pruning, and cache expiry are deterministic.
#ifndef FICUS_SRC_COMMON_CLOCK_H_
#define FICUS_SRC_COMMON_CLOCK_H_

#include <cstdint>

namespace ficus {

// Microseconds of simulated time since simulation start.
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

// Monotonic simulated clock, advanced explicitly by the simulation loop.
class SimClock {
 public:
  SimClock() = default;

  SimTime Now() const { return now_; }

  // Advances by delta microseconds.
  void Advance(SimTime delta) { now_ += delta; }

  // Jumps to an absolute time; must not go backwards.
  void AdvanceTo(SimTime t) {
    if (t > now_) {
      now_ = t;
    }
  }

 private:
  SimTime now_ = 0;
};

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_CLOCK_H_
