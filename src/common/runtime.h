// Pluggable execution runtime (ROADMAP open item 1, "the gate").
//
// The original Ficus ran as vnode layers inside a real kernel with real
// concurrency; this reproduction began entirely single-threaded under
// SimClock. The Runtime/Executor abstraction keeps both worlds first
// class:
//
//   - kDeterministic: every Executor is an InlineExecutor — Submit runs
//     the job on the calling thread before returning. Execution order is
//     exactly the single-threaded order the model checker explores, so
//     seeded schedules stay reproducible bit-for-bit.
//   - kThreaded: Executors are bounded thread pools. NFS service loops
//     and propagation workers genuinely interleave; correctness then
//     rests on the locking discipline documented in DESIGN.md
//     ("Threading model") and is checked by the TSan CI tier and the
//     differential model-checker test (same schedule under both modes
//     must converge to the same replica state).
//
// Ownership: a Runtime is owned by the top of the simulation (sim::Cluster
// or a test); layers receive borrowed Executor pointers and never block on
// work they submitted from inside another executor job (that is the one
// deadlock shape a bounded pool admits; see DESIGN.md for the rule).
#ifndef FICUS_SRC_COMMON_RUNTIME_H_
#define FICUS_SRC_COMMON_RUNTIME_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ficus {

// A place to run jobs. Submit may block for backpressure (bounded queue);
// Drain returns once every job submitted before the call has finished.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual void Submit(std::function<void()> job) = 0;
  virtual void Drain() = 0;

  // Number of jobs that can make progress at once (1 = serial).
  virtual int concurrency() const = 0;
};

// Deterministic executor: Submit runs the job inline on the caller's
// thread. Drain is a no-op (nothing is ever pending).
class InlineExecutor : public Executor {
 public:
  void Submit(std::function<void()> job) override { job(); }
  void Drain() override {}
  int concurrency() const override { return 1; }
};

// Fixed-size worker pool over a bounded FIFO queue. Submit blocks while
// the queue is at capacity (backpressure, never unbounded memory); Drain
// blocks until the queue is empty and no worker is mid-job. Destruction
// drains, then joins.
class ThreadPoolExecutor : public Executor {
 public:
  ThreadPoolExecutor(int threads, size_t queue_capacity);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void Submit(std::function<void()> job) override;
  void Drain() override;
  int concurrency() const override { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;  // workers wait for jobs
  std::condition_variable not_full_;   // Submit waits for space
  std::condition_variable idle_;       // Drain waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;    // jobs currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

enum class RuntimeMode {
  kDeterministic,  // single-threaded, inline execution, model-checkable
  kThreaded,       // real threads, bounded pools, TSan-checked
};

struct RuntimeOptions {
  RuntimeMode mode = RuntimeMode::kDeterministic;
  // Threads in each NFS server's service pool (threaded mode only).
  int nfs_service_threads = 4;
  // Bounded queue depth for every pool created by this runtime.
  size_t queue_capacity = 64;
  // When true (threaded mode only), an arriving update-notification
  // datagram kicks the destination replica's propagation worker
  // immediately instead of waiting for the next scheduled pass. Off by
  // default: eager pulls change which write a concurrent update is
  // "concurrent with", so the differential test (same schedule, both
  // runtimes, same converged state) requires scheduled-pass-only
  // propagation. The thread stress test turns it on.
  bool kick_propagation_on_notify = false;
};

const char* RuntimeModeName(RuntimeMode mode);

// Factory tying the two pieces together: layers ask the runtime for
// executors instead of spawning threads themselves, so the whole stack
// flips between deterministic and threaded execution at one switch.
class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {}) : options_(options) {}

  RuntimeMode mode() const { return options_.mode; }
  bool threaded() const { return options_.mode == RuntimeMode::kThreaded; }
  const RuntimeOptions& options() const { return options_; }

  // Inline executor in deterministic mode; a ThreadPoolExecutor with
  // `threads` workers otherwise. `threads` <= 0 uses the runtime default.
  std::unique_ptr<Executor> NewExecutor(int threads = 0) const;

 private:
  RuntimeOptions options_;
};

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_RUNTIME_H_
