// Capped exponential backoff with equal jitter — the one retry-delay
// policy shared by the NFS client transport (per-RPC retries) and the
// propagation daemon (per-entry pull retries). Both used to carry a
// private copy of this arithmetic; keeping it here means the two agree
// forever on what "attempt k" waits.
//
// The k-th delay grows as base·2^k, clamped to `cap`; the jittered form
// then draws uniformly from [b/2, b] ("equal jitter": half deterministic
// spacing, half randomized to de-synchronize retry herds).
#ifndef FICUS_SRC_COMMON_BACKOFF_H_
#define FICUS_SRC_COMMON_BACKOFF_H_

#include <algorithm>

#include "src/common/clock.h"
#include "src/common/rng.h"

namespace ficus {

// min(base · 2^attempt, cap), saturating on shift overflow. `cap` is
// taken literally: cap == 0 yields 0 (callers wanting "uncapped" or
// "cap defaults to base" map that before calling — the NFS transport
// treats an unset cap as cap = base, i.e. constant backoff).
inline SimTime BackoffDelay(SimTime base, SimTime cap, uint32_t attempt) {
  SimTime delay = base;
  for (uint32_t k = 0; k < attempt; ++k) {
    if (delay >= cap) {
      break;  // already clamped; further doubling cannot matter
    }
    if (delay > SimClock::kMaxSimTime / 2) {
      delay = SimClock::kMaxSimTime;
      break;
    }
    delay *= 2;
  }
  return std::min(delay, cap);
}

// Equal-jitter variant: uniform in [b/2, b] for b = BackoffDelay(...).
// Draws exactly one rng value when b > 0 and none when b == 0, so
// seeded retry sequences are reproducible call-for-call.
inline SimTime JitteredBackoffDelay(SimTime base, SimTime cap, uint32_t attempt,
                                    Rng& rng) {
  SimTime b = BackoffDelay(base, cap, attempt);
  if (b == 0) {
    return 0;
  }
  return b / 2 + rng.NextBelow(b - b / 2 + 1);
}

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_BACKOFF_H_
