// Minimal leveled logging. Off by default so tests and benchmarks stay
// quiet; examples flip it on to narrate what the stack is doing.
#ifndef FICUS_SRC_COMMON_LOGGING_H_
#define FICUS_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ficus {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr if level passes the filter.
void LogMessage(LogLevel level, const std::string& component, const std::string& message);

// Stream-style helper: FICUS_LOG(kInfo, "repl") << "propagated " << n;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { LogMessage(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace ficus

#define FICUS_LOG(level, component) ::ficus::LogStream(::ficus::LogLevel::level, component)

#endif  // FICUS_SRC_COMMON_LOGGING_H_
