#include "src/common/metrics.h"

#include <bit>
#include <sstream>

namespace ficus {

void Histogram::Record(uint64_t sample) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += sample;
  if (sample < min_) {
    min_ = sample;
  }
  if (sample > max_) {
    max_ = sample;
  }
  size_t bucket = sample == 0 ? 0 : static_cast<size_t>(std::bit_width(sample) - 1);
  ++buckets_[bucket];
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
  buckets_.fill(0);
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

uint64_t Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : min_;
}

uint64_t Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::array<uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

Counter* MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

const Counter* MetricRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

uint64_t MetricRegistry::CounterValue(std::string_view name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

std::vector<std::string> MetricRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    names.push_back(name);
  }
  return names;
}

std::string MetricRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << " count=" << h->count() << " mean=" << h->mean() << "\n";
  }
  return out.str();
}

namespace {

// Metric names are dot/underscore identifiers, but escape defensively.
void AppendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) {
      out << ",";
    }
    first = false;
    AppendJsonString(out, name);
    out << ":" << c->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) {
      out << ",";
    }
    first = false;
    AppendJsonString(out, name);
    out << ":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
        << ",\"min\":" << h->min() << ",\"max\":" << h->max()
        << ",\"mean\":" << h->mean() << "}";
  }
  out << "}}";
  return out.str();
}

Counter* MetricScope::counter(std::string_view name) const {
  if (registry_ == nullptr) {
    return nullptr;
  }
  std::string full = prefix_;
  full.append(name);
  return registry_->counter(full);
}

Histogram* MetricScope::histogram(std::string_view name) const {
  if (registry_ == nullptr) {
    return nullptr;
  }
  std::string full = prefix_;
  full.append(name);
  return registry_->histogram(full);
}

void MetricScope::IncrementCounter(std::string_view name) const {
  if (Counter* c = counter(name)) {
    c->Increment();
  }
}

void MetricScope::AddToCounter(std::string_view name, uint64_t delta) const {
  if (Counter* c = counter(name)) {
    c->Add(delta);
  }
}

void MetricScope::RecordLatency(std::string_view name, uint64_t nanos) const {
  if (Histogram* h = histogram(name)) {
    h->Record(nanos);
  }
}

TraceId NextTraceId() {
  static std::atomic<TraceId> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ficus
