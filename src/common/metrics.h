// Unified metric registry for the whole stack.
//
// Every subsystem used to grow its own disconnected counter struct
// (OpCounters, NetworkStats, LogicalStats, ...). This registry gives
// them one home: named monotonic counters and log2-bucketed latency
// histograms, looked up once at construction time and then bumped
// through stable pointers on the hot path — a map lookup never sits on
// a vnode-operation fast path.
//
// Thread safety: counters are relaxed atomics (a bump from an NFS
// service thread and one from a propagation worker may not observe each
// other's order, but no increment is ever lost); histograms and the
// registry maps are mutex-guarded. Reads taken while workers are still
// running are instantaneous snapshots.
//
// Naming scheme (dotted, lowercase): `<subsystem>.<object>.<metric>`,
// e.g. `vfs.stats.lookup.calls`, `nfs.client.rpcs`,
// `net.rpc_bytes`, `repl.propagation.pulled_files`,
// `trace.<layer>.<op>.ns` (TraceLayer latency histograms).
// DESIGN.md documents the full scheme.
#ifndef FICUS_SRC_COMMON_METRICS_H_
#define FICUS_SRC_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ficus {

// Monotonic counter cell. Stable address for the lifetime of its
// registry; increments are one relaxed atomic add, safe from any thread.
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Latency histogram with power-of-two buckets: bucket i counts samples
// whose value v satisfies 2^i <= v < 2^(i+1) (bucket 0 also takes 0).
// Mutex-guarded: a histogram records a steady_clock delta per vnode op,
// and one uncontended lock is cheap next to the op it measures.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t sample);
  void Reset();

  uint64_t count() const;
  uint64_t sum() const;
  uint64_t min() const;
  uint64_t max() const;
  double mean() const;
  std::array<uint64_t, kBuckets> buckets() const;

 private:
  mutable std::mutex mu_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  std::array<uint64_t, kBuckets> buckets_{};
};

// Owns named counters and histograms. Lookup by name creates on first
// use and returns a stable pointer (cells are heap-allocated, so the
// pointer survives rehashing and concurrent registration); subsystems
// resolve their cells once and keep the pointers.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* counter(std::string_view name);
  Histogram* histogram(std::string_view name);

  // nullptr when the name was never registered.
  const Counter* FindCounter(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // 0 when the counter was never registered.
  uint64_t CounterValue(std::string_view name) const;

  // Zeroes every metric; registrations (and cell addresses) survive.
  void Reset();

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  // One "name value" line per counter, sorted by name.
  std::string ToString() const;
  // {"counters":{...},"histograms":{name:{"count":..,"sum":..,"min":..,
  // "max":..,"mean":..}}} — consumed by the BENCH_*.json emitters.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the cells they point to
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Cheap handle naming a registry subtree ("nfs.client."). Copyable,
// null-safe: a default MetricScope makes every operation a no-op, so
// callers never branch on "is instrumentation attached".
class MetricScope {
 public:
  MetricScope() = default;
  MetricScope(MetricRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  MetricRegistry* registry() const { return registry_; }
  const std::string& prefix() const { return prefix_; }

  // Resolve prefixed cells (nullptr when no registry is attached).
  Counter* counter(std::string_view name) const;
  Histogram* histogram(std::string_view name) const;

  void IncrementCounter(std::string_view name) const;
  void AddToCounter(std::string_view name, uint64_t delta) const;
  void RecordLatency(std::string_view name, uint64_t nanos) const;

 private:
  MetricRegistry* registry_ = nullptr;
  std::string prefix_;
};

// Process-wide trace-id source: atomic, starts at 1 so 0 can mean "no
// trace attached". Ids are unique across threads but their global order
// is only meaningful in the deterministic runtime.
using TraceId = uint64_t;
TraceId NextTraceId();

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_METRICS_H_
