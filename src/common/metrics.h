// Unified metric registry for the whole stack.
//
// Every subsystem used to grow its own disconnected counter struct
// (OpCounters, NetworkStats, LogicalStats, ...). This registry gives
// them one home: named monotonic counters and log2-bucketed latency
// histograms, looked up once at construction time and then bumped
// through stable pointers on the hot path — a map lookup never sits on
// a vnode-operation fast path.
//
// Naming scheme (dotted, lowercase): `<subsystem>.<object>.<metric>`,
// e.g. `vfs.stats.lookup.calls`, `nfs.client.rpcs`,
// `net.rpc_bytes`, `repl.propagation.pulled_files`,
// `trace.<layer>.<op>.ns` (TraceLayer latency histograms).
// DESIGN.md documents the full scheme.
#ifndef FICUS_SRC_COMMON_METRICS_H_
#define FICUS_SRC_COMMON_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ficus {

// Monotonic counter cell. Stable address for the lifetime of its
// registry; increments are a single add on a plain uint64_t.
class Counter {
 public:
  void Increment() { ++value_; }
  void Add(uint64_t delta) { value_ += delta; }
  void Reset() { value_ = 0; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Latency histogram with power-of-two buckets: bucket i counts samples
// whose value v satisfies 2^i <= v < 2^(i+1) (bucket 0 also takes 0).
// Cheap enough to record a steady_clock delta per vnode op.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t sample);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_); }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  std::array<uint64_t, kBuckets> buckets_{};
};

// Owns named counters and histograms. Lookup by name creates on first
// use and returns a stable pointer; subsystems resolve their cells once
// and keep the pointers.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* counter(std::string_view name);
  Histogram* histogram(std::string_view name);

  // nullptr when the name was never registered.
  const Counter* FindCounter(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // 0 when the counter was never registered.
  uint64_t CounterValue(std::string_view name) const;

  // Zeroes every metric; registrations (and cell addresses) survive.
  void Reset();

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  // One "name value" line per counter, sorted by name.
  std::string ToString() const;
  // {"counters":{...},"histograms":{name:{"count":..,"sum":..,"min":..,
  // "max":..,"mean":..}}} — consumed by the BENCH_*.json emitters.
  std::string ToJson() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Cheap handle naming a registry subtree ("nfs.client."). Copyable,
// null-safe: a default MetricScope makes every operation a no-op, so
// callers never branch on "is instrumentation attached".
class MetricScope {
 public:
  MetricScope() = default;
  MetricScope(MetricRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  MetricRegistry* registry() const { return registry_; }
  const std::string& prefix() const { return prefix_; }

  // Resolve prefixed cells (nullptr when no registry is attached).
  Counter* counter(std::string_view name) const;
  Histogram* histogram(std::string_view name) const;

  void IncrementCounter(std::string_view name) const;
  void AddToCounter(std::string_view name, uint64_t delta) const;
  void RecordLatency(std::string_view name, uint64_t nanos) const;

 private:
  MetricRegistry* registry_ = nullptr;
  std::string prefix_;
};

// Process-wide trace-id source: deterministic, starts at 1 so 0 can
// mean "no trace attached".
using TraceId = uint64_t;
TraceId NextTraceId();

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_METRICS_H_
