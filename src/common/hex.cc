#include "src/common/hex.h"

namespace ficus {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}
}  // namespace

std::string HexEncode64(uint64_t value) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::string HexEncode32(uint32_t value) {
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

StatusOr<uint64_t> HexDecode64(std::string_view text) {
  if (text.empty()) {
    return InvalidArgumentError("empty hex string");
  }
  if (text.size() > 16) {
    return InvalidArgumentError("hex string longer than 16 digits");
  }
  uint64_t value = 0;
  for (char c : text) {
    int digit = HexValue(c);
    if (digit < 0) {
      return InvalidArgumentError("non-hex character in string");
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

std::string HexEncodeBytes(const std::vector<uint8_t>& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

StatusOr<std::vector<uint8_t>> HexDecodeBytes(std::string_view text) {
  if (text.size() % 2 != 0) {
    return InvalidArgumentError("odd-length hex byte string");
  }
  std::vector<uint8_t> out;
  out.reserve(text.size() / 2);
  for (size_t i = 0; i < text.size(); i += 2) {
    int hi = HexValue(text[i]);
    int lo = HexValue(text[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgumentError("non-hex character in byte string");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace ficus
