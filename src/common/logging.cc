#include "src/common/logging.h"

#include <cstdio>

namespace ficus {

namespace {
LogLevel g_level = LogLevel::kNone;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "-";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const std::string& component, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) {
    return;
  }
  std::fprintf(stderr, "[%s %s] %s\n", LevelTag(level), component.c_str(), message.c_str());
}

}  // namespace ficus
