// Little-endian byte serialization used by the UFS on-disk structures, the
// Ficus auxiliary attribute files and directory files, and NFS messages.
// Header-only: trivial loops the compiler flattens.
#ifndef FICUS_SRC_COMMON_SERIALIZE_H_
#define FICUS_SRC_COMMON_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ficus {

// Appends fixed-width little-endian integers and length-prefixed strings.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>& out) : out_(out) {}

  void PutU8(uint8_t v) { out_.push_back(v); }

  void PutU16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
  }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  // u16 length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutU16(static_cast<uint16_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void PutBytes(const std::vector<uint8_t>& bytes) {
    PutU32(static_cast<uint32_t>(bytes.size()));
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

 private:
  std::vector<uint8_t>& out_;
};

// Cursor-based reader with bounds checking; every getter fails with
// kCorrupt on truncated input rather than reading past the end.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

  StatusOr<uint8_t> GetU8() {
    if (remaining() < 1) {
      return CorruptError("truncated u8");
    }
    return data_[pos_++];
  }

  StatusOr<uint16_t> GetU16() {
    if (remaining() < 2) {
      return CorruptError("truncated u16");
    }
    uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }

  StatusOr<uint32_t> GetU32() {
    if (remaining() < 4) {
      return CorruptError("truncated u32");
    }
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
    }
    pos_ += 4;
    return v;
  }

  StatusOr<uint64_t> GetU64() {
    if (remaining() < 8) {
      return CorruptError("truncated u64");
    }
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
    }
    pos_ += 8;
    return v;
  }

  // Reads a u32 element count and validates it against the bytes left:
  // a count that cannot possibly be satisfied (count * min_element_size
  // exceeds remaining()) is kCorrupt. Callers must size containers from
  // this, never from a raw u32 — a garbage count of ~4 billion would
  // otherwise drive an unbounded reserve() before any per-element read
  // has a chance to fail.
  StatusOr<uint32_t> GetCount(size_t min_element_size) {
    FICUS_ASSIGN_OR_RETURN(uint32_t count, GetU32());
    if (min_element_size != 0 && count > remaining() / min_element_size) {
      return CorruptError("element count exceeds available bytes");
    }
    return count;
  }

  StatusOr<std::string> GetString() {
    FICUS_ASSIGN_OR_RETURN(uint16_t len, GetU16());
    if (remaining() < len) {
      return CorruptError("truncated string");
    }
    std::string s(data_.begin() + static_cast<ptrdiff_t>(pos_),
                  data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return s;
  }

  StatusOr<std::vector<uint8_t>> GetBytes() {
    FICUS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    if (remaining() < len) {
      return CorruptError("truncated byte array");
    }
    std::vector<uint8_t> b(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return b;
  }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_SERIALIZE_H_
