#include "src/common/rng.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ficus {

uint64_t SeedFromEnvOr(uint64_t default_seed, const char* label) {
  uint64_t seed = default_seed;
  const char* env = std::getenv("FICUS_SEED");
  bool overridden = false;
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    uint64_t parsed = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') {
      seed = parsed;
      overridden = true;
    } else {
      std::fprintf(stderr, "[seed] %s: ignoring unparseable FICUS_SEED='%s'\n",
                   label != nullptr ? label : "rng", env);
    }
  }
  std::fprintf(stderr, "[seed] %s: %llu%s (reproduce with FICUS_SEED=%llu)\n",
               label != nullptr ? label : "rng", static_cast<unsigned long long>(seed),
               overridden ? " (from FICUS_SEED)" : "",
               static_cast<unsigned long long>(seed));
  return seed;
}

namespace {
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  uint64_t result = RotL(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 % bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double skew) {
  assert(n > 0);
  if (skew <= 0.0) {
    return NextBelow(n);
  }
  if (n != zipf_n_ || skew != zipf_skew_) {
    zipf_n_ = n;
    zipf_skew_ = skew;
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (uint64_t rank = 0; rank < n; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), skew);
      zipf_cdf_[rank] = total;
    }
    for (auto& c : zipf_cdf_) {
      c /= total;
    }
  }
  double u = NextDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0;
  size_t hi = zipf_cdf_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < zipf_cdf_.size() ? lo : zipf_cdf_.size() - 1;
}

}  // namespace ficus
