#include "src/common/runtime.h"

#include <utility>

namespace ficus {

ThreadPoolExecutor::ThreadPoolExecutor(int threads, size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (threads < 1) {
    threads = 1;
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPoolExecutor::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return queue_.size() < capacity_ || shutdown_; });
    if (shutdown_) {
      return;  // tearing down; the job is dropped, matching Drain-then-join
    }
    queue_.push_back(std::move(job));
  }
  not_empty_.notify_one();
}

void ThreadPoolExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPoolExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || shutdown_; });
      if (queue_.empty()) {
        return;  // shutdown with nothing left to run
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    not_full_.notify_one();
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

const char* RuntimeModeName(RuntimeMode mode) {
  switch (mode) {
    case RuntimeMode::kDeterministic:
      return "deterministic";
    case RuntimeMode::kThreaded:
      return "threaded";
  }
  return "unknown";
}

std::unique_ptr<Executor> Runtime::NewExecutor(int threads) const {
  if (!threaded()) {
    return std::make_unique<InlineExecutor>();
  }
  if (threads <= 0) {
    threads = options_.nfs_service_threads;
  }
  if (threads <= 0) {
    threads = 1;
  }
  return std::make_unique<ThreadPoolExecutor>(threads, options_.queue_capacity);
}

}  // namespace ficus
