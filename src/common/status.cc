#include "src/common/status.h"

namespace ficus {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kNotFound:
      return "not found";
    case ErrorCode::kExists:
      return "already exists";
    case ErrorCode::kNotDir:
      return "not a directory";
    case ErrorCode::kIsDir:
      return "is a directory";
    case ErrorCode::kNotEmpty:
      return "directory not empty";
    case ErrorCode::kNoSpace:
      return "no space";
    case ErrorCode::kInvalidArgument:
      return "invalid argument";
    case ErrorCode::kPermission:
      return "permission denied";
    case ErrorCode::kStale:
      return "stale handle";
    case ErrorCode::kIo:
      return "i/o error";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kNameTooLong:
      return "name too long";
    case ErrorCode::kNotSupported:
      return "not supported";
    case ErrorCode::kCrossDevice:
      return "cross-device operation";
    case ErrorCode::kUnreachable:
      return "host unreachable";
    case ErrorCode::kTimedOut:
      return "timed out";
    case ErrorCode::kConflict:
      return "update conflict";
    case ErrorCode::kCorrupt:
      return "corrupt structure";
    case ErrorCode::kQuorumDenied:
      return "quorum denied";
    case ErrorCode::kInternal:
      return "internal error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }

#define FICUS_DEFINE_ERROR_CTOR(fn, code)            \
  Status fn(std::string message) {                   \
    return Status(ErrorCode::code, std::move(message)); \
  }

FICUS_DEFINE_ERROR_CTOR(NotFoundError, kNotFound)
FICUS_DEFINE_ERROR_CTOR(ExistsError, kExists)
FICUS_DEFINE_ERROR_CTOR(NotDirError, kNotDir)
FICUS_DEFINE_ERROR_CTOR(IsDirError, kIsDir)
FICUS_DEFINE_ERROR_CTOR(NotEmptyError, kNotEmpty)
FICUS_DEFINE_ERROR_CTOR(NoSpaceError, kNoSpace)
FICUS_DEFINE_ERROR_CTOR(InvalidArgumentError, kInvalidArgument)
FICUS_DEFINE_ERROR_CTOR(PermissionError, kPermission)
FICUS_DEFINE_ERROR_CTOR(StaleError, kStale)
FICUS_DEFINE_ERROR_CTOR(IoError, kIo)
FICUS_DEFINE_ERROR_CTOR(BusyError, kBusy)
FICUS_DEFINE_ERROR_CTOR(NameTooLongError, kNameTooLong)
FICUS_DEFINE_ERROR_CTOR(NotSupportedError, kNotSupported)
FICUS_DEFINE_ERROR_CTOR(CrossDeviceError, kCrossDevice)
FICUS_DEFINE_ERROR_CTOR(UnreachableError, kUnreachable)
FICUS_DEFINE_ERROR_CTOR(TimedOutError, kTimedOut)
FICUS_DEFINE_ERROR_CTOR(ConflictError, kConflict)
FICUS_DEFINE_ERROR_CTOR(CorruptError, kCorrupt)
FICUS_DEFINE_ERROR_CTOR(QuorumDeniedError, kQuorumDenied)
FICUS_DEFINE_ERROR_CTOR(InternalError, kInternal)

#undef FICUS_DEFINE_ERROR_CTOR

}  // namespace ficus
