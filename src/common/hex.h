// Hexadecimal codec. The Ficus physical layer encodes file handles as hex
// strings used as pathnames in the underlying UFS (the paper's "dual
// mapping", section 2.6).
#ifndef FICUS_SRC_COMMON_HEX_H_
#define FICUS_SRC_COMMON_HEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ficus {

// Lower-case hex of a 64-bit value, zero-padded to 16 digits.
std::string HexEncode64(uint64_t value);

// Lower-case hex of a 32-bit value, zero-padded to 8 digits.
std::string HexEncode32(uint32_t value);

// Parses a hex string (any length up to 16 digits). Rejects empty input and
// non-hex characters.
StatusOr<uint64_t> HexDecode64(std::string_view text);

// Arbitrary byte-array codec (2 hex digits per byte) — used to smuggle
// marshalled requests through lookup names across NFS.
std::string HexEncodeBytes(const std::vector<uint8_t>& bytes);
StatusOr<std::vector<uint8_t>> HexDecodeBytes(std::string_view text);

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_HEX_H_
