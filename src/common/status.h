// Error model used throughout Ficus: errno-style codes carried by a small
// Status value, plus StatusOr<T> for call sites that return a value or fail.
// No exceptions cross public API boundaries.
#ifndef FICUS_SRC_COMMON_STATUS_H_
#define FICUS_SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ficus {

// Error codes. Values deliberately mirror the Unix errno family the vnode
// interface would surface, extended with Ficus-specific conditions.
enum class ErrorCode : int32_t {
  kOk = 0,
  kNotFound,        // ENOENT
  kExists,          // EEXIST
  kNotDir,          // ENOTDIR
  kIsDir,           // EISDIR
  kNotEmpty,        // ENOTEMPTY
  kNoSpace,         // ENOSPC
  kInvalidArgument, // EINVAL
  kPermission,      // EACCES
  kStale,           // ESTALE (NFS: handle no longer valid)
  kIo,              // EIO
  kBusy,            // EBUSY
  kNameTooLong,     // ENAMETOOLONG
  kNotSupported,    // ENOTSUP
  kCrossDevice,     // EXDEV
  kUnreachable,     // network partition: no route to host
  kTimedOut,        // simulated RPC timeout
  kConflict,        // concurrent unsynchronized update detected (version vectors)
  kCorrupt,         // on-disk structure failed validation
  kQuorumDenied,    // baseline policies: not enough replicas reachable
  kInternal,        // invariant violation (bug)
};

// Human-readable name for an error code ("kNotFound" -> "not found").
std::string_view ErrorCodeName(ErrorCode code);

// A cheap, copyable success-or-error value. An ok Status carries no message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

// Convenience constructors, one per common code.
Status OkStatus();
Status NotFoundError(std::string message);
Status ExistsError(std::string message);
Status NotDirError(std::string message);
Status IsDirError(std::string message);
Status NotEmptyError(std::string message);
Status NoSpaceError(std::string message);
Status InvalidArgumentError(std::string message);
Status PermissionError(std::string message);
Status StaleError(std::string message);
Status IoError(std::string message);
Status BusyError(std::string message);
Status NameTooLongError(std::string message);
Status NotSupportedError(std::string message);
Status CrossDeviceError(std::string message);
Status UnreachableError(std::string message);
Status TimedOutError(std::string message);
Status ConflictError(std::string message);
Status CorruptError(std::string message);
Status QuorumDeniedError(std::string message);
Status InternalError(std::string message);

// Value-or-Status. Access to value() on an error aborts (invariant bug),
// so callers must check ok() / status() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(rep_).ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok() && "StatusOr::value() on error");
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok() && "StatusOr::value() on error");
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok() && "StatusOr::value() on error");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagate a non-ok Status from an expression.
#define FICUS_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::ficus::Status _st = (expr);            \
    if (!_st.ok()) {                         \
      return _st;                            \
    }                                        \
  } while (0)

// Evaluate a StatusOr expression, propagate error, else bind the value.
#define FICUS_ASSIGN_OR_RETURN(lhs, expr)    \
  FICUS_ASSIGN_OR_RETURN_IMPL(               \
      FICUS_STATUS_CONCAT(_status_or, __LINE__), lhs, expr)

#define FICUS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

#define FICUS_STATUS_CONCAT_INNER(a, b) a##b
#define FICUS_STATUS_CONCAT(a, b) FICUS_STATUS_CONCAT_INNER(a, b)

}  // namespace ficus

#endif  // FICUS_SRC_COMMON_STATUS_H_
