#include "src/nfs/client.h"

#include <algorithm>
#include <mutex>

#include "src/common/backoff.h"

namespace ficus::nfs {

using net::Payload;
using vfs::Credentials;
using vfs::OpContext;
using vfs::DirEntry;
using vfs::SetAttrRequest;
using vfs::VAttr;
using vfs::VnodePtr;

NfsClient::NfsClient(net::Network* network, net::HostId local_host, net::HostId server_host,
                     const Clock* clock, ClientConfig config, std::string service,
                     MetricRegistry* metrics)
    : network_(network),
      local_host_(local_host),
      server_host_(server_host),
      clock_(clock),
      config_(config),
      service_(std::move(service)),
      registry_(metrics != nullptr ? metrics : &owned_registry_),
      // Deterministic per-endpoint-pair jitter stream: the plan-level seed
      // mixed with both host ids, so two clients never share a stream but
      // a rerun with the same seed replays exactly.
      retry_rng_(config.retry.rng_seed ^
                 (0x9E3779B97F4A7C15ull * (uint64_t{local_host} << 32 | server_host))) {
  stats_.rpcs = registry_->counter("nfs.client.rpcs");
  stats_.attr_cache_hits = registry_->counter("nfs.client.attr_cache_hits");
  stats_.attr_cache_misses = registry_->counter("nfs.client.attr_cache_misses");
  stats_.dnlc_hits = registry_->counter("nfs.client.dnlc_hits");
  stats_.dnlc_misses = registry_->counter("nfs.client.dnlc_misses");
  stats_.opens_dropped = registry_->counter("nfs.client.opens_dropped");
  stats_.closes_dropped = registry_->counter("nfs.client.closes_dropped");
  stats_.retry_attempts = registry_->counter("nfs.retries.attempts");
  stats_.retry_recovered = registry_->counter("nfs.retries.recovered");
  stats_.retry_exhausted = registry_->counter("nfs.retries.exhausted");
  stats_.retry_deadline_aborts = registry_->counter("nfs.retries.deadline_aborts");
  stats_.retry_backoff_us = registry_->counter("nfs.retries.backoff_us");
  for (size_t i = 0; i < kNfsProcCount; ++i) {
    proc_cells_[i] = registry_->counter(std::string("nfs.client.proc.") +
                                        NfsProcName(static_cast<NfsProc>(i)));
  }
}

ClientStats NfsClient::stats() const {
  ClientStats out;
  out.rpcs = stats_.rpcs->value();
  out.attr_cache_hits = stats_.attr_cache_hits->value();
  out.attr_cache_misses = stats_.attr_cache_misses->value();
  out.dnlc_hits = stats_.dnlc_hits->value();
  out.dnlc_misses = stats_.dnlc_misses->value();
  out.opens_dropped = stats_.opens_dropped->value();
  out.closes_dropped = stats_.closes_dropped->value();
  out.retry_attempts = stats_.retry_attempts->value();
  out.retry_recovered = stats_.retry_recovered->value();
  out.retry_exhausted = stats_.retry_exhausted->value();
  out.retry_deadline_aborts = stats_.retry_deadline_aborts->value();
  out.retry_backoff_us = stats_.retry_backoff_us->value();
  return out;
}

void NfsClient::ResetStats() {
  stats_.rpcs->Reset();
  stats_.attr_cache_hits->Reset();
  stats_.attr_cache_misses->Reset();
  stats_.dnlc_hits->Reset();
  stats_.dnlc_misses->Reset();
  stats_.opens_dropped->Reset();
  stats_.closes_dropped->Reset();
  stats_.retry_attempts->Reset();
  stats_.retry_recovered->Reset();
  stats_.retry_exhausted->Reset();
  stats_.retry_deadline_aborts->Reset();
  stats_.retry_backoff_us->Reset();
}

StatusOr<Payload> NfsClient::Call(const Payload& request, const OpContext& ctx) {
  const RetryPolicy& retry = config_.retry;
  // An unset cap means constant backoff at the base delay.
  const SimTime cap = retry.backoff_cap != 0 ? retry.backoff_cap : retry.backoff_base;
  for (uint32_t attempt = 0;; ++attempt) {
    stats_.rpcs->Increment();
    if (!request.empty() && request[0] < kNfsProcCount) {
      proc_cells_[request[0]]->Increment();
    }
    StatusOr<Payload> result =
        network_->Rpc(local_host_, server_host_, service_, request, retry.rpc_timeout);
    if (result.ok()) {
      if (attempt > 0) {
        stats_.retry_recovered->Increment();
      }
      ByteReader r(result.value());
      // A wire-level error (including the server refusing expired work
      // with kTimedOut) is the server's answer, not a lost message: never
      // retried.
      FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
      return result;
    }
    const Status& status = result.status();
    bool retryable = status.code() == ErrorCode::kTimedOut ||
                     (retry.retry_unreachable && status.code() == ErrorCode::kUnreachable);
    if (!retryable) {
      return status;
    }
    if (attempt >= retry.max_retries) {
      stats_.retry_exhausted->Increment();
      return status;
    }
    // Capped exponential backoff with equal jitter: uniform in [b/2, b].
    SimTime delay;
    {
      std::lock_guard<std::mutex> lock(mu_);
      delay = JitteredBackoffDelay(retry.backoff_base, cap, attempt, retry_rng_);
    }
    if (ctx.HasDeadline() && ctx.clock->Now() + delay > ctx.deadline) {
      // Sleeping would overrun the caller's deadline; give up now rather
      // than burn the remaining budget waiting.
      stats_.retry_deadline_aborts->Increment();
      return TimedOutError("deadline would expire during retry backoff");
    }
    if (delay != 0 && network_->sim_clock() != nullptr) {
      network_->sim_clock()->Advance(delay);
    }
    stats_.retry_backoff_us->Add(delay);
    stats_.retry_attempts->Increment();
  }
}

void NfsClient::InvalidateCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  attr_cache_.clear();
  dnlc_.clear();
}

StatusOr<VAttr> NfsClient::CachedAttr(NfsHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = attr_cache_.find(handle);
  if (it != attr_cache_.end() && it->second.expires > Now()) {
    stats_.attr_cache_hits->Increment();
    return it->second.attr;
  }
  stats_.attr_cache_misses->Increment();
  return NotFoundError("attr not cached");
}

void NfsClient::StoreAttr(NfsHandle handle, const VAttr& attr) {
  if (config_.attr_cache_ttl == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  attr_cache_[handle] = AttrEntry{attr, Now() + config_.attr_cache_ttl};
}

void NfsClient::DropAttr(NfsHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  attr_cache_.erase(handle);
}

StatusOr<NfsHandle> NfsClient::CachedName(NfsHandle dir, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dnlc_.find(std::make_pair(dir, std::string(name)));
  if (it != dnlc_.end() && it->second.expires > Now()) {
    stats_.dnlc_hits->Increment();
    return it->second.child;
  }
  stats_.dnlc_misses->Increment();
  return NotFoundError("name not cached");
}

void NfsClient::StoreName(NfsHandle dir, std::string_view name, NfsHandle child) {
  if (config_.dnlc_ttl == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  dnlc_[std::make_pair(dir, std::string(name))] = NameEntry{child, Now() + config_.dnlc_ttl};
}

void NfsClient::DropName(NfsHandle dir, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  dnlc_.erase(std::make_pair(dir, std::string(name)));
}

void NfsClient::DropDirNames(NfsHandle dir) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dnlc_.lower_bound(std::make_pair(dir, std::string()));
  while (it != dnlc_.end() && it->first.first == dir) {
    it = dnlc_.erase(it);
  }
}

StatusOr<VnodePtr> NfsClient::Root() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (root_handle_ != kInvalidHandle) {
      return VnodePtr(std::make_shared<NfsVnode>(this, root_handle_));
    }
  }
  Payload request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(NfsProc::kGetRoot));
  PutContext(w, OpContext{});
  FICUS_ASSIGN_OR_RETURN(Payload response, Call(request));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
  VAttr attr;
  FICUS_RETURN_IF_ERROR(GetVAttr(r, attr));
  {
    std::lock_guard<std::mutex> lock(mu_);
    root_handle_ = handle;
  }
  StoreAttr(handle, attr);
  return VnodePtr(std::make_shared<NfsVnode>(this, handle));
}

StatusOr<vfs::FsStats> NfsClient::Statfs() {
  Payload request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(NfsProc::kStatfs));
  PutContext(w, OpContext{});
  FICUS_ASSIGN_OR_RETURN(Payload response, Call(request));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  vfs::FsStats stats;
  FICUS_ASSIGN_OR_RETURN(stats.total_blocks, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(stats.free_blocks, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(stats.total_inodes, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(stats.free_inodes, r.GetU64());
  return stats;
}

namespace {
// Starts a request for `proc` on `handle` with credentials.
Payload BeginRequest(NfsProc proc, const OpContext& ctx, NfsHandle handle) {
  Payload request;
  ByteWriter w(request);
  w.PutU8(static_cast<uint8_t>(proc));
  PutContext(w, ctx);
  w.PutU64(handle);
  return request;
}
}  // namespace

StatusOr<VAttr> NfsVnode::GetAttr(const OpContext& ctx) {
  auto cached = client_->CachedAttr(handle_);
  if (cached.ok()) {
    return cached;
  }
  Payload request = BeginRequest(NfsProc::kGetAttr, ctx, handle_);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  VAttr attr;
  FICUS_RETURN_IF_ERROR(GetVAttr(r, attr));
  client_->StoreAttr(handle_, attr);
  return attr;
}

Status NfsVnode::SetAttr(const SetAttrRequest& request_attrs, const OpContext& ctx) {
  Payload request = BeginRequest(NfsProc::kSetAttr, ctx, handle_);
  ByteWriter w(request);
  PutSetAttr(w, request_attrs);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  VAttr attr;
  FICUS_RETURN_IF_ERROR(GetVAttr(r, attr));
  client_->StoreAttr(handle_, attr);
  return OkStatus();
}

StatusOr<VnodePtr> NfsVnode::Lookup(std::string_view name, const OpContext& ctx) {
  auto cached = client_->CachedName(handle_, name);
  if (cached.ok()) {
    return VnodePtr(std::make_shared<NfsVnode>(client_, cached.value()));
  }
  Payload request = BeginRequest(NfsProc::kLookup, ctx, handle_);
  ByteWriter w(request);
  w.PutString(name);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  FICUS_ASSIGN_OR_RETURN(NfsHandle child, r.GetU64());
  VAttr attr;
  FICUS_RETURN_IF_ERROR(GetVAttr(r, attr));
  client_->StoreAttr(child, attr);
  client_->StoreName(handle_, name, child);
  return VnodePtr(std::make_shared<NfsVnode>(client_, child));
}

StatusOr<std::vector<uint8_t>> NfsVnode::LookupRead(std::string_view name,
                                                    const OpContext& ctx) {
  // One RPC for lookup + whole-contents read. No handle comes back, so
  // nothing is cached: the intended callers (Ficus facade transactions)
  // name one-shot request/response vnodes that must not be re-resolved.
  Payload request = BeginRequest(NfsProc::kLookupRead, ctx, handle_);
  ByteWriter w(request);
  w.PutString(name);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  return r.GetBytes();
}

StatusOr<VnodePtr> NfsVnode::Create(std::string_view name, const VAttr& attr,
                                    const OpContext& ctx) {
  Payload request = BeginRequest(NfsProc::kCreate, ctx, handle_);
  ByteWriter w(request);
  w.PutString(name);
  PutVAttr(w, attr);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  FICUS_ASSIGN_OR_RETURN(NfsHandle child, r.GetU64());
  VAttr child_attr;
  FICUS_RETURN_IF_ERROR(GetVAttr(r, child_attr));
  client_->StoreAttr(child, child_attr);
  client_->StoreName(handle_, name, child);
  client_->DropAttr(handle_);  // directory mtime changed
  return VnodePtr(std::make_shared<NfsVnode>(client_, child));
}

Status NfsVnode::Remove(std::string_view name, const OpContext& ctx) {
  Payload request = BeginRequest(NfsProc::kRemove, ctx, handle_);
  ByteWriter w(request);
  w.PutString(name);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  client_->DropName(handle_, name);
  client_->DropAttr(handle_);
  return OkStatus();
}

StatusOr<VnodePtr> NfsVnode::Mkdir(std::string_view name, const VAttr& attr,
                                   const OpContext& ctx) {
  Payload request = BeginRequest(NfsProc::kMkdir, ctx, handle_);
  ByteWriter w(request);
  w.PutString(name);
  PutVAttr(w, attr);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  FICUS_ASSIGN_OR_RETURN(NfsHandle child, r.GetU64());
  VAttr child_attr;
  FICUS_RETURN_IF_ERROR(GetVAttr(r, child_attr));
  client_->StoreAttr(child, child_attr);
  client_->StoreName(handle_, name, child);
  client_->DropAttr(handle_);
  return VnodePtr(std::make_shared<NfsVnode>(client_, child));
}

Status NfsVnode::Rmdir(std::string_view name, const OpContext& ctx) {
  Payload request = BeginRequest(NfsProc::kRmdir, ctx, handle_);
  ByteWriter w(request);
  w.PutString(name);
  // Capture the dying directory's handle so its cached child names can
  // be purged too (they would otherwise ghost until their TTL).
  auto victim = client_->CachedName(handle_, name);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  client_->DropName(handle_, name);
  if (victim.ok()) {
    client_->DropDirNames(victim.value());
    client_->DropAttr(victim.value());
  }
  client_->DropAttr(handle_);
  return OkStatus();
}

Status NfsVnode::Link(std::string_view name, const VnodePtr& target, const OpContext& ctx) {
  auto* nfs_target = dynamic_cast<NfsVnode*>(target.get());
  if (nfs_target == nullptr || nfs_target->client_ != client_) {
    return CrossDeviceError("link target is not on the same NFS mount");
  }
  Payload request = BeginRequest(NfsProc::kLink, ctx, handle_);
  ByteWriter w(request);
  w.PutString(name);
  w.PutU64(nfs_target->handle_);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  client_->DropAttr(handle_);
  client_->DropAttr(nfs_target->handle_);
  return OkStatus();
}

Status NfsVnode::Rename(std::string_view old_name, const VnodePtr& new_parent,
                        std::string_view new_name, const OpContext& ctx) {
  auto* nfs_parent = dynamic_cast<NfsVnode*>(new_parent.get());
  if (nfs_parent == nullptr || nfs_parent->client_ != client_) {
    return CrossDeviceError("rename target is not on the same NFS mount");
  }
  Payload request = BeginRequest(NfsProc::kRename, ctx, handle_);
  ByteWriter w(request);
  w.PutString(old_name);
  w.PutU64(nfs_parent->handle_);
  w.PutString(new_name);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  client_->DropName(handle_, old_name);
  client_->DropName(nfs_parent->handle_, new_name);
  client_->DropAttr(handle_);
  client_->DropAttr(nfs_parent->handle_);
  return OkStatus();
}

StatusOr<std::vector<DirEntry>> NfsVnode::Readdir(const OpContext& ctx) {
  // Page through the directory with cookies, as real clients do.
  std::vector<DirEntry> entries;
  uint32_t cookie = 0;
  for (;;) {
    Payload request = BeginRequest(NfsProc::kReaddir, ctx, handle_);
    ByteWriter w(request);
    w.PutU32(cookie);
    FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
    ByteReader r(response);
    FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
    // Minimum wire entry: name (2) + fileid (8) + type (1) = 11 bytes.
    FICUS_ASSIGN_OR_RETURN(uint32_t count, r.GetCount(11));
    entries.reserve(entries.size() + count);
    for (uint32_t i = 0; i < count; ++i) {
      DirEntry e;
      FICUS_ASSIGN_OR_RETURN(e.name, r.GetString());
      FICUS_ASSIGN_OR_RETURN(e.fileid, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
      e.type = static_cast<vfs::VnodeType>(type);
      entries.push_back(std::move(e));
    }
    FICUS_ASSIGN_OR_RETURN(uint8_t eof, r.GetU8());
    FICUS_ASSIGN_OR_RETURN(cookie, r.GetU32());
    if (eof != 0) {
      break;
    }
  }
  return entries;
}

StatusOr<std::vector<vfs::DirEntryPlus>> NfsVnode::ReaddirPlus(const OpContext& ctx) {
  // Pages like Readdir, but each row carries the child's attributes — one
  // RPC per page instead of one GetAttr RPC per entry.
  std::vector<vfs::DirEntryPlus> rows;
  uint32_t cookie = 0;
  for (;;) {
    Payload request = BeginRequest(NfsProc::kReaddirPlus, ctx, handle_);
    ByteWriter w(request);
    w.PutU32(cookie);
    FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
    ByteReader r(response);
    FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
    // Minimum wire row: name (2) + fileid (8) + type (1) + status (6).
    FICUS_ASSIGN_OR_RETURN(uint32_t count, r.GetCount(17));
    rows.reserve(rows.size() + count);
    for (uint32_t i = 0; i < count; ++i) {
      vfs::DirEntryPlus row;
      FICUS_ASSIGN_OR_RETURN(row.entry.name, r.GetString());
      FICUS_ASSIGN_OR_RETURN(row.entry.fileid, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
      row.entry.type = static_cast<vfs::VnodeType>(type);
      row.attr_status = ReadWireStatus(r);
      if (row.attr_status.ok()) {
        FICUS_RETURN_IF_ERROR(GetVAttr(r, row.attr));
      } else if (row.attr_status.code() == ErrorCode::kCorrupt) {
        // A decode failure (vs. a per-row failure shipped in the row)
        // poisons the rest of the page.
        return row.attr_status;
      }
      rows.push_back(std::move(row));
    }
    FICUS_ASSIGN_OR_RETURN(uint8_t eof, r.GetU8());
    FICUS_ASSIGN_OR_RETURN(cookie, r.GetU32());
    if (eof != 0) {
      break;
    }
  }
  return rows;
}

StatusOr<VnodePtr> NfsVnode::Symlink(std::string_view name, std::string_view target,
                                     const OpContext& ctx) {
  Payload request = BeginRequest(NfsProc::kSymlink, ctx, handle_);
  ByteWriter w(request);
  w.PutString(name);
  w.PutString(target);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  FICUS_ASSIGN_OR_RETURN(NfsHandle child, r.GetU64());
  VAttr child_attr;
  FICUS_RETURN_IF_ERROR(GetVAttr(r, child_attr));
  client_->StoreAttr(child, child_attr);
  client_->DropAttr(handle_);
  return VnodePtr(std::make_shared<NfsVnode>(client_, child));
}

StatusOr<std::string> NfsVnode::Readlink(const OpContext& ctx) {
  Payload request = BeginRequest(NfsProc::kReadlink, ctx, handle_);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  return r.GetString();
}

Status NfsVnode::Open(uint32_t flags, const OpContext& ctx) {
  // "The vnode services open and close are not supported by the NFS
  // definition, and so are ignored: a layer intending to receive an open
  // will never get it if NFS is in between." (section 2.2)
  client_->stats_.opens_dropped->Increment();
  if ((flags & vfs::kOpenTruncate) != 0) {
    // Real NFS clients emulate O_TRUNC with a SETATTR; the open itself
    // still never reaches the server as an open.
    SetAttrRequest truncate;
    truncate.set_size = true;
    truncate.size = 0;
    return SetAttr(truncate, ctx);
  }
  return OkStatus();
}

Status NfsVnode::Close(uint32_t, const OpContext&) {
  client_->stats_.closes_dropped->Increment();
  return OkStatus();
}

StatusOr<size_t> NfsVnode::Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                                const OpContext& ctx) {
  Payload request = BeginRequest(NfsProc::kRead, ctx, handle_);
  ByteWriter w(request);
  w.PutU64(offset);
  w.PutU32(static_cast<uint32_t>(length));
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  FICUS_ASSIGN_OR_RETURN(out, r.GetBytes());
  return out.size();
}

StatusOr<size_t> NfsVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                 const OpContext& ctx) {
  Payload request = BeginRequest(NfsProc::kWrite, ctx, handle_);
  ByteWriter w(request);
  w.PutU64(offset);
  w.PutBytes(data);
  FICUS_ASSIGN_OR_RETURN(Payload response, client_->Call(request, ctx));
  ByteReader r(response);
  FICUS_RETURN_IF_ERROR(ReadWireStatus(r));
  FICUS_ASSIGN_OR_RETURN(uint32_t written, r.GetU32());
  VAttr attr;
  FICUS_RETURN_IF_ERROR(GetVAttr(r, attr));
  client_->StoreAttr(handle_, attr);
  return static_cast<size_t>(written);
}

Status NfsVnode::Fsync(const OpContext&) {
  // NFS writes are already synchronous on the server side.
  return OkStatus();
}

Status NfsVnode::Ioctl(std::string_view, const std::vector<uint8_t>&, std::vector<uint8_t>&,
                       const OpContext&) {
  // The NFS protocol has no ioctl procedure; an intermediate NFS hop
  // swallows any out-of-band extension. This is precisely why Ficus
  // encodes open/close requests inside Lookup names (section 2.3).
  return NotSupportedError("ioctl cannot cross an NFS transport");
}

}  // namespace ficus::nfs
