#include "src/nfs/protocol.h"

namespace ficus::nfs {

const char* NfsProcName(NfsProc proc) {
  switch (proc) {
    case NfsProc::kNull: return "null";
    case NfsProc::kGetRoot: return "getroot";
    case NfsProc::kGetAttr: return "getattr";
    case NfsProc::kSetAttr: return "setattr";
    case NfsProc::kLookup: return "lookup";
    case NfsProc::kCreate: return "create";
    case NfsProc::kRemove: return "remove";
    case NfsProc::kMkdir: return "mkdir";
    case NfsProc::kRmdir: return "rmdir";
    case NfsProc::kLink: return "link";
    case NfsProc::kRename: return "rename";
    case NfsProc::kReaddir: return "readdir";
    case NfsProc::kSymlink: return "symlink";
    case NfsProc::kReadlink: return "readlink";
    case NfsProc::kRead: return "read";
    case NfsProc::kWrite: return "write";
    case NfsProc::kStatfs: return "statfs";
    case NfsProc::kReaddirPlus: return "readdirplus";
    case NfsProc::kLookupRead: return "lookupread";
  }
  return "unknown";
}

void PutStatus(ByteWriter& w, const Status& status) {
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message());
}

Status ReadWireStatus(ByteReader& r) {
  auto code = r.GetU32();
  if (!code.ok()) {
    return code.status();
  }
  auto message = r.GetString();
  if (!message.ok()) {
    return message.status();
  }
  if (code.value() > static_cast<uint32_t>(ErrorCode::kInternal)) {
    return CorruptError("bad status code on wire");
  }
  return Status(static_cast<ErrorCode>(code.value()), std::move(message).value());
}

void PutVAttr(ByteWriter& w, const vfs::VAttr& attr) {
  w.PutU8(static_cast<uint8_t>(attr.type));
  w.PutU32(attr.mode);
  w.PutU32(attr.uid);
  w.PutU32(attr.gid);
  w.PutU32(attr.nlink);
  w.PutU64(attr.size);
  w.PutU64(attr.atime);
  w.PutU64(attr.mtime);
  w.PutU64(attr.ctime);
  w.PutU64(attr.fileid);
  w.PutU64(attr.fsid);
}

Status GetVAttr(ByteReader& r, vfs::VAttr& attr) {
  FICUS_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  if (type < 1 || type > 4) {
    return CorruptError("bad vnode type on wire");
  }
  attr.type = static_cast<vfs::VnodeType>(type);
  FICUS_ASSIGN_OR_RETURN(attr.mode, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(attr.uid, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(attr.gid, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(attr.nlink, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(attr.size, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(attr.atime, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(attr.mtime, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(attr.ctime, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(attr.fileid, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(attr.fsid, r.GetU64());
  return OkStatus();
}

void PutSetAttr(ByteWriter& w, const vfs::SetAttrRequest& request) {
  uint8_t flags = 0;
  flags |= request.set_mode ? 1u : 0u;
  flags |= request.set_uid ? 2u : 0u;
  flags |= request.set_gid ? 4u : 0u;
  flags |= request.set_size ? 8u : 0u;
  flags |= request.set_mtime ? 16u : 0u;
  w.PutU8(flags);
  w.PutU32(request.mode);
  w.PutU32(request.uid);
  w.PutU32(request.gid);
  w.PutU64(request.size);
  w.PutU64(request.mtime);
}

Status GetSetAttr(ByteReader& r, vfs::SetAttrRequest& request) {
  FICUS_ASSIGN_OR_RETURN(uint8_t flags, r.GetU8());
  request.set_mode = (flags & 1) != 0;
  request.set_uid = (flags & 2) != 0;
  request.set_gid = (flags & 4) != 0;
  request.set_size = (flags & 8) != 0;
  request.set_mtime = (flags & 16) != 0;
  FICUS_ASSIGN_OR_RETURN(request.mode, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(request.uid, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(request.gid, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(request.size, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(request.mtime, r.GetU64());
  return OkStatus();
}

void PutCred(ByteWriter& w, const vfs::Credentials& cred) {
  w.PutU32(cred.uid);
  w.PutU32(cred.gid);
}

Status GetCred(ByteReader& r, vfs::Credentials& cred) {
  FICUS_ASSIGN_OR_RETURN(cred.uid, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(cred.gid, r.GetU32());
  return OkStatus();
}

void PutContext(ByteWriter& w, const vfs::OpContext& ctx) {
  PutCred(w, ctx.cred);
  w.PutU64(ctx.trace);
  w.PutU64(ctx.deadline);
}

Status GetContext(ByteReader& r, vfs::OpContext& ctx) {
  FICUS_RETURN_IF_ERROR(GetCred(r, ctx.cred));
  FICUS_ASSIGN_OR_RETURN(ctx.trace, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(ctx.deadline, r.GetU64());
  return OkStatus();
}

}  // namespace ficus::nfs
