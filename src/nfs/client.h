// NFS client: a Vfs whose vnodes forward operations over the simulated
// network to an NfsServer. Faithful to the behaviours the paper calls out
// (section 2.2):
//   * Open and Close "are not supported by the NFS definition, and so are
//     ignored" — a layer above never sees them. Here they succeed locally
//     without a single RPC.
//   * Ioctl is not part of the protocol and is NOT forwarded — it fails
//     with kNotSupported, which is why Ficus tunnels open/close through
//     Lookup instead.
//   * The client caches attributes and directory-name lookups; the caches
//     are "not fully controllable" in real NFS, but the simulation exposes
//     TTL knobs (0 disables) so the resulting anomalies can be tested
//     rather than merely suffered.
#ifndef FICUS_SRC_NFS_CLIENT_H_
#define FICUS_SRC_NFS_CLIENT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/network.h"
#include "src/nfs/protocol.h"
#include "src/vfs/vnode.h"

namespace ficus::nfs {

// Snapshot of the client's `nfs.client.*` registry cells; existing
// callers keep reading plain fields.
struct ClientStats {
  uint64_t rpcs = 0;
  uint64_t attr_cache_hits = 0;
  uint64_t attr_cache_misses = 0;
  uint64_t dnlc_hits = 0;
  uint64_t dnlc_misses = 0;
  uint64_t opens_dropped = 0;   // Open calls absorbed without an RPC
  uint64_t closes_dropped = 0;  // Close calls absorbed without an RPC
  // Retry/backoff path (`nfs.retries.*`), nonzero only under faults.
  uint64_t retry_attempts = 0;         // resends after a transport timeout
  uint64_t retry_recovered = 0;        // calls that succeeded after >=1 retry
  uint64_t retry_exhausted = 0;        // gave up after max_retries
  uint64_t retry_deadline_aborts = 0;  // backoff cut short by the OpContext deadline
  uint64_t retry_backoff_us = 0;       // total simulated time spent backing off
};

// How the client behaves when the transport times out (a message was lost
// by an installed FaultPlan). Retries are capped exponential backoff with
// equal jitter: the k-th delay is uniform in [b/2, b] for b =
// min(backoff_base * 2^k, backoff_cap). Transport kTimedOut only — a
// kTimedOut *wire status* (the server refusing expired work) is never
// retried. Without a fault plan the transport never times out, so these
// defaults change nothing for perfect networks.
struct RetryPolicy {
  SimTime rpc_timeout = 100 * kMillisecond;  // patience per attempt
  uint32_t max_retries = 8;                  // resends after the first attempt
  SimTime backoff_base = 10 * kMillisecond;
  SimTime backoff_cap = kSecond;
  // Also retry kUnreachable (useful under flapping links; off by default
  // so a hard partition still fails fast).
  bool retry_unreachable = false;
  // Mixed with the host ids to seed the jitter Rng; keep in sync with the
  // FaultPlan seed so a CI failure replays exactly.
  uint64_t rng_seed = 0;
};

struct ClientConfig {
  SimTime attr_cache_ttl = 3 * kSecond;  // 0 disables
  SimTime dnlc_ttl = 3 * kSecond;        // 0 disables
  RetryPolicy retry;
};

class NfsClient;

// Client-side vnode naming one remote file by NFS handle.
class NfsVnode : public vfs::Vnode {
 public:
  NfsVnode(NfsClient* client, NfsHandle handle) : client_(client), handle_(handle) {}

  StatusOr<vfs::VAttr> GetAttr(const vfs::OpContext& ctx = {}) override;
  Status SetAttr(const vfs::SetAttrRequest& request, const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Lookup(std::string_view name, const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Create(std::string_view name, const vfs::VAttr& attr,
                                 const vfs::OpContext& ctx) override;
  Status Remove(std::string_view name, const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Mkdir(std::string_view name, const vfs::VAttr& attr,
                                const vfs::OpContext& ctx) override;
  Status Rmdir(std::string_view name, const vfs::OpContext& ctx) override;
  Status Link(std::string_view name, const vfs::VnodePtr& target,
              const vfs::OpContext& ctx) override;
  Status Rename(std::string_view old_name, const vfs::VnodePtr& new_parent,
                std::string_view new_name, const vfs::OpContext& ctx) override;
  StatusOr<std::vector<vfs::DirEntry>> Readdir(const vfs::OpContext& ctx) override;
  StatusOr<std::vector<vfs::DirEntryPlus>> ReaddirPlus(const vfs::OpContext& ctx) override;
  StatusOr<std::vector<uint8_t>> LookupRead(std::string_view name,
                                            const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Symlink(std::string_view name, std::string_view target,
                                  const vfs::OpContext& ctx) override;
  StatusOr<std::string> Readlink(const vfs::OpContext& ctx) override;
  // Ignored without an RPC — the NFS statelessness the paper works around.
  Status Open(uint32_t flags, const vfs::OpContext& ctx) override;
  Status Close(uint32_t flags, const vfs::OpContext& ctx) override;
  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const vfs::OpContext& ctx) override;
  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const vfs::OpContext& ctx) override;
  Status Fsync(const vfs::OpContext& ctx) override;
  // Deliberately NOT forwarded: the NFS protocol has no such procedure.
  Status Ioctl(std::string_view command, const std::vector<uint8_t>& request,
               std::vector<uint8_t>& response, const vfs::OpContext& ctx) override;

  NfsHandle handle() const { return handle_; }

 private:
  NfsClient* client_;
  NfsHandle handle_;
};

class NfsClient : public vfs::Vfs {
 public:
  // `metrics` (borrowed, optional) receives the `nfs.client.*` counters;
  // without one the client keeps them in a private registry.
  NfsClient(net::Network* network, net::HostId local_host, net::HostId server_host,
            const Clock* clock, ClientConfig config = ClientConfig{},
            std::string service = kNfsService, MetricRegistry* metrics = nullptr);

  // Root() fetches (and caches) the remote root handle.
  StatusOr<vfs::VnodePtr> Root() override;
  StatusOr<vfs::FsStats> Statfs() override;

  ClientStats stats() const;
  void ResetStats();

  // Drops all cached attributes and names (the control real NFS lacks).
  void InvalidateCaches();

  // Forgets the cached root handle so the next Root() re-fetches it from
  // the server — the recovery step after a server restart staled it.
  void ForgetRoot() {
    std::lock_guard<std::mutex> lock(mu_);
    root_handle_ = kInvalidHandle;
  }

 private:
  friend class NfsVnode;

  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

  // Sends one marshalled call; returns the response with its leading Status
  // already checked. Transport timeouts (lost messages under faults) are
  // retried per config_.retry with capped exponential backoff + jitter,
  // honoring ctx's deadline: the client never starts a backoff sleep that
  // would overrun it. The first attempt is always sent — deadline
  // enforcement on fresh work belongs to the server.
  StatusOr<net::Payload> Call(const net::Payload& request, const vfs::OpContext& ctx = {});

  // --- cache plumbing ---
  StatusOr<vfs::VAttr> CachedAttr(NfsHandle handle);
  void StoreAttr(NfsHandle handle, const vfs::VAttr& attr);
  void DropAttr(NfsHandle handle);
  StatusOr<NfsHandle> CachedName(NfsHandle dir, std::string_view name);
  void StoreName(NfsHandle dir, std::string_view name, NfsHandle child);
  void DropName(NfsHandle dir, std::string_view name);
  void DropDirNames(NfsHandle dir);

  struct AttrEntry {
    vfs::VAttr attr;
    SimTime expires;
  };
  struct NameEntry {
    NfsHandle child;
    SimTime expires;
  };

  // Registry-backed counter cells, resolved once at construction.
  struct StatCells {
    Counter* rpcs;
    Counter* attr_cache_hits;
    Counter* attr_cache_misses;
    Counter* dnlc_hits;
    Counter* dnlc_misses;
    Counter* opens_dropped;
    Counter* closes_dropped;
    Counter* retry_attempts;
    Counter* retry_recovered;
    Counter* retry_exhausted;
    Counter* retry_deadline_aborts;
    Counter* retry_backoff_us;
  };

  // Per-procedure request counters (`nfs.client.proc.<name>`), indexed by
  // NfsProc; bumped alongside `rpcs` from the request's leading opcode.
  Counter* proc_cells_[kNfsProcCount] = {};

  net::Network* network_;
  net::HostId local_host_;
  net::HostId server_host_;
  const Clock* clock_;
  ClientConfig config_;
  std::string service_;
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  StatCells stats_;
  // Guards the caches, the cached root handle, and the jitter rng —
  // everything a concurrent NfsVnode operation may touch. Never held
  // across an RPC.
  mutable std::mutex mu_;
  Rng retry_rng_;
  NfsHandle root_handle_ = kInvalidHandle;
  std::map<NfsHandle, AttrEntry> attr_cache_;
  std::map<std::pair<NfsHandle, std::string>, NameEntry> dnlc_;
};

}  // namespace ficus::nfs

#endif  // FICUS_SRC_NFS_CLIENT_H_
