#include "src/nfs/server.h"

#include <algorithm>
#include <future>
#include <mutex>
#include <utility>

namespace ficus::nfs {

using net::Payload;
using vfs::Credentials;
using vfs::OpContext;
using vfs::SetAttrRequest;
using vfs::VAttr;
using vfs::VnodePtr;

NfsServer::NfsServer(net::Network* network, net::HostId host, vfs::Vfs* exported,
                     std::string service, const Clock* clock, MetricRegistry* metrics)
    : network_(network),
      host_(host),
      exported_(exported),
      clock_(clock),
      registry_(metrics != nullptr ? metrics : &owned_registry_) {
  stats_.calls = registry_->counter("nfs.server.calls");
  stats_.errors = registry_->counter("nfs.server.errors");
  for (size_t i = 0; i < kNfsProcCount; ++i) {
    proc_cells_[i] = registry_->counter(std::string("nfs.server.proc.") +
                                        NfsProcName(static_cast<NfsProc>(i)));
  }
  net::HostPort* port = network_->port(host_);
  if (port != nullptr) {
    port->RegisterRpcService(
        std::move(service), [this](net::HostId sender, const Payload& request) {
          return Serve(sender, request);
        });
  }
}

StatusOr<Payload> NfsServer::Serve(net::HostId sender, const Payload& request) {
  if (service_pool_ == nullptr) {
    return Dispatch(sender, request);
  }
  // Hand the request to the bounded service pool and wait for its reply.
  // Submit() blocks when every service slot is busy, which is the
  // backpressure a fixed nfsd population applies to its transports.
  std::promise<StatusOr<Payload>> reply;
  std::future<StatusOr<Payload>> got = reply.get_future();
  service_pool_->Submit([this, sender, &request, &reply] {
    reply.set_value(Dispatch(sender, request));
  });
  return got.get();
}

ServerStats NfsServer::stats() const {
  ServerStats out;
  out.calls = stats_.calls->value();
  out.errors = stats_.errors->value();
  return out;
}

void NfsServer::FlushHandles() {
  std::lock_guard<std::mutex> lock(mu_);
  handle_to_vnode_.clear();
  file_to_handle_.clear();
}

NfsHandle NfsServer::HandleFor(const VnodePtr& vnode) {
  // Different vnode objects can name the same file (each Lookup may mint a
  // fresh vnode); unify on (fsid, fileid) so handles are durable names.
  // GetAttr runs before taking mu_ so the table lock is not held across a
  // vnode-stack call on the common path.
  auto attr = vnode->GetAttr();
  std::lock_guard<std::mutex> lock(mu_);
  if (attr.ok()) {
    auto key = std::make_pair(attr->fsid, attr->fileid);
    auto it = file_to_handle_.find(key);
    if (it != file_to_handle_.end()) {
      // Re-point the handle at the fresh vnode: facade session vnodes and
      // post-rename vnodes carry state the stale object lacks.
      handle_to_vnode_[it->second] = vnode;
      return it->second;
    }
  }
  NfsHandle handle = next_handle_++;
  handle_to_vnode_[handle] = vnode;
  if (attr.ok()) {
    file_to_handle_[std::make_pair(attr->fsid, attr->fileid)] = handle;
  }
  EvictExcessHandlesLocked();
  return handle;
}

void NfsServer::EvictExcessHandlesLocked() {
  while (handle_to_vnode_.size() > kMaxHandles) {
    // Handles are issued in increasing order, so begin() is the oldest.
    auto oldest = handle_to_vnode_.begin();
    if (oldest->first == root_handle_) {
      ++oldest;
      if (oldest == handle_to_vnode_.end()) {
        return;
      }
    }
    auto attr = oldest->second->GetAttr();
    if (attr.ok()) {
      file_to_handle_.erase(std::make_pair(attr->fsid, attr->fileid));
    }
    handle_to_vnode_.erase(oldest);
  }
}

StatusOr<VnodePtr> NfsServer::VnodeFor(NfsHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handle_to_vnode_.find(handle);
  if (it == handle_to_vnode_.end()) {
    return StaleError("handle " + std::to_string(handle));
  }
  return it->second;
}

namespace {

Payload ErrorResponse(const Status& status) {
  Payload out;
  ByteWriter w(out);
  PutStatus(w, status);
  return out;
}

}  // namespace

StatusOr<Payload> NfsServer::Dispatch(net::HostId, const Payload& request) {
  stats_.calls->Increment();
  ByteReader r(request);
  auto fail = [this](const Status& status) -> StatusOr<Payload> {
    stats_.errors->Increment();
    return ErrorResponse(status);
  };

  auto proc_or = r.GetU8();
  if (!proc_or.ok()) {
    return fail(proc_or.status());
  }
  NfsProc proc = static_cast<NfsProc>(proc_or.value());
  if (proc_or.value() < kNfsProcCount) {
    proc_cells_[proc_or.value()]->Increment();
  }
  vfs::OpContext ctx;
  Status ctx_status = GetContext(r, ctx);
  if (!ctx_status.ok()) {
    return fail(ctx_status);
  }
  // The wire carries the deadline as absolute sim time; judge it against
  // the server's clock so an RPC that spent its budget in transit is
  // refused here instead of doing work its caller already abandoned.
  ctx.clock = clock_;
  Status deadline_status = ctx.CheckDeadline("nfs.server");
  if (!deadline_status.ok()) {
    return fail(deadline_status);
  }

  Payload out;
  ByteWriter w(out);

  switch (proc) {
    case NfsProc::kNull: {
      PutStatus(w, OkStatus());
      return out;
    }
    case NfsProc::kGetRoot: {
      auto root = exported_->Root();
      if (!root.ok()) {
        return fail(root.status());
      }
      auto attr = root.value()->GetAttr(ctx);
      if (!attr.ok()) {
        return fail(attr.status());
      }
      PutStatus(w, OkStatus());
      NfsHandle handle = HandleFor(root.value());
      {
        std::lock_guard<std::mutex> lock(mu_);
        root_handle_ = handle;
      }
      w.PutU64(handle);
      PutVAttr(w, attr.value());
      return out;
    }
    case NfsProc::kGetAttr: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      auto vnode = VnodeFor(handle);
      if (!vnode.ok()) {
        return fail(vnode.status());
      }
      auto attr = vnode.value()->GetAttr(ctx);
      if (!attr.ok()) {
        return fail(attr.status());
      }
      PutStatus(w, OkStatus());
      PutVAttr(w, attr.value());
      return out;
    }
    case NfsProc::kSetAttr: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      SetAttrRequest setattr;
      FICUS_RETURN_IF_ERROR(GetSetAttr(r, setattr));
      auto vnode = VnodeFor(handle);
      if (!vnode.ok()) {
        return fail(vnode.status());
      }
      Status status = vnode.value()->SetAttr(setattr, ctx);
      if (!status.ok()) {
        return fail(status);
      }
      auto attr = vnode.value()->GetAttr(ctx);
      if (!attr.ok()) {
        return fail(attr.status());
      }
      PutStatus(w, OkStatus());
      PutVAttr(w, attr.value());
      return out;
    }
    case NfsProc::kLookup: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string name, r.GetString());
      auto dir = VnodeFor(handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      auto child = dir.value()->Lookup(name, ctx);
      if (!child.ok()) {
        return fail(child.status());
      }
      auto attr = child.value()->GetAttr(ctx);
      if (!attr.ok()) {
        return fail(attr.status());
      }
      PutStatus(w, OkStatus());
      w.PutU64(HandleFor(child.value()));
      PutVAttr(w, attr.value());
      return out;
    }
    case NfsProc::kLookupRead: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string name, r.GetString());
      auto dir = VnodeFor(handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      // Server-side composition: the exported vfs does the lookup and the
      // full read locally, so the client pays one round trip for both.
      auto contents = dir.value()->LookupRead(name, ctx);
      if (!contents.ok()) {
        return fail(contents.status());
      }
      PutStatus(w, OkStatus());
      w.PutBytes(contents.value());
      return out;
    }
    case NfsProc::kCreate: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string name, r.GetString());
      VAttr requested;
      FICUS_RETURN_IF_ERROR(GetVAttr(r, requested));
      auto dir = VnodeFor(handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      auto child = dir.value()->Create(name, requested, ctx);
      if (!child.ok()) {
        return fail(child.status());
      }
      auto attr = child.value()->GetAttr(ctx);
      if (!attr.ok()) {
        return fail(attr.status());
      }
      PutStatus(w, OkStatus());
      w.PutU64(HandleFor(child.value()));
      PutVAttr(w, attr.value());
      return out;
    }
    case NfsProc::kRemove: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string name, r.GetString());
      auto dir = VnodeFor(handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      Status status = dir.value()->Remove(name, ctx);
      if (!status.ok()) {
        return fail(status);
      }
      PutStatus(w, OkStatus());
      return out;
    }
    case NfsProc::kMkdir: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string name, r.GetString());
      VAttr requested;
      FICUS_RETURN_IF_ERROR(GetVAttr(r, requested));
      auto dir = VnodeFor(handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      auto child = dir.value()->Mkdir(name, requested, ctx);
      if (!child.ok()) {
        return fail(child.status());
      }
      auto attr = child.value()->GetAttr(ctx);
      if (!attr.ok()) {
        return fail(attr.status());
      }
      PutStatus(w, OkStatus());
      w.PutU64(HandleFor(child.value()));
      PutVAttr(w, attr.value());
      return out;
    }
    case NfsProc::kRmdir: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string name, r.GetString());
      auto dir = VnodeFor(handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      Status status = dir.value()->Rmdir(name, ctx);
      if (!status.ok()) {
        return fail(status);
      }
      PutStatus(w, OkStatus());
      return out;
    }
    case NfsProc::kLink: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle dir_handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string name, r.GetString());
      FICUS_ASSIGN_OR_RETURN(NfsHandle target_handle, r.GetU64());
      auto dir = VnodeFor(dir_handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      auto target = VnodeFor(target_handle);
      if (!target.ok()) {
        return fail(target.status());
      }
      Status status = dir.value()->Link(name, target.value(), ctx);
      if (!status.ok()) {
        return fail(status);
      }
      PutStatus(w, OkStatus());
      return out;
    }
    case NfsProc::kRename: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle src_handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string old_name, r.GetString());
      FICUS_ASSIGN_OR_RETURN(NfsHandle dst_handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string new_name, r.GetString());
      auto src = VnodeFor(src_handle);
      if (!src.ok()) {
        return fail(src.status());
      }
      auto dst = VnodeFor(dst_handle);
      if (!dst.ok()) {
        return fail(dst.status());
      }
      Status status = src.value()->Rename(old_name, dst.value(), new_name, ctx);
      if (!status.ok()) {
        return fail(status);
      }
      PutStatus(w, OkStatus());
      return out;
    }
    case NfsProc::kReaddir: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(uint32_t cookie, r.GetU32());
      auto dir = VnodeFor(handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      auto entries = dir.value()->Readdir(ctx);
      if (!entries.ok()) {
        return fail(entries.status());
      }
      // One page starting at the cookie; the client loops until eof. The
      // cookie is an index into the (stable within one burst) listing —
      // the same weak-consistency contract real NFS readdir cookies have.
      size_t total = entries.value().size();
      size_t begin = std::min<size_t>(cookie, total);
      size_t end = std::min<size_t>(begin + kReaddirPageSize, total);
      PutStatus(w, OkStatus());
      w.PutU32(static_cast<uint32_t>(end - begin));
      for (size_t i = begin; i < end; ++i) {
        const auto& e = entries.value()[i];
        w.PutString(e.name);
        w.PutU64(e.fileid);
        w.PutU8(static_cast<uint8_t>(e.type));
      }
      w.PutU8(end >= total ? 1 : 0);  // eof
      w.PutU32(static_cast<uint32_t>(end));  // next cookie
      return out;
    }
    case NfsProc::kReaddirPlus: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(uint32_t cookie, r.GetU32());
      auto dir = VnodeFor(handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      auto rows = dir.value()->ReaddirPlus(ctx);
      if (!rows.ok()) {
        return fail(rows.status());
      }
      // Same cookie contract as kReaddir: an index into the listing,
      // stable within one client burst.
      size_t total = rows.value().size();
      size_t begin = std::min<size_t>(cookie, total);
      size_t end = std::min<size_t>(begin + kReaddirPageSize, total);
      PutStatus(w, OkStatus());
      w.PutU32(static_cast<uint32_t>(end - begin));
      for (size_t i = begin; i < end; ++i) {
        const auto& row = rows.value()[i];
        w.PutString(row.entry.name);
        w.PutU64(row.entry.fileid);
        w.PutU8(static_cast<uint8_t>(row.entry.type));
        PutStatus(w, row.attr_status);
        if (row.attr_status.ok()) {
          PutVAttr(w, row.attr);
        }
      }
      w.PutU8(end >= total ? 1 : 0);  // eof
      w.PutU32(static_cast<uint32_t>(end));  // next cookie
      return out;
    }
    case NfsProc::kSymlink: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::string name, r.GetString());
      FICUS_ASSIGN_OR_RETURN(std::string target, r.GetString());
      auto dir = VnodeFor(handle);
      if (!dir.ok()) {
        return fail(dir.status());
      }
      auto child = dir.value()->Symlink(name, target, ctx);
      if (!child.ok()) {
        return fail(child.status());
      }
      auto attr = child.value()->GetAttr(ctx);
      if (!attr.ok()) {
        return fail(attr.status());
      }
      PutStatus(w, OkStatus());
      w.PutU64(HandleFor(child.value()));
      PutVAttr(w, attr.value());
      return out;
    }
    case NfsProc::kReadlink: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      auto vnode = VnodeFor(handle);
      if (!vnode.ok()) {
        return fail(vnode.status());
      }
      auto target = vnode.value()->Readlink(ctx);
      if (!target.ok()) {
        return fail(target.status());
      }
      PutStatus(w, OkStatus());
      w.PutString(target.value());
      return out;
    }
    case NfsProc::kRead: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(uint64_t offset, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(uint32_t length, r.GetU32());
      auto vnode = VnodeFor(handle);
      if (!vnode.ok()) {
        return fail(vnode.status());
      }
      std::vector<uint8_t> data;
      auto count = vnode.value()->Read(offset, length, data, ctx);
      if (!count.ok()) {
        return fail(count.status());
      }
      PutStatus(w, OkStatus());
      w.PutBytes(data);
      return out;
    }
    case NfsProc::kWrite: {
      FICUS_ASSIGN_OR_RETURN(NfsHandle handle, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(uint64_t offset, r.GetU64());
      FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> data, r.GetBytes());
      auto vnode = VnodeFor(handle);
      if (!vnode.ok()) {
        return fail(vnode.status());
      }
      auto count = vnode.value()->Write(offset, data, ctx);
      if (!count.ok()) {
        return fail(count.status());
      }
      // NFS writes are synchronous through to stable storage.
      Status synced = vnode.value()->Fsync(ctx);
      if (!synced.ok()) {
        return fail(synced);
      }
      auto attr = vnode.value()->GetAttr(ctx);
      if (!attr.ok()) {
        return fail(attr.status());
      }
      PutStatus(w, OkStatus());
      w.PutU32(static_cast<uint32_t>(count.value()));
      PutVAttr(w, attr.value());
      return out;
    }
    case NfsProc::kStatfs: {
      auto stats = exported_->Statfs();
      if (!stats.ok()) {
        return fail(stats.status());
      }
      PutStatus(w, OkStatus());
      w.PutU64(stats->total_blocks);
      w.PutU64(stats->free_blocks);
      w.PutU64(stats->total_inodes);
      w.PutU64(stats->free_inodes);
      return out;
    }
  }
  return fail(InvalidArgumentError("unknown NFS procedure"));
}

}  // namespace ficus::nfs
