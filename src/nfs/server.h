// Stateless NFS server: exports any Vfs over the simulated network. This is
// the "NFS Server vnode" box in the paper's Figure 2 — below it can sit a
// UFS, a Ficus physical layer, or any other vnode stack.
//
// Statelessness: the server holds no open-file state. The file-handle table
// maps durable handles to vnodes; FlushHandles() models a server reboot,
// after which clients presenting old handles get kStale.
#ifndef FICUS_SRC_NFS_SERVER_H_
#define FICUS_SRC_NFS_SERVER_H_

#include <map>
#include <memory>
#include <string>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/net/network.h"
#include "src/nfs/protocol.h"
#include "src/vfs/vnode.h"

namespace ficus::nfs {

// Snapshot of the server's `nfs.server.*` registry cells.
struct ServerStats {
  uint64_t calls = 0;
  uint64_t errors = 0;
};

class NfsServer {
 public:
  // Exports `exported` (borrowed) on `host`. `service` is the RPC service
  // name to register under — distinct names let one host export several
  // filesystems (default: kNfsService).
  // `clock`, when given, lets the server enforce per-op deadlines carried
  // in the wire context (expired requests are refused with kTimedOut).
  // `metrics` (borrowed, optional) receives the `nfs.server.*` counters;
  // without one the server keeps them in a private registry.
  NfsServer(net::Network* network, net::HostId host, vfs::Vfs* exported,
            std::string service = kNfsService, const SimClock* clock = nullptr,
            MetricRegistry* metrics = nullptr);

  // Server restart: all handles become stale except the root, which clients
  // re-acquire via kGetRoot.
  void FlushHandles();

  ServerStats stats() const;
  net::HostId host() const { return host_; }

 private:
  StatusOr<net::Payload> Dispatch(net::HostId sender, const net::Payload& request);

  // Returns the handle for a vnode, minting one if needed.
  NfsHandle HandleFor(const vfs::VnodePtr& vnode);
  StatusOr<vfs::VnodePtr> VnodeFor(NfsHandle handle);
  void EvictExcessHandles();

  // Registry-backed counter cells, resolved once at construction.
  struct StatCells {
    Counter* calls;
    Counter* errors;
  };
  // Per-procedure dispatch counters (`nfs.server.proc.<name>`), indexed
  // by NfsProc.
  Counter* proc_cells_[kNfsProcCount] = {};

  net::Network* network_;
  net::HostId host_;
  vfs::Vfs* exported_;
  const SimClock* clock_ = nullptr;
  std::map<NfsHandle, vfs::VnodePtr> handle_to_vnode_;
  // Durable-name index: one handle per (fsid, fileid). Vnode objects are
  // cheap per-lookup handles, so identity must be by file, not by pointer.
  std::map<std::pair<uint64_t, uint64_t>, NfsHandle> file_to_handle_;
  NfsHandle next_handle_ = 1;
  NfsHandle root_handle_ = kInvalidHandle;  // never evicted
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  StatCells stats_;

  // Cap on live handles: beyond it the oldest non-root handles are
  // retired (clients see kStale and re-lookup, which NFS semantics
  // permit). Keeps facade request/response traffic from growing the
  // table without bound.
  static constexpr size_t kMaxHandles = 8192;
};

}  // namespace ficus::nfs

#endif  // FICUS_SRC_NFS_SERVER_H_
