// Stateless NFS server: exports any Vfs over the simulated network. This is
// the "NFS Server vnode" box in the paper's Figure 2 — below it can sit a
// UFS, a Ficus physical layer, or any other vnode stack.
//
// Statelessness: the server holds no open-file state. The file-handle table
// maps durable handles to vnodes; FlushHandles() models a server reboot,
// after which clients presenting old handles get kStale.
#ifndef FICUS_SRC_NFS_SERVER_H_
#define FICUS_SRC_NFS_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/runtime.h"
#include "src/net/network.h"
#include "src/nfs/protocol.h"
#include "src/vfs/vnode.h"

namespace ficus::nfs {

// Snapshot of the server's `nfs.server.*` registry cells.
struct ServerStats {
  uint64_t calls = 0;
  uint64_t errors = 0;
};

class NfsServer {
 public:
  // Exports `exported` (borrowed) on `host`. `service` is the RPC service
  // name to register under — distinct names let one host export several
  // filesystems (default: kNfsService).
  // `clock`, when given, lets the server enforce per-op deadlines carried
  // in the wire context (expired requests are refused with kTimedOut).
  // `metrics` (borrowed, optional) receives the `nfs.server.*` counters;
  // without one the server keeps them in a private registry.
  NfsServer(net::Network* network, net::HostId host, vfs::Vfs* exported,
            std::string service = kNfsService, const Clock* clock = nullptr,
            MetricRegistry* metrics = nullptr);

  // Server restart: all handles become stale except the root, which clients
  // re-acquire via kGetRoot.
  void FlushHandles();

  // Bounded service pool (borrowed, optional). When set, each incoming RPC
  // is handed to the pool and the transport thread blocks until its reply
  // is ready — the pool's width bounds how many requests are in service at
  // once, like the fixed population of nfsd threads on a real server. Must
  // be wired before traffic starts; a null pool serves requests inline.
  void set_service_pool(Executor* pool) { service_pool_ = pool; }

  ServerStats stats() const;
  net::HostId host() const { return host_; }

 private:
  // Transport entry point: runs Dispatch inline or via the service pool.
  StatusOr<net::Payload> Serve(net::HostId sender, const net::Payload& request);
  StatusOr<net::Payload> Dispatch(net::HostId sender, const net::Payload& request);

  // Returns the handle for a vnode, minting one if needed.
  NfsHandle HandleFor(const vfs::VnodePtr& vnode);
  StatusOr<vfs::VnodePtr> VnodeFor(NfsHandle handle);
  // Requires mu_ held. May call GetAttr() on evicted vnodes while holding
  // mu_ — lock order is server handle table before the exported vnode
  // stack, which is safe because the stack never calls back into the
  // server.
  void EvictExcessHandlesLocked();

  // Registry-backed counter cells, resolved once at construction.
  struct StatCells {
    Counter* calls;
    Counter* errors;
  };
  // Per-procedure dispatch counters (`nfs.server.proc.<name>`), indexed
  // by NfsProc.
  Counter* proc_cells_[kNfsProcCount] = {};

  net::Network* network_;
  net::HostId host_;
  vfs::Vfs* exported_;
  const Clock* clock_ = nullptr;
  Executor* service_pool_ = nullptr;
  // Guards the handle maps, next_handle_, and root_handle_ against
  // concurrent service-pool threads. Leaf with respect to the exported
  // stack's locks except inside EvictExcessHandlesLocked (see above).
  mutable std::mutex mu_;
  std::map<NfsHandle, vfs::VnodePtr> handle_to_vnode_;
  // Durable-name index: one handle per (fsid, fileid). Vnode objects are
  // cheap per-lookup handles, so identity must be by file, not by pointer.
  std::map<std::pair<uint64_t, uint64_t>, NfsHandle> file_to_handle_;
  NfsHandle next_handle_ = 1;
  NfsHandle root_handle_ = kInvalidHandle;  // never evicted
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  StatCells stats_;

  // Cap on live handles: beyond it the oldest non-root handles are
  // retired (clients see kStale and re-lookup, which NFS semantics
  // permit). Keeps facade request/response traffic from growing the
  // table without bound.
  static constexpr size_t kMaxHandles = 8192;
};

}  // namespace ficus::nfs

#endif  // FICUS_SRC_NFS_SERVER_H_
