// Wire protocol for the simulated NFS transport (paper section 2.2).
//
// Deliberate fidelity to the real NFS of the paper's era:
//   * stateless: the only per-client state on the server is the file-handle
//     table, and handles are durable names, not open-file state;
//   * there are NO open/close procedures — a layer above an NFS hop that
//     wants open/close must tunnel them (Ficus overloads lookup, §2.3);
//   * there is no ioctl-style escape hatch either, which is why the
//     overloading trick is needed at all.
#ifndef FICUS_SRC_NFS_PROTOCOL_H_
#define FICUS_SRC_NFS_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/serialize.h"
#include "src/common/status.h"
#include "src/vfs/vnode.h"

namespace ficus::nfs {

// Durable server-side name for a vnode.
using NfsHandle = uint64_t;
constexpr NfsHandle kInvalidHandle = 0;

// Entries per READDIR page — clients loop with a cookie until EOF, as in
// the real protocol (a directory can exceed any single response).
inline constexpr uint32_t kReaddirPageSize = 128;

// RPC procedure numbers. Note the absence of OPEN and CLOSE.
enum class NfsProc : uint8_t {
  kNull = 0,
  kGetRoot = 1,
  kGetAttr = 2,
  kSetAttr = 3,
  kLookup = 4,
  kCreate = 5,
  kRemove = 6,
  kMkdir = 7,
  kRmdir = 8,
  kLink = 9,
  kRename = 10,
  kReaddir = 11,
  kSymlink = 12,
  kReadlink = 13,
  kRead = 14,
  kWrite = 15,
  kStatfs = 16,
  // Batched readdir + per-entry attributes, one page per RPC — the
  // NFSv3 READDIRPLUS idea, here so an `ls -l` scan of an N-entry
  // directory does not cost N+1 round trips.
  kReaddirPlus = 17,
  // Combined LOOKUP + whole-contents READ of the named child in one RPC.
  // Exists for the Ficus facade transactions (encoded-name request whose
  // response is read back from the returned vnode): one round trip
  // instead of lookup-then-read, which halves the wire cost of every
  // small digest exchange during reconciliation.
  kLookupRead = 18,
};

// Number of procedures (for per-proc counter tables).
inline constexpr size_t kNfsProcCount = 19;

// Stable lower-case name of a procedure ("lookup", "read", ...) used to
// build per-proc metric names like `nfs.client.proc.lookup`. Returns
// "unknown" for out-of-range values.
const char* NfsProcName(NfsProc proc);

// Name of the RPC service an NfsServer registers on its host port.
inline constexpr char kNfsService[] = "nfs";

// --- shared marshalling helpers ---

void PutStatus(ByteWriter& w, const Status& status);
// Decodes a Status from the wire. A decode failure surfaces as kCorrupt;
// otherwise the decoded status itself is returned (ok or not).
Status ReadWireStatus(ByteReader& r);

void PutVAttr(ByteWriter& w, const vfs::VAttr& attr);
Status GetVAttr(ByteReader& r, vfs::VAttr& attr);

void PutSetAttr(ByteWriter& w, const vfs::SetAttrRequest& request);
Status GetSetAttr(ByteReader& r, vfs::SetAttrRequest& request);

void PutCred(ByteWriter& w, const vfs::Credentials& cred);
Status GetCred(ByteReader& r, vfs::Credentials& cred);

// Per-operation context on the wire: credentials plus trace id and
// absolute deadline, so a remote layer continues the caller's trace and
// can refuse work whose deadline already passed. Every request carries
// one, directly after the procedure number.
void PutContext(ByteWriter& w, const vfs::OpContext& ctx);
// Fills cred/trace/deadline; clock and metrics are local concerns the
// receiver attaches itself.
Status GetContext(ByteReader& r, vfs::OpContext& ctx);

}  // namespace ficus::nfs

#endif  // FICUS_SRC_NFS_PROTOCOL_H_
