// Path-level convenience operations over any Vfs. These are what a libc /
// system-call veneer would provide above the vnode interface; tests,
// examples, and workload generators use them against UFS, NFS mounts, and
// Ficus logical layers interchangeably — one more payoff of the single
// symmetric interface.
#ifndef FICUS_SRC_VFS_PATH_OPS_H_
#define FICUS_SRC_VFS_PATH_OPS_H_

#include <string>
#include <vector>

#include "src/vfs/vnode.h"

namespace ficus::vfs {

// Creates every missing directory along `path` (like mkdir -p).
Status MkdirAll(Vfs* fs, std::string_view path, const OpContext& ctx = {});

// Creates (if absent), truncates, and writes `contents` to the file.
Status WriteFileAt(Vfs* fs, std::string_view path, std::string_view contents,
                   const OpContext& ctx = {});

// Reads the whole file as a string.
StatusOr<std::string> ReadFileAt(Vfs* fs, std::string_view path,
                                 const OpContext& ctx = {});

// Opens (lookup + open), reads, closes — the full client-visible open
// path, which is what the cold/warm I/O experiments measure.
StatusOr<std::string> OpenReadClose(Vfs* fs, std::string_view path,
                                    const OpContext& ctx = {});

// Removes a file or (empty) directory by path.
Status RemovePath(Vfs* fs, std::string_view path, const OpContext& ctx = {});

// Lists a directory by path.
StatusOr<std::vector<DirEntry>> ListDir(Vfs* fs, std::string_view path,
                                        const OpContext& ctx = {});

// Does the path resolve?
bool Exists(Vfs* fs, std::string_view path, const OpContext& ctx = {});

// Renames old_path to new_path (both relative to the same root).
Status RenamePath(Vfs* fs, std::string_view old_path, std::string_view new_path,
                  const OpContext& ctx = {});

}  // namespace ficus::vfs

#endif  // FICUS_SRC_VFS_PATH_OPS_H_
