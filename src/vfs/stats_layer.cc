#include "src/vfs/stats_layer.h"

#include <sstream>

namespace ficus::vfs {

std::string_view VnodeOpName(VnodeOp op) {
  switch (op) {
    case VnodeOp::kGetAttr:
      return "getattr";
    case VnodeOp::kSetAttr:
      return "setattr";
    case VnodeOp::kLookup:
      return "lookup";
    case VnodeOp::kCreate:
      return "create";
    case VnodeOp::kRemove:
      return "remove";
    case VnodeOp::kMkdir:
      return "mkdir";
    case VnodeOp::kRmdir:
      return "rmdir";
    case VnodeOp::kLink:
      return "link";
    case VnodeOp::kRename:
      return "rename";
    case VnodeOp::kReaddir:
      return "readdir";
    case VnodeOp::kSymlink:
      return "symlink";
    case VnodeOp::kReadlink:
      return "readlink";
    case VnodeOp::kOpen:
      return "open";
    case VnodeOp::kClose:
      return "close";
    case VnodeOp::kRead:
      return "read";
    case VnodeOp::kWrite:
      return "write";
    case VnodeOp::kFsync:
      return "fsync";
    case VnodeOp::kIoctl:
      return "ioctl";
    case VnodeOp::kReaddirPlus:
      return "readdirplus";
    case VnodeOp::kCount:
      break;
  }
  return "?";
}

uint64_t OpCounters::TotalCalls() const {
  uint64_t total = 0;
  for (uint64_t c : calls) {
    total += c;
  }
  return total;
}

std::string OpCounters::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < static_cast<size_t>(VnodeOp::kCount); ++i) {
    if (calls[i] == 0) {
      continue;
    }
    out << VnodeOpName(static_cast<VnodeOp>(i)) << ": " << calls[i];
    if (errors[i] != 0) {
      out << " (" << errors[i] << " errors)";
    }
    out << "\n";
  }
  if (bytes_read != 0 || bytes_written != 0) {
    out << "bytes read: " << bytes_read << ", written: " << bytes_written << "\n";
  }
  return out.str();
}

OpCounterCells::OpCounterCells(MetricRegistry* registry, std::string_view prefix) {
  for (size_t i = 0; i < static_cast<size_t>(VnodeOp::kCount); ++i) {
    std::string base = std::string(prefix) + std::string(VnodeOpName(static_cast<VnodeOp>(i)));
    calls[i] = registry->counter(base + ".calls");
    errors[i] = registry->counter(base + ".errors");
  }
  bytes_read = registry->counter(std::string(prefix) + "bytes_read");
  bytes_written = registry->counter(std::string(prefix) + "bytes_written");
}

OpCounters OpCounterCells::Snapshot() const {
  OpCounters out;
  for (size_t i = 0; i < static_cast<size_t>(VnodeOp::kCount); ++i) {
    out.calls[i] = calls[i] != nullptr ? calls[i]->value() : 0;
    out.errors[i] = errors[i] != nullptr ? errors[i]->value() : 0;
  }
  out.bytes_read = bytes_read != nullptr ? bytes_read->value() : 0;
  out.bytes_written = bytes_written != nullptr ? bytes_written->value() : 0;
  return out;
}

void OpCounterCells::Reset() const {
  for (size_t i = 0; i < static_cast<size_t>(VnodeOp::kCount); ++i) {
    if (calls[i] != nullptr) {
      calls[i]->Reset();
    }
    if (errors[i] != nullptr) {
      errors[i]->Reset();
    }
  }
  if (bytes_read != nullptr) {
    bytes_read->Reset();
  }
  if (bytes_written != nullptr) {
    bytes_written->Reset();
  }
}

Status StatsVnode::Count(VnodeOp op, Status status) {
  cells_->calls[static_cast<size_t>(op)]->Increment();
  if (!status.ok()) {
    cells_->errors[static_cast<size_t>(op)]->Increment();
  }
  return status;
}

VnodePtr StatsVnode::WrapLower(VnodePtr lower) {
  return std::make_shared<StatsVnode>(std::move(lower), cells_);
}

StatusOr<VAttr> StatsVnode::GetAttr(const OpContext& ctx) {
  return Count(VnodeOp::kGetAttr, PassThroughVnode::GetAttr(ctx));
}

Status StatsVnode::SetAttr(const SetAttrRequest& request, const OpContext& ctx) {
  return Count(VnodeOp::kSetAttr, PassThroughVnode::SetAttr(request, ctx));
}

StatusOr<VnodePtr> StatsVnode::Lookup(std::string_view name, const OpContext& ctx) {
  return Count(VnodeOp::kLookup, PassThroughVnode::Lookup(name, ctx));
}

StatusOr<VnodePtr> StatsVnode::Create(std::string_view name, const VAttr& attr,
                                      const OpContext& ctx) {
  return Count(VnodeOp::kCreate, PassThroughVnode::Create(name, attr, ctx));
}

Status StatsVnode::Remove(std::string_view name, const OpContext& ctx) {
  return Count(VnodeOp::kRemove, PassThroughVnode::Remove(name, ctx));
}

StatusOr<VnodePtr> StatsVnode::Mkdir(std::string_view name, const VAttr& attr,
                                     const OpContext& ctx) {
  return Count(VnodeOp::kMkdir, PassThroughVnode::Mkdir(name, attr, ctx));
}

Status StatsVnode::Rmdir(std::string_view name, const OpContext& ctx) {
  return Count(VnodeOp::kRmdir, PassThroughVnode::Rmdir(name, ctx));
}

Status StatsVnode::Link(std::string_view name, const VnodePtr& target,
                        const OpContext& ctx) {
  return Count(VnodeOp::kLink, PassThroughVnode::Link(name, target, ctx));
}

Status StatsVnode::Rename(std::string_view old_name, const VnodePtr& new_parent,
                          std::string_view new_name, const OpContext& ctx) {
  return Count(VnodeOp::kRename,
               PassThroughVnode::Rename(old_name, new_parent, new_name, ctx));
}

StatusOr<std::vector<DirEntry>> StatsVnode::Readdir(const OpContext& ctx) {
  return Count(VnodeOp::kReaddir, PassThroughVnode::Readdir(ctx));
}

StatusOr<std::vector<DirEntryPlus>> StatsVnode::ReaddirPlus(const OpContext& ctx) {
  return Count(VnodeOp::kReaddirPlus, PassThroughVnode::ReaddirPlus(ctx));
}

StatusOr<VnodePtr> StatsVnode::Symlink(std::string_view name, std::string_view target,
                                       const OpContext& ctx) {
  return Count(VnodeOp::kSymlink, PassThroughVnode::Symlink(name, target, ctx));
}

StatusOr<std::string> StatsVnode::Readlink(const OpContext& ctx) {
  return Count(VnodeOp::kReadlink, PassThroughVnode::Readlink(ctx));
}

Status StatsVnode::Open(uint32_t flags, const OpContext& ctx) {
  return Count(VnodeOp::kOpen, PassThroughVnode::Open(flags, ctx));
}

Status StatsVnode::Close(uint32_t flags, const OpContext& ctx) {
  return Count(VnodeOp::kClose, PassThroughVnode::Close(flags, ctx));
}

StatusOr<size_t> StatsVnode::Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                                  const OpContext& ctx) {
  auto result = Count(VnodeOp::kRead, PassThroughVnode::Read(offset, length, out, ctx));
  if (result.ok()) {
    cells_->bytes_read->Add(result.value());
  }
  return result;
}

StatusOr<size_t> StatsVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                   const OpContext& ctx) {
  auto result = Count(VnodeOp::kWrite, PassThroughVnode::Write(offset, data, ctx));
  if (result.ok()) {
    cells_->bytes_written->Add(result.value());
  }
  return result;
}

Status StatsVnode::Fsync(const OpContext& ctx) {
  return Count(VnodeOp::kFsync, PassThroughVnode::Fsync(ctx));
}

Status StatsVnode::Ioctl(std::string_view command, const std::vector<uint8_t>& request,
                         std::vector<uint8_t>& response, const OpContext& ctx) {
  return Count(VnodeOp::kIoctl, PassThroughVnode::Ioctl(command, request, response, ctx));
}

StatsVfs::StatsVfs(Vfs* lower, MetricRegistry* registry, std::string_view prefix)
    : lower_(lower),
      registry_(registry != nullptr ? registry : &owned_registry_),
      cells_(registry_, prefix) {}

StatusOr<VnodePtr> StatsVfs::Root() {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, lower_->Root());
  return VnodePtr(std::make_shared<StatsVnode>(std::move(root), &cells_));
}

}  // namespace ficus::vfs
