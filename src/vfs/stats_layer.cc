#include "src/vfs/stats_layer.h"

#include <sstream>

namespace ficus::vfs {

std::string_view VnodeOpName(VnodeOp op) {
  switch (op) {
    case VnodeOp::kGetAttr:
      return "getattr";
    case VnodeOp::kSetAttr:
      return "setattr";
    case VnodeOp::kLookup:
      return "lookup";
    case VnodeOp::kCreate:
      return "create";
    case VnodeOp::kRemove:
      return "remove";
    case VnodeOp::kMkdir:
      return "mkdir";
    case VnodeOp::kRmdir:
      return "rmdir";
    case VnodeOp::kLink:
      return "link";
    case VnodeOp::kRename:
      return "rename";
    case VnodeOp::kReaddir:
      return "readdir";
    case VnodeOp::kSymlink:
      return "symlink";
    case VnodeOp::kReadlink:
      return "readlink";
    case VnodeOp::kOpen:
      return "open";
    case VnodeOp::kClose:
      return "close";
    case VnodeOp::kRead:
      return "read";
    case VnodeOp::kWrite:
      return "write";
    case VnodeOp::kFsync:
      return "fsync";
    case VnodeOp::kIoctl:
      return "ioctl";
    case VnodeOp::kCount:
      break;
  }
  return "?";
}

uint64_t OpCounters::TotalCalls() const {
  uint64_t total = 0;
  for (uint64_t c : calls) {
    total += c;
  }
  return total;
}

std::string OpCounters::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < static_cast<size_t>(VnodeOp::kCount); ++i) {
    if (calls[i] == 0) {
      continue;
    }
    out << VnodeOpName(static_cast<VnodeOp>(i)) << ": " << calls[i];
    if (errors[i] != 0) {
      out << " (" << errors[i] << " errors)";
    }
    out << "\n";
  }
  if (bytes_read != 0 || bytes_written != 0) {
    out << "bytes read: " << bytes_read << ", written: " << bytes_written << "\n";
  }
  return out.str();
}

Status StatsVnode::Count(VnodeOp op, Status status) {
  ++counters_->calls[static_cast<size_t>(op)];
  if (!status.ok()) {
    ++counters_->errors[static_cast<size_t>(op)];
  }
  return status;
}

VnodePtr StatsVnode::WrapLower(VnodePtr lower) {
  return std::make_shared<StatsVnode>(std::move(lower), counters_);
}

StatusOr<VAttr> StatsVnode::GetAttr() {
  return Count(VnodeOp::kGetAttr, PassThroughVnode::GetAttr());
}

Status StatsVnode::SetAttr(const SetAttrRequest& request, const Credentials& cred) {
  return Count(VnodeOp::kSetAttr, PassThroughVnode::SetAttr(request, cred));
}

StatusOr<VnodePtr> StatsVnode::Lookup(std::string_view name, const Credentials& cred) {
  return Count(VnodeOp::kLookup, PassThroughVnode::Lookup(name, cred));
}

StatusOr<VnodePtr> StatsVnode::Create(std::string_view name, const VAttr& attr,
                                      const Credentials& cred) {
  return Count(VnodeOp::kCreate, PassThroughVnode::Create(name, attr, cred));
}

Status StatsVnode::Remove(std::string_view name, const Credentials& cred) {
  return Count(VnodeOp::kRemove, PassThroughVnode::Remove(name, cred));
}

StatusOr<VnodePtr> StatsVnode::Mkdir(std::string_view name, const VAttr& attr,
                                     const Credentials& cred) {
  return Count(VnodeOp::kMkdir, PassThroughVnode::Mkdir(name, attr, cred));
}

Status StatsVnode::Rmdir(std::string_view name, const Credentials& cred) {
  return Count(VnodeOp::kRmdir, PassThroughVnode::Rmdir(name, cred));
}

Status StatsVnode::Link(std::string_view name, const VnodePtr& target,
                        const Credentials& cred) {
  return Count(VnodeOp::kLink, PassThroughVnode::Link(name, target, cred));
}

Status StatsVnode::Rename(std::string_view old_name, const VnodePtr& new_parent,
                          std::string_view new_name, const Credentials& cred) {
  return Count(VnodeOp::kRename,
               PassThroughVnode::Rename(old_name, new_parent, new_name, cred));
}

StatusOr<std::vector<DirEntry>> StatsVnode::Readdir(const Credentials& cred) {
  return Count(VnodeOp::kReaddir, PassThroughVnode::Readdir(cred));
}

StatusOr<VnodePtr> StatsVnode::Symlink(std::string_view name, std::string_view target,
                                       const Credentials& cred) {
  return Count(VnodeOp::kSymlink, PassThroughVnode::Symlink(name, target, cred));
}

StatusOr<std::string> StatsVnode::Readlink(const Credentials& cred) {
  return Count(VnodeOp::kReadlink, PassThroughVnode::Readlink(cred));
}

Status StatsVnode::Open(uint32_t flags, const Credentials& cred) {
  return Count(VnodeOp::kOpen, PassThroughVnode::Open(flags, cred));
}

Status StatsVnode::Close(uint32_t flags, const Credentials& cred) {
  return Count(VnodeOp::kClose, PassThroughVnode::Close(flags, cred));
}

StatusOr<size_t> StatsVnode::Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                                  const Credentials& cred) {
  auto result = Count(VnodeOp::kRead, PassThroughVnode::Read(offset, length, out, cred));
  if (result.ok()) {
    counters_->bytes_read += result.value();
  }
  return result;
}

StatusOr<size_t> StatsVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                   const Credentials& cred) {
  auto result = Count(VnodeOp::kWrite, PassThroughVnode::Write(offset, data, cred));
  if (result.ok()) {
    counters_->bytes_written += result.value();
  }
  return result;
}

Status StatsVnode::Fsync(const Credentials& cred) {
  return Count(VnodeOp::kFsync, PassThroughVnode::Fsync(cred));
}

Status StatsVnode::Ioctl(std::string_view command, const std::vector<uint8_t>& request,
                         std::vector<uint8_t>& response, const Credentials& cred) {
  return Count(VnodeOp::kIoctl, PassThroughVnode::Ioctl(command, request, response, cred));
}

StatusOr<VnodePtr> StatsVfs::Root() {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, lower_->Root());
  return VnodePtr(std::make_shared<StatsVnode>(std::move(root), &counters_));
}

}  // namespace ficus::vfs
