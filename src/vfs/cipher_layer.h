// An encryption layer (paper section 1 lists "encryption" among the
// services a stackable architecture should admit). Encrypts regular-file
// contents transparently: data written through this layer is stored
// enciphered below it, and reads decipher on the way back up. Names,
// directories, and attributes pass through untouched.
//
// The cipher is a keyed XOR stream keyed by byte offset — NOT
// cryptographically meaningful, but it has the structural property a real
// cipher layer needs and tests exercise: the layer composes with any
// stack, is position-independent (random-offset reads/writes work), and
// data below the layer is unreadable without it.
#ifndef FICUS_SRC_VFS_CIPHER_LAYER_H_
#define FICUS_SRC_VFS_CIPHER_LAYER_H_

#include <cstdint>

#include "src/vfs/pass_through.h"

namespace ficus::vfs {

class CipherVfs;

class CipherVnode : public PassThroughVnode {
 public:
  CipherVnode(VnodePtr lower, uint64_t key) : PassThroughVnode(std::move(lower)), key_(key) {}

  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const OpContext& ctx) override;
  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const OpContext& ctx) override;

 protected:
  VnodePtr WrapLower(VnodePtr lower) override;

 private:
  uint64_t key_;
};

class CipherVfs : public Vfs {
 public:
  // key: the shared secret; the same key must be used to read data back.
  CipherVfs(Vfs* lower, uint64_t key) : lower_(lower), key_(key) {}

  StatusOr<VnodePtr> Root() override;
  Status Sync() override { return lower_->Sync(); }
  StatusOr<FsStats> Statfs() override { return lower_->Statfs(); }

 private:
  Vfs* lower_;
  uint64_t key_;
};

// The keystream transform (an involution: applying it twice restores the
// plaintext). Exposed for tests.
void CipherApply(uint64_t key, uint64_t offset, std::vector<uint8_t>& data);

}  // namespace ficus::vfs

#endif  // FICUS_SRC_VFS_CIPHER_LAYER_H_
