#include "src/vfs/mem_vfs.h"

#include <algorithm>

namespace ficus::vfs {

MemVnode::MemVnode(MemVfs* fs, VnodeType type, uint64_t fileid)
    : fs_(fs), type_(type), fileid_(fileid) {
  mtime_ = fs_->Now();
  ctime_ = mtime_;
  if (type == VnodeType::kDirectory) {
    mode_ = 0755;
    nlink_ = 2;
  }
}

Status MemVnode::CheckDir() const {
  if (type_ != VnodeType::kDirectory) {
    return NotDirError("vnode is not a directory");
  }
  return OkStatus();
}

Status MemVnode::CheckNameValid(std::string_view name) const {
  if (name.empty() || name == "." || name == "..") {
    return InvalidArgumentError("invalid component name");
  }
  if (name.size() > kMaxComponentLength) {
    return NameTooLongError(std::string(name.substr(0, 32)));
  }
  if (name.find('/') != std::string_view::npos) {
    return InvalidArgumentError("component contains '/'");
  }
  return OkStatus();
}

StatusOr<VAttr> MemVnode::GetAttr(const OpContext&) {
  VAttr attr;
  attr.type = type_;
  attr.mode = mode_;
  attr.uid = uid_;
  attr.gid = gid_;
  attr.nlink = nlink_;
  attr.size = type_ == VnodeType::kRegular ? data_.size() : children_.size();
  attr.mtime = mtime_;
  attr.ctime = ctime_;
  attr.fileid = fileid_;
  attr.fsid = fs_->fsid();
  return attr;
}

Status MemVnode::SetAttr(const SetAttrRequest& request, const OpContext&) {
  if (request.set_mode) {
    mode_ = request.mode;
  }
  if (request.set_uid) {
    uid_ = request.uid;
  }
  if (request.set_gid) {
    gid_ = request.gid;
  }
  if (request.set_size) {
    if (type_ != VnodeType::kRegular) {
      return IsDirError("cannot truncate a directory");
    }
    data_.resize(request.set_size ? request.size : data_.size());
  }
  if (request.set_mtime) {
    mtime_ = request.mtime;
  }
  ctime_ = fs_->Now();
  return OkStatus();
}

StatusOr<VnodePtr> MemVnode::Lookup(std::string_view name, const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  auto it = children_.find(std::string(name));
  if (it == children_.end()) {
    return NotFoundError(std::string(name));
  }
  return VnodePtr(it->second);
}

StatusOr<VnodePtr> MemVnode::Create(std::string_view name, const VAttr& attr,
                                    const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_RETURN_IF_ERROR(CheckNameValid(name));
  std::string key(name);
  if (children_.count(key) != 0) {
    return ExistsError(key);
  }
  auto child = std::make_shared<MemVnode>(fs_, VnodeType::kRegular, fs_->NextFileId());
  child->mode_ = attr.mode;
  child->uid_ = attr.uid;
  child->gid_ = attr.gid;
  children_[key] = child;
  mtime_ = fs_->Now();
  return VnodePtr(child);
}

Status MemVnode::Remove(std::string_view name, const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  auto it = children_.find(std::string(name));
  if (it == children_.end()) {
    return NotFoundError(std::string(name));
  }
  if (it->second->type_ == VnodeType::kDirectory) {
    return IsDirError("use rmdir for directories");
  }
  if (it->second->nlink_ > 0) {
    --it->second->nlink_;
  }
  children_.erase(it);
  mtime_ = fs_->Now();
  return OkStatus();
}

StatusOr<VnodePtr> MemVnode::Mkdir(std::string_view name, const VAttr& attr,
                                   const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_RETURN_IF_ERROR(CheckNameValid(name));
  std::string key(name);
  if (children_.count(key) != 0) {
    return ExistsError(key);
  }
  auto child = std::make_shared<MemVnode>(fs_, VnodeType::kDirectory, fs_->NextFileId());
  child->mode_ = attr.mode != 0 ? attr.mode : 0755;
  child->uid_ = attr.uid;
  child->gid_ = attr.gid;
  children_[key] = child;
  ++nlink_;
  mtime_ = fs_->Now();
  return VnodePtr(child);
}

Status MemVnode::Rmdir(std::string_view name, const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  auto it = children_.find(std::string(name));
  if (it == children_.end()) {
    return NotFoundError(std::string(name));
  }
  if (it->second->type_ != VnodeType::kDirectory) {
    return NotDirError(std::string(name));
  }
  if (!it->second->children_.empty()) {
    return NotEmptyError(std::string(name));
  }
  children_.erase(it);
  --nlink_;
  mtime_ = fs_->Now();
  return OkStatus();
}

Status MemVnode::Link(std::string_view name, const VnodePtr& target, const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_RETURN_IF_ERROR(CheckNameValid(name));
  auto mem_target = std::dynamic_pointer_cast<MemVnode>(target);
  if (mem_target == nullptr || mem_target->fs_ != fs_) {
    return CrossDeviceError("link target is not in this filesystem");
  }
  if (mem_target->type_ == VnodeType::kDirectory) {
    return IsDirError("cannot hard-link a directory");
  }
  std::string key(name);
  if (children_.count(key) != 0) {
    return ExistsError(key);
  }
  children_[key] = mem_target;
  ++mem_target->nlink_;
  mtime_ = fs_->Now();
  return OkStatus();
}

Status MemVnode::Rename(std::string_view old_name, const VnodePtr& new_parent,
                        std::string_view new_name, const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_RETURN_IF_ERROR(CheckNameValid(new_name));
  auto mem_parent = std::dynamic_pointer_cast<MemVnode>(new_parent);
  if (mem_parent == nullptr || mem_parent->fs_ != fs_) {
    return CrossDeviceError("rename target directory is not in this filesystem");
  }
  FICUS_RETURN_IF_ERROR(mem_parent->CheckDir());
  auto it = children_.find(std::string(old_name));
  if (it == children_.end()) {
    return NotFoundError(std::string(old_name));
  }
  std::shared_ptr<MemVnode> moving = it->second;
  std::string new_key(new_name);
  auto existing = mem_parent->children_.find(new_key);
  if (existing != mem_parent->children_.end()) {
    if (existing->second->type_ == VnodeType::kDirectory &&
        !existing->second->children_.empty()) {
      return NotEmptyError(new_key);
    }
    mem_parent->children_.erase(existing);
  }
  children_.erase(it);
  mem_parent->children_[new_key] = moving;
  if (moving->type_ == VnodeType::kDirectory && mem_parent.get() != this) {
    --nlink_;
    ++mem_parent->nlink_;
  }
  mtime_ = fs_->Now();
  mem_parent->mtime_ = mtime_;
  return OkStatus();
}

StatusOr<std::vector<DirEntry>> MemVnode::Readdir(const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  std::vector<DirEntry> entries;
  entries.reserve(children_.size());
  for (const auto& [name, child] : children_) {
    entries.push_back(DirEntry{name, child->fileid_, child->type_});
  }
  return entries;
}

StatusOr<VnodePtr> MemVnode::Symlink(std::string_view name, std::string_view target,
                                     const OpContext&) {
  FICUS_RETURN_IF_ERROR(CheckDir());
  FICUS_RETURN_IF_ERROR(CheckNameValid(name));
  std::string key(name);
  if (children_.count(key) != 0) {
    return ExistsError(key);
  }
  auto child = std::make_shared<MemVnode>(fs_, VnodeType::kSymlink, fs_->NextFileId());
  child->link_target_ = std::string(target);
  children_[key] = child;
  mtime_ = fs_->Now();
  return VnodePtr(child);
}

StatusOr<std::string> MemVnode::Readlink(const OpContext&) {
  if (type_ != VnodeType::kSymlink) {
    return InvalidArgumentError("vnode is not a symlink");
  }
  return link_target_;
}

Status MemVnode::Open(uint32_t flags, const OpContext&) {
  if ((flags & kOpenTruncate) != 0) {
    if (type_ != VnodeType::kRegular) {
      return IsDirError("cannot truncate a directory");
    }
    data_.clear();
  }
  return OkStatus();
}

Status MemVnode::Close(uint32_t, const OpContext&) { return OkStatus(); }

StatusOr<size_t> MemVnode::Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                                const OpContext&) {
  if (type_ != VnodeType::kRegular) {
    return IsDirError("read on non-regular file");
  }
  out.clear();
  if (offset >= data_.size()) {
    return size_t{0};
  }
  size_t available = data_.size() - static_cast<size_t>(offset);
  size_t count = std::min(length, available);
  out.assign(data_.begin() + static_cast<ptrdiff_t>(offset),
             data_.begin() + static_cast<ptrdiff_t>(offset + count));
  return count;
}

StatusOr<size_t> MemVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                 const OpContext&) {
  if (type_ != VnodeType::kRegular) {
    return IsDirError("write on non-regular file");
  }
  size_t end = static_cast<size_t>(offset) + data.size();
  if (end > data_.size()) {
    data_.resize(end, 0);
  }
  std::copy(data.begin(), data.end(), data_.begin() + static_cast<ptrdiff_t>(offset));
  mtime_ = fs_->Now();
  return data.size();
}

Status MemVnode::Fsync(const OpContext&) { return OkStatus(); }

MemVfs::MemVfs(const Clock* clock, uint64_t fsid) : clock_(clock), fsid_(fsid) {
  root_ = std::make_shared<MemVnode>(this, VnodeType::kDirectory, 1);
}

StatusOr<VnodePtr> MemVfs::Root() { return VnodePtr(root_); }

StatusOr<FsStats> MemVfs::Statfs() {
  FsStats stats;
  stats.total_blocks = 0;
  stats.free_blocks = 0;
  stats.total_inodes = next_fileid_;
  stats.free_inodes = 0;
  return stats;
}

}  // namespace ficus::vfs
