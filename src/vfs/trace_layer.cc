#include "src/vfs/trace_layer.h"

#include <chrono>

namespace ficus::vfs {

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}
}  // namespace

TraceSink::TraceSink(MetricRegistry* registry, std::string_view layer_name)
    : layer_name_(layer_name) {
  for (size_t i = 0; i < static_cast<size_t>(VnodeOp::kCount); ++i) {
    std::string base = "trace." + layer_name_ + "." +
                       std::string(VnodeOpName(static_cast<VnodeOp>(i)));
    calls_[i] = registry->counter(base + ".calls");
    ns_[i] = registry->histogram(base + ".ns");
  }
}

void TraceSink::Record(TraceId trace, VnodeOp op, uint64_t ns) {
  size_t i = static_cast<size_t>(op);
  calls_[i]->Increment();
  ns_[i]->Record(ns);
  if (spans_.size() >= kMaxSpans) {
    spans_.erase(spans_.begin(), spans_.begin() + static_cast<ptrdiff_t>(kMaxSpans / 2));
  }
  spans_.push_back(TraceSpan{trace, op, ns});
}

std::vector<TraceSpan> TraceSink::SpansFor(TraceId trace) const {
  std::vector<TraceSpan> out;
  for (const TraceSpan& span : spans_) {
    if (span.trace == trace) {
      out.push_back(span);
    }
  }
  return out;
}

uint64_t TraceSink::Calls(VnodeOp op) const {
  return calls_[static_cast<size_t>(op)]->value();
}

uint64_t TraceSink::TotalNs(VnodeOp op) const {
  return ns_[static_cast<size_t>(op)]->sum();
}

// Times one forwarded call and hands the result back unchanged. A macro
// rather than a template so the forwarded expression is arbitrary.
#define FICUS_TRACE_OP(op, expr)             \
  do {                                       \
    uint64_t start = NowNs();                \
    auto result = (expr);                    \
    sink_->Record(ctx.trace, op, NowNs() - start); \
    return result;                           \
  } while (0)

StatusOr<VAttr> TraceVnode::GetAttr(const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kGetAttr, lower_->GetAttr(ctx));
}

Status TraceVnode::SetAttr(const SetAttrRequest& request, const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kSetAttr, lower_->SetAttr(request, ctx));
}

StatusOr<VnodePtr> TraceVnode::Lookup(std::string_view name, const OpContext& ctx) {
  uint64_t start = NowNs();
  auto result = lower_->Lookup(name, ctx);
  sink_->Record(ctx.trace, VnodeOp::kLookup, NowNs() - start);
  if (!result.ok()) {
    return result;
  }
  return WrapLower(std::move(result).value());
}

StatusOr<VnodePtr> TraceVnode::Create(std::string_view name, const VAttr& attr,
                                      const OpContext& ctx) {
  uint64_t start = NowNs();
  auto result = lower_->Create(name, attr, ctx);
  sink_->Record(ctx.trace, VnodeOp::kCreate, NowNs() - start);
  if (!result.ok()) {
    return result;
  }
  return WrapLower(std::move(result).value());
}

Status TraceVnode::Remove(std::string_view name, const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kRemove, lower_->Remove(name, ctx));
}

StatusOr<VnodePtr> TraceVnode::Mkdir(std::string_view name, const VAttr& attr,
                                     const OpContext& ctx) {
  uint64_t start = NowNs();
  auto result = lower_->Mkdir(name, attr, ctx);
  sink_->Record(ctx.trace, VnodeOp::kMkdir, NowNs() - start);
  if (!result.ok()) {
    return result;
  }
  return WrapLower(std::move(result).value());
}

Status TraceVnode::Rmdir(std::string_view name, const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kRmdir, lower_->Rmdir(name, ctx));
}

Status TraceVnode::Link(std::string_view name, const VnodePtr& target,
                        const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kLink, lower_->Link(name, UnwrapIfOurs(target), ctx));
}

Status TraceVnode::Rename(std::string_view old_name, const VnodePtr& new_parent,
                          std::string_view new_name, const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kRename,
                 lower_->Rename(old_name, UnwrapIfOurs(new_parent), new_name, ctx));
}

StatusOr<std::vector<DirEntry>> TraceVnode::Readdir(const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kReaddir, lower_->Readdir(ctx));
}

StatusOr<std::vector<DirEntryPlus>> TraceVnode::ReaddirPlus(const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kReaddirPlus, lower_->ReaddirPlus(ctx));
}

StatusOr<VnodePtr> TraceVnode::Symlink(std::string_view name, std::string_view target,
                                       const OpContext& ctx) {
  uint64_t start = NowNs();
  auto result = lower_->Symlink(name, target, ctx);
  sink_->Record(ctx.trace, VnodeOp::kSymlink, NowNs() - start);
  if (!result.ok()) {
    return result;
  }
  return WrapLower(std::move(result).value());
}

StatusOr<std::string> TraceVnode::Readlink(const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kReadlink, lower_->Readlink(ctx));
}

Status TraceVnode::Open(uint32_t flags, const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kOpen, lower_->Open(flags, ctx));
}

Status TraceVnode::Close(uint32_t flags, const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kClose, lower_->Close(flags, ctx));
}

StatusOr<size_t> TraceVnode::Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                                  const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kRead, lower_->Read(offset, length, out, ctx));
}

StatusOr<size_t> TraceVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                   const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kWrite, lower_->Write(offset, data, ctx));
}

Status TraceVnode::Fsync(const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kFsync, lower_->Fsync(ctx));
}

Status TraceVnode::Ioctl(std::string_view command, const std::vector<uint8_t>& request,
                         std::vector<uint8_t>& response, const OpContext& ctx) {
  FICUS_TRACE_OP(VnodeOp::kIoctl, lower_->Ioctl(command, request, response, ctx));
}

#undef FICUS_TRACE_OP

VnodePtr TraceVnode::WrapLower(VnodePtr lower) {
  return std::make_shared<TraceVnode>(std::move(lower), sink_);
}

TraceVfs::TraceVfs(Vfs* lower, std::string_view layer_name, MetricRegistry* registry)
    : lower_(lower),
      registry_(registry != nullptr ? registry : &owned_registry_),
      sink_(registry_, layer_name) {}

StatusOr<VnodePtr> TraceVfs::Root() {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, lower_->Root());
  return VnodePtr(std::make_shared<TraceVnode>(std::move(root), &sink_));
}

}  // namespace ficus::vfs
