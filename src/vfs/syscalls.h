// The "System Calls" box at the top of the paper's Figure 1: a POSIX-ish
// file-descriptor API over any vnode stack. This is the veneer the Unix
// system-call family provides above the vnode interface — open/close with
// an fd table, positioned read/write with per-descriptor offsets, lseek,
// symlink-following path resolution with a loop bound.
//
// It also embodies the paper's section-5 methodology: the vnode interface
// "exposed to the application level through a set of vnode system calls",
// letting everything above the kernel boundary run and be tested in user
// space.
//
// This is also where each operation's OpContext is born: every public
// entry point mints a fresh trace id, stamps the per-op deadline (when a
// clock and timeout are configured), and threads the context through
// every vnode call it makes — so a deadline set here is honored at any
// depth of the stack, including below an NFS hop.
#ifndef FICUS_SRC_VFS_SYSCALLS_H_
#define FICUS_SRC_VFS_SYSCALLS_H_

#include <map>
#include <mutex>
#include <string>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/vfs/vnode.h"

namespace ficus::vfs {

using Fd = int;

// open(2) flags, OR-able. kCreat creates the file if absent; kExcl with
// kCreat fails if it exists; kTrunc empties it; kAppend positions every
// write at EOF.
enum SysOpenFlags : uint32_t {
  kRdOnly = 0,
  kWrOnly = 1u << 0,
  kRdWr = 1u << 1,
  kCreat = 1u << 2,
  kExcl = 1u << 3,
  kTrunc = 1u << 4,
  kAppend = 1u << 5,
};

enum class Whence { kSet, kCur, kEnd };

// Maximum symlink expansions in one path resolution (ELOOP beyond it).
constexpr int kMaxSymlinkDepth = 8;

// One process's view of a mounted vnode stack. Thread-safe: an interface
// mutex serializes the fd table (like a process's file table lock), and
// the data-path operations additionally take the target vnode's
// LockObject() so a read-modify-write on one file (append, offset
// advance) is atomic even against another interface sharing the stack.
class SyscallInterface {
 public:
  // fs borrowed; cred applied to every operation. `clock` (borrowed,
  // optional) enables per-op deadlines; `metrics` (borrowed, optional)
  // receives `syscall.<op>` call counters.
  explicit SyscallInterface(Vfs* fs, Credentials cred = {},
                            const Clock* clock = nullptr,
                            MetricRegistry* metrics = nullptr);

  // Per-operation time budget (simulated). 0 disables. Requires a clock;
  // each entry point stamps deadline = now + timeout into its OpContext,
  // and any layer below — local or across an NFS hop — may refuse the
  // rest of the work with kTimedOut once the clock passes it.
  void set_op_timeout(SimTime timeout) { op_timeout_ = timeout; }
  SimTime op_timeout() const { return op_timeout_; }

  // Trace id stamped on the most recent operation (0 before the first).
  TraceId last_trace() const { return last_trace_; }

  // --- file descriptors ---
  StatusOr<Fd> Open(const std::string& path, uint32_t flags);
  Status Close(Fd fd);
  // read(2)/write(2): advance the descriptor offset.
  StatusOr<size_t> Read(Fd fd, std::vector<uint8_t>& out, size_t count);
  StatusOr<size_t> Write(Fd fd, const std::vector<uint8_t>& data);
  StatusOr<uint64_t> Lseek(Fd fd, int64_t offset, Whence whence);
  // pread(2)/pwrite(2): positioned, do not move the offset.
  StatusOr<size_t> Pread(Fd fd, uint64_t offset, std::vector<uint8_t>& out, size_t count);
  StatusOr<size_t> Pwrite(Fd fd, uint64_t offset, const std::vector<uint8_t>& data);
  StatusOr<VAttr> Fstat(Fd fd);
  Status Ftruncate(Fd fd, uint64_t size);

  // --- path operations (all follow symlinks except the l-variants) ---
  StatusOr<VAttr> Stat(const std::string& path);
  StatusOr<VAttr> Lstat(const std::string& path);
  Status Mkdir(const std::string& path);
  Status Rmdir(const std::string& path);
  Status Unlink(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  Status Link(const std::string& target, const std::string& link_path);
  Status Symlink(const std::string& target, const std::string& link_path);
  StatusOr<std::string> Readlink(const std::string& path);
  StatusOr<std::vector<DirEntry>> Readdir(const std::string& path);

  size_t open_files() const { return fds_.size(); }

 private:
  struct OpenFile {
    VnodePtr vnode;
    uint64_t offset = 0;
    uint32_t flags = 0;
  };

  // Mints the context one dispatched operation carries through the stack:
  // fresh trace id, deadline (when configured), metric sink.
  OpContext NewOp(std::string_view name);

  // Resolves a path following symlinks in intermediate AND (optionally)
  // final components.
  StatusOr<VnodePtr> Resolve(const std::string& path, bool follow_final,
                             const OpContext& ctx, int depth = 0);
  // Resolves the parent directory and returns it plus the final component.
  StatusOr<std::pair<VnodePtr, std::string>> ResolveParent(const std::string& path,
                                                           const OpContext& ctx,
                                                           int depth = 0);
  StatusOr<OpenFile*> Lookup(Fd fd);

  // Serializes this interface's public entry points (fd table, trace id).
  mutable std::mutex mu_;
  Vfs* fs_;
  Credentials cred_;
  const Clock* clock_;
  MetricScope metrics_;
  SimTime op_timeout_ = 0;
  TraceId last_trace_ = 0;
  std::map<Fd, OpenFile> fds_;
  Fd next_fd_ = 3;  // 0..2 reserved, as tradition demands
};

}  // namespace ficus::vfs

#endif  // FICUS_SRC_VFS_SYSCALLS_H_
