#include "src/vfs/cipher_layer.h"

namespace ficus::vfs {

namespace {
// Position-dependent key byte: mixes the key with the absolute offset so
// identical plaintext blocks at different offsets produce different
// ciphertext (and random access needs no chaining state).
uint8_t KeyByte(uint64_t key, uint64_t offset) {
  uint64_t x = key ^ (offset * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  return static_cast<uint8_t>(x);
}
}  // namespace

void CipherApply(uint64_t key, uint64_t offset, std::vector<uint8_t>& data) {
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= KeyByte(key, offset + i);
  }
}

VnodePtr CipherVnode::WrapLower(VnodePtr lower) {
  return std::make_shared<CipherVnode>(std::move(lower), key_);
}

StatusOr<size_t> CipherVnode::Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                                   const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(size_t n, PassThroughVnode::Read(offset, length, out, ctx));
  CipherApply(key_, offset, out);
  return n;
}

StatusOr<size_t> CipherVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                    const OpContext& ctx) {
  std::vector<uint8_t> enciphered = data;
  CipherApply(key_, offset, enciphered);
  return PassThroughVnode::Write(offset, enciphered, ctx);
}

StatusOr<VnodePtr> CipherVfs::Root() {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, lower_->Root());
  return VnodePtr(std::make_shared<CipherVnode>(std::move(root), key_));
}

}  // namespace ficus::vfs
