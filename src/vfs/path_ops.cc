#include "src/vfs/path_ops.h"

namespace ficus::vfs {

Status MkdirAll(Vfs* fs, std::string_view path, const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr current, fs->Root());
  size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') {
      ++pos;
    }
    if (pos >= path.size()) {
      break;
    }
    size_t end = path.find('/', pos);
    if (end == std::string_view::npos) {
      end = path.size();
    }
    std::string_view component = path.substr(pos, end - pos);
    auto child = current->Lookup(component, ctx);
    if (child.ok()) {
      current = std::move(child).value();
    } else if (child.status().code() == ErrorCode::kNotFound) {
      FICUS_ASSIGN_OR_RETURN(current, current->Mkdir(component, VAttr{}, ctx));
    } else {
      return child.status();
    }
    pos = end;
  }
  return OkStatus();
}

Status WriteFileAt(Vfs* fs, std::string_view path, std::string_view contents,
                   const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(auto split, SplitPath(path));
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, fs->Root());
  FICUS_ASSIGN_OR_RETURN(VnodePtr dir, WalkPath(root, split.first, ctx));
  VnodePtr file;
  auto existing = dir->Lookup(split.second, ctx);
  if (existing.ok()) {
    file = std::move(existing).value();
    FICUS_RETURN_IF_ERROR(file->Open(kOpenWrite | kOpenTruncate, ctx));
  } else if (existing.status().code() == ErrorCode::kNotFound) {
    VAttr attr;
    attr.type = VnodeType::kRegular;
    FICUS_ASSIGN_OR_RETURN(file, dir->Create(split.second, attr, ctx));
    FICUS_RETURN_IF_ERROR(file->Open(kOpenWrite, ctx));
  } else {
    return existing.status();
  }
  std::vector<uint8_t> bytes(contents.begin(), contents.end());
  FICUS_RETURN_IF_ERROR(file->Write(0, bytes, ctx).status());
  return file->Close(kOpenWrite, ctx);
}

StatusOr<std::string> ReadFileAt(Vfs* fs, std::string_view path, const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, fs->Root());
  FICUS_ASSIGN_OR_RETURN(VnodePtr file, WalkPath(root, path, ctx));
  FICUS_ASSIGN_OR_RETURN(VAttr attr, file->GetAttr());
  std::vector<uint8_t> bytes;
  FICUS_RETURN_IF_ERROR(file->Read(0, static_cast<size_t>(attr.size), bytes, ctx).status());
  return std::string(bytes.begin(), bytes.end());
}

StatusOr<std::string> OpenReadClose(Vfs* fs, std::string_view path, const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, fs->Root());
  FICUS_ASSIGN_OR_RETURN(VnodePtr file, WalkPath(root, path, ctx));
  FICUS_RETURN_IF_ERROR(file->Open(kOpenRead, ctx));
  FICUS_ASSIGN_OR_RETURN(VAttr attr, file->GetAttr());
  std::vector<uint8_t> bytes;
  Status read = file->Read(0, static_cast<size_t>(attr.size), bytes, ctx).status();
  Status closed = file->Close(kOpenRead, ctx);
  FICUS_RETURN_IF_ERROR(read);
  FICUS_RETURN_IF_ERROR(closed);
  return std::string(bytes.begin(), bytes.end());
}

Status RemovePath(Vfs* fs, std::string_view path, const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(auto split, SplitPath(path));
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, fs->Root());
  FICUS_ASSIGN_OR_RETURN(VnodePtr dir, WalkPath(root, split.first, ctx));
  FICUS_ASSIGN_OR_RETURN(VnodePtr target, dir->Lookup(split.second, ctx));
  FICUS_ASSIGN_OR_RETURN(VAttr attr, target->GetAttr());
  if (attr.type == VnodeType::kDirectory || attr.type == VnodeType::kGraftPoint) {
    return dir->Rmdir(split.second, ctx);
  }
  return dir->Remove(split.second, ctx);
}

StatusOr<std::vector<DirEntry>> ListDir(Vfs* fs, std::string_view path,
                                        const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, fs->Root());
  FICUS_ASSIGN_OR_RETURN(VnodePtr dir, WalkPath(root, path, ctx));
  return dir->Readdir(ctx);
}

bool Exists(Vfs* fs, std::string_view path, const OpContext& ctx) {
  auto root = fs->Root();
  if (!root.ok()) {
    return false;
  }
  return WalkPath(root.value(), path, ctx).ok();
}

Status RenamePath(Vfs* fs, std::string_view old_path, std::string_view new_path,
                  const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(auto old_split, SplitPath(old_path));
  FICUS_ASSIGN_OR_RETURN(auto new_split, SplitPath(new_path));
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, fs->Root());
  FICUS_ASSIGN_OR_RETURN(VnodePtr old_dir, WalkPath(root, old_split.first, ctx));
  FICUS_ASSIGN_OR_RETURN(VnodePtr new_dir, WalkPath(root, new_split.first, ctx));
  return old_dir->Rename(old_split.second, new_dir, new_split.second, ctx);
}

}  // namespace ficus::vfs
