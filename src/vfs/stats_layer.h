// A measurement layer (paper section 1: "we expect to use it for
// performance monitoring ..."). Slips into any vnode stack and counts
// every operation that crosses it, per operation type — demonstrating the
// object-oriented-inheritance style of layer construction: it subclasses
// the pass-through layer and overrides only to observe.
#ifndef FICUS_SRC_VFS_STATS_LAYER_H_
#define FICUS_SRC_VFS_STATS_LAYER_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/vfs/pass_through.h"

namespace ficus::vfs {

// Indices into the per-operation counter array.
enum class VnodeOp : size_t {
  kGetAttr = 0,
  kSetAttr,
  kLookup,
  kCreate,
  kRemove,
  kMkdir,
  kRmdir,
  kLink,
  kRename,
  kReaddir,
  kSymlink,
  kReadlink,
  kOpen,
  kClose,
  kRead,
  kWrite,
  kFsync,
  kIoctl,
  kCount,  // sentinel
};

std::string_view VnodeOpName(VnodeOp op);

// Counters shared by every vnode of one StatsVfs instance.
struct OpCounters {
  std::array<uint64_t, static_cast<size_t>(VnodeOp::kCount)> calls{};
  std::array<uint64_t, static_cast<size_t>(VnodeOp::kCount)> errors{};
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  uint64_t Calls(VnodeOp op) const { return calls[static_cast<size_t>(op)]; }
  uint64_t Errors(VnodeOp op) const { return errors[static_cast<size_t>(op)]; }
  uint64_t TotalCalls() const;

  // Multi-line human-readable table of the non-zero counters.
  std::string ToString() const;
};

class StatsVnode : public PassThroughVnode {
 public:
  StatsVnode(VnodePtr lower, OpCounters* counters)
      : PassThroughVnode(std::move(lower)), counters_(counters) {}

  StatusOr<VAttr> GetAttr() override;
  Status SetAttr(const SetAttrRequest& request, const Credentials& cred) override;
  StatusOr<VnodePtr> Lookup(std::string_view name, const Credentials& cred) override;
  StatusOr<VnodePtr> Create(std::string_view name, const VAttr& attr,
                            const Credentials& cred) override;
  Status Remove(std::string_view name, const Credentials& cred) override;
  StatusOr<VnodePtr> Mkdir(std::string_view name, const VAttr& attr,
                           const Credentials& cred) override;
  Status Rmdir(std::string_view name, const Credentials& cred) override;
  Status Link(std::string_view name, const VnodePtr& target, const Credentials& cred) override;
  Status Rename(std::string_view old_name, const VnodePtr& new_parent,
                std::string_view new_name, const Credentials& cred) override;
  StatusOr<std::vector<DirEntry>> Readdir(const Credentials& cred) override;
  StatusOr<VnodePtr> Symlink(std::string_view name, std::string_view target,
                             const Credentials& cred) override;
  StatusOr<std::string> Readlink(const Credentials& cred) override;
  Status Open(uint32_t flags, const Credentials& cred) override;
  Status Close(uint32_t flags, const Credentials& cred) override;
  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const Credentials& cred) override;
  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const Credentials& cred) override;
  Status Fsync(const Credentials& cred) override;
  Status Ioctl(std::string_view command, const std::vector<uint8_t>& request,
               std::vector<uint8_t>& response, const Credentials& cred) override;

 protected:
  VnodePtr WrapLower(VnodePtr lower) override;

 private:
  // Tallies a call and its outcome; returns the status unchanged.
  Status Count(VnodeOp op, Status status);
  template <typename T>
  StatusOr<T> Count(VnodeOp op, StatusOr<T> result) {
    ++counters_->calls[static_cast<size_t>(op)];
    if (!result.ok()) {
      ++counters_->errors[static_cast<size_t>(op)];
    }
    return result;
  }

  OpCounters* counters_;
};

class StatsVfs : public Vfs {
 public:
  explicit StatsVfs(Vfs* lower) : lower_(lower) {}

  StatusOr<VnodePtr> Root() override;
  Status Sync() override { return lower_->Sync(); }
  StatusOr<FsStats> Statfs() override { return lower_->Statfs(); }

  const OpCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = OpCounters{}; }

 private:
  Vfs* lower_;
  OpCounters counters_;
};

}  // namespace ficus::vfs

#endif  // FICUS_SRC_VFS_STATS_LAYER_H_
