// A measurement layer (paper section 1: "we expect to use it for
// performance monitoring ..."). Slips into any vnode stack and counts
// every operation that crosses it, per operation type — demonstrating the
// object-oriented-inheritance style of layer construction: it subclasses
// the pass-through layer and overrides only to observe.
#ifndef FICUS_SRC_VFS_STATS_LAYER_H_
#define FICUS_SRC_VFS_STATS_LAYER_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/metrics.h"
#include "src/vfs/pass_through.h"

namespace ficus::vfs {

// Indices into the per-operation counter array.
enum class VnodeOp : size_t {
  kGetAttr = 0,
  kSetAttr,
  kLookup,
  kCreate,
  kRemove,
  kMkdir,
  kRmdir,
  kLink,
  kRename,
  kReaddir,
  kSymlink,
  kReadlink,
  kOpen,
  kClose,
  kRead,
  kWrite,
  kFsync,
  kIoctl,
  kReaddirPlus,
  kCount,  // sentinel
};

std::string_view VnodeOpName(VnodeOp op);

// Snapshot of one StatsVfs instance's counters. The live cells are
// MetricRegistry counters (see OpCounterCells); this struct is the thin
// compatibility view existing callers and tests consume.
struct OpCounters {
  std::array<uint64_t, static_cast<size_t>(VnodeOp::kCount)> calls{};
  std::array<uint64_t, static_cast<size_t>(VnodeOp::kCount)> errors{};
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  uint64_t Calls(VnodeOp op) const { return calls[static_cast<size_t>(op)]; }
  uint64_t Errors(VnodeOp op) const { return errors[static_cast<size_t>(op)]; }
  uint64_t TotalCalls() const;

  // Multi-line human-readable table of the non-zero counters.
  std::string ToString() const;
};

// Registry-backed counter cells shared by every vnode of one StatsVfs
// instance: "<prefix><op>.calls", "<prefix><op>.errors",
// "<prefix>bytes_read", "<prefix>bytes_written". Resolved once at
// construction so the per-op cost is one pointer increment.
struct OpCounterCells {
  std::array<Counter*, static_cast<size_t>(VnodeOp::kCount)> calls{};
  std::array<Counter*, static_cast<size_t>(VnodeOp::kCount)> errors{};
  Counter* bytes_read = nullptr;
  Counter* bytes_written = nullptr;

  OpCounterCells() = default;
  OpCounterCells(MetricRegistry* registry, std::string_view prefix);

  OpCounters Snapshot() const;
  // Zeroes only this instance's cells (a shared registry keeps the rest).
  void Reset() const;
};

class StatsVnode : public PassThroughVnode {
 public:
  StatsVnode(VnodePtr lower, const OpCounterCells* cells)
      : PassThroughVnode(std::move(lower)), cells_(cells) {}

  StatusOr<VAttr> GetAttr(const OpContext& ctx = {}) override;
  Status SetAttr(const SetAttrRequest& request, const OpContext& ctx) override;
  StatusOr<VnodePtr> Lookup(std::string_view name, const OpContext& ctx) override;
  StatusOr<VnodePtr> Create(std::string_view name, const VAttr& attr,
                            const OpContext& ctx) override;
  Status Remove(std::string_view name, const OpContext& ctx) override;
  StatusOr<VnodePtr> Mkdir(std::string_view name, const VAttr& attr,
                           const OpContext& ctx) override;
  Status Rmdir(std::string_view name, const OpContext& ctx) override;
  Status Link(std::string_view name, const VnodePtr& target, const OpContext& ctx) override;
  Status Rename(std::string_view old_name, const VnodePtr& new_parent,
                std::string_view new_name, const OpContext& ctx) override;
  StatusOr<std::vector<DirEntry>> Readdir(const OpContext& ctx) override;
  StatusOr<std::vector<DirEntryPlus>> ReaddirPlus(const OpContext& ctx) override;
  StatusOr<VnodePtr> Symlink(std::string_view name, std::string_view target,
                             const OpContext& ctx) override;
  StatusOr<std::string> Readlink(const OpContext& ctx) override;
  Status Open(uint32_t flags, const OpContext& ctx) override;
  Status Close(uint32_t flags, const OpContext& ctx) override;
  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const OpContext& ctx) override;
  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const OpContext& ctx) override;
  Status Fsync(const OpContext& ctx) override;
  Status Ioctl(std::string_view command, const std::vector<uint8_t>& request,
               std::vector<uint8_t>& response, const OpContext& ctx) override;

 protected:
  VnodePtr WrapLower(VnodePtr lower) override;

 private:
  // Tallies a call and its outcome; returns the status unchanged.
  Status Count(VnodeOp op, Status status);
  template <typename T>
  StatusOr<T> Count(VnodeOp op, StatusOr<T> result) {
    cells_->calls[static_cast<size_t>(op)]->Increment();
    if (!result.ok()) {
      cells_->errors[static_cast<size_t>(op)]->Increment();
    }
    return result;
  }

  const OpCounterCells* cells_;
};

class StatsVfs : public Vfs {
 public:
  // Counts into `registry` under `prefix` — pass a shared registry to
  // unify this layer's counters with the rest of the stack, or omit it
  // to use an internally owned one.
  explicit StatsVfs(Vfs* lower, MetricRegistry* registry = nullptr,
                    std::string_view prefix = "vfs.stats.");

  StatusOr<VnodePtr> Root() override;
  Status Sync() override { return lower_->Sync(); }
  StatusOr<FsStats> Statfs() override { return lower_->Statfs(); }

  // Compatibility snapshot of the registry-backed cells.
  OpCounters counters() const { return cells_.Snapshot(); }
  void ResetCounters() { cells_.Reset(); }

  MetricRegistry* metrics() { return registry_; }

 private:
  Vfs* lower_;
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  OpCounterCells cells_;
};

}  // namespace ficus::vfs

#endif  // FICUS_SRC_VFS_STATS_LAYER_H_
