#include "src/vfs/syscalls.h"

#include <mutex>

namespace ficus::vfs {

SyscallInterface::SyscallInterface(Vfs* fs, Credentials cred, const Clock* clock,
                                   MetricRegistry* metrics)
    : fs_(fs), cred_(cred), clock_(clock), metrics_(metrics, "syscall.") {}

OpContext SyscallInterface::NewOp(std::string_view name) {
  OpContext ctx(cred_);
  ctx.trace = NextTraceId();
  last_trace_ = ctx.trace;
  ctx.clock = clock_;
  if (clock_ != nullptr && op_timeout_ != 0) {
    ctx.deadline = clock_->Now() + op_timeout_;
  }
  if (metrics_.registry() != nullptr) {
    ctx.metrics = &metrics_;
    metrics_.IncrementCounter(name);
  }
  return ctx;
}

StatusOr<SyscallInterface::OpenFile*> SyscallInterface::Lookup(Fd fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return InvalidArgumentError("bad file descriptor " + std::to_string(fd));
  }
  return &it->second;
}

StatusOr<VnodePtr> SyscallInterface::Resolve(const std::string& path, bool follow_final,
                                             const OpContext& ctx, int depth) {
  if (depth > kMaxSymlinkDepth) {
    return InvalidArgumentError("too many levels of symbolic links");
  }
  FICUS_ASSIGN_OR_RETURN(VnodePtr current, fs_->Root());
  size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') {
      ++pos;
    }
    if (pos >= path.size()) {
      break;
    }
    size_t end = path.find('/', pos);
    if (end == std::string::npos) {
      end = path.size();
    }
    std::string component = path.substr(pos, end - pos);
    bool is_final = end >= path.size();
    if (component == ".") {
      pos = end;
      continue;
    }
    // A lower layer (an NFS hop, say) may have burned the whole budget on
    // the previous component; stop walking rather than issue more calls.
    FICUS_RETURN_IF_ERROR(ctx.CheckDeadline("syscall.resolve"));
    FICUS_ASSIGN_OR_RETURN(VnodePtr child, current->Lookup(component, ctx));
    FICUS_ASSIGN_OR_RETURN(VAttr attr, child->GetAttr(ctx));
    if (attr.type == VnodeType::kSymlink && (!is_final || follow_final)) {
      FICUS_ASSIGN_OR_RETURN(std::string target, child->Readlink(ctx));
      // Splice: resolve the target (relative to the root in this veneer),
      // then continue with the remaining components.
      std::string rest = is_final ? "" : path.substr(end);
      FICUS_ASSIGN_OR_RETURN(VnodePtr resolved,
                             Resolve(target + rest, follow_final, ctx, depth + 1));
      return resolved;
    }
    current = std::move(child);
    pos = end;
  }
  return current;
}

StatusOr<std::pair<VnodePtr, std::string>> SyscallInterface::ResolveParent(
    const std::string& path, const OpContext& ctx, int depth) {
  FICUS_ASSIGN_OR_RETURN(auto split, SplitPath(path));
  FICUS_ASSIGN_OR_RETURN(VnodePtr parent,
                         Resolve(split.first, /*follow_final=*/true, ctx, depth));
  return std::make_pair(std::move(parent), split.second);
}

StatusOr<Fd> SyscallInterface::Open(const std::string& path, uint32_t flags) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("open");
  VnodePtr vnode;
  auto resolved = Resolve(path, /*follow_final=*/true, ctx);
  if (resolved.ok()) {
    if ((flags & kCreat) != 0 && (flags & kExcl) != 0) {
      return ExistsError(path);
    }
    vnode = std::move(resolved).value();
  } else if (resolved.status().code() == ErrorCode::kNotFound && (flags & kCreat) != 0) {
    FICUS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path, ctx));
    VAttr attr;
    attr.type = VnodeType::kRegular;
    attr.uid = cred_.uid;
    auto created = parent.first->Create(parent.second, attr, ctx);
    if (!created.ok() && created.status().code() == ErrorCode::kExists &&
        (flags & kExcl) == 0) {
      // Lost the create race (another client or a propagation install
      // landed between our lookup miss and the create). O_CREAT without
      // O_EXCL means the existing file wins: open it.
      created = parent.first->Lookup(parent.second, ctx);
    }
    FICUS_ASSIGN_OR_RETURN(vnode, std::move(created));
  } else {
    return resolved.status();
  }

  FICUS_ASSIGN_OR_RETURN(VAttr attr, vnode->GetAttr(ctx));
  bool writable = (flags & (kWrOnly | kRdWr | kAppend | kTrunc)) != 0;
  if (writable && (attr.type == VnodeType::kDirectory ||
                   attr.type == VnodeType::kGraftPoint)) {
    return IsDirError(path);
  }

  uint32_t vnode_flags = kOpenRead;
  if (writable) {
    vnode_flags |= kOpenWrite;
  }
  if ((flags & kTrunc) != 0) {
    vnode_flags |= kOpenTruncate;
  }
  FICUS_RETURN_IF_ERROR(vnode->Open(vnode_flags, ctx));

  Fd fd = next_fd_++;
  fds_[fd] = OpenFile{std::move(vnode), 0, flags};
  return fd;
}

Status SyscallInterface::Close(Fd fd) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("close");
  FICUS_ASSIGN_OR_RETURN(OpenFile * file, Lookup(fd));
  Status status = file->vnode->Close(kOpenRead, ctx);
  fds_.erase(fd);
  return status;
}

StatusOr<size_t> SyscallInterface::Read(Fd fd, std::vector<uint8_t>& out, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("read");
  FICUS_ASSIGN_OR_RETURN(OpenFile * file, Lookup(fd));
  VnodeLockGuard vnode_lock(file->vnode);
  FICUS_ASSIGN_OR_RETURN(size_t n, file->vnode->Read(file->offset, count, out, ctx));
  file->offset += n;
  return n;
}

StatusOr<size_t> SyscallInterface::Write(Fd fd, const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("write");
  FICUS_ASSIGN_OR_RETURN(OpenFile * file, Lookup(fd));
  VnodeLockGuard vnode_lock(file->vnode);
  if ((file->flags & (kWrOnly | kRdWr | kAppend)) == 0) {
    return PermissionError("descriptor not open for writing");
  }
  if ((file->flags & kAppend) != 0) {
    FICUS_ASSIGN_OR_RETURN(VAttr attr, file->vnode->GetAttr(ctx));
    file->offset = attr.size;
  }
  FICUS_ASSIGN_OR_RETURN(size_t n, file->vnode->Write(file->offset, data, ctx));
  file->offset += n;
  return n;
}

StatusOr<uint64_t> SyscallInterface::Lseek(Fd fd, int64_t offset, Whence whence) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("lseek");
  FICUS_ASSIGN_OR_RETURN(OpenFile * file, Lookup(fd));
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = static_cast<int64_t>(file->offset);
      break;
    case Whence::kEnd: {
      FICUS_ASSIGN_OR_RETURN(VAttr attr, file->vnode->GetAttr(ctx));
      base = static_cast<int64_t>(attr.size);
      break;
    }
  }
  int64_t target = base + offset;
  if (target < 0) {
    return InvalidArgumentError("seek before start of file");
  }
  file->offset = static_cast<uint64_t>(target);
  return file->offset;
}

StatusOr<size_t> SyscallInterface::Pread(Fd fd, uint64_t offset, std::vector<uint8_t>& out,
                                         size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("pread");
  FICUS_ASSIGN_OR_RETURN(OpenFile * file, Lookup(fd));
  VnodeLockGuard vnode_lock(file->vnode);
  return file->vnode->Read(offset, count, out, ctx);
}

StatusOr<size_t> SyscallInterface::Pwrite(Fd fd, uint64_t offset,
                                          const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("pwrite");
  FICUS_ASSIGN_OR_RETURN(OpenFile * file, Lookup(fd));
  VnodeLockGuard vnode_lock(file->vnode);
  if ((file->flags & (kWrOnly | kRdWr | kAppend)) == 0) {
    return PermissionError("descriptor not open for writing");
  }
  return file->vnode->Write(offset, data, ctx);
}

StatusOr<VAttr> SyscallInterface::Fstat(Fd fd) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("fstat");
  FICUS_ASSIGN_OR_RETURN(OpenFile * file, Lookup(fd));
  VnodeLockGuard vnode_lock(file->vnode);
  return file->vnode->GetAttr(ctx);
}

Status SyscallInterface::Ftruncate(Fd fd, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("ftruncate");
  FICUS_ASSIGN_OR_RETURN(OpenFile * file, Lookup(fd));
  VnodeLockGuard vnode_lock(file->vnode);
  SetAttrRequest request;
  request.set_size = true;
  request.size = size;
  return file->vnode->SetAttr(request, ctx);
}

StatusOr<VAttr> SyscallInterface::Stat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("stat");
  FICUS_ASSIGN_OR_RETURN(VnodePtr vnode, Resolve(path, /*follow_final=*/true, ctx));
  return vnode->GetAttr(ctx);
}

StatusOr<VAttr> SyscallInterface::Lstat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("lstat");
  FICUS_ASSIGN_OR_RETURN(VnodePtr vnode, Resolve(path, /*follow_final=*/false, ctx));
  return vnode->GetAttr(ctx);
}

Status SyscallInterface::Mkdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("mkdir");
  FICUS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path, ctx));
  return parent.first->Mkdir(parent.second, VAttr{}, ctx).status();
}

Status SyscallInterface::Rmdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("rmdir");
  FICUS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path, ctx));
  return parent.first->Rmdir(parent.second, ctx);
}

Status SyscallInterface::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("unlink");
  FICUS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path, ctx));
  return parent.first->Remove(parent.second, ctx);
}

Status SyscallInterface::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("rename");
  FICUS_ASSIGN_OR_RETURN(auto from_parent, ResolveParent(from, ctx));
  FICUS_ASSIGN_OR_RETURN(auto to_parent, ResolveParent(to, ctx));
  return from_parent.first->Rename(from_parent.second, to_parent.first, to_parent.second,
                                   ctx);
}

Status SyscallInterface::Link(const std::string& target, const std::string& link_path) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("link");
  FICUS_ASSIGN_OR_RETURN(VnodePtr target_vnode, Resolve(target, /*follow_final=*/true, ctx));
  FICUS_ASSIGN_OR_RETURN(auto parent, ResolveParent(link_path, ctx));
  return parent.first->Link(parent.second, target_vnode, ctx);
}

Status SyscallInterface::Symlink(const std::string& target, const std::string& link_path) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("symlink");
  FICUS_ASSIGN_OR_RETURN(auto parent, ResolveParent(link_path, ctx));
  return parent.first->Symlink(parent.second, target, ctx).status();
}

StatusOr<std::string> SyscallInterface::Readlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("readlink");
  FICUS_ASSIGN_OR_RETURN(VnodePtr vnode, Resolve(path, /*follow_final=*/false, ctx));
  return vnode->Readlink(ctx);
}

StatusOr<std::vector<DirEntry>> SyscallInterface::Readdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  OpContext ctx = NewOp("readdir");
  FICUS_ASSIGN_OR_RETURN(VnodePtr vnode, Resolve(path, /*follow_final=*/true, ctx));
  return vnode->Readdir(ctx);
}

}  // namespace ficus::vfs
