// In-memory filesystem implementing the vnode interface. Used to test the
// interface itself and the layers above it (null layer, NFS) without paying
// for simulated disk I/O, and as the zero-I/O floor in layer-cost benches.
#ifndef FICUS_SRC_VFS_MEM_VFS_H_
#define FICUS_SRC_VFS_MEM_VFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/vfs/vnode.h"

namespace ficus::vfs {

class MemVfs;

// A node in the in-memory tree. Directories keep a sorted name -> node map;
// regular files keep their bytes; symlinks keep their target string.
class MemVnode : public Vnode, public std::enable_shared_from_this<MemVnode> {
 public:
  MemVnode(MemVfs* fs, VnodeType type, uint64_t fileid);

  StatusOr<VAttr> GetAttr(const OpContext& ctx = {}) override;
  Status SetAttr(const SetAttrRequest& request, const OpContext& ctx) override;
  StatusOr<VnodePtr> Lookup(std::string_view name, const OpContext& ctx) override;
  StatusOr<VnodePtr> Create(std::string_view name, const VAttr& attr,
                            const OpContext& ctx) override;
  Status Remove(std::string_view name, const OpContext& ctx) override;
  StatusOr<VnodePtr> Mkdir(std::string_view name, const VAttr& attr,
                           const OpContext& ctx) override;
  Status Rmdir(std::string_view name, const OpContext& ctx) override;
  Status Link(std::string_view name, const VnodePtr& target, const OpContext& ctx) override;
  Status Rename(std::string_view old_name, const VnodePtr& new_parent,
                std::string_view new_name, const OpContext& ctx) override;
  StatusOr<std::vector<DirEntry>> Readdir(const OpContext& ctx) override;
  StatusOr<VnodePtr> Symlink(std::string_view name, std::string_view target,
                             const OpContext& ctx) override;
  StatusOr<std::string> Readlink(const OpContext& ctx) override;
  Status Open(uint32_t flags, const OpContext& ctx) override;
  Status Close(uint32_t flags, const OpContext& ctx) override;
  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const OpContext& ctx) override;
  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const OpContext& ctx) override;
  Status Fsync(const OpContext& ctx) override;

  VnodeType type() const { return type_; }
  uint64_t fileid() const { return fileid_; }

 private:
  friend class MemVfs;

  Status CheckDir() const;
  Status CheckNameValid(std::string_view name) const;

  MemVfs* fs_;
  VnodeType type_;
  uint64_t fileid_;
  uint32_t mode_ = 0644;
  uint32_t uid_ = 0;
  uint32_t gid_ = 0;
  uint32_t nlink_ = 1;
  SimTime mtime_ = 0;
  SimTime ctime_ = 0;
  std::vector<uint8_t> data_;                          // regular files
  std::map<std::string, std::shared_ptr<MemVnode>> children_;  // directories
  std::string link_target_;                            // symlinks
};

class MemVfs : public Vfs {
 public:
  // clock may be null; mtimes then stay zero.
  explicit MemVfs(const Clock* clock = nullptr, uint64_t fsid = 1);

  StatusOr<VnodePtr> Root() override;
  StatusOr<FsStats> Statfs() override;

  uint64_t fsid() const { return fsid_; }
  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }
  uint64_t NextFileId() { return next_fileid_++; }

 private:
  const Clock* clock_;
  uint64_t fsid_;
  uint64_t next_fileid_ = 2;  // 1 is the root
  std::shared_ptr<MemVnode> root_;
};

}  // namespace ficus::vfs

#endif  // FICUS_SRC_VFS_MEM_VFS_H_
