// The stackable vnode interface (paper sections 2.1-2.4).
//
// Every layer in a Ficus stack — UFS, NFS client/server, Ficus physical,
// Ficus logical, and any measurement or pass-through layer — implements this
// one symmetric interface: the operations a layer exports are exactly the
// operations it uses to call the layer below it. That symmetry is what lets
// layers be inserted transparently (the paper's Figure 1/2) and is the
// property benchmark P1 measures the cost of.
//
// The operation set follows the SunOS vnode interface ("about two dozen
// services", section 2.1): lookup, create, remove, link, rename, mkdir,
// rmdir, readdir, symlink, readlink, open, close, read, write, truncate,
// getattr, setattr, fsync, plus an ioctl-style escape hatch layers may use
// for services the designers of the interface did not anticipate. Ficus
// itself avoids the escape hatch where NFS transparency matters and instead
// overloads lookup (section 2.3); both paths exist here so that choice is
// testable.
#ifndef FICUS_SRC_VFS_VNODE_H_
#define FICUS_SRC_VFS_VNODE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/status.h"

namespace ficus::vfs {

class Vnode;
using VnodePtr = std::shared_ptr<Vnode>;

// File types understood across the stack. Graft points (paper section 4.3)
// are "a special kind of directory": layers that do not know about them
// treat them as directories, the Ficus logical layer interprets them.
enum class VnodeType : uint8_t {
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
  kGraftPoint = 4,
};

// Attributes returned by GetAttr. fileid is unique within one filesystem
// (an inode number for UFS); fsid distinguishes filesystems in a stack.
struct VAttr {
  VnodeType type = VnodeType::kRegular;
  uint32_t mode = 0644;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint32_t nlink = 1;
  uint64_t size = 0;
  SimTime atime = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;
  uint64_t fileid = 0;
  uint64_t fsid = 0;
};

// Subset of attributes a SetAttr call may change; unset fields are ignored.
struct SetAttrRequest {
  bool set_mode = false;
  uint32_t mode = 0;
  bool set_uid = false;
  uint32_t uid = 0;
  bool set_gid = false;
  uint32_t gid = 0;
  bool set_size = false;  // truncate/extend
  uint64_t size = 0;
  bool set_mtime = false;
  SimTime mtime = 0;
};

struct DirEntry {
  std::string name;
  uint64_t fileid = 0;
  VnodeType type = VnodeType::kRegular;
};

// One row of a ReaddirPlus listing: the entry plus the child's
// attributes, so an `ls -l`-shaped scan needs one call per directory
// instead of one Readdir plus one GetAttr per child. `attr` is
// meaningful only when `attr_status` is ok — a layer may be able to list
// a child it cannot currently stat (e.g. an unreachable replica).
struct DirEntryPlus {
  DirEntry entry;
  Status attr_status = OkStatus();
  VAttr attr;
};

// Open mode bits (OR-able).
enum OpenFlags : uint32_t {
  kOpenRead = 1u << 0,
  kOpenWrite = 1u << 1,
  kOpenCreate = 1u << 2,
  kOpenTruncate = 1u << 3,
};

// Caller identity, threaded through operations so layers can enforce or
// audit access. The simulation does not model full Unix permissions; uid 0
// is root, everything else is an ordinary user.
struct Credentials {
  uint32_t uid = 0;
  uint32_t gid = 0;
};

// One operation's cross-layer context, threaded through every vnode call.
// Beyond caller identity it carries a trace id (stamped at the dispatch
// entry point, continued across the NFS wire), an absolute deadline in
// simulated time, the clock that deadline is judged against, and an
// optional metric sink. Layers forward the context they receive so a
// single operation stays one trace however deep the stack is.
//
// Implicitly constructible from Credentials: call sites that only care
// about identity keep writing `node->Lookup(name, cred)` and get a fresh
// context with no trace, deadline, or metrics attached.
struct OpContext {
  Credentials cred;
  TraceId trace = 0;                // 0 = no trace attached
  SimTime deadline = 0;             // absolute sim time; 0 = no deadline
  const Clock* clock = nullptr;  // clock the deadline is judged against
  MetricScope* metrics = nullptr;   // optional per-caller metric sink

  OpContext() = default;
  OpContext(const Credentials& c) : cred(c) {}  // NOLINT(runtime/explicit)

  bool HasDeadline() const { return deadline != 0 && clock != nullptr; }
  bool DeadlineExpired() const { return HasDeadline() && clock->Now() > deadline; }
  // kTimedOut once the clock has passed the deadline; ok otherwise.
  // `where` names the layer/op for the error message.
  Status CheckDeadline(std::string_view where) const;
};

// One vnode: an open-ended handle to a file, directory, symlink, or graft
// point within some layer. All operations are synchronous; remote layers
// surface partitions as kUnreachable/kTimedOut statuses.
//
// Default implementations return kNotSupported so a layer only implements
// what it serves, and unrecognized operations fail loudly rather than
// silently (contrast with streams, where unknown messages are passed on —
// with vnodes the pass-through has to be explicit, see PassThroughVnode).
class Vnode {
 public:
  virtual ~Vnode() = default;

  virtual StatusOr<VAttr> GetAttr(const OpContext& ctx = {});
  virtual Status SetAttr(const SetAttrRequest& request, const OpContext& ctx);

  // --- Directory operations ---
  virtual StatusOr<VnodePtr> Lookup(std::string_view name, const OpContext& ctx);
  virtual StatusOr<VnodePtr> Create(std::string_view name, const VAttr& attr,
                                    const OpContext& ctx);
  virtual Status Remove(std::string_view name, const OpContext& ctx);
  virtual StatusOr<VnodePtr> Mkdir(std::string_view name, const VAttr& attr,
                                   const OpContext& ctx);
  virtual Status Rmdir(std::string_view name, const OpContext& ctx);
  virtual Status Link(std::string_view name, const VnodePtr& target, const OpContext& ctx);
  virtual Status Rename(std::string_view old_name, const VnodePtr& new_parent,
                        std::string_view new_name, const OpContext& ctx);
  virtual StatusOr<std::vector<DirEntry>> Readdir(const OpContext& ctx);
  // Batched readdir + getattr. The default composes Readdir with one
  // Lookup + GetAttr per entry — correct for any directory vnode, with
  // the same N+1 cost the batch exists to avoid; layers that can do
  // better (NFS client: one RPC per page; Ficus logical: one physical
  // ReadDirPlus) override it.
  virtual StatusOr<std::vector<DirEntryPlus>> ReaddirPlus(const OpContext& ctx);
  // Combined lookup + whole-contents read of the named child in one call.
  // The default composes Lookup with chunked Reads — correct for any
  // directory vnode, at the two-round-trip cost the combined op exists to
  // avoid; the NFS client overrides it with a single LOOKUPREAD RPC. The
  // Ficus facade transactions (encoded-name request, read the response)
  // are the intended caller.
  virtual StatusOr<std::vector<uint8_t>> LookupRead(std::string_view name,
                                                    const OpContext& ctx);
  virtual StatusOr<VnodePtr> Symlink(std::string_view name, std::string_view target,
                                     const OpContext& ctx);
  virtual StatusOr<std::string> Readlink(const OpContext& ctx);

  // --- File operations ---
  // NFS (stateless) drops Open/Close; layers above it that need open/close
  // semantics must tunnel them through Lookup (paper section 2.3).
  virtual Status Open(uint32_t flags, const OpContext& ctx);
  virtual Status Close(uint32_t flags, const OpContext& ctx);
  virtual StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                                const OpContext& ctx);
  virtual StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                                 const OpContext& ctx);
  virtual Status Fsync(const OpContext& ctx);

  // Escape hatch for layer-specific services not in the vnode vocabulary.
  // `command` names the service; request/response are opaque to intermediate
  // layers that forward it. NFS does NOT forward Ioctl (its protocol has no
  // such RPC) — which is exactly why Ficus overloads Lookup instead.
  virtual Status Ioctl(std::string_view command, const std::vector<uint8_t>& request,
                       std::vector<uint8_t>& response, const OpContext& ctx);

  // --- Locking (threaded runtime) ---
  // Per-object lock for callers that need a multi-op sequence on one file
  // to be atomic (e.g. the syscall layer's read-modify-write on an open
  // fd). Pass-through layers MUST forward this to the layer below — the
  // nullfs rule: locking a vnode at any layer of a stack locks the one
  // underlying object, never a per-layer shadow of it. Recursive so a
  // caller holding the lock may invoke operations that take it again.
  //
  // Lock order: a vnode lock is taken ABOVE any layer-internal lock
  // (logical, physical, UFS, cache), and a holder never acquires a second
  // object's lock — which is why it composes with remote calls without
  // deadlock.
  virtual std::recursive_mutex& LockObject() { return object_lock_; }

 private:
  std::recursive_mutex object_lock_;
};

// Scoped holder for Vnode::LockObject(), tolerating a null vnode.
class VnodeLockGuard {
 public:
  explicit VnodeLockGuard(const VnodePtr& vnode)
      : mu_(vnode != nullptr ? &vnode->LockObject() : nullptr) {
    if (mu_ != nullptr) {
      mu_->lock();
    }
  }
  ~VnodeLockGuard() {
    if (mu_ != nullptr) {
      mu_->unlock();
    }
  }
  VnodeLockGuard(const VnodeLockGuard&) = delete;
  VnodeLockGuard& operator=(const VnodeLockGuard&) = delete;

 private:
  std::recursive_mutex* mu_;
};

// Filesystem statistics for Statfs.
struct FsStats {
  uint64_t total_blocks = 0;
  uint64_t free_blocks = 0;
  uint64_t total_inodes = 0;
  uint64_t free_inodes = 0;
};

// One layer instance: hands out its root vnode, can flush state.
class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual StatusOr<VnodePtr> Root() = 0;
  virtual Status Sync();
  virtual StatusOr<FsStats> Statfs();
};

// Maximum length of one path component accepted by WalkPath and by the UFS.
// The paper notes that overloading lookup with encoded open/close requests
// costs some of the 255-byte namespace ("reduction ... to about 200 does
// not seem to be a significant loss").
constexpr size_t kMaxComponentLength = 255;

// Walks slash-separated `path` from `root` via repeated Lookup. Accepts "",
// "/", "a/b/c" and "/a/b/c" (leading slash ignored: the walk is rooted at
// `root` regardless). Follows no symlinks (callers resolve those).
StatusOr<VnodePtr> WalkPath(const VnodePtr& root, std::string_view path,
                            const OpContext& ctx);

// Splits a path into parent-walk and final component, e.g. "a/b/c" ->
// ("a/b", "c"). Returns error for empty final components.
StatusOr<std::pair<std::string, std::string>> SplitPath(std::string_view path);

}  // namespace ficus::vfs

#endif  // FICUS_SRC_VFS_VNODE_H_
