// Trace layer: a pass-through layer that attributes wall-clock cost to
// the layer boundary it sits on. Slipped between any two layers of a
// vnode stack it records, per operation type:
//   * `trace.<layer>.<op>.calls`  — operations that crossed here, and
//   * `trace.<layer>.<op>.ns`     — a latency histogram of the time spent
//                                   in everything below this layer.
// Stacking one trace layer per boundary turns a single end-to-end number
// into a per-layer cost breakdown (the paper's section-6 question — what
// does one more layer cost? — answered per layer rather than in
// aggregate). It also keeps a bounded log of recent spans tagged with the
// OpContext trace id, so one operation's path through the stack can be
// reconstructed across layers — including the far side of an NFS hop.
#ifndef FICUS_SRC_VFS_TRACE_LAYER_H_
#define FICUS_SRC_VFS_TRACE_LAYER_H_

#include <array>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/vfs/pass_through.h"
#include "src/vfs/stats_layer.h"

namespace ficus::vfs {

// One recorded entry/exit pair: which operation crossed this layer, under
// which OpContext trace id, and how long the layers below took.
struct TraceSpan {
  TraceId trace = 0;
  VnodeOp op = VnodeOp::kCount;
  uint64_t ns = 0;
};

// Shared per-layer state: metric cells resolved once at TraceVfs
// construction, plus the bounded span log.
class TraceSink {
 public:
  // Cells live in `registry` under "trace.<layer_name>.".
  TraceSink(MetricRegistry* registry, std::string_view layer_name);

  // Records one crossing; called by TraceVnode on every operation exit.
  void Record(TraceId trace, VnodeOp op, uint64_t ns);

  const std::string& layer_name() const { return layer_name_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  // Spans recorded under one trace id, in recording order.
  std::vector<TraceSpan> SpansFor(TraceId trace) const;
  void ClearSpans() { spans_.clear(); }

  uint64_t Calls(VnodeOp op) const;
  // Total nanoseconds attributed below this layer for one operation type.
  uint64_t TotalNs(VnodeOp op) const;

 private:
  // Bound on the span log; older spans fall off the front.
  static constexpr size_t kMaxSpans = 4096;

  std::string layer_name_;
  std::array<Counter*, static_cast<size_t>(VnodeOp::kCount)> calls_{};
  std::array<Histogram*, static_cast<size_t>(VnodeOp::kCount)> ns_{};
  std::vector<TraceSpan> spans_;
};

// Vnode half: forwards to the lower layer, timing every call.
class TraceVnode : public PassThroughVnode {
 public:
  TraceVnode(VnodePtr lower, TraceSink* sink)
      : PassThroughVnode(std::move(lower)), sink_(sink) {}

  StatusOr<VAttr> GetAttr(const OpContext& ctx = {}) override;
  Status SetAttr(const SetAttrRequest& request, const OpContext& ctx) override;
  StatusOr<VnodePtr> Lookup(std::string_view name, const OpContext& ctx) override;
  StatusOr<VnodePtr> Create(std::string_view name, const VAttr& attr,
                            const OpContext& ctx) override;
  Status Remove(std::string_view name, const OpContext& ctx) override;
  StatusOr<VnodePtr> Mkdir(std::string_view name, const VAttr& attr,
                           const OpContext& ctx) override;
  Status Rmdir(std::string_view name, const OpContext& ctx) override;
  Status Link(std::string_view name, const VnodePtr& target, const OpContext& ctx) override;
  Status Rename(std::string_view old_name, const VnodePtr& new_parent,
                std::string_view new_name, const OpContext& ctx) override;
  StatusOr<std::vector<DirEntry>> Readdir(const OpContext& ctx) override;
  StatusOr<std::vector<DirEntryPlus>> ReaddirPlus(const OpContext& ctx) override;
  StatusOr<VnodePtr> Symlink(std::string_view name, std::string_view target,
                             const OpContext& ctx) override;
  StatusOr<std::string> Readlink(const OpContext& ctx) override;
  Status Open(uint32_t flags, const OpContext& ctx) override;
  Status Close(uint32_t flags, const OpContext& ctx) override;
  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const OpContext& ctx) override;
  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const OpContext& ctx) override;
  Status Fsync(const OpContext& ctx) override;
  Status Ioctl(std::string_view command, const std::vector<uint8_t>& request,
               std::vector<uint8_t>& response, const OpContext& ctx) override;

 protected:
  VnodePtr WrapLower(VnodePtr lower) override;

 private:
  TraceSink* sink_;
};

// Vfs half. `layer_name` names the boundary in metric names and span
// queries; `registry` (borrowed, optional) unifies the cells with the
// rest of the stack, else an internally owned registry is used.
class TraceVfs : public Vfs {
 public:
  explicit TraceVfs(Vfs* lower, std::string_view layer_name = "layer",
                    MetricRegistry* registry = nullptr);

  StatusOr<VnodePtr> Root() override;
  Status Sync() override { return lower_->Sync(); }
  StatusOr<FsStats> Statfs() override { return lower_->Statfs(); }

  TraceSink& sink() { return sink_; }
  const TraceSink& sink() const { return sink_; }
  MetricRegistry* metrics() { return registry_; }

 private:
  Vfs* lower_;
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  TraceSink sink_;
};

}  // namespace ficus::vfs

#endif  // FICUS_SRC_VFS_TRACE_LAYER_H_
