#include "src/vfs/pass_through.h"

namespace ficus::vfs {

VnodePtr PassThroughVnode::WrapLower(VnodePtr lower) {
  return std::make_shared<PassThroughVnode>(std::move(lower));
}

VnodePtr PassThroughVnode::UnwrapIfOurs(const VnodePtr& vnode) {
  if (auto* pt = dynamic_cast<PassThroughVnode*>(vnode.get())) {
    return pt->lower_;
  }
  return vnode;
}

StatusOr<VAttr> PassThroughVnode::GetAttr(const OpContext& ctx) { return lower_->GetAttr(ctx); }

Status PassThroughVnode::SetAttr(const SetAttrRequest& request, const OpContext& ctx) {
  return lower_->SetAttr(request, ctx);
}

StatusOr<VnodePtr> PassThroughVnode::Lookup(std::string_view name, const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr child, lower_->Lookup(name, ctx));
  return WrapLower(std::move(child));
}

StatusOr<VnodePtr> PassThroughVnode::Create(std::string_view name, const VAttr& attr,
                                            const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr child, lower_->Create(name, attr, ctx));
  return WrapLower(std::move(child));
}

Status PassThroughVnode::Remove(std::string_view name, const OpContext& ctx) {
  return lower_->Remove(name, ctx);
}

StatusOr<VnodePtr> PassThroughVnode::Mkdir(std::string_view name, const VAttr& attr,
                                           const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr child, lower_->Mkdir(name, attr, ctx));
  return WrapLower(std::move(child));
}

Status PassThroughVnode::Rmdir(std::string_view name, const OpContext& ctx) {
  return lower_->Rmdir(name, ctx);
}

Status PassThroughVnode::Link(std::string_view name, const VnodePtr& target,
                              const OpContext& ctx) {
  return lower_->Link(name, UnwrapIfOurs(target), ctx);
}

Status PassThroughVnode::Rename(std::string_view old_name, const VnodePtr& new_parent,
                                std::string_view new_name, const OpContext& ctx) {
  return lower_->Rename(old_name, UnwrapIfOurs(new_parent), new_name, ctx);
}

StatusOr<std::vector<DirEntry>> PassThroughVnode::Readdir(const OpContext& ctx) {
  return lower_->Readdir(ctx);
}

StatusOr<std::vector<DirEntryPlus>> PassThroughVnode::ReaddirPlus(const OpContext& ctx) {
  return lower_->ReaddirPlus(ctx);
}

StatusOr<VnodePtr> PassThroughVnode::Symlink(std::string_view name, std::string_view target,
                                             const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr child, lower_->Symlink(name, target, ctx));
  return WrapLower(std::move(child));
}

StatusOr<std::string> PassThroughVnode::Readlink(const OpContext& ctx) {
  return lower_->Readlink(ctx);
}

Status PassThroughVnode::Open(uint32_t flags, const OpContext& ctx) {
  return lower_->Open(flags, ctx);
}

Status PassThroughVnode::Close(uint32_t flags, const OpContext& ctx) {
  return lower_->Close(flags, ctx);
}

StatusOr<size_t> PassThroughVnode::Read(uint64_t offset, size_t length,
                                        std::vector<uint8_t>& out, const OpContext& ctx) {
  return lower_->Read(offset, length, out, ctx);
}

StatusOr<size_t> PassThroughVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                         const OpContext& ctx) {
  return lower_->Write(offset, data, ctx);
}

Status PassThroughVnode::Fsync(const OpContext& ctx) { return lower_->Fsync(ctx); }

Status PassThroughVnode::Ioctl(std::string_view command, const std::vector<uint8_t>& request,
                               std::vector<uint8_t>& response, const OpContext& ctx) {
  return lower_->Ioctl(command, request, response, ctx);
}

StatusOr<VnodePtr> PassThroughVfs::Root() {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, lower_->Root());
  return VnodePtr(std::make_shared<PassThroughVnode>(std::move(root)));
}

Status PassThroughVfs::Sync() { return lower_->Sync(); }

StatusOr<FsStats> PassThroughVfs::Statfs() { return lower_->Statfs(); }

StatusOr<VnodePtr> StackNullLayers(Vfs* base, int depth) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, base->Root());
  for (int i = 0; i < depth; ++i) {
    root = std::make_shared<PassThroughVnode>(std::move(root));
  }
  return root;
}

}  // namespace ficus::vfs
