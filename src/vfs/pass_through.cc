#include "src/vfs/pass_through.h"

namespace ficus::vfs {

VnodePtr PassThroughVnode::WrapLower(VnodePtr lower) {
  return std::make_shared<PassThroughVnode>(std::move(lower));
}

VnodePtr PassThroughVnode::UnwrapIfOurs(const VnodePtr& vnode) {
  if (auto* pt = dynamic_cast<PassThroughVnode*>(vnode.get())) {
    return pt->lower_;
  }
  return vnode;
}

StatusOr<VAttr> PassThroughVnode::GetAttr() { return lower_->GetAttr(); }

Status PassThroughVnode::SetAttr(const SetAttrRequest& request, const Credentials& cred) {
  return lower_->SetAttr(request, cred);
}

StatusOr<VnodePtr> PassThroughVnode::Lookup(std::string_view name, const Credentials& cred) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr child, lower_->Lookup(name, cred));
  return WrapLower(std::move(child));
}

StatusOr<VnodePtr> PassThroughVnode::Create(std::string_view name, const VAttr& attr,
                                            const Credentials& cred) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr child, lower_->Create(name, attr, cred));
  return WrapLower(std::move(child));
}

Status PassThroughVnode::Remove(std::string_view name, const Credentials& cred) {
  return lower_->Remove(name, cred);
}

StatusOr<VnodePtr> PassThroughVnode::Mkdir(std::string_view name, const VAttr& attr,
                                           const Credentials& cred) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr child, lower_->Mkdir(name, attr, cred));
  return WrapLower(std::move(child));
}

Status PassThroughVnode::Rmdir(std::string_view name, const Credentials& cred) {
  return lower_->Rmdir(name, cred);
}

Status PassThroughVnode::Link(std::string_view name, const VnodePtr& target,
                              const Credentials& cred) {
  return lower_->Link(name, UnwrapIfOurs(target), cred);
}

Status PassThroughVnode::Rename(std::string_view old_name, const VnodePtr& new_parent,
                                std::string_view new_name, const Credentials& cred) {
  return lower_->Rename(old_name, UnwrapIfOurs(new_parent), new_name, cred);
}

StatusOr<std::vector<DirEntry>> PassThroughVnode::Readdir(const Credentials& cred) {
  return lower_->Readdir(cred);
}

StatusOr<VnodePtr> PassThroughVnode::Symlink(std::string_view name, std::string_view target,
                                             const Credentials& cred) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr child, lower_->Symlink(name, target, cred));
  return WrapLower(std::move(child));
}

StatusOr<std::string> PassThroughVnode::Readlink(const Credentials& cred) {
  return lower_->Readlink(cred);
}

Status PassThroughVnode::Open(uint32_t flags, const Credentials& cred) {
  return lower_->Open(flags, cred);
}

Status PassThroughVnode::Close(uint32_t flags, const Credentials& cred) {
  return lower_->Close(flags, cred);
}

StatusOr<size_t> PassThroughVnode::Read(uint64_t offset, size_t length,
                                        std::vector<uint8_t>& out, const Credentials& cred) {
  return lower_->Read(offset, length, out, cred);
}

StatusOr<size_t> PassThroughVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                         const Credentials& cred) {
  return lower_->Write(offset, data, cred);
}

Status PassThroughVnode::Fsync(const Credentials& cred) { return lower_->Fsync(cred); }

Status PassThroughVnode::Ioctl(std::string_view command, const std::vector<uint8_t>& request,
                               std::vector<uint8_t>& response, const Credentials& cred) {
  return lower_->Ioctl(command, request, response, cred);
}

StatusOr<VnodePtr> PassThroughVfs::Root() {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, lower_->Root());
  return VnodePtr(std::make_shared<PassThroughVnode>(std::move(root)));
}

Status PassThroughVfs::Sync() { return lower_->Sync(); }

StatusOr<FsStats> PassThroughVfs::Statfs() { return lower_->Statfs(); }

StatusOr<VnodePtr> StackNullLayers(Vfs* base, int depth) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr root, base->Root());
  for (int i = 0; i < depth; ++i) {
    root = std::make_shared<PassThroughVnode>(std::move(root));
  }
  return root;
}

}  // namespace ficus::vfs
