// Pass-through ("null") layer: forwards every vnode operation to the layer
// below, wrapping returned vnodes so the whole subtree stays inside the
// layer. Two uses:
//   1. Benchmark P1 stacks N of these to measure the marginal cost of one
//      layer crossing — per the paper (section 6) "one additional procedure
//      call, one pointer indirection, and storage for another vnode block".
//   2. Base class for real layers that override only a few operations,
//      the object-oriented-inheritance analogy of section 1.
#ifndef FICUS_SRC_VFS_PASS_THROUGH_H_
#define FICUS_SRC_VFS_PASS_THROUGH_H_

#include <memory>

#include "src/vfs/vnode.h"

namespace ficus::vfs {

class PassThroughVnode : public Vnode {
 public:
  explicit PassThroughVnode(VnodePtr lower) : lower_(std::move(lower)) {}

  StatusOr<VAttr> GetAttr(const OpContext& ctx = {}) override;
  Status SetAttr(const SetAttrRequest& request, const OpContext& ctx) override;
  StatusOr<VnodePtr> Lookup(std::string_view name, const OpContext& ctx) override;
  StatusOr<VnodePtr> Create(std::string_view name, const VAttr& attr,
                            const OpContext& ctx) override;
  Status Remove(std::string_view name, const OpContext& ctx) override;
  StatusOr<VnodePtr> Mkdir(std::string_view name, const VAttr& attr,
                           const OpContext& ctx) override;
  Status Rmdir(std::string_view name, const OpContext& ctx) override;
  Status Link(std::string_view name, const VnodePtr& target, const OpContext& ctx) override;
  Status Rename(std::string_view old_name, const VnodePtr& new_parent,
                std::string_view new_name, const OpContext& ctx) override;
  StatusOr<std::vector<DirEntry>> Readdir(const OpContext& ctx) override;
  StatusOr<std::vector<DirEntryPlus>> ReaddirPlus(const OpContext& ctx) override;
  StatusOr<VnodePtr> Symlink(std::string_view name, std::string_view target,
                             const OpContext& ctx) override;
  StatusOr<std::string> Readlink(const OpContext& ctx) override;
  Status Open(uint32_t flags, const OpContext& ctx) override;
  Status Close(uint32_t flags, const OpContext& ctx) override;
  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const OpContext& ctx) override;
  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const OpContext& ctx) override;
  Status Fsync(const OpContext& ctx) override;
  Status Ioctl(std::string_view command, const std::vector<uint8_t>& request,
               std::vector<uint8_t>& response, const OpContext& ctx) override;

  // The nullfs rule: locking the pass-through vnode locks the one object
  // below it, not a per-layer shadow.
  std::recursive_mutex& LockObject() override { return lower_->LockObject(); }

  const VnodePtr& lower() const { return lower_; }

 protected:
  // Wraps a vnode returned by the lower layer. Subclasses override to wrap
  // in their own vnode type; the default produces another PassThroughVnode.
  virtual VnodePtr WrapLower(VnodePtr lower);

  // Unwraps a vnode of this layer to its lower counterpart, for operations
  // (Link, Rename) whose arguments are vnodes that must be handed to the
  // lower layer. Non-pass-through vnodes are returned unchanged.
  static VnodePtr UnwrapIfOurs(const VnodePtr& vnode);

  VnodePtr lower_;
};

// The Vfs side of the null layer.
class PassThroughVfs : public Vfs {
 public:
  explicit PassThroughVfs(Vfs* lower) : lower_(lower) {}

  StatusOr<VnodePtr> Root() override;
  Status Sync() override;
  StatusOr<FsStats> Statfs() override;

 private:
  Vfs* lower_;
};

// Builds a stack of `depth` pass-through layers over `base` and returns the
// top root. depth == 0 returns base's root unchanged.
StatusOr<VnodePtr> StackNullLayers(Vfs* base, int depth);

}  // namespace ficus::vfs

#endif  // FICUS_SRC_VFS_PASS_THROUGH_H_
