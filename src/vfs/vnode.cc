#include "src/vfs/vnode.h"

namespace ficus::vfs {

namespace {
Status Unsupported(const char* op) {
  return NotSupportedError(std::string("vnode operation not supported: ") + op);
}
}  // namespace

Status OpContext::CheckDeadline(std::string_view where) const {
  if (DeadlineExpired()) {
    return TimedOutError(std::string("op deadline exceeded at ") + std::string(where));
  }
  return OkStatus();
}

StatusOr<VAttr> Vnode::GetAttr(const OpContext&) { return Unsupported("getattr"); }

Status Vnode::SetAttr(const SetAttrRequest&, const OpContext&) {
  return Unsupported("setattr");
}

StatusOr<VnodePtr> Vnode::Lookup(std::string_view, const OpContext&) {
  return Unsupported("lookup");
}

StatusOr<VnodePtr> Vnode::Create(std::string_view, const VAttr&, const OpContext&) {
  return Unsupported("create");
}

Status Vnode::Remove(std::string_view, const OpContext&) { return Unsupported("remove"); }

StatusOr<VnodePtr> Vnode::Mkdir(std::string_view, const VAttr&, const OpContext&) {
  return Unsupported("mkdir");
}

Status Vnode::Rmdir(std::string_view, const OpContext&) { return Unsupported("rmdir"); }

Status Vnode::Link(std::string_view, const VnodePtr&, const OpContext&) {
  return Unsupported("link");
}

Status Vnode::Rename(std::string_view, const VnodePtr&, std::string_view, const OpContext&) {
  return Unsupported("rename");
}

StatusOr<std::vector<DirEntry>> Vnode::Readdir(const OpContext&) {
  return Unsupported("readdir");
}

StatusOr<std::vector<DirEntryPlus>> Vnode::ReaddirPlus(const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, Readdir(ctx));
  std::vector<DirEntryPlus> out;
  out.reserve(entries.size());
  for (auto& entry : entries) {
    DirEntryPlus row;
    row.entry = std::move(entry);
    auto child = Lookup(row.entry.name, ctx);
    if (child.ok()) {
      auto attr = child.value()->GetAttr(ctx);
      row.attr_status = attr.status();
      if (attr.ok()) {
        row.attr = attr.value();
      }
    } else {
      row.attr_status = child.status();
    }
    out.push_back(std::move(row));
  }
  return out;
}

StatusOr<std::vector<uint8_t>> Vnode::LookupRead(std::string_view name,
                                                 const OpContext& ctx) {
  FICUS_ASSIGN_OR_RETURN(VnodePtr child, Lookup(name, ctx));
  std::vector<uint8_t> contents;
  constexpr size_t kChunk = 64 * 1024;
  for (;;) {
    std::vector<uint8_t> piece;
    FICUS_ASSIGN_OR_RETURN(size_t got, child->Read(contents.size(), kChunk, piece, ctx));
    contents.insert(contents.end(), piece.begin(), piece.end());
    if (got < kChunk) {
      break;
    }
  }
  return contents;
}

StatusOr<VnodePtr> Vnode::Symlink(std::string_view, std::string_view, const OpContext&) {
  return Unsupported("symlink");
}

StatusOr<std::string> Vnode::Readlink(const OpContext&) { return Unsupported("readlink"); }

Status Vnode::Open(uint32_t, const OpContext&) { return Unsupported("open"); }

Status Vnode::Close(uint32_t, const OpContext&) { return Unsupported("close"); }

StatusOr<size_t> Vnode::Read(uint64_t, size_t, std::vector<uint8_t>&, const OpContext&) {
  return Unsupported("read");
}

StatusOr<size_t> Vnode::Write(uint64_t, const std::vector<uint8_t>&, const OpContext&) {
  return Unsupported("write");
}

Status Vnode::Fsync(const OpContext&) { return Unsupported("fsync"); }

Status Vnode::Ioctl(std::string_view, const std::vector<uint8_t>&, std::vector<uint8_t>&,
                    const OpContext&) {
  return Unsupported("ioctl");
}

Status Vfs::Sync() { return OkStatus(); }

StatusOr<FsStats> Vfs::Statfs() { return NotSupportedError("statfs not supported"); }

StatusOr<VnodePtr> WalkPath(const VnodePtr& root, std::string_view path,
                            const OpContext& ctx) {
  if (root == nullptr) {
    return InvalidArgumentError("walk from null root");
  }
  VnodePtr current = root;
  size_t pos = 0;
  while (pos < path.size()) {
    // Skip consecutive slashes.
    while (pos < path.size() && path[pos] == '/') {
      ++pos;
    }
    if (pos >= path.size()) {
      break;
    }
    size_t end = path.find('/', pos);
    if (end == std::string_view::npos) {
      end = path.size();
    }
    std::string_view component = path.substr(pos, end - pos);
    if (component.size() > kMaxComponentLength) {
      return NameTooLongError(std::string(component.substr(0, 32)) + "...");
    }
    if (component == ".") {
      pos = end;
      continue;
    }
    FICUS_ASSIGN_OR_RETURN(current, current->Lookup(component, ctx));
    pos = end;
  }
  return current;
}

StatusOr<std::pair<std::string, std::string>> SplitPath(std::string_view path) {
  // Trim trailing slashes.
  while (!path.empty() && path.back() == '/') {
    path.remove_suffix(1);
  }
  if (path.empty()) {
    return InvalidArgumentError("path has no final component");
  }
  size_t slash = path.rfind('/');
  if (slash == std::string_view::npos) {
    return std::make_pair(std::string(), std::string(path));
  }
  return std::make_pair(std::string(path.substr(0, slash)),
                        std::string(path.substr(slash + 1)));
}

}  // namespace ficus::vfs
