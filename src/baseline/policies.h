// Replica-control policies Ficus is compared against (paper section 1):
// "One-copy availability provides strictly greater availability than
// primary copy [2], voting [21], weighted voting [7], and quorum
// consensus [10]."
//
// Each policy answers one question: given which replicas are currently
// accessible, may a read / an update proceed? Serializable policies must
// deny some partitions (any two quorums must intersect); Ficus's
// one-copy availability accepts whenever any replica is reachable and
// pays for it with reconciliation instead of mutual exclusion.
#ifndef FICUS_SRC_BASELINE_POLICIES_H_
#define FICUS_SRC_BASELINE_POLICIES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace ficus::baseline {

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  virtual std::string Name() const = 0;

  // accessible[i] is true iff replica i can be reached from the client.
  virtual bool CanRead(const std::vector<bool>& accessible) const = 0;
  virtual bool CanUpdate(const std::vector<bool>& accessible) const = 0;
};

// Ficus (section 2.5): "update of any copy of the data, without requiring
// a particular copy or a minimum number of copies to be accessible".
class OneCopyPolicy : public ReplicationPolicy {
 public:
  std::string Name() const override { return "one-copy (Ficus)"; }
  bool CanRead(const std::vector<bool>& accessible) const override;
  bool CanUpdate(const std::vector<bool>& accessible) const override;
};

// Alsberg & Day: all updates funnel through a designated primary; reads
// may be served by any copy (the read-any / write-primary variant).
class PrimaryCopyPolicy : public ReplicationPolicy {
 public:
  explicit PrimaryCopyPolicy(size_t primary = 0) : primary_(primary) {}
  std::string Name() const override { return "primary copy"; }
  bool CanRead(const std::vector<bool>& accessible) const override;
  bool CanUpdate(const std::vector<bool>& accessible) const override;

 private:
  size_t primary_;
};

// Thomas: both reads and updates require a strict majority of copies.
class MajorityVotingPolicy : public ReplicationPolicy {
 public:
  std::string Name() const override { return "majority voting"; }
  bool CanRead(const std::vector<bool>& accessible) const override;
  bool CanUpdate(const std::vector<bool>& accessible) const override;
};

// Gifford: each replica carries votes; a read needs r votes, a write w
// votes, with r + w > total and w > total/2.
class WeightedVotingPolicy : public ReplicationPolicy {
 public:
  // weights per replica; read_quorum + write_quorum must exceed the total.
  WeightedVotingPolicy(std::vector<int> weights, int read_quorum, int write_quorum);
  std::string Name() const override { return "weighted voting"; }
  bool CanRead(const std::vector<bool>& accessible) const override;
  bool CanUpdate(const std::vector<bool>& accessible) const override;

  static StatusOr<WeightedVotingPolicy> Make(std::vector<int> weights, int read_quorum,
                                             int write_quorum);

 private:
  std::vector<int> weights_;
  int read_quorum_;
  int write_quorum_;
};

// Herlihy-style quorum consensus with uniform weights: a read needs r
// replicas, a write needs w replicas, r + w > n.
class QuorumConsensusPolicy : public ReplicationPolicy {
 public:
  QuorumConsensusPolicy(size_t read_quorum, size_t write_quorum)
      : read_quorum_(read_quorum), write_quorum_(write_quorum) {}
  std::string Name() const override;
  bool CanRead(const std::vector<bool>& accessible) const override;
  bool CanUpdate(const std::vector<bool>& accessible) const override;

 private:
  size_t read_quorum_;
  size_t write_quorum_;
};

}  // namespace ficus::baseline

#endif  // FICUS_SRC_BASELINE_POLICIES_H_
