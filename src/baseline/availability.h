// Availability evaluation of replica-control policies — the machinery
// behind experiment A1 (DESIGN.md): quantifying the paper's claim that
// one-copy availability strictly dominates the serializable policies.
//
// Two failure models:
//   * independent host failures: each replica is reachable with
//     probability p, independently (classic availability analysis);
//   * partition model: with probability q the network splits into two
//     sides and each replica lands on a uniformly random side, the client
//     on side 0 — the "communications outages" the paper's abstract calls
//     the motivating failure mode; host failures compose on top.
// Exact enumeration is available for the independent model (n <= 20).
#ifndef FICUS_SRC_BASELINE_AVAILABILITY_H_
#define FICUS_SRC_BASELINE_AVAILABILITY_H_

#include "src/baseline/policies.h"
#include "src/common/rng.h"

namespace ficus::baseline {

struct AvailabilityResult {
  double read = 0.0;    // fraction of trials a read could proceed
  double update = 0.0;  // fraction of trials an update could proceed
};

// Monte-Carlo, independent failures: n replicas, each up w.p. p.
AvailabilityResult SimulateIndependent(const ReplicationPolicy& policy, int n, double p,
                                       int trials, Rng& rng);

// Monte-Carlo, partition + failures: see header comment.
AvailabilityResult SimulatePartitioned(const ReplicationPolicy& policy, int n,
                                       double host_up_p, double partition_q, int trials,
                                       Rng& rng);

// Exact expectation by enumerating all 2^n accessibility vectors (n <= 20).
StatusOr<AvailabilityResult> ComputeExact(const ReplicationPolicy& policy, int n, double p);

}  // namespace ficus::baseline

#endif  // FICUS_SRC_BASELINE_AVAILABILITY_H_
