#include "src/baseline/policies.h"

#include <algorithm>
#include <numeric>

namespace ficus::baseline {

namespace {
size_t CountAccessible(const std::vector<bool>& accessible) {
  return static_cast<size_t>(std::count(accessible.begin(), accessible.end(), true));
}
}  // namespace

bool OneCopyPolicy::CanRead(const std::vector<bool>& accessible) const {
  return CountAccessible(accessible) >= 1;
}

bool OneCopyPolicy::CanUpdate(const std::vector<bool>& accessible) const {
  return CountAccessible(accessible) >= 1;
}

bool PrimaryCopyPolicy::CanRead(const std::vector<bool>& accessible) const {
  return CountAccessible(accessible) >= 1;
}

bool PrimaryCopyPolicy::CanUpdate(const std::vector<bool>& accessible) const {
  return primary_ < accessible.size() && accessible[primary_];
}

bool MajorityVotingPolicy::CanRead(const std::vector<bool>& accessible) const {
  return CountAccessible(accessible) * 2 > accessible.size();
}

bool MajorityVotingPolicy::CanUpdate(const std::vector<bool>& accessible) const {
  return CountAccessible(accessible) * 2 > accessible.size();
}

WeightedVotingPolicy::WeightedVotingPolicy(std::vector<int> weights, int read_quorum,
                                           int write_quorum)
    : weights_(std::move(weights)), read_quorum_(read_quorum), write_quorum_(write_quorum) {}

StatusOr<WeightedVotingPolicy> WeightedVotingPolicy::Make(std::vector<int> weights,
                                                          int read_quorum, int write_quorum) {
  int total = std::accumulate(weights.begin(), weights.end(), 0);
  if (read_quorum + write_quorum <= total) {
    return InvalidArgumentError("r + w must exceed the total vote count");
  }
  if (2 * write_quorum <= total) {
    return InvalidArgumentError("w must exceed half the total vote count");
  }
  return WeightedVotingPolicy(std::move(weights), read_quorum, write_quorum);
}

bool WeightedVotingPolicy::CanRead(const std::vector<bool>& accessible) const {
  int votes = 0;
  for (size_t i = 0; i < accessible.size() && i < weights_.size(); ++i) {
    if (accessible[i]) {
      votes += weights_[i];
    }
  }
  return votes >= read_quorum_;
}

bool WeightedVotingPolicy::CanUpdate(const std::vector<bool>& accessible) const {
  int votes = 0;
  for (size_t i = 0; i < accessible.size() && i < weights_.size(); ++i) {
    if (accessible[i]) {
      votes += weights_[i];
    }
  }
  return votes >= write_quorum_;
}

std::string QuorumConsensusPolicy::Name() const {
  return "quorum consensus (r=" + std::to_string(read_quorum_) +
         ", w=" + std::to_string(write_quorum_) + ")";
}

bool QuorumConsensusPolicy::CanRead(const std::vector<bool>& accessible) const {
  return CountAccessible(accessible) >= read_quorum_;
}

bool QuorumConsensusPolicy::CanUpdate(const std::vector<bool>& accessible) const {
  return CountAccessible(accessible) >= write_quorum_;
}

}  // namespace ficus::baseline
