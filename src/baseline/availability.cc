#include "src/baseline/availability.h"

#include <cmath>

namespace ficus::baseline {

AvailabilityResult SimulateIndependent(const ReplicationPolicy& policy, int n, double p,
                                       int trials, Rng& rng) {
  AvailabilityResult result;
  std::vector<bool> accessible(static_cast<size_t>(n));
  int reads = 0;
  int updates = 0;
  for (int t = 0; t < trials; ++t) {
    for (auto&& a : accessible) {
      a = rng.NextBool(p);
    }
    if (policy.CanRead(accessible)) {
      ++reads;
    }
    if (policy.CanUpdate(accessible)) {
      ++updates;
    }
  }
  result.read = static_cast<double>(reads) / trials;
  result.update = static_cast<double>(updates) / trials;
  return result;
}

AvailabilityResult SimulatePartitioned(const ReplicationPolicy& policy, int n,
                                       double host_up_p, double partition_q, int trials,
                                       Rng& rng) {
  AvailabilityResult result;
  std::vector<bool> accessible(static_cast<size_t>(n));
  int reads = 0;
  int updates = 0;
  for (int t = 0; t < trials; ++t) {
    bool split = rng.NextBool(partition_q);
    for (auto&& a : accessible) {
      bool up = rng.NextBool(host_up_p);
      bool same_side = !split || !rng.NextBool(0.5);  // client sits on side 0
      a = up && same_side;
    }
    if (policy.CanRead(accessible)) {
      ++reads;
    }
    if (policy.CanUpdate(accessible)) {
      ++updates;
    }
  }
  result.read = static_cast<double>(reads) / trials;
  result.update = static_cast<double>(updates) / trials;
  return result;
}

StatusOr<AvailabilityResult> ComputeExact(const ReplicationPolicy& policy, int n, double p) {
  if (n < 1 || n > 20) {
    return InvalidArgumentError("exact enumeration supports 1 <= n <= 20");
  }
  AvailabilityResult result;
  std::vector<bool> accessible(static_cast<size_t>(n));
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    double prob = 1.0;
    for (int i = 0; i < n; ++i) {
      bool up = (mask >> i & 1) != 0;
      accessible[static_cast<size_t>(i)] = up;
      prob *= up ? p : (1.0 - p);
    }
    if (policy.CanRead(accessible)) {
      result.read += prob;
    }
    if (policy.CanUpdate(accessible)) {
      result.update += prob;
    }
  }
  return result;
}

}  // namespace ficus::baseline
